// End-to-end GoogleNet-v1 inference with every inception module running its
// branch GEMMs through the coordinated tiling and batching framework.
//
// The network executes functionally with random weights (LRN layers are
// omitted — they do not change any GEMM shape), asserting every
// intermediate shape against the published architecture and finishing with
// the 7x7 average pool and the 1000-way classifier GEMM. This is the "whole
// network" behind bench_fig10_googlenet's timing rows.
#include <chrono>
#include <iostream>

#include "dnn/inference.hpp"
#include "util/table.hpp"

int main() {
  using namespace ctb;
  using Clock = std::chrono::steady_clock;
  Rng rng(1409);  // arXiv:1409.4842

  PlannerConfig config;
  config.policy = BatchingPolicy::kThresholdOnly;  // skip per-stage sims

  std::cout << "GoogleNet-v1 forward pass, batch=1, random weights\n";
  const auto t0 = Clock::now();

  // Stem: conv1 7x7/2 -> pool/2 -> conv2 reduce -> conv2 3x3 -> pool/2.
  const auto& stem = googlenet_stem_convs();
  Tensor4 x(1, 3, 224, 224);
  fill_random(x, rng, 0.0f, 1.0f);

  Matrixf w1 = random_filters(stem[0], rng);
  x = conv_forward_gemm(stem[0], x, w1);
  relu_inplace(x);
  std::cout << "conv1:   " << x.c() << "x" << x.h() << "x" << x.w() << '\n';
  x = max_pool(x, 3, 2, 1);  // 112 -> 56

  Matrixf w2r = random_filters(stem[1], rng);
  x = conv_forward_gemm(stem[1], x, w2r);
  relu_inplace(x);
  Matrixf w2 = random_filters(stem[2], rng);
  x = conv_forward_gemm(stem[2], x, w2);
  relu_inplace(x);
  std::cout << "conv2:   " << x.c() << "x" << x.h() << "x" << x.w() << '\n';
  x = max_pool(x, 3, 2, 1);  // 56 -> 28

  // Inception modules with the framework batching each stage's GEMMs.
  for (const auto& m : googlenet_inception_modules()) {
    if (m.hw != x.h()) x = max_pool(x, 3, 2, 1);  // stride-2 pool boundary
    const InceptionWeights w = random_inception_weights(m, rng);
    x = inception_forward_batched(m, x, w, config);
    std::cout << m.name << ": " << x.c() << "x" << x.h() << "x" << x.w()
              << '\n';
    if (x.c() != m.out_c()) {
      std::cout << "SHAPE MISMATCH\n";
      return 1;
    }
  }

  // Head: global average pool + 1000-way classifier (a 1000x1x1024 GEMM).
  x = avg_pool(x, 7, 1, 0);
  Matrixf features(static_cast<std::size_t>(x.c()), 1);
  for (int c = 0; c < x.c(); ++c) features(static_cast<std::size_t>(c), 0) =
      x.at(0, c, 0, 0);
  Matrixf fc(1000, static_cast<std::size_t>(x.c()));
  fill_random(fc, rng, -0.05f, 0.05f);
  Matrixf logits(1000, 1);
  gemm_blocked(fc, features, logits, 1.0f, 0.0f);

  int argmax = 0;
  for (int i = 1; i < 1000; ++i)
    if (logits(static_cast<std::size_t>(i), 0) >
        logits(static_cast<std::size_t>(argmax), 0))
      argmax = i;
  const double secs =
      std::chrono::duration<double>(Clock::now() - t0).count();
  std::cout << "\nclassifier: 1000 logits, argmax=" << argmax
            << " (random weights)\n";
  std::cout << "host functional execution took " << TextTable::fmt(secs, 1)
            << " s across " << googlenet_all_convs().size()
            << " convolutions; see bench_fig10_googlenet for the simulated "
               "GPU timing comparison.\n";
  return 0;
}
