// Training and deploying the random-forest batching policy (paper
// Section 5): generate labelled cases with the simulator as the oracle,
// train the forest, persist it to disk, reload it, and use it as the
// planner's online selector.
//
// Usage: autotune_forest [--cases N] [--trees N] [--out PATH]
#include <fstream>
#include <iostream>

#include "core/api.hpp"
#include "core/rf_policy.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace ctb;

  CliFlags flags;
  flags.define("cases", "200", "number of labelled training cases");
  flags.define("trees", "32", "trees in the forest");
  flags.define("out", "batching_forest.txt", "model output path");
  flags.parse(argc, argv);

  RfTrainingConfig config;
  config.num_cases = static_cast<int>(flags.get_int("cases"));
  config.forest.num_trees = static_cast<int>(flags.get_int("trees"));
  config.seed = 2019;

  std::cout << "Labelling " << config.num_cases
            << " random batched-GEMM cases with the simulator oracle "
               "(threshold vs binary batching)...\n";
  Dataset train;
  const RandomForest forest = train_batching_forest(config, &train);
  int binary_labels = 0;
  for (const auto& s : train.samples) binary_labels += s.label;
  std::cout << "training set: " << train.samples.size() << " cases ("
            << binary_labels << " prefer binary batching), accuracy "
            << forest.accuracy(train) << '\n';

  // Persist and reload — the forest serializes to portable text.
  const std::string path = flags.get("out");
  {
    std::ofstream os(path);
    forest.save(os);
  }
  RandomForest reloaded;
  {
    std::ifstream is(path);
    reloaded.load(is);
  }
  std::cout << "model saved to " << path << " and reloaded ("
            << reloaded.tree_count() << " trees)\n\n";

  // Use the reloaded forest as the planner's online policy.
  PlannerConfig planner_config;
  planner_config.policy = BatchingPolicy::kRandomForest;
  planner_config.forest = &reloaded;
  const BatchedGemmPlanner planner(planner_config);

  TextTable t;
  t.set_header({"case", "features (M,N,K,B)", "chosen heuristic"});
  Rng rng(99);
  for (int i = 0; i < 5; ++i) {
    const std::vector<GemmDims> dims = random_batch(rng, config.ranges);
    const auto f = batching_features(dims);
    const PlanSummary s = planner.plan(dims);
    t.add_row({TextTable::fmt(i),
               TextTable::fmt(f[0], 0) + "," + TextTable::fmt(f[1], 0) +
                   "," + TextTable::fmt(f[2], 0) + "," +
                   TextTable::fmt(f[3], 0),
               to_string(s.heuristic)});
  }
  t.print(std::cout);
  std::cout << "\nThe online selection costs one forest traversal — the "
               "paper reports 7-8 comparisons on average.\n";
  return 0;
}
