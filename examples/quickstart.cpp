// Quickstart: batch three differently-sized GEMMs through the coordinated
// tiling and batching framework, verify the results against a host
// reference, and inspect what the planner decided.
//
// Build & run:  ./build/examples/quickstart
#include <iostream>

#include "core/api.hpp"
#include "linalg/gemm_ref.hpp"

int main() {
  using namespace ctb;

  // Three small GEMMs of different shapes — the scenario the paper targets
  // (cublasSgemmBatched cannot handle mixed sizes at all).
  const std::vector<GemmDims> dims = {
      {16, 32, 128}, {64, 64, 64}, {256, 256, 64}};

  Rng rng(42);
  std::vector<Matrixf> as, bs, cs;
  for (const auto& d : dims) {
    as.emplace_back(static_cast<std::size_t>(d.m),
                    static_cast<std::size_t>(d.k));
    bs.emplace_back(static_cast<std::size_t>(d.k),
                    static_cast<std::size_t>(d.n));
    cs.emplace_back(static_cast<std::size_t>(d.m),
                    static_cast<std::size_t>(d.n));
    fill_random(as.back(), rng);
    fill_random(bs.back(), rng);
  }

  // Plan + execute in one call. The default config targets a V100 and
  // picks the batching heuristic by simulating both.
  std::vector<const Matrixf*> a, b;
  std::vector<Matrixf*> c;
  for (std::size_t i = 0; i < dims.size(); ++i) {
    a.push_back(&as[i]);
    b.push_back(&bs[i]);
    c.push_back(&cs[i]);
  }
  const BatchedGemmResult result = batched_gemm(a, b, c, 1.0f, 0.0f);

  // What did the planner decide?
  std::cout << "Tiling (one Table-2 strategy per GEMM):\n";
  for (std::size_t i = 0; i < dims.size(); ++i) {
    std::cout << "  GEMM " << i << " (" << dims[i].m << "x" << dims[i].n
              << "x" << dims[i].k << ") -> "
              << result.summary.tiling.per_gemm[i]->name() << '\n';
  }
  std::cout << "Batch TLP: " << result.summary.tiling.tlp
            << " (threshold 65536)\n";
  std::cout << "Batching heuristic: " << to_string(result.summary.heuristic)
            << '\n';
  std::cout << "Plan: " << result.summary.plan.num_tiles() << " tiles in "
            << result.summary.plan.num_blocks() << " thread blocks of "
            << result.summary.plan.block_threads << " threads\n";
  std::cout << "Simulated V100 time: " << result.timing.time_us << " us ("
            << result.timing.sim.achieved_gflops << " GFLOP/s)\n";

  // Verify against the host reference.
  bool ok = true;
  for (std::size_t i = 0; i < dims.size(); ++i) {
    Matrixf ref(static_cast<std::size_t>(dims[i].m),
                static_cast<std::size_t>(dims[i].n));
    gemm_naive(as[i], bs[i], ref, 1.0f, 0.0f);
    ok = ok && allclose(cs[i], ref);
  }
  std::cout << (ok ? "Results match the host reference.\n"
                   : "MISMATCH against the host reference!\n");
  return ok ? 0 : 1;
}
