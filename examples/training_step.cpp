// DNN training steps with plan reuse.
//
// The paper singles out training ("the case where the batch size and the
// size of each matrix are fixed, for example the training process of a deep
// neural network") as the setting where the batching choice can be made
// once. This example assembles the GEMMs of one inception module's training
// step — forward, weight-gradient, and data-gradient per branch convolution
// — plans them through a PlanCache, and shows that every step after the
// first reuses the cached plan at zero planning cost.
#include <chrono>
#include <iostream>

#include "core/plan_io.hpp"
#include "dnn/backward.hpp"
#include "dnn/googlenet.hpp"
#include "util/table.hpp"

int main() {
  using namespace ctb;
  const InceptionModule& m = googlenet_inception_modules()[2];  // 4a
  constexpr int kImages = 8;

  // One training step's GEMMs for the four stage-1 branch convolutions:
  // forward + wgrad + dgrad each.
  std::vector<GemmDims> step;
  for (const ConvShape* conv : m.stage1()) {
    step.push_back(conv->gemm_dims(kImages));
    step.push_back(wgrad_gemm_dims(*conv, kImages));
    step.push_back(dgrad_gemm_dims(*conv, kImages));
  }
  std::cout << m.name << " stage-1 training step: " << step.size()
            << " GEMMs (batch of " << kImages << " images)\n";
  TextTable shapes;
  shapes.set_header({"role", "M", "N", "K"});
  const char* roles[] = {"forward", "wgrad", "dgrad"};
  for (std::size_t i = 0; i < step.size(); ++i)
    shapes.add_row({roles[i % 3], TextTable::fmt(step[i].m),
                    TextTable::fmt(step[i].n), TextTable::fmt(step[i].k)});
  shapes.print(std::cout);

  PlannerConfig config;
  PlanCache cache(config);

  using Clock = std::chrono::steady_clock;
  double first_us = 0, rest_us = 0;
  constexpr int kSteps = 200;
  for (int i = 0; i < kSteps; ++i) {
    const auto t0 = Clock::now();
    const PlanSummary& plan = cache.plan(step);
    const auto t1 = Clock::now();
    const double us =
        std::chrono::duration<double, std::micro>(t1 - t0).count();
    (i == 0 ? first_us : rest_us) += us;
    if (i == 0) {
      validate_plan(plan.plan, step);
      std::cout << "\nplanned once: heuristic " << to_string(plan.heuristic)
                << ", " << plan.plan.num_tiles() << " tiles in "
                << plan.plan.num_blocks() << " blocks\n";
      const TimedResult t =
          time_plan(gpu_arch(config.gpu), plan.plan, step);
      std::cout << "simulated step GEMM time: "
                << TextTable::fmt(t.time_us, 1) << " us\n";
    }
  }
  std::cout << "\nhost-side planning cost: first step "
            << TextTable::fmt(first_us, 1) << " us, next " << (kSteps - 1)
            << " steps " << TextTable::fmt(rest_us / (kSteps - 1), 2)
            << " us each (cache: " << cache.hits() << " hits, "
            << cache.misses() << " miss)\n";
  std::cout << "The aux arrays are plain data: a production deployment can "
               "save_plan() them once and load_plan() at startup.\n";
  return 0;
}
