// GoogleNet inception inference through the framework (the paper's
// Section 7.3 case study, runnable end to end).
//
// Runs a real-size inception3a forward pass twice — once with direct
// convolutions (reference) and once with the branch GEMMs batched through
// the planner — verifies they agree, then prints the per-module timing
// comparison for the whole network.
#include <iostream>

#include "dnn/inference.hpp"
#include "util/table.hpp"

int main() {
  using namespace ctb;

  const InceptionModule& m3a = googlenet_inception_modules().front();
  std::cout << "Forward pass of " << m3a.name << " (input " << m3a.in_c
            << " channels, " << m3a.hw << "x" << m3a.hw << " maps)...\n";

  Rng rng(2019);
  Tensor4 input(1, m3a.in_c, m3a.hw, m3a.hw);
  fill_random(input, rng, -0.5f, 0.5f);
  const InceptionWeights weights = random_inception_weights(m3a, rng);

  PlannerConfig config;
  config.policy = BatchingPolicy::kAutoOffline;

  const Tensor4 reference = inception_forward_reference(m3a, input, weights);
  const Tensor4 batched =
      inception_forward_batched(m3a, input, weights, config);
  const float diff = max_abs_diff(reference, batched);
  std::cout << "output: " << batched.c() << " channels, max |diff| vs "
            << "direct convolution = " << diff << '\n';
  if (diff > 1e-2f) {
    std::cout << "MISMATCH!\n";
    return 1;
  }

  // The stage-1 GEMMs of this module, as the paper describes them.
  std::cout << "\nStage-1 branch GEMMs (the paper's \"four GEMMs\"):\n";
  for (const ConvShape* conv : m3a.stage1()) {
    const GemmDims d = conv->gemm_dims(1);
    std::cout << "  " << conv->name << ": " << d.m << "x" << d.n << "x"
              << d.k << '\n';
  }

  const GpuArch& arch = gpu_arch(GpuModel::kV100);
  std::cout << "\nPer-module simulated GEMM time on " << arch.name << ":\n";
  TextTable t;
  t.set_header({"module", "default(us)", "stream(us)", "ours(us)",
                "speedup vs stream"});
  double totals[3] = {0, 0, 0};
  for (const auto& layer : time_googlenet_inceptions(arch, 1, config)) {
    t.add_row({layer.name, TextTable::fmt(layer.default_us, 1),
               TextTable::fmt(layer.stream_us, 1),
               TextTable::fmt(layer.ours_us, 1),
               TextTable::fmt(layer.speedup_vs_stream(), 2)});
    totals[0] += layer.default_us;
    totals[1] += layer.stream_us;
    totals[2] += layer.ours_us;
  }
  t.add_row({"(all modules)", TextTable::fmt(totals[0], 1),
             TextTable::fmt(totals[1], 1), TextTable::fmt(totals[2], 1),
             TextTable::fmt(totals[1] / totals[2], 2)});
  t.print(std::cout);
  std::cout << "\nPaper reference: the framework takes the whole network "
               "from 2.41 ms (streams) to 2.01 ms (1.23x).\n";
  return 0;
}
