// Variable-length attention scores: a realistic mixed-size batched-GEMM
// workload beyond the paper's GoogleNet case study.
//
// In a transformer serving batch, each request has its own sequence length
// L_i; the per-head attention score computation Q_i x K_i^T is a GEMM of
// size (L_i x L_i x d_head). Padding every request to the longest sequence
// wastes compute quadratically, and cublasSgemmBatched cannot batch the
// unpadded GEMMs because their sizes differ — exactly the gap the
// coordinated tiling and batching framework fills.
//
// This example builds the unpadded score GEMMs for a batch of requests,
// executes them through the framework, verifies the results, and compares
// the simulated execution time against the padded same-size approach and
// the per-kernel default.
#include <cmath>
#include <iostream>

#include "baselines/baselines.hpp"
#include "core/api.hpp"
#include "linalg/gemm_ref.hpp"
#include "util/table.hpp"

int main() {
  using namespace ctb;

  constexpr int kHeads = 8;
  constexpr int kHeadDim = 64;
  // Sequence lengths of one serving batch (tokens per request).
  const std::vector<int> seq_lens = {37, 112, 64, 211, 93, 45, 170, 128};

  // One score GEMM per (request, head): L x L x d_head.
  std::vector<GemmDims> dims;
  int max_len = 0;
  for (int len : seq_lens) {
    max_len = std::max(max_len, len);
    for (int h = 0; h < kHeads; ++h)
      dims.push_back(GemmDims{len, len, kHeadDim});
  }
  std::cout << "Batch: " << seq_lens.size() << " requests x " << kHeads
            << " heads = " << dims.size() << " GEMMs, L in [37, 211], "
            << "d_head = " << kHeadDim << "\n\n";

  // Build Q and K (as K^T) per GEMM and run through the framework.
  Rng rng(7);
  std::vector<Matrixf> qs, kts, scores;
  for (const auto& d : dims) {
    qs.emplace_back(static_cast<std::size_t>(d.m),
                    static_cast<std::size_t>(d.k));
    kts.emplace_back(static_cast<std::size_t>(d.k),
                     static_cast<std::size_t>(d.n));
    scores.emplace_back(static_cast<std::size_t>(d.m),
                        static_cast<std::size_t>(d.n));
    fill_random(qs.back(), rng, -0.1f, 0.1f);
    fill_random(kts.back(), rng, -0.1f, 0.1f);
  }
  std::vector<const Matrixf*> a, b;
  std::vector<Matrixf*> c;
  for (std::size_t i = 0; i < dims.size(); ++i) {
    a.push_back(&qs[i]);
    b.push_back(&kts[i]);
    c.push_back(&scores[i]);
  }
  const float scale = 1.0f / std::sqrt(static_cast<float>(kHeadDim));
  const BatchedGemmResult result = batched_gemm(a, b, c, scale, 0.0f);

  // Spot-check one GEMM against the reference.
  Matrixf ref(scores[3].rows(), scores[3].cols());
  gemm_naive(qs[3], kts[3], ref, scale, 0.0f);
  if (!allclose(scores[3], ref)) {
    std::cout << "MISMATCH against the host reference!\n";
    return 1;
  }

  // Compare execution strategies on the simulated V100.
  const GpuArch& arch = gpu_arch(GpuModel::kV100);
  const double ours = result.timing.time_us;
  const double dflt = run_default_timed(arch, dims).time_us;
  const double cke =
      run_cke_timed(arch, dims, static_cast<int>(seq_lens.size())).time_us;
  const double magma = run_magma_timed(arch, dims).time_us;
  // The padded alternative: every GEMM blown up to max_len x max_len.
  const std::vector<GemmDims> padded(
      dims.size(), GemmDims{max_len, max_len, kHeadDim});
  const double padded_batched = run_samesize_batched_timed(arch, padded)
                                    .time_us;

  long long useful = 0, padded_flops = 0;
  for (const auto& d : dims) useful += d.flops();
  for (const auto& d : padded) padded_flops += d.flops();

  TextTable t;
  t.set_header({"execution", "time(us)", "vs ours"});
  t.add_row({"default (one kernel per GEMM)", TextTable::fmt(dflt, 1),
             TextTable::fmt(dflt / ours, 2)});
  t.add_row({"concurrent kernels (streams)", TextTable::fmt(cke, 1),
             TextTable::fmt(cke / ours, 2)});
  t.add_row({"padded cublasSgemmBatched-style",
             TextTable::fmt(padded_batched, 1),
             TextTable::fmt(padded_batched / ours, 2)});
  t.add_row({"MAGMA vbatch (unpadded)", TextTable::fmt(magma, 1),
             TextTable::fmt(magma / ours, 2)});
  t.add_row({"this framework (unpadded)", TextTable::fmt(ours, 1), "1.00"});
  t.print(std::cout);
  std::cout << "\nPadding inflates the work from "
            << static_cast<double>(useful) * 1e-6 << " MFLOP to "
            << static_cast<double>(padded_flops) * 1e-6
            << " MFLOP; the framework batches the unpadded GEMMs "
               "directly.\n";
  std::cout << "Chosen heuristic: " << to_string(result.summary.heuristic)
            << ", " << result.summary.plan.num_blocks() << " blocks for "
            << result.summary.plan.num_tiles() << " tiles.\n";
  return 0;
}
