// LSTM gate GEMMs: a recurrent-network workload for the framework.
//
// One LSTM step computes four gates, each needing two GEMMs:
//   gate_g = sigma(W_g x_t + U_g h_{t-1})   for g in {i, f, o, c}
// With sequence batch S, hidden H and input I, that is eight GEMMs per
// step: four of S x H x I (input projections) and four of S x H x H
// (recurrent projections). cublasSgemmBatched needs two calls (the sizes
// differ when I != H); the framework batches all eight in one kernel and,
// because the shapes repeat every timestep, the plan is cached once for
// the whole sequence.
#include <cmath>
#include <iostream>

#include "baselines/baselines.hpp"
#include "core/plan_io.hpp"
#include "util/table.hpp"

namespace {

float sigmoidf(float x) { return 1.0f / (1.0f + std::exp(-x)); }

}  // namespace

int main() {
  using namespace ctb;
  constexpr int kSeqBatch = 32;  // sequences per step
  constexpr int kInput = 96;
  constexpr int kHidden = 192;
  constexpr int kSteps = 16;

  // The eight GEMMs of one step (logical x_t * W_g^T shapes: S x H).
  std::vector<GemmDims> step;
  for (int g = 0; g < 4; ++g) step.push_back({kSeqBatch, kHidden, kInput});
  for (int g = 0; g < 4; ++g) step.push_back({kSeqBatch, kHidden, kHidden});

  std::cout << "LSTM cell: S=" << kSeqBatch << " I=" << kInput
            << " H=" << kHidden << " -> 8 GEMMs per step (4x "
            << kSeqBatch << "x" << kHidden << "x" << kInput << " + 4x "
            << kSeqBatch << "x" << kHidden << "x" << kHidden << ")\n\n";

  // Weights: W_g stored as I x H, U_g as H x H (so x * W needs no
  // transpose). Functional check of one full step below.
  Rng rng(1997);
  std::vector<Matrixf> w, u;
  for (int g = 0; g < 4; ++g) {
    w.emplace_back(kInput, kHidden);
    u.emplace_back(kHidden, kHidden);
    fill_random(w.back(), rng, -0.1f, 0.1f);
    fill_random(u.back(), rng, -0.1f, 0.1f);
  }
  Matrixf x(kSeqBatch, kInput), h(kSeqBatch, kHidden), cell(kSeqBatch,
                                                            kHidden);
  fill_random(x, rng, -1.0f, 1.0f);

  // One step through the framework: all eight projections in one batch.
  std::vector<Matrixf> pre(8, Matrixf(kSeqBatch, kHidden));
  {
    std::vector<GemmEntry> entries;
    for (int g = 0; g < 4; ++g)
      entries.push_back({&x, &w[static_cast<std::size_t>(g)],
                         &pre[static_cast<std::size_t>(g)]});
    for (int g = 0; g < 4; ++g)
      entries.push_back({&h, &u[static_cast<std::size_t>(g)],
                         &pre[static_cast<std::size_t>(4 + g)]});
    batched_gemm(entries, 1.0f, 0.0f);
  }
  // Gate nonlinearities and state update (i, f, o sigmoid; c tanh).
  for (int r = 0; r < kSeqBatch; ++r) {
    for (int col = 0; col < kHidden; ++col) {
      const auto rr = static_cast<std::size_t>(r);
      const auto cc = static_cast<std::size_t>(col);
      const float i_g = sigmoidf(pre[0](rr, cc) + pre[4](rr, cc));
      const float f_g = sigmoidf(pre[1](rr, cc) + pre[5](rr, cc));
      const float o_g = sigmoidf(pre[2](rr, cc) + pre[6](rr, cc));
      const float c_g = std::tanh(pre[3](rr, cc) + pre[7](rr, cc));
      cell(rr, cc) = f_g * cell(rr, cc) + i_g * c_g;
      h(rr, cc) = o_g * std::tanh(cell(rr, cc));
    }
  }
  // Spot-check one projection against the reference.
  Matrixf ref(kSeqBatch, kHidden);
  gemm_naive(x, w[2], ref, 1.0f, 0.0f);
  if (!allclose(pre[2], ref)) {
    std::cout << "MISMATCH against the host reference!\n";
    return 1;
  }
  std::cout << "one functional step verified (h updated, gates applied)\n\n";

  // Timing comparison across the sequence, with the plan cached per step.
  const GpuArch& arch = gpu_arch(GpuModel::kV100);
  PlanCache cache{PlannerConfig{}};
  double ours_us = 0;
  for (int t = 0; t < kSteps; ++t)
    ours_us += time_plan(arch, cache.plan(step).plan, step).time_us;

  const double dflt =
      run_default_timed(arch, step).time_us * kSteps;
  const std::vector<GemmDims> inputs(4, step[0]), recurs(4, step[4]);
  const double two_batched =
      (run_samesize_batched_timed(arch, inputs).time_us +
       run_samesize_batched_timed(arch, recurs).time_us) *
      kSteps;
  const double magma = run_magma_timed(arch, step).time_us * kSteps;

  TextTable t;
  t.set_header({"execution (16 steps)", "time(us)", "vs ours"});
  t.add_row({"default (8 kernels/step)", TextTable::fmt(dflt, 1),
             TextTable::fmt(dflt / ours_us, 2)});
  t.add_row({"cublasSgemmBatched x2/step", TextTable::fmt(two_batched, 1),
             TextTable::fmt(two_batched / ours_us, 2)});
  t.add_row({"MAGMA vbatch (1/step)", TextTable::fmt(magma, 1),
             TextTable::fmt(magma / ours_us, 2)});
  t.add_row({"this framework (1/step)", TextTable::fmt(ours_us, 1), "1.00"});
  t.print(std::cout);
  std::cout << "\nplan cache: " << cache.hits() << " hits / "
            << cache.misses() << " miss across " << kSteps << " steps\n";
  return 0;
}
