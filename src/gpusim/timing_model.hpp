// Analytical per-block timing model.
//
// The model follows the cost structure of the double-buffered GEMM kernel in
// the paper's Fig. 2 / Fig. 7:
//
//   block time = sched + Σ_chain [ fill + Σ_iters stage ] + switches + epi
//
// where `stage` is the steady-state cost of one K-loop iteration. Under
// software pipelining the iteration cost is max(compute, memory) when the SM
// has enough resident, ILP-weighted warps to hide the load latency; as
// occupancy drops, an increasing fraction of the smaller term plus a slice of
// the raw memory latency is exposed. `fill` (one load latency) is paid once
// per tile chain — batching several small-K tiles into one block amortizes it,
// which is exactly the ILP benefit the paper's batching engine targets.
//
// Compute and memory rates are shared resources: FP32 lanes are divided among
// blocks co-resident on the same SM, and DRAM bandwidth is divided among all
// resident blocks on the GPU (with a per-SM burst cap so a single resident
// block cannot monopolize the full device bandwidth).
#pragma once

#include "gpusim/arch.hpp"
#include "gpusim/work.hpp"

namespace ctb {

/// Runtime context at block admission time; produced by the SM engine.
struct BlockContext {
  int resident_on_sm = 1;      ///< blocks co-resident on this SM (incl. this).
  int resident_total = 1;      ///< blocks resident across the GPU (incl. this).
  int active_warps_on_sm = 8;  ///< useful warps resident on this SM.
};

/// Cost breakdown of one block, in core-clock cycles.
struct BlockCost {
  double total_cycles = 0.0;
  double sched_cycles = 0.0;
  double fill_cycles = 0.0;
  double mainloop_cycles = 0.0;
  double epilogue_cycles = 0.0;
  double switch_cycles = 0.0;
  double compute_cycles_per_iter = 0.0;  ///< of the last tile (diagnostic).
  double memory_cycles_per_iter = 0.0;   ///< of the last tile (diagnostic).
  double hide_factor = 0.0;              ///< latency hiding achieved, [0,1].
};

/// Cost of one block in the given context. Empty (bubble) blocks cost only
/// the scheduling overhead.
BlockCost block_cost(const GpuArch& arch, const BlockWork& block,
                     const BlockContext& ctx);

/// ILP weight of a tile: deeper per-thread work (larger sub-tiles) provides
/// more independent instructions per warp, so fewer warps are needed to hide
/// latency. Normalized so a 4x4 sub-tile over BK=8 (128 FMAs/iter) ~ 1.0.
double tile_ilp_weight(const TileWork& tile);

}  // namespace ctb
