// Work descriptors consumed by the timing model and SM engine.
//
// A kernel is a set of thread blocks; a block executes a chain of tiles (one
// tile for classic GEMM kernels, several under the paper's batching engine).
// Each tile contributes a K-loop of `iters` double-buffered iterations with a
// fixed per-iteration compute and memory cost. These descriptors are produced
// by src/kernels from the same tiling/batching decisions the functional
// executor runs, so timing and correctness always refer to the same plan.
#pragma once

#include <cstdint>
#include <vector>

namespace ctb {

/// One tile's worth of main-loop work inside a block.
struct TileWork {
  int iters = 0;                     ///< ceil(K / BK) main-loop iterations.
  int fmas_per_thread_iter = 0;      ///< FMAs per *active* thread per iter.
  std::int64_t bytes_per_iter = 0;   ///< global bytes the block loads per iter.
  /// Unique (DRAM) bytes per iteration: the A/B bands a tile shares with its
  /// row/column siblings are fetched from DRAM once and re-read from L2, so
  /// this is bytes_per_iter divided by the sharing degree. Defaults to
  /// bytes_per_iter when the builder has no sharing information.
  std::int64_t dram_bytes_per_iter = -1;
  std::int64_t epilogue_bytes = 0;   ///< C write-back (+ beta read) bytes.
  std::int64_t epilogue_flops = 0;   ///< alpha/beta scaling flops.
  std::int64_t flops = 0;            ///< useful FMA flops (2*m*n*k share).
};

/// One thread block: resource footprint plus its chain of tiles. A block
/// with an empty tile chain is a "bubble" block (MAGMA vbatch padding) that
/// pays scheduling overhead and exits.
struct BlockWork {
  int threads = 256;         ///< launched block size.
  int active_threads = 256;  ///< threads doing useful work (<= threads).
  int regs_per_thread = 32;
  int smem_bytes = 0;
  /// Fig.-2-style kernels double-buffer shared memory and registers, so a
  /// block overlaps its own loads with its own compute. MAGMA's vbatch
  /// template kernels are phase-serialized (load, syncthreads, compute),
  /// so they can only hide memory behind *other* resident blocks.
  bool double_buffered = true;
  /// Relative main-loop instruction efficiency: hand-tuned kernels (Fig. 2)
  /// are 1.0; generic template kernels (MAGMA's gemm_template) spend extra
  /// issue slots on per-iteration indexing and reach ~80%.
  double code_efficiency = 1.0;
  /// FP16 (tensor-core) execution: compute rate scales by the arch's
  /// fp16_rate_multiplier; byte counts must already reflect 2-byte elements
  /// (the work builders handle this).
  bool fp16 = false;
  std::vector<TileWork> tiles;

  std::int64_t total_flops() const {
    std::int64_t f = 0;
    for (const auto& t : tiles) f += t.flops + t.epilogue_flops;
    return f;
  }
  std::int64_t total_bytes() const {
    std::int64_t b = 0;
    for (const auto& t : tiles)
      b += t.bytes_per_iter * t.iters + t.epilogue_bytes;
    return b;
  }
};

/// A kernel launch: homogeneous block resources (CUDA semantics) and the
/// per-block work list.
struct KernelWork {
  std::vector<BlockWork> blocks;

  std::int64_t total_flops() const {
    std::int64_t f = 0;
    for (const auto& b : blocks) f += b.total_flops();
    return f;
  }
  std::int64_t total_bytes() const {
    std::int64_t b = 0;
    for (const auto& blk : blocks) b += blk.total_bytes();
    return b;
  }
};

}  // namespace ctb
