// CUDA-style occupancy calculator: how many copies of a block fit on one SM
// given its thread, register, and shared-memory footprint.
#pragma once

#include "gpusim/arch.hpp"

namespace ctb {

struct BlockResources {
  int threads = 256;
  int regs_per_thread = 32;
  int smem_bytes = 0;
};

struct OccupancyResult {
  int blocks_per_sm = 0;    ///< resident CTA limit on one SM.
  int limit_threads = 0;    ///< limit imposed by the thread budget.
  int limit_regs = 0;       ///< limit imposed by the register file.
  int limit_smem = 0;       ///< limit imposed by shared memory.
  int limit_blocks = 0;     ///< hardware CTA-slot limit.
  const char* limiter = ""; ///< which resource binds.

  /// Occupancy as resident threads / max threads per SM, in [0, 1].
  double thread_occupancy(const GpuArch& arch, int threads) const {
    return static_cast<double>(blocks_per_sm) * threads /
           arch.max_threads_per_sm;
  }
};

/// Computes the resident-block limit. Returns blocks_per_sm == 0 when the
/// block cannot launch at all (e.g. needs more shared memory than one SM
/// has); callers treat that as a launch failure.
OccupancyResult occupancy(const GpuArch& arch, const BlockResources& block);

}  // namespace ctb
