#include "gpusim/trace.hpp"

#include <ostream>

namespace ctb {

void write_chrome_trace(std::ostream& os, const ExecutionTrace& trace,
                        const GpuArch& arch) {
  os << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n";
  os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,"
        "\"args\":{\"name\":\""
     << arch.name << "\"}}";
  for (const BlockSpan& s : trace.spans) {
    os << ",\n{\"name\":\"k" << s.kernel << ".b" << s.block
       << (s.bubble ? " (bubble)" : "") << "\",\"ph\":\"X\",\"pid\":0,"
       << "\"tid\":" << s.sm << ",\"ts\":" << s.start_us
       << ",\"dur\":" << (s.end_us - s.start_us) << "}";
  }
  os << "\n]}\n";
}

}  // namespace ctb
