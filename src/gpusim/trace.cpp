#include "gpusim/trace.hpp"

#include <ostream>

namespace ctb {

void append_chrome_trace_events(std::ostream& os, const ExecutionTrace& trace,
                                const GpuArch& arch, int pid) {
  os << ",\n{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << pid
     << ",\"args\":{\"name\":\"" << arch.name << "\"}}";
  for (const BlockSpan& s : trace.spans) {
    os << ",\n{\"name\":\"k" << s.kernel << ".b" << s.block
       << (s.bubble ? " (bubble)" : "") << "\",\"ph\":\"X\",\"pid\":" << pid
       << ",\"tid\":" << s.sm << ",\"ts\":" << s.start_us
       << ",\"dur\":" << (s.end_us - s.start_us) << "}";
  }
}

void write_chrome_trace(std::ostream& os, const ExecutionTrace& trace,
                        const GpuArch& arch) {
  os << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n"
        "{\"name\":\"clock_sync\",\"ph\":\"M\",\"pid\":0,"
        "\"args\":{\"source\":\"ctb.gpusim\"}}";
  append_chrome_trace_events(os, trace, arch, 0);
  os << "\n]}\n";
}

}  // namespace ctb
