#include "gpusim/timing_model.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace ctb {

double tile_ilp_weight(const TileWork& tile) {
  // 128 FMAs per thread per iteration (e.g. a 4x4 sub-tile over BK=8) is the
  // reference depth that earns weight 1.0.
  const double w = tile.fmas_per_thread_iter / 128.0;
  // Even a 1x1 sub-tile has BK=8 independent FMA chains plus the
  // double-buffered loads in flight, hence the 0.5 floor.
  return std::clamp(w, 0.5, 2.0);
}

BlockCost block_cost(const GpuArch& arch, const BlockWork& block,
                     const BlockContext& ctx) {
  CTB_CHECK(ctx.resident_on_sm >= 1);
  CTB_CHECK(ctx.resident_total >= ctx.resident_on_sm ||
            ctx.resident_total >= 1);

  BlockCost cost;
  cost.sched_cycles = arch.block_sched_overhead_cycles;

  if (block.tiles.empty()) {  // bubble block: guard check and exit
    cost.total_cycles = cost.sched_cycles;
    return cost;
  }

  // Compute rate: FP32 lanes on this SM divided among co-resident blocks.
  // A block is further capped by its warp count: each warp pins to one SM
  // sub-partition, so a block with W warps can use at most W partitions'
  // worth of lanes (this is why Table-1's 32/64-thread blocks cannot reach
  // full SM throughput on their own).
  const int block_warps =
      (block.threads + arch.warp_size - 1) / arch.warp_size;
  const double lanes_per_partition =
      static_cast<double>(arch.fp32_lanes_per_sm) / arch.sm_subpartitions;
  const double lanes_share = std::max(
      1.0, static_cast<double>(arch.fp32_lanes_per_sm) / ctx.resident_on_sm);
  const double lanes_avail =
      std::min({lanes_share, static_cast<double>(block.threads),
                block_warps * lanes_per_partition});

  // Memory rates: DRAM and L2 bandwidth are divided among all resident
  // blocks, but one SM can burst only so far above its fair share. All
  // loaded bytes pass through L2; only the unique bytes pay the DRAM rate
  // (sibling tiles re-read shared A/B bands from L2).
  const double bw_total = arch.bytes_per_cycle();
  const double bw_burst_sm = arch.per_sm_burst_bytes_per_cycle();
  const double bw_block =
      std::min(bw_burst_sm / ctx.resident_on_sm,
               bw_total / std::max(1, ctx.resident_total));
  const double l2_total = arch.l2_bytes_per_cycle();
  const double l2_burst_sm =
      arch.per_sm_bw_burst * l2_total / arch.sm_count;
  const double l2_block =
      std::min(l2_burst_sm / ctx.resident_on_sm,
               l2_total / std::max(1, ctx.resident_total));

  // Warps issuing real work in this block round up to warp granularity:
  // partially-filled warps occupy full SIMD lanes.
  const int active_warps_block =
      (block.active_threads + arch.warp_size - 1) / arch.warp_size;

  cost.fill_cycles = arch.mem_latency_cycles;  // once per tile chain

  double mainloop = 0.0;
  double hide_acc = 0.0;
  for (const auto& tile : block.tiles) {
    CTB_CHECK(tile.iters > 0);
    const double fmas_block_iter =
        static_cast<double>(tile.fmas_per_thread_iter) * active_warps_block *
        arch.warp_size;
    const double fp16_rate =
        block.fp16 ? arch.fp16_rate_multiplier : 1.0;
    const double compute_it =
        fmas_block_iter / (lanes_avail * fp16_rate) / block.code_efficiency;
    const std::int64_t dram_bytes = tile.dram_bytes_per_iter >= 0
                                        ? tile.dram_bytes_per_iter
                                        : tile.bytes_per_iter;
    const double memory_it =
        std::max(static_cast<double>(tile.bytes_per_iter) / l2_block,
                 static_cast<double>(dram_bytes) / bw_block);

    // Latency hiding: resident ILP-weighted warps versus the count needed
    // for full hiding. Idle threads (MAGMA's uniform-block penalty) inflate
    // occupancy without contributing warps here, so they buy no hiding.
    // Phase-serialized (non-double-buffered) kernels cannot overlap their
    // own loads with their own compute, so only *other* blocks' warps hide.
    const double ilp = tile_ilp_weight(tile);
    const double hiding_warps =
        block.double_buffered
            ? static_cast<double>(ctx.active_warps_on_sm)
            : std::max(0, ctx.active_warps_on_sm - active_warps_block);
    const double hide =
        std::clamp(hiding_warps * ilp / arch.hide_warps, 0.0, 1.0);
    hide_acc += hide;

    const double stage = std::max(compute_it, memory_it);
    const double exposed = std::min(compute_it, memory_it) +
                           arch.unhidden_latency_fraction *
                               arch.mem_latency_cycles;
    const double per_iter = stage + (1.0 - hide) * exposed;
    mainloop += per_iter * tile.iters;

    // Epilogue: write C back (unique bytes, DRAM bound) plus alpha/beta
    // flops.
    cost.epilogue_cycles +=
        std::max(static_cast<double>(tile.epilogue_bytes) / l2_block,
                 static_cast<double>(tile.epilogue_bytes) / bw_block) +
        static_cast<double>(tile.epilogue_flops) / lanes_avail;

    cost.compute_cycles_per_iter = compute_it;
    cost.memory_cycles_per_iter = memory_it;
  }
  cost.mainloop_cycles = mainloop;
  cost.hide_factor = hide_acc / static_cast<double>(block.tiles.size());
  cost.switch_cycles = arch.tile_switch_overhead_cycles *
                       static_cast<double>(block.tiles.size() - 1);

  cost.total_cycles = cost.sched_cycles + cost.fill_cycles +
                      cost.mainloop_cycles + cost.epilogue_cycles +
                      cost.switch_cycles;
  return cost;
}

}  // namespace ctb
