// Simulated device memory.
//
// Device buffers are host allocations tagged with the owning Device so the
// API shape of the library (allocate, H2D copy, launch, D2H copy) matches
// what the CUDA implementation in the paper does. The Device also tracks
// allocation statistics and models transfer time over a PCIe-like link for
// timeline experiments.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "gpusim/arch.hpp"
#include "util/assert.hpp"

namespace ctb {

class Device;

/// Owning, typed device allocation. Movable, non-copyable (like a cudaMalloc
/// pointer wrapped in a unique owner).
template <typename T>
class DeviceBuffer {
 public:
  DeviceBuffer() = default;
  DeviceBuffer(Device* device, std::size_t count);
  ~DeviceBuffer();

  DeviceBuffer(const DeviceBuffer&) = delete;
  DeviceBuffer& operator=(const DeviceBuffer&) = delete;
  DeviceBuffer(DeviceBuffer&& other) noexcept { *this = std::move(other); }
  DeviceBuffer& operator=(DeviceBuffer&& other) noexcept {
    if (this != &other) {
      release();
      device_ = other.device_;
      data_ = std::move(other.data_);
      other.device_ = nullptr;
    }
    return *this;
  }

  std::size_t size() const noexcept { return data_.size(); }
  bool empty() const noexcept { return data_.empty(); }

  /// Raw simulated-device pointer; only the functional executor and the
  /// copy routines should touch it.
  T* device_data() noexcept { return data_.data(); }
  const T* device_data() const noexcept { return data_.data(); }

  std::span<T> span() noexcept { return data_; }
  std::span<const T> span() const noexcept { return data_; }

 private:
  void release();

  Device* device_ = nullptr;
  std::vector<T> data_;
};

/// One simulated GPU: architecture plus memory bookkeeping.
class Device {
 public:
  explicit Device(const GpuArch& arch) : arch_(arch) {}
  explicit Device(GpuModel model) : arch_(gpu_arch(model)) {}

  const GpuArch& arch() const noexcept { return arch_; }

  template <typename T>
  DeviceBuffer<T> alloc(std::size_t count) {
    return DeviceBuffer<T>(this, count);
  }

  std::int64_t bytes_allocated() const noexcept { return bytes_allocated_; }
  std::int64_t peak_bytes() const noexcept { return peak_bytes_; }
  std::int64_t alloc_count() const noexcept { return alloc_count_; }

  /// Modeled host<->device transfer time (PCIe 3.0 x16-ish: 12 GB/s plus a
  /// fixed per-call latency).
  double transfer_time_us(std::int64_t bytes) const {
    constexpr double kPciGbps = 12.0;
    constexpr double kCallOverheadUs = 8.0;
    return kCallOverheadUs + static_cast<double>(bytes) / (kPciGbps * 1e3);
  }

 private:
  template <typename T>
  friend class DeviceBuffer;

  void on_alloc(std::int64_t bytes) {
    bytes_allocated_ += bytes;
    peak_bytes_ = std::max(peak_bytes_, bytes_allocated_);
    ++alloc_count_;
  }
  void on_free(std::int64_t bytes) { bytes_allocated_ -= bytes; }

  GpuArch arch_;
  std::int64_t bytes_allocated_ = 0;
  std::int64_t peak_bytes_ = 0;
  std::int64_t alloc_count_ = 0;
};

template <typename T>
DeviceBuffer<T>::DeviceBuffer(Device* device, std::size_t count)
    : device_(device), data_(count) {
  CTB_CHECK(device != nullptr);
  device_->on_alloc(static_cast<std::int64_t>(count * sizeof(T)));
}

template <typename T>
DeviceBuffer<T>::~DeviceBuffer() {
  release();
}

template <typename T>
void DeviceBuffer<T>::release() {
  if (device_ != nullptr) {
    device_->on_free(static_cast<std::int64_t>(data_.size() * sizeof(T)));
    device_ = nullptr;
  }
  data_.clear();
}

/// Host -> device copy. Sizes must match exactly.
template <typename T>
void copy_to_device(std::span<const T> host, DeviceBuffer<T>& dev) {
  CTB_CHECK_MSG(host.size() == dev.size(), "H2D size mismatch");
  std::copy(host.begin(), host.end(), dev.span().begin());
}

/// Device -> host copy. Sizes must match exactly.
template <typename T>
void copy_to_host(const DeviceBuffer<T>& dev, std::span<T> host) {
  CTB_CHECK_MSG(host.size() == dev.size(), "D2H size mismatch");
  std::copy(dev.span().begin(), dev.span().end(), host.begin());
}

}  // namespace ctb
