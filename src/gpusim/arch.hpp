// GPU architecture model.
//
// The paper evaluates on real NVIDIA GPUs (V100, P100, GTX 1080 Ti, Titan Xp,
// Tesla M60, GTX Titan X). This environment has no GPU, so the library runs
// every kernel through an execution-model simulator parameterized by the
// structures below. The parameters are taken from the public datasheets of
// each card; the calibration constants (latency-hiding warp count, per-SM
// burst bandwidth factor, scheduling overheads) are shared knobs validated by
// the sanity benches (bench_single_gemm reproduces the paper's ~93%-of-peak
// large-GEMM and <10%-of-peak tiny-GEMM endpoints).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace ctb {

/// Static description of one GPU. All cycle quantities are in core clocks.
struct GpuArch {
  std::string name;

  // Compute resources.
  int sm_count = 80;
  int fp32_lanes_per_sm = 64;  ///< FMA issue slots per cycle per SM.
  /// FP16 throughput relative to FP32: tensor cores on Volta (~8x for
  /// GEMM-shaped work), paired half2 math on P100 (2x), 1x elsewhere.
  double fp16_rate_multiplier = 1.0;
  int sm_subpartitions = 4;    ///< warp schedulers; warps pin to one each.
  double clock_ghz = 1.53;
  int warp_size = 32;

  // Per-SM occupancy limits.
  int max_threads_per_sm = 2048;
  int max_blocks_per_sm = 32;
  int max_threads_per_block = 1024;
  int registers_per_sm = 64 * 1024;  ///< 32-bit registers.
  int max_registers_per_thread = 255;
  int shared_mem_per_sm = 96 * 1024;  ///< bytes.
  int shared_mem_per_block = 96 * 1024;

  // Memory system.
  double dram_bw_gbps = 900.0;    ///< aggregate device-memory bandwidth.
  /// L2 bandwidth: duplicate loads of shared A/B bands across sibling tiles
  /// hit L2, so only unique bytes pay the DRAM rate.
  double l2_bw_gbps = 2150.0;
  int mem_latency_cycles = 440;   ///< global-load latency to shared memory.
  double per_sm_bw_burst = 6.0;   ///< one SM may draw burst*(BW/sm_count).

  // Scheduling costs.
  /// GigaThread-engine CTA dispatch throughput: at most this many blocks
  /// start per microsecond, device-wide. This is why plans with fewer,
  /// deeper blocks win at small K — chaining tiles into one block halves
  /// the launch traffic (the batching engine's ILP argument).
  double cta_launch_per_us = 128.0;
  int block_sched_overhead_cycles = 300;  ///< CTA launch/drain, even if empty.
  int tile_switch_overhead_cycles = 60;   ///< aux-array reads between tiles.
  double kernel_launch_us = 4.0;          ///< host-side launch latency.
  double stream_dispatch_us = 1.5;        ///< extra per-kernel gap under CKE.

  // Latency-hiding model: full hiding once `hide_warps` worth of active,
  // ILP-weighted warps are resident on an SM.
  double hide_warps = 8.0;
  /// Fraction of the load latency that is exposed per main-loop iteration
  /// when an SM has no latency hiding at all.
  double unhidden_latency_fraction = 0.25;

  /// Peak FP32 throughput in GFLOP/s (2 flops per FMA).
  double peak_gflops() const {
    return sm_count * fp32_lanes_per_sm * 2.0 * clock_ghz;
  }
  /// Aggregate DRAM bandwidth in bytes per core clock.
  double bytes_per_cycle() const { return dram_bw_gbps / clock_ghz; }
  /// Aggregate L2 bandwidth in bytes per core clock.
  double l2_bytes_per_cycle() const { return l2_bw_gbps / clock_ghz; }
  /// Burst bandwidth available to a single SM, bytes per cycle.
  double per_sm_burst_bytes_per_cycle() const {
    return per_sm_bw_burst * bytes_per_cycle() / sm_count;
  }
  double cycles_to_us(double cycles) const {
    return cycles / (clock_ghz * 1e3);
  }
};

/// Architectures used in the paper's evaluation (Figs. 8-11).
enum class GpuModel {
  kV100,       // Volta, primary evaluation platform
  kP100,       // Pascal
  kGTX1080Ti,  // Pascal
  kTitanXp,    // Pascal
  kM60,        // Maxwell
  kGTXTitanX,  // Maxwell
};

/// Returns the preset description of `model`.
const GpuArch& gpu_arch(GpuModel model);

/// All presets, in the order of Fig. 11.
std::vector<GpuModel> all_gpu_models();

const char* to_string(GpuModel model);

}  // namespace ctb
