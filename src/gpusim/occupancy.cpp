#include "gpusim/occupancy.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace ctb {

OccupancyResult occupancy(const GpuArch& arch, const BlockResources& block) {
  CTB_CHECK_MSG(block.threads > 0, "block must have threads");
  OccupancyResult r;

  if (block.threads > arch.max_threads_per_block ||
      block.regs_per_thread > arch.max_registers_per_thread ||
      block.smem_bytes > arch.shared_mem_per_block) {
    r.limiter = "unlaunchable";
    return r;  // blocks_per_sm == 0
  }

  // A resource the block does not use cannot be the limiter; use a sentinel
  // above any real limit.
  constexpr int kUnlimited = 1 << 30;
  r.limit_threads = arch.max_threads_per_sm / block.threads;
  const int regs_per_block = block.regs_per_thread * block.threads;
  r.limit_regs = regs_per_block > 0 ? arch.registers_per_sm / regs_per_block
                                    : kUnlimited;
  r.limit_smem = block.smem_bytes > 0
                     ? arch.shared_mem_per_sm / block.smem_bytes
                     : kUnlimited;
  r.limit_blocks = arch.max_blocks_per_sm;

  r.blocks_per_sm = std::min({r.limit_threads, r.limit_regs, r.limit_smem,
                              r.limit_blocks});
  if (r.blocks_per_sm == r.limit_threads) r.limiter = "threads";
  if (r.blocks_per_sm == r.limit_blocks) r.limiter = "block-slots";
  if (r.blocks_per_sm == r.limit_smem) r.limiter = "shared-memory";
  if (r.blocks_per_sm == r.limit_regs) r.limiter = "registers";
  return r;
}

}  // namespace ctb
