#include "gpusim/arch.hpp"

#include "util/assert.hpp"

namespace ctb {

namespace {

GpuArch make_v100() {
  GpuArch a;
  a.name = "Tesla V100";
  a.sm_count = 80;
  a.fp32_lanes_per_sm = 64;
  a.fp16_rate_multiplier = 8.0;  // tensor cores
  a.clock_ghz = 1.53;
  a.max_threads_per_sm = 2048;
  a.max_blocks_per_sm = 32;
  a.registers_per_sm = 64 * 1024;
  a.shared_mem_per_sm = 96 * 1024;
  a.shared_mem_per_block = 96 * 1024;
  a.dram_bw_gbps = 900.0;
  a.l2_bw_gbps = 2150.0;
  a.mem_latency_cycles = 440;
  a.cta_launch_per_us = 128.0;
  return a;
}

GpuArch make_p100() {
  GpuArch a;
  a.name = "Tesla P100";
  a.sm_count = 56;
  a.fp32_lanes_per_sm = 64;
  a.fp16_rate_multiplier = 2.0;  // half2 FMA
  a.clock_ghz = 1.48;
  a.max_threads_per_sm = 2048;
  a.max_blocks_per_sm = 32;
  a.registers_per_sm = 64 * 1024;
  a.shared_mem_per_sm = 64 * 1024;
  a.shared_mem_per_block = 48 * 1024;
  a.dram_bw_gbps = 732.0;
  a.l2_bw_gbps = 1620.0;
  a.cta_launch_per_us = 96.0;
  a.mem_latency_cycles = 480;
  return a;
}

GpuArch make_1080ti() {
  GpuArch a;
  a.name = "GTX 1080 Ti";
  a.sm_count = 28;
  a.fp32_lanes_per_sm = 128;
  a.clock_ghz = 1.58;
  a.max_threads_per_sm = 2048;
  a.max_blocks_per_sm = 32;
  a.registers_per_sm = 64 * 1024;
  a.shared_mem_per_sm = 96 * 1024;
  a.shared_mem_per_block = 48 * 1024;
  a.dram_bw_gbps = 484.0;
  a.l2_bw_gbps = 1210.0;
  a.cta_launch_per_us = 96.0;
  a.mem_latency_cycles = 500;
  return a;
}

GpuArch make_titan_xp() {
  GpuArch a;
  a.name = "Titan Xp";
  a.sm_count = 30;
  a.fp32_lanes_per_sm = 128;
  a.clock_ghz = 1.58;
  a.max_threads_per_sm = 2048;
  a.max_blocks_per_sm = 32;
  a.registers_per_sm = 64 * 1024;
  a.shared_mem_per_sm = 96 * 1024;
  a.shared_mem_per_block = 48 * 1024;
  a.dram_bw_gbps = 547.0;
  a.l2_bw_gbps = 1320.0;
  a.cta_launch_per_us = 96.0;
  a.mem_latency_cycles = 500;
  return a;
}

GpuArch make_m60() {
  GpuArch a;
  a.name = "Tesla M60";
  a.sm_count = 16;
  a.fp32_lanes_per_sm = 128;
  a.clock_ghz = 1.18;
  a.max_threads_per_sm = 2048;
  a.max_blocks_per_sm = 32;
  a.registers_per_sm = 64 * 1024;
  a.shared_mem_per_sm = 96 * 1024;
  a.shared_mem_per_block = 48 * 1024;
  a.dram_bw_gbps = 160.0;
  a.l2_bw_gbps = 640.0;
  a.cta_launch_per_us = 64.0;
  a.mem_latency_cycles = 520;
  return a;
}

GpuArch make_titan_x() {
  GpuArch a;
  a.name = "GTX Titan X";
  a.sm_count = 24;
  a.fp32_lanes_per_sm = 128;
  a.clock_ghz = 1.0;
  a.max_threads_per_sm = 2048;
  a.max_blocks_per_sm = 32;
  a.registers_per_sm = 64 * 1024;
  a.shared_mem_per_sm = 96 * 1024;
  a.shared_mem_per_block = 48 * 1024;
  a.dram_bw_gbps = 336.0;
  a.l2_bw_gbps = 900.0;
  a.cta_launch_per_us = 64.0;
  a.mem_latency_cycles = 520;
  return a;
}

}  // namespace

const GpuArch& gpu_arch(GpuModel model) {
  static const GpuArch v100 = make_v100();
  static const GpuArch p100 = make_p100();
  static const GpuArch gtx1080ti = make_1080ti();
  static const GpuArch titan_xp = make_titan_xp();
  static const GpuArch m60 = make_m60();
  static const GpuArch titan_x = make_titan_x();
  switch (model) {
    case GpuModel::kV100:
      return v100;
    case GpuModel::kP100:
      return p100;
    case GpuModel::kGTX1080Ti:
      return gtx1080ti;
    case GpuModel::kTitanXp:
      return titan_xp;
    case GpuModel::kM60:
      return m60;
    case GpuModel::kGTXTitanX:
      return titan_x;
  }
  CTB_CHECK_MSG(false, "unknown GpuModel");
  return v100;  // unreachable
}

std::vector<GpuModel> all_gpu_models() {
  return {GpuModel::kV100,    GpuModel::kP100, GpuModel::kGTX1080Ti,
          GpuModel::kTitanXp, GpuModel::kM60,  GpuModel::kGTXTitanX};
}

const char* to_string(GpuModel model) {
  switch (model) {
    case GpuModel::kV100:
      return "V100";
    case GpuModel::kP100:
      return "P100";
    case GpuModel::kGTX1080Ti:
      return "GTX1080Ti";
    case GpuModel::kTitanXp:
      return "TitanXp";
    case GpuModel::kM60:
      return "M60";
    case GpuModel::kGTXTitanX:
      return "GTXTitanX";
  }
  return "?";
}

}  // namespace ctb
