// Event-driven GPU simulator.
//
// Thread blocks are dispatched in submission order (GigaThread-style): the
// head of the pending queue is admitted to the least-loaded SM that has room
// for its thread/register/shared-memory footprint; if no SM has room the
// dispatcher stalls until a block completes. A block's duration is fixed at
// admission from the timing model, using an effective-residency estimate that
// accounts for the backlog about to land on the same SM (so first-wave blocks
// see steady-state contention, not an empty machine).
//
// The engine is deterministic: identical inputs produce identical timelines.
#pragma once

#include <span>
#include <vector>

#include "gpusim/arch.hpp"
#include "gpusim/timing_model.hpp"
#include "gpusim/trace.hpp"
#include "gpusim/work.hpp"

namespace ctb {

/// A kernel submitted to the device at `arrival_us` (relative to timeline 0).
/// Kernels sharing a non-negative `stream` id serialize in submission order
/// (CUDA stream semantics); stream -1 means fully independent.
struct LaunchedKernel {
  const KernelWork* work = nullptr;
  double arrival_us = 0.0;
  int stream = -1;
};

/// Aggregate simulation outcome.
struct SimStats {
  double makespan_us = 0.0;       ///< completion time of the last block.
  std::int64_t total_flops = 0;
  std::int64_t total_bytes = 0;
  std::int64_t block_count = 0;
  std::int64_t bubble_blocks = 0; ///< blocks with no tiles (vbatch padding).
  double achieved_gflops = 0.0;
  double avg_resident_blocks = 0.0;  ///< time-averaged resident CTAs.
  double sm_busy_fraction = 0.0;     ///< time-avg fraction of SMs with work.
  double mean_hide_factor = 0.0;     ///< block-averaged latency hiding.
};

/// Simulates one or more kernels sharing the device. Throws CheckError when
/// a block cannot launch on this architecture at all. When `trace` is
/// non-null, one BlockSpan per block is appended (chrome://tracing export
/// via write_chrome_trace).
SimStats simulate(const GpuArch& arch, std::span<const LaunchedKernel> kernels,
                  ExecutionTrace* trace = nullptr);

/// Single kernel at time zero (no host launch overhead included; callers add
/// arch.kernel_launch_us per launch as appropriate for their baseline).
SimStats simulate_kernel(const GpuArch& arch, const KernelWork& work,
                         ExecutionTrace* trace = nullptr);

/// Kernels executed back-to-back in one CUDA stream: each kernel starts after
/// the previous finishes plus a host launch gap. Models the paper's
/// "default" execution mode.
SimStats simulate_serial(const GpuArch& arch,
                         std::span<const KernelWork> kernels);

/// Concurrent kernel execution over `num_streams` streams: kernel i goes to
/// stream i % num_streams; streams serialize internally, and the device
/// interleaves whatever is available. Models the paper's "cke" baseline.
SimStats simulate_concurrent(const GpuArch& arch,
                             std::span<const KernelWork> kernels,
                             int num_streams);

}  // namespace ctb
