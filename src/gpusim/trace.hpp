// Execution-trace capture and export.
//
// The SM engine can record one span per thread block (which SM ran it,
// when, for how long); write_chrome_trace() emits the spans in the Chrome
// tracing JSON format, so a simulated kernel's schedule can be inspected in
// chrome://tracing or Perfetto — SM occupancy gaps, wave boundaries, and
// the long-block tails of over-deep batching chains are all visible.
#pragma once

#include <iosfwd>
#include <vector>

#include "gpusim/arch.hpp"

namespace ctb {

/// One block's execution interval.
struct BlockSpan {
  int sm = 0;
  int kernel = 0;
  int block = 0;
  double start_us = 0.0;
  double end_us = 0.0;
  bool bubble = false;  ///< vbatch padding block.
};

struct ExecutionTrace {
  std::vector<BlockSpan> spans;

  void clear() { spans.clear(); }
  bool empty() const { return spans.empty(); }
};

/// Writes the trace as Chrome tracing JSON (one complete event per block;
/// tid = SM index, pid = 0). Timestamps are microseconds as the format
/// expects.
void write_chrome_trace(std::ostream& os, const ExecutionTrace& trace,
                        const GpuArch& arch);

/// Appends the trace's events (a process_name metadata record naming the
/// architecture, then one complete event per block, tid = SM index) under
/// `pid`, each prefixed with ",\n" — for embedding into an already-open
/// "traceEvents" array next to other timelines (e.g. host telemetry spans).
void append_chrome_trace_events(std::ostream& os, const ExecutionTrace& trace,
                                const GpuArch& arch, int pid);

}  // namespace ctb
