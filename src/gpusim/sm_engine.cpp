#include "gpusim/sm_engine.hpp"

#include <algorithm>
#include <queue>
#include <tuple>

#include "gpusim/occupancy.hpp"
#include "telemetry/telemetry.hpp"
#include "util/assert.hpp"

namespace ctb {

namespace {

struct SmState {
  int threads = 0;
  int regs = 0;
  int smem = 0;
  int blocks = 0;
  int active_warps = 0;

  bool fits(const GpuArch& arch, const BlockWork& b) const {
    return threads + b.threads <= arch.max_threads_per_sm &&
           regs + b.regs_per_thread * b.threads <= arch.registers_per_sm &&
           smem + b.smem_bytes <= arch.shared_mem_per_sm &&
           blocks + 1 <= arch.max_blocks_per_sm;
  }
  void add(const GpuArch& arch, const BlockWork& b) {
    threads += b.threads;
    regs += b.regs_per_thread * b.threads;
    smem += b.smem_bytes;
    blocks += 1;
    active_warps += (b.active_threads + arch.warp_size - 1) / arch.warp_size;
  }
  void remove(const GpuArch& arch, const BlockWork& b) {
    threads -= b.threads;
    regs -= b.regs_per_thread * b.threads;
    smem -= b.smem_bytes;
    blocks -= 1;
    active_warps -= (b.active_threads + arch.warp_size - 1) / arch.warp_size;
  }
};

struct KernelState {
  const KernelWork* work = nullptr;
  int stream = 0;
  double submit_us = 0.0;
  bool ready = false;   // stream predecessor finished and submit time reached
  int next_block = 0;   // next block to dispatch (in-order within a kernel)
  int unfinished = 0;   // blocks admitted or pending
};

// Event kinds, ordered so that at equal times releases happen before
// readiness changes and admissions.
enum class EventKind { kBlockFinish = 0, kKernelReady = 1, kLauncherFree = 2 };

struct Event {
  double time_us;
  EventKind kind;
  int kernel;
  int block;  // block index for finish events
  int sm;

  bool operator>(const Event& other) const {
    return std::tie(time_us, kind, kernel, block) >
           std::tie(other.time_us, other.kind, other.kernel, other.block);
  }
};

}  // namespace

SimStats simulate(const GpuArch& arch,
                  std::span<const LaunchedKernel> kernels,
                  ExecutionTrace* trace) {
  CTB_TEL_SPAN("sim.simulate");
  CTB_TEL_COUNT("sim.kernels", kernels.size());
  SimStats stats;
  std::vector<KernelState> ks(kernels.size());
  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> events;

  std::int64_t pending_total = 0;  // dispatchable blocks of ready kernels
  for (std::size_t i = 0; i < kernels.size(); ++i) {
    CTB_CHECK(kernels[i].work != nullptr);
    ks[i].work = kernels[i].work;
    ks[i].submit_us = kernels[i].arrival_us;
    ks[i].unfinished = static_cast<int>(kernels[i].work->blocks.size());
    stats.block_count += ks[i].unfinished;
    for (const auto& b : kernels[i].work->blocks) {
      if (b.tiles.empty()) ++stats.bubble_blocks;
      // Validate launchability once up front.
      const OccupancyResult occ = occupancy(
          arch, BlockResources{b.threads, b.regs_per_thread, b.smem_bytes});
      CTB_CHECK_MSG(occ.blocks_per_sm > 0,
                    "block (threads=" << b.threads << ", regs="
                                      << b.regs_per_thread << ", smem="
                                      << b.smem_bytes
                                      << ") cannot launch on " << arch.name);
    }
    stats.total_flops += kernels[i].work->total_flops();
    stats.total_bytes += kernels[i].work->total_bytes();
    events.push(Event{ks[i].submit_us, EventKind::kKernelReady,
                      static_cast<int>(i), -1, -1});
  }

  std::vector<SmState> sms(static_cast<std::size_t>(arch.sm_count));
  int resident_total = 0;
  double now = 0.0;
  double resident_integral = 0.0;  // Σ resident_blocks * dt
  double busy_integral = 0.0;      // Σ busy_sms * dt
  double hide_sum = 0.0;
  std::int64_t nonbubble_blocks = 0;

  // GigaThread CTA-dispatch throttle: block starts are spaced at least
  // 1 / cta_launch_per_us apart, device-wide.
  const double launch_interval =
      arch.cta_launch_per_us > 0 ? 1.0 / arch.cta_launch_per_us : 0.0;
  double launcher_free = 0.0;
  bool launcher_event_pending = false;

  // Admits as many pending blocks as fit, in kernel/block order. Returns
  // when no ready kernel's head block fits anywhere, or when the launcher
  // is saturated (in which case a wake-up event is scheduled).
  auto admit = [&](double t) {
    bool progress = true;
    while (progress) {
      progress = false;
      for (std::size_t i = 0; i < ks.size(); ++i) {
        KernelState& k = ks[i];
        if (!k.ready ||
            k.next_block >= static_cast<int>(k.work->blocks.size()))
          continue;
        if (t + 1e-12 < launcher_free) {
          // Launcher saturated: resume admission when it frees up.
          if (!launcher_event_pending) {
            launcher_event_pending = true;
            events.push(Event{launcher_free, EventKind::kLauncherFree,
                              -1, -1, -1});
          }
          return;
        }
        const BlockWork& b =
            k.work->blocks[static_cast<std::size_t>(k.next_block)];
        // Least-loaded SM with room; ties break to the lowest index.
        int best = -1;
        for (int s = 0; s < arch.sm_count; ++s) {
          if (!sms[static_cast<std::size_t>(s)].fits(arch, b)) continue;
          if (best < 0 || sms[static_cast<std::size_t>(s)].blocks <
                              sms[static_cast<std::size_t>(best)].blocks)
            best = s;
        }
        if (best < 0) continue;
        SmState& sm = sms[static_cast<std::size_t>(best)];
        sm.add(arch, b);
        ++resident_total;
        --pending_total;
        ++k.next_block;
        launcher_free = std::max(launcher_free, t) + launch_interval;

        // Effective steady-state residency: this SM will keep receiving
        // blocks from the backlog, so the block should be priced against
        // the contention it will actually experience.
        const OccupancyResult occ = occupancy(
            arch, BlockResources{b.threads, b.regs_per_thread, b.smem_bytes});
        const std::int64_t backlog_share =
            pending_total / std::max(1, arch.sm_count);
        const int eff_on_sm = static_cast<int>(std::clamp<std::int64_t>(
            sm.blocks + backlog_share, sm.blocks, occ.blocks_per_sm));
        const std::int64_t eff_total_cap =
            static_cast<std::int64_t>(eff_on_sm) * arch.sm_count;
        const int eff_total = static_cast<int>(std::min<std::int64_t>(
            eff_total_cap, resident_total + pending_total));
        const int block_warps =
            (b.active_threads + arch.warp_size - 1) / arch.warp_size;
        const int eff_warps =
            sm.active_warps + (eff_on_sm - sm.blocks) * block_warps;

        BlockContext ctx;
        ctx.resident_on_sm = eff_on_sm;
        ctx.resident_total = std::max(eff_total, eff_on_sm);
        ctx.active_warps_on_sm = std::max(eff_warps, block_warps);
        const BlockCost cost = block_cost(arch, b, ctx);
        if (!b.tiles.empty()) {
          hide_sum += cost.hide_factor;
          ++nonbubble_blocks;
        }
        const double finish = t + arch.cycles_to_us(cost.total_cycles);
        if (trace != nullptr) {
          trace->spans.push_back(BlockSpan{best, static_cast<int>(i),
                                           k.next_block - 1, t, finish,
                                           b.tiles.empty()});
        }
        events.push(Event{finish, EventKind::kBlockFinish,
                          static_cast<int>(i), k.next_block - 1, best});
        progress = true;
      }
    }
  };

  // Stream bookkeeping: a kernel becomes ready when its submit time passes
  // AND the previous kernel on its stream has fully finished. Kernels are
  // submitted in index order per stream; we find the predecessor lazily.
  // Stream -1 kernels are independent of everything.
  for (std::size_t i = 0; i < kernels.size(); ++i)
    ks[i].stream = kernels[i].stream;
  auto stream_predecessor_done = [&](std::size_t i) {
    if (ks[i].stream < 0) return true;
    for (std::size_t j = i; j-- > 0;) {
      if (ks[j].stream == ks[i].stream) return ks[j].unfinished == 0;
    }
    return true;
  };

  while (!events.empty()) {
    const Event ev = events.top();
    events.pop();
    // Integrate statistics over [now, ev.time].
    const double dt = ev.time_us - now;
    if (dt > 0) {
      resident_integral += resident_total * dt;
      int busy = 0;
      for (const auto& sm : sms) busy += sm.blocks > 0 ? 1 : 0;
      busy_integral += busy * dt;
      now = ev.time_us;
    }
    if (ev.kind == EventKind::kLauncherFree) {
      launcher_event_pending = false;
    } else if (ev.kind == EventKind::kKernelReady) {
      KernelState& k = ks[static_cast<std::size_t>(ev.kernel)];
      if (!k.ready && stream_predecessor_done(static_cast<std::size_t>(
                          ev.kernel))) {
        k.ready = true;
        pending_total += static_cast<int>(k.work->blocks.size()) -
                         k.next_block;
      }
    } else {
      KernelState& k = ks[static_cast<std::size_t>(ev.kernel)];
      const BlockWork& b =
          k.work->blocks[static_cast<std::size_t>(ev.block)];
      sms[static_cast<std::size_t>(ev.sm)].remove(arch, b);
      --resident_total;
      --k.unfinished;
      if (k.unfinished == 0 && k.stream >= 0) {
        // Wake stream successors that were only waiting on us.
        for (std::size_t j = static_cast<std::size_t>(ev.kernel) + 1;
             j < ks.size(); ++j) {
          if (ks[j].stream != k.stream || ks[j].ready) continue;
          if (now >= ks[j].submit_us)
            events.push(Event{now, EventKind::kKernelReady,
                              static_cast<int>(j), -1, -1});
          break;  // only the immediate successor can become ready
        }
      }
    }
    admit(now);
  }

  stats.makespan_us = now;
  if (now > 0) {
    stats.avg_resident_blocks = resident_integral / now;
    stats.sm_busy_fraction = busy_integral / (now * arch.sm_count);
    stats.achieved_gflops = static_cast<double>(stats.total_flops) /
                            (now * 1e3);  // flops / us = kflops -> GFLOP/s
  }
  if (nonbubble_blocks > 0)
    stats.mean_hide_factor = hide_sum / static_cast<double>(nonbubble_blocks);
  CTB_TEL_COUNT("sim.blocks", stats.block_count);
  CTB_TEL_COUNT("sim.bubble_blocks", stats.bubble_blocks);
  CTB_TEL_HIST("sim.busy_pct", 100.0 * stats.sm_busy_fraction + 0.5);
  CTB_TEL_HIST("sim.resident_blocks", stats.avg_resident_blocks + 0.5);
  CTB_TEL_HIST("sim.hide_pct", 100.0 * stats.mean_hide_factor + 0.5);
  return stats;
}

SimStats simulate_kernel(const GpuArch& arch, const KernelWork& work,
                         ExecutionTrace* trace) {
  const LaunchedKernel launch{&work, 0.0};
  return simulate(arch, std::span<const LaunchedKernel>(&launch, 1), trace);
}

SimStats simulate_serial(const GpuArch& arch,
                         std::span<const KernelWork> kernels) {
  SimStats total;
  for (const auto& k : kernels) {
    const SimStats s = simulate_kernel(arch, k);
    total.makespan_us += s.makespan_us + arch.kernel_launch_us;
    total.total_flops += s.total_flops;
    total.total_bytes += s.total_bytes;
    total.block_count += s.block_count;
    total.bubble_blocks += s.bubble_blocks;
    // Time-weighted roll-up of utilization metrics.
    total.avg_resident_blocks += s.avg_resident_blocks * s.makespan_us;
    total.sm_busy_fraction += s.sm_busy_fraction * s.makespan_us;
    total.mean_hide_factor += s.mean_hide_factor * s.makespan_us;
  }
  if (total.makespan_us > 0) {
    total.avg_resident_blocks /= total.makespan_us;
    total.sm_busy_fraction /= total.makespan_us;
    total.mean_hide_factor /= total.makespan_us;
    total.achieved_gflops =
        static_cast<double>(total.total_flops) / (total.makespan_us * 1e3);
  }
  return total;
}

SimStats simulate_concurrent(const GpuArch& arch,
                             std::span<const KernelWork> kernels,
                             int num_streams) {
  CTB_CHECK(num_streams >= 1);
  std::vector<LaunchedKernel> launches;
  launches.reserve(kernels.size());
  for (std::size_t i = 0; i < kernels.size(); ++i) {
    launches.push_back(LaunchedKernel{
        &kernels[i],
        arch.kernel_launch_us +
            static_cast<double>(i) * arch.stream_dispatch_us,
        static_cast<int>(i) % num_streams});
  }
  return simulate(arch, launches);
}

}  // namespace ctb
