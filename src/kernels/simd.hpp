// Runtime-dispatched explicit-SIMD tile loops for the packed microkernels.
//
// The compile-time microkernels in microkernel.hpp rely on the compiler
// auto-vectorizing their unrolled j-loops. This layer replaces the interior
// K loop with hand-vectorized code: per-ISA translation units (simd_avx2.cpp,
// simd_avx512.cpp, simd_neon.cpp) instantiate one shared tile-loop template
// (simd_kernels.inl) per distinct Table-1/2 tile geometry, vectorizing along
// the j (x) axis so every vector lane owns exactly one C element.
//
// Determinism (DESIGN.md §6): lanes are independent C elements, so each
// element's accumulation chain is still scalar-ordered — ascending (k0, p)
// over the staged panel values — and the multiply and add are written as
// separate statements under the global -ffp-contract=off, so no lane ever
// sees a fused or reassociated operation. The SIMD result is bit-identical
// to the scalar microkernels and the generic executor for every geometry,
// precision, transpose mode, and gather.
//
// Dispatch: `detected_simd_isa()` probes the host once (CPUID on x86-64,
// NEON is baseline on aarch64); `active_simd_isa()` starts from the
// detection, optionally overridden by CTB_SIMD_ISA=scalar|neon|avx2|avx512
// in the environment, and is clamped so it never exceeds what the host
// supports. Building with -DCTB_SIMD=OFF compiles every per-ISA table to an
// empty stub and detection reports kScalar, so the scalar microkernels carry
// the whole suite.
//
// This header deliberately defines no inline functions: it is included by
// translation units compiled with different target flags (-mavx2, -mavx512f),
// and keeping it declaration-only removes any chance of ODR-merging function
// bodies compiled for different ISAs.
#pragma once

namespace ctb {

/// Instruction sets the dispatcher can select, in increasing capability
/// order (the order set_simd_isa clamps against).
enum class SimdIsa { kScalar = 0, kNeon = 1, kAvx2 = 2, kAvx512 = 3 };

/// Interior K loop over the packed panels of one (ty, tx) tile: accumulates
/// `nsteps` BY x BK / BK x BX panel blocks into a row-major BY x BX
/// accumulator (`acc[i * BX + j]`), fully overwriting it (every element is
/// the sum-from-zero, so callers need not clear the scratch). The caller
/// applies the alpha/beta epilogue; the loop touches nothing else.
///
/// Each table entry also carries an accumulate-in variant with the same
/// signature (`fn_acc`): instead of starting from zero it loads the vector
/// accumulators from `acc` and continues the chain — the split-K fix-up
/// reduction continues a tile's ascending (k0, p) chain across K slices
/// through it. Pass `a_panel`/`b_panel` pre-offset to the slice's first
/// step and `nsteps` = the slice's step count.
using SimdTileLoopFn = void (*)(const float* a_panel, const float* b_panel,
                                int nsteps, float* acc);

/// One geometry's tile loops in a per-ISA table. BK is 8 for every suite
/// entry (paper §4.2.2); it is part of the key anyway so a future suite
/// cannot silently match the wrong kernel.
struct SimdLoopEntry {
  int by, bx, bk;
  SimdTileLoopFn fn;
  SimdTileLoopFn fn_acc;
};

/// One C row's worth of fused-epilogue store work (DESIGN.md §12): the
/// caller resolves everything row-scoped — the destination row pointer
/// (already through any row permutation), the residual row, and this row's
/// bias value — so the kernel only walks columns. `ops` holds the packed
/// chain's op ids in order (the integer values of ctb::EpilogueOp,
/// epilogue.hpp — kept as plain ints so this header stays dependency-free);
/// the kernel applies the value ops (bias=1, relu=2, residual=3) per vector
/// chunk in chain order and ignores permutation ids, which only affect the
/// caller's addressing. `n` may be any length: the ragged tail is handled
/// with masked partial loads/stores, so edge tiles never fall back to the
/// scalar path. fp32 only — fp16 rounds after every op and stays scalar.
struct EpilogueRowArgs {
  const float* acc = nullptr;       ///< accumulator row (tile-local)
  float* c = nullptr;               ///< destination C row
  const float* residual = nullptr;  ///< residual row (kResidual ops only)
  int n = 0;                        ///< valid columns in this row
  float alpha = 1.0f;
  float beta = 0.0f;  ///< prior scale; C is read when nonzero
  float bias = 0.0f;  ///< this row's bias value (kBias ops only)
  int ops[4] = {0, 0, 0, 0};  ///< op ids in chain order
  int nops = 0;
};

/// Vectorized fused-epilogue store of one row; bit-identical to the scalar
/// per-element chain (separate multiply/add statements, sign-preserving
/// relu select) for every op combination.
using SimdEpilogueRowFn = void (*)(const EpilogueRowArgs& row);

namespace simd_detail {
/// Per-ISA geometry tables, defined in their own translation units so each
/// can be compiled with the matching target flags. On hosts (or builds)
/// without the ISA they return an empty table (*count == 0).
const SimdLoopEntry* avx2_loops(int* count);
const SimdLoopEntry* avx512_loops(int* count);
const SimdLoopEntry* neon_loops(int* count);
/// Per-ISA fused-epilogue row kernels; nullptr when the ISA is unavailable.
SimdEpilogueRowFn avx2_epilogue_row();
SimdEpilogueRowFn avx512_epilogue_row();
SimdEpilogueRowFn neon_epilogue_row();
}  // namespace simd_detail

/// Best ISA the host supports (memoized; kScalar when CTB_SIMD=OFF).
SimdIsa detected_simd_isa();

/// The ISA the executors dispatch on: detection clamped by CTB_SIMD_ISA and
/// any set_simd_isa() call. Never exceeds detected_simd_isa(); requesting an
/// ISA the host lacks (e.g. neon on x86-64) selects an empty table, and the
/// dispatcher falls back to the scalar microkernels — still bit-exact.
SimdIsa active_simd_isa();

/// Overrides the active ISA (clamped to the detected one). For in-process
/// A/B comparisons in tests and benchmarks; takes effect on the next
/// executor call.
void set_simd_isa(SimdIsa isa);

/// "scalar" | "neon" | "avx2" | "avx512" — used in telemetry names, CSV
/// headers, and perf-report fields.
const char* simd_isa_name(SimdIsa isa);

/// Parses a simd_isa_name string (as in CTB_SIMD_ISA); returns kScalar for
/// anything unrecognized.
SimdIsa parse_simd_isa(const char* name);

/// The `isa` tile loop for the given geometry, or nullptr when that ISA has
/// no kernel for it (unknown geometry, ISA unavailable on this host/build,
/// or isa == kScalar, which by design has no entries here — scalar tiles run
/// the compile-time microkernels).
SimdTileLoopFn simd_tile_loop(SimdIsa isa, int by, int bx, int bk);

/// The accumulate-in (chain-continuation) variant of simd_tile_loop; same
/// availability: non-null exactly when simd_tile_loop is.
SimdTileLoopFn simd_tile_loop_acc(SimdIsa isa, int by, int bx, int bk);

/// The `isa` fused-epilogue row kernel, or nullptr (isa == kScalar, or the
/// ISA is unavailable on this host/build) — the caller then runs the scalar
/// per-element chain, which is bit-identical.
SimdEpilogueRowFn simd_epilogue_row(SimdIsa isa);

/// RAII ISA override for tests and benchmarks.
class ScopedSimdIsa {
 public:
  explicit ScopedSimdIsa(SimdIsa isa) : saved_(active_simd_isa()) {
    set_simd_isa(isa);
  }
  ~ScopedSimdIsa() { set_simd_isa(saved_); }
  ScopedSimdIsa(const ScopedSimdIsa&) = delete;
  ScopedSimdIsa& operator=(const ScopedSimdIsa&) = delete;

 private:
  SimdIsa saved_;
};

}  // namespace ctb
