// Shared explicit-SIMD tile-loop template, included by exactly one per-ISA
// translation unit at a time with CTB_SIMD_W (vector lanes) defined and the
// matching -m<isa> target flags on that file. Everything lives in an
// anonymous namespace so instantiations compiled for different ISAs can
// never collide across translation units.
//
// Vector model: GCC/Clang vector extensions rather than <immintrin.h>
// intrinsics — the arithmetic (`*`, `+`) lowers to single vmulps/vaddps
// (or fmul/fadd on NEON) instructions of the file's target width, and
// because the global -ffp-contract=off applies here too, the separate
// multiply and add statements below are never fused into an FMA. Each
// vector lane is one C element, so per element the accumulation order is
// exactly the scalar chain: ascending (k0, p) over staged panel values.
//
// Layout contract (packing.hpp): A panel block `step` is BY x BK at
// `a_panel[step*BY*BK]`, element (i, p) at `[i*BK + p]`; B panel block is
// BK x BX at `b_panel[step*BK*BX]`, element (p, j) at `[p*BX + j]`. The
// accumulator is row-major BY x BX and fully OVERWRITTEN (every element is
// the freshly accumulated sum from zero) — callers need not clear it.
#ifndef CTB_SIMD_W
#error "simd_kernels.inl requires CTB_SIMD_W (vector lanes) to be defined"
#endif

#include <cstddef>

namespace {

constexpr int kLanes = CTB_SIMD_W;
typedef float VecF
    __attribute__((vector_size(kLanes * sizeof(float)), aligned(4)));

// Unaligned load/store through memcpy — compiles to a single vmovups /
// ldr q on every supported target; the panels are only float-aligned.
inline VecF loadu(const float* p) {
  VecF v;
  __builtin_memcpy(&v, p, sizeof(VecF));
  return v;
}

inline void storeu(float* p, VecF v) { __builtin_memcpy(p, &v, sizeof(VecF)); }

inline VecF splat(float x) {
  VecF v;
  for (int l = 0; l < kLanes; ++l) v[l] = x;
  return v;
}

/// Interior K loop for one BY x BX tile (see SimdTileLoopFn). Register
/// blocking: a kRowBlock x kColBlock block of accumulator vectors is held
/// in registers across the ENTIRE K extent (all nsteps * BK products) and
/// stored to `acc` exactly once — the accumulator never round-trips through
/// memory per k-step, which is what keeps the large 128x128 geometries from
/// going memory-bound on accumulator traffic. Per C element the add order
/// is still ascending (step, p), i.e. the scalar chain's ascending (k0, p).
///
/// Block sizes: 8 rows on the 32-register files (AVX-512 zmm, NEON), 4 on
/// AVX2's 16-ymm file where 16 live accumulators would spill; 2 vector
/// columns whenever the geometry has an even vector-column count (every
/// Table-1/2 geometry except BX == kLanes). Every geometry has BY % 8 == 0
/// except 16x16 at kRowBlock 8 — 16 % 8 == 0, so the static_assert holds
/// throughout.
/// `Accumulate` selects the chain-continuation variant: the register block
/// initializes from `acc` (an exact reload of previously stored vectors —
/// float round-trips through memory are bit-preserving) instead of zero, so
/// the split-K fix-up reduction extends each element's ascending (k0, p)
/// chain across K slices without any rounding difference vs one unsplit
/// pass.
template <int BY, int BX, int BK, bool Accumulate>
void simd_tile_loop(const float* a_panel, const float* b_panel, int nsteps,
                    float* acc) {
  static_assert(BX % kLanes == 0, "BX must be a whole number of vectors");
  constexpr int kVecCols = BX / kLanes;
  constexpr int kColBlock = (kVecCols % 2 == 0) ? 2 : 1;
  constexpr int kRowBlock = (kLanes == 8) ? 4 : 8;
  static_assert(BY % kRowBlock == 0, "BY must be a whole number of row blocks");

  for (int i0 = 0; i0 < BY; i0 += kRowBlock) {
    for (int v0 = 0; v0 < kVecCols; v0 += kColBlock) {
      VecF r[kRowBlock][kColBlock];
      for (int i = 0; i < kRowBlock; ++i)
        for (int c = 0; c < kColBlock; ++c)
          r[i][c] = Accumulate
                        ? loadu(acc + static_cast<std::size_t>(i0 + i) * BX +
                                v0 * kLanes + c * kLanes)
                        : splat(0.0f);
      for (int step = 0; step < nsteps; ++step) {
        const float* a_blk = a_panel +
                             static_cast<std::size_t>(step) * (BY * BK) +
                             static_cast<std::size_t>(i0) * BK;
        const float* b_blk = b_panel +
                             static_cast<std::size_t>(step) * (BK * BX) +
                             static_cast<std::size_t>(v0) * kLanes;
        for (int p = 0; p < BK; ++p) {
          VecF vb[kColBlock];
          for (int c = 0; c < kColBlock; ++c)
            vb[c] = loadu(b_blk + p * BX + c * kLanes);
          for (int i = 0; i < kRowBlock; ++i) {
            const VecF va = splat(a_blk[i * BK + p]);
            for (int c = 0; c < kColBlock; ++c) {
              // Separate product/sum statements: with -ffp-contract=off
              // these stay an unfused vmulps + vaddps, matching the scalar
              // chain's rounding exactly.
              VecF m = va * vb[c];
              r[i][c] = r[i][c] + m;
            }
          }
        }
      }
      for (int i = 0; i < kRowBlock; ++i)
        for (int c = 0; c < kColBlock; ++c)
          storeu(acc + static_cast<std::size_t>(i0 + i) * BX + v0 * kLanes +
                     c * kLanes,
                 r[i][c]);
    }
  }
}

/// The six distinct (BY, BX) tile geometries covering all 15 Table-1/2
/// entries (BK is 8 throughout). Shared by every per-ISA table.
constexpr ctb::SimdLoopEntry kSimdLoops[] = {
    {16, 16, 8, &simd_tile_loop<16, 16, 8, false>,
     &simd_tile_loop<16, 16, 8, true>},
    {32, 32, 8, &simd_tile_loop<32, 32, 8, false>,
     &simd_tile_loop<32, 32, 8, true>},
    {64, 64, 8, &simd_tile_loop<64, 64, 8, false>,
     &simd_tile_loop<64, 64, 8, true>},
    {128, 64, 8, &simd_tile_loop<128, 64, 8, false>,
     &simd_tile_loop<128, 64, 8, true>},
    {64, 128, 8, &simd_tile_loop<64, 128, 8, false>,
     &simd_tile_loop<64, 128, 8, true>},
    {128, 128, 8, &simd_tile_loop<128, 128, 8, false>,
     &simd_tile_loop<128, 128, 8, true>},
};

constexpr int kSimdLoopCount =
    static_cast<int>(sizeof(kSimdLoops) / sizeof(kSimdLoops[0]));

// ------------------------------------------------ fused epilogue row ----

typedef int VecI
    __attribute__((vector_size(kLanes * sizeof(int)), aligned(4)));

/// Masked-tail load: the first `rem` lanes from `p`, the rest zero. The
/// memcpy lowers to a short masked/partial move; zero lanes are never
/// stored back, so their garbage-free value only keeps the math defined.
inline VecF loadu_partial(const float* p, int rem) {
  VecF v = splat(0.0f);
  __builtin_memcpy(&v, p, static_cast<std::size_t>(rem) * sizeof(float));
  return v;
}

inline void storeu_partial(float* p, VecF v, int rem) {
  __builtin_memcpy(p, &v, static_cast<std::size_t>(rem) * sizeof(float));
}

// Value-op ids, mirroring ctb::EpilogueOp (epilogue.hpp).
constexpr int kEpOpBias = 1;
constexpr int kEpOpRelu = 2;
constexpr int kEpOpResidual = 3;

/// One vector chunk of the fused-epilogue row at column j (rem valid
/// lanes). Bit-exactness vs the scalar chain: the alpha product and the
/// prior add are separate statements (never fused under -ffp-contract=off),
/// the prior term is added even when beta == 0 — the scalar path computes
/// `alpha*acc + 0.0f` too — and relu selects via a sign-preserving bitmask,
/// which matches `v > 0 ? v : 0.0f` lane for lane (NaN and -0 both map to
/// +0, exactly like the scalar ternary).
inline VecF epilogue_chunk(const ctb::EpilogueRowArgs& r, int j, int rem) {
  const bool full = rem == kLanes;
  VecF v = full ? loadu(r.acc + j) : loadu_partial(r.acc + j, rem);
  v = splat(r.alpha) * v;
  VecF prior = splat(0.0f);
  if (r.beta != 0.0f) {
    const VecF c = full ? loadu(r.c + j) : loadu_partial(r.c + j, rem);
    prior = splat(r.beta) * c;
  }
  v = v + prior;
  for (int o = 0; o < r.nops; ++o) {
    switch (r.ops[o]) {
      case kEpOpBias:
        v = v + splat(r.bias);
        break;
      case kEpOpRelu: {
        const VecI mask = v > splat(0.0f);
        VecI bits;
        __builtin_memcpy(&bits, &v, sizeof(VecF));
        bits &= mask;
        __builtin_memcpy(&v, &bits, sizeof(VecF));
        break;
      }
      case kEpOpResidual: {
        const VecF res = full ? loadu(r.residual + j)
                              : loadu_partial(r.residual + j, rem);
        v = v + res;
        break;
      }
      default:
        break;  // permutation ids: handled by the caller's addressing
    }
  }
  return v;
}

/// SimdEpilogueRowFn: full-width chunks, then one masked tail chunk — a
/// ragged C border costs a partial load/store, not a scalar fallback.
void simd_epilogue_row_impl(const ctb::EpilogueRowArgs& r) {
  int j = 0;
  for (; j + kLanes <= r.n; j += kLanes)
    storeu(r.c + j, epilogue_chunk(r, j, kLanes));
  const int rem = r.n - j;
  if (rem > 0) storeu_partial(r.c + j, epilogue_chunk(r, j, rem), rem);
}

}  // namespace
