// Functional executors for the simulated device kernels.
//
// These run the exact code skeletons of the paper on the CPU, thread block
// by thread block: the single-GEMM kernel of Fig. 2 (shared-memory staged
// A/B tiles, per-thread register sub-tiles, K-loop in BK steps), the MAGMA
// vbatch kernel (gridDim.z slices with bubble-block guards), and the
// persistent-threads batched kernel of Fig. 7 driven by the five auxiliary
// arrays. Double buffering changes only timing, not values, so the
// functional path uses single buffers; the timing model accounts for the
// pipeline.
//
// All results are bit-exact across executors for a given strategy because
// every executor accumulates in the same (k0, p) order.
//
// Dispatch: when a strategy has a compile-time-specialized microkernel
// (microkernel.hpp — all Table-1 and Table-2 geometries do) and the GEMM's
// packed-panel footprint fits the pack arena budget (packing.hpp), the
// executors pack A/B panels once per (GEMM, strategy) and run every tile of
// that GEMM through the specialized kernel; otherwise the generic
// `execute_tile` stages tiles per block exactly as before. Both paths are
// bit-identical; `exec.dispatch.{specialized,generic}` count the choice.
//
// Execution is block-parallel on the host: the executors fan independent
// thread blocks out over ctb::parallel_for (OpenMP, serial fallback). This
// is safe and bit-exact because blocks write disjoint C tiles — one tile
// per block for the single/vbatch grids, and complete single coverage
// guaranteed by validate_plan for batched plans — while each block's tile
// chain and per-element FMA order stay serial. set_parallel_threads(1)
// forces the serial path; parallel_exec_test asserts bit-identical C either
// way.
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "core/batch_plan.hpp"
#include "core/tiling_strategy.hpp"
#include "linalg/gemm_ref.hpp"

namespace ctb {

/// One GEMM's operands on the simulated device. The logical problem is
/// C(MxN) = alpha * op(A)(MxK) * op(B)(KxN) + beta * C; all storage is
/// row-major with leading dimension == stored column count. With Op::kT an
/// operand is stored transposed (A storage KxM, B storage NxK), and the
/// kernel's staging loads transpose on the fly — exactly what the guarded
/// global->shared copies of a real NT/TN kernel do.
struct GemmOperands {
  const float* a = nullptr;
  const float* b = nullptr;
  float* c = nullptr;
  GemmDims dims;
  Op op_a = Op::kN;
  Op op_b = Op::kN;
  /// kFp16 emulates the tensor-core path: staged A/B values round through
  /// binary16, accumulation stays FP32, and the epilogue rounds C to
  /// binary16 (storage remains float arrays holding half-exact values).
  Precision precision = Precision::kFp32;
  /// Optional gather for logical B(k, j). When set, `b` may be null and the
  /// staging loads call the gather instead of reading memory — this is the
  /// implicit-GEMM convolution path (the real kernel computes the input
  /// address from (k, j) instead of reading a materialized im2col matrix).
  ///
  /// THREAD SAFETY: the executors invoke the gather concurrently from many
  /// host threads (one per in-flight block), always through a const
  /// GemmOperands. The callable must therefore be a pure function of
  /// (k, j): it may read captured state but must not mutate it or any other
  /// shared state. implicit_conv_operands satisfies this by capturing the
  /// shape by value and the input tensor by const pointer.
  std::function<float(int k, int j)> b_gather;
  /// Packed fused-epilogue chain (epilogue.hpp), applied inside the tile
  /// store — after the split-K fix-up join — instead of a separate
  /// elementwise pass over C. 0 = none (byte-identical to the plain store).
  /// For plan-driven execution the plan's epilogue_of_gemm entry must match
  /// this spec; audit_plan_operands enforces the agreement.
  int epilogue = 0;
  /// Operands for the ops named by `epilogue`; audited for presence, extent,
  /// and (for permutations) bijectivity before any matrix memory is touched.
  EpilogueArgs epilogue_args;
};

/// Executes one C tile (ty, tx) of `g` under `strategy`: stages A/B tiles
/// through an emulated shared memory, accumulates per-thread register
/// sub-tiles over the K loop, and applies the alpha/beta epilogue with
/// boundary guards.
void execute_tile(const TilingStrategy& strategy, const GemmOperands& g,
                  int ty, int tx, float alpha, float beta);

/// Fig. 2: classic one-tile-per-block single GEMM.
void run_single_gemm(const TilingStrategy& strategy, const GemmOperands& g,
                     float alpha, float beta);

/// Split-K single GEMM: each C tile's K loop is partitioned into up to
/// `splitk` BK-aligned slices executed as a carried chain through a
/// workspace accumulator (the deterministic fix-up reduction — see
/// run_batched_plan), so C is bitwise identical to the unsplit call at any
/// thread count and SIMD ISA. `splitk <= 1` (or a single-step K loop)
/// degrades to the unsplit path.
void run_single_gemm(const TilingStrategy& strategy, const GemmOperands& g,
                     float alpha, float beta, int splitk);

/// MAGMA vbatch: one uniform strategy, grid sized by the largest GEMM's tile
/// count, gridDim.z = batch; out-of-range (bubble) blocks return immediately.
void run_vbatch(const TilingStrategy& strategy,
                std::span<const GemmOperands> batch, float alpha, float beta);

/// Split-K vbatch: per-GEMM K slicing with the same carried-chain fix-up
/// reduction and bit-exactness guarantee as the split-K single-GEMM path.
void run_vbatch(const TilingStrategy& strategy,
                std::span<const GemmOperands> batch, float alpha, float beta,
                int splitk);

/// Audits the operand array alone: every GEMM has valid dims, an A pointer,
/// a B pointer or gather, and a C pointer; any fused-epilogue spec is a
/// canonical chain whose operands are present with the right extents
/// (bias_len == m, residual m x n, permutations bijective on their axis,
/// at most one permutation per axis). Throws CheckError naming the
/// offending batch index, before any matrix element is touched.
void audit_operands(std::span<const GemmOperands> batch);

/// Full pre-execution audit: audit_operands, then validate_plan against the
/// dims the operands actually carry (not the dims the plan was built from —
/// that closes the gap where a stale plan meets a reshaped batch). Rejects
/// every corruption class in the fault-injection catalog before the
/// executor reads or writes any matrix memory.
void audit_plan_operands(const BatchPlan& plan,
                         std::span<const GemmOperands> batch);

/// Reference execution of one GEMM — the graceful-degradation path and the
/// oracle for the fused epilogue. A transpose-, gather-, and precision-aware
/// naive triple loop with the same ascending-k accumulation and alpha/beta
/// epilogue as gemm_naive / gemm_naive_fp16, so its C output is
/// bit-identical to the host oracles; any fused-epilogue chain on `g` is
/// applied per element with exactly the executor semantics (epilogue.hpp),
/// so fused executor output is bit-identical to this reference too.
void reference_gemm(const GemmOperands& g, float alpha, float beta);

/// Fig. 7: persistent-threads batched kernel driven by the plan's aux
/// arrays. `batch` is indexed by the plan's GEMM ids. Runs
/// audit_plan_operands first, so a corrupt plan or operand array throws
/// before any memory access.
void run_batched_plan(const BatchPlan& plan,
                      std::span<const GemmOperands> batch, float alpha,
                      float beta);

/// Convenience: wraps host matrices as device operands (they share storage
/// in the simulator). Shapes are validated.
GemmOperands operands(const Matrixf& a, const Matrixf& b, Matrixf& c);

/// Transpose-aware variant: logical dims are derived from the stored shapes
/// and the ops (e.g. op_a == kT means `a` stores K x M).
GemmOperands operands(const Matrixf& a, const Matrixf& b, Matrixf& c,
                      Op op_a, Op op_b);

}  // namespace ctb
