// AVX2 instantiation of the shared SIMD tile loop (8 fp32 lanes). This file
// is compiled with -mavx2 on x86-64; on other targets, or under
// -DCTB_SIMD=OFF, it degrades to an empty table and the dispatcher never
// selects AVX2.
#include "kernels/simd.hpp"

#if defined(CTB_SIMD_ENABLED) && (defined(__x86_64__) || defined(_M_X64))

#define CTB_SIMD_W 8
#include "kernels/simd_kernels.inl"

namespace ctb::simd_detail {

const SimdLoopEntry* avx2_loops(int* count) {
  *count = kSimdLoopCount;
  return kSimdLoops;
}

SimdEpilogueRowFn avx2_epilogue_row() { return &simd_epilogue_row_impl; }

}  // namespace ctb::simd_detail

#else

namespace ctb::simd_detail {

const SimdLoopEntry* avx2_loops(int* count) {
  *count = 0;
  return nullptr;
}

SimdEpilogueRowFn avx2_epilogue_row() { return nullptr; }

}  // namespace ctb::simd_detail

#endif
