// NEON instantiation of the shared SIMD tile loop (4 fp32 lanes). NEON is
// baseline on aarch64, so no extra target flags are needed; on other
// targets, or under -DCTB_SIMD=OFF, this degrades to an empty table and the
// dispatcher never selects NEON.
#include "kernels/simd.hpp"

#if defined(CTB_SIMD_ENABLED) && (defined(__aarch64__) || defined(_M_ARM64))

#define CTB_SIMD_W 4
#include "kernels/simd_kernels.inl"

namespace ctb::simd_detail {

const SimdLoopEntry* neon_loops(int* count) {
  *count = kSimdLoopCount;
  return kSimdLoops;
}

SimdEpilogueRowFn neon_epilogue_row() { return &simd_epilogue_row_impl; }

}  // namespace ctb::simd_detail

#else

namespace ctb::simd_detail {

const SimdLoopEntry* neon_loops(int* count) {
  *count = 0;
  return nullptr;
}

SimdEpilogueRowFn neon_epilogue_row() { return nullptr; }

}  // namespace ctb::simd_detail

#endif
