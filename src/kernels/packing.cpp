#include "kernels/packing.hpp"

#include <atomic>
#include <cstdlib>

#include "telemetry/telemetry.hpp"
#include "util/assert.hpp"

namespace ctb {

namespace {

constexpr std::size_t kDefaultPackArenaBytes = 256u << 20;  // 256 MiB
constexpr std::size_t kDefaultPackGemmBytes = 64u << 20;    // 64 MiB

std::size_t env_bytes_or(const char* name, std::size_t fallback) {
  const char* env = std::getenv(name);
  if (env != nullptr && *env != '\0') {
    char* end = nullptr;
    const unsigned long long v = std::strtoull(env, &end, 10);
    if (end != nullptr && *end == '\0') return static_cast<std::size_t>(v);
  }
  return fallback;
}

std::atomic<std::size_t>& pack_budget_atomic() {
  static std::atomic<std::size_t> budget{
      env_bytes_or("CTB_PACK_BUDGET", kDefaultPackArenaBytes)};
  return budget;
}

std::atomic<std::size_t>& pack_gemm_budget_atomic() {
  static std::atomic<std::size_t> budget{
      env_bytes_or("CTB_PACK_GEMM_BUDGET", kDefaultPackGemmBytes)};
  return budget;
}

}  // namespace

std::size_t pack_arena_budget() {
  return pack_budget_atomic().load(std::memory_order_relaxed);
}

void set_pack_arena_budget(std::size_t bytes) {
  pack_budget_atomic().store(bytes, std::memory_order_relaxed);
}

std::size_t pack_gemm_budget() {
  return pack_gemm_budget_atomic().load(std::memory_order_relaxed);
}

void set_pack_gemm_budget(std::size_t bytes) {
  pack_gemm_budget_atomic().store(bytes, std::memory_order_relaxed);
}

std::size_t pack_footprint_bytes(const TilingStrategy& s, const GemmDims& d) {
  const long long ty = (d.m + s.by - 1) / s.by;
  const long long tx = (d.n + s.bx - 1) / s.bx;
  const long long steps = (d.k + s.bk - 1) / s.bk;
  const long long floats =
      ty * steps * (s.by * s.bk) + tx * steps * (s.bk * s.bx);
  return static_cast<std::size_t>(floats) * sizeof(float);
}

PackedGemm pack_gemm(const TilingStrategy& s, const GemmOperands& g) {
  CTB_CHECK(g.a != nullptr && g.dims.valid());
  CTB_CHECK_MSG(g.b != nullptr || g.b_gather,
                "B operand needs storage or a gather");
  const auto& d = g.dims;
  PackedGemm pk;
  pk.by = s.by;
  pk.bx = s.bx;
  pk.bk = s.bk;
  pk.nsteps = (d.k + s.bk - 1) / s.bk;
  pk.ty_count = (d.m + s.by - 1) / s.by;
  pk.tx_count = (d.n + s.bx - 1) / s.bx;
  pk.a.resize(static_cast<std::size_t>(pk.ty_count) * pk.nsteps *
              (s.by * s.bk));
  pk.b.resize(static_cast<std::size_t>(pk.tx_count) * pk.nsteps *
              (s.bk * s.bx));

  // A panels: the write side walks the buffer sequentially; the staged
  // value resolves bounds/transpose/fp16 once, here, instead of once per
  // consuming tile x K-step in the generic path.
  float* out = pk.a.data();
  for (int ty = 0; ty < pk.ty_count; ++ty) {
    const int row0 = ty * s.by;
    for (int step = 0; step < pk.nsteps; ++step) {
      const int k0 = step * s.bk;
      for (int i = 0; i < s.by; ++i)
        for (int p = 0; p < s.bk; ++p)
          *out++ = staged_a_value(g, row0 + i, k0 + p);
    }
  }
  // B panels, including the one-time materialization of b_gather.
  out = pk.b.data();
  for (int tx = 0; tx < pk.tx_count; ++tx) {
    const int col0 = tx * s.bx;
    for (int step = 0; step < pk.nsteps; ++step) {
      const int k0 = step * s.bk;
      for (int p = 0; p < s.bk; ++p)
        for (int j = 0; j < s.bx; ++j)
          *out++ = staged_b_value(g, k0 + p, col0 + j);
    }
  }

  CTB_TEL_COUNT("exec.pack.panels", pk.ty_count + pk.tx_count);
  CTB_TEL_COUNT("exec.pack.bytes", pk.bytes());
  return pk;
}

}  // namespace ctb
