// Cross-call packed-panel cache: repeated executions of one plan over the
// same operands (a training loop re-running run_batched_plan every step)
// amortize panel packing to zero after the first iteration.
//
// Keying mirrors PlanCache (core/plan_io.hpp): an entry is identified by the
// pack's full identity — operand pointers, dims, transpose ops, precision,
// and tile geometry — plus the cache generation current when it was
// inserted. Anything that changes the packed bytes changes the key, with
// one deliberate exception: the cache cannot see *value* mutation behind
// the pointers.
//
// Invalidation contract: callers that mutate A or B between executor calls
// must call invalidate_pack_cache() (bumps the generation, dropping every
// entry at once). As a safety net each hit runs a deterministic staleness
// probe — a handful of corner/interior panel samples recomputed through
// staged_a_value / staged_b_value and compared bitwise — which demotes a
// detectably stale entry to a miss (counted as exec.pack.cache.stale) and
// repacks. The probe is best-effort, not exhaustive: a mutation that leaves
// every probed sample bit-identical goes undetected, which is why the cache
// defaults to OFF and the explicit-invalidate contract is the guarantee.
// Gather GEMMs (b_gather) are never cached: the callable's identity is
// unobservable.
//
// Budget: resident bytes are charged against the same pack arena the
// per-call packing pass uses (pack_arena_budget); inserting past the budget
// evicts oldest-first (deterministic FIFO, counted as
// exec.pack.cache.evict). Entries are handed out as shared_ptr, so an
// executor mid-call keeps its panels alive even if they are evicted or
// invalidated concurrently.
//
// Enable with CTB_PACK_CACHE=1 in the environment, set_pack_cache_enabled(),
// or ScopedPackCache (tests/benchmarks).
#pragma once

#include <cstdint>
#include <cstddef>
#include <memory>

#include "core/tiling_strategy.hpp"
#include "kernels/functional.hpp"
#include "kernels/packing.hpp"

namespace ctb {

/// Runtime master switch; default OFF unless CTB_PACK_CACHE=1 at startup.
bool pack_cache_enabled();
void set_pack_cache_enabled(bool on);

/// Drops every entry and bumps the generation; the one call sites must make
/// after mutating operand values in place. Counts exec.pack.cache.invalidate.
void invalidate_pack_cache();

/// Introspection (tests, telemetry dumps).
std::size_t pack_cache_entries();
std::size_t pack_cache_bytes();
std::uint64_t pack_cache_generation();

/// Cached panels for (s, g), or nullptr on miss. A hit revalidates via the
/// staleness probe; counts exec.pack.cache.{hit,miss,stale}. Returns nullptr
/// without counting anything when the cache is disabled or `g` is uncacheable
/// (b_gather).
std::shared_ptr<const PackedGemm> pack_cache_lookup(const TilingStrategy& s,
                                                    const GemmOperands& g);

/// Inserts freshly packed panels, evicting oldest-first to keep resident
/// bytes within pack_arena_budget(). No-op when the cache is disabled, `g`
/// is uncacheable, or the entry alone exceeds the budget.
void pack_cache_insert(const TilingStrategy& s, const GemmOperands& g,
                       std::shared_ptr<const PackedGemm> pk);

/// RAII enable (or disable) for tests and benchmarks. Enabling starts from
/// an invalidated cache and invalidates again on exit, so scopes are
/// deterministic and never leak entries into later code.
class ScopedPackCache {
 public:
  explicit ScopedPackCache(bool on = true) : saved_(pack_cache_enabled()) {
    invalidate_pack_cache();
    set_pack_cache_enabled(on);
  }
  ~ScopedPackCache() {
    invalidate_pack_cache();
    set_pack_cache_enabled(saved_);
  }
  ScopedPackCache(const ScopedPackCache&) = delete;
  ScopedPackCache& operator=(const ScopedPackCache&) = delete;

 private:
  bool saved_;
};

}  // namespace ctb
