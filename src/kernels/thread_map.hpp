// Thread-to-sub-tile mapping inside a C tile.
//
// The BY x BX tile is covered by a (BY/sub_y) x (BX/sub_x) grid of per-thread
// sub-tiles; thread t owns sub-tile (t / cols, t % cols) in row-major order
// (paper Fig. 5). The mapping is the contract between the functional
// executor, the work builder's active-thread accounting, and the tests.
#pragma once

#include "core/tiling_strategy.hpp"
#include "util/assert.hpp"

namespace ctb {

struct SubTileOrigin {
  int row = 0;  ///< first C-tile row this thread covers.
  int col = 0;  ///< first C-tile column this thread covers.
};

/// Origin of thread `t`'s sub-tile. Requires 0 <= t < strategy.threads.
inline SubTileOrigin thread_sub_tile(const TilingStrategy& s, int t) {
  CTB_DCHECK(t >= 0 && t < s.threads);
  const int cols = s.bx / s.sub_x;
  return SubTileOrigin{(t / cols) * s.sub_y, (t % cols) * s.sub_x};
}

/// Number of threads with at least one in-range element for a clamped tile
/// of mc x nc (<= BY x BX) — the "active" threads; the rest idle (paper
/// Fig. 3b). Result is in [1, strategy.threads].
inline int active_threads_for_tile(const TilingStrategy& s, int mc, int nc) {
  CTB_DCHECK(mc >= 1 && mc <= s.by && nc >= 1 && nc <= s.bx);
  const int rows = (mc + s.sub_y - 1) / s.sub_y;
  const int cols = (nc + s.sub_x - 1) / s.sub_x;
  return rows * cols;
}

}  // namespace ctb
