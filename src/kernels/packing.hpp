// Operand panel packing for the specialized microkernels.
//
// The generic executor re-stages the same A row-panel for every tile in a
// C-tile row and the same B column-panel for every tile in a C-tile column,
// paying per-element bounds/transpose/fp16/gather branches each time. The
// packing pass resolves all of that exactly once per (GEMM, strategy): A is
// laid out as ty_count row panels and B as tx_count column panels, each
// panel a sequence of K-step blocks in precisely the layout the emulated
// shared memory uses (A block `a[i * BK + p]`, B block `b[p * BX + j]`,
// zero-padded past the matrix edges, values rounded through binary16 on the
// fp16 path, `b_gather` materialized). Interior K-loop iterations of the
// microkernel then read branch-free contiguous memory.
//
// Bit-exactness: `staged_a_value` / `staged_b_value` are the single source
// of truth for staged operand values — the generic executor's SharedTiles
// staging calls the same functions — so a packed panel block is byte-
// identical to the tile the generic path would have staged, and the FMA
// chains downstream see identical inputs.
//
// Packed buffers are transient per executor call, bounded by the pack-arena
// budget (see `pack_arena_budget`): a call packs eligible GEMMs in batch
// order until the budget is exhausted, and every GEMM past that point runs
// through the generic unpacked staging path instead.
#pragma once

#include <cstddef>
#include <vector>

#include "core/tiling_strategy.hpp"
#include "kernels/functional.hpp"
#include "linalg/half.hpp"

namespace ctb {

/// The exact value the kernel's guarded global->shared staging produces for
/// logical A(gi, gk): zero past the M/K edge, transpose resolved, rounded
/// through binary16 on the fp16 path.
inline float staged_a_value(const GemmOperands& g, int gi, int gk) {
  const auto& d = g.dims;
  float v = 0.0f;
  if (gi < d.m && gk < d.k) {
    v = g.op_a == Op::kN ? g.a[static_cast<std::size_t>(gi) * d.k + gk]
                         : g.a[static_cast<std::size_t>(gk) * d.m + gi];
  }
  if (g.precision == Precision::kFp16) v = round_to_half(v);
  return v;
}

/// The exact staged value for logical B(gk, gj): zero past the K/N edge,
/// transpose resolved or the implicit-GEMM gather invoked, fp16-rounded.
inline float staged_b_value(const GemmOperands& g, int gk, int gj) {
  const auto& d = g.dims;
  float v = 0.0f;
  if (gk < d.k && gj < d.n) {
    if (g.b_gather) {
      v = g.b_gather(gk, gj);
    } else {
      v = g.op_b == Op::kN ? g.b[static_cast<std::size_t>(gk) * d.n + gj]
                           : g.b[static_cast<std::size_t>(gj) * d.k + gk];
    }
  }
  if (g.precision == Precision::kFp16) v = round_to_half(v);
  return v;
}

/// Packed operand panels for one (GEMM, strategy) pair.
///
/// Layout: A panel `ty` holds `nsteps` consecutive BY x BK blocks, block
/// `step` storing staged A(ty*BY + i, step*BK + p) at `[i * BK + p]`;
/// B panel `tx` holds `nsteps` consecutive BK x BX blocks, block `step`
/// storing staged B(step*BK + p, tx*BX + j) at `[p * BX + j]`. Every tile
/// (ty, tx) of the GEMM reads A panel `ty` and B panel `tx`.
struct PackedGemm {
  int by = 0, bx = 0, bk = 0;
  int nsteps = 0;    ///< K-steps: ceil(K / BK)
  int ty_count = 0;  ///< A (row) panels
  int tx_count = 0;  ///< B (column) panels
  std::vector<float> a;
  std::vector<float> b;

  bool valid() const { return nsteps > 0; }
  std::size_t bytes() const { return (a.size() + b.size()) * sizeof(float); }
  const float* a_panel(int ty) const {
    return a.data() +
           static_cast<std::size_t>(ty) * nsteps * (by * bk);
  }
  const float* b_panel(int tx) const {
    return b.data() +
           static_cast<std::size_t>(tx) * nsteps * (bk * bx);
  }
};

/// Bytes `pack_gemm` would allocate for this (strategy, dims) pair — used
/// against the pack-arena budget before committing to a pack.
std::size_t pack_footprint_bytes(const TilingStrategy& s, const GemmDims& d);

/// Packs all A and B panels of `g` for `s`. Counts `exec.pack.panels` and
/// `exec.pack.bytes`. Safe to call from inside a parallel_for worker (it
/// only reads `g` and writes its own buffers).
PackedGemm pack_gemm(const TilingStrategy& s, const GemmOperands& g);

/// Pack-arena budget in bytes for a single executor call (default 256 MiB,
/// overridable at startup with CTB_PACK_BUDGET=<bytes>). GEMMs whose packs
/// would push the call's cumulative packed bytes past the budget fall back
/// to the generic unpacked staging path; 0 disables packing entirely (the
/// lever the bit-exactness tests use to force the generic path).
std::size_t pack_arena_budget();
void set_pack_arena_budget(std::size_t bytes);

/// Per-GEMM pack admission cap in bytes (default 64 MiB, overridable at
/// startup with CTB_PACK_GEMM_BUDGET=<bytes>). A single GEMM whose pack
/// footprint exceeds this runs generic without consuming any of the
/// cumulative arena budget, so one oversized GEMM cannot starve the rest of
/// the batch out of packing; 0 disables packing for every GEMM (equivalent
/// to a zero arena budget).
std::size_t pack_gemm_budget();
void set_pack_gemm_budget(std::size_t bytes);

/// RAII budget override for tests and benchmarks.
class ScopedPackArenaBudget {
 public:
  explicit ScopedPackArenaBudget(std::size_t bytes)
      : saved_(pack_arena_budget()) {
    set_pack_arena_budget(bytes);
  }
  ~ScopedPackArenaBudget() { set_pack_arena_budget(saved_); }
  ScopedPackArenaBudget(const ScopedPackArenaBudget&) = delete;
  ScopedPackArenaBudget& operator=(const ScopedPackArenaBudget&) = delete;

 private:
  std::size_t saved_;
};

/// RAII per-GEMM cap override for tests and benchmarks.
class ScopedPackGemmBudget {
 public:
  explicit ScopedPackGemmBudget(std::size_t bytes)
      : saved_(pack_gemm_budget()) {
    set_pack_gemm_budget(bytes);
  }
  ~ScopedPackGemmBudget() { set_pack_gemm_budget(saved_); }
  ScopedPackGemmBudget(const ScopedPackGemmBudget&) = delete;
  ScopedPackGemmBudget& operator=(const ScopedPackGemmBudget&) = delete;

 private:
  std::size_t saved_;
};

}  // namespace ctb
