// AVX-512 instantiation of the shared SIMD tile loop (16 fp32 lanes). This
// file is compiled with -mavx512f on x86-64; on other targets, or under
// -DCTB_SIMD=OFF, it degrades to an empty table and the dispatcher never
// selects AVX-512.
#include "kernels/simd.hpp"

#if defined(CTB_SIMD_ENABLED) && (defined(__x86_64__) || defined(_M_X64))

#define CTB_SIMD_W 16
#include "kernels/simd_kernels.inl"

namespace ctb::simd_detail {

const SimdLoopEntry* avx512_loops(int* count) {
  *count = kSimdLoopCount;
  return kSimdLoops;
}

SimdEpilogueRowFn avx512_epilogue_row() { return &simd_epilogue_row_impl; }

}  // namespace ctb::simd_detail

#else

namespace ctb::simd_detail {

const SimdLoopEntry* avx512_loops(int* count) {
  *count = 0;
  return nullptr;
}

SimdEpilogueRowFn avx512_epilogue_row() { return nullptr; }

}  // namespace ctb::simd_detail

#endif
