#include "kernels/functional.hpp"

#include <algorithm>
#include <array>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "kernels/microkernel.hpp"
#include "kernels/pack_cache.hpp"
#include "kernels/packing.hpp"
#include "kernels/simd.hpp"
#include "kernels/thread_map.hpp"
#include "linalg/half.hpp"
#include "telemetry/telemetry.hpp"
#include "telemetry/trace.hpp"
#include "util/assert.hpp"
#include "util/parallel.hpp"

namespace ctb {

namespace {

// Largest tile is 128x128 with BK=8: shared-memory emulation buffers.
constexpr int kMaxBy = 128;
constexpr int kMaxBx = 128;
constexpr int kMaxBk = 8;
// Widest per-thread sub-tile across Tables 1 and 2.
constexpr int kMaxSubX = 8;

/// Emulated shared memory for one block: the staged A tile (BY x BK) and
/// B tile (BK x BX). The per-element values come from staged_a_value /
/// staged_b_value (packing.hpp) — the same functions the packing pass
/// resolves once per panel — so the generic and packed paths consume
/// bit-identical operand values by construction.
struct SharedTiles {
  float a[kMaxBy * kMaxBk];
  float b[kMaxBk * kMaxBx];

  void stage(const TilingStrategy& s, const GemmOperands& g, int row0,
             int col0, int k0) {
    for (int i = 0; i < s.by; ++i)
      for (int p = 0; p < s.bk; ++p)
        a[i * s.bk + p] = staged_a_value(g, row0 + i, k0 + p);
    for (int p = 0; p < s.bk; ++p)
      for (int j = 0; j < s.bx; ++j)
        b[p * s.bx + j] = staged_b_value(g, k0 + p, col0 + j);
  }
};

/// Per-call packing decision for one GEMM: the dispatched kernel (with the
/// ISA that selected it) and the packed panels it reads — shared with the
/// cross-call cache, so panels a concurrent invalidate evicts stay alive
/// for the rest of this call. `kernel.fn == nullptr` means generic.
struct PackedDispatch {
  TileKernel kernel;
  std::shared_ptr<const PackedGemm> pack;
  bool need_pack = false;  ///< admitted but not in the cache: materialize
  bool specialized() const {
    return kernel.fn != nullptr && pack != nullptr && pack->valid();
  }
};

/// Serial half of the packing decision for one GEMM: kernel lookup, budget
/// admission, and cache probe. Admission requires the footprint to fit both
/// the per-GEMM cap (one oversized GEMM falls back to generic without
/// starving the rest of the batch) and the call's remaining cumulative
/// arena budget; `used` accumulates in batch order, keeping the decision
/// deterministic. A cache hit charges `used` exactly like a fresh pack, so
/// which GEMMs are admitted never depends on what the cache happens to
/// hold. The panel materialization itself (pack_gemm) is deferred so the
/// batched paths can run it for many GEMMs concurrently.
PackedDispatch pack_decision(const TilingStrategy& s, const GemmOperands& g,
                             std::size_t& used) {
  PackedDispatch d;
  d.kernel = tile_kernel_for(s);
  if (d.kernel.fn == nullptr) return d;
  const std::size_t bytes = pack_footprint_bytes(s, g.dims);
  const std::size_t budget = pack_arena_budget();
  if (bytes > pack_gemm_budget() || bytes > budget ||
      used > budget - bytes) {
    d.kernel = {};
    return d;
  }
  used += bytes;
  d.pack = pack_cache_lookup(s, g);
  d.need_pack = d.pack == nullptr;
  return d;
}

/// Deferred materialization for one admitted cache miss. Safe inside a
/// parallel_for worker: pack_gemm only reads `g` and fills the fresh
/// buffers. Publication to the cache stays with the caller (serial, batch
/// order) so eviction order is deterministic.
void materialize_pack(const TilingStrategy& s, const GemmOperands& g,
                      PackedDispatch& d) {
  if (d.need_pack) d.pack = std::make_shared<PackedGemm>(pack_gemm(s, g));
}

/// Serial tail of the decision: publishes a freshly packed miss to the
/// cross-call cache (no-op when the cache is off or `g` is uncacheable).
void publish_pack(const TilingStrategy& s, const GemmOperands& g,
                  PackedDispatch& d) {
  if (d.need_pack) pack_cache_insert(s, g, d.pack);
}

/// Per-ISA tile accounting: exec.simd.* partitions every executed tile by
/// the ISA that ran it (generic-executor tiles count as scalar), so the
/// four counters always sum to the call's total tiles.
void count_simd_tiles(SimdIsa isa, long long tiles) {
  switch (isa) {
    case SimdIsa::kAvx512:
      CTB_TEL_COUNT("exec.simd.avx512", tiles);
      return;
    case SimdIsa::kAvx2:
      CTB_TEL_COUNT("exec.simd.avx2", tiles);
      return;
    case SimdIsa::kNeon:
      CTB_TEL_COUNT("exec.simd.neon", tiles);
      return;
    case SimdIsa::kScalar:
      break;
  }
  CTB_TEL_COUNT("exec.simd.scalar", tiles);
}

/// Dispatch + staging-reuse accounting for `tiles` tiles of one GEMM that
/// resolved to `d`. Each tile reads one A and one B panel; panels were
/// packed (or fetched from the cache) once, so all but one read per panel
/// is a staging the generic path would have repeated.
void count_dispatch(const PackedDispatch& d, long long tiles) {
  if (d.specialized()) {
    CTB_TEL_COUNT("exec.dispatch.specialized", tiles);
    CTB_TEL_COUNT("exec.pack.reuse",
                  2 * tiles - d.pack->ty_count - d.pack->tx_count);
    count_simd_tiles(d.kernel.isa, tiles);
  } else {
    CTB_TEL_COUNT("exec.dispatch.generic", tiles);
    count_simd_tiles(SimdIsa::kScalar, tiles);
  }
}

/// Conventional useful-FLOP count of one pass over the batch (2*m*n*k per
/// GEMM; beta*C not charged) — feeds the "exec.flops" counter that perf
/// reports turn into GFLOP/s. Only evaluated when telemetry is enabled.
[[maybe_unused]] long long flops_of(std::span<const GemmOperands> batch) {
  long long total = 0;
  for (const auto& g : batch)
    total += 2LL * g.dims.m * g.dims.n * g.dims.k;
  return total;
}

// ----------------------------------------------------------- split-K ----
//
// A split tile executes only the K range [k_lo, k_hi) of its coordinate.
// Bit-exactness with the unsplit path demands that every C element still
// accumulate as ONE ascending (k0, p) chain, and float addition is not
// associative, so zero-based per-slice partials cannot be recombined.
// Instead the chain is *carried*: the k_begin == 0 slice accumulates from
// zero into a row-major BY x BX workspace (the exact prefix value of the
// unsplit chain — float store/reload is bit-preserving), and the fix-up
// reduction walks the remaining slices in ascending k order, continuing
// the same accumulator, before applying the standard alpha/beta epilogue.
// The reduction tree is thus the unique order-preserving (left-spine)
// tree; no atomics, one deterministic owner per C tile.

/// One K-slice of a tile's K loop, [k_lo, k_hi).
struct KSlice {
  int k_lo = 0;
  int k_hi = 0;
};

/// Even BK-aligned partition of [0, K) into up to `splitk` slices (the
/// in-executor analogue of split_tiles_k's per-tile split).
std::vector<KSlice> k_slices(int K, int bk, int splitk) {
  const int nsteps = (K + bk - 1) / bk;
  const int n = std::min(splitk, nsteps);
  if (n <= 1) return {{0, K}};
  std::vector<KSlice> out;
  out.reserve(static_cast<std::size_t>(n));
  const int q = nsteps / n;
  const int r = nsteps % n;
  int step = 0;
  for (int s = 0; s < n; ++s) {
    const int take = q + (s < r ? 1 : 0);
    out.push_back({step * bk, std::min((step + take) * bk, K)});
    step += take;
  }
  return out;
}

/// Generic staged accumulation of K range [k_lo, k_hi) of tile (ty, tx)
/// into a row-major BY x BX accumulator. Identical arithmetic to
/// execute_tile's main loop — same staged values, same per-element
/// ascending (k0, p) chain — only the accumulator layout is canonical
/// row-major so slices can hand the chain across workers.
void accumulate_tile_generic(const TilingStrategy& s, const GemmOperands& g,
                             int ty, int tx, int k_lo, int k_hi, bool first,
                             float* acc) {
  const int row0 = ty * s.by;
  const int col0 = tx * s.bx;
  if (first) std::fill_n(acc, s.by * s.bx, 0.0f);
  static thread_local SharedTiles shared;
  for (int k0 = k_lo; k0 < k_hi; k0 += s.bk) {
    shared.stage(s, g, row0, col0, k0);
    for (int t = 0; t < s.threads; ++t) {
      const SubTileOrigin o = thread_sub_tile(s, t);
      CTB_DCHECK(s.sub_x <= kMaxSubX);
      if (s.sub_x == 1) {
        const float* sbcol = &shared.b[o.col];
        for (int i = 0; i < s.sub_y; ++i) {
          const float* sa = &shared.a[(o.row + i) * s.bk];
          float sum = acc[(o.row + i) * s.bx + o.col];
          for (int p = 0; p < s.bk; ++p) sum += sa[p] * sbcol[p * s.bx];
          acc[(o.row + i) * s.bx + o.col] = sum;
        }
        continue;
      }
      for (int i = 0; i < s.sub_y; ++i) {
        const float* sa = &shared.a[(o.row + i) * s.bk];
        float* arow = &acc[(o.row + i) * s.bx + o.col];
        float row[kMaxSubX];
        for (int j = 0; j < s.sub_x; ++j) row[j] = arow[j];
        for (int p = 0; p < s.bk; ++p) {
          const float av = sa[p];
          const float* sb = &shared.b[p * s.bx + o.col];
          for (int j = 0; j < s.sub_x; ++j) row[j] += av * sb[j];
        }
        for (int j = 0; j < s.sub_x; ++j) arow[j] = row[j];
      }
    }
  }
}

/// Scalar packed-panel accumulation of panel steps [step_lo, step_hi) —
/// the runtime-bound twin of packed_microkernel's interior loop: per C
/// element the adds arrive in ascending (step, p) order over the same
/// packed values, so the bits match the compile-time kernels exactly.
void accumulate_tile_packed_scalar(const PackedGemm& pk,
                                   const TilingStrategy& s, int ty, int tx,
                                   int step_lo, int step_hi, bool first,
                                   float* acc) {
  if (first) std::fill_n(acc, s.by * s.bx, 0.0f);
  const float* pa = pk.a_panel(ty);
  const float* pb = pk.b_panel(tx);
  for (int step = step_lo; step < step_hi; ++step) {
    const float* sa_blk = pa + static_cast<std::size_t>(step) * (s.by * s.bk);
    const float* sb_blk = pb + static_cast<std::size_t>(step) * (s.bk * s.bx);
    for (int i = 0; i < s.by; ++i) {
      float* arow = acc + static_cast<std::size_t>(i) * s.bx;
      for (int p = 0; p < s.bk; ++p) {
        const float av = sa_blk[i * s.bk + p];
        const float* sb = sb_blk + p * s.bx;
        for (int j = 0; j < s.bx; ++j) arow[j] += av * sb[j];
      }
    }
  }
}

/// Accumulates K range [k_lo, k_hi) of tile (ty, tx) into `acc` through
/// the GEMM's dispatched path: SIMD tile loop (overwrite for the first
/// slice, accumulate-in continuation after), the scalar packed loop, or
/// the generic staged kernel. All paths produce bit-identical chains, so
/// a slice sequence ending at K equals one unsplit pass exactly.
void accumulate_tile_range(const TilingStrategy& s, const GemmOperands& g,
                           const PackedDispatch& d, int ty, int tx, int k_lo,
                           int k_hi, bool first, float* acc) {
  if (d.specialized()) {
    const PackedGemm& pk = *d.pack;
    const int step_lo = k_lo / s.bk;
    const int step_hi = k_hi >= g.dims.k ? pk.nsteps : k_hi / s.bk;
    if (d.kernel.isa != SimdIsa::kScalar) {
      const SimdTileLoopFn loop =
          first ? simd_tile_loop(d.kernel.isa, s.by, s.bx, s.bk)
                : simd_tile_loop_acc(d.kernel.isa, s.by, s.bx, s.bk);
      if (loop != nullptr) {
        loop(pk.a_panel(ty) +
                 static_cast<std::size_t>(step_lo) * (s.by * s.bk),
             pk.b_panel(tx) +
                 static_cast<std::size_t>(step_lo) * (s.bk * s.bx),
             step_hi - step_lo, acc);
        return;
      }
    }
    accumulate_tile_packed_scalar(pk, s, ty, tx, step_lo, step_hi, first,
                                  acc);
    return;
  }
  accumulate_tile_generic(s, g, ty, tx, k_lo, k_hi, first, acc);
}

// ---------------------------------------------------- fused epilogue ----

/// Scalar application of the value-op chain to one element's base value at
/// logical (gi, gj). fp16 rounds after every value op — the fused chain
/// emulates a sequence of binary16 stores, so it stays bit-identical to
/// running the same ops as separate passes over a half-precision C.
float apply_epilogue_value(float v, int spec, const EpilogueArgs& ea,
                           bool fp16, int gi, int gj, int n) {
  const int nops = epilogue_num_ops(spec);
  for (int o = 0; o < nops; ++o) {
    switch (epilogue_op_at(spec, o)) {
      case EpilogueOp::kBias:
        v += ea.bias[gi];
        break;
      case EpilogueOp::kRelu:
        v = v > 0.0f ? v : 0.0f;
        break;
      case EpilogueOp::kResidual:
        v += ea.residual[static_cast<std::size_t>(gi) * n + gj];
        break;
      default:
        continue;  // permutations affect addressing, not the value
    }
    if (fp16) v = round_to_half(v);
  }
  return v;
}

/// A permuted destination cannot express the beta prior read as a
/// tile-local chain (the prior lives at the scatter target, which another
/// tile may own); the executors reject the combination up front.
void check_epilogue_beta(const GemmOperands& g, float beta, std::size_t i) {
  CTB_CHECK_MSG(beta == 0.0f ||
                    (!epilogue_has_op(g.epilogue, EpilogueOp::kRowPerm) &&
                     !epilogue_has_op(g.epilogue, EpilogueOp::kColPerm)),
                "GEMM " << i
                        << ": beta != 0 with a permuted epilogue store");
}

/// Runtime-bound twin of store_tile_rowmajor (microkernel.hpp): the
/// alpha/beta epilogue over a row-major accumulator with edge guards,
/// beta == 0 short-circuit, and fp16 rounding — the identical per-element
/// expression every other executor path applies. When `g` carries a fused
/// epilogue chain it is applied here, per element, before the (possibly
/// permuted) store; this function is also the split-K fix-up reduction's
/// final store, which is exactly what puts the epilogue strictly after the
/// join at any thread count.
void store_tile_rowmajor_rt(const TilingStrategy& s, const GemmOperands& g,
                            int ty, int tx, float alpha, float beta,
                            const float* acc) {
  const auto& d = g.dims;
  const int row0 = ty * s.by;
  const int col0 = tx * s.bx;
  const bool fp16 = g.precision == Precision::kFp16;
  const int spec = g.epilogue;
  if (spec == 0) {
    for (int i = 0; i < s.by; ++i) {
      const int gi = row0 + i;
      if (gi >= d.m) break;
      const float* arow = acc + static_cast<std::size_t>(i) * s.bx;
      for (int j = 0; j < s.bx; ++j) {
        const int gj = col0 + j;
        if (gj >= d.n) break;
        float* cell = &g.c[static_cast<std::size_t>(gi) * d.n + gj];
        if (fp16) {
          const float prior =
              beta == 0.0f ? 0.0f : beta * round_to_half(*cell);
          *cell = round_to_half(alpha * arow[j] + prior);
        } else {
          const float prior = beta == 0.0f ? 0.0f : beta * *cell;
          *cell = alpha * arow[j] + prior;
        }
      }
    }
    return;
  }

  const EpilogueArgs& ea = g.epilogue_args;
  const int nops = epilogue_num_ops(spec);
  const bool rowperm = epilogue_has_op(spec, EpilogueOp::kRowPerm);
  const bool colperm = epilogue_has_op(spec, EpilogueOp::kColPerm);
  const int rows = std::min(s.by, d.m - row0);
  const int cols = std::min(s.bx, d.n - col0);
  CTB_TEL_COUNT("exec.epilogue.fused", 1);
  CTB_TEL_COUNT("exec.epilogue.ops", nops);

  // Vector path: fp32 rows with contiguous destinations (a row permutation
  // only relocates whole rows, so it stays eligible; a column permutation
  // scatters within the row and drops to the scalar chain). Ragged border
  // columns are masked tail chunks inside the row kernel, not a fallback.
  if (!fp16 && !colperm) {
    const SimdEpilogueRowFn rowfn = simd_epilogue_row(active_simd_isa());
    if (rowfn != nullptr) {
      EpilogueRowArgs r;
      r.n = cols;
      r.alpha = alpha;
      r.beta = beta;
      r.nops = nops;
      for (int o = 0; o < nops; ++o)
        r.ops[o] = static_cast<int>(epilogue_op_at(spec, o));
      for (int i = 0; i < rows; ++i) {
        const int gi = row0 + i;
        const int di = rowperm ? ea.row_perm[gi] : gi;
        r.acc = acc + static_cast<std::size_t>(i) * s.bx;
        r.c = g.c + static_cast<std::size_t>(di) * d.n + col0;
        r.residual =
            ea.residual != nullptr
                ? ea.residual + static_cast<std::size_t>(gi) * d.n + col0
                : nullptr;
        r.bias = ea.bias != nullptr ? ea.bias[gi] : 0.0f;
        rowfn(r);
      }
      return;
    }
  }

  // Scalar fused chain (fp16, column permutations, or no vector unit).
  for (int i = 0; i < rows; ++i) {
    const int gi = row0 + i;
    const int di = rowperm ? ea.row_perm[gi] : gi;
    const float* arow = acc + static_cast<std::size_t>(i) * s.bx;
    for (int j = 0; j < cols; ++j) {
      const int gj = col0 + j;
      const int dj = colperm ? ea.col_perm[gj] : gj;
      float* cell = &g.c[static_cast<std::size_t>(di) * d.n + dj];
      // check_epilogue_beta rejected beta != 0 for permuted stores, so the
      // prior read below always hits the logical == destination cell.
      float v;
      if (fp16) {
        const float prior = beta == 0.0f ? 0.0f : beta * round_to_half(*cell);
        v = round_to_half(alpha * arow[j] + prior);
      } else {
        const float prior = beta == 0.0f ? 0.0f : beta * *cell;
        v = alpha * arow[j] + prior;
      }
      *cell = apply_epilogue_value(v, spec, ea, fp16, gi, gj, d.n);
    }
  }
}

/// Executes one C tile as a chain of K slices through a thread-local
/// workspace: the degenerate single-owner form of the fix-up reduction
/// used by the single-GEMM and vbatch split-K paths.
void execute_tile_sliced(const TilingStrategy& s, const GemmOperands& g,
                         const PackedDispatch& d, int ty, int tx,
                         std::span<const KSlice> slices, float alpha,
                         float beta) {
  static thread_local float acc[kMaxBy * kMaxBx];
  bool first = true;
  for (const KSlice& sl : slices) {
    accumulate_tile_range(s, g, d, ty, tx, sl.k_lo, sl.k_hi, first, acc);
    first = false;
  }
  store_tile_rowmajor_rt(s, g, ty, tx, alpha, beta, acc);
}

}  // namespace

void execute_tile(const TilingStrategy& s, const GemmOperands& g, int ty,
                  int tx, float alpha, float beta) {
  CTB_CHECK(g.a != nullptr && g.c != nullptr);
  CTB_CHECK_MSG(g.b != nullptr || g.b_gather,
                "B operand needs storage or a gather");
  CTB_CHECK(g.dims.valid());
  const int row0 = ty * s.by;
  const int col0 = tx * s.bx;
  CTB_CHECK_MSG(row0 < g.dims.m && col0 < g.dims.n,
                "tile (" << ty << "," << tx << ") outside GEMM");
  if (g.epilogue != 0) {
    // Fused tiles route through the sliced path: same staged accumulation,
    // but the store goes through the epilogue-aware row-major store.
    check_epilogue_beta(g, beta, 0);
    const KSlice full{0, g.dims.k};
    execute_tile_sliced(s, g, PackedDispatch{}, ty, tx, {&full, 1}, alpha,
                        beta);
    return;
  }

  // Per-thread C accumulators ("reg_C" in Fig. 2), zero-initialized. The
  // block's threads together cover the whole BY x BX tile, so the combined
  // footprint never exceeds the largest tile; a thread-local scratch sized
  // for that maximum (mirroring SharedTiles) makes the executor
  // allocation-free per tile.
  const int acc_per_thread = s.sub_y * s.sub_x;
  const int acc_total = s.threads * acc_per_thread;
  CTB_DCHECK(acc_total <= kMaxBy * kMaxBx);
  static thread_local float reg_c[kMaxBy * kMaxBx];
  std::fill_n(reg_c, acc_total, 0.0f);

  static thread_local SharedTiles shared;

  // Main loop along the K dimension in BK steps.
  for (int k0 = 0; k0 < g.dims.k; k0 += s.bk) {
    shared.stage(s, g, row0, col0, k0);
    // All threads of the block consume the staged tiles. The j-innermost
    // loop walks a contiguous row of the staged B tile so the compiler can
    // vectorize it; each C element still accumulates its FMAs in ascending
    // p order, so results are bit-identical to the p-innermost chain of the
    // real kernel.
    for (int t = 0; t < s.threads; ++t) {
      const SubTileOrigin o = thread_sub_tile(s, t);
      float* acc = &reg_c[static_cast<std::size_t>(t) * acc_per_thread];
      CTB_DCHECK(s.sub_x <= kMaxSubX);
      if (s.sub_x == 1) {
        // One C element per row: the j-inner form would pay a degenerate
        // inner loop per FMA, so reduce to a plain dot product (same
        // ascending-p order, so still bit-identical).
        const float* sbcol = &shared.b[o.col];
        for (int i = 0; i < s.sub_y; ++i) {
          const float* sa = &shared.a[(o.row + i) * s.bk];
          float sum = acc[i];
          for (int p = 0; p < s.bk; ++p) sum += sa[p] * sbcol[p * s.bx];
          acc[i] = sum;
        }
        continue;
      }
      for (int i = 0; i < s.sub_y; ++i) {
        const float* sa = &shared.a[(o.row + i) * s.bk];
        float* arow = &acc[i * s.sub_x];
        // Accumulate the row in a local block (the per-thread "registers"):
        // it cannot alias the staged tiles, so the whole BK-step stays in
        // vector registers instead of round-tripping through reg_c.
        float row[kMaxSubX];
        for (int j = 0; j < s.sub_x; ++j) row[j] = arow[j];
        for (int p = 0; p < s.bk; ++p) {
          const float av = sa[p];
          const float* sb = &shared.b[p * s.bx + o.col];
          for (int j = 0; j < s.sub_x; ++j) row[j] += av * sb[j];
        }
        for (int j = 0; j < s.sub_x; ++j) arow[j] = row[j];
      }
    }
  }

  // Epilogue: C = alpha * acc + beta * C, guarded against the matrix edge.
  for (int t = 0; t < s.threads; ++t) {
    const SubTileOrigin o = thread_sub_tile(s, t);
    const float* acc = &reg_c[static_cast<std::size_t>(t) * acc_per_thread];
    for (int i = 0; i < s.sub_y; ++i) {
      const int gi = row0 + o.row + i;
      if (gi >= g.dims.m) continue;
      for (int j = 0; j < s.sub_x; ++j) {
        const int gj = col0 + o.col + j;
        if (gj >= g.dims.n) continue;
        float* cell = &g.c[static_cast<std::size_t>(gi) * g.dims.n + gj];
        if (g.precision == Precision::kFp16) {
          const float prior =
              beta == 0.0f ? 0.0f : beta * round_to_half(*cell);
          *cell = round_to_half(alpha * acc[i * s.sub_x + j] + prior);
        } else {
          const float prior = beta == 0.0f ? 0.0f : beta * *cell;
          *cell = alpha * acc[i * s.sub_x + j] + prior;
        }
      }
    }
  }
}

void run_single_gemm(const TilingStrategy& s, const GemmOperands& g,
                     float alpha, float beta) {
  // Blocks write disjoint C tiles, so they run concurrently; each tile's
  // per-element FMA chain is untouched, keeping results bit-identical to
  // the serial walk.
  const int ty_count = (g.dims.m + s.by - 1) / s.by;
  const int tx_count = (g.dims.n + s.bx - 1) / s.bx;
  const long long tiles = static_cast<long long>(ty_count) * tx_count;
  CTB_TEL_COUNT("exec.flops",
                2LL * g.dims.m * g.dims.n * g.dims.k);
  CTB_TEL_COUNT("exec.c.passes", 1);

  std::size_t used = 0;
  PackedDispatch d = pack_decision(s, g, used);
  materialize_pack(s, g, d);
  publish_pack(s, g, d);
  count_dispatch(d, tiles);
  if (g.epilogue != 0) {
    // Fused GEMM: the compile-time microkernels store without the epilogue,
    // so every tile runs the dispatched accumulation (SIMD loop, scalar
    // packed, or generic — unchanged arithmetic) through the sliced path,
    // whose store applies the fused chain.
    check_epilogue_beta(g, beta, 0);
    const KSlice full{0, g.dims.k};
    parallel_for(tiles, [&](long long block) {
      execute_tile_sliced(s, g, d, static_cast<int>(block / tx_count),
                          static_cast<int>(block % tx_count), {&full, 1},
                          alpha, beta);
    });
    return;
  }
  if (d.specialized()) {
    parallel_for(tiles, [&](long long block) {
      d.kernel.fn(g, *d.pack, static_cast<int>(block / tx_count),
                  static_cast<int>(block % tx_count), alpha, beta);
    });
    return;
  }
  parallel_for(tiles, [&](long long block) {
    const int ty = static_cast<int>(block / tx_count);
    const int tx = static_cast<int>(block % tx_count);
    execute_tile(s, g, ty, tx, alpha, beta);
  });
}

void run_single_gemm(const TilingStrategy& s, const GemmOperands& g,
                     float alpha, float beta, int splitk) {
  const auto slices = k_slices(g.dims.k, s.bk, splitk);
  if (slices.size() <= 1) {
    run_single_gemm(s, g, alpha, beta);
    return;
  }
  const int ty_count = (g.dims.m + s.by - 1) / s.by;
  const int tx_count = (g.dims.n + s.bx - 1) / s.bx;
  const long long tiles = static_cast<long long>(ty_count) * tx_count;
  check_epilogue_beta(g, beta, 0);
  CTB_TEL_COUNT("exec.flops", 2LL * g.dims.m * g.dims.n * g.dims.k);
  CTB_TEL_COUNT("exec.c.passes", 1);
  CTB_TEL_COUNT("exec.splitk.tiles",
                tiles * static_cast<long long>(slices.size()));
  CTB_TEL_COUNT("exec.splitk.groups", tiles);

  std::size_t used = 0;
  PackedDispatch d = pack_decision(s, g, used);
  materialize_pack(s, g, d);
  publish_pack(s, g, d);
  count_dispatch(d, tiles);
  parallel_for(tiles, [&](long long block) {
    execute_tile_sliced(s, g, d, static_cast<int>(block / tx_count),
                        static_cast<int>(block % tx_count), slices, alpha,
                        beta);
  });
}

void run_vbatch(const TilingStrategy& s, std::span<const GemmOperands> batch,
                float alpha, float beta) {
  // Grid X/Y sized by the largest GEMM (paper Fig. 3a); smaller GEMMs leave
  // bubble blocks, which the guard below skips.
  int max_ty = 0, max_tx = 0;
  for (std::size_t z = 0; z < batch.size(); ++z) {
    const auto& g = batch[z];
    check_epilogue_beta(g, beta, z);
    max_ty = std::max(max_ty, (g.dims.m + s.by - 1) / s.by);
    max_tx = std::max(max_tx, (g.dims.n + s.bx - 1) / s.bx);
  }

  CTB_TEL_COUNT("exec.flops", flops_of(batch));
  CTB_TEL_COUNT("exec.c.passes", batch.size());

  // One uniform strategy: budget decisions stay serial in batch order
  // (deterministic accounting), then the panel materialization fans out one
  // GEMM per parallel_for task. Each pack_gemm writes only its own
  // PackedGemm buffers and resolves every panel element identically
  // regardless of which worker runs it, so results are bit-exact across
  // thread counts.
  std::vector<PackedDispatch> packs(batch.size());
  std::size_t used = 0;
  for (std::size_t z = 0; z < batch.size(); ++z)
    packs[z] = pack_decision(s, batch[z], used);
  parallel_for(static_cast<long long>(batch.size()), [&](long long z) {
    materialize_pack(s, batch[static_cast<std::size_t>(z)],
                     packs[static_cast<std::size_t>(z)]);
  });
  for (std::size_t z = 0; z < batch.size(); ++z) {
    publish_pack(s, batch[z], packs[z]);
    count_dispatch(packs[z], s.tiles_for(batch[z].dims.m, batch[z].dims.n));
  }

  // Every (z, ty, tx) grid block is independent — each GEMM has its own C
  // and the tiles within a GEMM are disjoint — so the whole grid runs as
  // one parallel-for. The z divisor is hoisted as long long: max_ty *
  // max_tx as an int product could overflow before widening on large grids.
  const long long zdiv = static_cast<long long>(max_ty) * max_tx;
  const long long grid = static_cast<long long>(batch.size()) * zdiv;
  parallel_for(grid, [&](long long block) {
    const std::size_t z = static_cast<std::size_t>(block / zdiv);
    const int ty = static_cast<int>(block / max_tx % max_ty);
    const int tx = static_cast<int>(block % max_tx);
    const auto& g = batch[z];
    const int ty_count = (g.dims.m + s.by - 1) / s.by;
    const int tx_count = (g.dims.n + s.bx - 1) / s.bx;
    if (ty >= ty_count || tx >= tx_count) return;  // bubble block
    const PackedDispatch& d = packs[z];
    if (g.epilogue != 0) {
      const KSlice full{0, g.dims.k};
      execute_tile_sliced(s, g, d, ty, tx, {&full, 1}, alpha, beta);
    } else if (d.specialized()) {
      d.kernel.fn(g, *d.pack, ty, tx, alpha, beta);
    } else {
      execute_tile(s, g, ty, tx, alpha, beta);
    }
  });
}

void run_vbatch(const TilingStrategy& s, std::span<const GemmOperands> batch,
                float alpha, float beta, int splitk) {
  if (splitk <= 1) {
    run_vbatch(s, batch, alpha, beta);
    return;
  }
  int max_ty = 0, max_tx = 0;
  for (std::size_t z = 0; z < batch.size(); ++z) {
    const auto& g = batch[z];
    check_epilogue_beta(g, beta, z);
    max_ty = std::max(max_ty, (g.dims.m + s.by - 1) / s.by);
    max_tx = std::max(max_tx, (g.dims.n + s.bx - 1) / s.bx);
  }
  CTB_TEL_COUNT("exec.flops", flops_of(batch));
  CTB_TEL_COUNT("exec.c.passes", batch.size());

  std::vector<PackedDispatch> packs(batch.size());
  std::size_t used = 0;
  for (std::size_t z = 0; z < batch.size(); ++z)
    packs[z] = pack_decision(s, batch[z], used);
  parallel_for(static_cast<long long>(batch.size()), [&](long long z) {
    materialize_pack(s, batch[static_cast<std::size_t>(z)],
                     packs[static_cast<std::size_t>(z)]);
  });
  std::vector<std::vector<KSlice>> slices(batch.size());
  for (std::size_t z = 0; z < batch.size(); ++z) {
    publish_pack(s, batch[z], packs[z]);
    const long long tiles = s.tiles_for(batch[z].dims.m, batch[z].dims.n);
    count_dispatch(packs[z], tiles);
    slices[z] = k_slices(batch[z].dims.k, s.bk, splitk);
    if (slices[z].size() > 1) {
      CTB_TEL_COUNT("exec.splitk.tiles",
                    tiles * static_cast<long long>(slices[z].size()));
      CTB_TEL_COUNT("exec.splitk.groups", tiles);
    }
  }

  const long long zdiv = static_cast<long long>(max_ty) * max_tx;
  const long long grid = static_cast<long long>(batch.size()) * zdiv;
  parallel_for(grid, [&](long long block) {
    const std::size_t z = static_cast<std::size_t>(block / zdiv);
    const int ty = static_cast<int>(block / max_tx % max_ty);
    const int tx = static_cast<int>(block % max_tx);
    const auto& g = batch[z];
    const int ty_count = (g.dims.m + s.by - 1) / s.by;
    const int tx_count = (g.dims.n + s.bx - 1) / s.bx;
    if (ty >= ty_count || tx >= tx_count) return;  // bubble block
    const PackedDispatch& d = packs[z];
    if (slices[z].size() > 1) {
      execute_tile_sliced(s, g, d, ty, tx, slices[z], alpha, beta);
    } else if (g.epilogue != 0) {
      const KSlice full{0, g.dims.k};
      execute_tile_sliced(s, g, d, ty, tx, {&full, 1}, alpha, beta);
    } else if (d.specialized()) {
      d.kernel.fn(g, *d.pack, ty, tx, alpha, beta);
    } else {
      execute_tile(s, g, ty, tx, alpha, beta);
    }
  });
}

namespace {

/// Validates one permutation operand: present, sized to its axis, every
/// entry in range, and bijective (no two sources map to one destination —
/// the property that keeps parallel tiles writing disjoint C regions).
void audit_perm(const int* perm, int len, int extent, const char* axis,
                std::size_t i) {
  CTB_CHECK_MSG(perm != nullptr && len == extent,
                "GEMM " << i << ' ' << axis << "-permutation: need "
                        << extent << " entries, have "
                        << (perm != nullptr ? len : 0));
  std::vector<char> seen(static_cast<std::size_t>(extent), 0);
  for (int v = 0; v < extent; ++v) {
    const int p = perm[v];
    CTB_CHECK_MSG(p >= 0 && p < extent,
                  "GEMM " << i << ' ' << axis << "-permutation entry " << v
                          << " = " << p << " out of range [0," << extent
                          << ")");
    CTB_CHECK_MSG(!seen[static_cast<std::size_t>(p)],
                  "GEMM " << i << ' ' << axis
                          << "-permutation maps two sources to " << p);
    seen[static_cast<std::size_t>(p)] = 1;
  }
}

/// Epilogue half of the operand audit: the spec is a canonical chain, every
/// op it names has its operand present with the exact extent, and each
/// permutation axis appears at most once (a repeated axis would make the
/// destination ambiguous). Runs before any matrix element is touched.
void audit_epilogue(const GemmOperands& g, std::size_t i) {
  const int spec = g.epilogue;
  CTB_CHECK_MSG(epilogue_packed_valid(spec),
                "GEMM " << i << " has malformed epilogue spec " << spec);
  if (spec == 0) return;
  const EpilogueArgs& ea = g.epilogue_args;
  const auto& d = g.dims;
  int rowperms = 0, colperms = 0;
  const int nops = epilogue_num_ops(spec);
  for (int o = 0; o < nops; ++o) {
    switch (epilogue_op_at(spec, o)) {
      case EpilogueOp::kBias:
        CTB_CHECK_MSG(ea.bias != nullptr && ea.bias_len == d.m,
                      "GEMM " << i << " bias operand: need " << d.m
                              << " values, have "
                              << (ea.bias != nullptr ? ea.bias_len : 0));
        break;
      case EpilogueOp::kResidual:
        CTB_CHECK_MSG(ea.residual != nullptr && ea.residual_rows == d.m &&
                          ea.residual_cols == d.n,
                      "GEMM " << i << " residual operand: need " << d.m
                              << 'x' << d.n << ", have "
                              << ea.residual_rows << 'x'
                              << ea.residual_cols);
        break;
      case EpilogueOp::kRowPerm:
        ++rowperms;
        break;
      case EpilogueOp::kColPerm:
        ++colperms;
        break;
      default:
        break;
    }
  }
  CTB_CHECK_MSG(rowperms <= 1 && colperms <= 1,
                "GEMM " << i << " epilogue repeats a permutation axis");
  if (rowperms > 0) audit_perm(ea.row_perm, ea.row_perm_len, d.m, "row", i);
  if (colperms > 0) audit_perm(ea.col_perm, ea.col_perm_len, d.n, "col", i);
}

}  // namespace

void audit_operands(std::span<const GemmOperands> batch) {
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const GemmOperands& g = batch[i];
    CTB_CHECK_MSG(g.dims.valid(), "GEMM " << i << " has degenerate dims "
                                          << g.dims.m << 'x' << g.dims.n
                                          << 'x' << g.dims.k);
    CTB_CHECK_MSG(g.a != nullptr, "GEMM " << i << " has no A storage");
    CTB_CHECK_MSG(g.b != nullptr || g.b_gather,
                  "GEMM " << i << " needs B storage or a gather");
    CTB_CHECK_MSG(g.c != nullptr, "GEMM " << i << " has no C storage");
    audit_epilogue(g, i);
  }
}

void audit_plan_operands(const BatchPlan& plan,
                         std::span<const GemmOperands> batch) {
  audit_operands(batch);
  std::vector<GemmDims> dims(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) dims[i] = batch[i].dims;
  validate_plan(plan, dims);
  // The plan's per-GEMM epilogue record must agree with what the operands
  // carry — a stale fused plan meeting a reshaped (or de-fused) batch is
  // rejected here, exactly like a dims mismatch.
  for (std::size_t i = 0; i < batch.size(); ++i)
    CTB_CHECK_MSG(plan.gemm_epilogue(static_cast<int>(i)) ==
                      batch[i].epilogue,
                  "GEMM " << i << " epilogue mismatch: plan has "
                          << epilogue_to_string(
                                 plan.gemm_epilogue(static_cast<int>(i)))
                          << ", operands carry "
                          << epilogue_to_string(batch[i].epilogue));
}

void reference_gemm(const GemmOperands& g, float alpha, float beta) {
  CTB_CHECK(g.a != nullptr && g.c != nullptr);
  CTB_CHECK_MSG(g.b != nullptr || g.b_gather,
                "B operand needs storage or a gather");
  CTB_CHECK(g.dims.valid());
  const auto& d = g.dims;
  auto at_a = [&](int i, int k) {
    return g.op_a == Op::kN ? g.a[static_cast<std::size_t>(i) * d.k + k]
                            : g.a[static_cast<std::size_t>(k) * d.m + i];
  };
  auto at_b = [&](int k, int j) {
    if (g.b_gather) return g.b_gather(k, j);
    return g.op_b == Op::kN ? g.b[static_cast<std::size_t>(k) * d.n + j]
                            : g.b[static_cast<std::size_t>(j) * d.k + k];
  };
  const bool fp16 = g.precision == Precision::kFp16;
  const int spec = g.epilogue;
  const EpilogueArgs& ea = g.epilogue_args;
  const bool rowperm = epilogue_has_op(spec, EpilogueOp::kRowPerm);
  const bool colperm = epilogue_has_op(spec, EpilogueOp::kColPerm);
  check_epilogue_beta(g, beta, 0);
  for (int i = 0; i < d.m; ++i) {
    for (int j = 0; j < d.n; ++j) {
      float acc = 0.0f;
      if (fp16) {
        for (int k = 0; k < d.k; ++k)
          acc += round_to_half(at_a(i, k)) * round_to_half(at_b(k, j));
      } else {
        for (int k = 0; k < d.k; ++k) acc += at_a(i, k) * at_b(k, j);
      }
      // The beta prior reads the logical cell; under a permutation beta is
      // rejected above, so logical == destination whenever it is read.
      float* cell = &g.c[static_cast<std::size_t>(i) * d.n + j];
      float v;
      if (fp16) {
        const float prior =
            beta == 0.0f ? 0.0f : beta * round_to_half(*cell);
        v = round_to_half(alpha * acc + prior);
      } else {
        const float prior = beta == 0.0f ? 0.0f : beta * *cell;
        v = alpha * acc + prior;
      }
      if (spec != 0) {
        v = apply_epilogue_value(v, spec, ea, fp16, i, j, d.n);
        const int di = rowperm ? ea.row_perm[i] : i;
        const int dj = colperm ? ea.col_perm[j] : j;
        g.c[static_cast<std::size_t>(di) * d.n + dj] = v;
      } else {
        *cell = v;
      }
    }
  }
}

void run_batched_plan(const BatchPlan& plan,
                      std::span<const GemmOperands> batch, float alpha,
                      float beta) {
  CTB_TEL_SPAN("exec.run_batched_plan");
  try {
    CTB_TEL_SPAN("exec.audit");
    audit_plan_operands(plan, batch);
  } catch (const CheckError&) {
    // An audit rejection is a postmortem moment: the plan passed validation
    // but its aux arrays do not fit these operands. Leave a flight trail
    // (and persist it when a dump directory is configured) before the
    // exception unwinds to the caller's fallback.
    CTB_TEL_FLIGHT(kGuardReject, "audit_plan_operands",
                   static_cast<std::int64_t>(batch.size()),
                   plan.num_tiles());
    telemetry::flight_autodump("audit_reject");
    throw;
  }
  for (std::size_t i = 0; i < batch.size(); ++i)
    check_epilogue_beta(batch[i], beta, i);
  CTB_TEL_FLIGHT(kExec, "run_batched_plan", plan.num_blocks(),
                 plan.num_tiles());
  CTB_TEL_COUNT("exec.plan_runs", 1);
  CTB_TEL_COUNT("exec.blocks", plan.num_blocks());
  CTB_TEL_COUNT("exec.tiles", plan.num_tiles());
  CTB_TEL_COUNT("exec.flops", flops_of(batch));
  CTB_TEL_COUNT("exec.c.passes", batch.size());

  // Packing pass: a validated plan assigns each GEMM a single strategy, but
  // strategies vary across GEMMs, so packs are keyed by (gemm, strategy).
  // Walk the tile array once to find each GEMM's strategy and tile count,
  // make the budget decisions serially in GEMM order (deterministic
  // accounting), then materialize the panels one GEMM per parallel_for task
  // — disjoint PackedGemm buffers and order-independent panel contents keep
  // the pass bit-exact across thread counts.
  std::vector<int> strategy_of_gemm(batch.size(), -1);
  std::vector<PackedDispatch> packs(batch.size());
  {
    CTB_TEL_SPAN("exec.pack");
    std::vector<long long> tiles_of_gemm(batch.size(), 0);
    for (std::size_t t = 0; t < plan.gemm_of_tile.size(); ++t) {
      const auto gi = static_cast<std::size_t>(plan.gemm_of_tile[t]);
      strategy_of_gemm[gi] = plan.strategy_of_tile[t];
      ++tiles_of_gemm[gi];
    }
    std::size_t used = 0;
    for (std::size_t gi = 0; gi < batch.size(); ++gi) {
      if (strategy_of_gemm[gi] < 0) continue;  // GEMM unused by the plan
      packs[gi] = pack_decision(batched_strategy_by_id(strategy_of_gemm[gi]),
                                batch[gi], used);
    }
    parallel_for(static_cast<long long>(batch.size()), [&](long long z) {
      const auto gi = static_cast<std::size_t>(z);
      if (strategy_of_gemm[gi] >= 0)
        materialize_pack(batched_strategy_by_id(strategy_of_gemm[gi]),
                         batch[gi], packs[gi]);
    });
    for (std::size_t gi = 0; gi < batch.size(); ++gi) {
      if (strategy_of_gemm[gi] < 0) continue;
      publish_pack(batched_strategy_by_id(strategy_of_gemm[gi]), batch[gi],
                   packs[gi]);
      count_dispatch(packs[gi], tiles_of_gemm[gi]);
    }
  }

  // Split-K discovery: a tile whose K range does not cover its GEMM's full
  // K extent belongs to a fix-up group keyed (gemm, ty, tx). Each group
  // gets one row-major BY x BX accumulator in a shared workspace arena;
  // groups are enumerated in key order and slices within a group in
  // ascending k_begin order, so ownership and arithmetic order are
  // deterministic regardless of thread count.
  struct SplitGroup {
    int gemm = 0, ty = 0, tx = 0;
    std::size_t acc_offset = 0;
    std::vector<int> fixup;  ///< non-first slices, ascending k_begin.
  };
  std::vector<int> group_of_tile;  // -1 = full-K tile, executes as always
  std::vector<SplitGroup> groups;
  std::vector<float> workspace;
  if (plan.has_split()) {
    group_of_tile.assign(static_cast<std::size_t>(plan.num_tiles()), -1);
    std::map<std::array<int, 3>, std::vector<int>> keyed;
    for (int t = 0; t < plan.num_tiles(); ++t) {
      const int g = plan.gemm_of_tile[static_cast<std::size_t>(t)];
      const auto [kb, ke] = plan.tile_k_range(t, batch[static_cast<std::size_t>(g)].dims.k);
      if (kb == 0 && ke == batch[static_cast<std::size_t>(g)].dims.k)
        continue;
      keyed[{g, plan.y_coord[static_cast<std::size_t>(t)],
             plan.x_coord[static_cast<std::size_t>(t)]}]
          .push_back(t);
    }
    std::size_t arena = 0;
    long long split_tiles = 0;
    for (auto& [key, tiles] : keyed) {
      std::sort(tiles.begin(), tiles.end(), [&](int a, int b) {
        return plan.k_begin[static_cast<std::size_t>(a)] <
               plan.k_begin[static_cast<std::size_t>(b)];
      });
      split_tiles += static_cast<long long>(tiles.size());
      SplitGroup grp;
      grp.gemm = key[0];
      grp.ty = key[1];
      grp.tx = key[2];
      grp.acc_offset = arena;
      const TilingStrategy& s = batched_strategy_by_id(
          plan.strategy_of_tile[static_cast<std::size_t>(tiles.front())]);
      arena += static_cast<std::size_t>(s.by) * s.bx;
      for (int i = 0; i < static_cast<int>(tiles.size()); ++i) {
        group_of_tile[static_cast<std::size_t>(tiles[static_cast<std::size_t>(i)])] =
            static_cast<int>(groups.size());
        if (i > 0) grp.fixup.push_back(tiles[static_cast<std::size_t>(i)]);
      }
      groups.push_back(std::move(grp));
    }
    workspace.resize(arena);
    CTB_TEL_COUNT("exec.splitk.tiles", split_tiles);
    CTB_TEL_COUNT("exec.splitk.groups", groups.size());
  }

  // Fig. 7: each block walks its tile range from the aux arrays. Blocks run
  // concurrently — validate_plan guarantees complete single coverage, so no
  // two blocks touch the same C tile — while each block's tile chain stays
  // serial, exactly like persistent thread blocks on the device. Per-block
  // spans land in parallel_for-safe thread-local buffers. Split tiles with
  // k_begin == 0 seed their group's workspace accumulator (one writer per
  // group in this pass); later slices are deferred to the fix-up reduction
  // below, past the parallel_for join.
  parallel_for(plan.num_blocks(), [&](long long b) {
    CTB_TEL_SPAN("exec.block");
    const auto [begin, end] = plan.block_tiles(static_cast<int>(b));
    for (int t = begin; t < end; ++t) {
      const int g = plan.gemm_of_tile[static_cast<std::size_t>(t)];
      CTB_CHECK_MSG(g >= 0 && g < static_cast<int>(batch.size()),
                    "plan references GEMM " << g << " beyond the batch");
      const int sid = plan.strategy_of_tile[static_cast<std::size_t>(t)];
      const int ty = plan.y_coord[static_cast<std::size_t>(t)];
      const int tx = plan.x_coord[static_cast<std::size_t>(t)];
      const PackedDispatch& d = packs[static_cast<std::size_t>(g)];
      if (!group_of_tile.empty() &&
          group_of_tile[static_cast<std::size_t>(t)] >= 0) {
        const int kb = plan.k_begin[static_cast<std::size_t>(t)];
        if (kb != 0) continue;  // fix-up entry: reduced after the join
        const SplitGroup& grp = groups[static_cast<std::size_t>(
            group_of_tile[static_cast<std::size_t>(t)])];
        accumulate_tile_range(batched_strategy_by_id(sid),
                              batch[static_cast<std::size_t>(g)], d, ty, tx,
                              kb, plan.k_end[static_cast<std::size_t>(t)],
                              /*first=*/true,
                              workspace.data() + grp.acc_offset);
        continue;
      }
      if (batch[static_cast<std::size_t>(g)].epilogue != 0) {
        // Fused tile: dispatched accumulation + the epilogue-aware store
        // (the microkernels' own store has no epilogue hook).
        const KSlice full{0, batch[static_cast<std::size_t>(g)].dims.k};
        execute_tile_sliced(batched_strategy_by_id(sid),
                            batch[static_cast<std::size_t>(g)], d, ty, tx,
                            {&full, 1}, alpha, beta);
      } else if (d.specialized() &&
                 sid == strategy_of_gemm[static_cast<std::size_t>(g)]) {
        d.kernel.fn(batch[static_cast<std::size_t>(g)], *d.pack, ty, tx,
                    alpha, beta);
      } else {
        execute_tile(batched_strategy_by_id(sid),
                     batch[static_cast<std::size_t>(g)], ty, tx, alpha,
                     beta);
      }
    }
  });

  // Deterministic fix-up reduction: one owner per split group continues the
  // carried chain through the remaining slices in ascending k order (the
  // left-spine tree — the unique order preserving unsplit bit-identity) and
  // applies the epilogue. The parallel_for join above makes every seeded
  // accumulator visible; groups write disjoint C tiles, so no atomics.
  if (!groups.empty()) {
    CTB_TEL_SPAN("exec.splitk.reduce");
    parallel_for(static_cast<long long>(groups.size()), [&](long long i) {
      const SplitGroup& grp = groups[static_cast<std::size_t>(i)];
      const auto gz = static_cast<std::size_t>(grp.gemm);
      float* acc = workspace.data() + grp.acc_offset;
      for (int t : grp.fixup) {
        const TilingStrategy& s = batched_strategy_by_id(
            plan.strategy_of_tile[static_cast<std::size_t>(t)]);
        accumulate_tile_range(s, batch[gz], packs[gz], grp.ty, grp.tx,
                              plan.k_begin[static_cast<std::size_t>(t)],
                              plan.k_end[static_cast<std::size_t>(t)],
                              /*first=*/false, acc);
      }
      const TilingStrategy& s =
          batched_strategy_by_id(strategy_of_gemm[gz]);
      store_tile_rowmajor_rt(s, batch[gz], grp.ty, grp.tx, alpha, beta,
                             acc);
    });
  }
}

GemmOperands operands(const Matrixf& a, const Matrixf& b, Matrixf& c) {
  return operands(a, b, c, Op::kN, Op::kN);
}

GemmOperands operands(const Matrixf& a, const Matrixf& b, Matrixf& c,
                      Op op_a, Op op_b) {
  GemmOperands g;
  g.dims = gemm_dims_for(op_a, op_b, a, b);
  CTB_CHECK_MSG(static_cast<int>(c.rows()) == g.dims.m &&
                    static_cast<int>(c.cols()) == g.dims.n,
                "operand shape mismatch");
  g.a = a.data();
  g.b = b.data();
  g.c = c.data();
  g.op_a = op_a;
  g.op_b = op_b;
  return g;
}

}  // namespace ctb
