// Builds the timing-model work descriptors (gpusim::KernelWork) for each
// kernel variant from the same tiling/batching decisions the functional
// executors run. Keeping one producer for both paths guarantees that what
// the benchmarks time is what the tests verify.
#pragma once

#include <span>

#include "core/batch_plan.hpp"
#include "core/tiling_strategy.hpp"
#include "gpusim/work.hpp"
#include "linalg/gemm_ref.hpp"

namespace ctb {

/// TileWork for tile (ty, tx) of a GEMM under a strategy. Edge tiles clamp
/// their loads, stores, and flop counts to the in-range region. FP16
/// halves every byte count.
TileWork make_tile_work(const TilingStrategy& strategy, const GemmDims& dims,
                        int ty, int tx,
                        Precision precision = Precision::kFp32);

/// Split-K variant: the tile executes only the K range [k_begin, k_end) —
/// its main-loop iterations and flops scale to the slice, while the
/// epilogue traffic stays whole-tile (a partial tile reads/writes the
/// fix-up workspace accumulator instead of C; same BY x BX footprint).
/// This is how the occupancy/timing model sees split-K's extra blocks
/// carry proportionally less work each.
TileWork make_tile_work(const TilingStrategy& strategy, const GemmDims& dims,
                        int ty, int tx, Precision precision, int k_begin,
                        int k_end);

/// Fig. 2 kernel: one block per tile, block size = strategy.threads.
KernelWork work_single_gemm(const GemmDims& dims,
                            const TilingStrategy& strategy);

/// vbatch-style kernel: uniform strategy, grid = (max tiles) x batch with
/// bubble blocks for the padding, uniform block size. `double_buffered`
/// distinguishes cuBLAS-quality kernels (true) from MAGMA's phase-
/// serialized vbatch templates (false).
KernelWork work_vbatch(std::span<const GemmDims> batch,
                       const TilingStrategy& strategy,
                       bool double_buffered = false,
                       double code_efficiency = 1.0);

/// Persistent-threads kernel for a batching plan: one block per plan block,
/// unified block size and the plan's static smem/register footprint.
KernelWork work_from_plan(const BatchPlan& plan,
                          std::span<const GemmDims> batch,
                          Precision precision = Precision::kFp32);

}  // namespace ctb
