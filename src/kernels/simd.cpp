// ISA detection and tile-loop dispatch for the explicit-SIMD layer.
#include "kernels/simd.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace ctb {

namespace {

SimdIsa probe_host() {
#if defined(CTB_SIMD_ENABLED)
#if defined(__x86_64__) || defined(_M_X64)
  // avx512f covers every instruction the fp32 tile loop emits; the finer
  // subsets (dq/bw/vl) are irrelevant here.
  if (__builtin_cpu_supports("avx512f")) return SimdIsa::kAvx512;
  if (__builtin_cpu_supports("avx2")) return SimdIsa::kAvx2;
  return SimdIsa::kScalar;
#elif defined(__aarch64__) || defined(_M_ARM64)
  return SimdIsa::kNeon;  // advsimd is baseline on aarch64
#else
  return SimdIsa::kScalar;
#endif
#else
  return SimdIsa::kScalar;  // -DCTB_SIMD=OFF
#endif
}

SimdIsa clamp_to_detected(SimdIsa isa) {
  const SimdIsa det = detected_simd_isa();
  return static_cast<int>(isa) > static_cast<int>(det) ? det : isa;
}

SimdIsa initial_active_isa() {
  const char* env = std::getenv("CTB_SIMD_ISA");
  if (env != nullptr && *env != '\0')
    return clamp_to_detected(parse_simd_isa(env));
  return detected_simd_isa();
}

std::atomic<SimdIsa>& active_isa_atomic() {
  static std::atomic<SimdIsa> isa{initial_active_isa()};
  return isa;
}

}  // namespace

SimdIsa detected_simd_isa() {
  static const SimdIsa isa = probe_host();
  return isa;
}

SimdIsa active_simd_isa() {
  return active_isa_atomic().load(std::memory_order_relaxed);
}

void set_simd_isa(SimdIsa isa) {
  active_isa_atomic().store(clamp_to_detected(isa), std::memory_order_relaxed);
}

const char* simd_isa_name(SimdIsa isa) {
  switch (isa) {
    case SimdIsa::kNeon:
      return "neon";
    case SimdIsa::kAvx2:
      return "avx2";
    case SimdIsa::kAvx512:
      return "avx512";
    case SimdIsa::kScalar:
      break;
  }
  return "scalar";
}

SimdIsa parse_simd_isa(const char* name) {
  if (name == nullptr) return SimdIsa::kScalar;
  if (std::strcmp(name, "neon") == 0) return SimdIsa::kNeon;
  if (std::strcmp(name, "avx2") == 0) return SimdIsa::kAvx2;
  if (std::strcmp(name, "avx512") == 0) return SimdIsa::kAvx512;
  return SimdIsa::kScalar;
}

namespace {

const SimdLoopEntry* find_simd_loop(SimdIsa isa, int by, int bx, int bk) {
  int count = 0;
  const SimdLoopEntry* table = nullptr;
  switch (isa) {
    case SimdIsa::kNeon:
      table = simd_detail::neon_loops(&count);
      break;
    case SimdIsa::kAvx2:
      table = simd_detail::avx2_loops(&count);
      break;
    case SimdIsa::kAvx512:
      table = simd_detail::avx512_loops(&count);
      break;
    case SimdIsa::kScalar:
      break;  // scalar tiles run the compile-time microkernels instead
  }
  for (int i = 0; i < count; ++i) {
    if (table[i].by == by && table[i].bx == bx && table[i].bk == bk)
      return &table[i];
  }
  return nullptr;
}

}  // namespace

SimdTileLoopFn simd_tile_loop(SimdIsa isa, int by, int bx, int bk) {
  const SimdLoopEntry* e = find_simd_loop(isa, by, bx, bk);
  return e == nullptr ? nullptr : e->fn;
}

SimdTileLoopFn simd_tile_loop_acc(SimdIsa isa, int by, int bx, int bk) {
  const SimdLoopEntry* e = find_simd_loop(isa, by, bx, bk);
  return e == nullptr ? nullptr : e->fn_acc;
}

SimdEpilogueRowFn simd_epilogue_row(SimdIsa isa) {
  switch (isa) {
    case SimdIsa::kNeon:
      return simd_detail::neon_epilogue_row();
    case SimdIsa::kAvx2:
      return simd_detail::avx2_epilogue_row();
    case SimdIsa::kAvx512:
      return simd_detail::avx512_epilogue_row();
    case SimdIsa::kScalar:
      break;  // scalar epilogues run the per-element chain in the caller
  }
  return nullptr;
}

}  // namespace ctb
