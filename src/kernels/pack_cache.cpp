#include "kernels/pack_cache.hpp"

#include <atomic>
#include <bit>
#include <cstdlib>
#include <list>
#include <mutex>
#include <utility>

#include "telemetry/telemetry.hpp"
#include "telemetry/trace.hpp"

namespace ctb {

namespace {

/// Full pack identity minus the operand *values* (see header). Two GEMMs
/// agreeing on every field produce byte-identical panels for the same
/// underlying data.
struct CacheKey {
  const float* a = nullptr;
  const float* b = nullptr;
  int m = 0, n = 0, k = 0;
  int by = 0, bx = 0, bk = 0;
  Op op_a = Op::kN;
  Op op_b = Op::kN;
  Precision precision = Precision::kFp32;

  bool operator==(const CacheKey&) const = default;
};

struct CacheEntry {
  CacheKey key;
  std::shared_ptr<const PackedGemm> pack;
};

struct CacheState {
  std::mutex mu;
  std::list<CacheEntry> entries;  // FIFO: front is oldest
  std::size_t resident_bytes = 0;
  std::atomic<bool> enabled{false};
  std::atomic<std::uint64_t> generation{0};
};

CacheState& state() {
  static CacheState* s = [] {
    auto* st = new CacheState;
    const char* env = std::getenv("CTB_PACK_CACHE");
    if (env != nullptr && env[0] == '1' && env[1] == '\0')
      st->enabled.store(true, std::memory_order_relaxed);
    return st;
  }();
  return *s;
}

bool cacheable(const GemmOperands& g) { return !g.b_gather; }

CacheKey key_of(const TilingStrategy& s, const GemmOperands& g) {
  CacheKey k;
  k.a = g.a;
  k.b = g.b;
  k.m = g.dims.m;
  k.n = g.dims.n;
  k.k = g.dims.k;
  k.by = s.by;
  k.bx = s.bx;
  k.bk = s.bk;
  k.op_a = g.op_a;
  k.op_b = g.op_b;
  k.precision = g.precision;
  return k;
}

bool bits_equal(float x, float y) {
  return std::bit_cast<std::uint32_t>(x) == std::bit_cast<std::uint32_t>(y);
}

/// Reads staged A(gi, gk) back out of the packed panel layout.
float panel_a_at(const PackedGemm& pk, int gi, int gk) {
  const int step = gk / pk.bk;
  const int p = gk % pk.bk;
  const int i = gi % pk.by;
  return pk.a_panel(gi / pk.by)[static_cast<std::size_t>(step) *
                                    (pk.by * pk.bk) +
                                i * pk.bk + p];
}

/// Reads staged B(gk, gj) back out of the packed panel layout.
float panel_b_at(const PackedGemm& pk, int gk, int gj) {
  const int step = gk / pk.bk;
  const int p = gk % pk.bk;
  const int j = gj % pk.bx;
  return pk.b_panel(gj / pk.bx)[static_cast<std::size_t>(step) *
                                    (pk.bk * pk.bx) +
                                p * pk.bx + j];
}

/// Best-effort staleness probe: recompute a deterministic handful of staged
/// values (the four corners and the center of each operand) and compare
/// bitwise against the cached panels. Cheap relative to a repack, catches
/// the common whole-operand update; NOT a guarantee (header documents the
/// explicit-invalidate contract).
bool probe_fresh(const GemmOperands& g, const PackedGemm& pk) {
  const auto& d = g.dims;
  const int is[3] = {0, d.m / 2, d.m - 1};
  const int ks[3] = {0, d.k / 2, d.k - 1};
  const int js[3] = {0, d.n / 2, d.n - 1};
  for (int gi : is)
    for (int gk : ks)
      if (!bits_equal(staged_a_value(g, gi, gk), panel_a_at(pk, gi, gk)))
        return false;
  for (int gk : ks)
    for (int gj : js)
      if (!bits_equal(staged_b_value(g, gk, gj), panel_b_at(pk, gk, gj)))
        return false;
  return true;
}

}  // namespace

bool pack_cache_enabled() {
  return state().enabled.load(std::memory_order_relaxed);
}

void set_pack_cache_enabled(bool on) {
  state().enabled.store(on, std::memory_order_relaxed);
}

void invalidate_pack_cache() {
  CacheState& st = state();
  std::lock_guard<std::mutex> lock(st.mu);
  st.entries.clear();
  st.resident_bytes = 0;
  st.generation.fetch_add(1, std::memory_order_relaxed);
  CTB_TEL_COUNT("exec.pack.cache.invalidate", 1);
}

std::size_t pack_cache_entries() {
  CacheState& st = state();
  std::lock_guard<std::mutex> lock(st.mu);
  return st.entries.size();
}

std::size_t pack_cache_bytes() {
  CacheState& st = state();
  std::lock_guard<std::mutex> lock(st.mu);
  return st.resident_bytes;
}

std::uint64_t pack_cache_generation() {
  return state().generation.load(std::memory_order_relaxed);
}

std::shared_ptr<const PackedGemm> pack_cache_lookup(const TilingStrategy& s,
                                                    const GemmOperands& g) {
  CacheState& st = state();
  if (!st.enabled.load(std::memory_order_relaxed) || !cacheable(g))
    return nullptr;
  const CacheKey key = key_of(s, g);
  std::lock_guard<std::mutex> lock(st.mu);
  for (auto it = st.entries.begin(); it != st.entries.end(); ++it) {
    if (!(it->key == key)) continue;
    if (!probe_fresh(g, *it->pack)) {
      CTB_TEL_COUNT("exec.pack.cache.stale", 1);
      CTB_TEL_COUNT("exec.pack.cache.miss", 1);
      CTB_TEL_FLIGHT(kPackStale, "operand mutated since pack",
                     static_cast<std::int64_t>(it->pack->bytes()), 0);
      st.resident_bytes -= it->pack->bytes();
      st.entries.erase(it);
      return nullptr;
    }
    CTB_TEL_COUNT("exec.pack.cache.hit", 1);
    return it->pack;
  }
  CTB_TEL_COUNT("exec.pack.cache.miss", 1);
  return nullptr;
}

void pack_cache_insert(const TilingStrategy& s, const GemmOperands& g,
                       std::shared_ptr<const PackedGemm> pk) {
  CacheState& st = state();
  if (!st.enabled.load(std::memory_order_relaxed) || !cacheable(g)) return;
  if (pk == nullptr || !pk->valid()) return;
  const std::size_t bytes = pk->bytes();
  const std::size_t budget = pack_arena_budget();
  if (bytes > budget) return;  // would evict everything and still not fit
  const CacheKey key = key_of(s, g);
  std::lock_guard<std::mutex> lock(st.mu);
  for (auto it = st.entries.begin(); it != st.entries.end(); ++it) {
    if (it->key == key) {  // replace (e.g. repack after explicit mutation)
      st.resident_bytes -= it->pack->bytes();
      st.entries.erase(it);
      break;
    }
  }
  while (!st.entries.empty() && st.resident_bytes + bytes > budget) {
    st.resident_bytes -= st.entries.front().pack->bytes();
    st.entries.pop_front();
    CTB_TEL_COUNT("exec.pack.cache.evict", 1);
  }
  st.resident_bytes += bytes;
  st.entries.push_back({key, std::move(pk)});
}

}  // namespace ctb
