// Compile-time-specialized tile microkernels over packed operand panels.
//
// The generic `execute_tile` treats every loop bound (BY/BX/BK/sub_y/sub_x)
// as a runtime value, so nothing unrolls and the j-inner FMA loop carries a
// variable trip count. The tiling suites are a fixed, closed set (Tables 1
// and 2), which makes full specialization cheap: `packed_microkernel` bakes
// the geometry into template parameters — the i/p/j loops fully unroll, the
// j-inner loop vectorizes with a fixed trip count — and reads its A/B tiles
// from the panels a `PackedGemm` staged once per (GEMM, strategy), so the
// interior K loop is branch-free (no bounds/transpose/fp16/gather checks).
//
// Determinism (DESIGN.md §6): every C element still accumulates its FMA
// chain in ascending (k0, p) order over exactly the staged values the
// generic path would have produced, and the epilogue applies the identical
// alpha/beta expression — so results are bit-identical to `execute_tile`
// for every strategy, precision, transpose mode, and gather. The full-tile
// fast path only skips edge *guards* (comparisons that never fail for an
// interior tile); it performs the same arithmetic.
//
// Dispatch is a table keyed on the Table-2 strategy id (`microkernel_for_id`)
// with a geometry matcher (`microkernel_for`) that also covers the Table-1
// single-GEMM suite; unknown geometries return nullptr and the caller keeps
// using the generic executor.
#pragma once

#include <algorithm>
#include <array>
#include <cstddef>

#include "core/tiling_strategy.hpp"
#include "kernels/functional.hpp"
#include "kernels/packing.hpp"
#include "kernels/simd.hpp"
#include "linalg/half.hpp"

namespace ctb {

/// Executes C tile (ty, tx) of `g` from packed panels. `pk` must have been
/// produced by `pack_gemm` for the same GEMM and a strategy whose geometry
/// matches the kernel's template parameters.
using MicrokernelFn = void (*)(const GemmOperands& g, const PackedGemm& pk,
                               int ty, int tx, float alpha, float beta);

namespace microkernel_detail {

/// One shared per-thread accumulator scratch, sized for the largest tile
/// (128 x 128) — mirrors the generic executor's thread-local reg_C, keeping
/// every instantiation allocation-free without multiplying thread-local
/// footprint by the number of instantiations.
inline float* reg_c_scratch() {
  static thread_local float buf[128 * 128];
  return buf;
}

template <int BY, int BX, int BK, int SY, int SX>
void packed_microkernel(const GemmOperands& g, const PackedGemm& pk, int ty,
                        int tx, float alpha, float beta) {
  static_assert(BY % SY == 0 && BX % SX == 0, "sub-tiles must tile the tile");
  static_assert(BY * BX <= 128 * 128, "tile exceeds the scratch buffer");
  constexpr int kCols = BX / SX;          // sub-tile grid columns
  constexpr int kThreads = (BY / SY) * kCols;
  constexpr int kAcc = SY * SX;           // accumulators per thread
  const auto& d = g.dims;
  const int row0 = ty * BY;
  const int col0 = tx * BX;

  float* reg_c = reg_c_scratch();
  std::fill_n(reg_c, BY * BX, 0.0f);
  const float* pa = pk.a_panel(ty);
  const float* pb = pk.b_panel(tx);

  // Main K loop over pre-staged panel blocks: branch-free contiguous reads,
  // all inner trip counts compile-time constants. Per C element the FMA
  // chain is ascending (k0, p), identical to the generic executor.
  const int nsteps = pk.nsteps;
  for (int step = 0; step < nsteps; ++step) {
    const float* sa_blk = pa + static_cast<std::size_t>(step) * (BY * BK);
    const float* sb_blk = pb + static_cast<std::size_t>(step) * (BK * BX);
    for (int t = 0; t < kThreads; ++t) {
      const int orow = t / kCols * SY;
      const int ocol = t % kCols * SX;
      float* acc = reg_c + t * kAcc;
      if constexpr (SX == 1) {
        // One C element per sub-tile row: plain dot product (same
        // ascending-p chain as the j-inner form).
        const float* sbcol = sb_blk + ocol;
        for (int i = 0; i < SY; ++i) {
          const float* sa = sa_blk + (orow + i) * BK;
          float sum = acc[i];
          for (int p = 0; p < BK; ++p) sum += sa[p] * sbcol[p * BX];
          acc[i] = sum;
        }
      } else {
        for (int i = 0; i < SY; ++i) {
          const float* sa = sa_blk + (orow + i) * BK;
          float* arow = acc + i * SX;
          float row[SX];
          for (int j = 0; j < SX; ++j) row[j] = arow[j];
          for (int p = 0; p < BK; ++p) {
            const float av = sa[p];
            const float* sb = sb_blk + p * BX + ocol;
            for (int j = 0; j < SX; ++j) row[j] += av * sb[j];
          }
          for (int j = 0; j < SX; ++j) arow[j] = row[j];
        }
      }
    }
  }

  // Epilogue: C = alpha * acc + beta * C. The full-tile fast path drops the
  // per-element edge guards when the whole BY x BX tile is inside M x N;
  // the arithmetic per element is identical either way.
  const bool fp16 = g.precision == Precision::kFp16;
  auto store = [&](float* cell, float v) {
    if (fp16) {
      const float prior = beta == 0.0f ? 0.0f : beta * round_to_half(*cell);
      *cell = round_to_half(alpha * v + prior);
    } else {
      const float prior = beta == 0.0f ? 0.0f : beta * *cell;
      *cell = alpha * v + prior;
    }
  };
  if (row0 + BY <= d.m && col0 + BX <= d.n) {
    for (int t = 0; t < kThreads; ++t) {
      const int orow = t / kCols * SY;
      const int ocol = t % kCols * SX;
      const float* acc = reg_c + t * kAcc;
      for (int i = 0; i < SY; ++i) {
        float* crow = g.c + static_cast<std::size_t>(row0 + orow + i) * d.n +
                      col0 + ocol;
        for (int j = 0; j < SX; ++j) store(crow + j, acc[i * SX + j]);
      }
    }
  } else {
    for (int t = 0; t < kThreads; ++t) {
      const int orow = t / kCols * SY;
      const int ocol = t % kCols * SX;
      const float* acc = reg_c + t * kAcc;
      for (int i = 0; i < SY; ++i) {
        const int gi = row0 + orow + i;
        if (gi >= d.m) continue;
        for (int j = 0; j < SX; ++j) {
          const int gj = col0 + ocol + j;
          if (gj >= d.n) continue;
          store(g.c + static_cast<std::size_t>(gi) * d.n + gj,
                acc[i * SX + j]);
        }
      }
    }
  }
}

/// Shared alpha/beta epilogue for the explicit-SIMD kernels, whose
/// accumulator is plain row-major BY x BX (each vector lane owns one C
/// element) rather than the per-thread sub-tile layout above. The
/// per-element arithmetic — edge guards, beta short-circuit, fp16 rounding —
/// is identical to the scalar epilogue, so the store order difference is
/// unobservable (disjoint elements).
template <int BY, int BX>
void store_tile_rowmajor(const GemmOperands& g, int ty, int tx, float alpha,
                         float beta, const float* acc) {
  const auto& d = g.dims;
  const int row0 = ty * BY;
  const int col0 = tx * BX;
  const bool fp16 = g.precision == Precision::kFp16;
  auto store = [&](float* cell, float v) {
    if (fp16) {
      const float prior = beta == 0.0f ? 0.0f : beta * round_to_half(*cell);
      *cell = round_to_half(alpha * v + prior);
    } else {
      const float prior = beta == 0.0f ? 0.0f : beta * *cell;
      *cell = alpha * v + prior;
    }
  };
  if (row0 + BY <= d.m && col0 + BX <= d.n) {
    for (int i = 0; i < BY; ++i) {
      float* crow = g.c + static_cast<std::size_t>(row0 + i) * d.n + col0;
      const float* arow = acc + static_cast<std::size_t>(i) * BX;
      for (int j = 0; j < BX; ++j) store(crow + j, arow[j]);
    }
  } else {
    for (int i = 0; i < BY; ++i) {
      const int gi = row0 + i;
      if (gi >= d.m) continue;
      const float* arow = acc + static_cast<std::size_t>(i) * BX;
      for (int j = 0; j < BX; ++j) {
        const int gj = col0 + j;
        if (gj >= d.n) continue;
        store(g.c + static_cast<std::size_t>(gi) * d.n + gj, arow[j]);
      }
    }
  }
}

/// Explicit-SIMD microkernel: zeroes the shared scratch row-major, runs the
/// `Isa` tile loop over the packed panels (each lane one C element, per
/// element the same ascending (k0, p) unfused chain as the scalar kernels),
/// then applies the shared epilogue. The tile-loop pointer resolves once per
/// (geometry, Isa) instantiation; dispatch (`tile_kernel_for`) only hands
/// out instantiations whose loop exists on this host/build.
template <int BY, int BX, int BK, SimdIsa Isa>
void simd_packed_microkernel(const GemmOperands& g, const PackedGemm& pk,
                             int ty, int tx, float alpha, float beta) {
  static_assert(BY * BX <= 128 * 128, "tile exceeds the scratch buffer");
  static const SimdTileLoopFn loop = simd_tile_loop(Isa, BY, BX, BK);
  // The loop fully overwrites the scratch (see simd_kernels.inl), so no
  // clearing pass is needed between tiles.
  float* acc = reg_c_scratch();
  loop(pk.a_panel(ty), pk.b_panel(tx), pk.nsteps, acc);
  store_tile_rowmajor<BY, BX>(g, ty, tx, alpha, beta, acc);
}

/// The six distinct (BY, BX) geometries of Tables 1 and 2 x the three
/// vector ISAs. Indexed by static_cast<int>(isa) - 1.
struct SimdKernelEntry {
  int by, bx;
  MicrokernelFn fn[3];
};

template <int BY, int BX>
constexpr SimdKernelEntry simd_kernel_entry() {
  return {BY,
          BX,
          {&simd_packed_microkernel<BY, BX, 8, SimdIsa::kNeon>,
           &simd_packed_microkernel<BY, BX, 8, SimdIsa::kAvx2>,
           &simd_packed_microkernel<BY, BX, 8, SimdIsa::kAvx512>}};
}

inline constexpr SimdKernelEntry kSimdKernelTable[] = {
    simd_kernel_entry<16, 16>(),   simd_kernel_entry<32, 32>(),
    simd_kernel_entry<64, 64>(),   simd_kernel_entry<128, 64>(),
    simd_kernel_entry<64, 128>(),  simd_kernel_entry<128, 128>(),
};

/// Every geometry appearing in Table 2 (all 12 batched ids) or Table 1 (the
/// single-GEMM suite; tall/wide/huge coincide with Table-2 entries). BK is
/// 8 throughout (paper §4.2.2).
struct GeometryEntry {
  int by, bx, sy, sx;
  MicrokernelFn fn;
};

inline constexpr GeometryEntry kGeometryTable[] = {
    // Table 2, id order: shape * 2 + (256-thread variant).
    {16, 16, 2, 1, &packed_microkernel<16, 16, 8, 2, 1>},      // small/128
    {16, 16, 1, 1, &packed_microkernel<16, 16, 8, 1, 1>},      // small/256
    {32, 32, 4, 2, &packed_microkernel<32, 32, 8, 4, 2>},      // medium/128
    {32, 32, 2, 2, &packed_microkernel<32, 32, 8, 2, 2>},      // medium/256
    {64, 64, 8, 4, &packed_microkernel<64, 64, 8, 8, 4>},      // large/128
    {64, 64, 4, 4, &packed_microkernel<64, 64, 8, 4, 4>},      // large/256
    {128, 64, 8, 8, &packed_microkernel<128, 64, 8, 8, 8>},    // tall/128
    {128, 64, 8, 4, &packed_microkernel<128, 64, 8, 8, 4>},    // tall/256
    {64, 128, 8, 8, &packed_microkernel<64, 128, 8, 8, 8>},    // wide/128
    {64, 128, 8, 4, &packed_microkernel<64, 128, 8, 8, 4>},    // wide/256
    {128, 128, 16, 8, &packed_microkernel<128, 128, 8, 16, 8>},  // huge/128
    {128, 128, 8, 8, &packed_microkernel<128, 128, 8, 8, 8>},    // huge/256
    // Table-1-only geometries (ids -1; reached via run_single_gemm).
    {16, 16, 4, 2, &packed_microkernel<16, 16, 8, 4, 2>},      // small/32
    {32, 32, 4, 4, &packed_microkernel<32, 32, 8, 4, 4>},      // medium/64
    {64, 64, 8, 8, &packed_microkernel<64, 64, 8, 8, 8>},      // large/64
};

}  // namespace microkernel_detail

/// Specialized kernel for `strategy`, matched on geometry (by/bx/bk/sub_y/
/// sub_x — the thread count is derived, so Table-1 and Table-2 strategies
/// sharing a geometry share an instantiation). Returns nullptr when no
/// compile-time instantiation matches; callers fall back to the generic
/// `execute_tile`.
inline MicrokernelFn microkernel_for(const TilingStrategy& s) {
  if (s.bk != 8) return nullptr;
  for (const auto& e : microkernel_detail::kGeometryTable) {
    if (e.by == s.by && e.bx == s.bx && e.sy == s.sub_y && e.sx == s.sub_x)
      return e.fn;
  }
  return nullptr;
}

/// Dispatch table keyed on the Table-2 strategy id (0..11, the encoding the
/// plan aux arrays carry). Out-of-range ids return nullptr.
inline MicrokernelFn microkernel_for_id(int id) {
  static const std::array<MicrokernelFn, 12> table = [] {
    std::array<MicrokernelFn, 12> t{};
    for (int i = 0; i < static_cast<int>(t.size()); ++i)
      t[static_cast<std::size_t>(i)] = microkernel_for(batched_strategy_by_id(i));
    return t;
  }();
  if (id < 0 || id >= static_cast<int>(table.size())) return nullptr;
  return table[static_cast<std::size_t>(id)];
}

/// A dispatched packed-tile kernel plus the ISA it was selected for (kScalar
/// for the compile-time microkernels; the executors count exec.simd.<isa>
/// from this).
struct TileKernel {
  MicrokernelFn fn = nullptr;
  SimdIsa isa = SimdIsa::kScalar;
  explicit operator bool() const { return fn != nullptr; }
};

/// ISA-aware dispatch for `strategy`: the active ISA's explicit-SIMD kernel
/// when one exists for the geometry, else the scalar compile-time
/// microkernel, else {nullptr} (caller falls back to the generic executor).
/// All three produce bit-identical C. Note sub_y/sub_x do not key the SIMD
/// kernels — they only partition work among emulated threads, and the SIMD
/// accumulator is row-major over the whole tile — but the scalar fallback
/// still requires a full geometry match.
inline TileKernel tile_kernel_for(const TilingStrategy& s) {
  const SimdIsa isa = active_simd_isa();
  if (isa != SimdIsa::kScalar && s.bk == 8 &&
      simd_tile_loop(isa, s.by, s.bx, s.bk) != nullptr) {
    // A matching loop exists, so the scalar fallback must too; require it
    // anyway so SIMD never widens dispatch beyond the scalar suite.
    if (microkernel_for(s) != nullptr) {
      for (const auto& e : microkernel_detail::kSimdKernelTable) {
        if (e.by == s.by && e.bx == s.bx)
          return {e.fn[static_cast<int>(isa) - 1], isa};
      }
    }
  }
  return {microkernel_for(s), SimdIsa::kScalar};
}

/// tile_kernel_for over the Table-2 strategy id encoding (0..11).
inline TileKernel tile_kernel_for_id(int id) {
  if (id < 0 || id >= 12) return {};
  return tile_kernel_for(batched_strategy_by_id(id));
}

}  // namespace ctb
