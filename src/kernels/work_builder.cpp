#include "kernels/work_builder.hpp"

#include <algorithm>

#include "kernels/thread_map.hpp"
#include "util/assert.hpp"

namespace ctb {

TileWork make_tile_work(const TilingStrategy& s, const GemmDims& d, int ty,
                        int tx, Precision precision) {
  return make_tile_work(s, d, ty, tx, precision, 0, d.k);
}

TileWork make_tile_work(const TilingStrategy& s, const GemmDims& d, int ty,
                        int tx, Precision precision, int k_begin, int k_end) {
  CTB_CHECK(d.valid());
  CTB_CHECK_MSG(0 <= k_begin && k_begin < k_end && k_end <= d.k,
                "K range [" << k_begin << "," << k_end << ") outside [0,"
                            << d.k << ")");
  const int mc = std::min(s.by, d.m - ty * s.by);
  const int nc = std::min(s.bx, d.n - tx * s.bx);
  CTB_CHECK_MSG(mc > 0 && nc > 0, "tile outside GEMM");
  const int elem = precision == Precision::kFp16 ? 2 : 4;

  TileWork w;
  // Main-loop iterations cover only this tile's K slice (BK-aligned start,
  // ragged tail ceiling) — for a full tile this is ceil(K / BK) as before.
  w.iters = (k_end + s.bk - 1) / s.bk - k_begin / s.bk;
  w.fmas_per_thread_iter = s.fmas_per_thread_iter();
  // Guarded loads touch only the in-range rows/cols of the A and B tiles.
  w.bytes_per_iter = static_cast<std::int64_t>(mc * s.bk + s.bk * nc) * elem;
  // The A band is shared by the tx_count tiles of this row, the B band by
  // the ty_count tiles of this column: each is fetched from DRAM once and
  // re-read from L2 by the siblings.
  const int ty_count = (d.m + s.by - 1) / s.by;
  const int tx_count = (d.n + s.bx - 1) / s.bx;
  w.dram_bytes_per_iter = static_cast<std::int64_t>(
      (static_cast<double>(mc * s.bk) / tx_count +
       static_cast<double>(s.bk * nc) / ty_count) *
      elem);
  w.epilogue_bytes = static_cast<std::int64_t>(mc) * nc * elem;
  w.epilogue_flops = 2LL * mc * nc;  // alpha scale + beta accumulate
  w.flops = 2LL * mc * nc * (k_end - k_begin);
  return w;
}

namespace {

BlockWork block_for_tiles(std::span<const Tile> tiles,
                          std::span<const GemmDims> batch, int block_threads,
                          int smem_bytes, int regs_per_thread,
                          Precision precision = Precision::kFp32) {
  BlockWork b;
  b.threads = block_threads;
  b.smem_bytes = smem_bytes;
  b.regs_per_thread = regs_per_thread;
  b.fp16 = precision == Precision::kFp16;
  int active = tiles.empty() ? block_threads : 0;
  for (const Tile& t : tiles) {
    const GemmDims& d = batch[static_cast<std::size_t>(t.gemm)];
    const TilingStrategy& s = *t.strategy;
    const int k_end = t.k_end != 0 ? t.k_end : d.k;
    b.tiles.push_back(
        make_tile_work(s, d, t.ty, t.tx, precision, t.k_begin, k_end));
    const int mc = std::min(s.by, d.m - t.ty * s.by);
    const int nc = std::min(s.bx, d.n - t.tx * s.bx);
    active = std::max(active, active_threads_for_tile(s, mc, nc));
  }
  b.active_threads = std::min(active, block_threads);
  return b;
}

}  // namespace

KernelWork work_single_gemm(const GemmDims& d, const TilingStrategy& s) {
  KernelWork kernel;
  const int ty_count = (d.m + s.by - 1) / s.by;
  const int tx_count = (d.n + s.bx - 1) / s.bx;
  kernel.blocks.reserve(static_cast<std::size_t>(ty_count) * tx_count);
  for (int ty = 0; ty < ty_count; ++ty) {
    for (int tx = 0; tx < tx_count; ++tx) {
      const Tile tile{0, ty, tx, d.k, 0, 0, &s};
      kernel.blocks.push_back(block_for_tiles(
          std::span<const Tile>(&tile, 1), std::span<const GemmDims>(&d, 1),
          s.threads, s.smem_bytes(), s.regs_per_thread()));
    }
  }
  return kernel;
}

KernelWork work_vbatch(std::span<const GemmDims> batch,
                       const TilingStrategy& s, bool double_buffered,
                       double code_efficiency) {
  KernelWork kernel;
  int max_ty = 0, max_tx = 0;
  for (const auto& d : batch) {
    max_ty = std::max(max_ty, (d.m + s.by - 1) / s.by);
    max_tx = std::max(max_tx, (d.n + s.bx - 1) / s.bx);
  }
  kernel.blocks.reserve(static_cast<std::size_t>(max_ty) * max_tx *
                        batch.size());
  for (std::size_t z = 0; z < batch.size(); ++z) {
    const GemmDims& d = batch[z];
    const int ty_count = (d.m + s.by - 1) / s.by;
    const int tx_count = (d.n + s.bx - 1) / s.bx;
    for (int ty = 0; ty < max_ty; ++ty) {
      for (int tx = 0; tx < max_tx; ++tx) {
        if (ty >= ty_count || tx >= tx_count) {
          // Bubble block: full resource footprint, no tiles.
          BlockWork bubble;
          bubble.threads = s.threads;
          bubble.active_threads = 0;
          bubble.smem_bytes = s.smem_bytes();
          bubble.regs_per_thread = s.regs_per_thread();
          bubble.double_buffered = double_buffered;
          bubble.code_efficiency = code_efficiency;
          kernel.blocks.push_back(std::move(bubble));
          continue;
        }
        const Tile tile{static_cast<int>(z), ty, tx, d.k, 0, 0, &s};
        BlockWork blk = block_for_tiles(
            std::span<const Tile>(&tile, 1), batch, s.threads,
            s.smem_bytes(), s.regs_per_thread());
        blk.double_buffered = double_buffered;
        blk.code_efficiency = code_efficiency;
        kernel.blocks.push_back(std::move(blk));
      }
    }
  }
  return kernel;
}

KernelWork work_from_plan(const BatchPlan& plan,
                          std::span<const GemmDims> batch,
                          Precision precision) {
  KernelWork kernel;
  kernel.blocks.reserve(static_cast<std::size_t>(plan.num_blocks()));
  for (int b = 0; b < plan.num_blocks(); ++b) {
    const auto [begin, end] = plan.block_tiles(b);
    std::vector<Tile> tiles;
    tiles.reserve(static_cast<std::size_t>(end - begin));
    for (int t = begin; t < end; ++t) {
      const int g = plan.gemm_of_tile[static_cast<std::size_t>(t)];
      const TilingStrategy& s = batched_strategy_by_id(
          plan.strategy_of_tile[static_cast<std::size_t>(t)]);
      const auto [kb, ke] =
          plan.tile_k_range(t, batch[static_cast<std::size_t>(g)].k);
      tiles.push_back(Tile{g, plan.y_coord[static_cast<std::size_t>(t)],
                           plan.x_coord[static_cast<std::size_t>(t)],
                           ke - kb, kb, ke, &s});
    }
    kernel.blocks.push_back(block_for_tiles(tiles, batch, plan.block_threads,
                                            plan.smem_bytes,
                                            plan.regs_per_thread, precision));
  }
  return kernel;
}

}  // namespace ctb
