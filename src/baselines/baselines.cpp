#include "baselines/baselines.hpp"

#include <algorithm>
#include <vector>

#include "core/perf_model.hpp"
#include "core/tiling_engine.hpp"
#include "kernels/work_builder.hpp"
#include "util/assert.hpp"

namespace ctb {

const TilingStrategy& single_gemm_heuristic(const GemmDims& dims,
                                            const GpuArch& arch) {
  CTB_CHECK(dims.valid());
  const TilingStrategy* best = nullptr;
  double best_score = -1.0;
  for (const auto& s : single_gemm_strategies()) {
    if (s.by > dims.m && s.shape != TileShape::kSmall) continue;
    if (s.bx > dims.n && s.shape != TileShape::kSmall) continue;
    const double tiles = static_cast<double>(s.tiles_for(dims.m, dims.n));
    const double tlp_factor =
        std::min(1.0, tiles / (2.0 * arch.sm_count));
    const double score = tlp_factor * arithmetic_intensity(s);
    if (score >= best_score) {  // >= so ties prefer the larger tile
      best_score = score;
      best = &s;
    }
  }
  CTB_CHECK(best != nullptr);
  return *best;
}

namespace {

std::vector<KernelWork> per_gemm_kernels(const GpuArch& arch,
                                         std::span<const GemmDims> batch) {
  std::vector<KernelWork> kernels;
  kernels.reserve(batch.size());
  for (const auto& d : batch)
    kernels.push_back(work_single_gemm(d, single_gemm_heuristic(d, arch)));
  return kernels;
}

void check_same_size(std::span<const GemmDims> batch) {
  CTB_CHECK(!batch.empty());
  for (const auto& d : batch)
    CTB_CHECK_MSG(d == batch.front(),
                  "cublasSgemmBatched-style API requires identical M, N, K "
                  "across the batch");
}

}  // namespace

BaselineResult run_default_timed(const GpuArch& arch,
                                 std::span<const GemmDims> batch) {
  CTB_CHECK(!batch.empty());
  const std::vector<KernelWork> kernels = per_gemm_kernels(arch, batch);
  BaselineResult r;
  r.sim = simulate_serial(arch, kernels);
  r.time_us = r.sim.makespan_us;  // simulate_serial includes launch gaps
  return r;
}

void run_default_functional(const GpuArch& arch,
                            std::span<const GemmOperands> batch, float alpha,
                            float beta) {
  for (const auto& g : batch)
    run_single_gemm(single_gemm_heuristic(g.dims, arch), g, alpha, beta);
}

BaselineResult run_cke_timed(const GpuArch& arch,
                             std::span<const GemmDims> batch,
                             int num_streams) {
  CTB_CHECK(!batch.empty());
  CTB_CHECK(num_streams >= 1);
  const std::vector<KernelWork> kernels = per_gemm_kernels(arch, batch);
  BaselineResult r;
  r.sim = simulate_concurrent(arch, kernels, num_streams);
  r.time_us = r.sim.makespan_us;
  return r;
}

BaselineResult run_samesize_batched_timed(const GpuArch& arch,
                                          std::span<const GemmDims> batch) {
  check_same_size(batch);
  // Identical sizes mean the vbatch grid has no bubbles; the kernel is the
  // same one MAGMA uses, with the uniform single-GEMM tile choice.
  const TilingStrategy& s = single_gemm_heuristic(batch.front(), arch);
  // cublasSgemmBatched-quality kernels are fully pipelined.
  const KernelWork work = work_vbatch(batch, s, /*double_buffered=*/true);
  BaselineResult r;
  r.sim = simulate_kernel(arch, work);
  r.time_us = r.sim.makespan_us + arch.kernel_launch_us;
  return r;
}

void run_samesize_batched_functional(const GpuArch& arch,
                                     std::span<const GemmOperands> batch,
                                     float alpha, float beta) {
  std::vector<GemmDims> dims;
  dims.reserve(batch.size());
  for (const auto& g : batch) dims.push_back(g.dims);
  check_same_size(dims);
  run_vbatch(single_gemm_heuristic(dims.front(), arch), batch, alpha, beta);
}

void run_strided_batched_functional(const GpuArch& arch, const float* a,
                                    const float* b, float* c,
                                    const GemmDims& dims,
                                    std::int64_t stride_a,
                                    std::int64_t stride_b,
                                    std::int64_t stride_c, int batch,
                                    float alpha, float beta) {
  CTB_CHECK(a != nullptr && b != nullptr && c != nullptr);
  CTB_CHECK(dims.valid() && batch >= 1);
  // A and B strides of 0 broadcast one operand across the batch (as the
  // cuBLAS API allows); C must not alias between GEMMs.
  CTB_CHECK_MSG(stride_a >= 0 && stride_b >= 0, "negative operand stride");
  CTB_CHECK_MSG(stride_c >= 1LL * dims.m * dims.n,
                "C stride must not alias consecutive GEMMs");
  std::vector<GemmOperands> ops(static_cast<std::size_t>(batch));
  for (int i = 0; i < batch; ++i) {
    GemmOperands& g = ops[static_cast<std::size_t>(i)];
    g.dims = dims;
    g.a = a + static_cast<std::size_t>(i) * stride_a;
    g.b = b + static_cast<std::size_t>(i) * stride_b;
    g.c = c + static_cast<std::size_t>(i) * stride_c;
  }
  run_vbatch(single_gemm_heuristic(dims, arch), ops, alpha, beta);
}

BaselineResult run_strided_batched_timed(const GpuArch& arch,
                                         const GemmDims& dims, int batch) {
  const std::vector<GemmDims> all(static_cast<std::size_t>(batch), dims);
  return run_samesize_batched_timed(arch, all);
}

BaselineResult run_magma_timed(const GpuArch& arch,
                               std::span<const GemmDims> batch) {
  CTB_CHECK(!batch.empty());
  const TilingStrategy& s = magma_uniform_strategy(batch);
  // MAGMA's gemm_template kernels register-prefetch across iterations, so
  // they are modeled as pipelined; beyond the uniform tiling, one tile per
  // block, bubbles, and idle threads, the generic template costs ~20% extra
  // main-loop issue slots versus a hand-tuned kernel.
  const KernelWork work = work_vbatch(batch, s, /*double_buffered=*/true,
                                      /*code_efficiency=*/0.8);
  BaselineResult r;
  r.sim = simulate_kernel(arch, work);
  r.time_us = r.sim.makespan_us + arch.kernel_launch_us;
  return r;
}

void run_magma_functional(const GpuArch& arch,
                          std::span<const GemmOperands> batch, float alpha,
                          float beta) {
  (void)arch;
  std::vector<GemmDims> dims;
  dims.reserve(batch.size());
  for (const auto& g : batch) dims.push_back(g.dims);
  run_vbatch(magma_uniform_strategy(dims), batch, alpha, beta);
}

}  // namespace ctb
