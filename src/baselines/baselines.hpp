// Baseline batched-GEMM executions the paper compares against (Sections 3
// and 7, artifact appendix): default per-kernel execution, concurrent kernel
// execution over streams, cuBLAS-style same-size batching, and MAGMA-style
// vbatch. Each baseline has a timed path (through the simulator) and a
// functional path (bit-exact results) driven by the same tiling decisions.
#pragma once

#include <span>

#include "core/tiling_strategy.hpp"
#include "gpusim/arch.hpp"
#include "gpusim/sm_engine.hpp"
#include "kernels/functional.hpp"
#include "linalg/gemm_ref.hpp"

namespace ctb {

struct BaselineResult {
  SimStats sim;
  double time_us = 0.0;  ///< includes host launch overheads.
};

/// Tile selection for a *standalone* GEMM (the library mindset cuBLAS/MAGMA
/// kernels embody): balance having enough tiles to occupy the GPU against
/// arithmetic intensity. Score = min(1, tiles / (2*SMs)) * AI; ties go to
/// the larger tile.
const TilingStrategy& single_gemm_heuristic(const GemmDims& dims,
                                            const GpuArch& arch);

/// Default execution: one kernel per GEMM, back to back in one stream.
BaselineResult run_default_timed(const GpuArch& arch,
                                 std::span<const GemmDims> batch);
void run_default_functional(const GpuArch& arch,
                            std::span<const GemmOperands> batch, float alpha,
                            float beta);

/// Concurrent kernel execution: the same per-GEMM kernels spread over
/// `num_streams` CUDA streams.
BaselineResult run_cke_timed(const GpuArch& arch,
                             std::span<const GemmDims> batch,
                             int num_streams);

/// cuBLAS-style batched GEMM (cublasSgemmBatched): a single kernel, but only
/// for batches where every GEMM has identical M, N, K. Throws CheckError on
/// mixed sizes — exactly the API restriction the paper calls out.
BaselineResult run_samesize_batched_timed(const GpuArch& arch,
                                          std::span<const GemmDims> batch);
void run_samesize_batched_functional(const GpuArch& arch,
                                     std::span<const GemmOperands> batch,
                                     float alpha, float beta);

/// cublasSgemmStridedBatched-style API: one base pointer per operand and a
/// fixed element stride between consecutive GEMMs (the common layout for
/// batched tensors). Same same-size restriction as the pointer-array API.
void run_strided_batched_functional(const GpuArch& arch, const float* a,
                                    const float* b, float* c,
                                    const GemmDims& dims,
                                    std::int64_t stride_a,
                                    std::int64_t stride_b,
                                    std::int64_t stride_c, int batch,
                                    float alpha, float beta);
BaselineResult run_strided_batched_timed(const GpuArch& arch,
                                         const GemmDims& dims, int batch);

/// MAGMA-style vbatch: one kernel, gridDim.z = batch, one uniform tiling
/// strategy, bubble blocks padding the grid to the largest GEMM.
BaselineResult run_magma_timed(const GpuArch& arch,
                               std::span<const GemmDims> batch);
void run_magma_functional(const GpuArch& arch,
                          std::span<const GemmOperands> batch, float alpha,
                          float beta);

}  // namespace ctb
