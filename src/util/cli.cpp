#include "util/cli.hpp"

#include <sstream>

#include "util/assert.hpp"

namespace ctb {

void CliFlags::define(const std::string& name,
                      const std::string& default_value,
                      const std::string& help) {
  CTB_CHECK_MSG(!flags_.count(name), "duplicate flag --" << name);
  flags_[name] = Flag{default_value, help};
}

std::vector<std::string> CliFlags::parse(int argc, const char* const* argv) {
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional.push_back(arg);
      continue;
    }
    std::string name = arg.substr(2);
    std::string value;
    bool has_value = false;
    if (auto eq = name.find('='); eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
      has_value = true;
    }
    auto it = flags_.find(name);
    CTB_CHECK_MSG(it != flags_.end(), "unknown flag --" << name);
    if (!has_value) {
      // Bare boolean flags may omit the value ("--verbose").
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        value = argv[++i];
      } else {
        value = "true";
      }
    }
    it->second.value = value;
  }
  return positional;
}

std::string CliFlags::get(const std::string& name) const {
  auto it = flags_.find(name);
  CTB_CHECK_MSG(it != flags_.end(), "undefined flag --" << name);
  return it->second.value;
}

std::int64_t CliFlags::get_int(const std::string& name) const {
  const std::string v = get(name);
  std::size_t pos = 0;
  const std::int64_t r = std::stoll(v, &pos);
  CTB_CHECK_MSG(pos == v.size(), "flag --" << name << " is not an int: " << v);
  return r;
}

double CliFlags::get_double(const std::string& name) const {
  const std::string v = get(name);
  std::size_t pos = 0;
  const double r = std::stod(v, &pos);
  CTB_CHECK_MSG(pos == v.size(),
                "flag --" << name << " is not a number: " << v);
  return r;
}

bool CliFlags::get_bool(const std::string& name) const {
  const std::string v = get(name);
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  CTB_CHECK_MSG(false, "flag --" << name << " is not a bool: " << v);
  return false;  // unreachable
}

std::string CliFlags::usage(const std::string& program) const {
  std::ostringstream os;
  os << "usage: " << program << " [flags]\n";
  for (const auto& [name, flag] : flags_) {
    os << "  --" << name << " (default: " << flag.value << ")  " << flag.help
       << '\n';
  }
  return os.str();
}

}  // namespace ctb
