// Small statistics helpers used by benchmark harnesses and the random-forest
// trainer: mean, geometric mean (the paper reports geomean speedups),
// standard deviation, and percentiles.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace ctb {

double mean(std::span<const double> xs);

/// Geometric mean; requires every element > 0.
double geomean(std::span<const double> xs);

/// Sample standard deviation (n-1 denominator); 0 for fewer than 2 samples.
double stddev(std::span<const double> xs);

double min_of(std::span<const double> xs);
double max_of(std::span<const double> xs);

/// Linear-interpolated percentile, p in [0, 100].
double percentile(std::span<const double> xs, double p);

/// Five-number-style summary of a sample, for printing in bench output.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double geomean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double p25 = 0.0;
  double median = 0.0;
  double p75 = 0.0;
  double max = 0.0;
};

Summary summarize(std::span<const double> xs);

/// "n=100 mean=1.40 geomean=1.38 min=0.98 p50=1.35 max=2.10" style line.
std::string to_string(const Summary& s);

}  // namespace ctb
