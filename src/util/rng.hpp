// Deterministic, seedable random number generation.
//
// All stochastic behaviour in the library (workload generation, random-forest
// bootstrap, matrix fills) flows through Rng so that every test and benchmark
// is reproducible from a single seed. The generator is xoshiro256**, seeded
// through splitmix64 as its authors recommend.
#pragma once

#include <cstdint>
#include <vector>

namespace ctb {

/// splitmix64 step; used for seeding and as a cheap stateless mixer.
std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// xoshiro256** generator with convenience sampling helpers.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) noexcept;

  /// Raw 64 random bits.
  std::uint64_t next() noexcept;

  // UniformRandomBitGenerator interface so Rng works with <random> and
  // std::shuffle.
  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }
  result_type operator()() noexcept { return next(); }

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;

  /// Uniform float in [lo, hi).
  float uniform_float(float lo, float hi) noexcept;

  /// True with probability p.
  bool bernoulli(double p) noexcept;

  /// Log-uniform integer in [lo, hi]: uniform over magnitudes, which matches
  /// how GEMM sizes are distributed in the paper's random sweeps.
  std::int64_t log_uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  /// Pick one index in [0, n) uniformly. Requires n > 0.
  std::size_t pick_index(std::size_t n) noexcept;

  /// A fresh generator whose seed is derived from this one; use to hand
  /// independent streams to sub-components.
  Rng split() noexcept;

  /// Fisher-Yates shuffle of a vector (deterministic given the Rng state).
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = pick_index(i);
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

 private:
  std::uint64_t s_[4];
};

}  // namespace ctb
