// Host parallel-for used by every layer (functional executors, dnn loops,
// bench sweeps). One idiom everywhere: OpenMP when the build enables it
// (CTB_ENABLE_OPENMP=ON and the toolchain provides it), a plain serial loop
// otherwise — callers never touch OpenMP pragmas directly.
//
// Contract:
//   - `parallel_for(n, f)` invokes f(i) exactly once for every i in [0, n).
//     Iterations may run concurrently and in any order, so f must only write
//     state disjoint per iteration (the executors satisfy this because a
//     validated plan covers each C tile exactly once).
//   - Exceptions thrown by f are captured and the first one is rethrown on
//     the calling thread after the loop drains, preserving the serial
//     failure contract (CTB_CHECK throws propagate out of parallel regions).
//   - `set_parallel_threads(1)` forces serial execution at runtime; tests
//     use it to compare parallel results bit-exactly against the serial
//     path. 0 restores the hardware default.
#pragma once

#include <exception>
#include <utility>

#ifdef CTB_HAVE_OPENMP
#include <omp.h>
#endif

// Under ThreadSanitizer the OpenMP backend would report false positives:
// libgomp is not TSan-instrumented, so the join barrier's happens-before
// edge is invisible and every post-region read of worker-written data looks
// racy. A std::thread fork-join backend keeps the same parallel semantics
// with TSan-visible synchronization (pthread create/join), so genuine races
// in user code — e.g. two blocks writing one C element — are still caught.
#if defined(__SANITIZE_THREAD__)
#define CTB_TSAN_BUILD 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define CTB_TSAN_BUILD 1
#endif
#endif

#ifdef CTB_TSAN_BUILD
#include <mutex>
#include <thread>
#include <vector>
#endif

namespace ctb {

/// Runtime worker-count override: n >= 1 forces exactly n workers for
/// subsequent parallel_for calls on this process, 0 restores the default
/// (OpenMP's max thread count, or 1 in serial builds).
void set_parallel_threads(int n);

/// The current override (0 if none is set).
int parallel_threads_override();

/// Effective worker count a parallel_for would use right now.
int parallel_max_threads();

/// RAII thread-count override, restoring the previous value on scope exit.
class ScopedParallelThreads {
 public:
  explicit ScopedParallelThreads(int n) : prev_(parallel_threads_override()) {
    set_parallel_threads(n);
  }
  ~ScopedParallelThreads() { set_parallel_threads(prev_); }
  ScopedParallelThreads(const ScopedParallelThreads&) = delete;
  ScopedParallelThreads& operator=(const ScopedParallelThreads&) = delete;

 private:
  int prev_;
};

template <typename F>
void parallel_for(long long n, F&& f) {
  if (n <= 0) return;
#if defined(CTB_TSAN_BUILD)
  const int max_threads = parallel_max_threads();
  const int workers = static_cast<int>(
      n < max_threads ? n : static_cast<long long>(max_threads));
  if (workers > 1) {
    std::exception_ptr error;
    std::mutex error_mu;
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(workers));
    for (int w = 0; w < workers; ++w) {
      pool.emplace_back([&, w] {
        // Static chunking, same as the OpenMP schedule.
        const long long begin = n * w / workers;
        const long long end = n * (w + 1) / workers;
        for (long long i = begin; i < end; ++i) {
          try {
            f(i);
          } catch (...) {
            const std::lock_guard<std::mutex> lock(error_mu);
            if (!error) error = std::current_exception();
          }
        }
      });
    }
    for (std::thread& t : pool) t.join();
    if (error) std::rethrow_exception(error);
    return;
  }
#elif defined(CTB_HAVE_OPENMP)
  const int max_threads = parallel_max_threads();
  const int workers = static_cast<int>(
      n < max_threads ? n : static_cast<long long>(max_threads));
  if (workers > 1) {
    std::exception_ptr error;
#pragma omp parallel for num_threads(workers) schedule(static)
    for (long long i = 0; i < n; ++i) {
      try {
        f(i);
      } catch (...) {
#pragma omp critical(ctb_parallel_for_error)
        if (!error) error = std::current_exception();
      }
    }
    if (error) std::rethrow_exception(error);
    return;
  }
#endif
  for (long long i = 0; i < n; ++i) f(i);
}

}  // namespace ctb
