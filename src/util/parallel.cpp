#include "util/parallel.hpp"

#include <atomic>

#include "util/assert.hpp"

namespace ctb {

namespace {
std::atomic<int> g_thread_override{0};
}  // namespace

void set_parallel_threads(int n) {
  CTB_CHECK_MSG(n >= 0, "thread override must be >= 0 (0 = default)");
  g_thread_override.store(n, std::memory_order_relaxed);
}

int parallel_threads_override() {
  return g_thread_override.load(std::memory_order_relaxed);
}

int parallel_max_threads() {
  const int override = parallel_threads_override();
  if (override > 0) return override;
#ifdef CTB_HAVE_OPENMP
  return omp_get_max_threads();
#else
  return 1;
#endif
}

}  // namespace ctb
