#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/assert.hpp"

namespace ctb {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double acc = 0.0;
  for (double x : xs) acc += x;
  return acc / static_cast<double>(xs.size());
}

double geomean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double acc = 0.0;
  for (double x : xs) {
    CTB_CHECK_MSG(x > 0.0, "geomean requires positive samples, got " << x);
    acc += std::log(x);
  }
  return std::exp(acc / static_cast<double>(xs.size()));
}

double stddev(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(xs.size() - 1));
}

double min_of(std::span<const double> xs) {
  CTB_CHECK(!xs.empty());
  return *std::min_element(xs.begin(), xs.end());
}

double max_of(std::span<const double> xs) {
  CTB_CHECK(!xs.empty());
  return *std::max_element(xs.begin(), xs.end());
}

double percentile(std::span<const double> xs, double p) {
  CTB_CHECK(!xs.empty());
  CTB_CHECK(p >= 0.0 && p <= 100.0);
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double pos = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

Summary summarize(std::span<const double> xs) {
  Summary s;
  s.count = xs.size();
  if (xs.empty()) return s;
  s.mean = mean(xs);
  s.geomean = geomean(xs);
  s.stddev = stddev(xs);
  s.min = min_of(xs);
  s.p25 = percentile(xs, 25.0);
  s.median = percentile(xs, 50.0);
  s.p75 = percentile(xs, 75.0);
  s.max = max_of(xs);
  return s;
}

std::string to_string(const Summary& s) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(3);
  os << "n=" << s.count << " mean=" << s.mean << " geomean=" << s.geomean
     << " sd=" << s.stddev << " min=" << s.min << " p25=" << s.p25
     << " p50=" << s.median << " p75=" << s.p75 << " max=" << s.max;
  return os.str();
}

}  // namespace ctb
