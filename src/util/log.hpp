// Leveled logging to stderr. Benches run quiet by default; set
// ctb::set_log_level(LogLevel::kDebug) or CTB_LOG_LEVEL=debug to trace the
// planner's decisions.
#pragma once

#include <sstream>
#include <string>

namespace ctb {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

void set_log_level(LogLevel level);
LogLevel log_level();

/// Reads CTB_LOG_LEVEL from the environment once ("debug"/"info"/...).
void init_log_level_from_env();

namespace detail {
void log_line(LogLevel level, const std::string& msg);
}  // namespace detail

}  // namespace ctb

#define CTB_LOG(level, msg)                                      \
  do {                                                           \
    if (static_cast<int>(level) >=                               \
        static_cast<int>(::ctb::log_level())) {                  \
      std::ostringstream ctb_log_os_;                            \
      ctb_log_os_ << msg;                                        \
      ::ctb::detail::log_line(level, ctb_log_os_.str());         \
    }                                                            \
  } while (0)

#define CTB_DEBUG(msg) CTB_LOG(::ctb::LogLevel::kDebug, msg)
#define CTB_INFO(msg) CTB_LOG(::ctb::LogLevel::kInfo, msg)
#define CTB_WARN(msg) CTB_LOG(::ctb::LogLevel::kWarn, msg)
#define CTB_ERROR(msg) CTB_LOG(::ctb::LogLevel::kError, msg)
