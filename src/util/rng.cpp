#include "util/rng.hpp"

#include <cmath>

#include "util/assert.hpp"

namespace ctb {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
  // xoshiro must not start from the all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  CTB_DCHECK(lo <= hi);
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next());  // full range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~0ULL - (~0ULL % span);
  std::uint64_t r;
  do {
    r = next();
  } while (r >= limit && limit != 0);
  return lo + static_cast<std::int64_t>(r % span);
}

double Rng::uniform() noexcept {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

float Rng::uniform_float(float lo, float hi) noexcept {
  return lo + static_cast<float>(uniform()) * (hi - lo);
}

bool Rng::bernoulli(double p) noexcept { return uniform() < p; }

std::int64_t Rng::log_uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  CTB_DCHECK(lo >= 1 && lo <= hi);
  const double llo = std::log(static_cast<double>(lo));
  const double lhi = std::log(static_cast<double>(hi) + 1.0);
  const double v = std::exp(llo + uniform() * (lhi - llo));
  auto r = static_cast<std::int64_t>(v);
  if (r < lo) r = lo;
  if (r > hi) r = hi;
  return r;
}

std::size_t Rng::pick_index(std::size_t n) noexcept {
  CTB_DCHECK(n > 0);
  return static_cast<std::size_t>(
      uniform_int(0, static_cast<std::int64_t>(n) - 1));
}

Rng Rng::split() noexcept { return Rng(next() ^ 0xD1B54A32D192ED03ULL); }

}  // namespace ctb
