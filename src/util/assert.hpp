// Lightweight runtime checking macros used across the library.
//
// CTB_CHECK(cond)        - always-on invariant check; throws ctb::CheckError.
// CTB_CHECK_MSG(cond, m) - same, with a caller-supplied message streamed in.
// CTB_DCHECK(cond)       - debug-only check, compiled out in NDEBUG builds.
//
// The library throws rather than aborts so tests can assert on failure paths
// (gtest EXPECT_THROW) and callers can recover from invalid plans.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace ctb {

/// Exception thrown by CTB_CHECK failures. Carries file/line context.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "CHECK failed: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}

}  // namespace detail
}  // namespace ctb

#define CTB_CHECK(cond)                                              \
  do {                                                               \
    if (!(cond))                                                     \
      ::ctb::detail::check_failed(#cond, __FILE__, __LINE__, "");    \
  } while (0)

#define CTB_CHECK_MSG(cond, msg)                                     \
  do {                                                               \
    if (!(cond)) {                                                   \
      std::ostringstream ctb_check_os_;                              \
      ctb_check_os_ << msg;                                          \
      ::ctb::detail::check_failed(#cond, __FILE__, __LINE__,         \
                                  ctb_check_os_.str());              \
    }                                                                \
  } while (0)

#ifdef NDEBUG
#define CTB_DCHECK(cond) \
  do {                   \
  } while (0)
#else
#define CTB_DCHECK(cond) CTB_CHECK(cond)
#endif
