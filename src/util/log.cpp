#include "util/log.hpp"

#include <atomic>
#include <cstdlib>
#include <iostream>

namespace ctb {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void init_log_level_from_env() {
  const char* env = std::getenv("CTB_LOG_LEVEL");
  if (env == nullptr) return;
  const std::string v = env;
  if (v == "debug") set_log_level(LogLevel::kDebug);
  else if (v == "info") set_log_level(LogLevel::kInfo);
  else if (v == "warn") set_log_level(LogLevel::kWarn);
  else if (v == "error") set_log_level(LogLevel::kError);
  else if (v == "off") set_log_level(LogLevel::kOff);
}

namespace detail {
void log_line(LogLevel level, const std::string& msg) {
  std::cerr << "[ctb " << level_name(level) << "] " << msg << '\n';
}
}  // namespace detail

}  // namespace ctb
