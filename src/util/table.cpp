#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace ctb {

void TextTable::set_header(std::vector<std::string> header) {
  header_ = std::move(header);
}

void TextTable::add_row(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

std::string TextTable::fmt(double v, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os << std::setprecision(precision) << v;
  return os.str();
}

std::string TextTable::fmt(long long v) { return std::to_string(v); }
std::string TextTable::fmt(int v) { return std::to_string(v); }

void TextTable::print(std::ostream& os, int indent) const {
  // Compute column widths over the header and all rows.
  std::size_t ncols = header_.size();
  for (const auto& r : rows_) ncols = std::max(ncols, r.size());
  std::vector<std::size_t> width(ncols, 0);
  auto account = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c)
      width[c] = std::max(width[c], cells[c].size());
  };
  account(header_);
  for (const auto& r : rows_) account(r);

  const std::string pad(static_cast<std::size_t>(indent), ' ');
  auto emit = [&](const std::vector<std::string>& cells) {
    os << pad;
    for (std::size_t c = 0; c < ncols; ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string();
      os << std::left << std::setw(static_cast<int>(width[c]) + 2) << cell;
    }
    os << '\n';
  };
  if (!header_.empty()) {
    emit(header_);
    std::size_t total = 0;
    for (std::size_t w : width) total += w + 2;
    os << pad << std::string(total, '-') << '\n';
  }
  for (const auto& r : rows_) emit(r);
}

std::string TextTable::to_string(int indent) const {
  std::ostringstream os;
  print(os, indent);
  return os.str();
}

std::string ascii_bar(double value, int baseline_chars, int max_chars) {
  int n = static_cast<int>(value * baseline_chars + 0.5);
  if (n < 0) n = 0;
  if (n > max_chars) n = max_chars;
  std::string bar(static_cast<std::size_t>(n), '#');
  if (static_cast<int>(value * baseline_chars + 0.5) > max_chars) bar += '+';
  return bar;
}

void TextTable::clear() {
  header_.clear();
  rows_.clear();
}

}  // namespace ctb
