// Minimal command-line flag parser for example binaries and bench harnesses.
// Supports "--name value" and "--name=value"; unknown flags are an error so
// typos surface immediately.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace ctb {

class CliFlags {
 public:
  /// Registers a flag with a default value and help text. Must be called
  /// before parse().
  void define(const std::string& name, const std::string& default_value,
              const std::string& help);

  /// Parses argv. Throws CheckError on unknown flags or missing values.
  /// Returns positional (non-flag) arguments in order.
  std::vector<std::string> parse(int argc, const char* const* argv);

  std::string get(const std::string& name) const;
  std::int64_t get_int(const std::string& name) const;
  double get_double(const std::string& name) const;
  bool get_bool(const std::string& name) const;

  /// One-line-per-flag usage text.
  std::string usage(const std::string& program) const;

 private:
  struct Flag {
    std::string value;
    std::string help;
  };
  std::map<std::string, Flag> flags_;
};

}  // namespace ctb
