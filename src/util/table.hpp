// Fixed-width ASCII table printer for benchmark harness output. Benches
// reproduce the paper's tables/figures as text tables, so readable aligned
// output matters.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace ctb {

/// Column-aligned text table. Add a header once, then rows; width of each
/// column is computed from content when printed.
class TextTable {
 public:
  /// Sets the header row. Clears nothing else; call before print().
  void set_header(std::vector<std::string> header);

  /// Appends a data row; rows may have fewer cells than the header.
  void add_row(std::vector<std::string> row);

  /// Convenience: formats doubles with `precision` digits after the point.
  static std::string fmt(double v, int precision = 3);
  static std::string fmt(long long v);
  static std::string fmt(int v);

  /// Renders the table. `indent` spaces prefix every line.
  void print(std::ostream& os, int indent = 0) const;

  /// Renders to a string (used by tests).
  std::string to_string(int indent = 0) const;

  std::size_t row_count() const { return rows_.size(); }
  void clear();

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Fixed-width ASCII bar for histogram-style bench output: value 1.0 maps
/// to `baseline_chars` characters; capped at `max_chars`.
std::string ascii_bar(double value, int baseline_chars = 10,
                      int max_chars = 40);

}  // namespace ctb
