// IEEE 754 binary16 ("half") implemented from scratch on uint16 storage.
//
// The paper's evaluation is FP32, but its introduction motivates Volta's
// FP16/Tensor-Core GEMM path; the library supports FP16 batched GEMM with
// tensor-core-style semantics (FP16 operands, FP32 accumulation). This
// header provides the storage type and the float conversions the functional
// executor uses to emulate that numerically.
//
// Conversions implement round-to-nearest-even, gradual underflow to
// subnormals, and Inf/NaN propagation.
#pragma once

#include <cstdint>
#include <cstring>

namespace ctb {

/// Converts a float to binary16 bits (round to nearest even).
std::uint16_t float_to_half_bits(float value) noexcept;

/// Converts binary16 bits to float (exact).
float half_bits_to_float(std::uint16_t bits) noexcept;

/// Minimal half-precision value type. Arithmetic happens in float; this
/// type only stores and converts (exactly how GPU FP16 storage behaves
/// around an FP32 accumulator).
class half_t {
 public:
  half_t() = default;
  explicit half_t(float value) noexcept
      : bits_(float_to_half_bits(value)) {}

  static half_t from_bits(std::uint16_t bits) noexcept {
    half_t h;
    h.bits_ = bits;
    return h;
  }

  float to_float() const noexcept { return half_bits_to_float(bits_); }
  explicit operator float() const noexcept { return to_float(); }
  std::uint16_t bits() const noexcept { return bits_; }

  bool operator==(const half_t& other) const = default;

 private:
  std::uint16_t bits_ = 0;
};

/// Rounds a float through fp16 storage precision and back — the value a
/// tensor-core input register would hold.
inline float round_to_half(float value) noexcept {
  return half_bits_to_float(float_to_half_bits(value));
}

}  // namespace ctb
