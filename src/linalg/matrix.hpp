// Host-side dense matrix type used as the source/target of simulated device
// transfers and as the reference for correctness checks.
//
// Storage is row-major with an explicit leading dimension so sub-views map
// directly onto the pointer arithmetic the simulated kernels perform.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace ctb {

/// Non-owning view of a row-major matrix block. Mirrors (ptr, ld) device
/// addressing: element (i, j) lives at data[i * ld + j].
template <typename T>
class MatrixView {
 public:
  MatrixView() = default;
  MatrixView(T* data, std::size_t rows, std::size_t cols, std::size_t ld)
      : data_(data), rows_(rows), cols_(cols), ld_(ld) {
    CTB_DCHECK(ld >= cols);
  }

  T* data() const noexcept { return data_; }
  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }
  std::size_t ld() const noexcept { return ld_; }
  bool empty() const noexcept { return rows_ == 0 || cols_ == 0; }

  T& operator()(std::size_t i, std::size_t j) const {
    CTB_DCHECK(i < rows_ && j < cols_);
    return data_[i * ld_ + j];
  }

  /// Sub-block view; clamps are the caller's job, out-of-range asserts.
  MatrixView block(std::size_t i0, std::size_t j0, std::size_t r,
                   std::size_t c) const {
    CTB_DCHECK(i0 + r <= rows_ && j0 + c <= cols_);
    return MatrixView(data_ + i0 * ld_ + j0, r, c, ld_);
  }

 private:
  T* data_ = nullptr;
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::size_t ld_ = 0;
};

/// Owning row-major matrix.
template <typename T>
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, T init = T{})
      : rows_(rows), cols_(cols), data_(rows * cols, init) {}

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }
  std::size_t size() const noexcept { return data_.size(); }

  T* data() noexcept { return data_.data(); }
  const T* data() const noexcept { return data_.data(); }
  std::span<T> flat() noexcept { return data_; }
  std::span<const T> flat() const noexcept { return data_; }

  T& operator()(std::size_t i, std::size_t j) {
    CTB_DCHECK(i < rows_ && j < cols_);
    return data_[i * cols_ + j];
  }
  const T& operator()(std::size_t i, std::size_t j) const {
    CTB_DCHECK(i < rows_ && j < cols_);
    return data_[i * cols_ + j];
  }

  MatrixView<T> view() noexcept {
    return MatrixView<T>(data_.data(), rows_, cols_, cols_);
  }
  MatrixView<const T> view() const noexcept {
    return MatrixView<const T>(data_.data(), rows_, cols_, cols_);
  }

  void fill(T value) { std::fill(data_.begin(), data_.end(), value); }

  bool operator==(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_ &&
           data_ == other.data_;
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<T> data_;
};

using Matrixf = Matrix<float>;

/// Fills with uniform values in [lo, hi) from the given deterministic RNG.
void fill_random(Matrixf& m, Rng& rng, float lo = -1.0f, float hi = 1.0f);

/// Fills element (i, j) with a value derived from its coordinates; handy in
/// tests because wrong indexing produces loud mismatches.
void fill_pattern(Matrixf& m);

/// max_ij |a - b|; matrices must have identical shape.
float max_abs_diff(const Matrixf& a, const Matrixf& b);

/// True when every |a-b| <= atol + rtol * |b| (numpy-style allclose).
bool allclose(const Matrixf& a, const Matrixf& b, float rtol = 1e-4f,
              float atol = 1e-5f);

}  // namespace ctb
