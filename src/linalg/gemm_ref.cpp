#include "linalg/gemm_ref.hpp"

#include "linalg/half.hpp"
#include "util/parallel.hpp"

#include <algorithm>

namespace ctb {

namespace {

// Block sizes tuned for typical L1/L2 on x86; correctness does not depend on
// them.
constexpr std::size_t kBlockM = 64;
constexpr std::size_t kBlockN = 64;
constexpr std::size_t kBlockK = 64;

void check_shapes(const MatrixView<const float>& a,
                  const MatrixView<const float>& b,
                  const MatrixView<float>& c) {
  CTB_CHECK_MSG(a.cols() == b.rows(),
                "GEMM inner dims mismatch: A is " << a.rows() << "x"
                                                  << a.cols() << ", B is "
                                                  << b.rows() << "x"
                                                  << b.cols());
  CTB_CHECK_MSG(c.rows() == a.rows() && c.cols() == b.cols(),
                "GEMM output shape mismatch");
}

void scale_c(MatrixView<float> c, float beta) {
  for (std::size_t i = 0; i < c.rows(); ++i)
    for (std::size_t j = 0; j < c.cols(); ++j)
      c(i, j) = beta == 0.0f ? 0.0f : c(i, j) * beta;
}

// Accumulates alpha * A_blk * B_blk into C for one (i, j, k) block triple.
void block_kernel(const MatrixView<const float>& a,
                  const MatrixView<const float>& b, MatrixView<float> c,
                  float alpha, std::size_t i0, std::size_t j0, std::size_t k0,
                  std::size_t mi, std::size_t nj, std::size_t kk) {
  for (std::size_t i = i0; i < i0 + mi; ++i) {
    for (std::size_t k = k0; k < k0 + kk; ++k) {
      const float av = alpha * a(i, k);
      for (std::size_t j = j0; j < j0 + nj; ++j) c(i, j) += av * b(k, j);
    }
  }
}

}  // namespace

void gemm_naive(const MatrixView<const float>& a,
                const MatrixView<const float>& b, MatrixView<float> c,
                float alpha, float beta) {
  check_shapes(a, b, c);
  for (std::size_t i = 0; i < c.rows(); ++i) {
    for (std::size_t j = 0; j < c.cols(); ++j) {
      float acc = 0.0f;
      for (std::size_t k = 0; k < a.cols(); ++k) acc += a(i, k) * b(k, j);
      const float prior = beta == 0.0f ? 0.0f : beta * c(i, j);
      c(i, j) = alpha * acc + prior;
    }
  }
}

void gemm_blocked(const MatrixView<const float>& a,
                  const MatrixView<const float>& b, MatrixView<float> c,
                  float alpha, float beta) {
  check_shapes(a, b, c);
  scale_c(c, beta);
  const std::size_t m = c.rows(), n = c.cols(), k = a.cols();
  for (std::size_t i0 = 0; i0 < m; i0 += kBlockM) {
    const std::size_t mi = std::min(kBlockM, m - i0);
    for (std::size_t k0 = 0; k0 < k; k0 += kBlockK) {
      const std::size_t kk = std::min(kBlockK, k - k0);
      for (std::size_t j0 = 0; j0 < n; j0 += kBlockN) {
        const std::size_t nj = std::min(kBlockN, n - j0);
        block_kernel(a, b, c, alpha, i0, j0, k0, mi, nj, kk);
      }
    }
  }
}

void gemm_parallel(const MatrixView<const float>& a,
                   const MatrixView<const float>& b, MatrixView<float> c,
                   float alpha, float beta) {
  check_shapes(a, b, c);
  scale_c(c, beta);
  const std::size_t m = c.rows(), n = c.cols(), k = a.cols();
  const auto row_blocks =
      static_cast<long long>((m + kBlockM - 1) / kBlockM);
  // Row blocks own disjoint C rows, so they fan out over the shared
  // parallel_for wrapper (which also honors the runtime thread override).
  parallel_for(row_blocks, [&](long long bi) {
    const std::size_t i0 = static_cast<std::size_t>(bi) * kBlockM;
    const std::size_t mi = std::min(kBlockM, m - i0);
    for (std::size_t k0 = 0; k0 < k; k0 += kBlockK) {
      const std::size_t kk = std::min(kBlockK, k - k0);
      for (std::size_t j0 = 0; j0 < n; j0 += kBlockN) {
        const std::size_t nj = std::min(kBlockN, n - j0);
        block_kernel(a, b, c, alpha, i0, j0, k0, mi, nj, kk);
      }
    }
  });
}

const char* to_string(Op op) { return op == Op::kN ? "N" : "T"; }

const char* to_string(Precision p) {
  return p == Precision::kFp32 ? "fp32" : "fp16";
}

void gemm_naive_fp16(const Matrixf& a, const Matrixf& b, Matrixf& c,
                     float alpha, float beta) {
  CTB_CHECK_MSG(a.cols() == b.rows() && c.rows() == a.rows() &&
                    c.cols() == b.cols(),
                "GEMM shape mismatch");
  for (std::size_t i = 0; i < c.rows(); ++i) {
    for (std::size_t j = 0; j < c.cols(); ++j) {
      float acc = 0.0f;  // FP32 accumulator (tensor-core style)
      for (std::size_t k = 0; k < a.cols(); ++k)
        acc += round_to_half(a(i, k)) * round_to_half(b(k, j));
      const float prior =
          beta == 0.0f ? 0.0f : beta * round_to_half(c(i, j));
      c(i, j) = round_to_half(alpha * acc + prior);
    }
  }
}

GemmDims gemm_dims_for(Op op_a, Op op_b, const Matrixf& a, const Matrixf& b) {
  GemmDims d;
  d.m = static_cast<int>(op_a == Op::kN ? a.rows() : a.cols());
  d.k = static_cast<int>(op_a == Op::kN ? a.cols() : a.rows());
  const int kb = static_cast<int>(op_b == Op::kN ? b.rows() : b.cols());
  d.n = static_cast<int>(op_b == Op::kN ? b.cols() : b.rows());
  CTB_CHECK_MSG(d.k == kb, "GEMM inner dims mismatch under ops "
                               << to_string(op_a) << to_string(op_b));
  return d;
}

void gemm_naive_ops(Op op_a, Op op_b, const Matrixf& a, const Matrixf& b,
                    Matrixf& c, float alpha, float beta) {
  const GemmDims d = gemm_dims_for(op_a, op_b, a, b);
  CTB_CHECK_MSG(static_cast<int>(c.rows()) == d.m &&
                    static_cast<int>(c.cols()) == d.n,
                "GEMM output shape mismatch");
  auto at_a = [&](int i, int k) {
    return op_a == Op::kN ? a(static_cast<std::size_t>(i),
                              static_cast<std::size_t>(k))
                          : a(static_cast<std::size_t>(k),
                              static_cast<std::size_t>(i));
  };
  auto at_b = [&](int k, int j) {
    return op_b == Op::kN ? b(static_cast<std::size_t>(k),
                              static_cast<std::size_t>(j))
                          : b(static_cast<std::size_t>(j),
                              static_cast<std::size_t>(k));
  };
  for (int i = 0; i < d.m; ++i) {
    for (int j = 0; j < d.n; ++j) {
      float acc = 0.0f;
      for (int k = 0; k < d.k; ++k) acc += at_a(i, k) * at_b(k, j);
      float& cell = c(static_cast<std::size_t>(i),
                      static_cast<std::size_t>(j));
      const float prior = beta == 0.0f ? 0.0f : beta * cell;
      cell = alpha * acc + prior;
    }
  }
}

namespace {
template <typename Fn>
void dispatch(Fn fn, const Matrixf& a, const Matrixf& b, Matrixf& c,
              float alpha, float beta) {
  fn(a.view(), b.view(), c.view(), alpha, beta);
}
}  // namespace

void gemm_naive(const Matrixf& a, const Matrixf& b, Matrixf& c, float alpha,
                float beta) {
  dispatch([](auto&&... xs) { gemm_naive(xs...); }, a, b, c, alpha, beta);
}
void gemm_blocked(const Matrixf& a, const Matrixf& b, Matrixf& c, float alpha,
                  float beta) {
  dispatch([](auto&&... xs) { gemm_blocked(xs...); }, a, b, c, alpha, beta);
}
void gemm_parallel(const Matrixf& a, const Matrixf& b, Matrixf& c,
                   float alpha, float beta) {
  dispatch([](auto&&... xs) { gemm_parallel(xs...); }, a, b, c, alpha, beta);
}

}  // namespace ctb
