#include "linalg/matrix.hpp"

#include <cmath>

namespace ctb {

void fill_random(Matrixf& m, Rng& rng, float lo, float hi) {
  for (float& x : m.flat()) x = rng.uniform_float(lo, hi);
}

void fill_pattern(Matrixf& m) {
  for (std::size_t i = 0; i < m.rows(); ++i)
    for (std::size_t j = 0; j < m.cols(); ++j)
      m(i, j) = 0.001f * static_cast<float>(i) +
                0.0001f * static_cast<float>(j) + 1.0f;
}

float max_abs_diff(const Matrixf& a, const Matrixf& b) {
  CTB_CHECK(a.rows() == b.rows() && a.cols() == b.cols());
  float worst = 0.0f;
  const auto fa = a.flat();
  const auto fb = b.flat();
  for (std::size_t i = 0; i < fa.size(); ++i)
    worst = std::max(worst, std::fabs(fa[i] - fb[i]));
  return worst;
}

bool allclose(const Matrixf& a, const Matrixf& b, float rtol, float atol) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  const auto fa = a.flat();
  const auto fb = b.flat();
  for (std::size_t i = 0; i < fa.size(); ++i) {
    if (std::fabs(fa[i] - fb[i]) > atol + rtol * std::fabs(fb[i]))
      return false;
  }
  return true;
}

}  // namespace ctb
