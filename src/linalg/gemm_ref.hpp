// Reference host GEMM implementations: C = alpha * A * B + beta * C.
//
// These are the correctness oracle for the simulated device kernels and the
// building block of the DNN substrate's shape checks. Three variants:
// a transparent naive triple loop, a cache-blocked version, and an
// OpenMP-parallel blocked version for large test cases.
#pragma once

#include "linalg/matrix.hpp"

namespace ctb {

/// GEMM problem dimensions; A is MxK, B is KxN, C is MxN (all row-major).
struct GemmDims {
  int m = 0;
  int n = 0;
  int k = 0;

  long long flops() const { return 2LL * m * n * k; }
  bool valid() const { return m > 0 && n > 0 && k > 0; }
  bool operator==(const GemmDims&) const = default;
};

/// Transpose mode of an operand: with kT the logical M x K (or K x N)
/// operand is stored transposed, BLAS-style.
enum class Op { kN, kT };

const char* to_string(Op op);

/// Numeric precision of a GEMM execution. kFp16 uses tensor-core semantics:
/// FP16 operands (values rounded through binary16), FP32 accumulation,
/// FP16-rounded output.
enum class Precision { kFp32, kFp16 };

const char* to_string(Precision p);

/// Naive triple loop; the oracle of last resort.
void gemm_naive(const MatrixView<const float>& a,
                const MatrixView<const float>& b, MatrixView<float> c,
                float alpha, float beta);

/// Cache-blocked single-thread GEMM.
void gemm_blocked(const MatrixView<const float>& a,
                  const MatrixView<const float>& b, MatrixView<float> c,
                  float alpha, float beta);

/// OpenMP-parallel blocked GEMM (falls back to blocked without OpenMP).
void gemm_parallel(const MatrixView<const float>& a,
                   const MatrixView<const float>& b, MatrixView<float> c,
                   float alpha, float beta);

/// Reference GEMM with tensor-core FP16 semantics: A and B values rounded
/// to binary16, accumulation in FP32, each C result rounded to binary16.
void gemm_naive_fp16(const Matrixf& a, const Matrixf& b, Matrixf& c,
                     float alpha, float beta);

/// Reference GEMM with transpose modes: C = alpha * op(A) * op(B) + beta*C
/// where op(A) is M x K. With Op::kT the stored matrix holds the transpose
/// (A storage is K x M / B storage is N x K).
void gemm_naive_ops(Op op_a, Op op_b, const Matrixf& a, const Matrixf& b,
                    Matrixf& c, float alpha, float beta);

/// Logical GEMM dims implied by stored operand shapes and ops; validates
/// the inner dimensions agree.
GemmDims gemm_dims_for(Op op_a, Op op_b, const Matrixf& a, const Matrixf& b);

/// Convenience overloads on owning matrices with shape validation.
void gemm_naive(const Matrixf& a, const Matrixf& b, Matrixf& c, float alpha,
                float beta);
void gemm_blocked(const Matrixf& a, const Matrixf& b, Matrixf& c, float alpha,
                  float beta);
void gemm_parallel(const Matrixf& a, const Matrixf& b, Matrixf& c,
                   float alpha, float beta);

}  // namespace ctb
