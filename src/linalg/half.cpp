#include "linalg/half.hpp"

namespace ctb {

std::uint16_t float_to_half_bits(float value) noexcept {
  std::uint32_t f;
  std::memcpy(&f, &value, sizeof(f));

  const std::uint32_t sign = (f >> 16) & 0x8000u;
  const std::uint32_t exp = (f >> 23) & 0xFFu;
  std::uint32_t mant = f & 0x7FFFFFu;

  if (exp == 0xFF) {  // Inf or NaN
    // Preserve NaN-ness (set a mantissa bit so NaN does not become Inf).
    const std::uint32_t nan_bit = mant != 0 ? 0x200u : 0u;
    return static_cast<std::uint16_t>(sign | 0x7C00u | nan_bit |
                                      (mant >> 13));
  }

  // Unbiased exponent; half bias is 15, float bias is 127.
  const int e = static_cast<int>(exp) - 127 + 15;

  if (e >= 0x1F) {  // overflow -> Inf
    return static_cast<std::uint16_t>(sign | 0x7C00u);
  }

  if (e <= 0) {
    // Subnormal half (or zero). The implicit leading 1 becomes explicit.
    if (e < -10) return static_cast<std::uint16_t>(sign);  // too small: 0
    mant |= 0x800000u;  // implicit bit
    const int shift = 14 - e;  // 14..24
    const std::uint32_t sub = mant >> shift;
    // Round to nearest even on the dropped bits.
    const std::uint32_t rem = mant & ((1u << shift) - 1);
    const std::uint32_t halfway = 1u << (shift - 1);
    std::uint32_t rounded = sub;
    if (rem > halfway || (rem == halfway && (sub & 1u))) ++rounded;
    return static_cast<std::uint16_t>(sign | rounded);
  }

  // Normal half: keep 10 mantissa bits, round to nearest even on the 13
  // dropped bits.
  std::uint32_t h = sign | (static_cast<std::uint32_t>(e) << 10) |
                    (mant >> 13);
  const std::uint32_t rem = mant & 0x1FFFu;
  if (rem > 0x1000u || (rem == 0x1000u && (h & 1u))) ++h;  // may carry: OK
  return static_cast<std::uint16_t>(h);
}

float half_bits_to_float(std::uint16_t bits) noexcept {
  const std::uint32_t sign = (static_cast<std::uint32_t>(bits) & 0x8000u)
                             << 16;
  const std::uint32_t exp = (bits >> 10) & 0x1Fu;
  const std::uint32_t mant = bits & 0x3FFu;

  std::uint32_t f;
  if (exp == 0) {
    if (mant == 0) {
      f = sign;  // signed zero
    } else {
      // Subnormal: normalize.
      int e = -1;
      std::uint32_t m = mant;
      do {
        ++e;
        m <<= 1;
      } while ((m & 0x400u) == 0);
      f = sign | (static_cast<std::uint32_t>(127 - 15 - e) << 23) |
          ((m & 0x3FFu) << 13);
    }
  } else if (exp == 0x1F) {
    f = sign | 0x7F800000u | (mant << 13);  // Inf / NaN
  } else {
    f = sign | ((exp - 15 + 127) << 23) | (mant << 13);
  }
  float out;
  std::memcpy(&out, &f, sizeof(out));
  return out;
}

}  // namespace ctb
