#include "rf/random_forest.hpp"

#include <algorithm>
#include <istream>
#include <ostream>

#include "util/assert.hpp"

namespace ctb {

void RandomForest::train(const Dataset& data, const ForestParams& params,
                         Rng& rng) {
  CTB_CHECK_MSG(!data.samples.empty(), "empty training set");
  CTB_CHECK(params.num_trees >= 1);
  CTB_CHECK(params.bootstrap_fraction > 0.0 &&
            params.bootstrap_fraction <= 1.0);
  trees_.assign(static_cast<std::size_t>(params.num_trees), DecisionTree{});
  num_classes_ = data.num_classes;

  const std::size_t bag_size = std::max<std::size_t>(
      1, static_cast<std::size_t>(params.bootstrap_fraction *
                                  static_cast<double>(data.samples.size())));
  // Out-of-bag vote tally: votes[sample][class].
  std::vector<std::vector<double>> oob_votes(
      data.samples.size(),
      std::vector<double>(static_cast<std::size_t>(num_classes_), 0.0));
  std::vector<bool> in_bag(data.samples.size());
  for (auto& tree : trees_) {
    std::fill(in_bag.begin(), in_bag.end(), false);
    std::vector<std::size_t> bag(bag_size);
    for (auto& idx : bag) {
      idx = rng.pick_index(data.samples.size());
      in_bag[idx] = true;
    }
    tree.train(data, bag, params.tree, rng);
    for (std::size_t s = 0; s < data.samples.size(); ++s) {
      if (in_bag[s]) continue;
      const auto p = tree.predict_proba(data.samples[s].features);
      for (std::size_t c = 0; c < p.size(); ++c) oob_votes[s][c] += p[c];
    }
  }
  std::size_t scored = 0, correct = 0;
  for (std::size_t s = 0; s < data.samples.size(); ++s) {
    double total = 0.0;
    for (double v : oob_votes[s]) total += v;
    if (total == 0.0) continue;  // sample was in every bag
    ++scored;
    const int pred = static_cast<int>(
        std::max_element(oob_votes[s].begin(), oob_votes[s].end()) -
        oob_votes[s].begin());
    correct += pred == data.samples[s].label ? 1 : 0;
  }
  oob_accuracy_ = scored > 0
                      ? static_cast<double>(correct) /
                            static_cast<double>(scored)
                      : -1.0;
}

std::vector<double> RandomForest::feature_importance() const {
  CTB_CHECK_MSG(trained(), "forest not trained");
  std::vector<double> acc;
  for (const auto& tree : trees_) {
    const auto& imp = tree.feature_importance();
    if (acc.empty()) acc.assign(imp.size(), 0.0);
    for (std::size_t f = 0; f < imp.size(); ++f) acc[f] += imp[f];
  }
  double total = 0.0;
  for (double v : acc) total += v;
  if (total > 0.0)
    for (double& v : acc) v /= total;
  return acc;
}

std::vector<double> RandomForest::predict_proba(
    std::span<const double> features) const {
  CTB_CHECK_MSG(trained(), "forest not trained");
  std::vector<double> acc(static_cast<std::size_t>(num_classes_), 0.0);
  for (const auto& tree : trees_) {
    const auto p = tree.predict_proba(features);
    for (std::size_t c = 0; c < acc.size(); ++c) acc[c] += p[c];
  }
  for (double& p : acc) p /= static_cast<double>(trees_.size());
  return acc;
}

int RandomForest::predict(std::span<const double> features) const {
  const auto probs = predict_proba(features);
  return static_cast<int>(std::max_element(probs.begin(), probs.end()) -
                          probs.begin());
}

double RandomForest::accuracy(const Dataset& data) const {
  CTB_CHECK(!data.samples.empty());
  std::size_t correct = 0;
  for (const auto& s : data.samples)
    if (predict(s.features) == s.label) ++correct;
  return static_cast<double>(correct) /
         static_cast<double>(data.samples.size());
}

void RandomForest::save(std::ostream& os) const {
  os << trees_.size() << ' ' << num_classes_ << '\n';
  for (const auto& tree : trees_) tree.save(os);
}

void RandomForest::load(std::istream& is) {
  // Caps keep an adversarial header from driving a huge allocation.
  constexpr long long kMaxTrees = 1LL << 20;
  constexpr long long kMaxClasses = 1LL << 16;
  long long count = 0;
  long long classes = 0;
  is >> count >> classes;
  CTB_CHECK_MSG(!is.fail(), "corrupt forest stream: bad header");
  CTB_CHECK_MSG(count > 0 && count <= kMaxTrees,
                "corrupt forest stream: bad tree count " << count);
  CTB_CHECK_MSG(classes >= 2 && classes <= kMaxClasses,
                "corrupt forest stream: bad class count " << classes);
  num_classes_ = static_cast<int>(classes);
  trees_.assign(static_cast<std::size_t>(count), DecisionTree{});
  for (auto& tree : trees_) tree.load(is, num_classes_);
}

}  // namespace ctb
