// CART decision tree for classification, built from scratch (the paper's
// online batching policy is a random forest; no ML library is assumed).
// Trees split on gini impurity, support feature subsampling per node for
// forest de-correlation, and store class probability vectors at leaves.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <vector>

#include "util/rng.hpp"

namespace ctb {

/// A labelled training sample.
struct Sample {
  std::vector<double> features;
  int label = 0;
};

/// Training set. All samples must share feature count; labels must be in
/// [0, num_classes).
struct Dataset {
  std::vector<Sample> samples;
  int num_features = 0;
  int num_classes = 0;

  void add(std::vector<double> features, int label);
};

struct TreeParams {
  int max_depth = 8;
  int min_samples_leaf = 2;
  /// Features considered per split; 0 means ceil(sqrt(num_features)).
  int features_per_split = 0;
};

class DecisionTree {
 public:
  /// Fits the tree on the subset of `data` given by `indices`.
  void train(const Dataset& data, std::span<const std::size_t> indices,
             const TreeParams& params, Rng& rng);

  /// Class probability vector for a feature vector.
  std::vector<double> predict_proba(std::span<const double> features) const;

  /// argmax of predict_proba.
  int predict(std::span<const double> features) const;

  int node_count() const { return static_cast<int>(nodes_.size()); }
  int depth() const;
  bool trained() const { return !nodes_.empty(); }

  /// Per-feature total gini decrease accumulated during training (mean
  /// decrease in impurity, unnormalized). Empty before training.
  const std::vector<double>& feature_importance() const {
    return importance_;
  }

  /// Text serialization: one node per line.
  void save(std::ostream& os) const;
  void load(std::istream& is, int num_classes);

 private:
  struct Node {
    int feature = -1;       ///< -1 for leaves.
    double threshold = 0.0; ///< go left when x[feature] <= threshold.
    int left = -1;
    int right = -1;
    std::vector<double> probs;  ///< class distribution (leaves only).
  };

  int build(const Dataset& data, std::vector<std::size_t>& indices,
            std::size_t begin, std::size_t end, int depth,
            const TreeParams& params, Rng& rng);
  int depth_below(int node) const;

  std::vector<Node> nodes_;
  std::vector<double> importance_;
  int num_classes_ = 0;
};

}  // namespace ctb
