#include "rf/decision_tree.hpp"

#include <algorithm>
#include <cmath>
#include <istream>
#include <ostream>

#include "util/assert.hpp"

namespace ctb {

void Dataset::add(std::vector<double> features, int label) {
  if (samples.empty() && num_features == 0)
    num_features = static_cast<int>(features.size());
  CTB_CHECK_MSG(static_cast<int>(features.size()) == num_features,
                "feature count mismatch");
  CTB_CHECK_MSG(label >= 0, "labels must be non-negative");
  num_classes = std::max(num_classes, label + 1);
  samples.push_back(Sample{std::move(features), label});
}

namespace {

double gini(std::span<const std::size_t> counts, std::size_t total) {
  if (total == 0) return 0.0;
  double g = 1.0;
  for (std::size_t c : counts) {
    const double p = static_cast<double>(c) / static_cast<double>(total);
    g -= p * p;
  }
  return g;
}

}  // namespace

void DecisionTree::train(const Dataset& data,
                         std::span<const std::size_t> indices,
                         const TreeParams& params, Rng& rng) {
  CTB_CHECK(!indices.empty());
  CTB_CHECK(data.num_classes >= 2);
  nodes_.clear();
  num_classes_ = data.num_classes;
  importance_.assign(static_cast<std::size_t>(data.num_features), 0.0);
  std::vector<std::size_t> work(indices.begin(), indices.end());
  build(data, work, 0, work.size(), 0, params, rng);
}

int DecisionTree::build(const Dataset& data,
                        std::vector<std::size_t>& indices, std::size_t begin,
                        std::size_t end, int depth, const TreeParams& params,
                        Rng& rng) {
  CTB_CHECK(begin < end);
  const std::size_t n = end - begin;

  std::vector<std::size_t> counts(static_cast<std::size_t>(num_classes_), 0);
  for (std::size_t i = begin; i < end; ++i)
    ++counts[static_cast<std::size_t>(data.samples[indices[i]].label)];
  const double node_gini = gini(counts, n);

  auto make_leaf = [&]() {
    Node leaf;
    leaf.probs.resize(static_cast<std::size_t>(num_classes_));
    for (int c = 0; c < num_classes_; ++c)
      leaf.probs[static_cast<std::size_t>(c)] =
          static_cast<double>(counts[static_cast<std::size_t>(c)]) /
          static_cast<double>(n);
    nodes_.push_back(std::move(leaf));
    return static_cast<int>(nodes_.size()) - 1;
  };

  if (depth >= params.max_depth || node_gini == 0.0 ||
      n < 2 * static_cast<std::size_t>(params.min_samples_leaf))
    return make_leaf();

  // Candidate features: a random subset of size mtry.
  int mtry = params.features_per_split;
  if (mtry <= 0)
    mtry = static_cast<int>(
        std::ceil(std::sqrt(static_cast<double>(data.num_features))));
  mtry = std::min(mtry, data.num_features);
  std::vector<int> features(static_cast<std::size_t>(data.num_features));
  for (int f = 0; f < data.num_features; ++f)
    features[static_cast<std::size_t>(f)] = f;
  rng.shuffle(features);
  features.resize(static_cast<std::size_t>(mtry));

  int best_feature = -1;
  double best_threshold = 0.0;
  double best_impurity = node_gini;

  std::vector<std::size_t> left_counts(
      static_cast<std::size_t>(num_classes_));
  for (int f : features) {
    // Sort this node's slice by the candidate feature.
    std::sort(indices.begin() + static_cast<std::ptrdiff_t>(begin),
              indices.begin() + static_cast<std::ptrdiff_t>(end),
              [&](std::size_t a, std::size_t b) {
                return data.samples[a].features[static_cast<std::size_t>(f)] <
                       data.samples[b].features[static_cast<std::size_t>(f)];
              });
    std::fill(left_counts.begin(), left_counts.end(), 0);
    for (std::size_t i = begin; i + 1 < end; ++i) {
      const auto& cur = data.samples[indices[i]];
      ++left_counts[static_cast<std::size_t>(cur.label)];
      const double v = cur.features[static_cast<std::size_t>(f)];
      const double next =
          data.samples[indices[i + 1]].features[static_cast<std::size_t>(f)];
      if (v == next) continue;  // no split between equal values
      const std::size_t nl = i - begin + 1;
      const std::size_t nr = n - nl;
      if (nl < static_cast<std::size_t>(params.min_samples_leaf) ||
          nr < static_cast<std::size_t>(params.min_samples_leaf))
        continue;
      std::vector<std::size_t> right_counts(counts);
      for (int c = 0; c < num_classes_; ++c)
        right_counts[static_cast<std::size_t>(c)] -=
            left_counts[static_cast<std::size_t>(c)];
      const double impurity =
          (gini(left_counts, nl) * static_cast<double>(nl) +
           gini(right_counts, nr) * static_cast<double>(nr)) /
          static_cast<double>(n);
      if (impurity + 1e-12 < best_impurity) {
        best_impurity = impurity;
        best_feature = f;
        best_threshold = (v + next) / 2.0;
      }
    }
  }

  if (best_feature < 0) return make_leaf();

  // Mean-decrease-in-impurity bookkeeping for feature importance.
  importance_[static_cast<std::size_t>(best_feature)] +=
      static_cast<double>(n) * (node_gini - best_impurity);

  // Partition around the chosen split.
  const auto mid_it = std::partition(
      indices.begin() + static_cast<std::ptrdiff_t>(begin),
      indices.begin() + static_cast<std::ptrdiff_t>(end),
      [&](std::size_t a) {
        return data.samples[a]
                   .features[static_cast<std::size_t>(best_feature)] <=
               best_threshold;
      });
  const std::size_t mid =
      static_cast<std::size_t>(mid_it - indices.begin());
  CTB_CHECK(mid > begin && mid < end);

  const int node_id = static_cast<int>(nodes_.size());
  nodes_.emplace_back();
  nodes_[static_cast<std::size_t>(node_id)].feature = best_feature;
  nodes_[static_cast<std::size_t>(node_id)].threshold = best_threshold;
  const int left = build(data, indices, begin, mid, depth + 1, params, rng);
  const int right = build(data, indices, mid, end, depth + 1, params, rng);
  nodes_[static_cast<std::size_t>(node_id)].left = left;
  nodes_[static_cast<std::size_t>(node_id)].right = right;
  return node_id;
}

std::vector<double> DecisionTree::predict_proba(
    std::span<const double> features) const {
  CTB_CHECK_MSG(trained(), "tree not trained");
  int node = 0;
  while (nodes_[static_cast<std::size_t>(node)].feature >= 0) {
    const Node& nd = nodes_[static_cast<std::size_t>(node)];
    CTB_CHECK_MSG(static_cast<std::size_t>(nd.feature) < features.size(),
                  "tree splits on feature " << nd.feature << " but only "
                                            << features.size()
                                            << " features were provided");
    const double v = features[static_cast<std::size_t>(nd.feature)];
    node = v <= nd.threshold ? nd.left : nd.right;
  }
  return nodes_[static_cast<std::size_t>(node)].probs;
}

int DecisionTree::predict(std::span<const double> features) const {
  const auto probs = predict_proba(features);
  return static_cast<int>(std::max_element(probs.begin(), probs.end()) -
                          probs.begin());
}

int DecisionTree::depth() const { return trained() ? depth_below(0) : 0; }

int DecisionTree::depth_below(int node) const {
  const Node& nd = nodes_[static_cast<std::size_t>(node)];
  if (nd.feature < 0) return 1;
  return 1 + std::max(depth_below(nd.left), depth_below(nd.right));
}

void DecisionTree::save(std::ostream& os) const {
  os << nodes_.size() << '\n';
  for (const Node& nd : nodes_) {
    os << nd.feature << ' ' << nd.threshold << ' ' << nd.left << ' '
       << nd.right;
    os << ' ' << nd.probs.size();
    for (double p : nd.probs) os << ' ' << p;
    os << '\n';
  }
}

void DecisionTree::load(std::istream& is, int num_classes) {
  // Caps far above any real model, small enough that an adversarial count
  // cannot drive a huge allocation before validation.
  constexpr long long kMaxNodes = 1LL << 22;
  constexpr int kMaxFeatureIndex = 1 << 20;
  CTB_CHECK_MSG(num_classes >= 2, "tree needs at least 2 classes, got "
                                      << num_classes);
  long long count = 0;
  is >> count;
  CTB_CHECK_MSG(!is.fail() && count > 0 && count <= kMaxNodes,
                "corrupt tree stream: bad node count " << count);
  nodes_.assign(static_cast<std::size_t>(count), Node{});
  num_classes_ = num_classes;
  for (long long i = 0; i < count; ++i) {
    Node& nd = nodes_[static_cast<std::size_t>(i)];
    long long np = 0;
    is >> nd.feature >> nd.threshold >> nd.left >> nd.right >> np;
    CTB_CHECK_MSG(!is.fail(), "corrupt tree stream at node " << i);
    CTB_CHECK_MSG(np >= 0 && np <= num_classes,
                  "node " << i << " declares " << np
                          << " class probabilities for " << num_classes
                          << " classes");
    nd.probs.resize(static_cast<std::size_t>(np));
    for (double& p : nd.probs) is >> p;
    CTB_CHECK_MSG(!is.fail(), "corrupt tree stream at node " << i);
    if (nd.feature < 0) {
      // A leaf: exactly feature == -1, no children, a full distribution.
      CTB_CHECK_MSG(nd.feature == -1,
                    "node " << i << " has invalid feature index "
                            << nd.feature);
      CTB_CHECK_MSG(nd.left == -1 && nd.right == -1,
                    "leaf node " << i << " has child links " << nd.left
                                 << "/" << nd.right);
      CTB_CHECK_MSG(np == num_classes,
                    "leaf node " << i << " carries " << np
                                 << " probabilities for " << num_classes
                                 << " classes");
    } else {
      // An internal node: children must point forward (the builder appends
      // every parent before its children), which also rules out cycles.
      CTB_CHECK_MSG(nd.feature <= kMaxFeatureIndex,
                    "node " << i << " splits on implausible feature "
                            << nd.feature);
      CTB_CHECK_MSG(nd.left > i && nd.left < count && nd.right > i &&
                        nd.right < count,
                    "node " << i << " has dangling or backward child links "
                            << nd.left << "/" << nd.right);
      CTB_CHECK_MSG(np == 0, "internal node " << i
                                              << " carries a probability "
                                                 "distribution");
    }
  }
}

}  // namespace ctb
