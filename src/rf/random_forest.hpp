// Random forest classifier: bootstrap-aggregated CART trees with per-node
// feature subsampling. The paper's online batching policy sums leaf
// probability vectors across trees and picks the argmax (Section 5).
#pragma once

#include <iosfwd>
#include <vector>

#include "rf/decision_tree.hpp"

namespace ctb {

struct ForestParams {
  int num_trees = 32;
  TreeParams tree;
  /// Bootstrap sample fraction per tree (with replacement).
  double bootstrap_fraction = 1.0;
};

class RandomForest {
 public:
  /// Fits the forest; deterministic given the RNG seed.
  void train(const Dataset& data, const ForestParams& params, Rng& rng);

  /// Mean class-probability vector over all trees.
  std::vector<double> predict_proba(std::span<const double> features) const;

  /// argmax class.
  int predict(std::span<const double> features) const;

  /// Fraction of `data` classified correctly.
  double accuracy(const Dataset& data) const;

  /// Out-of-bag accuracy estimated during train(): each sample is scored
  /// only by the trees whose bootstrap bag excluded it. NaN-free: samples
  /// that every tree saw are skipped. Returns -1 before training.
  double oob_accuracy() const { return oob_accuracy_; }

  /// Mean decrease in impurity per feature, normalized to sum to 1
  /// (all-zero if no split ever used any feature).
  std::vector<double> feature_importance() const;

  int tree_count() const { return static_cast<int>(trees_.size()); }
  int num_classes() const { return num_classes_; }
  bool trained() const { return !trees_.empty(); }

  /// Text serialization (portable across runs).
  void save(std::ostream& os) const;
  void load(std::istream& is);

 private:
  std::vector<DecisionTree> trees_;
  int num_classes_ = 0;
  double oob_accuracy_ = -1.0;
};

}  // namespace ctb
