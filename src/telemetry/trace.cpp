#include "telemetry/trace.hpp"

#include <algorithm>
#include <cstdlib>
#include <ostream>

#include "telemetry/telemetry.hpp"

#ifdef CTB_TELEMETRY_ENABLED
#include <atomic>
#include <fstream>
#include <memory>
#include <mutex>
#endif

namespace ctb::telemetry {

const char* to_string(FlightKind kind) {
  switch (kind) {
    case FlightKind::kServe:
      return "serve";
    case FlightKind::kPlanDecision:
      return "plan.decision";
    case FlightKind::kCacheHit:
      return "cache.hit";
    case FlightKind::kCacheMiss:
      return "cache.miss";
    case FlightKind::kSplitK:
      return "splitk";
    case FlightKind::kDeadlineMiss:
      return "deadline.miss";
    case FlightKind::kQuarantine:
      return "quarantine";
    case FlightKind::kQuarantineRelease:
      return "quarantine.release";
    case FlightKind::kGuardReject:
      return "guard.reject";
    case FlightKind::kFallback:
      return "fallback";
    case FlightKind::kPackStale:
      return "pack.stale";
    case FlightKind::kExec:
      return "exec";
    case FlightKind::kUpgrade:
      return "upgrade";
  }
  return "?";
}

std::string trace_id_hex(std::uint64_t id) {
  static const char* kDigits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kDigits[id & 0xf];
    id >>= 4;
  }
  return out;
}

std::uint64_t parse_trace_id(const std::string& hex) {
  if (hex.empty() || hex.size() > 16) return 0;
  std::uint64_t id = 0;
  for (char c : hex) {
    id <<= 4;
    if (c >= '0' && c <= '9')
      id |= static_cast<std::uint64_t>(c - '0');
    else if (c >= 'a' && c <= 'f')
      id |= static_cast<std::uint64_t>(c - 'a' + 10);
    else if (c >= 'A' && c <= 'F')
      id |= static_cast<std::uint64_t>(c - 'A' + 10);
    else
      return 0;
  }
  return id;
}

void write_flight_json(std::ostream& os,
                       const std::vector<FlightEventView>& events) {
  os << "{\n\"version\":1,\n\"events\":[";
  bool first = true;
  for (const FlightEventView& e : events) {
    os << (first ? "\n" : ",\n");
    first = false;
    os << "{\"t_us\":" << e.t_us << ",\"trace\":\"" << trace_id_hex(e.trace)
       << "\",\"kind\":\"" << to_string(e.kind) << "\",\"detail\":\""
       << (e.detail != nullptr ? e.detail : "") << "\",\"tid\":" << e.tid
       << ",\"a0\":" << e.a0 << ",\"a1\":" << e.a1 << "}";
  }
  os << "\n]\n}\n";
}

#ifdef CTB_TELEMETRY_ENABLED

namespace {

// splitmix64 finalizer: turns the sequential mint counter into ids that are
// well-distributed across the 64-bit space while staying deterministic
// given request order.
std::uint64_t mix(std::uint64_t h) {
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebULL;
  h ^= h >> 31;
  return h;
}

thread_local TraceContext t_current;

// ---------------------------------------------------------------------------
// Flight rings
// ---------------------------------------------------------------------------
//
// One fixed ring per thread. The owner thread is the only writer; readers
// (flight_events, from any thread) scan every slot and use the per-slot
// sequence word as a seqlock: a slot is published by writing seq = 2g+1
// (unstable), the fields, then seq = 2g+2 (stable, generation g). A reader
// that sees an odd sequence, or a sequence that changed while it copied the
// fields, skips the slot. Every field is a relaxed atomic, so concurrent
// dump-while-record is race-free by construction (TSan-clean) and the
// writer's cost stays a handful of uncontended stores.

struct FlightSlot {
  std::atomic<std::uint64_t> seq{0};  // 0 = never written / cleared
  std::atomic<std::uint64_t> trace{0};
  std::atomic<std::int64_t> a0{0};
  std::atomic<std::int64_t> a1{0};
  std::atomic<double> t_us{0.0};
  std::atomic<std::int32_t> kind{0};
  std::atomic<const char*> detail{nullptr};
};

constexpr std::size_t kFlightSlots = 256;  // per thread; ~14 KiB

struct FlightRing {
  std::uint64_t head = 0;  // owner-thread only
  FlightSlot slots[kFlightSlots];
};

struct FlightRegistry {
  std::atomic<std::uint64_t> next_trace{0};
  std::atomic<int> next_tid{0};
  std::atomic<int> dump_budget{32};
  std::atomic<int> dump_seq{0};

  std::mutex mu;  // guards the ring lists, never the slots themselves
  std::vector<std::shared_ptr<FlightRing>> rings;
  std::vector<std::shared_ptr<FlightRing>> free_rings;
};

// Leaked intentionally, like the telemetry registry: worker threads may
// record events during static destruction.
FlightRegistry& flight_registry() {
  static FlightRegistry* r = new FlightRegistry;
  return *r;
}

// Thread-local ring handle with the same adopt-on-exit protocol as the span
// buffers: rings outlive their thread (snapshots after a worker exits still
// see its events) and are reused by the next new thread.
struct RingHandle {
  std::shared_ptr<FlightRing> ring;
  int tid = 0;

  RingHandle() {
    FlightRegistry& r = flight_registry();
    const std::lock_guard<std::mutex> lock(r.mu);
    if (!r.free_rings.empty()) {
      ring = std::move(r.free_rings.back());
      r.free_rings.pop_back();
    } else {
      ring = std::make_shared<FlightRing>();
      r.rings.push_back(ring);
    }
    tid = r.next_tid.fetch_add(1, std::memory_order_relaxed);
  }
  ~RingHandle() {
    FlightRegistry& r = flight_registry();
    const std::lock_guard<std::mutex> lock(r.mu);
    r.free_rings.push_back(std::move(ring));
  }
};

}  // namespace

std::uint64_t make_trace_id() {
  const std::uint64_t n =
      flight_registry().next_trace.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t id = mix(n + 0x9e3779b97f4a7c15ULL);
  return id != 0 ? id : 1;
}

TraceContext current_trace() { return t_current; }

ScopedTraceContext::ScopedTraceContext(TraceContext ctx)
    : prev_(t_current), installed_(true) {
  t_current = ctx;
}

ScopedTraceContext::ScopedTraceContext(const char* origin_literal,
                                       std::int32_t gemms) {
  if (t_current.active()) return;  // adopt the caller's trace
  prev_ = t_current;
  installed_ = true;
  t_current = TraceContext{make_trace_id(), gemms, origin_literal};
}

ScopedTraceContext::~ScopedTraceContext() {
  if (installed_) t_current = prev_;
}

void flight_record(FlightKind kind, const char* detail_literal,
                   std::int64_t a0, std::int64_t a1) {
  thread_local RingHandle handle;
  FlightRing& ring = *handle.ring;
  const std::uint64_t g = ring.head++;
  FlightSlot& slot = ring.slots[g % kFlightSlots];
  slot.seq.store(2 * g + 1, std::memory_order_release);
  slot.trace.store(t_current.id, std::memory_order_relaxed);
  slot.a0.store(a0, std::memory_order_relaxed);
  slot.a1.store(a1, std::memory_order_relaxed);
  slot.t_us.store(now_us(), std::memory_order_relaxed);
  slot.kind.store(static_cast<std::int32_t>(kind),
                  std::memory_order_relaxed);
  slot.detail.store(detail_literal, std::memory_order_relaxed);
  slot.seq.store(2 * g + 2, std::memory_order_release);
  // tid rides in the ring handle; see flight_events().
  (void)handle.tid;
}

std::vector<FlightEventView> flight_events() {
  FlightRegistry& r = flight_registry();
  std::vector<std::shared_ptr<FlightRing>> rings;
  {
    const std::lock_guard<std::mutex> lock(r.mu);
    rings = r.rings;
  }
  std::vector<FlightEventView> out;
  int tid = 0;
  for (const auto& ring : rings) {
    for (const FlightSlot& slot : ring->slots) {
      const std::uint64_t seq1 = slot.seq.load(std::memory_order_acquire);
      if (seq1 == 0 || (seq1 & 1) != 0) continue;  // empty or mid-write
      FlightEventView e;
      e.trace = slot.trace.load(std::memory_order_relaxed);
      e.a0 = slot.a0.load(std::memory_order_relaxed);
      e.a1 = slot.a1.load(std::memory_order_relaxed);
      e.t_us = slot.t_us.load(std::memory_order_relaxed);
      e.kind = static_cast<FlightKind>(
          slot.kind.load(std::memory_order_relaxed));
      e.detail = slot.detail.load(std::memory_order_relaxed);
      e.tid = tid;
      if (slot.seq.load(std::memory_order_acquire) != seq1)
        continue;  // overwritten while copying
      if (e.detail == nullptr) e.detail = "";
      out.push_back(e);
    }
    ++tid;
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const FlightEventView& a, const FlightEventView& b) {
                     return a.t_us < b.t_us;
                   });
  return out;
}

void flight_clear() {
  FlightRegistry& r = flight_registry();
  const std::lock_guard<std::mutex> lock(r.mu);
  for (const auto& ring : r.rings)
    for (FlightSlot& slot : ring->slots)
      slot.seq.store(0, std::memory_order_release);
}

std::string flight_autodump(const char* reason_literal) {
  const char* dir = std::getenv("CTB_FLIGHT_DUMP_DIR");
  if (dir == nullptr || *dir == '\0') return {};
  FlightRegistry& r = flight_registry();
  if (r.dump_budget.fetch_sub(1, std::memory_order_relaxed) <= 0) return {};
  const int n = r.dump_seq.fetch_add(1, std::memory_order_relaxed);
  std::string path = std::string(dir) + "/ctb_flight_" + std::to_string(n) +
                     "_" + reason_literal + ".json";
  std::ofstream os(path);
  if (!os) return {};
  write_flight_json(os, flight_events());
  return path;
}

#endif  // CTB_TELEMETRY_ENABLED

}  // namespace ctb::telemetry
