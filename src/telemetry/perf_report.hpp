// ctb::perfreport — versioned performance-report artifacts with
// deterministic regression gating (DESIGN.md §8).
//
// A report (`BENCH_<tag>.json`) captures one run of a canonical workload
// suite: per workload, wall-clock timing statistics (median-of-k with IQR —
// advisory, since host timing on the 1-core reference container swings by
// ±50%) next to **deterministic work counters** harvested from telemetry
// snapshot deltas (dispatch mix, packed panels/bytes, PlanCache hits,
// fallbacks, FLOPs). Counter values are bit-deterministic functions of the
// workload definitions, so `compare_reports` can demand exact equality
// there — a changed dispatch mix or cache hit rate is a hard regression on
// any host — while timing deltas only classify as advisory noise /
// regression against a configurable noise band.
//
// This module is deliberately at the bottom of the stack (depends only on
// ctb_telemetry): it defines the artifact schema, canonical serialization,
// and the comparison algebra. Building a report from live workloads lives
// above it — `bench/bench_common.hpp` defines the suites and the runner,
// and `tools/ctb_bench.cpp` is the CLI.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <stdexcept>
#include <string>
#include <vector>

#include "telemetry/telemetry.hpp"

namespace ctb::perfreport {

/// Bumped whenever the JSON schema changes shape; load_perf_report rejects
/// reports from other versions (a baseline must be regenerated knowingly).
/// v2: added the report-level "simd_isa" field and the exec.simd.* /
/// exec.pack.cache.* counters to the gated allowlist.
/// v3: added the service.* counters (plan-service state machine) to the
/// gated allowlist and the optional per-workload "lookup" latency object
/// (count + p50/p95/p99 µs, advisory — wall-clock, never gated) emitted by
/// the replay suite.
/// v4: added the split-K counters (exec.splitk.* and plan.splitk.*) to the
/// gated allowlist; both the executor-side slice accounting and the
/// planner's candidate sweep are pure functions of the workload, so they
/// compare exactly across hosts.
/// v5: added the fused-epilogue counters (exec.epilogue.fused,
/// exec.epilogue.ops, exec.c.passes) and the grouped-dispatch counters
/// (plan.grouped.*) to the gated allowlist, plus the report-level
/// "created_unix" timestamp that `ctb_bench --fold` orders artifacts by.
/// v6: added tel.spans.dropped to the gated allowlist — span-buffer
/// overflow was previously invisible in reports; the expected value in any
/// healthy suite run is exactly 0, so a regression means an instrumented
/// loop outgrew the per-thread buffer cap.
inline constexpr int kSchemaVersion = 6;

/// Wall-clock statistics over one workload's k repeats. Median-of-k with
/// interquartile range: the median resists the reference container's timing
/// outliers and the IQR records how noisy the run itself was.
struct TimingStats {
  double median_us = 0.0;
  double iqr_us = 0.0;  ///< q75 - q25 (nearest-rank quartiles)
  double min_us = 0.0;
  double max_us = 0.0;

  /// Nearest-rank median/quartiles of the samples. Empty input -> all zero.
  static TimingStats from_samples(std::vector<double> samples_us);
};

/// One deterministic histogram harvested into a report: integral shape
/// stats plus the bucket-derived percentile estimates (bit-deterministic,
/// see telemetry::HistogramSample::percentile).
struct HistogramStat {
  std::string name;
  std::int64_t count = 0;
  std::int64_t sum = 0;
  std::int64_t p50 = 0;
  std::int64_t p95 = 0;
  std::int64_t p99 = 0;
};

/// Per-request lookup-latency percentiles for replay workloads (plan
/// service front door). Wall-clock, so advisory like TimingStats: recorded
/// in the artifact, never gated by compare_reports. count == 0 means "not a
/// replay workload" and the "lookup" object is omitted from the JSON.
struct LatencyStats {
  std::int64_t count = 0;
  double p50_us = 0.0;
  double p95_us = 0.0;
  double p99_us = 0.0;

  /// Nearest-rank percentiles of the samples. Empty input -> all zero.
  static LatencyStats from_samples(std::vector<double> samples_us);
};

/// One workload's results: timing (advisory) + deterministic counters.
struct WorkloadResult {
  std::string name;
  std::int64_t flops = 0;  ///< useful FLOPs of ONE repeat (2*m*n*k summed)
  int repeats = 0;
  TimingStats timing;
  LatencyStats lookup;  ///< replay workloads only (count == 0 otherwise)
  std::vector<telemetry::CounterSample> counters;  // sorted by name
  std::vector<HistogramStat> histograms;           // sorted by name

  double gflops() const {
    return timing.median_us > 0.0
               ? static_cast<double>(flops) / (timing.median_us * 1e3)
               : 0.0;
  }
};

/// The artifact. Workloads are kept sorted by name so a report's byte
/// serialization — and every comparison walk — is independent of the order
/// workloads were run or inserted.
struct PerfReport {
  int schema_version = kSchemaVersion;
  std::string tag;    ///< run label ("ci", "local", a commit sha, ...)
  std::string suite;  ///< suite name the workloads came from
  int repeats = 0;    ///< suite-level default k
  /// Unix time (seconds) the run was recorded. --fold orders artifact
  /// columns by (created_unix, tag, filename) so the trajectory reads in
  /// recording order regardless of how files were named or copied around.
  /// 0 = unknown (never gated by compare_reports).
  std::int64_t created_unix = 0;
  /// False when the producing binary was built with -DCTB_TELEMETRY=OFF;
  /// counters are then empty and compare_reports skips counter gating.
  bool telemetry_compiled_in = true;
  /// simd_isa_name(active_simd_isa()) of the producing run. The exec.simd.*
  /// dispatch counters are deterministic per ISA but differ across hosts
  /// with different vector units, so compare_reports only gates them when
  /// this field matches between baseline and current.
  std::string simd_isa = "scalar";
  std::vector<WorkloadResult> workloads;
};

/// The counters whose per-workload snapshot deltas are bit-deterministic
/// (pure functions of dims/policy/arch, independent of thread count and
/// host speed) — the set compare_reports gates on exactly.
const std::vector<std::string>& deterministic_counter_names();

/// Histograms with deterministic shape (plan structure, not timing).
const std::vector<std::string>& deterministic_histogram_names();

/// Copies the deterministic counters/histograms out of a snapshot delta
/// into `out` (sorted by name). Counters absent from the snapshot are
/// recorded as 0 so every report carries the full gated set.
void harvest_deterministic_metrics(const telemetry::MetricsSnapshot& snap,
                                   WorkloadResult& out);

/// Sorts workloads (and their metric vectors) by name — the canonical order
/// write_perf_report_json requires.
void sort_workloads(PerfReport& report);

/// Canonical JSON serialization. Reports written by this function round-trip
/// byte-identically through load_perf_report + write_perf_report_json.
void write_perf_report_json(std::ostream& os, const PerfReport& report);

struct PerfReportError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Parses a report written by write_perf_report_json. Throws PerfReportError
/// on malformed JSON, a missing field, or an unsupported schema version.
PerfReport load_perf_report(std::istream& is);

/// Classification of one workload's baseline->current delta.
enum class DeltaClass {
  kMatch,              ///< timing ratio exactly 1 and counters equal
  kNoise,              ///< counters equal, timing within the noise band
  kTimingImprovement,  ///< counters equal, faster beyond the band (advisory)
  kTimingRegression,   ///< counters equal, slower beyond the band (advisory)
  kCounterRegression,  ///< deterministic counters differ: hard fail
  kMissing,            ///< workload present in only one report: hard fail
};

const char* to_string(DeltaClass cls);

struct WorkloadDelta {
  std::string name;
  DeltaClass cls = DeltaClass::kMatch;
  /// current median / baseline median; 0 when either side is missing.
  double time_ratio = 0.0;
  /// Human-readable mismatch descriptions ("exec.tiles: 70 -> 72", ...).
  std::vector<std::string> counter_mismatches;
};

struct CompareOptions {
  /// Relative band for advisory timing classification: a ratio within
  /// [1/(1+band), 1+band] is noise. 0.5 matches the documented ±50% wall
  /// clock noise of the 1-core reference container.
  double noise_band = 0.5;
};

struct CompareResult {
  std::vector<WorkloadDelta> workloads;  ///< union of both reports, by name
  /// The two reports' simd_isa fields. When they differ, exec.simd.*
  /// counters were excluded from gating (advisory note in the printout);
  /// every other gated counter — including exec.pack.cache.* — is
  /// ISA-independent and still compared exactly.
  std::string baseline_simd_isa;
  std::string current_simd_isa;
  bool simd_isa_matches() const {
    return baseline_simd_isa == current_simd_isa;
  }
  /// Geometric mean of current/baseline median ratios over workloads
  /// present in both reports with nonzero medians; 1.0 when none qualify.
  double geomean_time_ratio = 1.0;
  int counter_regressions = 0;
  int timing_regressions = 0;
  int timing_improvements = 0;
  int missing = 0;
  /// Counter regressions and missing workloads gate; timing never does.
  bool hard_fail() const { return counter_regressions > 0 || missing > 0; }
};

/// Compares per-workload deterministic counters exactly (also flops and
/// repeats — a mismatch there means the suite definition or run
/// configuration changed, which invalidates the baseline) and classifies
/// timing deltas against the noise band. Counter gating is skipped when
/// either report was produced without compiled-in telemetry.
CompareResult compare_reports(const PerfReport& baseline,
                              const PerfReport& current,
                              const CompareOptions& opts = {});

/// Human-readable comparison summary (one line per workload + totals).
void print_comparison(std::ostream& os, const CompareResult& cmp,
                      const CompareOptions& opts = {});

}  // namespace ctb::perfreport
