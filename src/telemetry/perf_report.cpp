#include "telemetry/perf_report.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <iomanip>
#include <istream>
#include <ostream>
#include <sstream>
#include <utility>

namespace ctb::perfreport {

// ---------------------------------------------------------------------------
// Timing statistics
// ---------------------------------------------------------------------------

namespace {

// Nearest-rank percentile of a sorted sample: the ceil(p/100 * n)-th value.
double nearest_rank(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const auto n = static_cast<std::int64_t>(sorted.size());
  auto rank = static_cast<std::int64_t>(p / 100.0 * static_cast<double>(n));
  if (static_cast<double>(rank) * 100.0 < p * static_cast<double>(n)) ++rank;
  if (rank < 1) rank = 1;
  if (rank > n) rank = n;
  return sorted[static_cast<std::size_t>(rank - 1)];
}

}  // namespace

TimingStats TimingStats::from_samples(std::vector<double> samples_us) {
  TimingStats s;
  if (samples_us.empty()) return s;
  std::sort(samples_us.begin(), samples_us.end());
  s.median_us = nearest_rank(samples_us, 50.0);
  s.iqr_us = nearest_rank(samples_us, 75.0) - nearest_rank(samples_us, 25.0);
  s.min_us = samples_us.front();
  s.max_us = samples_us.back();
  return s;
}

// ---------------------------------------------------------------------------
// Deterministic metric allowlists
// ---------------------------------------------------------------------------
//
// Everything here is a pure function of the workload definitions (dims,
// policy, arch model): planning and the functional executors perform only
// integer and IEEE float arithmetic (no libm), so these deltas are identical
// on every host and thread count. Timing-derived metrics (sim.busy_pct,
// span durations) are deliberately excluded. tel.spans.dropped is gated
// even though drop *onset* depends on buffer occupancy: the suites record
// far fewer spans than the per-thread cap, so its deterministic expected
// value is 0 and any nonzero delta is a real instrumentation regression.

LatencyStats LatencyStats::from_samples(std::vector<double> samples_us) {
  LatencyStats s;
  if (samples_us.empty()) return s;
  std::sort(samples_us.begin(), samples_us.end());
  s.count = static_cast<std::int64_t>(samples_us.size());
  s.p50_us = nearest_rank(samples_us, 50.0);
  s.p95_us = nearest_rank(samples_us, 95.0);
  s.p99_us = nearest_rank(samples_us, 99.0);
  return s;
}

const std::vector<std::string>& deterministic_counter_names() {
  static const std::vector<std::string> kNames = {
      "cache.evict",
      "cache.hit",
      "cache.miss",
      "exec.blocks",
      // exec.c.passes counts full sweeps over each C (one per GEMM per
      // executor run, plus one per separate bias/activation pass); the
      // fused-epilogue counters count tile stores that applied a chain and
      // the chain ops applied. All are decided by plan + dispatch structure,
      // never by thread count or ISA.
      "exec.c.passes",
      "exec.dispatch.generic",
      "exec.dispatch.specialized",
      "exec.epilogue.fused",
      "exec.epilogue.ops",
      "exec.fallback",
      "exec.flops",
      "exec.pack.bytes",
      "exec.pack.cache.evict",
      "exec.pack.cache.hit",
      "exec.pack.cache.invalidate",
      "exec.pack.cache.miss",
      "exec.pack.cache.stale",
      "exec.pack.panels",
      "exec.pack.reuse",
      "exec.plan_runs",
      // exec.simd.* are deterministic per ISA (the dispatch decision is a
      // pure function of geometry and the active ISA) but host-dependent
      // across machines; compare_reports gates them only when the two
      // reports' simd_isa fields match.
      "exec.simd.avx2",
      "exec.simd.avx512",
      "exec.simd.neon",
      "exec.simd.scalar",
      // exec.splitk.* count partial-K tiles and their fix-up reduction
      // groups; both are decided by the plan alone, never by thread count.
      "exec.splitk.groups",
      "exec.splitk.tiles",
      "exec.tiles",
      "plan.auto.binary_wins",
      "plan.auto.threshold_wins",
      // plan.grouped.* count fused grouped-GEMM dispatches (dnn layer
      // fusion entry points) — pure functions of the workload definition.
      "plan.grouped.dispatches",
      "plan.grouped.fused_ops",
      "plan.grouped.gemms",
      "plan.heuristic.binary",
      "plan.heuristic.none",
      "plan.heuristic.packed",
      "plan.heuristic.threshold",
      "plan.policy.auto-offline",
      "plan.policy.binary-only",
      "plan.policy.random-forest",
      "plan.policy.threshold-only",
      "plan.policy.tiling-only",
      "plan.rf.choice.binary",
      "plan.rf.choice.threshold",
      // plan.splitk.* are driven by the deterministic simulator comparison
      // in consider_splitk, so the candidate/chosen counts replay exactly.
      "plan.splitk.chosen",
      "plan.splitk.considered",
      // service.* counters are pure functions of the replayed request
      // sequence (hit/miss mix, state-machine transitions) as long as the
      // suite runs the service in inline deterministic mode, which the
      // replay suite does.
      "service.admitted",
      "service.deadline_miss",
      "service.degraded",
      "service.filter.reject",
      "service.hit",
      "service.miss",
      "service.quarantined",
      "service.retried",
      "service.upgraded",
      "tel.spans.dropped",
      "tiling.candidates",
      "tiling.fallback_128",
      "tiling.iterations",
  };
  return kNames;
}

const std::vector<std::string>& deterministic_histogram_names() {
  static const std::vector<std::string> kNames = {
      "batching.sum_k_per_block",
      "batching.tiles_per_block",
      "tiling.tlp",
  };
  return kNames;
}

void harvest_deterministic_metrics(const telemetry::MetricsSnapshot& snap,
                                   WorkloadResult& out) {
  out.counters.clear();
  out.histograms.clear();
  for (const std::string& name : deterministic_counter_names()) {
    telemetry::CounterSample c;
    c.name = name;
    for (const auto& s : snap.counters) {
      if (s.name == name) {
        c.value = s.value;
        break;
      }
    }
    out.counters.push_back(std::move(c));
  }
  for (const std::string& name : deterministic_histogram_names()) {
    HistogramStat h;
    h.name = name;
    for (const auto& s : snap.histograms) {
      if (s.name == name) {
        h.count = s.count;
        h.sum = s.sum;
        h.p50 = static_cast<std::int64_t>(s.p50());
        h.p95 = static_cast<std::int64_t>(s.p95());
        h.p99 = static_cast<std::int64_t>(s.p99());
        break;
      }
    }
    out.histograms.push_back(std::move(h));
  }
  // The allowlists above are sorted; keep that invariant explicit.
  std::sort(out.counters.begin(), out.counters.end(),
            [](const auto& a, const auto& b) { return a.name < b.name; });
  std::sort(out.histograms.begin(), out.histograms.end(),
            [](const auto& a, const auto& b) { return a.name < b.name; });
}

void sort_workloads(PerfReport& report) {
  std::sort(report.workloads.begin(), report.workloads.end(),
            [](const WorkloadResult& a, const WorkloadResult& b) {
              return a.name < b.name;
            });
  for (auto& w : report.workloads) {
    std::sort(w.counters.begin(), w.counters.end(),
              [](const auto& a, const auto& b) { return a.name < b.name; });
    std::sort(w.histograms.begin(), w.histograms.end(),
              [](const auto& a, const auto& b) { return a.name < b.name; });
  }
}

// ---------------------------------------------------------------------------
// Canonical JSON writer
// ---------------------------------------------------------------------------

namespace {

void write_escaped(std::ostream& os, const std::string& s) {
  os << '"';
  for (char ch : s) {
    switch (ch) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      case '\r': os << "\\r"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
          os << buf;
        } else {
          os << ch;
        }
    }
  }
  os << '"';
}

// Fixed three decimals: microsecond timings round-trip byte-identically
// through the parser (%.3f of the parsed value reproduces the bytes).
void write_us(std::ostream& os, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  os << buf;
}

}  // namespace

void write_perf_report_json(std::ostream& os, const PerfReport& report) {
  PerfReport sorted = report;
  sort_workloads(sorted);
  os << "{\n";
  os << "  \"schema_version\": " << sorted.schema_version << ",\n";
  os << "  \"tag\": ";
  write_escaped(os, sorted.tag);
  os << ",\n  \"suite\": ";
  write_escaped(os, sorted.suite);
  os << ",\n  \"repeats\": " << sorted.repeats << ",\n";
  os << "  \"created_unix\": " << sorted.created_unix << ",\n";
  os << "  \"telemetry_compiled_in\": "
     << (sorted.telemetry_compiled_in ? "true" : "false") << ",\n";
  os << "  \"simd_isa\": ";
  write_escaped(os, sorted.simd_isa);
  os << ",\n";
  os << "  \"workloads\": [";
  bool first_w = true;
  for (const WorkloadResult& w : sorted.workloads) {
    os << (first_w ? "\n" : ",\n");
    first_w = false;
    os << "    {\n      \"name\": ";
    write_escaped(os, w.name);
    os << ",\n      \"flops\": " << w.flops;
    os << ",\n      \"repeats\": " << w.repeats;
    os << ",\n      \"timing\": {\"median_us\": ";
    write_us(os, w.timing.median_us);
    os << ", \"iqr_us\": ";
    write_us(os, w.timing.iqr_us);
    os << ", \"min_us\": ";
    write_us(os, w.timing.min_us);
    os << ", \"max_us\": ";
    write_us(os, w.timing.max_us);
    os << "}";
    if (w.lookup.count > 0) {
      os << ",\n      \"lookup\": {\"count\": " << w.lookup.count
         << ", \"p50_us\": ";
      write_us(os, w.lookup.p50_us);
      os << ", \"p95_us\": ";
      write_us(os, w.lookup.p95_us);
      os << ", \"p99_us\": ";
      write_us(os, w.lookup.p99_us);
      os << "}";
    }
    os << ",\n      \"counters\": [";
    bool first = true;
    for (const auto& c : w.counters) {
      os << (first ? "\n" : ",\n");
      first = false;
      os << "        {\"name\": ";
      write_escaped(os, c.name);
      os << ", \"value\": " << c.value << "}";
    }
    os << (w.counters.empty() ? "]" : "\n      ]");
    os << ",\n      \"histograms\": [";
    first = true;
    for (const auto& h : w.histograms) {
      os << (first ? "\n" : ",\n");
      first = false;
      os << "        {\"name\": ";
      write_escaped(os, h.name);
      os << ", \"count\": " << h.count << ", \"sum\": " << h.sum
         << ", \"p50\": " << h.p50 << ", \"p95\": " << h.p95
         << ", \"p99\": " << h.p99 << "}";
    }
    os << (w.histograms.empty() ? "]" : "\n      ]");
    os << "\n    }";
  }
  os << (sorted.workloads.empty() ? "]" : "\n  ]");
  os << "\n}\n";
}

// ---------------------------------------------------------------------------
// Minimal JSON parser
// ---------------------------------------------------------------------------
//
// The repo carries no JSON dependency, and a report is a small, known shape;
// a ~150-line recursive-descent parser keeps this module self-contained.
// Numbers keep their source text so 64-bit counters are re-read with strtoll
// (no double round-trip) and timings with strtod.

namespace {

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  std::string text;  // number token or decoded string
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  const JsonValue* find(const std::string& key) const {
    for (const auto& [k, v] : object)
      if (k == key) return &v;
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(std::string text) : text_(std::move(text)) {}

  JsonValue parse() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing content after JSON value");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw PerfReportError("perf report JSON: " + what + " at byte " +
                          std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r'))
      ++pos_;
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  JsonValue parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        JsonValue v;
        v.type = JsonValue::Type::kString;
        v.text = parse_string();
        return v;
      }
      case 't': return parse_literal("true", /*boolean=*/true);
      case 'f': return parse_literal("false", /*boolean=*/false);
      case 'n': {
        JsonValue v = parse_literal("null", false);
        v.type = JsonValue::Type::kNull;
        return v;
      }
      default: return parse_number();
    }
  }

  JsonValue parse_literal(const char* word, bool boolean) {
    for (const char* p = word; *p != '\0'; ++p) {
      if (pos_ >= text_.size() || text_[pos_] != *p) fail("bad literal");
      ++pos_;
    }
    JsonValue v;
    v.type = JsonValue::Type::kBool;
    v.boolean = boolean;
    return v;
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-'))
      ++pos_;
    if (pos_ == start || (pos_ == start + 1 && text_[start] == '-'))
      fail("expected a number");
    JsonValue v;
    v.type = JsonValue::Type::kNumber;
    v.text = text_.substr(start, pos_ - start);
    return v;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'n': out.push_back('\n'); break;
        case 't': out.push_back('\t'); break;
        case 'r': out.push_back('\r'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned long code =
              std::strtoul(text_.substr(pos_, 4).c_str(), nullptr, 16);
          pos_ += 4;
          if (code > 0x7f) fail("non-ASCII \\u escape unsupported");
          out.push_back(static_cast<char>(code));
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue v;
    v.type = JsonValue::Type::kObject;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.object.emplace_back(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue v;
    v.type = JsonValue::Type::kArray;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string text_;
  std::size_t pos_ = 0;
};

const JsonValue& require(const JsonValue& obj, const std::string& key,
                         JsonValue::Type type, const char* what) {
  if (obj.type != JsonValue::Type::kObject)
    throw PerfReportError(std::string("perf report JSON: ") + what +
                          " is not an object");
  const JsonValue* v = obj.find(key);
  if (v == nullptr)
    throw PerfReportError("perf report JSON: missing \"" + key + "\" in " +
                          what);
  if (v->type != type)
    throw PerfReportError("perf report JSON: \"" + key + "\" in " + what +
                          " has the wrong type");
  return *v;
}

std::int64_t as_int(const JsonValue& v, const char* what) {
  errno = 0;
  char* end = nullptr;
  long long out = std::strtoll(v.text.c_str(), &end, 10);
  if (errno != 0 || end == v.text.c_str() || *end != '\0')
    throw PerfReportError(std::string("perf report JSON: \"") + what +
                          "\" is not an integer: " + v.text);
  return out;
}

double as_double(const JsonValue& v) {
  return std::strtod(v.text.c_str(), nullptr);
}

}  // namespace

PerfReport load_perf_report(std::istream& is) {
  std::ostringstream buf;
  buf << is.rdbuf();
  JsonParser parser(buf.str());
  JsonValue root = parser.parse();
  if (root.type != JsonValue::Type::kObject)
    throw PerfReportError("perf report JSON: top level is not an object");

  PerfReport report;
  report.schema_version = static_cast<int>(as_int(
      require(root, "schema_version", JsonValue::Type::kNumber, "report"),
      "schema_version"));
  if (report.schema_version != kSchemaVersion)
    throw PerfReportError(
        "perf report JSON: unsupported schema_version " +
        std::to_string(report.schema_version) + " (this build reads " +
        std::to_string(kSchemaVersion) + "); regenerate the baseline");
  report.tag = require(root, "tag", JsonValue::Type::kString, "report").text;
  report.suite =
      require(root, "suite", JsonValue::Type::kString, "report").text;
  report.repeats = static_cast<int>(
      as_int(require(root, "repeats", JsonValue::Type::kNumber, "report"),
             "repeats"));
  report.created_unix = as_int(
      require(root, "created_unix", JsonValue::Type::kNumber, "report"),
      "created_unix");
  report.telemetry_compiled_in =
      require(root, "telemetry_compiled_in", JsonValue::Type::kBool, "report")
          .boolean;
  report.simd_isa =
      require(root, "simd_isa", JsonValue::Type::kString, "report").text;

  const JsonValue& workloads =
      require(root, "workloads", JsonValue::Type::kArray, "report");
  for (const JsonValue& jw : workloads.array) {
    WorkloadResult w;
    w.name = require(jw, "name", JsonValue::Type::kString, "workload").text;
    w.flops = as_int(
        require(jw, "flops", JsonValue::Type::kNumber, "workload"), "flops");
    w.repeats = static_cast<int>(as_int(
        require(jw, "repeats", JsonValue::Type::kNumber, "workload"),
        "repeats"));
    const JsonValue& jt =
        require(jw, "timing", JsonValue::Type::kObject, "workload");
    w.timing.median_us =
        as_double(require(jt, "median_us", JsonValue::Type::kNumber, "timing"));
    w.timing.iqr_us =
        as_double(require(jt, "iqr_us", JsonValue::Type::kNumber, "timing"));
    w.timing.min_us =
        as_double(require(jt, "min_us", JsonValue::Type::kNumber, "timing"));
    w.timing.max_us =
        as_double(require(jt, "max_us", JsonValue::Type::kNumber, "timing"));
    if (const JsonValue* jl = jw.find("lookup")) {
      if (jl->type != JsonValue::Type::kObject)
        throw PerfReportError("perf report JSON: \"lookup\" must be an object");
      w.lookup.count = as_int(
          require(*jl, "count", JsonValue::Type::kNumber, "lookup"), "count");
      w.lookup.p50_us = as_double(
          require(*jl, "p50_us", JsonValue::Type::kNumber, "lookup"));
      w.lookup.p95_us = as_double(
          require(*jl, "p95_us", JsonValue::Type::kNumber, "lookup"));
      w.lookup.p99_us = as_double(
          require(*jl, "p99_us", JsonValue::Type::kNumber, "lookup"));
    }
    const JsonValue& jc =
        require(jw, "counters", JsonValue::Type::kArray, "workload");
    for (const JsonValue& entry : jc.array) {
      telemetry::CounterSample c;
      c.name = require(entry, "name", JsonValue::Type::kString, "counter").text;
      c.value = as_int(
          require(entry, "value", JsonValue::Type::kNumber, "counter"),
          "value");
      w.counters.push_back(std::move(c));
    }
    const JsonValue& jh =
        require(jw, "histograms", JsonValue::Type::kArray, "workload");
    for (const JsonValue& entry : jh.array) {
      HistogramStat h;
      h.name =
          require(entry, "name", JsonValue::Type::kString, "histogram").text;
      h.count = as_int(
          require(entry, "count", JsonValue::Type::kNumber, "histogram"),
          "count");
      h.sum = as_int(
          require(entry, "sum", JsonValue::Type::kNumber, "histogram"), "sum");
      h.p50 = as_int(
          require(entry, "p50", JsonValue::Type::kNumber, "histogram"), "p50");
      h.p95 = as_int(
          require(entry, "p95", JsonValue::Type::kNumber, "histogram"), "p95");
      h.p99 = as_int(
          require(entry, "p99", JsonValue::Type::kNumber, "histogram"), "p99");
      w.histograms.push_back(std::move(h));
    }
    report.workloads.push_back(std::move(w));
  }
  sort_workloads(report);
  return report;
}

// ---------------------------------------------------------------------------
// Comparison
// ---------------------------------------------------------------------------

const char* to_string(DeltaClass cls) {
  switch (cls) {
    case DeltaClass::kMatch: return "match";
    case DeltaClass::kNoise: return "noise";
    case DeltaClass::kTimingImprovement: return "timing-improvement";
    case DeltaClass::kTimingRegression: return "timing-regression";
    case DeltaClass::kCounterRegression: return "counter-regression";
    case DeltaClass::kMissing: return "missing";
  }
  return "?";
}

namespace {

bool is_simd_counter(const std::string& name) {
  return name.rfind("exec.simd.", 0) == 0;
}

/// With gate_simd false (the reports came from hosts with different vector
/// units), exec.simd.* entries are dropped from the walk on both sides —
/// their values are ISA-dependent by construction, not a regression.
void diff_counters(const WorkloadResult& base, const WorkloadResult& cur,
                   bool gate_simd, std::vector<std::string>& out) {
  if (base.flops != cur.flops)
    out.push_back("flops: " + std::to_string(base.flops) + " -> " +
                  std::to_string(cur.flops));
  if (base.repeats != cur.repeats)
    out.push_back("repeats: " + std::to_string(base.repeats) + " -> " +
                  std::to_string(cur.repeats));
  // Both sides are sorted by name; walk the union so a counter present in
  // only one report (taxonomy drift) is itself a mismatch.
  std::size_t i = 0, j = 0;
  while (i < base.counters.size() || j < cur.counters.size()) {
    const bool take_base =
        j >= cur.counters.size() ||
        (i < base.counters.size() &&
         base.counters[i].name < cur.counters[j].name);
    const bool take_cur =
        i >= base.counters.size() ||
        (j < cur.counters.size() &&
         cur.counters[j].name < base.counters[i].name);
    if (take_base) {
      if (gate_simd || !is_simd_counter(base.counters[i].name))
        out.push_back(base.counters[i].name + ": " +
                      std::to_string(base.counters[i].value) +
                      " -> (absent)");
      ++i;
    } else if (take_cur) {
      if (gate_simd || !is_simd_counter(cur.counters[j].name))
        out.push_back(cur.counters[j].name + ": (absent) -> " +
                      std::to_string(cur.counters[j].value));
      ++j;
    } else {
      if (base.counters[i].value != cur.counters[j].value &&
          (gate_simd || !is_simd_counter(base.counters[i].name)))
        out.push_back(base.counters[i].name + ": " +
                      std::to_string(base.counters[i].value) + " -> " +
                      std::to_string(cur.counters[j].value));
      ++i;
      ++j;
    }
  }
  for (const auto& hb : base.histograms) {
    for (const auto& hc : cur.histograms) {
      if (hb.name != hc.name) continue;
      if (hb.count != hc.count || hb.sum != hc.sum || hb.p50 != hc.p50 ||
          hb.p95 != hc.p95 || hb.p99 != hc.p99)
        out.push_back(hb.name + ": {count " + std::to_string(hb.count) +
                      ", sum " + std::to_string(hb.sum) + "} -> {count " +
                      std::to_string(hc.count) + ", sum " +
                      std::to_string(hc.sum) + "}");
      break;
    }
  }
}

}  // namespace

CompareResult compare_reports(const PerfReport& baseline,
                              const PerfReport& current,
                              const CompareOptions& opts) {
  CompareResult res;
  res.baseline_simd_isa = baseline.simd_isa;
  res.current_simd_isa = current.simd_isa;
  const bool gate_counters =
      baseline.telemetry_compiled_in && current.telemetry_compiled_in;
  const bool gate_simd = res.simd_isa_matches();

  double log_sum = 0.0;
  int log_count = 0;

  // Both reports arrive sorted (loader and writer canonicalize); merge-walk
  // the union of workload names.
  std::size_t i = 0, j = 0;
  while (i < baseline.workloads.size() || j < current.workloads.size()) {
    const WorkloadResult* base =
        i < baseline.workloads.size() ? &baseline.workloads[i] : nullptr;
    const WorkloadResult* cur =
        j < current.workloads.size() ? &current.workloads[j] : nullptr;
    if (base != nullptr && cur != nullptr) {
      if (base->name < cur->name)
        cur = nullptr;
      else if (cur->name < base->name)
        base = nullptr;
    }

    WorkloadDelta d;
    if (base == nullptr || cur == nullptr) {
      d.name = base != nullptr ? base->name : cur->name;
      d.cls = DeltaClass::kMissing;
      d.counter_mismatches.push_back(
          base != nullptr ? "present only in baseline"
                          : "present only in current report");
      ++res.missing;
      if (base != nullptr) ++i;
      if (cur != nullptr) ++j;
      res.workloads.push_back(std::move(d));
      continue;
    }

    d.name = base->name;
    if (gate_counters)
      diff_counters(*base, *cur, gate_simd, d.counter_mismatches);
    if (base->timing.median_us > 0.0 && cur->timing.median_us > 0.0) {
      d.time_ratio = cur->timing.median_us / base->timing.median_us;
      log_sum += std::log(d.time_ratio);
      ++log_count;
    }

    if (!d.counter_mismatches.empty()) {
      d.cls = DeltaClass::kCounterRegression;
      ++res.counter_regressions;
    } else if (d.time_ratio == 1.0 || d.time_ratio == 0.0) {
      d.cls = DeltaClass::kMatch;
    } else if (d.time_ratio > 1.0 + opts.noise_band) {
      d.cls = DeltaClass::kTimingRegression;
      ++res.timing_regressions;
    } else if (d.time_ratio < 1.0 / (1.0 + opts.noise_band)) {
      d.cls = DeltaClass::kTimingImprovement;
      ++res.timing_improvements;
    } else {
      d.cls = DeltaClass::kNoise;
    }
    res.workloads.push_back(std::move(d));
    ++i;
    ++j;
  }

  if (log_count > 0)
    res.geomean_time_ratio = std::exp(log_sum / log_count);
  return res;
}

void print_comparison(std::ostream& os, const CompareResult& cmp,
                      const CompareOptions& opts) {
  os << "comparison vs baseline (noise band +/-"
     << static_cast<int>(opts.noise_band * 100.0) << "% on timing):\n";
  if (!cmp.simd_isa_matches())
    os << "  note: simd_isa differs (baseline " << cmp.baseline_simd_isa
       << ", current " << cmp.current_simd_isa
       << ") — exec.simd.* counters excluded from gating\n";
  for (const WorkloadDelta& d : cmp.workloads) {
    char ratio[32];
    if (d.time_ratio > 0.0)
      std::snprintf(ratio, sizeof(ratio), "%6.3fx", d.time_ratio);
    else
      std::snprintf(ratio, sizeof(ratio), "      -");
    os << "  " << std::left << std::setw(40) << d.name << std::right << " "
       << ratio << "  " << to_string(d.cls) << "\n";
    for (const std::string& m : d.counter_mismatches)
      os << "      " << m << "\n";
  }
  char geo[32];
  std::snprintf(geo, sizeof(geo), "%.3f", cmp.geomean_time_ratio);
  os << "geomean time ratio: " << geo << "x (advisory)\n";
  os << "counter regressions: " << cmp.counter_regressions
     << "  timing regressions: " << cmp.timing_regressions
     << "  timing improvements: " << cmp.timing_improvements
     << "  missing: " << cmp.missing << "\n";
  os << (cmp.hard_fail()
             ? "RESULT: FAIL (deterministic counter regression)\n"
             : "RESULT: OK (no deterministic regressions; timing deltas are "
               "advisory on this host)\n");
}

}  // namespace ctb::perfreport
