// ctb::telemetry — request-scoped trace contexts and the always-on flight
// recorder (DESIGN.md §13).
//
// A TraceContext is a 64-bit trace id plus a few request attributes. It is
// explicitly propagated: PlanService::get installs one for the duration of a
// lookup (adopting the caller's context when one is already active), the
// bench runners install one per request, and everything downstream —
// planner, PlanCache, split-K sweep, executors — reads the thread-current
// context when it records spans, histogram exemplars, or flight events.
// Propagation costs one thread-local read; there is no global lookup.
//
// The flight recorder is the postmortem half: a fixed-size, lock-free
// per-thread ring of recent structured events (plan decisions, deadline
// misses, quarantine transitions, validate/audit rejections, fallback
// activations, pack-cache staleness hits). Unlike counters and spans it is
// *always on* while compiled in — it does not consult set_enabled(), because
// its whole purpose is to still hold the last moments when something fails
// unexpectedly. Each record is a handful of relaxed atomic stores (O(ns));
// readers never block writers. Dumps happen on demand (flight_events /
// write_flight_json) and automatically on guard rejections and service
// quarantines when CTB_FLIGHT_DUMP_DIR names a directory.
//
// Under -DCTB_TELEMETRY=OFF everything here compiles out to no-op stubs,
// exactly like telemetry.hpp: trace ids are 0, rings do not exist, and the
// exporters emit valid empty documents so tools still build.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace ctb::telemetry {

/// Request-scoped correlation context. id == 0 means "no trace"; every
/// other value was minted by make_trace_id() and is unique in-process.
struct TraceContext {
  std::uint64_t id = 0;
  std::int32_t gemms = 0;     ///< request attribute: batch size
  const char* origin = "";    ///< string literal: "service", "bench", ...
  bool active() const { return id != 0; }
};

/// The structured event kinds the flight recorder understands. The catalog
/// is append-only (DESIGN.md §13 documents each kind's detail/a0/a1).
enum class FlightKind : std::int32_t {
  kServe = 0,           ///< service response; detail = serve state
  kPlanDecision,        ///< planner chose a heuristic; a0=blocks a1=tiles
  kCacheHit,            ///< plan-cache hit
  kCacheMiss,           ///< plan-cache miss
  kSplitK,              ///< split-K sweep ran; detail = chosen|rejected
  kDeadlineMiss,        ///< service deadline expired; a0 = deadline_us
  kQuarantine,          ///< signature quarantined; a0 = failure count
  kQuarantineRelease,   ///< quarantine lifted
  kGuardReject,         ///< validate/audit rejected a plan; detail = which
  kFallback,            ///< reference-GEMM fallback activated
  kPackStale,           ///< pack-cache staleness probe evicted an entry
  kExec,                ///< executor ran a plan; a0=blocks a1=tiles
  kUpgrade,             ///< degraded entry replaced by a full plan
};

const char* to_string(FlightKind kind);

/// One decoded flight-recorder event (a stable copy; `detail` points at the
/// instrumentation site's string literal).
struct FlightEventView {
  std::uint64_t trace = 0;
  FlightKind kind = FlightKind::kServe;
  int tid = 0;
  double t_us = 0;  ///< now_us() at record time (telemetry epoch)
  std::int64_t a0 = 0;
  std::int64_t a1 = 0;
  const char* detail = "";
};

/// 16-digit lowercase hex rendering of a trace id (the wire format used by
/// every exporter) and its inverse. parse_trace_id returns 0 on malformed
/// input.
std::string trace_id_hex(std::uint64_t id);
std::uint64_t parse_trace_id(const std::string& hex);

/// JSON flight dump: {"version":1,"events":[...]} with one event per line,
/// ordered by t_us. Works in every build (empty list -> empty document).
void write_flight_json(std::ostream& os,
                       const std::vector<FlightEventView>& events);

#ifdef CTB_TELEMETRY_ENABLED

/// Mints a fresh nonzero trace id: a splitmix64-mixed process-wide sequence
/// number, so ids are unique, well-distributed, and deterministic given
/// request order.
std::uint64_t make_trace_id();

/// The calling thread's current context ({} when none is installed).
TraceContext current_trace();

/// RAII installation of a TraceContext on the calling thread. The previous
/// context is restored on destruction, so service code can nest under a
/// caller's explicitly-propagated trace.
class ScopedTraceContext {
 public:
  /// Installs `ctx` unconditionally (callers re-entering a known trace —
  /// e.g. executing a served plan under the ServedPlan's trace id).
  explicit ScopedTraceContext(TraceContext ctx);

  /// Adopt-or-create: when a context is already active it is kept (the
  /// request is part of the caller's trace); otherwise a fresh id is minted
  /// with the given attributes. This is the form request entry points use.
  ScopedTraceContext(const char* origin_literal, std::int32_t gemms);

  ~ScopedTraceContext();
  ScopedTraceContext(const ScopedTraceContext&) = delete;
  ScopedTraceContext& operator=(const ScopedTraceContext&) = delete;

 private:
  TraceContext prev_;
  bool installed_ = false;
};

/// Records one event into the calling thread's ring, stamped with the
/// current trace (id 0 when none). `detail` must be a string literal.
/// Always on while compiled in; a handful of relaxed atomic stores.
void flight_record(FlightKind kind, const char* detail_literal,
                   std::int64_t a0 = 0, std::int64_t a1 = 0);

/// Snapshot of every thread's ring, ordered by t_us. Readers never block
/// writers: a slot being overwritten mid-read is detected via its sequence
/// word and skipped.
std::vector<FlightEventView> flight_events();

/// Invalidates all recorded events (tests isolate themselves with this).
void flight_clear();

/// Automatic postmortem dump: when CTB_FLIGHT_DUMP_DIR names a directory,
/// writes ctb_flight_<n>_<reason>.json there (at most 32 per process, so a
/// rejection storm cannot fill a disk) and returns the path; otherwise
/// returns "". Called on guard rejections and service quarantines.
std::string flight_autodump(const char* reason_literal);

#else  // !CTB_TELEMETRY_ENABLED — no-op stubs, mirroring telemetry.hpp.

constexpr std::uint64_t make_trace_id() { return 0; }
inline TraceContext current_trace() { return {}; }

class ScopedTraceContext {
 public:
  explicit ScopedTraceContext(TraceContext) {}
  ScopedTraceContext(const char*, std::int32_t) {}
  ScopedTraceContext(const ScopedTraceContext&) = delete;
  ScopedTraceContext& operator=(const ScopedTraceContext&) = delete;
};

inline void flight_record(FlightKind, const char*, std::int64_t = 0,
                          std::int64_t = 0) {}
inline std::vector<FlightEventView> flight_events() { return {}; }
inline void flight_clear() {}
inline std::string flight_autodump(const char*) { return {}; }

#endif  // CTB_TELEMETRY_ENABLED

}  // namespace ctb::telemetry

/// Statement macro for flight events; vanishes under CTB_TELEMETRY=OFF.
#ifdef CTB_TELEMETRY_ENABLED
#define CTB_TEL_FLIGHT(kind, detail, a0, a1)                          \
  ::ctb::telemetry::flight_record(::ctb::telemetry::FlightKind::kind, \
                                  detail, a0, a1)
#else
#define CTB_TEL_FLIGHT(kind, detail, a0, a1) \
  do {                                       \
  } while (0)
#endif
