// ctb::telemetry — scoped spans, named counters, and histograms for the
// plan pipeline (DESIGN.md §8 documents the taxonomy and the overhead
// contract).
//
// Three cost tiers:
//   * CTB_TELEMETRY=OFF (CMake)  — the macros below expand to nothing and
//     the inline stubs in this header carry no atomics and perform no
//     allocations; instrumented code compiles exactly as if the macros were
//     deleted. The snapshot/export entry points still link (they return an
//     empty snapshot) so tools build unchanged.
//   * compiled in, runtime-disabled (the default) — every instrumentation
//     site costs one relaxed atomic load and a predictable branch.
//   * enabled (set_enabled(true) or CTB_TELEMETRY=1 in the environment) —
//     counters are relaxed atomic adds; spans cost two steady_clock reads
//     and one push into a per-thread buffer, safe under parallel_for.
//
// Metric names are dotted string literals ("cache.hit", "plan.tiling").
// Span names must be string literals (or otherwise outlive the registry):
// events store the pointer, not a copy. The canonical names are
// pre-registered at startup so a snapshot always carries the full taxonomy,
// zero-valued where nothing fired.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#ifdef CTB_TELEMETRY_ENABLED
#include <atomic>
#endif

namespace ctb::telemetry {

/// One named monotonic counter in a snapshot.
struct CounterSample {
  std::string name;
  std::int64_t value = 0;
};

/// Histogram snapshot: count/sum/min/max plus power-of-two buckets; bucket i
/// counts values v with 2^(i-1) < v <= 2^i (bucket 0 counts v <= 1).
struct HistogramSample {
  /// One exemplar: the most recent sample recorded into `bucket` while a
  /// trace context was active (trace.hpp). Tail-bucket exemplars let a p99
  /// outlier in a metrics export link back to its flight-recorder trail.
  struct Exemplar {
    int bucket = 0;
    std::int64_t value = 0;
    std::uint64_t trace = 0;
  };

  std::string name;
  std::int64_t count = 0;
  std::int64_t sum = 0;
  std::int64_t min = 0;  ///< meaningful only when count > 0
  std::int64_t max = 0;
  std::vector<std::int64_t> buckets;  ///< trailing all-zero buckets trimmed
  std::vector<Exemplar> exemplars;    ///< at most one per bucket, ascending

  /// Deterministic percentile estimate from the power-of-two buckets: the
  /// upper bound (2^i) of the bucket holding the ceil(p/100 * count)-th
  /// recorded value, clamped into [min, max]. Exact whenever every value in
  /// that bucket equals its bound (counts of 0/1, single-valued metrics);
  /// otherwise an upper bound within the bucket's 2x resolution. Returns 0
  /// for an empty sample. Being derived from integer bucket counts, the
  /// result is bit-deterministic — perf reports may diff it exactly.
  double percentile(double p) const;
  double p50() const { return percentile(50.0); }
  double p95() const { return percentile(95.0); }
  double p99() const { return percentile(99.0); }
};

/// One completed span. `name` points at the instrumentation site's literal.
struct SpanEvent {
  const char* name = nullptr;
  int tid = 0;          ///< registry-assigned logical thread id
  double start_us = 0;  ///< relative to process telemetry epoch
  double dur_us = 0;
  std::uint64_t trace = 0;  ///< trace id active at record time (0 = none)
};

/// Point-in-time copy of everything the registry holds.
struct MetricsSnapshot {
  bool compiled_in = false;
  bool enabled = false;
  double taken_us = 0;  ///< now_us() when the snapshot was taken
  std::vector<CounterSample> counters;    // sorted by name
  std::vector<HistogramSample> histograms;  // sorted by name
  std::vector<SpanEvent> spans;           // sorted by start time
};

/// Copies the current registry state. Always safe to call (returns an empty
/// snapshot when telemetry is compiled out).
MetricsSnapshot snapshot();

/// What happened between two snapshots of the same registry: counter values
/// and histogram count/sum/buckets subtract element-wise (metrics absent
/// from `before` keep their `after` value); histogram min/max are rebuilt
/// as the bucket envelope of the delta'd counts (lifetime watermarks cannot
/// be subtracted, and keeping them would let history outside the window
/// leak into percentile()'s clamp) — so every delta statistic, percentiles
/// included, is a pure function of the window's own observations; spans are
/// the `after` spans that started at or after `before.taken_us`. This is
/// how the perf-report runner isolates one workload's deterministic work
/// counters without resetting global state.
MetricsSnapshot delta(const MetricsSnapshot& before,
                      const MetricsSnapshot& after);

/// Zeroes every counter and histogram and drops all recorded spans, keeping
/// registrations. Tests isolate themselves with this; no-op when compiled
/// out.
void reset();

/// JSON object {"version","enabled","counters","histograms","spans"} where
/// histograms carry deterministic p50/p95/p99 percentile estimates plus
/// per-bucket trace exemplars (schema version 3) and spans are aggregated
/// per name (count / total_us / max_us). Schema in DESIGN.md §8.
void write_metrics_json(std::ostream& os, const MetricsSnapshot& snap);

/// OpenMetrics/Prometheus text exposition of the snapshot: every counter as
/// a `ctb_<mangled>_total` sample and every histogram as the standard
/// _bucket/_sum/_count family, each carrying the canonical dotted name in a
/// name="..." label (dots/dashes mangle to underscores, so the label is the
/// round-trip source of truth). Bucket samples append OpenMetrics exemplars
/// (`# {trace_id="<hex>"} <value>`) where one was recorded. Ends with
/// `# EOF`. DESIGN.md §13 documents the mapping.
void write_openmetrics(std::ostream& os, const MetricsSnapshot& snap);

/// Parses the counter samples back out of an OpenMetrics exposition written
/// by write_openmetrics (the `_total{name="..."}` lines), in file order.
/// Tolerant of unrelated lines; used by tests to prove the export
/// round-trips the taxonomy and by ctb_trace to ingest metrics files.
std::vector<CounterSample> read_openmetrics_counters(std::istream& is);

/// Appends one chrome-trace event per span (plus a process_name metadata
/// record) under the given pid, each prefixed with ",\n" — for embedding in
/// an already-open "traceEvents" array alongside the simulator's schedule.
void append_chrome_trace_events(std::ostream& os, const MetricsSnapshot& snap,
                                int pid);

/// Standalone chrome://tracing file of the snapshot's spans.
void write_chrome_trace(std::ostream& os, const MetricsSnapshot& snap);

#ifdef CTB_TELEMETRY_ENABLED

/// Runtime master switch; relaxed-atomic read, safe from any thread.
bool enabled();
void set_enabled(bool on);

class Counter {
 public:
  void add(std::int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

class Histogram {
 public:
  static constexpr int kBuckets = 64;

  void record(std::int64_t v);
  std::int64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  std::int64_t sum() const { return sum_.load(std::memory_order_relaxed); }

 private:
  friend MetricsSnapshot snapshot();
  friend void reset();
  std::atomic<std::int64_t> count_{0};
  std::atomic<std::int64_t> sum_{0};
  // Sentinels keep the CAS update loops initialization-free (and race-free
  // on the first concurrent records); snapshot() masks them while empty.
  std::atomic<std::int64_t> min_{INT64_MAX};
  std::atomic<std::int64_t> max_{INT64_MIN};
  std::atomic<std::int64_t> buckets_[kBuckets]{};
  // Per-bucket exemplars: the latest (value, trace) recorded while a trace
  // context was active. trace == 0 marks an empty slot. Last-writer-wins
  // relaxed stores — an exemplar is a representative sample, not a count.
  std::atomic<std::int64_t> ex_value_[kBuckets]{};
  std::atomic<std::uint64_t> ex_trace_[kBuckets]{};
};

/// Returns the counter/histogram registered under `name`, creating it on
/// first use. References stay valid for the process lifetime; lookups are
/// mutex-guarded, so instrumentation sites cache the reference in a static
/// local (see CTB_TEL_COUNT).
Counter& counter(const char* name);
Histogram& histogram(const char* name);

/// Microseconds since the telemetry epoch (registry construction).
double now_us();

/// Records a completed span into the calling thread's buffer. Prefer
/// CTB_TEL_SPAN; exposed for tests and for spans whose lifetime does not
/// match a C++ scope.
void record_span(const char* literal_name, double start_us, double dur_us);

/// RAII span. Does nothing (one relaxed load) when telemetry is disabled at
/// construction; a span started while enabled is recorded even if telemetry
/// is disabled before it closes, keeping trace files self-consistent.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* literal_name) {
    if (enabled()) {
      name_ = literal_name;
      start_us_ = now_us();
    }
  }
  ~ScopedSpan() {
    if (name_ != nullptr) record_span(name_, start_us_, now_us() - start_us_);
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* name_ = nullptr;
  double start_us_ = 0;
};

#else  // !CTB_TELEMETRY_ENABLED — no-op stubs: no atomics, no allocations.

constexpr bool enabled() { return false; }
inline void set_enabled(bool) {}

struct Counter {
  void add(std::int64_t) {}
  static constexpr std::int64_t value() { return 0; }
};

struct Histogram {
  void record(std::int64_t) {}
  static constexpr std::int64_t count() { return 0; }
  static constexpr std::int64_t sum() { return 0; }
};

inline Counter& counter(const char*) {
  static Counter stub;
  return stub;
}
inline Histogram& histogram(const char*) {
  static Histogram stub;
  return stub;
}
constexpr double now_us() { return 0.0; }
inline void record_span(const char*, double, double) {}

class ScopedSpan {
 public:
  explicit ScopedSpan(const char*) {}
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
};

#endif  // CTB_TELEMETRY_ENABLED

}  // namespace ctb::telemetry

// Instrumentation macros. All three are statements; under CTB_TELEMETRY=OFF
// they vanish entirely.
#ifdef CTB_TELEMETRY_ENABLED

#define CTB_TEL_CONCAT_INNER(a, b) a##b
#define CTB_TEL_CONCAT(a, b) CTB_TEL_CONCAT_INNER(a, b)

/// Opens a span covering the rest of the enclosing scope.
#define CTB_TEL_SPAN(name) \
  ::ctb::telemetry::ScopedSpan CTB_TEL_CONCAT(ctb_tel_span_, __LINE__)(name)

/// Adds `delta` to the named counter. The registry lookup happens once per
/// site (static local), unconditionally, so a counter appears in snapshots
/// as soon as its code path runs even if telemetry was disabled at the time.
#define CTB_TEL_COUNT(name, delta)                            \
  do {                                                        \
    static ::ctb::telemetry::Counter& ctb_tel_c_ =            \
        ::ctb::telemetry::counter(name);                      \
    if (::ctb::telemetry::enabled())                          \
      ctb_tel_c_.add(static_cast<std::int64_t>(delta));       \
  } while (0)

/// Records `value` into the named histogram.
#define CTB_TEL_HIST(name, value)                             \
  do {                                                        \
    static ::ctb::telemetry::Histogram& ctb_tel_h_ =          \
        ::ctb::telemetry::histogram(name);                    \
    if (::ctb::telemetry::enabled())                          \
      ctb_tel_h_.record(static_cast<std::int64_t>(value));    \
  } while (0)

#else

#define CTB_TEL_SPAN(name) \
  do {                     \
  } while (0)
#define CTB_TEL_COUNT(name, delta) \
  do {                             \
  } while (0)
#define CTB_TEL_HIST(name, value) \
  do {                            \
  } while (0)

#endif  // CTB_TELEMETRY_ENABLED
