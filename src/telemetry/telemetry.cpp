#include "telemetry/telemetry.hpp"

#include <algorithm>
#include <cstdlib>
#include <istream>
#include <map>
#include <ostream>

#include "telemetry/trace.hpp"

#ifdef CTB_TELEMETRY_ENABLED
#include <chrono>
#include <memory>
#include <mutex>
#endif

namespace ctb::telemetry {

namespace {

// The canonical taxonomy (DESIGN.md §8). Pre-registered so every snapshot
// carries the full metric set, zero-valued where nothing fired — consumers
// can rely on "cache.hit" existing instead of treating absence as zero.
constexpr const char* kCoreCounters[] = {
    "plan.policy.threshold-only",
    "plan.policy.binary-only",
    "plan.policy.auto-offline",
    "plan.policy.random-forest",
    "plan.policy.tiling-only",
    "plan.heuristic.threshold",
    "plan.heuristic.binary",
    "plan.heuristic.none",
    "plan.heuristic.packed",
    "plan.rf.choice.threshold",
    "plan.rf.choice.binary",
    "plan.auto.threshold_wins",
    "plan.auto.binary_wins",
    "tiling.candidates",
    "tiling.iterations",
    "tiling.fallback_128",
    "cache.hit",
    "cache.miss",
    "cache.evict",
    "exec.plan_runs",
    "exec.blocks",
    "exec.tiles",
    "exec.flops",
    "exec.fallback",
    "exec.epilogue.fused",
    "exec.epilogue.ops",
    "exec.c.passes",
    "exec.dispatch.specialized",
    "exec.dispatch.generic",
    "exec.pack.panels",
    "exec.pack.bytes",
    "exec.pack.reuse",
    "exec.pack.cache.hit",
    "exec.pack.cache.miss",
    "exec.pack.cache.evict",
    "exec.pack.cache.stale",
    "exec.pack.cache.invalidate",
    "exec.simd.avx512",
    "exec.simd.avx2",
    "exec.simd.neon",
    "exec.simd.scalar",
    "exec.splitk.tiles",
    "exec.splitk.groups",
    "plan.splitk.considered",
    "plan.splitk.chosen",
    "plan.grouped.dispatches",
    "plan.grouped.gemms",
    "plan.grouped.fused_ops",
    "service.admitted",
    "service.hit",
    "service.miss",
    "service.filter.reject",
    "service.degraded",
    "service.upgraded",
    "service.retried",
    "service.quarantined",
    "service.deadline_miss",
    "sim.kernels",
    "sim.blocks",
    "sim.bubble_blocks",
    "tel.spans.dropped",
};

constexpr const char* kCoreHistograms[] = {
    "service.lookup_us",
    "tiling.tlp",
    "batching.tiles_per_block",
    "batching.sum_k_per_block",
    "sim.busy_pct",
    "sim.resident_blocks",
    "sim.hide_pct",
};

void write_json_escaped(std::ostream& os, const std::string& s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20)
          os << ' ';  // control characters never appear in metric names
        else
          os << c;
    }
  }
  os << '"';
}

}  // namespace

#ifdef CTB_TELEMETRY_ENABLED

namespace {

// Per-thread span storage. Buffers are owned by the registry (shared_ptr)
// and only borrowed by threads, so snapshots after a worker thread exits —
// common with the std::thread parallel_for backend under TSan — still see
// its spans. A buffer freed by a dying thread returns to a free list and is
// adopted by the next new thread; events carry their own tid, so adoption
// never misattributes an already-recorded span.
struct SpanBuffer {
  std::mutex mu;  // uncontended in steady state: only the owner pushes
  std::vector<SpanEvent> events;
};

// Hard cap per buffer so an instrumented inner loop cannot grow memory
// without bound; overflow is counted, never silent (DESIGN.md §8).
constexpr std::size_t kMaxSpansPerBuffer = 1 << 16;

struct Registry {
  std::atomic<bool> enabled{false};
  std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();

  std::mutex mu;  // guards the three containers below
  std::map<std::string, std::unique_ptr<Counter>> counters;
  std::map<std::string, std::unique_ptr<Histogram>> histograms;
  std::vector<std::shared_ptr<SpanBuffer>> buffers;
  std::vector<std::shared_ptr<SpanBuffer>> free_buffers;
  std::atomic<int> next_tid{0};
  Counter* dropped_spans = nullptr;

  Registry() {
    for (const char* name : kCoreCounters)
      counters.emplace(name, std::make_unique<Counter>());
    for (const char* name : kCoreHistograms)
      histograms.emplace(name, std::make_unique<Histogram>());
    dropped_spans = counters.at("tel.spans.dropped").get();
    const char* env = std::getenv("CTB_TELEMETRY");
    if (env != nullptr) {
      const std::string v(env);
      if (v == "1" || v == "on" || v == "true")
        enabled.store(true, std::memory_order_relaxed);
    }
  }
};

// Leaked intentionally: worker threads may record spans (and return their
// buffers) during static destruction, after main() exits.
Registry& registry() {
  static Registry* r = new Registry;
  return *r;
}

// Thread-local handle: acquires a buffer + logical tid on first span of the
// thread, returns the buffer for adoption on thread exit.
struct BufferHandle {
  std::shared_ptr<SpanBuffer> buf;
  int tid = 0;

  BufferHandle() {
    Registry& r = registry();
    const std::lock_guard<std::mutex> lock(r.mu);
    if (!r.free_buffers.empty()) {
      buf = std::move(r.free_buffers.back());
      r.free_buffers.pop_back();
    } else {
      buf = std::make_shared<SpanBuffer>();
      r.buffers.push_back(buf);
    }
    tid = r.next_tid.fetch_add(1, std::memory_order_relaxed);
  }
  ~BufferHandle() {
    Registry& r = registry();
    const std::lock_guard<std::mutex> lock(r.mu);
    r.free_buffers.push_back(std::move(buf));
  }
};

}  // namespace

bool enabled() {
  return registry().enabled.load(std::memory_order_relaxed);
}

void set_enabled(bool on) {
  registry().enabled.store(on, std::memory_order_relaxed);
}

void Histogram::record(std::int64_t v) {
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  std::int64_t cur = min_.load(std::memory_order_relaxed);
  while (v < cur &&
         !min_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
  cur = max_.load(std::memory_order_relaxed);
  while (v > cur &&
         !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
  int b = 0;
  for (std::int64_t bound = 1; b < kBuckets - 1 && v > bound; ++b)
    bound = bound <= (INT64_MAX >> 1) ? bound << 1 : INT64_MAX;
  buckets_[b].fetch_add(1, std::memory_order_relaxed);
  // Exemplar: remember this sample's trace so exports can link the bucket
  // (a p99 outlier, say) back to its flight-recorder trail.
  const std::uint64_t trace = current_trace().id;
  if (trace != 0) {
    ex_value_[b].store(v, std::memory_order_relaxed);
    ex_trace_[b].store(trace, std::memory_order_relaxed);
  }
}

Counter& counter(const char* name) {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mu);
  auto it = r.counters.find(name);
  if (it == r.counters.end())
    it = r.counters.emplace(name, std::make_unique<Counter>()).first;
  return *it->second;
}

Histogram& histogram(const char* name) {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mu);
  auto it = r.histograms.find(name);
  if (it == r.histograms.end())
    it = r.histograms.emplace(name, std::make_unique<Histogram>()).first;
  return *it->second;
}

double now_us() {
  const auto dt = std::chrono::steady_clock::now() - registry().epoch;
  return std::chrono::duration<double, std::micro>(dt).count();
}

void record_span(const char* literal_name, double start_us, double dur_us) {
  thread_local BufferHandle handle;
  SpanBuffer& buf = *handle.buf;
  const std::lock_guard<std::mutex> lock(buf.mu);
  if (buf.events.size() >= kMaxSpansPerBuffer) {
    registry().dropped_spans->add(1);
    return;
  }
  buf.events.push_back(SpanEvent{literal_name, handle.tid, start_us, dur_us,
                                 current_trace().id});
}

MetricsSnapshot snapshot() {
  Registry& r = registry();
  MetricsSnapshot snap;
  snap.compiled_in = true;
  snap.enabled = enabled();
  snap.taken_us = now_us();
  const std::lock_guard<std::mutex> lock(r.mu);
  snap.counters.reserve(r.counters.size());
  for (const auto& [name, c] : r.counters)
    snap.counters.push_back(CounterSample{name, c->value()});
  snap.histograms.reserve(r.histograms.size());
  for (const auto& [name, h] : r.histograms) {
    HistogramSample s;
    s.name = name;
    s.count = h->count_.load(std::memory_order_relaxed);
    s.sum = h->sum_.load(std::memory_order_relaxed);
    if (s.count > 0) {
      s.min = h->min_.load(std::memory_order_relaxed);
      s.max = h->max_.load(std::memory_order_relaxed);
    }
    int last = -1;
    for (int b = 0; b < Histogram::kBuckets; ++b)
      if (h->buckets_[b].load(std::memory_order_relaxed) > 0) last = b;
    for (int b = 0; b <= last; ++b)
      s.buckets.push_back(h->buckets_[b].load(std::memory_order_relaxed));
    for (int b = 0; b < Histogram::kBuckets; ++b) {
      const std::uint64_t trace =
          h->ex_trace_[b].load(std::memory_order_relaxed);
      if (trace == 0) continue;
      s.exemplars.push_back(HistogramSample::Exemplar{
          b, h->ex_value_[b].load(std::memory_order_relaxed), trace});
    }
    snap.histograms.push_back(std::move(s));
  }
  for (const auto& buf : r.buffers) {
    const std::lock_guard<std::mutex> buf_lock(buf->mu);
    snap.spans.insert(snap.spans.end(), buf->events.begin(),
                      buf->events.end());
  }
  std::stable_sort(snap.spans.begin(), snap.spans.end(),
                   [](const SpanEvent& a, const SpanEvent& b) {
                     return a.start_us < b.start_us;
                   });
  return snap;
}

void reset() {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mu);
  for (auto& [name, c] : r.counters) c->add(-c->value());
  for (auto& [name, h] : r.histograms) {
    h->count_.store(0, std::memory_order_relaxed);
    h->sum_.store(0, std::memory_order_relaxed);
    h->min_.store(INT64_MAX, std::memory_order_relaxed);
    h->max_.store(INT64_MIN, std::memory_order_relaxed);
    for (auto& b : h->buckets_) b.store(0, std::memory_order_relaxed);
    for (auto& v : h->ex_value_) v.store(0, std::memory_order_relaxed);
    for (auto& t : h->ex_trace_) t.store(0, std::memory_order_relaxed);
  }
  for (const auto& buf : r.buffers) {
    const std::lock_guard<std::mutex> buf_lock(buf->mu);
    buf->events.clear();
  }
}

#else  // !CTB_TELEMETRY_ENABLED

MetricsSnapshot snapshot() { return {}; }
void reset() {}

#endif  // CTB_TELEMETRY_ENABLED

// ---- Sample-level helpers and exporters (shared between the real and the
// stub build: an empty snapshot serializes to a valid, empty document). ----

double HistogramSample::percentile(double p) const {
  if (count <= 0) return 0.0;
  if (p <= 0.0) return static_cast<double>(min);
  // Nearest-rank on the bucket cumulative counts.
  std::int64_t rank = static_cast<std::int64_t>(p / 100.0 *
                                                static_cast<double>(count));
  if (static_cast<double>(rank) * 100.0 < p * static_cast<double>(count))
    ++rank;  // ceil without float round-off on exact multiples
  if (rank < 1) rank = 1;
  if (rank > count) rank = count;
  std::int64_t cum = 0;
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    cum += buckets[b];
    if (cum >= rank) {
      // Upper bound of bucket b is 2^b (bucket 0 holds v <= 1); clamp into
      // the recorded [min, max] so single-valued and edge samples are exact.
      const std::int64_t bound =
          b >= 62 ? INT64_MAX : (std::int64_t{1} << b);
      return static_cast<double>(std::min(max, std::max(min, bound)));
    }
  }
  return static_cast<double>(max);  // trailing buckets trimmed
}

MetricsSnapshot delta(const MetricsSnapshot& before,
                      const MetricsSnapshot& after) {
  MetricsSnapshot d;
  d.compiled_in = after.compiled_in;
  d.enabled = after.enabled;
  d.taken_us = after.taken_us;

  auto counter_before = [&](const std::string& name) -> std::int64_t {
    for (const CounterSample& c : before.counters)
      if (c.name == name) return c.value;
    return 0;
  };
  d.counters.reserve(after.counters.size());
  for (const CounterSample& c : after.counters)
    d.counters.push_back(CounterSample{c.name, c.value - counter_before(c.name)});

  auto hist_before = [&](const std::string& name) -> const HistogramSample* {
    for (const HistogramSample& h : before.histograms)
      if (h.name == name) return &h;
    return nullptr;
  };
  d.histograms.reserve(after.histograms.size());
  for (const HistogramSample& h : after.histograms) {
    HistogramSample out = h;
    if (const HistogramSample* b = hist_before(h.name); b != nullptr) {
      out.count -= b->count;
      out.sum -= b->sum;
      for (std::size_t i = 0; i < out.buckets.size(); ++i)
        if (i < b->buckets.size()) out.buckets[i] -= b->buckets[i];
      while (!out.buckets.empty() && out.buckets.back() == 0)
        out.buckets.pop_back();
    }
    // Min/max are lifetime watermarks — they cannot be subtracted, and
    // keeping `after`'s values would make percentile() on a delta depend on
    // observations outside the window (the clamp would tighten or widen with
    // unrelated history). Rebuild a bucket-envelope [min, max] instead, so
    // every delta statistic is a pure function of the window's own bucket
    // counts. perfreport's cross-run counter gating relies on this.
    std::size_t lo = out.buckets.size(), hi = 0;
    for (std::size_t i = 0; i < out.buckets.size(); ++i)
      if (out.buckets[i] > 0) {
        if (lo == out.buckets.size()) lo = i;
        hi = i;
      }
    if (out.count <= 0 || lo == out.buckets.size()) {
      out.min = 0;
      out.max = 0;
    } else {
      // Bucket i holds 2^(i-1) < v <= 2^i (bucket 0: v <= 1).
      out.min = lo == 0 ? 0 : (std::int64_t{1} << (lo - 1)) + 1;
      out.max = hi >= 62 ? INT64_MAX : (std::int64_t{1} << hi);
    }
    // Exemplars are last-writer-wins samples, not subtractable; keep only
    // those whose bucket saw activity inside the window, so a delta never
    // advertises a trace from outside it.
    std::vector<HistogramSample::Exemplar> kept;
    for (const HistogramSample::Exemplar& e : out.exemplars)
      if (static_cast<std::size_t>(e.bucket) < out.buckets.size() &&
          out.buckets[static_cast<std::size_t>(e.bucket)] > 0)
        kept.push_back(e);
    out.exemplars = std::move(kept);
    d.histograms.push_back(std::move(out));
  }

  d.spans.reserve(after.spans.size());
  for (const SpanEvent& s : after.spans)
    if (s.start_us >= before.taken_us) d.spans.push_back(s);
  return d;
}

void write_metrics_json(std::ostream& os, const MetricsSnapshot& snap) {
  os << "{\n\"version\":3,\n\"compiled_in\":"
     << (snap.compiled_in ? "true" : "false")
     << ",\n\"enabled\":" << (snap.enabled ? "true" : "false")
     << ",\n\"counters\":{";
  bool first = true;
  for (const CounterSample& c : snap.counters) {
    os << (first ? "\n" : ",\n");
    first = false;
    write_json_escaped(os, c.name);
    os << ":" << c.value;
  }
  os << "\n},\n\"histograms\":{";
  first = true;
  for (const HistogramSample& h : snap.histograms) {
    os << (first ? "\n" : ",\n");
    first = false;
    write_json_escaped(os, h.name);
    os << ":{\"count\":" << h.count << ",\"sum\":" << h.sum
       << ",\"min\":" << h.min << ",\"max\":" << h.max
       << ",\"p50\":" << static_cast<std::int64_t>(h.p50())
       << ",\"p95\":" << static_cast<std::int64_t>(h.p95())
       << ",\"p99\":" << static_cast<std::int64_t>(h.p99())
       << ",\"buckets\":[";
    for (std::size_t b = 0; b < h.buckets.size(); ++b)
      os << (b == 0 ? "" : ",") << h.buckets[b];
    os << "],\"exemplars\":[";
    for (std::size_t e = 0; e < h.exemplars.size(); ++e) {
      const HistogramSample::Exemplar& ex = h.exemplars[e];
      os << (e == 0 ? "" : ",") << "{\"bucket\":" << ex.bucket
         << ",\"value\":" << ex.value << ",\"trace\":\""
         << trace_id_hex(ex.trace) << "\"}";
    }
    os << "]}";
  }
  os << "\n},\n\"spans\":{";
  // Aggregate spans per name; the raw events belong in the chrome trace.
  std::map<std::string, std::pair<std::int64_t, std::pair<double, double>>>
      agg;  // name -> {count, {total_us, max_us}}
  for (const SpanEvent& e : snap.spans) {
    auto& slot = agg[e.name];
    slot.first += 1;
    slot.second.first += e.dur_us;
    slot.second.second = std::max(slot.second.second, e.dur_us);
  }
  first = true;
  for (const auto& [name, slot] : agg) {
    os << (first ? "\n" : ",\n");
    first = false;
    write_json_escaped(os, name);
    os << ":{\"count\":" << slot.first
       << ",\"total_us\":" << slot.second.first
       << ",\"max_us\":" << slot.second.second << "}";
  }
  os << "\n}\n}\n";
}

void append_chrome_trace_events(std::ostream& os, const MetricsSnapshot& snap,
                                int pid) {
  os << ",\n{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << pid
     << ",\"args\":{\"name\":\"ctb host\"}}";
  for (const SpanEvent& e : snap.spans) {
    os << ",\n{\"name\":";
    write_json_escaped(os, e.name);
    os << ",\"ph\":\"X\",\"cat\":\"ctb\",\"pid\":" << pid
       << ",\"tid\":" << e.tid << ",\"ts\":" << e.start_us
       << ",\"dur\":" << e.dur_us;
    if (e.trace != 0)
      os << ",\"args\":{\"trace\":\"" << trace_id_hex(e.trace) << "\"}";
    os << "}";
  }
}

void write_chrome_trace(std::ostream& os, const MetricsSnapshot& snap) {
  os << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n"
     << "{\"name\":\"clock_sync\",\"ph\":\"M\",\"pid\":0,"
        "\"args\":{\"source\":\"ctb.telemetry\"}}";
  append_chrome_trace_events(os, snap, 0);
  os << "\n]}\n";
}

// ---- OpenMetrics/Prometheus text exposition (DESIGN.md §13) ----

namespace {

// Prometheus metric names allow [a-zA-Z0-9_:]; the canonical dotted names
// mangle dots and dashes to underscores. The mangling is lossy (dots and
// dashes collide), so every sample also carries the dotted original in a
// name="..." label — that label, not the family name, is what round-trips.
std::string openmetrics_family(const std::string& name) {
  std::string out = "ctb_";
  for (char c : name)
    out += (c == '.' || c == '-') ? '_' : c;
  return out;
}

// Upper bound of power-of-two bucket b, as an OpenMetrics `le` label value.
std::string bucket_le(std::size_t b) {
  if (b >= 62) return "+Inf";
  return std::to_string(std::int64_t{1} << b);
}

}  // namespace

void write_openmetrics(std::ostream& os, const MetricsSnapshot& snap) {
  for (const CounterSample& c : snap.counters) {
    const std::string fam = openmetrics_family(c.name);
    os << "# TYPE " << fam << " counter\n";
    os << fam << "_total{name=\"" << c.name << "\"} " << c.value << "\n";
  }
  for (const HistogramSample& h : snap.histograms) {
    const std::string fam = openmetrics_family(h.name);
    os << "# TYPE " << fam << " histogram\n";
    auto exemplar_for = [&](std::size_t b) -> const HistogramSample::Exemplar* {
      for (const HistogramSample::Exemplar& e : h.exemplars)
        if (static_cast<std::size_t>(e.bucket) == b) return &e;
      return nullptr;
    };
    std::int64_t cum = 0;
    for (std::size_t b = 0; b < h.buckets.size(); ++b) {
      cum += h.buckets[b];
      os << fam << "_bucket{name=\"" << h.name << "\",le=\"" << bucket_le(b)
         << "\"} " << cum;
      if (const HistogramSample::Exemplar* e = exemplar_for(b))
        os << " # {trace_id=\"" << trace_id_hex(e->trace) << "\"} "
           << e->value;
      os << "\n";
    }
    os << fam << "_bucket{name=\"" << h.name << "\",le=\"+Inf\"} " << h.count
       << "\n";
    os << fam << "_sum{name=\"" << h.name << "\"} " << h.sum << "\n";
    os << fam << "_count{name=\"" << h.name << "\"} " << h.count << "\n";
  }
  os << "# EOF\n";
}

std::vector<CounterSample> read_openmetrics_counters(std::istream& is) {
  std::vector<CounterSample> out;
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    const std::size_t brace = line.find("_total{name=\"");
    if (brace == std::string::npos) continue;
    const std::size_t name_begin = brace + 13;
    const std::size_t name_end = line.find('"', name_begin);
    if (name_end == std::string::npos) continue;
    const std::size_t value_begin = line.find("} ", name_end);
    if (value_begin == std::string::npos) continue;
    CounterSample c;
    c.name = line.substr(name_begin, name_end - name_begin);
    c.value = std::strtoll(line.c_str() + value_begin + 2, nullptr, 10);
    out.push_back(std::move(c));
  }
  return out;
}

}  // namespace ctb::telemetry
