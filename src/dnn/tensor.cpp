#include "dnn/tensor.hpp"

#include <cmath>

namespace ctb {

void fill_random(Tensor4& t, Rng& rng, float lo, float hi) {
  for (float& x : t.flat()) x = rng.uniform_float(lo, hi);
}

float max_abs_diff(const Tensor4& a, const Tensor4& b) {
  CTB_CHECK(a.same_shape(b));
  float worst = 0.0f;
  const auto fa = a.flat();
  const auto fb = b.flat();
  for (std::size_t i = 0; i < fa.size(); ++i)
    worst = std::max(worst, std::fabs(fa[i] - fb[i]));
  return worst;
}

}  // namespace ctb
