#include "dnn/implicit_gemm.hpp"

#include "core/tiling_engine.hpp"
#include "dnn/im2col.hpp"
#include "util/assert.hpp"

namespace ctb {

GemmOperands implicit_conv_operands(const ConvShape& shape,
                                    const Tensor4& input,
                                    const Matrixf& filters, Matrixf& out) {
  CTB_CHECK_MSG(input.c() == shape.in_c && input.h() == shape.in_h &&
                    input.w() == shape.in_w,
                "input tensor does not match conv shape " << shape.name);
  const GemmDims d = shape.gemm_dims(input.n());
  CTB_CHECK(static_cast<int>(filters.rows()) == d.m);
  CTB_CHECK(static_cast<int>(filters.cols()) == d.k);
  CTB_CHECK(static_cast<int>(out.rows()) == d.m);
  CTB_CHECK(static_cast<int>(out.cols()) == d.n);

  GemmOperands g;
  g.dims = d;
  g.a = filters.data();
  g.c = out.data();
  // The implicit B(k, j): decode k into (channel, kh, kw) and j into
  // (image, oh, ow) with the same ordering as im2col, then read the input
  // (or zero for padding taps). The executors call this gather concurrently
  // from many host threads, so it must stay a pure read: the shape is
  // captured by value and the input tensor by pointer-to-const, and the
  // lambda body only reads through them.
  const ConvShape s = shape;  // capture by value: plain shape data
  const Tensor4* const in = &input;
  const int oh = s.out_h();
  const int ow = s.out_w();
  g.b_gather = [s, in, oh, ow](int k, int j) -> float {
    const int kw = k % s.kernel;
    const int kh = (k / s.kernel) % s.kernel;
    const int c = k / (s.kernel * s.kernel);
    const int x = j % ow;
    const int y = (j / ow) % oh;
    const int n = j / (ow * oh);
    const int iy = y * s.stride - s.pad + kh;
    const int ix = x * s.stride - s.pad + kw;
    if (iy < 0 || iy >= s.in_h || ix < 0 || ix >= s.in_w) return 0.0f;
    return in->at(n, c, iy, ix);
  };
  return g;
}

Tensor4 conv_forward_implicit(const ConvShape& shape, const Tensor4& input,
                              const Matrixf& filters) {
  const GemmDims d = shape.gemm_dims(input.n());
  Matrixf out(static_cast<std::size_t>(d.m), static_cast<std::size_t>(d.n));
  const GemmOperands g = implicit_conv_operands(shape, input, filters, out);
  // Use the same strategy the tiling engine would choose for this GEMM
  // alone, so results are comparable with the explicit path.
  const TilingResult tiling =
      select_tiling(std::span<const GemmDims>(&d, 1), TilingConfig{});
  run_single_gemm(*tiling.per_gemm[0], g, 1.0f, 0.0f);
  return col2im_output(shape, input.n(), out);
}

std::vector<Tensor4> conv_batch_implicit(
    const std::vector<const ConvShape*>& shapes,
    const std::vector<const Tensor4*>& inputs,
    const std::vector<const Matrixf*>& filters,
    const PlannerConfig& config) {
  CTB_CHECK(shapes.size() == inputs.size() &&
            inputs.size() == filters.size());
  CTB_CHECK(!shapes.empty());

  std::vector<GemmDims> dims(shapes.size());
  std::vector<Matrixf> outs(shapes.size());
  std::vector<GemmOperands> ops(shapes.size());
  for (std::size_t i = 0; i < shapes.size(); ++i) {
    dims[i] = shapes[i]->gemm_dims(inputs[i]->n());
    outs[i] = Matrixf(static_cast<std::size_t>(dims[i].m),
                      static_cast<std::size_t>(dims[i].n));
    ops[i] = implicit_conv_operands(*shapes[i], *inputs[i], *filters[i],
                                    outs[i]);
  }

  const BatchedGemmPlanner planner(config);
  const PlanSummary summary = planner.plan(dims);
  validate_plan(summary.plan, dims);
  execute_plan(summary.plan, ops, 1.0f, 0.0f);

  std::vector<Tensor4> tensors;
  tensors.reserve(shapes.size());
  for (std::size_t i = 0; i < shapes.size(); ++i)
    tensors.push_back(col2im_output(*shapes[i], inputs[i]->n(), outs[i]));
  return tensors;
}

double im2col_materialization_us(const GpuArch& arch, const ConvShape& shape,
                                 int batch) {
  const GemmDims d = shape.gemm_dims(batch);
  // Write the K x N column matrix once and read it back once during the
  // GEMM; the write is the part the implicit path avoids (the read becomes
  // the gather). Charge the write at DRAM bandwidth plus a kernel launch.
  const double bytes = static_cast<double>(d.k) * d.n * 4.0;
  return arch.kernel_launch_us + bytes / (arch.dram_bw_gbps * 1e3);
}

}  // namespace ctb
