#include "dnn/grouped.hpp"

#include "core/epilogue.hpp"
#include "dnn/im2col.hpp"
#include "telemetry/telemetry.hpp"
#include "util/assert.hpp"

namespace ctb {

std::vector<Tensor4> grouped_conv_forward(std::span<const GroupedConv> convs,
                                          const PlannerConfig& config) {
  CTB_CHECK_MSG(!convs.empty(), "empty grouped dispatch");
  const std::size_t n = convs.size();
  std::vector<Matrixf> cols(n);
  std::vector<Matrixf> outs(n);
  std::vector<GemmEntry> entries(n);
  long long fused_ops = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const GroupedConv& gc = convs[i];
    CTB_CHECK_MSG(gc.shape != nullptr && gc.input != nullptr &&
                      gc.filters != nullptr,
                  "grouped conv " << i << " has a null member");
    cols[i] = im2col(*gc.shape, *gc.input);
    const GemmDims d = gc.shape->gemm_dims(gc.input->n());
    outs[i] = Matrixf(static_cast<std::size_t>(d.m),
                      static_cast<std::size_t>(d.n));
    GemmEntry& e = entries[i];
    e.a = gc.filters;
    e.b = &cols[i];
    e.c = &outs[i];
    if (!gc.bias.empty()) {
      // GEMM rows are output channels (M = out_c), so the per-channel bias
      // is exactly the epilogue's per-row bias vector.
      CTB_CHECK_MSG(static_cast<int>(gc.bias.size()) == gc.shape->out_c,
                    "grouped conv " << i << " bias holds " << gc.bias.size()
                                    << " values for " << gc.shape->out_c
                                    << " output channels");
      e.epilogue = epilogue_push(e.epilogue, EpilogueOp::kBias);
      e.epilogue_args.bias = gc.bias.data();
      e.epilogue_args.bias_len = static_cast<int>(gc.bias.size());
    }
    if (gc.relu) e.epilogue = epilogue_push(e.epilogue, EpilogueOp::kRelu);
    fused_ops += epilogue_num_ops(e.epilogue);
  }
  CTB_TEL_COUNT("plan.grouped.dispatches", 1);
  CTB_TEL_COUNT("plan.grouped.gemms", static_cast<std::int64_t>(n));
  CTB_TEL_COUNT("plan.grouped.fused_ops", fused_ops);
  batched_gemm(entries, 1.0f, 0.0f, config);

  std::vector<Tensor4> tensors;
  tensors.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    tensors.push_back(
        col2im_output(*convs[i].shape, convs[i].input->n(), outs[i]));
  return tensors;
}

}  // namespace ctb
