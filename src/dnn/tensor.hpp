// Minimal NCHW tensor for the GoogleNet case study (paper Section 7.3).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace ctb {

/// Dense float tensor in NCHW layout.
class Tensor4 {
 public:
  Tensor4() = default;
  Tensor4(int n, int c, int h, int w)
      : n_(n), c_(c), h_(h), w_(w),
        data_(static_cast<std::size_t>(n) * c * h * w, 0.0f) {
    CTB_CHECK(n > 0 && c > 0 && h > 0 && w > 0);
  }

  int n() const noexcept { return n_; }
  int c() const noexcept { return c_; }
  int h() const noexcept { return h_; }
  int w() const noexcept { return w_; }
  std::size_t size() const noexcept { return data_.size(); }

  float& at(int n, int c, int h, int w) {
    return data_[index(n, c, h, w)];
  }
  float at(int n, int c, int h, int w) const {
    return data_[index(n, c, h, w)];
  }

  std::span<float> flat() noexcept { return data_; }
  std::span<const float> flat() const noexcept { return data_; }

  bool same_shape(const Tensor4& other) const noexcept {
    return n_ == other.n_ && c_ == other.c_ && h_ == other.h_ &&
           w_ == other.w_;
  }

 private:
  std::size_t index(int n, int c, int h, int w) const {
    CTB_DCHECK(n >= 0 && n < n_ && c >= 0 && c < c_ && h >= 0 && h < h_ &&
               w >= 0 && w < w_);
    return ((static_cast<std::size_t>(n) * c_ + c) * h_ + h) *
               static_cast<std::size_t>(w_) +
           w;
  }

  int n_ = 0, c_ = 0, h_ = 0, w_ = 0;
  std::vector<float> data_;
};

/// Fills with uniform values from the given deterministic RNG.
void fill_random(Tensor4& t, Rng& rng, float lo = -1.0f, float hi = 1.0f);

/// max |a-b| over two same-shape tensors.
float max_abs_diff(const Tensor4& a, const Tensor4& b);

}  // namespace ctb
