// GoogleNet-v1 (Szegedy et al. 2014) shape tables: the 57 convolutions the
// paper counts, organized as 3 stem convolutions plus 9 inception modules of
// 6 convolutions each. Spatial sizes assume the standard 224x224 input.
//
// The fan structure of an inception module spawns four independent branches;
// the first stage (1x1, 3x3-reduce, 5x5-reduce, pool-proj) is the "four
// GEMMs" the paper batches per module (Section 7.3), and the second stage
// (3x3, 5x5) is a further independent pair.
#pragma once

#include <vector>

#include "dnn/conv.hpp"

namespace ctb {

struct InceptionModule {
  std::string name;
  int in_c = 0;   ///< channels entering the module.
  int hw = 0;     ///< spatial size (square feature maps).
  ConvShape conv1x1;
  ConvShape reduce3;
  ConvShape conv3x3;
  ConvShape reduce5;
  ConvShape conv5x5;
  ConvShape pool_proj;

  /// Output channels after concatenation.
  int out_c() const {
    return conv1x1.out_c + conv3x3.out_c + conv5x5.out_c + pool_proj.out_c;
  }
  /// Stage 1: the four branch GEMMs that consume the module input
  /// concurrently.
  std::vector<const ConvShape*> stage1() const {
    return {&conv1x1, &reduce3, &reduce5, &pool_proj};
  }
  /// Stage 2: the two convolutions fed by the reduces.
  std::vector<const ConvShape*> stage2() const {
    return {&conv3x3, &conv5x5};
  }
  /// GEMM dims of a stage for `batch` images.
  std::vector<GemmDims> stage_gemms(int stage, int batch = 1) const;
};

/// The 9 inception modules (3a..3b, 4a..4e, 5a..5b).
const std::vector<InceptionModule>& googlenet_inception_modules();

/// The 3 stem convolutions (conv1 7x7/2, conv2 reduce 1x1, conv2 3x3).
const std::vector<ConvShape>& googlenet_stem_convs();

/// All 57 convolutions in network order (stem + inception modules).
std::vector<ConvShape> googlenet_all_convs();

}  // namespace ctb
