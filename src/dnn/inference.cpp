#include "dnn/inference.hpp"

#include <array>

#include "baselines/baselines.hpp"
#include "dnn/grouped.hpp"
#include "dnn/im2col.hpp"
#include "util/assert.hpp"

namespace ctb {

namespace {

/// Simulated GEMM time of one dependency stage under our framework.
double time_stage_ours(const GpuArch& arch, const BatchedGemmPlanner& planner,
                       const std::vector<GemmDims>& dims) {
  const PlanSummary summary = planner.plan(dims);
  return time_plan(arch, summary.plan, dims).time_us;
}

double time_stage_magma(const GpuArch& arch,
                        const std::vector<GemmDims>& dims) {
  return run_magma_timed(arch, dims).time_us;
}

}  // namespace

std::vector<InceptionTimings> time_googlenet_inceptions(
    const GpuArch& arch, int batch, const PlannerConfig& config) {
  CTB_CHECK(batch >= 1);
  const BatchedGemmPlanner planner(config);
  std::vector<InceptionTimings> out;
  for (const auto& m : googlenet_inception_modules()) {
    InceptionTimings t;
    t.name = m.name;
    const std::vector<GemmDims> s1 = m.stage_gemms(1, batch);
    const std::vector<GemmDims> s2 = m.stage_gemms(2, batch);

    // default: all six convolutions, one kernel each, serial.
    std::vector<GemmDims> all(s1);
    all.insert(all.end(), s2.begin(), s2.end());
    t.default_us = run_default_timed(arch, all).time_us;

    // stream: each stage's branches over as many streams as branches.
    t.stream_us = run_cke_timed(arch, s1, static_cast<int>(s1.size())).time_us +
                  run_cke_timed(arch, s2, static_cast<int>(s2.size())).time_us;

    // magma: one vbatch kernel per stage.
    t.magma_us = time_stage_magma(arch, s1) + time_stage_magma(arch, s2);

    // ours: one planned persistent-threads kernel per stage.
    t.ours_us = time_stage_ours(arch, planner, s1) +
                time_stage_ours(arch, planner, s2);
    out.push_back(std::move(t));
  }
  return out;
}

GoogleNetTotals googlenet_forward_times(const GpuArch& arch, int batch,
                                        const PlannerConfig& config) {
  GoogleNetTotals totals;
  // Stem convolutions execute serially in every variant.
  std::vector<GemmDims> stem;
  for (const auto& c : googlenet_stem_convs())
    stem.push_back(c.gemm_dims(batch));
  const double stem_us = run_default_timed(arch, stem).time_us;

  const auto inceptions = time_googlenet_inceptions(arch, batch, config);
  totals.default_ms = stem_us * 1e-3;
  totals.stream_ms = stem_us * 1e-3;
  totals.ours_ms = stem_us * 1e-3;
  for (const auto& t : inceptions) {
    totals.default_ms += t.default_us * 1e-3;
    totals.stream_ms += t.stream_us * 1e-3;
    totals.ours_ms += t.ours_us * 1e-3;
  }
  return totals;
}

InceptionWeights random_inception_weights(const InceptionModule& m,
                                          Rng& rng) {
  InceptionWeights w;
  w.w1x1 = random_filters(m.conv1x1, rng);
  w.wr3 = random_filters(m.reduce3, rng);
  w.w3x3 = random_filters(m.conv3x3, rng);
  w.wr5 = random_filters(m.reduce5, rng);
  w.w5x5 = random_filters(m.conv5x5, rng);
  w.wproj = random_filters(m.pool_proj, rng);
  return w;
}

Tensor4 inception_forward_reference(const InceptionModule& m,
                                    const Tensor4& input,
                                    const InceptionWeights& w) {
  Tensor4 b1 = conv_forward_direct(m.conv1x1, input, w.w1x1);
  relu_inplace(b1);

  Tensor4 r3 = conv_forward_direct(m.reduce3, input, w.wr3);
  relu_inplace(r3);
  Tensor4 b3 = conv_forward_direct(m.conv3x3, r3, w.w3x3);
  relu_inplace(b3);

  Tensor4 r5 = conv_forward_direct(m.reduce5, input, w.wr5);
  relu_inplace(r5);
  Tensor4 b5 = conv_forward_direct(m.conv5x5, r5, w.w5x5);
  relu_inplace(b5);

  Tensor4 pooled = max_pool(input, 3, 1, 1);
  Tensor4 bp = conv_forward_direct(m.pool_proj, pooled, w.wproj);
  relu_inplace(bp);

  const std::array<const Tensor4*, 4> parts = {&b1, &b3, &b5, &bp};
  return concat_channels(parts);
}

namespace {

/// Runs one dependency stage as a grouped fused dispatch: one planned
/// batched GEMM with the ReLU applied inside the tile store (no separate
/// activation pass over the outputs).
std::vector<Tensor4> run_stage_batched(
    const std::vector<const ConvShape*>& convs,
    const std::vector<const Tensor4*>& inputs,
    const std::vector<const Matrixf*>& weights,
    const PlannerConfig& config) {
  CTB_CHECK(convs.size() == inputs.size() &&
            inputs.size() == weights.size());
  std::vector<GroupedConv> group(convs.size());
  for (std::size_t i = 0; i < convs.size(); ++i) {
    group[i].shape = convs[i];
    group[i].input = inputs[i];
    group[i].filters = weights[i];
    group[i].relu = true;
  }
  return grouped_conv_forward(group, config);
}

}  // namespace

Tensor4 inception_forward_batched(const InceptionModule& m,
                                  const Tensor4& input,
                                  const InceptionWeights& w,
                                  const PlannerConfig& config) {
  const Tensor4 pooled = max_pool(input, 3, 1, 1);

  // Stage 1: the four branch convolutions share the module input (the pool
  // branch consumes the pooled input).
  std::vector<Tensor4> s1 = run_stage_batched(
      {&m.conv1x1, &m.reduce3, &m.reduce5, &m.pool_proj},
      {&input, &input, &input, &pooled},
      {&w.w1x1, &w.wr3, &w.wr5, &w.wproj}, config);

  // Stage 2: 3x3 and 5x5 consume the reduce outputs.
  std::vector<Tensor4> s2 =
      run_stage_batched({&m.conv3x3, &m.conv5x5}, {&s1[1], &s1[2]},
                        {&w.w3x3, &w.w5x5}, config);

  const std::array<const Tensor4*, 4> parts = {&s1[0], &s2[0], &s2[1],
                                               &s1[3]};
  return concat_channels(parts);
}

}  // namespace ctb
