// Convolution backward passes as GEMMs.
//
// The paper motivates plan reuse with DNN training, whose steps repeat the
// same batch shapes. A convolution's backward pass contributes two more
// GEMMs per layer, both batchable by the framework:
//   weight gradient: dW = dY * X_cols^T      (M=C_out, N=C_in*k*k, K=OHW*B)
//   data gradient:   dX_cols = W^T * dY       (M=C_in*k*k, N=OHW*B, K=C_out)
// followed by the col2im scatter for dX. The transpose-aware GemmEntry API
// executes both directly (op_b = T for wgrad, op_a = T for dgrad).
#pragma once

#include "dnn/conv.hpp"
#include "dnn/tensor.hpp"
#include "linalg/matrix.hpp"

namespace ctb {

/// GEMM dims of the weight-gradient computation for `batch` images.
GemmDims wgrad_gemm_dims(const ConvShape& shape, int batch);

/// GEMM dims of the data-gradient computation for `batch` images.
GemmDims dgrad_gemm_dims(const ConvShape& shape, int batch);

/// Flattens an output-gradient tensor (N, out_c, oh, ow) into the
/// (out_c) x (oh*ow*n) matrix layout the backward GEMMs consume (the same
/// column order as im2col / col2im_output).
Matrixf flatten_output_grad(const ConvShape& shape, const Tensor4& dy);

/// col2im scatter: folds a (in_c*k*k) x (oh*ow*n) column-gradient matrix
/// back into the (N, in_c, h, w) input-gradient tensor, summing
/// contributions of overlapping windows. The adjoint of im2col.
Tensor4 col2im_scatter(const ConvShape& shape, int batch,
                       const Matrixf& cols_grad);

/// Weight gradient via GEMM: dW = dY * X_cols^T. `input` is the forward
/// input; returns the (out_c) x (in_c*k*k) filter-gradient matrix.
Matrixf conv_backward_weights(const ConvShape& shape, const Tensor4& input,
                              const Tensor4& dy);

/// Data gradient via GEMM + col2im scatter: returns dX with the input's
/// shape. `filters` is the forward filter matrix.
Tensor4 conv_backward_data(const ConvShape& shape, const Matrixf& filters,
                           const Tensor4& dy);

/// Direct (loop) references for both gradients — the correctness oracles.
Matrixf conv_backward_weights_direct(const ConvShape& shape,
                                     const Tensor4& input, const Tensor4& dy);
Tensor4 conv_backward_data_direct(const ConvShape& shape,
                                  const Matrixf& filters, const Tensor4& dy);

}  // namespace ctb
