// im2col lowering: unrolls convolution input windows into a matrix so the
// convolution becomes one GEMM (filters x columns).
#pragma once

#include "dnn/conv.hpp"
#include "dnn/tensor.hpp"
#include "linalg/matrix.hpp"

namespace ctb {

/// Builds the (in_c * k * k) x (out_h * out_w * n) column matrix. Row order
/// is (c, kh, kw); column order is (n, oh, ow). Out-of-image taps are zero.
Matrixf im2col(const ConvShape& shape, const Tensor4& input);

/// Reshapes the GEMM output (out_c x out_h*out_w*n) back into an NCHW
/// tensor; inverse of the column order used by im2col.
Tensor4 col2im_output(const ConvShape& shape, int batch, const Matrixf& out);

}  // namespace ctb
