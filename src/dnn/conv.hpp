// Convolution shapes and reference implementations.
//
// The paper lowers convolution to GEMM (im2col): for a conv with C_out
// filters of size C_in x kh x kw over an H x W feature map,
//   M = C_out, K = C_in * kh * kw, N = out_h * out_w * batch.
// This module provides the shape algebra, a direct (naive) convolution as
// the correctness oracle, and the im2col + GEMM path the framework batches.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "dnn/tensor.hpp"
#include "linalg/gemm_ref.hpp"

namespace ctb {

struct ConvShape {
  std::string name;
  int in_c = 1;
  int out_c = 1;
  int kernel = 1;  ///< square kernels only (all GoogleNet convs are square).
  int stride = 1;
  int pad = 0;
  int in_h = 1;
  int in_w = 1;

  int out_h() const { return (in_h + 2 * pad - kernel) / stride + 1; }
  int out_w() const { return (in_w + 2 * pad - kernel) / stride + 1; }

  /// GEMM dimensions of the im2col-lowered convolution for `batch` images.
  GemmDims gemm_dims(int batch = 1) const {
    GemmDims d;
    d.m = out_c;
    d.n = out_h() * out_w() * batch;
    d.k = in_c * kernel * kernel;
    return d;
  }

  long long flops(int batch = 1) const { return gemm_dims(batch).flops(); }
};

/// Filter matrix layout for the GEMM path: out_c x (in_c * k * k), row
/// per filter, columns in (c, kh, kw) order — matching im2col's row order.
Matrixf random_filters(const ConvShape& shape, Rng& rng);

/// Direct convolution (correctness oracle). `filters` must be the GEMM
/// layout above. Returns an (N, out_c, out_h, out_w) tensor.
Tensor4 conv_forward_direct(const ConvShape& shape, const Tensor4& input,
                            const Matrixf& filters);

/// im2col + GEMM convolution; bit-comparable to what the batched framework
/// computes for the same GEMM.
Tensor4 conv_forward_gemm(const ConvShape& shape, const Tensor4& input,
                          const Matrixf& filters);

/// In-place ReLU.
void relu_inplace(Tensor4& t);

/// Adds a per-output-channel bias in place.
void add_bias_inplace(Tensor4& t, std::span<const float> bias);

/// Local response normalization across channels (GoogleNet uses n=5,
/// alpha=1e-4, beta=0.75, k=1): out = in / (k + alpha/n * sum window)^beta.
Tensor4 lrn_across_channels(const Tensor4& input, int window = 5,
                            float alpha = 1e-4f, float beta = 0.75f,
                            float k = 1.0f);

/// Numerically-stable softmax over a logit vector (classifier head).
std::vector<float> softmax(std::span<const float> logits);

/// 2D max pooling with square window.
Tensor4 max_pool(const Tensor4& input, int window, int stride, int pad);

/// 2D average pooling with square window (out-of-image taps excluded from
/// the mean, cuDNN's "exclusive" counting).
Tensor4 avg_pool(const Tensor4& input, int window, int stride, int pad);

/// Channel-axis concatenation of same-(n,h,w) tensors.
Tensor4 concat_channels(std::span<const Tensor4* const> parts);

}  // namespace ctb
