#include "dnn/im2col.hpp"

#include "util/parallel.hpp"

namespace ctb {

Matrixf im2col(const ConvShape& s, const Tensor4& input) {
  CTB_CHECK_MSG(input.c() == s.in_c && input.h() == s.in_h &&
                    input.w() == s.in_w,
                "input tensor does not match conv shape " << s.name);
  const int oh = s.out_h();
  const int ow = s.out_w();
  const int rows = s.in_c * s.kernel * s.kernel;
  const int cols = oh * ow * input.n();
  Matrixf m(static_cast<std::size_t>(rows), static_cast<std::size_t>(cols));

  // Each (c, kh, kw) filter tap fills exactly one output row, so the rows
  // parallelize without overlap.
  parallel_for(rows, [&](long long r) {
    const int row = static_cast<int>(r);
    const int kw = row % s.kernel;
    const int kh = (row / s.kernel) % s.kernel;
    const int c = row / (s.kernel * s.kernel);
    for (int n = 0; n < input.n(); ++n) {
      for (int y = 0; y < oh; ++y) {
        const int iy = y * s.stride - s.pad + kh;
        for (int x = 0; x < ow; ++x) {
          const int ix = x * s.stride - s.pad + kw;
          const int col = (n * oh + y) * ow + x;
          const bool in_range =
              iy >= 0 && iy < s.in_h && ix >= 0 && ix < s.in_w;
          m(static_cast<std::size_t>(row), static_cast<std::size_t>(col)) =
              in_range ? input.at(n, c, iy, ix) : 0.0f;
        }
      }
    }
  });
  return m;
}

Tensor4 col2im_output(const ConvShape& s, int batch, const Matrixf& out) {
  const int oh = s.out_h();
  const int ow = s.out_w();
  CTB_CHECK(static_cast<int>(out.rows()) == s.out_c);
  CTB_CHECK(static_cast<int>(out.cols()) == oh * ow * batch);
  Tensor4 t(batch, s.out_c, oh, ow);
  // Each (n, c) pair owns a disjoint H x W plane of the output tensor.
  parallel_for(static_cast<long long>(batch) * s.out_c, [&](long long nc) {
    const int n = static_cast<int>(nc / s.out_c);
    const int c = static_cast<int>(nc % s.out_c);
    for (int y = 0; y < oh; ++y)
      for (int x = 0; x < ow; ++x)
        t.at(n, c, y, x) = out(static_cast<std::size_t>(c),
                               static_cast<std::size_t>((n * oh + y) * ow +
                                                        x));
  });
  return t;
}

}  // namespace ctb
