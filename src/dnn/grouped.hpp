// Grouped fused convolution dispatch: several im2col-lowered convolutions
// — typically one dependency stage of an inception or fire block, or a
// conv+bias+activation layer — executed as ONE planned batched-GEMM kernel
// with the per-layer epilogues (bias add, ReLU) fused into the tile store.
//
// This is the dnn-side consumer of the framework's epilogue aux array
// (core/epilogue.hpp): instead of GEMM -> col2im -> bias pass -> relu pass
// (three full sweeps over each output), the grouped dispatch runs one GEMM
// whose stores apply the chain, then a single col2im reshape. Results are
// bitwise identical to the unfused sequence (the epilogue chain uses the
// same elementwise definitions as add_bias_inplace / relu_inplace), and
// exec.c.passes telemetry makes the eliminated sweeps measurable.
#pragma once

#include <span>
#include <vector>

#include "core/api.hpp"
#include "dnn/conv.hpp"
#include "dnn/tensor.hpp"

namespace ctb {

/// One convolution of a grouped dispatch. The referenced shape, input,
/// filters, and bias must outlive the grouped_conv_forward call.
struct GroupedConv {
  const ConvShape* shape = nullptr;
  const Tensor4* input = nullptr;
  const Matrixf* filters = nullptr;
  /// Per-output-channel bias, fused as a kBias epilogue; empty = no bias.
  /// Size must equal shape->out_c.
  std::span<const float> bias;
  /// Fuse a kRelu epilogue after the (optional) bias add.
  bool relu = false;
};

/// Lowers every conv via im2col, executes the whole group as one batched
/// GEMM with fused epilogues, and reshapes each output back to NCHW.
/// Counts the dispatch under plan.grouped.* telemetry.
std::vector<Tensor4> grouped_conv_forward(std::span<const GroupedConv> convs,
                                          const PlannerConfig& config = {});

}  // namespace ctb
