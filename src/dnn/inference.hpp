// GoogleNet inference: functional forward pass of inception modules through
// the batched-GEMM framework, and the timing harness behind the paper's
// Fig. 10 (per-inception speedups and whole-network totals).
//
// Timing compares four executions of each inception module's convolutions:
//   default — one kernel per conv, serial (the cuDNN-per-op baseline),
//   stream  — branch convs spread over CUDA streams (baseline + CKE),
//   magma   — each dependency stage as one vbatch kernel,
//   ours    — each dependency stage planned by the framework.
// Pooling/concat cost is identical across variants and excluded, as the
// paper's comparison is over the GEMM executions.
#pragma once

#include <vector>

#include "core/api.hpp"
#include "dnn/googlenet.hpp"

namespace ctb {

struct InceptionTimings {
  std::string name;
  double default_us = 0.0;
  double stream_us = 0.0;
  double magma_us = 0.0;
  double ours_us = 0.0;

  double speedup_vs_magma() const { return magma_us / ours_us; }
  double speedup_vs_stream() const { return stream_us / ours_us; }
};

/// Times every inception module for `batch` input images.
std::vector<InceptionTimings> time_googlenet_inceptions(
    const GpuArch& arch, int batch, const PlannerConfig& config);

/// Whole-network forward-pass GEMM time (stem convs run serially in every
/// variant; inception modules differ). Matches the paper's
/// 3.18 ms / 2.41 ms / 2.01 ms comparison structure.
struct GoogleNetTotals {
  double default_ms = 0.0;
  double stream_ms = 0.0;
  double ours_ms = 0.0;
};

GoogleNetTotals googlenet_forward_times(const GpuArch& arch, int batch,
                                        const PlannerConfig& config);

/// Weights of one inception module in GEMM filter layout.
struct InceptionWeights {
  Matrixf w1x1, wr3, w3x3, wr5, w5x5, wproj;
};

InceptionWeights random_inception_weights(const InceptionModule& m, Rng& rng);

/// Reference forward: direct convolutions, ReLU, pool branch, concat.
Tensor4 inception_forward_reference(const InceptionModule& m,
                                    const Tensor4& input,
                                    const InceptionWeights& w);

/// Framework forward: stage-1 branch convolutions as one batched GEMM
/// through the planner, then stage 2, then the pool branch and concat.
/// Numerically equivalent to the reference up to float accumulation order.
Tensor4 inception_forward_batched(const InceptionModule& m,
                                  const Tensor4& input,
                                  const InceptionWeights& w,
                                  const PlannerConfig& config);

}  // namespace ctb
