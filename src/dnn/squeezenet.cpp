#include "dnn/squeezenet.hpp"

#include <array>

#include "baselines/baselines.hpp"
#include "dnn/grouped.hpp"
#include "dnn/im2col.hpp"
#include "util/assert.hpp"

namespace ctb {

namespace {

ConvShape conv(std::string name, int in_c, int out_c, int kernel, int hw) {
  ConvShape s;
  s.name = std::move(name);
  s.in_c = in_c;
  s.out_c = out_c;
  s.kernel = kernel;
  s.stride = 1;
  s.pad = kernel / 2;
  s.in_h = hw;
  s.in_w = hw;
  return s;
}

FireModule fire(const std::string& name, int in_c, int hw, int s1x1, int e1x1,
                int e3x3) {
  FireModule m;
  m.name = name;
  m.in_c = in_c;
  m.hw = hw;
  m.squeeze = conv(name + "/squeeze1x1", in_c, s1x1, 1, hw);
  m.expand1x1 = conv(name + "/expand1x1", s1x1, e1x1, 1, hw);
  m.expand3x3 = conv(name + "/expand3x3", s1x1, e3x3, 3, hw);
  return m;
}

}  // namespace

const std::vector<FireModule>& squeezenet_fire_modules() {
  // SqueezeNet v1.0 (Table 1 of Iandola et al.): {squeeze, expand1x1,
  // expand3x3} filters, spatial sizes after the stride-2 pools.
  static const std::vector<FireModule> modules = {
      fire("fire2", 96, 55, 16, 64, 64),
      fire("fire3", 128, 55, 16, 64, 64),
      fire("fire4", 128, 55, 32, 128, 128),
      fire("fire5", 256, 27, 32, 128, 128),
      fire("fire6", 256, 27, 48, 192, 192),
      fire("fire7", 384, 27, 48, 192, 192),
      fire("fire8", 384, 27, 64, 256, 256),
      fire("fire9", 512, 13, 64, 256, 256),
  };
  return modules;
}

FireWeights random_fire_weights(const FireModule& m, Rng& rng) {
  FireWeights w;
  w.squeeze = random_filters(m.squeeze, rng);
  w.expand1 = random_filters(m.expand1x1, rng);
  w.expand3 = random_filters(m.expand3x3, rng);
  return w;
}

Tensor4 fire_forward_reference(const FireModule& m, const Tensor4& input,
                               const FireWeights& w) {
  Tensor4 squeezed = conv_forward_direct(m.squeeze, input, w.squeeze);
  relu_inplace(squeezed);
  Tensor4 e1 = conv_forward_direct(m.expand1x1, squeezed, w.expand1);
  relu_inplace(e1);
  Tensor4 e3 = conv_forward_direct(m.expand3x3, squeezed, w.expand3);
  relu_inplace(e3);
  const std::array<const Tensor4*, 2> parts = {&e1, &e3};
  return concat_channels(parts);
}

Tensor4 fire_forward_batched(const FireModule& m, const Tensor4& input,
                             const FireWeights& w,
                             const PlannerConfig& config) {
  // Squeeze: a single GEMM (nothing to batch with at module granularity),
  // with the ReLU fused into the tile store.
  std::vector<Tensor4> squeezed = grouped_conv_forward(
      std::vector<GroupedConv>{{&m.squeeze, &input, &w.squeeze, {}, true}},
      config);

  // Expand: the two branch GEMMs as one fused grouped dispatch.
  const std::vector<GroupedConv> expand = {
      {&m.expand1x1, &squeezed[0], &w.expand1, {}, true},
      {&m.expand3x3, &squeezed[0], &w.expand3, {}, true},
  };
  std::vector<Tensor4> e = grouped_conv_forward(expand, config);
  const std::array<const Tensor4*, 2> parts = {&e[0], &e[1]};
  return concat_channels(parts);
}

std::vector<FireTimings> time_squeezenet_fires(const GpuArch& arch,
                                               int batch,
                                               const PlannerConfig& config) {
  CTB_CHECK(batch >= 1);
  const BatchedGemmPlanner planner(config);
  std::vector<FireTimings> out;
  for (const auto& m : squeezenet_fire_modules()) {
    FireTimings t;
    t.name = m.name;
    const std::vector<GemmDims> squeeze = {m.squeeze.gemm_dims(batch)};
    const std::vector<GemmDims> expand = m.expand_gemms(batch);

    std::vector<GemmDims> all(squeeze);
    all.insert(all.end(), expand.begin(), expand.end());
    t.default_us = run_default_timed(arch, all).time_us;
    t.stream_us = run_default_timed(arch, squeeze).time_us +
                  run_cke_timed(arch, expand, 2).time_us;
    t.magma_us = run_magma_timed(arch, squeeze).time_us +
                 run_magma_timed(arch, expand).time_us;
    t.ours_us =
        time_plan(arch, planner.plan(squeeze).plan, squeeze).time_us +
        time_plan(arch, planner.plan(expand).plan, expand).time_us;
    out.push_back(std::move(t));
  }
  return out;
}

}  // namespace ctb
