#include "dnn/googlenet.hpp"

#include "util/assert.hpp"

namespace ctb {

namespace {

ConvShape conv(std::string name, int in_c, int out_c, int kernel, int hw,
               int stride = 1) {
  ConvShape s;
  s.name = std::move(name);
  s.in_c = in_c;
  s.out_c = out_c;
  s.kernel = kernel;
  s.stride = stride;
  s.pad = kernel / 2;  // "same" padding for stride 1
  s.in_h = hw;
  s.in_w = hw;
  return s;
}

/// One inception module from the GoogleNet table: {#1x1, #3x3reduce, #3x3,
/// #5x5reduce, #5x5, pool proj} filters over `hw` x `hw` maps of `in_c`
/// channels.
InceptionModule inception(const std::string& name, int in_c, int hw, int c1,
                          int r3, int c3, int r5, int c5, int pp) {
  InceptionModule m;
  m.name = name;
  m.in_c = in_c;
  m.hw = hw;
  m.conv1x1 = conv(name + "/1x1", in_c, c1, 1, hw);
  m.reduce3 = conv(name + "/3x3_reduce", in_c, r3, 1, hw);
  m.conv3x3 = conv(name + "/3x3", r3, c3, 3, hw);
  m.reduce5 = conv(name + "/5x5_reduce", in_c, r5, 1, hw);
  m.conv5x5 = conv(name + "/5x5", r5, c5, 5, hw);
  m.pool_proj = conv(name + "/pool_proj", in_c, pp, 1, hw);
  return m;
}

}  // namespace

std::vector<GemmDims> InceptionModule::stage_gemms(int stage,
                                                   int batch) const {
  CTB_CHECK(stage == 1 || stage == 2);
  std::vector<GemmDims> dims;
  const auto convs = stage == 1 ? stage1() : stage2();
  dims.reserve(convs.size());
  for (const ConvShape* c : convs) dims.push_back(c->gemm_dims(batch));
  return dims;
}

const std::vector<InceptionModule>& googlenet_inception_modules() {
  // Filter counts from Table 1 of Szegedy et al. 2014; spatial sizes follow
  // from the 224x224 input (28x28 for 3*, 14x14 for 4*, 7x7 for 5*).
  static const std::vector<InceptionModule> modules = {
      inception("inception3a", 192, 28, 64, 96, 128, 16, 32, 32),
      inception("inception3b", 256, 28, 128, 128, 192, 32, 96, 64),
      inception("inception4a", 480, 14, 192, 96, 208, 16, 48, 64),
      inception("inception4b", 512, 14, 160, 112, 224, 24, 64, 64),
      inception("inception4c", 512, 14, 128, 128, 256, 24, 64, 64),
      inception("inception4d", 512, 14, 112, 144, 288, 32, 64, 64),
      inception("inception4e", 528, 14, 256, 160, 320, 32, 128, 128),
      inception("inception5a", 832, 7, 256, 160, 320, 32, 128, 128),
      inception("inception5b", 832, 7, 384, 192, 384, 48, 128, 128),
  };
  return modules;
}

const std::vector<ConvShape>& googlenet_stem_convs() {
  static const std::vector<ConvShape> stem = {
      // conv1: 7x7/2 on the 224x224 RGB input.
      conv("conv1/7x7_s2", 3, 64, 7, 224, 2),
      // conv2 reduce and conv2, after the stride-2 pool to 56x56.
      conv("conv2/3x3_reduce", 64, 64, 1, 56),
      conv("conv2/3x3", 64, 192, 3, 56),
  };
  return stem;
}

std::vector<ConvShape> googlenet_all_convs() {
  std::vector<ConvShape> all = googlenet_stem_convs();
  for (const auto& m : googlenet_inception_modules()) {
    all.push_back(m.conv1x1);
    all.push_back(m.reduce3);
    all.push_back(m.conv3x3);
    all.push_back(m.reduce5);
    all.push_back(m.conv5x5);
    all.push_back(m.pool_proj);
  }
  CTB_CHECK(all.size() == 57);  // the paper's count
  return all;
}

}  // namespace ctb
