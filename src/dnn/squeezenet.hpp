// SqueezeNet-v1.0 fire modules (Iandola et al. 2016) — the paper names
// Squeeze-Net as another fan-structured CNN whose branch GEMMs the
// framework can batch (Section 7.3). A fire module squeezes with a 1x1
// convolution, then expands through two independent branches (1x1 and 3x3)
// whose outputs concatenate — a two-GEMM batch per module.
#pragma once

#include <vector>

#include "core/api.hpp"
#include "dnn/conv.hpp"

namespace ctb {

struct FireModule {
  std::string name;
  int in_c = 0;  ///< channels entering the module.
  int hw = 0;    ///< spatial size (square maps).
  ConvShape squeeze;    ///< 1x1 squeeze.
  ConvShape expand1x1;  ///< 1x1 expand branch.
  ConvShape expand3x3;  ///< 3x3 expand branch (same padding).

  int out_c() const { return expand1x1.out_c + expand3x3.out_c; }

  /// The independent expand-branch GEMMs (the batchable fan).
  std::vector<GemmDims> expand_gemms(int batch = 1) const {
    return {expand1x1.gemm_dims(batch), expand3x3.gemm_dims(batch)};
  }
};

/// The 8 fire modules of SqueezeNet v1.0 (fire2..fire9), standard 224x224
/// input pipeline spatial sizes.
const std::vector<FireModule>& squeezenet_fire_modules();

/// Fire-module weights in GEMM filter layout.
struct FireWeights {
  Matrixf squeeze, expand1, expand3;
};

FireWeights random_fire_weights(const FireModule& m, Rng& rng);

/// Reference forward (direct convolutions + ReLU + concat).
Tensor4 fire_forward_reference(const FireModule& m, const Tensor4& input,
                               const FireWeights& w);

/// Framework forward: the squeeze GEMM alone, then both expand GEMMs as one
/// batched plan.
Tensor4 fire_forward_batched(const FireModule& m, const Tensor4& input,
                             const FireWeights& w,
                             const PlannerConfig& config);

/// Per-fire-module simulated GEMM timing (default / streams / MAGMA / ours),
/// mirroring the GoogleNet harness.
struct FireTimings {
  std::string name;
  double default_us = 0.0;
  double stream_us = 0.0;
  double magma_us = 0.0;
  double ours_us = 0.0;

  double speedup_vs_magma() const { return magma_us / ours_us; }
};

std::vector<FireTimings> time_squeezenet_fires(const GpuArch& arch, int batch,
                                               const PlannerConfig& config);

}  // namespace ctb
