#include "dnn/backward.hpp"

#include "dnn/im2col.hpp"
#include "linalg/gemm_ref.hpp"
#include "util/assert.hpp"

namespace ctb {

GemmDims wgrad_gemm_dims(const ConvShape& shape, int batch) {
  GemmDims d;
  d.m = shape.out_c;
  d.n = shape.in_c * shape.kernel * shape.kernel;
  d.k = shape.out_h() * shape.out_w() * batch;
  return d;
}

GemmDims dgrad_gemm_dims(const ConvShape& shape, int batch) {
  GemmDims d;
  d.m = shape.in_c * shape.kernel * shape.kernel;
  d.n = shape.out_h() * shape.out_w() * batch;
  d.k = shape.out_c;
  return d;
}

Matrixf flatten_output_grad(const ConvShape& shape, const Tensor4& dy) {
  const int oh = shape.out_h();
  const int ow = shape.out_w();
  CTB_CHECK_MSG(dy.c() == shape.out_c && dy.h() == oh && dy.w() == ow,
                "dY does not match conv output of " << shape.name);
  Matrixf m(static_cast<std::size_t>(shape.out_c),
            static_cast<std::size_t>(oh * ow * dy.n()));
  for (int n = 0; n < dy.n(); ++n)
    for (int c = 0; c < shape.out_c; ++c)
      for (int y = 0; y < oh; ++y)
        for (int x = 0; x < ow; ++x)
          m(static_cast<std::size_t>(c),
            static_cast<std::size_t>((n * oh + y) * ow + x)) =
              dy.at(n, c, y, x);
  return m;
}

Tensor4 col2im_scatter(const ConvShape& s, int batch,
                       const Matrixf& cols_grad) {
  const int oh = s.out_h();
  const int ow = s.out_w();
  CTB_CHECK(static_cast<int>(cols_grad.rows()) ==
            s.in_c * s.kernel * s.kernel);
  CTB_CHECK(static_cast<int>(cols_grad.cols()) == oh * ow * batch);
  Tensor4 dx(batch, s.in_c, s.in_h, s.in_w);
  for (int c = 0; c < s.in_c; ++c) {
    for (int kh = 0; kh < s.kernel; ++kh) {
      for (int kw = 0; kw < s.kernel; ++kw) {
        const int row = (c * s.kernel + kh) * s.kernel + kw;
        for (int n = 0; n < batch; ++n) {
          for (int y = 0; y < oh; ++y) {
            const int iy = y * s.stride - s.pad + kh;
            if (iy < 0 || iy >= s.in_h) continue;
            for (int x = 0; x < ow; ++x) {
              const int ix = x * s.stride - s.pad + kw;
              if (ix < 0 || ix >= s.in_w) continue;
              dx.at(n, c, iy, ix) +=
                  cols_grad(static_cast<std::size_t>(row),
                            static_cast<std::size_t>((n * oh + y) * ow + x));
            }
          }
        }
      }
    }
  }
  return dx;
}

Matrixf conv_backward_weights(const ConvShape& shape, const Tensor4& input,
                              const Tensor4& dy) {
  const Matrixf cols = im2col(shape, input);       // (K_f) x (OHW*B)
  const Matrixf dy_m = flatten_output_grad(shape, dy);  // (C_out) x (OHW*B)
  const GemmDims d = wgrad_gemm_dims(shape, input.n());
  Matrixf dw(static_cast<std::size_t>(d.m), static_cast<std::size_t>(d.n));
  // dW = dY * cols^T: op_b = T on the stored cols matrix.
  gemm_naive_ops(Op::kN, Op::kT, dy_m, cols, dw, 1.0f, 0.0f);
  return dw;
}

Tensor4 conv_backward_data(const ConvShape& shape, const Matrixf& filters,
                           const Tensor4& dy) {
  const Matrixf dy_m = flatten_output_grad(shape, dy);
  const GemmDims d = dgrad_gemm_dims(shape, dy.n());
  Matrixf cols_grad(static_cast<std::size_t>(d.m),
                    static_cast<std::size_t>(d.n));
  // dX_cols = W^T * dY: op_a = T on the stored filter matrix.
  gemm_naive_ops(Op::kT, Op::kN, filters, dy_m, cols_grad, 1.0f, 0.0f);
  return col2im_scatter(shape, dy.n(), cols_grad);
}

Matrixf conv_backward_weights_direct(const ConvShape& s,
                                     const Tensor4& input,
                                     const Tensor4& dy) {
  const int oh = s.out_h();
  const int ow = s.out_w();
  Matrixf dw(static_cast<std::size_t>(s.out_c),
             static_cast<std::size_t>(s.in_c * s.kernel * s.kernel));
  for (int oc = 0; oc < s.out_c; ++oc) {
    for (int c = 0; c < s.in_c; ++c) {
      for (int kh = 0; kh < s.kernel; ++kh) {
        for (int kw = 0; kw < s.kernel; ++kw) {
          float acc = 0.0f;
          for (int n = 0; n < input.n(); ++n) {
            for (int y = 0; y < oh; ++y) {
              const int iy = y * s.stride - s.pad + kh;
              if (iy < 0 || iy >= s.in_h) continue;
              for (int x = 0; x < ow; ++x) {
                const int ix = x * s.stride - s.pad + kw;
                if (ix < 0 || ix >= s.in_w) continue;
                acc += dy.at(n, oc, y, x) * input.at(n, c, iy, ix);
              }
            }
          }
          dw(static_cast<std::size_t>(oc),
             static_cast<std::size_t>((c * s.kernel + kh) * s.kernel + kw)) =
              acc;
        }
      }
    }
  }
  return dw;
}

Tensor4 conv_backward_data_direct(const ConvShape& s, const Matrixf& filters,
                                  const Tensor4& dy) {
  const int oh = s.out_h();
  const int ow = s.out_w();
  Tensor4 dx(dy.n(), s.in_c, s.in_h, s.in_w);
  for (int n = 0; n < dy.n(); ++n) {
    for (int oc = 0; oc < s.out_c; ++oc) {
      for (int y = 0; y < oh; ++y) {
        for (int x = 0; x < ow; ++x) {
          const float g = dy.at(n, oc, y, x);
          for (int c = 0; c < s.in_c; ++c) {
            for (int kh = 0; kh < s.kernel; ++kh) {
              const int iy = y * s.stride - s.pad + kh;
              if (iy < 0 || iy >= s.in_h) continue;
              for (int kw = 0; kw < s.kernel; ++kw) {
                const int ix = x * s.stride - s.pad + kw;
                if (ix < 0 || ix >= s.in_w) continue;
                const std::size_t fcol = static_cast<std::size_t>(
                    (c * s.kernel + kh) * s.kernel + kw);
                dx.at(n, c, iy, ix) +=
                    g * filters(static_cast<std::size_t>(oc), fcol);
              }
            }
          }
        }
      }
    }
  }
  return dx;
}

}  // namespace ctb
