#include "dnn/conv.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "dnn/im2col.hpp"
#include "telemetry/telemetry.hpp"
#include "util/parallel.hpp"

namespace ctb {

Matrixf random_filters(const ConvShape& s, Rng& rng) {
  Matrixf f(static_cast<std::size_t>(s.out_c),
            static_cast<std::size_t>(s.in_c * s.kernel * s.kernel));
  fill_random(f, rng, -0.5f, 0.5f);
  return f;
}

Tensor4 conv_forward_direct(const ConvShape& s, const Tensor4& input,
                            const Matrixf& filters) {
  CTB_CHECK(static_cast<int>(filters.rows()) == s.out_c);
  CTB_CHECK(static_cast<int>(filters.cols()) ==
            s.in_c * s.kernel * s.kernel);
  const int oh = s.out_h();
  const int ow = s.out_w();
  Tensor4 out(input.n(), s.out_c, oh, ow);
  // Each (n, oc) output plane is independent of all others.
  parallel_for(static_cast<long long>(input.n()) * s.out_c,
               [&](long long plane) {
    const int n = static_cast<int>(plane / s.out_c);
    const int oc = static_cast<int>(plane % s.out_c);
    {
      for (int y = 0; y < oh; ++y) {
        for (int x = 0; x < ow; ++x) {
          float acc = 0.0f;
          for (int c = 0; c < s.in_c; ++c) {
            for (int kh = 0; kh < s.kernel; ++kh) {
              const int iy = y * s.stride - s.pad + kh;
              if (iy < 0 || iy >= s.in_h) continue;
              for (int kw = 0; kw < s.kernel; ++kw) {
                const int ix = x * s.stride - s.pad + kw;
                if (ix < 0 || ix >= s.in_w) continue;
                const std::size_t fcol = static_cast<std::size_t>(
                    (c * s.kernel + kh) * s.kernel + kw);
                acc += filters(static_cast<std::size_t>(oc), fcol) *
                       input.at(n, c, iy, ix);
              }
            }
          }
          out.at(n, oc, y, x) = acc;
        }
      }
    }
  });
  return out;
}

Tensor4 conv_forward_gemm(const ConvShape& s, const Tensor4& input,
                          const Matrixf& filters) {
  const Matrixf cols = im2col(s, input);
  const GemmDims d = s.gemm_dims(input.n());
  Matrixf out(static_cast<std::size_t>(d.m), static_cast<std::size_t>(d.n));
  gemm_blocked(filters, cols, out, 1.0f, 0.0f);
  return col2im_output(s, input.n(), out);
}

void relu_inplace(Tensor4& t) {
  // Same elementwise definition as the fused kRelu epilogue (maps -0.0 and
  // NaN to +0.0), so an unfused GEMM + relu_inplace pass is bitwise
  // identical to the fused tile-store path. One extra read-modify-write
  // sweep over C — the pass the fused dispatch eliminates.
  CTB_TEL_COUNT("exec.c.passes", 1);
  for (float& x : t.flat()) x = x > 0.0f ? x : 0.0f;
}

Tensor4 max_pool(const Tensor4& input, int window, int stride, int pad) {
  CTB_CHECK(window >= 1 && stride >= 1 && pad >= 0);
  const int oh = (input.h() + 2 * pad - window) / stride + 1;
  const int ow = (input.w() + 2 * pad - window) / stride + 1;
  CTB_CHECK(oh > 0 && ow > 0);
  Tensor4 out(input.n(), input.c(), oh, ow);
  parallel_for(static_cast<long long>(input.n()) * input.c(),
               [&](long long plane) {
    const int n = static_cast<int>(plane / input.c());
    const int c = static_cast<int>(plane % input.c());
    {
      for (int y = 0; y < oh; ++y) {
        for (int x = 0; x < ow; ++x) {
          float best = -std::numeric_limits<float>::infinity();
          for (int kh = 0; kh < window; ++kh) {
            const int iy = y * stride - pad + kh;
            if (iy < 0 || iy >= input.h()) continue;
            for (int kw = 0; kw < window; ++kw) {
              const int ix = x * stride - pad + kw;
              if (ix < 0 || ix >= input.w()) continue;
              best = std::max(best, input.at(n, c, iy, ix));
            }
          }
          out.at(n, c, y, x) = best;
        }
      }
    }
  });
  return out;
}

void add_bias_inplace(Tensor4& t, std::span<const float> bias) {
  CTB_CHECK_MSG(static_cast<int>(bias.size()) == t.c(),
                "bias size must equal channel count");
  CTB_TEL_COUNT("exec.c.passes", 1);
  for (int n = 0; n < t.n(); ++n)
    for (int c = 0; c < t.c(); ++c)
      for (int y = 0; y < t.h(); ++y)
        for (int x = 0; x < t.w(); ++x)
          t.at(n, c, y, x) += bias[static_cast<std::size_t>(c)];
}

Tensor4 lrn_across_channels(const Tensor4& input, int window, float alpha,
                            float beta, float k) {
  CTB_CHECK(window >= 1);
  Tensor4 out(input.n(), input.c(), input.h(), input.w());
  const int half = window / 2;
  parallel_for(static_cast<long long>(input.n()) * input.c(),
               [&](long long plane) {
    const int n = static_cast<int>(plane / input.c());
    const int c = static_cast<int>(plane % input.c());
    {
      const int lo = std::max(0, c - half);
      const int hi = std::min(input.c() - 1, c + half);
      for (int y = 0; y < input.h(); ++y) {
        for (int x = 0; x < input.w(); ++x) {
          float sum_sq = 0.0f;
          for (int cc = lo; cc <= hi; ++cc) {
            const float v = input.at(n, cc, y, x);
            sum_sq += v * v;
          }
          const float scale =
              std::pow(k + alpha / static_cast<float>(window) * sum_sq,
                       beta);
          out.at(n, c, y, x) = input.at(n, c, y, x) / scale;
        }
      }
    }
  });
  return out;
}

std::vector<float> softmax(std::span<const float> logits) {
  CTB_CHECK(!logits.empty());
  float max_logit = logits[0];
  for (float v : logits) max_logit = std::max(max_logit, v);
  std::vector<float> out(logits.size());
  float sum = 0.0f;
  for (std::size_t i = 0; i < logits.size(); ++i) {
    out[i] = std::exp(logits[i] - max_logit);
    sum += out[i];
  }
  for (float& v : out) v /= sum;
  return out;
}

Tensor4 avg_pool(const Tensor4& input, int window, int stride, int pad) {
  CTB_CHECK(window >= 1 && stride >= 1 && pad >= 0);
  const int oh = (input.h() + 2 * pad - window) / stride + 1;
  const int ow = (input.w() + 2 * pad - window) / stride + 1;
  CTB_CHECK(oh > 0 && ow > 0);
  Tensor4 out(input.n(), input.c(), oh, ow);
  parallel_for(static_cast<long long>(input.n()) * input.c(),
               [&](long long plane) {
    const int n = static_cast<int>(plane / input.c());
    const int c = static_cast<int>(plane % input.c());
    {
      for (int y = 0; y < oh; ++y) {
        for (int x = 0; x < ow; ++x) {
          float sum = 0.0f;
          int count = 0;
          for (int kh = 0; kh < window; ++kh) {
            const int iy = y * stride - pad + kh;
            if (iy < 0 || iy >= input.h()) continue;
            for (int kw = 0; kw < window; ++kw) {
              const int ix = x * stride - pad + kw;
              if (ix < 0 || ix >= input.w()) continue;
              sum += input.at(n, c, iy, ix);
              ++count;
            }
          }
          out.at(n, c, y, x) = count > 0 ? sum / static_cast<float>(count)
                                         : 0.0f;
        }
      }
    }
  });
  return out;
}

Tensor4 concat_channels(std::span<const Tensor4* const> parts) {
  CTB_CHECK(!parts.empty());
  const Tensor4& first = *parts.front();
  int total_c = 0;
  for (const Tensor4* p : parts) {
    CTB_CHECK(p != nullptr);
    CTB_CHECK_MSG(p->n() == first.n() && p->h() == first.h() &&
                      p->w() == first.w(),
                  "concat parts must share N, H, W");
    total_c += p->c();
  }
  Tensor4 out(first.n(), total_c, first.h(), first.w());
  int c_base = 0;
  for (const Tensor4* p : parts) {
    for (int n = 0; n < p->n(); ++n)
      for (int c = 0; c < p->c(); ++c)
        for (int y = 0; y < p->h(); ++y)
          for (int x = 0; x < p->w(); ++x)
            out.at(n, c_base + c, y, x) = p->at(n, c, y, x);
    c_base += p->c();
  }
  return out;
}

}  // namespace ctb
