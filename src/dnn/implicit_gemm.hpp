// Implicit-GEMM convolution (paper Section 7.3: "The other algorithm to
// compute convolution is implicit GEMM, which can also be batched using our
// proposed framework").
//
// The convolution is executed as the same M x N x K GEMM as the im2col
// lowering, but the B matrix is never materialized: the kernel's staging
// loads compute the input address from the (k, j) coordinate on the fly.
// This saves the im2col materialization pass — one full write + read of the
// K x N column matrix through DRAM — at the cost of address arithmetic in
// the kernel.
#pragma once

#include <vector>

#include "core/api.hpp"
#include "dnn/conv.hpp"
#include "dnn/tensor.hpp"

namespace ctb {

/// Builds the implicit-GEMM operand for one convolution: A = filters,
/// B(k, j) gathers from `input` with im2col's index mapping, C = `out`.
/// `input` and `out` must outlive the returned operand.
GemmOperands implicit_conv_operands(const ConvShape& shape,
                                    const Tensor4& input,
                                    const Matrixf& filters, Matrixf& out);

/// Single implicit-GEMM convolution (functional); numerically identical to
/// conv_forward_gemm for the same tiling strategy.
Tensor4 conv_forward_implicit(const ConvShape& shape, const Tensor4& input,
                              const Matrixf& filters);

/// Batches several convolutions' implicit GEMMs through the planner, the
/// way inception branches are batched, without materializing any im2col
/// matrix. Inputs are parallel arrays; returns the output tensors.
std::vector<Tensor4> conv_batch_implicit(
    const std::vector<const ConvShape*>& shapes,
    const std::vector<const Tensor4*>& inputs,
    const std::vector<const Matrixf*>& filters, const PlannerConfig& config);

/// Modeled cost of materializing the im2col matrix for one conv (the pass
/// implicit GEMM avoids): writing and re-reading K x N floats through DRAM.
double im2col_materialization_us(const GpuArch& arch, const ConvShape& shape,
                                 int batch);

}  // namespace ctb
