// ctb::service failpoints — programmatic fault injection at service
// boundaries (DESIGN.md §10).
//
// A failpoint is a named site in the plan service ("service.planner.slow",
// "service.planner.throw", "service.planner.corrupt",
// "service.fallback.alloc") that consults a process-wide registry every time
// it is reached. Tests and chaos drills arm a site with an action (delay,
// throw, bad_alloc, corrupt) and an optional remaining-fires budget; the
// site then injects that fault as if the underlying component had failed.
//
// Armed either programmatically (set_failpoint / ScopedFailpoint) or through
// the CTB_FAILPOINTS environment variable, parsed once at first use:
//
//   CTB_FAILPOINTS="service.planner.slow=delay:5000:2,service.planner.throw=throw"
//
// spec grammar per entry: name=action[:arg[:count]] with action one of
// off|delay|throw|badalloc|corrupt, arg the action parameter (microseconds
// for delay), count the number of fires (-1 / absent = unlimited). Entries
// are separated by ',' or ';'.
//
// The whole registry compiles out under -DCTB_FAILPOINTS=OFF: every probe
// becomes a constant-folded no-op, so production builds carry zero cost and
// the chaos tests skip themselves via failpoints_compiled_in().
#pragma once

#include <cstdint>
#include <string>

namespace ctb::service {

/// What an armed failpoint injects when its site is reached.
enum class FailAction {
  kOff,       ///< disarmed: the site behaves normally
  kDelay,     ///< stall the site for `arg` microseconds (virtual or real)
  kThrow,     ///< throw CheckError from the site
  kBadAlloc,  ///< throw std::bad_alloc from the site
  kCorrupt,   ///< corrupt the site's product (e.g. truncate an aux array)
};

const char* to_string(FailAction action);

struct FailpointSpec {
  FailAction action = FailAction::kOff;
  std::int64_t arg = 0;  ///< action parameter; microseconds for kDelay
  int remaining = -1;    ///< fires left before auto-disarm; -1 = unlimited
};

#ifdef CTB_FAILPOINTS_ENABLED

constexpr bool failpoints_compiled_in() { return true; }

/// Arms (or, with FailAction::kOff, disarms) the named site. Thread-safe.
void set_failpoint(const std::string& name, FailpointSpec spec);

/// Disarms one site / every site. Hit counts survive clear_failpoint but
/// reset with clear_failpoints.
void clear_failpoint(const std::string& name);
void clear_failpoints();

/// Called by the instrumented site: returns the armed spec (consuming one
/// fire from a finite budget) or a kOff spec when the site is disarmed or
/// exhausted. Thread-safe; the first call parses CTB_FAILPOINTS.
FailpointSpec consume_failpoint(const char* name);

/// Times the named site fired an armed action (diagnostics for chaos tests).
std::int64_t failpoint_hits(const std::string& name);

/// Parses a CTB_FAILPOINTS-grammar spec string and arms every entry it
/// names. Returns the number of entries armed; malformed entries are
/// skipped, never fatal (a typo in an env var must not take the service
/// down). Exposed for tests; the env var goes through this exact path.
int load_failpoints_from_string(const std::string& spec);

#else  // !CTB_FAILPOINTS_ENABLED

constexpr bool failpoints_compiled_in() { return false; }

inline void set_failpoint(const std::string&, FailpointSpec) {}
inline void clear_failpoint(const std::string&) {}
inline void clear_failpoints() {}
inline FailpointSpec consume_failpoint(const char*) { return {}; }
inline std::int64_t failpoint_hits(const std::string&) { return 0; }
inline int load_failpoints_from_string(const std::string&) { return 0; }

#endif  // CTB_FAILPOINTS_ENABLED

/// RAII arming for tests: arms `name` on construction, disarms on scope
/// exit. Harmless no-op when failpoints are compiled out.
class ScopedFailpoint {
 public:
  ScopedFailpoint(std::string name, FailpointSpec spec)
      : name_(std::move(name)) {
    set_failpoint(name_, spec);
  }
  ~ScopedFailpoint() { clear_failpoint(name_); }
  ScopedFailpoint(const ScopedFailpoint&) = delete;
  ScopedFailpoint& operator=(const ScopedFailpoint&) = delete;

 private:
  std::string name_;
};

}  // namespace ctb::service
