#include "service/failpoint.hpp"

#include <cstdlib>
#include <map>
#include <mutex>
#include <utility>
#include <vector>

namespace ctb::service {

const char* to_string(FailAction action) {
  switch (action) {
    case FailAction::kOff:
      return "off";
    case FailAction::kDelay:
      return "delay";
    case FailAction::kThrow:
      return "throw";
    case FailAction::kBadAlloc:
      return "badalloc";
    case FailAction::kCorrupt:
      return "corrupt";
  }
  return "?";
}

#ifdef CTB_FAILPOINTS_ENABLED

namespace {

bool parse_action(const std::string& token, FailAction& out) {
  if (token == "off") out = FailAction::kOff;
  else if (token == "delay") out = FailAction::kDelay;
  else if (token == "throw") out = FailAction::kThrow;
  else if (token == "badalloc") out = FailAction::kBadAlloc;
  else if (token == "corrupt") out = FailAction::kCorrupt;
  else return false;
  return true;
}

bool parse_int64(const std::string& token, std::int64_t& out) {
  if (token.empty()) return false;
  char* end = nullptr;
  const long long v = std::strtoll(token.c_str(), &end, 10);
  if (end != token.c_str() + token.size()) return false;
  out = v;
  return true;
}

/// One entry of the spec grammar: name=action[:arg[:count]].
bool parse_entry(const std::string& entry, std::string& name,
                 FailpointSpec& spec) {
  const std::size_t eq = entry.find('=');
  if (eq == std::string::npos || eq == 0) return false;
  name = entry.substr(0, eq);
  std::vector<std::string> fields;
  std::size_t pos = eq + 1;
  while (pos <= entry.size()) {
    const std::size_t colon = entry.find(':', pos);
    if (colon == std::string::npos) {
      fields.push_back(entry.substr(pos));
      break;
    }
    fields.push_back(entry.substr(pos, colon - pos));
    pos = colon + 1;
  }
  if (fields.empty() || fields.size() > 3) return false;
  spec = FailpointSpec{};
  if (!parse_action(fields[0], spec.action)) return false;
  if (fields.size() >= 2 && !parse_int64(fields[1], spec.arg)) return false;
  if (fields.size() == 3) {
    std::int64_t count = 0;
    if (!parse_int64(fields[2], count)) return false;
    spec.remaining = static_cast<int>(count);
  }
  return true;
}

int arm_from_string(const std::string& spec,
                    std::map<std::string, std::pair<FailpointSpec,
                                                    std::int64_t>>& points) {
  int armed = 0;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    std::size_t sep = spec.find_first_of(",;", pos);
    if (sep == std::string::npos) sep = spec.size();
    const std::string entry = spec.substr(pos, sep - pos);
    pos = sep + 1;
    if (entry.empty()) continue;
    std::string name;
    FailpointSpec parsed;
    if (!parse_entry(entry, name, parsed)) continue;
    points[name].first = parsed;
    ++armed;
  }
  return armed;
}

struct Registry {
  std::mutex mu;
  // name -> (armed spec, hit count)
  std::map<std::string, std::pair<FailpointSpec, std::int64_t>> points;

  Registry() {
    // Env arming happens in the constructor, before the registry is
    // reachable from any other thread — no lock, no reentrancy.
    if (const char* env = std::getenv("CTB_FAILPOINTS"))
      arm_from_string(env, points);
  }
};

Registry& registry() {
  static Registry r;
  return r;
}

}  // namespace

void set_failpoint(const std::string& name, FailpointSpec spec) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  r.points[name].first = spec;
}

void clear_failpoint(const std::string& name) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  auto it = r.points.find(name);
  if (it != r.points.end()) it->second.first = FailpointSpec{};
}

void clear_failpoints() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  r.points.clear();
}

FailpointSpec consume_failpoint(const char* name) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  auto it = r.points.find(name);
  if (it == r.points.end()) return {};
  FailpointSpec& spec = it->second.first;
  if (spec.action == FailAction::kOff || spec.remaining == 0) return {};
  ++it->second.second;
  const FailpointSpec fired = spec;
  if (spec.remaining > 0) --spec.remaining;
  return fired;
}

std::int64_t failpoint_hits(const std::string& name) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  auto it = r.points.find(name);
  return it == r.points.end() ? 0 : it->second.second;
}

int load_failpoints_from_string(const std::string& spec) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  return arm_from_string(spec, r.points);
}

#endif  // CTB_FAILPOINTS_ENABLED

}  // namespace ctb::service
