// ctb::service — resilient, deadline-bounded plan serving (DESIGN.md §10).
//
// The library's PlanCache is a single-threaded memoizer: perfect for one
// training loop, unusable as the front door for millions of mixed-shape
// lookups. PlanService wraps it for serving:
//
//   * N-way sharded caches (per-shard mutex) safe under concurrent
//     parallel_for callers, fronted by a cheap lock-free membership filter
//     that lets definite misses skip the shard lock entirely;
//   * deadline-bounded lookup: when the full planner (auto-offline / RF)
//     cannot answer within the request deadline, the instantly-computable
//     threshold-only fallback plan is served *now* (state kDegraded) and a
//     background worker upgrades the cache entry when real planning lands;
//   * retry with deterministic exponential backoff around transient planner
//     failures (PlanCache's strong exception guarantee means a failed
//     attempt leaves nothing behind), and quarantine of signatures whose
//     plans repeatedly fail validate_plan, so one poisoned shape degrades
//     to the fallback plan instead of wedging the service;
//   * a virtual clock hook making every timeout/backoff decision
//     reproducible in tests, and failpoints (service/failpoint.hpp) at the
//     planner and fallback boundaries for chaos drills.
//
// Every plan handed out — hit, fresh, degraded, or upgraded — has passed
// validate_plan against its batch, and executes through the ordinary
// validate/audit/execute path, so served results are bit-exact with direct
// planning. State transitions are counted under the service.* telemetry
// taxonomy and mirrored in an always-on ServiceStats (available even when
// telemetry is compiled out).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/api.hpp"
#include "core/plan_io.hpp"
#include "util/assert.hpp"

namespace ctb::service {

/// Thrown when the service cannot produce any valid plan for a batch: the
/// full planner failed after all retries AND fallback planning failed too
/// (e.g. allocation failure during degradation). Extends CheckError so
/// existing catch sites treat it as the typed, clean failure it is.
class PlanServiceError : public CheckError {
 public:
  enum class Kind {
    kPlannerFailed,   ///< full planner exhausted its retry budget
    kFallbackFailed,  ///< the instant fallback path failed as well
  };

  PlanServiceError(Kind kind, const std::string& what)
      : CheckError(what), kind_(kind) {}

  Kind kind() const { return kind_; }

 private:
  Kind kind_;
};

/// Deterministic test clock: time only moves when a test (or a delay
/// failpoint) advances it, so deadline-miss and backoff decisions are
/// reproducible bit-for-bit. Thread-safe; the service's worker thread reads
/// it concurrently with the test advancing it.
class VirtualClock {
 public:
  std::int64_t now_us() const { return now_.load(std::memory_order_acquire); }
  void advance(std::int64_t us) {
    now_.fetch_add(us, std::memory_order_acq_rel);
  }

 private:
  std::atomic<std::int64_t> now_{0};
};

/// How a ServedPlan was produced (the service state machine's terminal
/// states; see DESIGN.md §10 for the full diagram).
enum class ServeState {
  kHit,          ///< cached full plan
  kPlanned,      ///< fresh full plan, computed within the deadline
  kDegraded,     ///< instant fallback plan (deadline missed or planner down)
  kUpgraded,     ///< full plan that just replaced a degraded entry
  kQuarantined,  ///< fallback plan for a signature under quarantine
};

const char* to_string(ServeState state);

/// A served plan. The shared_ptr keeps the plan alive even if a concurrent
/// upgrade replaces the cache entry mid-execution.
struct ServedPlan {
  std::shared_ptr<const PlanSummary> summary;
  ServeState state = ServeState::kHit;

  /// Trace id of the request that produced this response (telemetry/trace
  /// .hpp): the id every span, histogram exemplar, and flight-recorder
  /// event emitted while serving carries. Callers executing the plan can
  /// re-install it (ScopedTraceContext) so execution joins the same trail.
  /// 0 when telemetry is compiled out.
  std::uint64_t trace_id = 0;

  /// True when this response carries the fallback plan, not the full one.
  bool degraded() const {
    return state == ServeState::kDegraded ||
           state == ServeState::kQuarantined;
  }
};

struct PlanServiceConfig {
  /// Configuration of the *full* planner. The fallback planner is derived
  /// from it via degraded_fallback_config (threshold-only, no forest).
  PlannerConfig planner;
  /// Cache shards. <= 0 means "from the CTB_PLAN_SHARDS env var, default
  /// 8"; always clamped to [1, 256].
  int shards = 0;
  /// Request deadline in microseconds. 0 disables the deadline machinery
  /// entirely (fully inline planning, no worker thread — deterministic, the
  /// replay bench uses this). < 0 means "from CTB_PLAN_DEADLINE_US,
  /// default 0".
  std::int64_t deadline_us = -1;
  /// Retries after a failed full-planning attempt (so max_retries + 1
  /// attempts total), with exponential backoff between attempts.
  int max_retries = 2;
  /// Backoff before retry r (1-based) is backoff_base_us << (r - 1),
  /// advanced on the virtual clock when one is installed, slept (capped)
  /// otherwise.
  std::int64_t backoff_base_us = 100;
  /// Consecutive failed full-planning episodes for one signature before it
  /// is quarantined (served the fallback without invoking the full planner
  /// again until release_quarantined()).
  int quarantine_threshold = 3;
  /// Membership filter size in bits (rounded up to a multiple of 64).
  std::size_t filter_bits = std::size_t{1} << 16;
  /// Deterministic clock for tests; nullptr = std::chrono::steady_clock.
  /// Must outlive the service.
  VirtualClock* clock = nullptr;
  /// Test injection for the full planner (same contract as
  /// PlanCache::PlannerFn); the fallback planner is never replaced, so a
  /// degraded answer is always a genuinely planned one.
  PlanCache::PlannerFn planner_fn;
};

/// Always-on mirror of the service.* telemetry counters, so tests and
/// callers can observe the state machine even under -DCTB_TELEMETRY=OFF.
struct ServiceStats {
  std::int64_t admitted = 0;         ///< responses served (any state)
  std::int64_t hits = 0;             ///< lookups that found a cache entry
  std::int64_t misses = 0;           ///< lookups that found nothing
  std::int64_t filter_rejects = 0;   ///< misses decided by the filter alone
  std::int64_t degraded = 0;         ///< responses carrying a fallback plan
  std::int64_t upgraded = 0;         ///< degraded entries replaced by full plans
  std::int64_t retried = 0;          ///< full-planning retry attempts
  std::int64_t quarantined = 0;      ///< signatures placed under quarantine
  std::int64_t deadline_misses = 0;  ///< lookups whose deadline expired
};

/// Sharded, deadline-bounded plan service. Thread-safe: any number of
/// threads may call get() concurrently. Construction and destruction are
/// not concurrent with use (ordinary object lifetime rules).
class PlanService {
 public:
  explicit PlanService(PlanServiceConfig config = {});
  ~PlanService();

  PlanService(const PlanService&) = delete;
  PlanService& operator=(const PlanService&) = delete;

  /// Serves a plan for the batch. Always returns a plan that passed
  /// validate_plan against `dims`, or throws: CheckError on degenerate
  /// input (empty batch, invalid dims — caller errors, as in PlanCache),
  /// PlanServiceError when both the full planner and the fallback failed.
  ServedPlan get(std::span<const GemmDims> dims);

  /// Like get(dims) but every served plan — hit, fresh, degraded, or
  /// upgraded — carries the per-GEMM fused-epilogue specs (parallel to
  /// `dims`; empty or all-zero means none and serves identically to the
  /// plain form). Epilogues are part of the signature, so the same shapes
  /// with different chains are distinct cache entries, and a degraded
  /// fallback plan carries the chain too: fused execution never silently
  /// drops an epilogue on the degraded path.
  ServedPlan get(std::span<const GemmDims> dims,
                 std::span<const int> epilogues);

  /// Blocks until every queued background planning job has completed.
  void drain();

  /// Drops all entries, metadata, and filter bits. In-flight background
  /// jobs from before the clear complete but no longer write to the cache.
  void clear();

  /// Total cached entries across shards (degraded entries included).
  std::size_t size() const;

  /// Upgrade generation: bumped once per degraded->full upgrade (the same
  /// event invalidates the process-wide pack cache, so packed panels can
  /// never outlive the plan they were packed for).
  std::uint64_t generation() const {
    return generation_.load(std::memory_order_acquire);
  }

  ServiceStats stats() const;

  bool is_quarantined(std::span<const GemmDims> dims) const;

  /// Lifts quarantine everywhere (operator action after a planner fix):
  /// quarantined signatures keep their fallback entries but become eligible
  /// for upgrade again. Returns how many signatures were released.
  std::size_t release_quarantined();

  std::int64_t deadline_us() const { return deadline_us_; }
  int shard_count() const { return static_cast<int>(shards_.size()); }

 private:
  /// Completion state shared between a queued job and the requesters
  /// waiting on it (concurrent misses on one signature join one job).
  struct JobState {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    bool ok = false;
    std::string error;
    std::shared_ptr<const PlanSummary> result;
  };

  /// Per-signature serving metadata, colocated with the shard's cache.
  struct Meta {
    bool degraded = false;
    bool quarantined = false;
    int failures = 0;  ///< consecutive failed full-planning episodes
    std::shared_ptr<JobState> inflight;
  };

  struct Shard {
    mutable std::mutex mu;
    PlanCache cache;
    std::unordered_map<std::uint64_t, Meta> meta;
    explicit Shard(PlannerConfig config) : cache(std::move(config)) {}
  };

  struct Job {
    std::uint64_t sig = 0;
    std::vector<GemmDims> dims;
    std::vector<int> epilogues;  ///< per-GEMM specs; empty = none
    std::int64_t deadline_point = -1;  ///< < 0: pure upgrade, no deadline
    std::uint64_t epoch = 0;
    std::uint64_t trace = 0;  ///< requesting trace; worker adopts it
    std::shared_ptr<JobState> state;
  };

  Shard& shard_for(std::uint64_t sig) const {
    return *shards_[sig % shards_.size()];
  }

  std::int64_t clock_now() const;
  void backoff(std::int64_t us);

  bool filter_may_contain(std::uint64_t sig) const;
  void filter_insert(std::uint64_t sig);
  void filter_reset();

  // Every serving step carries the batch's epilogue stream alongside its
  // dims (empty span = none) so degraded and upgraded plans both keep it.
  ServedPlan serve(std::uint64_t sig, std::span<const GemmDims> dims,
                   std::span<const int> epilogues);
  ServedPlan admit_cold(std::uint64_t sig, std::span<const GemmDims> dims,
                        std::span<const int> epilogues, Shard& sh);
  ServedPlan degrade_cold(std::uint64_t sig, std::span<const GemmDims> dims,
                          std::span<const int> epilogues, Shard& sh,
                          const std::string& planner_error);
  ServedPlan upgrade_inline(std::uint64_t sig, std::span<const GemmDims> dims,
                            std::span<const int> epilogues, Shard& sh,
                            std::shared_ptr<const PlanSummary> fallback);

  PlanSummary plan_full(std::span<const GemmDims> dims,
                        std::span<const int> epilogues);
  PlanSummary plan_full_with_retries(std::span<const GemmDims> dims,
                                     std::span<const int> epilogues);
  std::shared_ptr<const PlanSummary> make_fallback(
      std::span<const GemmDims> dims, std::span<const int> epilogues);

  void record_failure(std::uint64_t sig, Shard& sh);
  void note_upgrade();

  std::shared_ptr<JobState> enqueue_job(std::uint64_t sig,
                                        std::span<const GemmDims> dims,
                                        std::span<const int> epilogues,
                                        Shard& sh,
                                        std::int64_t deadline_point);
  void wait_for_job(JobState& job, std::int64_t deadline_point);
  void start_worker();
  void worker_loop();
  void process_job(Job& job);

  PlanServiceConfig config_;
  std::int64_t deadline_us_ = 0;
  BatchedGemmPlanner full_planner_;
  BatchedGemmPlanner fallback_planner_;

  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::atomic<std::uint64_t>> filter_;
  std::atomic<std::uint64_t> generation_{0};
  std::atomic<std::uint64_t> epoch_{0};

  // Background upgrade worker (started lazily; only when deadline_us_ > 0).
  std::mutex jobs_mu_;
  std::condition_variable jobs_cv_;
  std::condition_variable drain_cv_;
  std::deque<Job> jobs_;
  int active_jobs_ = 0;
  bool stop_ = false;
  bool worker_started_ = false;
  std::thread worker_;

  struct AtomicStats {
    std::atomic<std::int64_t> admitted{0};
    std::atomic<std::int64_t> hits{0};
    std::atomic<std::int64_t> misses{0};
    std::atomic<std::int64_t> filter_rejects{0};
    std::atomic<std::int64_t> degraded{0};
    std::atomic<std::int64_t> upgraded{0};
    std::atomic<std::int64_t> retried{0};
    std::atomic<std::int64_t> quarantined{0};
    std::atomic<std::int64_t> deadline_misses{0};
  };
  mutable AtomicStats stats_;
};

}  // namespace ctb::service
