#include "service/plan_service.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <exception>
#include <new>
#include <string>
#include <utility>

#include "kernels/pack_cache.hpp"
#include "service/failpoint.hpp"
#include "telemetry/telemetry.hpp"
#include "telemetry/trace.hpp"

namespace ctb::service {

namespace {

std::int64_t env_int64(const char* name, std::int64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const long long parsed = std::strtoll(v, &end, 10);
  if (end == v || *end != '\0' || parsed < 0) return fallback;
  return parsed;
}

std::int64_t steady_now_us() {
  using namespace std::chrono;
  return duration_cast<microseconds>(
             steady_clock::now().time_since_epoch())
      .count();
}

// Second, independent hash of the signature for the filter's double probe
// (splitmix64 finalizer — a single FNV output would make the two probes
// perfectly correlated).
std::uint64_t remix(std::uint64_t h) {
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  h *= 0xc4ceb9fe1a85ec53ULL;
  h ^= h >> 33;
  return h;
}

// Real-clock backoff/delay sleeps are capped so a misconfigured spec or
// failpoint cannot stall serving for more than a beat per attempt.
constexpr std::int64_t kMaxRealSleepUs = 50'000;

}  // namespace

const char* to_string(ServeState state) {
  switch (state) {
    case ServeState::kHit:
      return "hit";
    case ServeState::kPlanned:
      return "planned";
    case ServeState::kDegraded:
      return "degraded";
    case ServeState::kUpgraded:
      return "upgraded";
    case ServeState::kQuarantined:
      return "quarantined";
  }
  return "?";
}

PlanService::PlanService(PlanServiceConfig config)
    : config_(std::move(config)),
      full_planner_(config_.planner),
      fallback_planner_(degraded_fallback_config(config_.planner)) {
  long long shards = config_.shards;
  if (shards <= 0) shards = env_int64("CTB_PLAN_SHARDS", 8);
  shards = std::clamp<long long>(shards, 1, 256);
  deadline_us_ = config_.deadline_us;
  if (deadline_us_ < 0) deadline_us_ = env_int64("CTB_PLAN_DEADLINE_US", 0);
  shards_.reserve(static_cast<std::size_t>(shards));
  for (long long i = 0; i < shards; ++i)
    shards_.push_back(std::make_unique<Shard>(config_.planner));
  const std::size_t bits = std::max<std::size_t>(config_.filter_bits, 64);
  filter_ = std::vector<std::atomic<std::uint64_t>>((bits + 63) / 64);
}

PlanService::~PlanService() {
  {
    std::lock_guard<std::mutex> lock(jobs_mu_);
    stop_ = true;
  }
  jobs_cv_.notify_all();
  if (worker_.joinable()) worker_.join();
}

std::int64_t PlanService::clock_now() const {
  return config_.clock != nullptr ? config_.clock->now_us() : steady_now_us();
}

void PlanService::backoff(std::int64_t us) {
  if (config_.clock != nullptr) {
    config_.clock->advance(us);
    return;
  }
  std::this_thread::sleep_for(
      std::chrono::microseconds(std::min(us, kMaxRealSleepUs)));
}

// ---------------------------------------------------------------------------
// Membership filter
// ---------------------------------------------------------------------------
//
// A fixed-size double-probe Bloom filter over batch signatures. Inserts
// happen whenever an entry (full or degraded) is cached; bits are only reset
// wholesale by clear(). No false negatives, so a "no" answer skips the shard
// lock entirely — the common case for cold traffic — while a false positive
// merely costs the ordinary locked lookup.

bool PlanService::filter_may_contain(std::uint64_t sig) const {
  const std::size_t nbits = filter_.size() * 64;
  const auto probe = [&](std::uint64_t h) {
    const std::size_t b = static_cast<std::size_t>(h % nbits);
    return (filter_[b / 64].load(std::memory_order_acquire) >> (b % 64)) & 1u;
  };
  return probe(sig) != 0 && probe(remix(sig)) != 0;
}

void PlanService::filter_insert(std::uint64_t sig) {
  const std::size_t nbits = filter_.size() * 64;
  const auto set = [&](std::uint64_t h) {
    const std::size_t b = static_cast<std::size_t>(h % nbits);
    filter_[b / 64].fetch_or(std::uint64_t{1} << (b % 64),
                             std::memory_order_acq_rel);
  };
  set(sig);
  set(remix(sig));
}

void PlanService::filter_reset() {
  for (auto& word : filter_) word.store(0, std::memory_order_release);
}

// ---------------------------------------------------------------------------
// Planning primitives
// ---------------------------------------------------------------------------

PlanSummary PlanService::plan_full(std::span<const GemmDims> dims,
                                   std::span<const int> epilogues) {
  FailpointSpec fp = consume_failpoint("service.planner.slow");
  if (fp.action == FailAction::kDelay) backoff(fp.arg);
  fp = consume_failpoint("service.planner.throw");
  if (fp.action == FailAction::kThrow)
    throw CheckError("injected failpoint: service.planner.throw");
  if (fp.action == FailAction::kBadAlloc) throw std::bad_alloc();
  PlanSummary summary =
      config_.planner_fn ? config_.planner_fn(dims) : full_planner_.plan(dims);
  // Epilogues ride along as a per-GEMM aux array regardless of which planner
  // produced the plan (the injected test planner included).
  if (!epilogues.empty())
    summary.plan.epilogue_of_gemm.assign(epilogues.begin(), epilogues.end());
  fp = consume_failpoint("service.planner.corrupt");
  if (fp.action == FailAction::kCorrupt &&
      !summary.plan.gemm_of_tile.empty()) {
    // Truncate one aux array: validate_plan cannot miss the length mismatch,
    // so this models a planner emitting a structurally broken plan.
    summary.plan.gemm_of_tile.pop_back();
  }
  return summary;
}

PlanSummary PlanService::plan_full_with_retries(
    std::span<const GemmDims> dims, std::span<const int> epilogues) {
  std::string last_error;
  const int attempts = std::max(config_.max_retries, 0) + 1;
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      stats_.retried.fetch_add(1, std::memory_order_relaxed);
      CTB_TEL_COUNT("service.retried", 1);
      backoff(config_.backoff_base_us << (attempt - 1));
    }
    try {
      PlanSummary summary = plan_full(dims, epilogues);
      validate_plan(summary.plan, dims);
      return summary;
    } catch (const std::exception& e) {
      last_error = e.what();
    }
  }
  throw PlanServiceError(
      PlanServiceError::Kind::kPlannerFailed,
      "plan service: full planner failed after " + std::to_string(attempts) +
          " attempts: " + last_error);
}

std::shared_ptr<const PlanSummary> PlanService::make_fallback(
    std::span<const GemmDims> dims, std::span<const int> epilogues) {
  const FailpointSpec fp = consume_failpoint("service.fallback.alloc");
  if (fp.action == FailAction::kBadAlloc) throw std::bad_alloc();
  if (fp.action == FailAction::kThrow)
    throw CheckError("injected failpoint: service.fallback.alloc");
  PlanSummary summary = fallback_planner_.plan(dims, epilogues);
  validate_plan(summary.plan, dims);
  return std::make_shared<const PlanSummary>(std::move(summary));
}

void PlanService::record_failure(std::uint64_t sig, Shard& sh) {
  bool newly_quarantined = false;
  int failures = 0;
  {
    std::lock_guard<std::mutex> lock(sh.mu);
    Meta& meta = sh.meta[sig];
    ++meta.failures;
    failures = meta.failures;
    if (!meta.quarantined && meta.failures >= config_.quarantine_threshold) {
      meta.quarantined = true;
      newly_quarantined = true;
    }
  }
  if (newly_quarantined) {
    stats_.quarantined.fetch_add(1, std::memory_order_relaxed);
    CTB_TEL_COUNT("service.quarantined", 1);
    CTB_TEL_FLIGHT(kQuarantine, "consecutive planner failures", failures,
                   static_cast<std::int64_t>(sig));
    // The quarantine transition is exactly the moment a postmortem wants
    // the recent decision trail for; persist it while it is still hot.
    telemetry::flight_autodump("quarantine");
  }
}

void PlanService::note_upgrade() {
  stats_.upgraded.fetch_add(1, std::memory_order_relaxed);
  CTB_TEL_COUNT("service.upgraded", 1);
  CTB_TEL_FLIGHT(kUpgrade, "degraded entry replaced", 0, 0);
  generation_.fetch_add(1, std::memory_order_acq_rel);
  // Panels in the pack cache may have been packed while executing the
  // degraded plan; the upgraded plan tiles the batch differently, so drop
  // them all rather than risk serving a stale panel.
  invalidate_pack_cache();
}

// ---------------------------------------------------------------------------
// Serving
// ---------------------------------------------------------------------------

ServedPlan PlanService::get(std::span<const GemmDims> dims) {
  return get(dims, {});
}

ServedPlan PlanService::get(std::span<const GemmDims> dims,
                            std::span<const int> epilogues) {
  CTB_CHECK_MSG(!dims.empty(), "cannot serve an empty batch");
  for (std::size_t i = 0; i < dims.size(); ++i)
    CTB_CHECK_MSG(dims[i].valid(), "GEMM " << i << " has degenerate dims "
                                           << dims[i].m << 'x' << dims[i].n
                                           << 'x' << dims[i].k);
  // Normalize (as PlanCache does) so an all-zero stream shares the plain
  // batch's signature, cache entry, and plan.
  bool any_epilogue = false;
  for (int e : epilogues) any_epilogue = any_epilogue || e != 0;
  if (!any_epilogue) epilogues = {};
  CTB_CHECK_MSG(epilogues.empty() || epilogues.size() == dims.size(),
                "epilogue stream holds " << epilogues.size()
                                         << " entries for " << dims.size()
                                         << " GEMMs");
  for (std::size_t i = 0; i < epilogues.size(); ++i)
    CTB_CHECK_MSG(epilogue_packed_valid(epilogues[i]),
                  "GEMM " << i << " has malformed epilogue spec "
                          << epilogues[i]);
  // Request-scoped trace: adopt the caller's context when one is active
  // (explicit propagation), otherwise mint a fresh id for this lookup.
  // Everything downstream — planner spans, cache flight events, the
  // lookup-latency exemplar below — is stamped with it.
  const telemetry::ScopedTraceContext trace_scope(
      "service", static_cast<std::int32_t>(dims.size()));
  const std::int64_t t0 = steady_now_us();
  const std::uint64_t sig =
      batch_signature(dims, config_.planner, epilogues);
  ServedPlan served = serve(sig, dims, epilogues);
  served.trace_id = telemetry::current_trace().id;
  stats_.admitted.fetch_add(1, std::memory_order_relaxed);
  CTB_TEL_COUNT("service.admitted", 1);
  const std::int64_t lookup_us = steady_now_us() - t0;
  CTB_TEL_HIST("service.lookup_us", lookup_us);
  CTB_TEL_FLIGHT(kServe, to_string(served.state),
                 static_cast<std::int64_t>(dims.size()), lookup_us);
  return served;
}

ServedPlan PlanService::serve(std::uint64_t sig,
                              std::span<const GemmDims> dims,
                              std::span<const int> epilogues) {
  Shard& sh = shard_for(sig);
  if (!filter_may_contain(sig)) {
    stats_.filter_rejects.fetch_add(1, std::memory_order_relaxed);
    CTB_TEL_COUNT("service.filter.reject", 1);
    stats_.misses.fetch_add(1, std::memory_order_relaxed);
    CTB_TEL_COUNT("service.miss", 1);
    return admit_cold(sig, dims, epilogues, sh);
  }
  std::shared_ptr<const PlanSummary> cached;
  Meta meta_copy;
  {
    std::lock_guard<std::mutex> lock(sh.mu);
    cached = sh.cache.lookup(sig);
    if (cached) {
      auto it = sh.meta.find(sig);
      if (it != sh.meta.end()) meta_copy = it->second;
    }
  }
  if (!cached) {
    stats_.misses.fetch_add(1, std::memory_order_relaxed);
    CTB_TEL_COUNT("service.miss", 1);
    return admit_cold(sig, dims, epilogues, sh);
  }
  stats_.hits.fetch_add(1, std::memory_order_relaxed);
  CTB_TEL_COUNT("service.hit", 1);
  if (meta_copy.quarantined) {
    stats_.degraded.fetch_add(1, std::memory_order_relaxed);
    CTB_TEL_COUNT("service.degraded", 1);
    return {std::move(cached), ServeState::kQuarantined};
  }
  if (!meta_copy.degraded) return {std::move(cached), ServeState::kHit};
  // Degraded entry: keep serving the fallback while the upgrade runs in the
  // background (async mode), or upgrade right here (inline mode).
  if (deadline_us_ > 0) {
    if (!meta_copy.inflight)
      enqueue_job(sig, dims, epilogues, sh, /*deadline_point=*/-1);
    stats_.degraded.fetch_add(1, std::memory_order_relaxed);
    CTB_TEL_COUNT("service.degraded", 1);
    return {std::move(cached), ServeState::kDegraded};
  }
  return upgrade_inline(sig, dims, epilogues, sh, std::move(cached));
}

ServedPlan PlanService::upgrade_inline(
    std::uint64_t sig, std::span<const GemmDims> dims,
    std::span<const int> epilogues, Shard& sh,
    std::shared_ptr<const PlanSummary> fallback) {
  try {
    PlanSummary summary = plan_full_with_retries(dims, epilogues);
    std::shared_ptr<const PlanSummary> upgraded;
    {
      std::lock_guard<std::mutex> lock(sh.mu);
      upgraded = sh.cache.upsert(sig, std::move(summary));
      Meta& meta = sh.meta[sig];
      meta.degraded = false;
      meta.failures = 0;
      filter_insert(sig);
    }
    note_upgrade();
    return {std::move(upgraded), ServeState::kUpgraded};
  } catch (const std::exception&) {
    record_failure(sig, sh);
    stats_.degraded.fetch_add(1, std::memory_order_relaxed);
    CTB_TEL_COUNT("service.degraded", 1);
    return {std::move(fallback), ServeState::kDegraded};
  }
}

ServedPlan PlanService::admit_cold(std::uint64_t sig,
                                   std::span<const GemmDims> dims,
                                   std::span<const int> epilogues,
                                   Shard& sh) {
  if (deadline_us_ <= 0) {
    // Inline mode: plan fully right now; degrade only when the planner is
    // persistently down.
    try {
      PlanSummary summary = plan_full_with_retries(dims, epilogues);
      std::shared_ptr<const PlanSummary> planned;
      {
        std::lock_guard<std::mutex> lock(sh.mu);
        planned = sh.cache.upsert(sig, std::move(summary));
        (void)sh.meta[sig];  // materialize healthy metadata with the entry
        filter_insert(sig);
      }
      return {std::move(planned), ServeState::kPlanned};
    } catch (const std::exception& e) {
      record_failure(sig, sh);
      return degrade_cold(sig, dims, epilogues, sh, e.what());
    }
  }
  // Deadline-bounded: hand full planning to the worker, compute the instant
  // fallback meanwhile, then serve whichever is ready when the deadline
  // arrives. The deadline point is fixed before any planning work starts.
  const std::int64_t deadline_point = clock_now() + deadline_us_;
  std::shared_ptr<JobState> job =
      enqueue_job(sig, dims, epilogues, sh, deadline_point);
  if (!job) {
    // Quarantined signature whose entry never materialized (every fallback
    // attempt so far failed too): serve the fallback without touching the
    // full planner, exactly like a quarantined hit.
    std::shared_ptr<const PlanSummary> fallback;
    try {
      fallback = make_fallback(dims, epilogues);
    } catch (const std::exception& e) {
      throw PlanServiceError(
          PlanServiceError::Kind::kFallbackFailed,
          "plan service: signature quarantined and fallback planning "
          "failed (" +
              std::string(e.what()) + ")");
    }
    {
      std::lock_guard<std::mutex> lock(sh.mu);
      if (!sh.cache.peek(sig)) {
        fallback = sh.cache.upsert(sig, PlanSummary(*fallback));
        filter_insert(sig);
      }
    }
    stats_.degraded.fetch_add(1, std::memory_order_relaxed);
    CTB_TEL_COUNT("service.degraded", 1);
    return {std::move(fallback), ServeState::kQuarantined};
  }
  std::shared_ptr<const PlanSummary> fallback;
  std::string fallback_error;
  try {
    fallback = make_fallback(dims, epilogues);
  } catch (const std::exception& e) {
    fallback_error = e.what();
  }
  wait_for_job(*job, deadline_point);
  // Expiry has priority over completion: when the (virtual) clock is past
  // the deadline the response is the fallback even if the full plan raced
  // in — that makes outcomes deterministic under the test clock, where only
  // injected delays move time.
  const bool expired = clock_now() > deadline_point;
  if (!expired) {
    std::lock_guard<std::mutex> lock(job->mu);
    if (job->done && job->ok) return {job->result, ServeState::kPlanned};
  }
  std::string planner_error;
  {
    std::lock_guard<std::mutex> lock(job->mu);
    if (job->done && !job->ok) planner_error = job->error;
  }
  if (expired) {
    stats_.deadline_misses.fetch_add(1, std::memory_order_relaxed);
    CTB_TEL_COUNT("service.deadline_miss", 1);
    CTB_TEL_FLIGHT(kDeadlineMiss, "deadline expired", deadline_us_,
                   clock_now() - deadline_point);
  }
  if (!fallback) {
    throw PlanServiceError(
        PlanServiceError::Kind::kFallbackFailed,
        "plan service: fallback planning failed (" + fallback_error + ")" +
            (planner_error.empty() ? ""
                                   : "; full planner: " + planner_error));
  }
  // Cache the fallback as a degraded entry unless the worker (or another
  // requester) already installed something.
  {
    std::lock_guard<std::mutex> lock(sh.mu);
    if (!sh.cache.peek(sig)) {
      fallback = sh.cache.upsert(sig, PlanSummary(*fallback));
      sh.meta[sig].degraded = true;
      filter_insert(sig);
    }
  }
  stats_.degraded.fetch_add(1, std::memory_order_relaxed);
  CTB_TEL_COUNT("service.degraded", 1);
  return {std::move(fallback), ServeState::kDegraded};
}

ServedPlan PlanService::degrade_cold(std::uint64_t sig,
                                     std::span<const GemmDims> dims,
                                     std::span<const int> epilogues,
                                     Shard& sh,
                                     const std::string& planner_error) {
  std::shared_ptr<const PlanSummary> fallback;
  try {
    fallback = make_fallback(dims, epilogues);
  } catch (const std::exception& e) {
    throw PlanServiceError(
        PlanServiceError::Kind::kFallbackFailed,
        "plan service: full planner failed (" + planner_error +
            ") and fallback planning failed (" + e.what() + ")");
  }
  {
    std::lock_guard<std::mutex> lock(sh.mu);
    if (!sh.cache.peek(sig)) {
      fallback = sh.cache.upsert(sig, PlanSummary(*fallback));
      sh.meta[sig].degraded = true;
      filter_insert(sig);
    }
  }
  stats_.degraded.fetch_add(1, std::memory_order_relaxed);
  CTB_TEL_COUNT("service.degraded", 1);
  return {std::move(fallback), ServeState::kDegraded};
}

// ---------------------------------------------------------------------------
// Background worker
// ---------------------------------------------------------------------------

std::shared_ptr<PlanService::JobState> PlanService::enqueue_job(
    std::uint64_t sig, std::span<const GemmDims> dims,
    std::span<const int> epilogues, Shard& sh, std::int64_t deadline_point) {
  auto state = std::make_shared<JobState>();
  {
    std::lock_guard<std::mutex> lock(sh.mu);
    Meta& meta = sh.meta[sig];
    if (meta.inflight) return meta.inflight;
    if (meta.quarantined) return nullptr;  // quarantine blocks re-planning
    meta.inflight = state;
  }
  start_worker();
  {
    std::lock_guard<std::mutex> lock(jobs_mu_);
    jobs_.push_back(Job{sig,
                        std::vector<GemmDims>(dims.begin(), dims.end()),
                        std::vector<int>(epilogues.begin(), epilogues.end()),
                        deadline_point,
                        epoch_.load(std::memory_order_acquire),
                        telemetry::current_trace().id, state});
  }
  jobs_cv_.notify_one();
  return state;
}

void PlanService::wait_for_job(JobState& job, std::int64_t deadline_point) {
  if (config_.clock != nullptr) {
    // Virtual time: poll for completion or clock expiry. Progress is
    // guaranteed — the worker always drains its queue, and every injected
    // delay advances the clock.
    std::unique_lock<std::mutex> lock(job.mu);
    while (!job.done && clock_now() <= deadline_point)
      job.cv.wait_for(lock, std::chrono::microseconds(200));
    return;
  }
  const std::int64_t remaining = deadline_point - clock_now();
  std::unique_lock<std::mutex> lock(job.mu);
  if (remaining > 0)
    job.cv.wait_for(lock, std::chrono::microseconds(remaining),
                    [&] { return job.done; });
}

void PlanService::start_worker() {
  {
    std::lock_guard<std::mutex> lock(jobs_mu_);
    if (worker_started_) return;
    worker_started_ = true;
  }
  worker_ = std::thread(&PlanService::worker_loop, this);
}

void PlanService::worker_loop() {
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(jobs_mu_);
      jobs_cv_.wait(lock, [&] { return stop_ || !jobs_.empty(); });
      // Drain the backlog even on shutdown so accepted upgrades complete.
      if (jobs_.empty()) return;
      job = std::move(jobs_.front());
      jobs_.pop_front();
      ++active_jobs_;
    }
    process_job(job);
    {
      std::lock_guard<std::mutex> lock(jobs_mu_);
      --active_jobs_;
    }
    drain_cv_.notify_all();
  }
}

void PlanService::process_job(Job& job) {
  // The worker adopts the requesting trace so background planning spans and
  // quarantine/upgrade flight events land in the requester's trail.
  const telemetry::ScopedTraceContext trace_scope(telemetry::TraceContext{
      job.trace, static_cast<std::int32_t>(job.dims.size()),
      "service.worker"});
  Shard& sh = shard_for(job.sig);
  std::shared_ptr<const PlanSummary> result;
  bool ok = false;
  std::string error;
  try {
    PlanSummary summary = plan_full_with_retries(job.dims, job.epilogues);
    ok = true;
    const bool late =
        job.deadline_point >= 0 && clock_now() > job.deadline_point;
    bool upgraded = false;
    {
      std::lock_guard<std::mutex> lock(sh.mu);
      if (job.epoch == epoch_.load(std::memory_order_acquire)) {
        Meta& meta = sh.meta[job.sig];
        // An upgrade event is any full plan that replaces (or arrives after)
        // a degraded serve: either the entry is already marked degraded, or
        // this job finished past its own deadline (the requester is serving
        // the fallback right now).
        upgraded = meta.degraded || late;
        result = sh.cache.upsert(job.sig, std::move(summary));
        meta.degraded = false;
        meta.failures = 0;
        meta.inflight.reset();
        filter_insert(job.sig);
      } else {
        // clear() happened after this job was queued: serve the result to
        // waiters but leave the fresh cache untouched.
        result = std::make_shared<const PlanSummary>(std::move(summary));
      }
    }
    if (upgraded) note_upgrade();
  } catch (const std::exception& e) {
    error = e.what();
    {
      std::lock_guard<std::mutex> lock(sh.mu);
      if (job.epoch == epoch_.load(std::memory_order_acquire)) {
        auto it = sh.meta.find(job.sig);
        if (it != sh.meta.end()) it->second.inflight.reset();
      }
    }
    if (job.epoch == epoch_.load(std::memory_order_acquire))
      record_failure(job.sig, sh);
  }
  {
    std::lock_guard<std::mutex> lock(job.state->mu);
    job.state->done = true;
    job.state->ok = ok;
    job.state->error = std::move(error);
    job.state->result = std::move(result);
  }
  job.state->cv.notify_all();
}

// ---------------------------------------------------------------------------
// Maintenance & introspection
// ---------------------------------------------------------------------------

void PlanService::drain() {
  std::unique_lock<std::mutex> lock(jobs_mu_);
  drain_cv_.wait(lock, [&] { return jobs_.empty() && active_jobs_ == 0; });
}

void PlanService::clear() {
  epoch_.fetch_add(1, std::memory_order_acq_rel);
  for (auto& sh : shards_) {
    std::lock_guard<std::mutex> lock(sh->mu);
    sh->cache.clear();
    sh->meta.clear();
  }
  filter_reset();
}

std::size_t PlanService::size() const {
  std::size_t total = 0;
  for (const auto& sh : shards_) {
    std::lock_guard<std::mutex> lock(sh->mu);
    total += sh->cache.size();
  }
  return total;
}

ServiceStats PlanService::stats() const {
  ServiceStats s;
  s.admitted = stats_.admitted.load(std::memory_order_relaxed);
  s.hits = stats_.hits.load(std::memory_order_relaxed);
  s.misses = stats_.misses.load(std::memory_order_relaxed);
  s.filter_rejects = stats_.filter_rejects.load(std::memory_order_relaxed);
  s.degraded = stats_.degraded.load(std::memory_order_relaxed);
  s.upgraded = stats_.upgraded.load(std::memory_order_relaxed);
  s.retried = stats_.retried.load(std::memory_order_relaxed);
  s.quarantined = stats_.quarantined.load(std::memory_order_relaxed);
  s.deadline_misses =
      stats_.deadline_misses.load(std::memory_order_relaxed);
  return s;
}

bool PlanService::is_quarantined(std::span<const GemmDims> dims) const {
  const std::uint64_t sig = batch_signature(dims, config_.planner);
  Shard& sh = shard_for(sig);
  std::lock_guard<std::mutex> lock(sh.mu);
  auto it = sh.meta.find(sig);
  return it != sh.meta.end() && it->second.quarantined;
}

std::size_t PlanService::release_quarantined() {
  std::size_t released = 0;
  for (auto& sh : shards_) {
    std::lock_guard<std::mutex> lock(sh->mu);
    for (auto& [sig, meta] : sh->meta) {
      if (meta.quarantined) {
        meta.quarantined = false;
        meta.failures = 0;
        ++released;
      }
    }
  }
  if (released > 0)
    CTB_TEL_FLIGHT(kQuarantineRelease, "operator release",
                   static_cast<std::int64_t>(released), 0);
  return released;
}

}  // namespace ctb::service
