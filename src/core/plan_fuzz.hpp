// Plan corruption library for the fault-injection harness.
//
// Takes structurally valid plans (real planner output) and applies a catalog
// of deterministic corruptions to the five auxiliary arrays of the paper's
// programming interface (Fig. 6) plus the unified launch footprint:
// truncation, duplication, swapped entries, out-of-range ids and
// coordinates, non-monotone offsets, strategy/thread-structure mismatches,
// and overflow-adjacent extents. Every corruption class must be rejected by
// validate_plan / audit_plan_operands *before* any executor memory access;
// tests/fault_injection_test.cpp asserts exactly that (and CI repeats the
// suite under ASan+UBSan). Mutations use no RNG so failures replay exactly.
#pragma once

#include <string>
#include <vector>

#include "core/batch_plan.hpp"

namespace ctb {

/// The corruption catalog. One enumerator per failure class; a class may
/// expand into several concrete mutations (see inject_plan_fault).
enum class PlanFault : int {
  // Truncation — one per aux array.
  kTruncateOffsets = 0,
  kTruncateGemm,
  kTruncateStrategy,
  kTruncateY,
  kTruncateX,
  // Duplication and swapped entries.
  kDuplicateTile,
  kSwapGemmIds,
  kTransposeCoords,
  // Out-of-range ids and coordinates.
  kGemmIdNegative,
  kGemmIdPastEnd,
  kStrategyIdNegative,
  kStrategyIdPastEnd,
  kYCoordNegative,
  kYCoordPastEnd,
  kXCoordNegative,
  kXCoordPastEnd,
  // Offset-array corruption.
  kOffsetsNonMonotone,
  kOffsetsFirstNonZero,
  kOffsetsBackMismatch,
  // Strategy / thread-structure mismatches.
  kThreadVariantMismatch,
  kBlockThreadsInvalid,
  // Overflow-adjacent extents.
  kOffsetsOverflow,
  kCoordOverflow,
  kSmemOverflow,
  kRegsOverflow,
  // Split-K K-range corruption (apply to split plans only: every class
  // returns no variants for a plan without the K-range aux arrays).
  kSplitOverlap,     ///< adjacent slices of one tile overlap by one BK step.
  kSplitGap,         ///< coverage of one tile's K extent leaves a hole.
  kSplitEndPastK,    ///< k_end runs past the owning GEMM's K (+ INT_MAX).
  kSplitZeroLength,  ///< a fix-up entry (k_begin > 0) with an empty range.
  kSplitUnaligned,   ///< k_begin knocked off the BK grid.
  kSplitTruncated,   ///< K-range arrays shorter than the tile count.
  // Epilogue-array corruption (apply to epilogue-carrying plans only:
  // every class returns no variants for a plan without the array).
  kEpilogueBadOpId,        ///< nibble holds an op id past the enum.
  kEpilogueNonCanonical,   ///< nonzero nibble after the terminator,
                           ///< garbage above the nibble area, negative spec.
  kEpilogueArrayMismatch,  ///< array length disagrees with the batch size.
};

/// All corruption classes, enumeration order.
const std::vector<PlanFault>& all_plan_faults();

const char* to_string(PlanFault fault);

/// One corrupted plan plus a human-readable description of the mutation.
struct FaultedPlan {
  BatchPlan plan;
  std::string note;
};

/// Applies `fault` to copies of `plan` at deterministic positions. Returns
/// every applicable variant; empty when the plan is too small for the
/// mutation (e.g. swapping GEMM ids needs at least two GEMMs).
std::vector<FaultedPlan> inject_plan_fault(const BatchPlan& plan,
                                           PlanFault fault);

}  // namespace ctb
