#include "core/batch_plan.hpp"

#include <algorithm>
#include <set>
#include <sstream>

#include "util/assert.hpp"

namespace ctb {

std::vector<Tile> enumerate_tiles(
    std::span<const GemmDims> dims,
    std::span<const TilingStrategy* const> strategies) {
  CTB_CHECK(dims.size() == strategies.size());
  std::vector<Tile> tiles;
  for (std::size_t g = 0; g < dims.size(); ++g) {
    const TilingStrategy& s = *strategies[g];
    const int ty_count = (dims[g].m + s.by - 1) / s.by;
    const int tx_count = (dims[g].n + s.bx - 1) / s.bx;
    for (int ty = 0; ty < ty_count; ++ty) {
      for (int tx = 0; tx < tx_count; ++tx) {
        tiles.push_back(Tile{static_cast<int>(g), ty, tx, dims[g].k, &s});
      }
    }
  }
  return tiles;
}

BatchPlan build_plan(std::span<const std::vector<Tile>> blocks,
                     int block_threads) {
  BatchPlan plan;
  plan.block_threads = block_threads;
  plan.tile_offsets.reserve(blocks.size() + 1);
  plan.tile_offsets.push_back(0);
  for (const auto& block : blocks) {
    for (const Tile& t : block) {
      CTB_CHECK(t.strategy != nullptr);
      CTB_CHECK_MSG(t.strategy->threads == block_threads,
                    "unified thread structure violated: strategy "
                        << t.strategy->name() << " in a " << block_threads
                        << "-thread plan");
      plan.gemm_of_tile.push_back(t.gemm);
      plan.strategy_of_tile.push_back(t.strategy->id);
      plan.y_coord.push_back(t.ty);
      plan.x_coord.push_back(t.tx);
      plan.smem_bytes = std::max(plan.smem_bytes, t.strategy->smem_bytes());
      plan.regs_per_thread =
          std::max(plan.regs_per_thread, t.strategy->regs_per_thread());
    }
    plan.tile_offsets.push_back(static_cast<int>(plan.gemm_of_tile.size()));
  }
  return plan;
}

void validate_plan(const BatchPlan& plan, std::span<const GemmDims> dims) {
  CTB_CHECK_MSG(!plan.tile_offsets.empty(), "plan has no offset array");
  CTB_CHECK(plan.tile_offsets.front() == 0);
  CTB_CHECK(plan.tile_offsets.back() == plan.num_tiles());
  CTB_CHECK(static_cast<int>(plan.strategy_of_tile.size()) ==
            plan.num_tiles());
  CTB_CHECK(static_cast<int>(plan.y_coord.size()) == plan.num_tiles());
  CTB_CHECK(static_cast<int>(plan.x_coord.size()) == plan.num_tiles());
  for (std::size_t i = 1; i < plan.tile_offsets.size(); ++i)
    CTB_CHECK_MSG(plan.tile_offsets[i] >= plan.tile_offsets[i - 1],
                  "tile offsets must be monotone");

  // Per-GEMM: one consistent strategy, and complete single coverage.
  std::vector<int> gemm_strategy(dims.size(), -1);
  std::vector<std::set<std::pair<int, int>>> seen(dims.size());
  for (int t = 0; t < plan.num_tiles(); ++t) {
    const int g = plan.gemm_of_tile[static_cast<std::size_t>(t)];
    CTB_CHECK_MSG(g >= 0 && g < static_cast<int>(dims.size()),
                  "tile " << t << " references GEMM " << g);
    const int sid = plan.strategy_of_tile[static_cast<std::size_t>(t)];
    const TilingStrategy& s = batched_strategy_by_id(sid);
    if (gemm_strategy[static_cast<std::size_t>(g)] < 0)
      gemm_strategy[static_cast<std::size_t>(g)] = sid;
    CTB_CHECK_MSG(gemm_strategy[static_cast<std::size_t>(g)] == sid,
                  "GEMM " << g << " tiled with two strategies");
    CTB_CHECK_MSG(s.threads == plan.block_threads,
                  "strategy id " << sid << " breaks the unified "
                                 << plan.block_threads << "-thread structure");
    const int ty = plan.y_coord[static_cast<std::size_t>(t)];
    const int tx = plan.x_coord[static_cast<std::size_t>(t)];
    const auto& d = dims[static_cast<std::size_t>(g)];
    const int ty_count = (d.m + s.by - 1) / s.by;
    const int tx_count = (d.n + s.bx - 1) / s.bx;
    CTB_CHECK_MSG(ty >= 0 && ty < ty_count && tx >= 0 && tx < tx_count,
                  "tile (" << ty << "," << tx << ") out of range for GEMM "
                           << g);
    CTB_CHECK_MSG(seen[static_cast<std::size_t>(g)].insert({ty, tx}).second,
                  "tile (" << ty << "," << tx << ") of GEMM " << g
                           << " assigned twice");
  }
  for (std::size_t g = 0; g < dims.size(); ++g) {
    CTB_CHECK_MSG(gemm_strategy[g] >= 0, "GEMM " << g << " has no tiles");
    const TilingStrategy& s = batched_strategy_by_id(gemm_strategy[g]);
    const std::size_t expected =
        static_cast<std::size_t>(s.tiles_for(dims[g].m, dims[g].n));
    CTB_CHECK_MSG(seen[g].size() == expected,
                  "GEMM " << g << " covered by " << seen[g].size()
                          << " tiles, expected " << expected);
  }
}

std::string to_string(const BatchPlan& plan) {
  std::ostringstream os;
  os << "BatchPlan{blocks=" << plan.num_blocks()
     << ", tiles=" << plan.num_tiles() << ", T=" << plan.block_threads
     << ", smem=" << plan.smem_bytes << "B, regs=" << plan.regs_per_thread
     << "}\n";
  os << "  Tile:     ";
  for (int v : plan.tile_offsets) os << v << ' ';
  os << "\n  GEMM:     ";
  for (int v : plan.gemm_of_tile) os << v << ' ';
  os << "\n  Strategy: ";
  for (int v : plan.strategy_of_tile) os << v << ' ';
  os << "\n  Y_Coord:  ";
  for (int v : plan.y_coord) os << v << ' ';
  os << "\n  X_Coord:  ";
  for (int v : plan.x_coord) os << v << ' ';
  os << '\n';
  return os.str();
}

}  // namespace ctb
