#include "core/batch_plan.hpp"

#include <algorithm>
#include <array>
#include <set>
#include <sstream>

#include "telemetry/telemetry.hpp"
#include "util/assert.hpp"

namespace ctb {

std::vector<Tile> enumerate_tiles(
    std::span<const GemmDims> dims,
    std::span<const TilingStrategy* const> strategies) {
  CTB_CHECK(dims.size() == strategies.size());
  std::vector<Tile> tiles;
  for (std::size_t g = 0; g < dims.size(); ++g) {
    const TilingStrategy& s = *strategies[g];
    const int ty_count = (dims[g].m + s.by - 1) / s.by;
    const int tx_count = (dims[g].n + s.bx - 1) / s.bx;
    for (int ty = 0; ty < ty_count; ++ty) {
      for (int tx = 0; tx < tx_count; ++tx) {
        tiles.push_back(
            Tile{static_cast<int>(g), ty, tx, dims[g].k, 0, 0, &s});
      }
    }
  }
  return tiles;
}

BatchPlan build_plan(std::span<const std::vector<Tile>> blocks,
                     int block_threads) {
  BatchPlan plan;
  plan.block_threads = block_threads;
  plan.tile_offsets.reserve(blocks.size() + 1);
  plan.tile_offsets.push_back(0);
  bool any_split = false;
  for (const auto& block : blocks)
    for (const Tile& t : block) any_split = any_split || t.k_end != 0;
  for (const auto& block : blocks) {
    for (const Tile& t : block) {
      CTB_CHECK(t.strategy != nullptr);
      CTB_CHECK_MSG(t.strategy->threads == block_threads,
                    "unified thread structure violated: strategy "
                        << t.strategy->name() << " in a " << block_threads
                        << "-thread plan");
      plan.gemm_of_tile.push_back(t.gemm);
      plan.strategy_of_tile.push_back(t.strategy->id);
      plan.y_coord.push_back(t.ty);
      plan.x_coord.push_back(t.tx);
      if (any_split) {
        plan.k_begin.push_back(t.k_end != 0 ? t.k_begin : 0);
        plan.k_end.push_back(t.k_end != 0 ? t.k_end : t.k);
      }
      plan.smem_bytes = std::max(plan.smem_bytes, t.strategy->smem_bytes());
      plan.regs_per_thread =
          std::max(plan.regs_per_thread, t.strategy->regs_per_thread());
    }
    plan.tile_offsets.push_back(static_cast<int>(plan.gemm_of_tile.size()));
  }
  if (telemetry::enabled()) {
    for (const auto& block : blocks) {
      long long sum_k = 0;
      for (const Tile& t : block) sum_k += t.k;
      CTB_TEL_HIST("batching.tiles_per_block", block.size());
      CTB_TEL_HIST("batching.sum_k_per_block", sum_k);
    }
  }
  return plan;
}

std::vector<Tile> split_tiles_k(std::span<const Tile> tiles, int slices) {
  if (slices <= 1) return {tiles.begin(), tiles.end()};
  std::vector<Tile> out;
  out.reserve(tiles.size() * static_cast<std::size_t>(slices));
  for (const Tile& t : tiles) {
    CTB_CHECK(t.strategy != nullptr);
    CTB_CHECK_MSG(t.k_end == 0, "split_tiles_k over an already-split tile");
    const int bk = t.strategy->bk;
    const int nsteps = (t.k + bk - 1) / bk;
    const int n = std::min(slices, nsteps);
    if (n <= 1) {
      out.push_back(t);
      continue;
    }
    // Distribute K steps as evenly as possible; earlier slices take the
    // extra step so the ragged K tail always lands in the last slice.
    const int q = nsteps / n;
    const int r = nsteps % n;
    int step = 0;
    for (int s = 0; s < n; ++s) {
      const int take = q + (s < r ? 1 : 0);
      Tile slice = t;
      slice.k_begin = step * bk;
      slice.k_end = std::min((step + take) * bk, t.k);
      slice.k = slice.k_end - slice.k_begin;
      out.push_back(slice);
      step += take;
    }
  }
  return out;
}

namespace {
// Upper bounds for the static launch footprint: far beyond any real
// strategy (the largest Table-2 smem footprint is 16 KiB and registers
// clamp at 255) yet tight enough to reject overflow-adjacent garbage from
// corrupted or adversarial plans before anything scales by them.
constexpr int kMaxPlanSmemBytes = 1 << 20;
constexpr int kMaxPlanRegsPerThread = 255;
}  // namespace

void validate_plan_structure(const BatchPlan& plan) {
  CTB_CHECK_MSG(plan.block_threads == 128 || plan.block_threads == 256,
                "plan block size must be 128 or 256, got "
                    << plan.block_threads);
  CTB_CHECK_MSG(!plan.tile_offsets.empty(), "plan has no offset array");
  CTB_CHECK_MSG(plan.tile_offsets.front() == 0,
                "tile offsets must start at 0, got "
                    << plan.tile_offsets.front());
  CTB_CHECK_MSG(plan.tile_offsets.back() == plan.num_tiles(),
                "tile offsets end at " << plan.tile_offsets.back()
                                       << " but the plan stores "
                                       << plan.num_tiles() << " tiles");
  CTB_CHECK_MSG(static_cast<int>(plan.strategy_of_tile.size()) ==
                    plan.num_tiles(),
                "strategy array holds " << plan.strategy_of_tile.size()
                                        << " entries for "
                                        << plan.num_tiles() << " tiles");
  CTB_CHECK_MSG(static_cast<int>(plan.y_coord.size()) == plan.num_tiles(),
                "Y-coordinate array holds " << plan.y_coord.size()
                                            << " entries for "
                                            << plan.num_tiles() << " tiles");
  CTB_CHECK_MSG(static_cast<int>(plan.x_coord.size()) == plan.num_tiles(),
                "X-coordinate array holds " << plan.x_coord.size()
                                            << " entries for "
                                            << plan.num_tiles() << " tiles");
  for (std::size_t i = 1; i < plan.tile_offsets.size(); ++i)
    CTB_CHECK_MSG(plan.tile_offsets[i] >= plan.tile_offsets[i - 1],
                  "tile offsets must be monotone (offset "
                      << i << " is " << plan.tile_offsets[i] << " after "
                      << plan.tile_offsets[i - 1] << ")");

  int needed_smem = 0;
  int needed_regs = 0;
  const int num_strategies = static_cast<int>(batched_strategies().size());
  for (int t = 0; t < plan.num_tiles(); ++t) {
    CTB_CHECK_MSG(plan.gemm_of_tile[static_cast<std::size_t>(t)] >= 0,
                  "tile " << t << " has negative GEMM id "
                          << plan.gemm_of_tile[static_cast<std::size_t>(t)]);
    CTB_CHECK_MSG(plan.y_coord[static_cast<std::size_t>(t)] >= 0 &&
                      plan.x_coord[static_cast<std::size_t>(t)] >= 0,
                  "tile " << t << " has negative coordinates ("
                          << plan.y_coord[static_cast<std::size_t>(t)] << ","
                          << plan.x_coord[static_cast<std::size_t>(t)]
                          << ")");
    const int sid = plan.strategy_of_tile[static_cast<std::size_t>(t)];
    CTB_CHECK_MSG(sid >= 0 && sid < num_strategies,
                  "tile " << t << " uses unknown strategy id " << sid);
    const TilingStrategy& s = batched_strategy_by_id(sid);
    CTB_CHECK_MSG(s.threads == plan.block_threads,
                  "strategy id " << sid << " breaks the unified "
                                 << plan.block_threads
                                 << "-thread structure");
    needed_smem = std::max(needed_smem, s.smem_bytes());
    needed_regs = std::max(needed_regs, s.regs_per_thread());
  }
  CTB_CHECK_MSG(plan.smem_bytes >= needed_smem &&
                    plan.smem_bytes <= kMaxPlanSmemBytes,
                "plan smem footprint " << plan.smem_bytes
                                       << " B outside [" << needed_smem
                                       << ", " << kMaxPlanSmemBytes << "]");
  CTB_CHECK_MSG(plan.regs_per_thread >= needed_regs &&
                    plan.regs_per_thread <= kMaxPlanRegsPerThread,
                "plan register footprint "
                    << plan.regs_per_thread << " outside [" << needed_regs
                    << ", " << kMaxPlanRegsPerThread << "]");

  // Split-K aux arrays: either absent entirely or complete, every range
  // non-empty with a BK-aligned start (K-independent invariants; range ends
  // are checked against the batch dims in validate_plan).
  CTB_CHECK_MSG(plan.k_begin.size() == plan.k_end.size(),
                "K-range arrays disagree: " << plan.k_begin.size()
                                            << " begins vs "
                                            << plan.k_end.size() << " ends");
  if (plan.has_split()) {
    CTB_CHECK_MSG(static_cast<int>(plan.k_begin.size()) == plan.num_tiles(),
                  "K-range arrays hold " << plan.k_begin.size()
                                         << " entries for "
                                         << plan.num_tiles() << " tiles");
    for (int t = 0; t < plan.num_tiles(); ++t) {
      const int kb = plan.k_begin[static_cast<std::size_t>(t)];
      const int ke = plan.k_end[static_cast<std::size_t>(t)];
      CTB_CHECK_MSG(kb >= 0, "tile " << t << " has negative k_begin " << kb);
      CTB_CHECK_MSG(ke > kb, "tile " << t << " has empty K range [" << kb
                                     << "," << ke << ")");
      const TilingStrategy& s = batched_strategy_by_id(
          plan.strategy_of_tile[static_cast<std::size_t>(t)]);
      CTB_CHECK_MSG(kb % s.bk == 0,
                    "tile " << t << " k_begin " << kb
                            << " not aligned to BK=" << s.bk);
    }
  }

  // Epilogue specs: every entry a canonical packed chain, and the array
  // covers every GEMM id the tiles reference (batch-size agreement is
  // checked against dims in validate_plan).
  if (plan.has_epilogue()) {
    for (std::size_t g = 0; g < plan.epilogue_of_gemm.size(); ++g)
      CTB_CHECK_MSG(epilogue_packed_valid(plan.epilogue_of_gemm[g]),
                    "GEMM " << g << " has malformed epilogue spec "
                            << plan.epilogue_of_gemm[g]);
    for (int t = 0; t < plan.num_tiles(); ++t)
      CTB_CHECK_MSG(plan.gemm_of_tile[static_cast<std::size_t>(t)] <
                        static_cast<int>(plan.epilogue_of_gemm.size()),
                    "tile " << t << " references GEMM "
                            << plan.gemm_of_tile[static_cast<std::size_t>(t)]
                            << " past the " << plan.epilogue_of_gemm.size()
                            << "-entry epilogue array");
  }
}

void validate_plan(const BatchPlan& plan, std::span<const GemmDims> dims) {
  validate_plan_structure(plan);

  if (plan.has_epilogue())
    CTB_CHECK_MSG(plan.epilogue_of_gemm.size() == dims.size(),
                  "epilogue array holds " << plan.epilogue_of_gemm.size()
                                          << " entries for " << dims.size()
                                          << " GEMMs");

  // Per-GEMM: one consistent strategy, and complete single coverage.
  std::vector<int> gemm_strategy(dims.size(), -1);
  std::vector<std::vector<std::pair<int, int>>> seen(dims.size());
  for (int t = 0; t < plan.num_tiles(); ++t) {
    const int g = plan.gemm_of_tile[static_cast<std::size_t>(t)];
    CTB_CHECK_MSG(g >= 0 && g < static_cast<int>(dims.size()),
                  "tile " << t << " references GEMM " << g);
    const int sid = plan.strategy_of_tile[static_cast<std::size_t>(t)];
    const TilingStrategy& s = batched_strategy_by_id(sid);
    if (gemm_strategy[static_cast<std::size_t>(g)] < 0)
      gemm_strategy[static_cast<std::size_t>(g)] = sid;
    CTB_CHECK_MSG(gemm_strategy[static_cast<std::size_t>(g)] == sid,
                  "GEMM " << g << " tiled with two strategies");
    const int ty = plan.y_coord[static_cast<std::size_t>(t)];
    const int tx = plan.x_coord[static_cast<std::size_t>(t)];
    const auto& d = dims[static_cast<std::size_t>(g)];
    const int ty_count = (d.m + s.by - 1) / s.by;
    const int tx_count = (d.n + s.bx - 1) / s.bx;
    CTB_CHECK_MSG(ty >= 0 && ty < ty_count && tx >= 0 && tx < tx_count,
                  "tile (" << ty << "," << tx << ") out of range for GEMM "
                           << g);
    if (plan.has_split()) {
      const int ke = plan.k_end[static_cast<std::size_t>(t)];
      CTB_CHECK_MSG(ke <= d.k, "tile " << t << " K range ends at " << ke
                                       << " past K=" << d.k << " of GEMM "
                                       << g);
      CTB_CHECK_MSG(ke == d.k || ke % s.bk == 0,
                    "tile " << t << " interior K boundary " << ke
                            << " not aligned to BK=" << s.bk);
    }
    seen[static_cast<std::size_t>(g)].push_back({ty, tx});
  }
  if (!plan.has_split()) {
    for (std::size_t g = 0; g < dims.size(); ++g) {
      CTB_CHECK_MSG(gemm_strategy[g] >= 0, "GEMM " << g << " has no tiles");
      auto& tiles = seen[g];
      std::sort(tiles.begin(), tiles.end());
      const auto dup = std::adjacent_find(tiles.begin(), tiles.end());
      CTB_CHECK_MSG(dup == tiles.end(),
                    "tile (" << (dup == tiles.end() ? 0 : dup->first) << ","
                             << (dup == tiles.end() ? 0 : dup->second)
                             << ") of GEMM " << g << " assigned twice");
      const TilingStrategy& s = batched_strategy_by_id(gemm_strategy[g]);
      const std::size_t expected =
          static_cast<std::size_t>(s.tiles_for(dims[g].m, dims[g].n));
      CTB_CHECK_MSG(tiles.size() == expected,
                    "GEMM " << g << " covered by " << tiles.size()
                            << " tiles, expected " << expected);
    }
    return;
  }

  // Split-K coverage: the slices of each (GEMM, ty, tx) coordinate must
  // form an exact, gap-free, non-overlapping ascending partition of [0, K).
  // Sorting by (coord, k_begin) makes every violation a local adjacency
  // check: overlap and gap both show up as next.k_begin != prev.k_end.
  std::vector<std::vector<std::array<int, 4>>> slices(dims.size());
  for (int t = 0; t < plan.num_tiles(); ++t) {
    const std::size_t g =
        static_cast<std::size_t>(plan.gemm_of_tile[static_cast<std::size_t>(t)]);
    slices[g].push_back({plan.y_coord[static_cast<std::size_t>(t)],
                         plan.x_coord[static_cast<std::size_t>(t)],
                         plan.k_begin[static_cast<std::size_t>(t)],
                         plan.k_end[static_cast<std::size_t>(t)]});
  }
  for (std::size_t g = 0; g < dims.size(); ++g) {
    CTB_CHECK_MSG(gemm_strategy[g] >= 0, "GEMM " << g << " has no tiles");
    auto& sl = slices[g];
    std::sort(sl.begin(), sl.end());
    const int K = dims[g].k;
    std::size_t coords = 0;
    for (std::size_t i = 0; i < sl.size(); ++i) {
      const bool first_of_coord =
          i == 0 || sl[i][0] != sl[i - 1][0] || sl[i][1] != sl[i - 1][1];
      if (first_of_coord) {
        ++coords;
        CTB_CHECK_MSG(sl[i][2] == 0, "tile (" << sl[i][0] << "," << sl[i][1]
                                              << ") of GEMM " << g
                                              << " K coverage starts at "
                                              << sl[i][2] << ", not 0");
        if (i > 0)
          CTB_CHECK_MSG(sl[i - 1][3] == K,
                        "tile (" << sl[i - 1][0] << "," << sl[i - 1][1]
                                 << ") of GEMM " << g
                                 << " K coverage ends at " << sl[i - 1][3]
                                 << ", not K=" << K);
      } else {
        CTB_CHECK_MSG(sl[i][2] == sl[i - 1][3],
                      "tile (" << sl[i][0] << "," << sl[i][1] << ") of GEMM "
                               << g << " K ranges "
                               << (sl[i][2] < sl[i - 1][3] ? "overlap"
                                                           : "leave a gap")
                               << " at k=" << sl[i][2]);
      }
    }
    CTB_CHECK_MSG(sl.empty() || sl.back()[3] == K,
                  "tile (" << sl.back()[0] << "," << sl.back()[1]
                           << ") of GEMM " << g << " K coverage ends at "
                           << sl.back()[3] << ", not K=" << K);
    const TilingStrategy& s = batched_strategy_by_id(gemm_strategy[g]);
    const std::size_t expected =
        static_cast<std::size_t>(s.tiles_for(dims[g].m, dims[g].n));
    CTB_CHECK_MSG(coords == expected,
                  "GEMM " << g << " covered by " << coords
                          << " tile coordinates, expected " << expected);
  }
}

long long batch_flops(std::span<const GemmDims> dims) {
  long long total = 0;
  for (const GemmDims& d : dims)
    total += 2LL * d.m * d.n * d.k;
  return total;
}

std::string to_string(const BatchPlan& plan) {
  std::ostringstream os;
  os << "BatchPlan{blocks=" << plan.num_blocks()
     << ", tiles=" << plan.num_tiles() << ", T=" << plan.block_threads
     << ", smem=" << plan.smem_bytes << "B, regs=" << plan.regs_per_thread
     << "}\n";
  os << "  Tile:     ";
  for (int v : plan.tile_offsets) os << v << ' ';
  os << "\n  GEMM:     ";
  for (int v : plan.gemm_of_tile) os << v << ' ';
  os << "\n  Strategy: ";
  for (int v : plan.strategy_of_tile) os << v << ' ';
  os << "\n  Y_Coord:  ";
  for (int v : plan.y_coord) os << v << ' ';
  os << "\n  X_Coord:  ";
  for (int v : plan.x_coord) os << v << ' ';
  if (plan.has_split()) {
    os << "\n  K_Begin:  ";
    for (int v : plan.k_begin) os << v << ' ';
    os << "\n  K_End:    ";
    for (int v : plan.k_end) os << v << ' ';
  }
  if (plan.has_epilogue()) {
    os << "\n  Epilogue: ";
    for (int v : plan.epilogue_of_gemm)
      os << epilogue_to_string(v) << ' ';
  }
  os << '\n';
  return os.str();
}

}  // namespace ctb
