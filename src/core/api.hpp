// Public API of the coordinated tiling and batching framework.
//
// Typical use:
//
//   ctb::PlannerConfig config;                       // V100 defaults
//   ctb::BatchedGemmPlanner planner(config);
//   ctb::PlanSummary s = planner.plan(dims);         // tiling + batching
//   ctb::execute_plan(s.plan, operands, alpha, beta) // bit-exact results
//   ctb::TimedResult t = time_plan(arch, s.plan, dims);  // simulated time
//
// or the one-call convenience `batched_gemm(...)` over host matrices.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "core/batching_engine.hpp"
#include "core/tiling_engine.hpp"
#include "gpusim/arch.hpp"
#include "gpusim/sm_engine.hpp"
#include "kernels/functional.hpp"
#include "rf/random_forest.hpp"

namespace ctb {

/// How the planner picks between the two batching heuristics.
enum class BatchingPolicy {
  kThresholdOnly,  ///< always threshold batching (TLP priority)
  kBinaryOnly,     ///< always binary batching (ILP priority)
  kAutoOffline,    ///< evaluate both through the simulator, keep the faster
  kRandomForest,   ///< online random-forest selection (paper Section 5)
  kTilingOnly,     ///< one tile per block (tiling engine alone, Fig. 8)
};

const char* to_string(BatchingPolicy policy);

/// Split-K planning mode — the third scheduling axis (DESIGN.md §11).
enum class SplitKMode {
  kAuto,   ///< consider split-K only when the unsplit plan is TLP-scarce
           ///< (launched threads < tlp_threshold / 2) and keep it when the
           ///< simulator says it wins
  kOff,    ///< never split (the degraded serving configuration: no extra
           ///< simulator sweep on the fallback path)
  kForce,  ///< skip the scarcity trigger and keep the fastest *split*
           ///< candidate whenever the batch's K extents allow one
};

const char* to_string(SplitKMode mode);

/// TLP threshold for an architecture: 65536 on V100 (paper), scaled for
/// other GPUs by their thread capacity (0.4 * SMs * threads-per-SM, which
/// reproduces 65536 exactly on the V100 preset).
long long default_tlp_threshold(const GpuArch& arch);

/// Workload threshold theta (256 on V100, paper Section 7).
int default_theta(const GpuArch& arch);

struct PlannerConfig {
  GpuModel gpu = GpuModel::kV100;
  /// Zero values mean "derive from the architecture".
  long long tlp_threshold = 0;
  int theta = 0;
  BatchingPolicy policy = BatchingPolicy::kAutoOffline;
  /// Required when policy == kRandomForest.
  const RandomForest* forest = nullptr;
  /// Execution precision (kFp16 = tensor-core semantics; planning itself is
  /// precision-independent, the strategy tables are the paper's FP32 suite).
  Precision precision = Precision::kFp32;
  /// Split-K scheduling axis: when a batch's tiles cannot fill the machine,
  /// each tile's K loop may be partitioned into BK-aligned slices executed
  /// as extra blocks with a deterministic carried-chain fix-up reduction
  /// (bit-identical to the unsplit plan — see run_batched_plan). Candidate
  /// split plans are sim-compared against the unsplit plan via time_plan.
  SplitKMode splitk = SplitKMode::kAuto;
  /// Upper bound on K slices per tile; candidates sweep powers of two
  /// (2, 4, ..., max_splitk).
  int max_splitk = 8;
  /// When set, batched_gemm executes through try_execute_plan: a plan that
  /// fails validation degrades to the bit-exact reference GEMM path instead
  /// of throwing. Off by default — a planner bug should be loud in
  /// development; serving loops opt in. Does not affect planning, so it is
  /// excluded from batch_signature.
  bool fallback_to_reference = false;
};

/// The configuration the plan service degrades to when the full planner
/// cannot answer within its deadline: threshold batching needs one linear
/// pass over the batch (no simulator sweep, no forest), so a fallback plan
/// is always computable "now". Everything but the selection policy (and the
/// then-unused forest pointer) is preserved.
PlannerConfig degraded_fallback_config(const PlannerConfig& config);

/// Everything the planner decided, plus the executable plan.
struct PlanSummary {
  TilingResult tiling;
  BatchingHeuristic heuristic = BatchingHeuristic::kNone;
  BatchPlan plan;
};

class BatchedGemmPlanner {
 public:
  explicit BatchedGemmPlanner(PlannerConfig config = {});

  /// Plans a batch: tiling engine, then batching engine under the configured
  /// policy. The returned plan passes validate_plan().
  PlanSummary plan(std::span<const GemmDims> dims) const;

  /// Like plan(dims) but the returned plan carries per-GEMM fused-epilogue
  /// specs (parallel to `dims`; empty or all-zero means none, and yields a
  /// plan identical to the two-arg form). Tiling, batching, and split-K
  /// decisions are epilogue-independent — the chain only changes the tile
  /// store — so epilogues ride along as a sixth aux array.
  PlanSummary plan(std::span<const GemmDims> dims,
                   std::span<const int> epilogues) const;

  const PlannerConfig& config() const { return config_; }
  const GpuArch& arch() const { return arch_; }

 private:
  /// Split-K candidate generation: when enabled and triggered, sweeps
  /// power-of-two slice counts over the enumerated tiles, batches each
  /// candidate with the already-chosen heuristic, and replaces summary.plan
  /// when the simulator prefers a split plan (always, under kForce).
  void consider_splitk(PlanSummary& summary, std::span<const Tile> tiles,
                       int threads, const BatchingConfig& batching_config,
                       std::span<const GemmDims> dims) const;

  PlannerConfig config_;
  GpuArch arch_;
};

/// Simulated execution time of a plan as one persistent-threads kernel
/// launch (includes the host launch overhead).
struct TimedResult {
  SimStats sim;
  double time_us = 0.0;
};

TimedResult time_plan(const GpuArch& arch, const BatchPlan& plan,
                      std::span<const GemmDims> dims,
                      Precision precision = Precision::kFp32);

/// Functional execution: computes C = alpha*A*B + beta*C for every GEMM in
/// the batch, following the plan block by block. Audits the operands and
/// validates the plan against the dims they carry first; throws CheckError
/// before any matrix element is read or written if either is inconsistent.
void execute_plan(const BatchPlan& plan, std::span<const GemmOperands> batch,
                  float alpha, float beta);

/// What try_execute_plan did: fell_back is false on the plan path, true on
/// the reference path, and reason carries the validation failure verbatim.
struct ExecutionReport {
  bool fell_back = false;
  std::string reason;
};

/// Graceful degradation entry for serving loops. Audits the operands, then
/// validates the plan against them; on success executes the plan exactly
/// like execute_plan (bit-identical C). If *plan validation* fails, logs
/// the structured reason at warn level and computes every GEMM through
/// reference_gemm instead — slow but bit-exact, and C is untouched until
/// the fallback runs. Broken operands (null pointers, degenerate dims)
/// still throw: there is nothing correct to fall back to.
ExecutionReport try_execute_plan(const BatchPlan& plan,
                                 std::span<const GemmOperands> batch,
                                 float alpha, float beta);

/// One-call host convenience: plans, validates, functionally executes, and
/// times the batch. a/b/c are parallel arrays of host matrices.
struct BatchedGemmResult {
  PlanSummary summary;
  TimedResult timing;
  /// Filled when config.fallback_to_reference is set; default-initialized
  /// (no fallback) otherwise. Timing is skipped on the fallback path — the
  /// simulated time of a rejected plan is meaningless.
  ExecutionReport execution;
};

/// Degenerate-input contract (both overloads): an empty batch, a null
/// matrix pointer, any GEMM with m, n, or k == 0, mismatched inner
/// dimensions, or a C whose shape differs from op(A)*op(B) throws
/// CheckError deterministically, before any element of any C is written.
/// These are caller errors, never candidates for the reference fallback.
BatchedGemmResult batched_gemm(std::span<const Matrixf* const> a,
                               std::span<const Matrixf* const> b,
                               std::span<Matrixf* const> c, float alpha,
                               float beta, const PlannerConfig& config = {});

/// One GEMM of a transpose-aware batch: C = alpha * op(A)*op(B) + beta*C.
/// Stored shapes follow BLAS conventions (op == kT means the matrix holds
/// the transpose of the logical operand).
struct GemmEntry {
  const Matrixf* a = nullptr;
  const Matrixf* b = nullptr;
  Matrixf* c = nullptr;
  Op op_a = Op::kN;
  Op op_b = Op::kN;
  /// Fused epilogue chain applied inside the tile store (core/epilogue.hpp);
  /// 0 means plain GEMM. Operands for the chain's ops live in
  /// `epilogue_args` and must satisfy audit_operands (present, correctly
  /// sized, perms bijective). beta must be 0 when the chain permutes.
  int epilogue = 0;
  EpilogueArgs epilogue_args;
};

/// Transpose-aware batched GEMM; each entry may use its own op pair.
BatchedGemmResult batched_gemm(std::span<const GemmEntry> entries,
                               float alpha, float beta,
                               const PlannerConfig& config = {});

}  // namespace ctb
