#include "core/rf_policy.hpp"

#include "core/api.hpp"
#include "core/tiling_engine.hpp"
#include "kernels/work_builder.hpp"
#include "telemetry/telemetry.hpp"
#include "util/assert.hpp"

namespace ctb {

std::vector<double> batching_features(std::span<const GemmDims> dims) {
  CTB_CHECK(!dims.empty());
  double m = 0, n = 0, k = 0, tiles = 0;
  for (const auto& d : dims) {
    m += d.m;
    n += d.n;
    k += d.k;
    // C-tile count under the large 64x64 shape: the TLP-scarcity proxy the
    // split-K axis keys on. Low-tile-count batches behave differently under
    // both batching heuristics, and mean M/N alone cannot distinguish one
    // huge GEMM from many small ones.
    tiles += static_cast<double>(((d.m + 63) / 64)) * ((d.n + 63) / 64);
  }
  const double b = static_cast<double>(dims.size());
  return {m / b, n / b, k / b, b, tiles};
}

std::vector<GemmDims> random_batch(Rng& rng, const CaseRanges& r) {
  CTB_CHECK(r.min_batch >= 1 && r.min_batch <= r.max_batch);
  CTB_CHECK(r.min_mn >= 1 && r.min_mn <= r.max_mn);
  CTB_CHECK(r.min_k >= 1 && r.min_k <= r.max_k);
  const int batch =
      static_cast<int>(rng.uniform_int(r.min_batch, r.max_batch));
  std::vector<GemmDims> dims(static_cast<std::size_t>(batch));
  for (auto& d : dims) {
    d.m = static_cast<int>(rng.log_uniform_int(r.min_mn, r.max_mn));
    d.n = static_cast<int>(rng.log_uniform_int(r.min_mn, r.max_mn));
    d.k = static_cast<int>(rng.log_uniform_int(r.min_k, r.max_k));
  }
  return dims;
}

OracleTimes oracle_times(const GpuArch& arch, std::span<const GemmDims> dims,
                         long long tlp_threshold, int theta) {
  TilingConfig tiling_config;
  tiling_config.tlp_threshold = tlp_threshold;
  const TilingResult tiling = select_tiling(dims, tiling_config);
  const std::vector<Tile> tiles = enumerate_tiles(dims, tiling.per_gemm);
  const int threads = static_cast<int>(tiling.variant);

  BatchingConfig batching_config;
  batching_config.theta = theta;
  batching_config.tlp_threshold = tlp_threshold;

  OracleTimes result;
  result.threshold_us =
      time_plan(arch, batch_threshold(tiles, threads, batching_config), dims)
          .time_us;
  result.binary_us =
      time_plan(arch, batch_binary(tiles, threads, batching_config), dims)
          .time_us;
  return result;
}

int oracle_label(const GpuArch& arch, std::span<const GemmDims> dims,
                 long long tlp_threshold, int theta) {
  return oracle_times(arch, dims, tlp_threshold, theta).label();
}

Dataset generate_batching_dataset(const RfTrainingConfig& config) {
  CTB_CHECK(config.num_cases >= 2);
  const GpuArch& arch = gpu_arch(config.gpu);
  const long long tlp_threshold = default_tlp_threshold(arch);
  const int theta = default_theta(arch);

  Rng rng(config.seed);
  Dataset data;
  const long long max_attempts =
      static_cast<long long>(config.num_cases) *
      std::max(1, config.max_attempts_factor);
  long long attempts = 0;
  while (static_cast<int>(data.samples.size()) < config.num_cases &&
         attempts < max_attempts) {
    ++attempts;
    const std::vector<GemmDims> dims = random_batch(rng, config.ranges);
    const OracleTimes times =
        oracle_times(arch, dims, tlp_threshold, theta);
    if (times.margin() < config.label_margin) continue;  // tie: label noise
    data.add(batching_features(dims), times.label());
  }
  CTB_CHECK_MSG(data.samples.size() >= 2,
                "margin filter rejected nearly every case; lower "
                "label_margin");
  // A degenerate all-one-class dataset cannot train a classifier; make the
  // class space explicit so downstream code sees two classes regardless.
  data.num_classes = 2;
  return data;
}

RandomForest train_batching_forest(const RfTrainingConfig& config,
                                   Dataset* out_dataset) {
  Dataset data = generate_batching_dataset(config);
  Rng rng(config.seed ^ 0xF0F0F0F0ULL);
  RandomForest forest;
  forest.train(data, config.forest, rng);
  if (out_dataset != nullptr) *out_dataset = std::move(data);
  return forest;
}

BatchingHeuristic rf_choose(const RandomForest& forest,
                            std::span<const GemmDims> dims) {
  CTB_TEL_SPAN("plan.rf_choose");
  const int label = forest.predict(batching_features(dims));
  if (label == 0)
    CTB_TEL_COUNT("plan.rf.choice.threshold", 1);
  else
    CTB_TEL_COUNT("plan.rf.choice.binary", 1);
  return label == 0 ? BatchingHeuristic::kThreshold
                    : BatchingHeuristic::kBinary;
}

}  // namespace ctb
