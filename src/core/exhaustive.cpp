#include "core/exhaustive.hpp"

#include <functional>
#include <vector>

#include "core/tiling_engine.hpp"
#include "util/assert.hpp"

namespace ctb {

namespace {

/// Enumerates set partitions via restricted growth strings: assign[0] = 0
/// and assign[i] may be any value in [0, 1 + max(assign[0..i-1])].
void enumerate_partitions(std::size_t n,
                          const std::function<void(const std::vector<int>&)>&
                              visit) {
  std::vector<int> assign(n, 0);
  std::function<void(std::size_t, int)> gen = [&](std::size_t i,
                                                  int max_used) {
    if (i == n) {
      visit(assign);
      return;
    }
    for (int v = 0; v <= max_used + 1; ++v) {
      assign[i] = v;
      gen(i + 1, std::max(max_used, v));
    }
  };
  if (n == 0) return;
  gen(1, 0);  // position 0 is fixed at block 0
}

}  // namespace

ExhaustiveResult exhaustive_batching(const GpuArch& arch,
                                     std::span<const GemmDims> dims,
                                     long long tlp_threshold,
                                     int max_tiles) {
  TilingConfig tiling_config;
  tiling_config.tlp_threshold = tlp_threshold;
  const TilingResult tiling = select_tiling(dims, tiling_config);
  const std::vector<Tile> tiles = enumerate_tiles(dims, tiling.per_gemm);
  CTB_CHECK_MSG(static_cast<int>(tiles.size()) <= max_tiles,
                "exhaustive search over " << tiles.size()
                                          << " tiles would not terminate");
  const int threads = static_cast<int>(tiling.variant);

  ExhaustiveResult result;
  enumerate_partitions(tiles.size(), [&](const std::vector<int>& assign) {
    ++result.partitions;
    int num_blocks = 0;
    for (int a : assign) num_blocks = std::max(num_blocks, a + 1);
    std::vector<std::vector<Tile>> blocks(
        static_cast<std::size_t>(num_blocks));
    for (std::size_t i = 0; i < tiles.size(); ++i)
      blocks[static_cast<std::size_t>(assign[i])].push_back(tiles[i]);
    BatchPlan plan = build_plan(blocks, threads);
    const double us = time_plan(arch, plan, dims).time_us;
    if (result.best_us == 0.0 || us < result.best_us) {
      result.best_us = us;
      result.best_plan = std::move(plan);
    }
  });
  return result;
}

}  // namespace ctb
