// Batching plan: the tile list plus the five auxiliary arrays of the paper's
// programming interface (Section 6, Fig. 6). A plan fully describes which
// thread block executes which tiles of which GEMM under which tiling
// strategy — any batching scheme is expressible.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "core/tiling_strategy.hpp"
#include "linalg/gemm_ref.hpp"

namespace ctb {

/// One C-tile of one GEMM, before block assignment.
struct Tile {
  int gemm = 0;                             ///< index into the batch.
  int ty = 0;                               ///< tile row (Y_Coordinate).
  int tx = 0;                               ///< tile col (X_Coordinate).
  int k = 0;                                ///< K of the owning GEMM.
  const TilingStrategy* strategy = nullptr; ///< owning GEMM's strategy.
};

/// The executable plan. Arrays follow Fig. 6 exactly:
///   tile_offsets ("Tile")       — CSR offsets, size num_blocks + 1; block b
///                                 owns tiles [tile_offsets[b], tile_offsets[b+1]).
///   gemm_of_tile ("GEMM")       — owning GEMM per tile.
///   strategy_of_tile ("Tiling strategy") — Table-2 id (0..11) per tile.
///   y_coord / x_coord           — tile position within its GEMM.
struct BatchPlan {
  std::vector<int> tile_offsets;
  std::vector<int> gemm_of_tile;
  std::vector<int> strategy_of_tile;
  std::vector<int> y_coord;
  std::vector<int> x_coord;

  /// Unified block size shared by all blocks (128 or 256).
  int block_threads = 256;
  /// Static launch footprint: the kernel is compiled once, so shared memory
  /// and registers are sized for the largest strategy present in the plan.
  int smem_bytes = 0;
  int regs_per_thread = 0;

  int num_blocks() const {
    return static_cast<int>(tile_offsets.empty() ? 0
                                                 : tile_offsets.size() - 1);
  }
  int num_tiles() const { return static_cast<int>(gemm_of_tile.size()); }
  /// Tiles of block b as [begin, end) into the tile arrays.
  std::pair<int, int> block_tiles(int b) const {
    return {tile_offsets[static_cast<std::size_t>(b)],
            tile_offsets[static_cast<std::size_t>(b) + 1]};
  }
};

/// Expands a tiling selection into the flat tile list, GEMM by GEMM in row-
/// major tile order. `strategies` is parallel to `dims`.
std::vector<Tile> enumerate_tiles(
    std::span<const GemmDims> dims,
    std::span<const TilingStrategy* const> strategies);

/// Builds a plan assigning the given tile groups to blocks, computing the
/// unified launch footprint. Each inner vector becomes one block.
BatchPlan build_plan(std::span<const std::vector<Tile>> blocks,
                     int block_threads);

/// Dims-independent structural invariants: block size is 128 or 256, the
/// offset array starts at 0, is monotone, and ends at the tile count, all
/// five aux arrays agree on the tile count, every GEMM id / coordinate is
/// non-negative, every strategy id names a Table-2 strategy of the plan's
/// unified thread structure, and the static launch footprint covers the
/// strategies present without being overflow-adjacent garbage. Throws
/// CheckError on the first violation. load_plan runs this before returning,
/// so a deserialized plan is always structurally sound.
void validate_plan_structure(const BatchPlan& plan);

/// Checks every invariant of a plan against the batch it claims to cover:
/// validate_plan_structure plus GEMM ids within the batch, coordinates
/// inside each GEMM's tile grid, one consistent strategy per GEMM, and
/// every tile of every GEMM covered exactly once. Throws CheckError with a
/// description on the first violation.
void validate_plan(const BatchPlan& plan, std::span<const GemmDims> dims);

/// Useful floating-point operations of one pass over the batch: sum of
/// 2*m*n*k per GEMM (the conventional GEMM FLOP count; the beta*C update is
/// not charged). 64-bit: a single DNN layer batch already exceeds 2^31.
long long batch_flops(std::span<const GemmDims> dims);

/// Debug rendering of the aux arrays (small plans only).
std::string to_string(const BatchPlan& plan);

}  // namespace ctb
