// Batching plan: the tile list plus the five auxiliary arrays of the paper's
// programming interface (Section 6, Fig. 6). A plan fully describes which
// thread block executes which tiles of which GEMM under which tiling
// strategy — any batching scheme is expressible.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "core/epilogue.hpp"
#include "core/tiling_strategy.hpp"
#include "linalg/gemm_ref.hpp"

namespace ctb {

/// One C-tile of one GEMM, before block assignment. A tile may cover only a
/// K-slice of its GEMM (split-K): k_begin/k_end describe the half-open
/// range of the K loop this entry executes. k_end == 0 is the sentinel for
/// "full K" so plain tile enumeration never marks a plan as split.
struct Tile {
  int gemm = 0;                             ///< index into the batch.
  int ty = 0;                               ///< tile row (Y_Coordinate).
  int tx = 0;                               ///< tile col (X_Coordinate).
  int k = 0;                                ///< K extent this entry executes
                                            ///< (slice length for split-K);
                                            ///< drives batching load accounting.
  int k_begin = 0;                          ///< start of the K-slice.
  int k_end = 0;                            ///< end of the K-slice; 0 = full K.
  const TilingStrategy* strategy = nullptr; ///< owning GEMM's strategy.
};

/// The executable plan. Arrays follow Fig. 6 exactly:
///   tile_offsets ("Tile")       — CSR offsets, size num_blocks + 1; block b
///                                 owns tiles [tile_offsets[b], tile_offsets[b+1]).
///   gemm_of_tile ("GEMM")       — owning GEMM per tile.
///   strategy_of_tile ("Tiling strategy") — Table-2 id (0..11) per tile.
///   y_coord / x_coord           — tile position within its GEMM.
///   k_begin / k_end ("K_Range")  — optional sixth aux array pair (split-K):
///                                 when present (both sized num_tiles) each
///                                 tile executes the half-open K range
///                                 [k_begin, k_end) of its GEMM. Empty for
///                                 legacy unsplit plans.
///   epilogue_of_gemm ("Epilogue") — optional per-GEMM fused epilogue spec
///                                 (epilogue.hpp packed chains), sized to the
///                                 batch when present. Indexed by GEMM id,
///                                 not tile id: every tile of a GEMM shares
///                                 one epilogue, applied inside the tile
///                                 store after the split-K fix-up join.
///                                 Empty for epilogue-free plans.
struct BatchPlan {
  std::vector<int> tile_offsets;
  std::vector<int> gemm_of_tile;
  std::vector<int> strategy_of_tile;
  std::vector<int> y_coord;
  std::vector<int> x_coord;
  std::vector<int> k_begin;
  std::vector<int> k_end;
  std::vector<int> epilogue_of_gemm;

  /// Unified block size shared by all blocks (128 or 256).
  int block_threads = 256;
  /// Static launch footprint: the kernel is compiled once, so shared memory
  /// and registers are sized for the largest strategy present in the plan.
  int smem_bytes = 0;
  int regs_per_thread = 0;

  int num_blocks() const {
    return static_cast<int>(tile_offsets.empty() ? 0
                                                 : tile_offsets.size() - 1);
  }
  int num_tiles() const { return static_cast<int>(gemm_of_tile.size()); }
  /// Tiles of block b as [begin, end) into the tile arrays.
  std::pair<int, int> block_tiles(int b) const {
    return {tile_offsets[static_cast<std::size_t>(b)],
            tile_offsets[static_cast<std::size_t>(b) + 1]};
  }
  /// True when the plan carries the split-K aux arrays.
  bool has_split() const { return !k_begin.empty(); }
  /// True when the plan carries per-GEMM epilogue specs.
  bool has_epilogue() const { return !epilogue_of_gemm.empty(); }
  /// Packed epilogue spec of GEMM g; 0 (no epilogue) when the array is
  /// absent or g falls outside it (a degraded plan may cover fewer GEMMs).
  int gemm_epilogue(int g) const {
    return g >= 0 && g < static_cast<int>(epilogue_of_gemm.size())
               ? epilogue_of_gemm[static_cast<std::size_t>(g)]
               : 0;
  }
  /// K range of tile t given its GEMM's K extent; {0, K} for unsplit plans.
  std::pair<int, int> tile_k_range(int t, int K) const {
    if (!has_split()) return {0, K};
    return {k_begin[static_cast<std::size_t>(t)],
            k_end[static_cast<std::size_t>(t)]};
  }
};

/// Expands a tiling selection into the flat tile list, GEMM by GEMM in row-
/// major tile order. `strategies` is parallel to `dims`.
std::vector<Tile> enumerate_tiles(
    std::span<const GemmDims> dims,
    std::span<const TilingStrategy* const> strategies);

/// Builds a plan assigning the given tile groups to blocks, computing the
/// unified launch footprint. Each inner vector becomes one block. When any
/// tile carries an explicit K range (k_end != 0) the plan gets the split-K
/// aux arrays; sentinel full-K tiles are materialized as [0, t.k).
BatchPlan build_plan(std::span<const std::vector<Tile>> blocks,
                     int block_threads);

/// Splits each tile's K extent into up to `slices` contiguous BK-aligned
/// ranges (each at least one BK step; the last carries the ragged tail),
/// emitted adjacently in ascending K order so downstream batching keeps
/// slices of one tile in plan order. Tiles whose K loop has fewer steps
/// than `slices` get one slice per step; single-step tiles stay full-K
/// sentinels. Slice entries carry k = range length so batching engines
/// account the per-slice load. `slices <= 1` returns the input unchanged.
std::vector<Tile> split_tiles_k(std::span<const Tile> tiles, int slices);

/// Dims-independent structural invariants: block size is 128 or 256, the
/// offset array starts at 0, is monotone, and ends at the tile count, all
/// five aux arrays agree on the tile count, every GEMM id / coordinate is
/// non-negative, every strategy id names a Table-2 strategy of the plan's
/// unified thread structure, and the static launch footprint covers the
/// strategies present without being overflow-adjacent garbage. Split-K
/// plans additionally need both K-range arrays sized to the tile count,
/// every range non-empty with a non-negative BK-aligned start. Epilogue
/// specs, when present, must all be canonical packed chains
/// (epilogue_packed_valid) and the array must cover every GEMM id the tiles
/// reference. Throws CheckError on the first violation. load_plan runs this
/// before returning, so a deserialized plan is always structurally sound.
void validate_plan_structure(const BatchPlan& plan);

/// Checks every invariant of a plan against the batch it claims to cover:
/// validate_plan_structure plus GEMM ids within the batch, coordinates
/// inside each GEMM's tile grid, one consistent strategy per GEMM, and
/// every tile of every GEMM covered exactly once. For split-K plans the
/// exactly-once check generalizes: the K ranges of each (GEMM, ty, tx)
/// coordinate must form an exact, gap-free, non-overlapping ascending
/// partition of [0, K), with interior boundaries BK-aligned. Throws
/// CheckError with a description on the first violation.
void validate_plan(const BatchPlan& plan, std::span<const GemmDims> dims);

/// Useful floating-point operations of one pass over the batch: sum of
/// 2*m*n*k per GEMM (the conventional GEMM FLOP count; the beta*C update is
/// not charged). 64-bit: a single DNN layer batch already exceeds 2^31.
long long batch_flops(std::span<const GemmDims> dims);

/// Debug rendering of the aux arrays (small plans only).
std::string to_string(const BatchPlan& plan);

}  // namespace ctb
