#include "core/batching_engine.hpp"

#include <algorithm>

#include "telemetry/telemetry.hpp"
#include "util/assert.hpp"

namespace ctb {

const char* to_string(BatchingHeuristic h) {
  switch (h) {
    case BatchingHeuristic::kThreshold:
      return "threshold";
    case BatchingHeuristic::kBinary:
      return "binary";
    case BatchingHeuristic::kNone:
      return "none";
    case BatchingHeuristic::kPacked:
      return "packed";
  }
  return "?";
}

BatchPlan batch_none(std::span<const Tile> tiles, int block_threads) {
  CTB_TEL_SPAN("plan.batch.none");
  CTB_TEL_COUNT("plan.heuristic.none", 1);
  std::vector<std::vector<Tile>> blocks;
  blocks.reserve(tiles.size());
  for (const Tile& t : tiles) blocks.push_back({t});
  return build_plan(blocks, block_threads);
}

BatchPlan batch_threshold(std::span<const Tile> tiles, int block_threads,
                          const BatchingConfig& config) {
  CTB_CHECK(config.theta > 0);
  CTB_TEL_SPAN("plan.batch.threshold");
  CTB_TEL_COUNT("plan.heuristic.threshold", 1);
  std::vector<std::vector<Tile>> blocks;
  std::size_t i = 0;
  while (i < tiles.size()) {
    const long long remaining =
        static_cast<long long>(tiles.size() - i) +
        static_cast<long long>(blocks.size());
    const long long tlp_now = remaining * block_threads;
    if (tlp_now > config.tlp_threshold / 2) {
      // Parallelism to spare: deepen this block along K until theta.
      std::vector<Tile> block;
      long long sum_k = 0;
      while (i < tiles.size() && sum_k <= config.theta) {
        block.push_back(tiles[i]);
        sum_k += tiles[i].k;
        ++i;
      }
      blocks.push_back(std::move(block));
    } else {
      // TLP is scarce: the rest go one tile per block.
      for (; i < tiles.size(); ++i) blocks.push_back({tiles[i]});
    }
  }
  return build_plan(blocks, block_threads);
}

BatchPlan batch_binary(std::span<const Tile> tiles, int block_threads,
                       const BatchingConfig& config) {
  CTB_CHECK(config.theta > 0);
  CTB_TEL_SPAN("plan.batch.binary");
  CTB_TEL_COUNT("plan.heuristic.binary", 1);
  std::vector<Tile> sorted(tiles.begin(), tiles.end());
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const Tile& a, const Tile& b) { return a.k < b.k; });
  std::vector<std::vector<Tile>> blocks;
  std::size_t lo = 0;
  std::size_t hi = sorted.size();
  while (lo < hi) {
    if (hi - lo == 1) {
      blocks.push_back({sorted[lo]});
      ++lo;
      break;
    }
    // Pair min-K with max-K so K_i + K_j clusters around theta (the greedy
    // solution of the paper's Eq. 5) — unless even the pair's K already
    // exceeds theta on the big tile alone and pairing would only serialize
    // two already-deep tiles.
    const Tile& small = sorted[lo];
    const Tile& big = sorted[hi - 1];
    if (big.k >= config.theta) {
      blocks.push_back({big});
      --hi;
      continue;
    }
    blocks.push_back({small, big});
    ++lo;
    --hi;
  }
  return build_plan(blocks, block_threads);
}

BatchPlan batch_packed(std::span<const Tile> tiles, int block_threads,
                       const BatchingConfig& config) {
  CTB_CHECK(config.theta > 0);
  CTB_TEL_SPAN("plan.batch.packed");
  CTB_TEL_COUNT("plan.heuristic.packed", 1);
  // TLP guard: packing below this many blocks would starve the GPU; fall
  // back to one tile per block exactly like threshold batching's tail.
  const long long min_blocks =
      config.tlp_threshold / (2 * block_threads);

  std::vector<Tile> sorted(tiles.begin(), tiles.end());
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const Tile& a, const Tile& b) { return a.k > b.k; });

  std::vector<std::vector<Tile>> blocks;
  std::vector<long long> load;  // summed K per block
  // Bounded first fit: scanning a window of recent blocks keeps the pass
  // O(n * window) while losing almost nothing versus exact FFD.
  constexpr std::size_t kScanWindow = 256;
  for (const Tile& t : sorted) {
    bool placed = false;
    const std::size_t begin =
        blocks.size() > kScanWindow ? blocks.size() - kScanWindow : 0;
    for (std::size_t b = begin; b < blocks.size(); ++b) {
      if (load[b] + t.k <= config.theta) {
        blocks[b].push_back(t);
        load[b] += t.k;
        placed = true;
        break;
      }
    }
    if (!placed) {
      blocks.push_back({t});
      load.push_back(t.k);
    }
  }
  if (static_cast<long long>(blocks.size()) < min_blocks) {
    // Packing collapsed the block count below the TLP guard: do not batch.
    return batch_none(tiles, block_threads);
  }
  return build_plan(blocks, block_threads);
}

BatchPlan batch_tiles(BatchingHeuristic heuristic, std::span<const Tile> tiles,
                      int block_threads, const BatchingConfig& config) {
  switch (heuristic) {
    case BatchingHeuristic::kThreshold:
      return batch_threshold(tiles, block_threads, config);
    case BatchingHeuristic::kBinary:
      return batch_binary(tiles, block_threads, config);
    case BatchingHeuristic::kNone:
      return batch_none(tiles, block_threads);
    case BatchingHeuristic::kPacked:
      return batch_packed(tiles, block_threads, config);
  }
  CTB_CHECK_MSG(false, "unknown heuristic");
  return {};
}

}  // namespace ctb
