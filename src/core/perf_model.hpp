// Analytical parallelism and single-thread performance models the tiling
// engine reasons with (paper Section 4.2.1 / 4.2.2, Equations 1-4).
#pragma once

#include <span>
#include <vector>

#include "core/tiling_strategy.hpp"
#include "linalg/gemm_ref.hpp"

namespace ctb {

/// Equation 1: TLP of one GEMM under one strategy — number of tiles times
/// threads per block. Tile counts use ceiling division so non-multiple sizes
/// are covered.
long long gemm_tlp(const GemmDims& dims, const TilingStrategy& strategy);

/// Equation 1 summed over a batch: each GEMM with its own strategy.
/// `strategies.size()` must equal `dims.size()`.
long long batch_tlp(std::span<const GemmDims> dims,
                    std::span<const TilingStrategy* const> strategies);

/// Equation 2: global-memory load instructions per thread per main-loop
/// iteration, assuming 16-byte (4-float) vector loads.
double num_load_per_thread(const TilingStrategy& strategy);

/// Equation 3: FMA instructions per thread per main-loop iteration.
double num_fma_per_thread(const TilingStrategy& strategy);

/// Equation 4: arithmetic intensity Num_FMA / Num_Load = 4*BY*BX/(BY+BX).
/// Larger is better at hiding memory latency.
double arithmetic_intensity(const TilingStrategy& strategy);

}  // namespace ctb
