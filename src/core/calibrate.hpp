// Offline calibration of the architecture-dependent thresholds.
//
// The paper sets the TLP threshold "empirically ... by starting with a huge
// GEMM case and decreasing the TLP iteratively. We choose the inflection
// point with large performance degradation ... determined offline and it
// only needs to be done once for a particular platform" (Section 4.2.3),
// and theta the same way for the batching engine (Section 5). This module
// automates exactly that procedure against the simulator (on real hardware
// it would run against the GPU).
#pragma once

#include <vector>

#include "gpusim/arch.hpp"

namespace ctb {

struct CalibrationPoint {
  long long tlp = 0;      ///< threads in flight at this configuration.
  double gflops = 0.0;    ///< achieved throughput.
};

struct TlpCalibration {
  /// The chosen threshold: the largest probed TLP whose throughput already
  /// degraded by more than the knee factor relative to the plateau.
  long long threshold = 0;
  /// The probed curve, ascending TLP (for reporting).
  std::vector<CalibrationPoint> curve;
};

struct CalibrationConfig {
  /// Base workload: a large uniform batch probed at every tile size.
  int gemm_mn = 256;
  int gemm_k = 256;
  int batch = 64;
  /// Relative throughput drop versus the plateau that marks the knee.
  double knee_fraction = 0.10;
};

/// Runs the paper's offline TLP-threshold procedure for one architecture.
TlpCalibration calibrate_tlp_threshold(const GpuArch& arch,
                                       const CalibrationConfig& config = {});

struct ThetaCalibration {
  int theta = 0;
  /// (theta, simulated us) probes, ascending theta.
  std::vector<std::pair<int, double>> curve;
};

/// Sweeps theta for threshold batching on a small-K workload and returns
/// the value past which deeper batching stops improving (within 2%).
ThetaCalibration calibrate_theta(const GpuArch& arch,
                                 long long tlp_threshold);

}  // namespace ctb
