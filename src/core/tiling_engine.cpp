#include "core/tiling_engine.hpp"

#include <algorithm>

#include "telemetry/telemetry.hpp"
#include "util/assert.hpp"
#include "util/log.hpp"

namespace ctb {

std::vector<const TilingStrategy*> feasible_strategies(
    const GemmDims& dims, ThreadVariant variant) {
  std::vector<const TilingStrategy*> out;
  for (TileShape shape : all_tile_shapes()) {
    const TilingStrategy& s = batched_strategy(shape, variant);
    if (shape == TileShape::kSmall || (s.by <= dims.m && s.bx <= dims.n))
      out.push_back(&s);
  }
  return out;
}

namespace {

/// One pass of steps 2-3 for a fixed thread variant. Returns true and fills
/// `result` when a selection with TLP <= threshold is found; returns false
/// when all queues exhaust while TLP is still above the threshold (the
/// caller then switches variants). `result` always holds the last-evaluated
/// selection so the 128-thread fallback can accept its largest one.
bool run_variant(std::span<const GemmDims> dims, ThreadVariant variant,
                 long long threshold, TilingResult& result) {
  const std::size_t n = dims.size();
  std::vector<std::vector<const TilingStrategy*>> queues(n);
  long long candidates = 0;
  for (std::size_t i = 0; i < n; ++i) {
    queues[i] = feasible_strategies(dims[i], variant);
    candidates += static_cast<long long>(queues[i].size());
  }
  CTB_TEL_COUNT("tiling.candidates", candidates);

  std::vector<std::size_t> idx(n, 0);
  result.variant = variant;
  while (true) {
    result.per_gemm.assign(n, nullptr);
    for (std::size_t i = 0; i < n; ++i) result.per_gemm[i] = queues[i][idx[i]];
    result.tlp = batch_tlp(dims, result.per_gemm);
    ++result.iterations;
    if (result.tlp <= threshold) return true;

    bool all_exhausted = true;
    for (std::size_t i = 0; i < n; ++i) {
      // Exception 1: a queue down to its last strategy is topped, not
      // popped, so every GEMM keeps a valid selection.
      if (idx[i] + 1 < queues[i].size()) {
        ++idx[i];
        all_exhausted = false;
      }
    }
    if (all_exhausted) return false;
  }
}

}  // namespace

TilingResult select_tiling(std::span<const GemmDims> dims,
                           const TilingConfig& config) {
  CTB_CHECK_MSG(!dims.empty(), "empty batch");
  for (const auto& d : dims)
    CTB_CHECK_MSG(d.valid(), "invalid GEMM dims " << d.m << "x" << d.n << "x"
                                                  << d.k);

  CTB_TEL_SPAN("plan.tiling");
  TilingResult result;
  if (run_variant(dims, ThreadVariant::k256, config.tlp_threshold, result)) {
    CTB_DEBUG("tiling: accepted 256-thread selection, TLP=" << result.tlp);
    CTB_TEL_COUNT("tiling.iterations", result.iterations);
    CTB_TEL_HIST("tiling.tlp", result.tlp);
    return result;
  }
  // Exception 2: every 256-thread queue exhausted with TLP still above the
  // threshold — switch to the 128-thread variants and repeat. If those also
  // exhaust, the largest 128-thread selection is the answer (maximum ILP).
  const int prior_iters = result.iterations;
  TilingResult fallback;
  run_variant(dims, ThreadVariant::k128, config.tlp_threshold, fallback);
  fallback.iterations += prior_iters;
  CTB_DEBUG("tiling: 128-thread fallback, TLP=" << fallback.tlp);
  CTB_TEL_COUNT("tiling.fallback_128", 1);
  CTB_TEL_COUNT("tiling.iterations", fallback.iterations);
  CTB_TEL_HIST("tiling.tlp", fallback.tlp);
  return fallback;
}

const TilingStrategy& magma_uniform_strategy(std::span<const GemmDims> dims) {
  CTB_CHECK(!dims.empty());
  // vbatch dispatches one kernel instantiation for the whole batch from the
  // largest GEMM's dimensions (single-GEMM data-reuse logic, ignoring how
  // many GEMMs are batched). MAGMA's vbatched templates target small/medium
  // matrices and stop at 64x64 blockings with 2-D 16x16 = 256-thread
  // blocks, so the uniform tile is the largest shape up to `large` that
  // fits the max dimensions, in its 256-thread form. (Its other handicaps —
  // one tile per block, bubble blocks, idle threads on smaller GEMMs, and
  // phase-serialized main loops — are modeled in the work builder.)
  int max_m = 0, max_n = 0;
  for (const auto& d : dims) {
    max_m = std::max(max_m, d.m);
    max_n = std::max(max_n, d.n);
  }
  const TilingStrategy* best =
      &batched_strategy(TileShape::kSmall, ThreadVariant::k256);
  for (TileShape shape : {TileShape::kMedium, TileShape::kLarge}) {
    const TilingStrategy& s = batched_strategy(shape, ThreadVariant::k256);
    if (s.by <= max_m && s.bx <= max_n) best = &s;
  }
  return *best;
}

}  // namespace ctb
