#include "core/plan_fuzz.hpp"

#include <algorithm>
#include <climits>

#include "core/tiling_strategy.hpp"

namespace ctb {

const std::vector<PlanFault>& all_plan_faults() {
  static const std::vector<PlanFault> faults = {
      PlanFault::kTruncateOffsets,      PlanFault::kTruncateGemm,
      PlanFault::kTruncateStrategy,     PlanFault::kTruncateY,
      PlanFault::kTruncateX,            PlanFault::kDuplicateTile,
      PlanFault::kSwapGemmIds,          PlanFault::kTransposeCoords,
      PlanFault::kGemmIdNegative,       PlanFault::kGemmIdPastEnd,
      PlanFault::kStrategyIdNegative,   PlanFault::kStrategyIdPastEnd,
      PlanFault::kYCoordNegative,       PlanFault::kYCoordPastEnd,
      PlanFault::kXCoordNegative,       PlanFault::kXCoordPastEnd,
      PlanFault::kOffsetsNonMonotone,   PlanFault::kOffsetsFirstNonZero,
      PlanFault::kOffsetsBackMismatch,  PlanFault::kThreadVariantMismatch,
      PlanFault::kBlockThreadsInvalid,  PlanFault::kOffsetsOverflow,
      PlanFault::kCoordOverflow,        PlanFault::kSmemOverflow,
      PlanFault::kRegsOverflow,         PlanFault::kSplitOverlap,
      PlanFault::kSplitGap,             PlanFault::kSplitEndPastK,
      PlanFault::kSplitZeroLength,      PlanFault::kSplitUnaligned,
      PlanFault::kSplitTruncated,       PlanFault::kEpilogueBadOpId,
      PlanFault::kEpilogueNonCanonical, PlanFault::kEpilogueArrayMismatch,
  };
  return faults;
}

const char* to_string(PlanFault fault) {
  switch (fault) {
    case PlanFault::kTruncateOffsets: return "truncate-offsets";
    case PlanFault::kTruncateGemm: return "truncate-gemm";
    case PlanFault::kTruncateStrategy: return "truncate-strategy";
    case PlanFault::kTruncateY: return "truncate-y";
    case PlanFault::kTruncateX: return "truncate-x";
    case PlanFault::kDuplicateTile: return "duplicate-tile";
    case PlanFault::kSwapGemmIds: return "swap-gemm-ids";
    case PlanFault::kTransposeCoords: return "transpose-coords";
    case PlanFault::kGemmIdNegative: return "gemm-id-negative";
    case PlanFault::kGemmIdPastEnd: return "gemm-id-past-end";
    case PlanFault::kStrategyIdNegative: return "strategy-id-negative";
    case PlanFault::kStrategyIdPastEnd: return "strategy-id-past-end";
    case PlanFault::kYCoordNegative: return "y-coord-negative";
    case PlanFault::kYCoordPastEnd: return "y-coord-past-end";
    case PlanFault::kXCoordNegative: return "x-coord-negative";
    case PlanFault::kXCoordPastEnd: return "x-coord-past-end";
    case PlanFault::kOffsetsNonMonotone: return "offsets-non-monotone";
    case PlanFault::kOffsetsFirstNonZero: return "offsets-first-nonzero";
    case PlanFault::kOffsetsBackMismatch: return "offsets-back-mismatch";
    case PlanFault::kThreadVariantMismatch:
      return "thread-variant-mismatch";
    case PlanFault::kBlockThreadsInvalid: return "block-threads-invalid";
    case PlanFault::kOffsetsOverflow: return "offsets-overflow";
    case PlanFault::kCoordOverflow: return "coord-overflow";
    case PlanFault::kSmemOverflow: return "smem-overflow";
    case PlanFault::kRegsOverflow: return "regs-overflow";
    case PlanFault::kSplitOverlap: return "split-overlap";
    case PlanFault::kSplitGap: return "split-gap";
    case PlanFault::kSplitEndPastK: return "split-end-past-k";
    case PlanFault::kSplitZeroLength: return "split-zero-length";
    case PlanFault::kSplitUnaligned: return "split-unaligned";
    case PlanFault::kSplitTruncated: return "split-truncated";
    case PlanFault::kEpilogueBadOpId: return "epilogue-bad-op-id";
    case PlanFault::kEpilogueNonCanonical: return "epilogue-non-canonical";
    case PlanFault::kEpilogueArrayMismatch:
      return "epilogue-array-mismatch";
  }
  return "?";
}

namespace {

std::size_t st(int v) { return static_cast<std::size_t>(v); }

}  // namespace

std::vector<FaultedPlan> inject_plan_fault(const BatchPlan& plan,
                                           PlanFault fault) {
  std::vector<FaultedPlan> out;
  const int n = plan.num_tiles();
  auto add = [&](BatchPlan p, std::string note) {
    out.push_back(FaultedPlan{std::move(p), std::move(note)});
  };

  switch (fault) {
    case PlanFault::kTruncateOffsets:
      if (!plan.tile_offsets.empty() && n > 0) {
        BatchPlan p = plan;
        p.tile_offsets.pop_back();
        add(std::move(p), "dropped the last tile offset");
      }
      break;
    case PlanFault::kTruncateGemm:
      if (n > 0) {
        BatchPlan p = plan;
        p.gemm_of_tile.pop_back();
        add(std::move(p), "dropped the last GEMM id");
      }
      break;
    case PlanFault::kTruncateStrategy:
      if (n > 0) {
        BatchPlan p = plan;
        p.strategy_of_tile.pop_back();
        add(std::move(p), "dropped the last strategy id");
      }
      break;
    case PlanFault::kTruncateY:
      if (n > 0) {
        BatchPlan p = plan;
        p.y_coord.pop_back();
        add(std::move(p), "dropped the last Y coordinate");
      }
      break;
    case PlanFault::kTruncateX:
      if (n > 0) {
        BatchPlan p = plan;
        p.x_coord.pop_back();
        add(std::move(p), "dropped the last X coordinate");
      }
      break;
    case PlanFault::kDuplicateTile:
      if (n > 0) {
        BatchPlan p = plan;
        const int t = n - 1;
        p.gemm_of_tile.push_back(p.gemm_of_tile[st(t)]);
        p.strategy_of_tile.push_back(p.strategy_of_tile[st(t)]);
        p.y_coord.push_back(p.y_coord[st(t)]);
        p.x_coord.push_back(p.x_coord[st(t)]);
        if (p.has_split()) {
          p.k_begin.push_back(p.k_begin[st(t)]);
          p.k_end.push_back(p.k_end[st(t)]);
        }
        p.tile_offsets.back() += 1;
        add(std::move(p), "appended a duplicate of the last tile");
      }
      break;
    case PlanFault::kSwapGemmIds: {
      // Swap the GEMM ids of two tiles of different GEMMs *at different
      // coordinates*: each GEMM then holds a duplicate or out-of-grid
      // coordinate, so coverage validation must trip. (Equal-coordinate
      // swaps — e.g. two single-tile GEMMs both at (0,0) — describe the
      // same work and stay valid, so they are skipped.)
      bool done = false;
      for (int i = 0; i < n && !done; ++i) {
        for (int t = i + 1; t < n && !done; ++t) {
          if (plan.gemm_of_tile[st(t)] == plan.gemm_of_tile[st(i)]) continue;
          if (plan.y_coord[st(t)] == plan.y_coord[st(i)] &&
              plan.x_coord[st(t)] == plan.x_coord[st(i)])
            continue;
          BatchPlan p = plan;
          std::swap(p.gemm_of_tile[st(i)], p.gemm_of_tile[st(t)]);
          add(std::move(p), "swapped GEMM ids of tiles " +
                                std::to_string(i) + " and " +
                                std::to_string(t));
          done = true;
        }
      }
      break;
    }
    case PlanFault::kTransposeCoords: {
      // Transposing (ty, tx) of one tile lands on a coordinate that is
      // either outside the GEMM's tile grid or already owned by another
      // tile (the original coverage was complete), so it can never pass.
      for (int t = 0; t < n; ++t) {
        if (plan.y_coord[st(t)] != plan.x_coord[st(t)]) {
          BatchPlan p = plan;
          std::swap(p.y_coord[st(t)], p.x_coord[st(t)]);
          add(std::move(p),
              "transposed the coordinates of tile " + std::to_string(t));
          break;
        }
      }
      break;
    }
    case PlanFault::kGemmIdNegative:
      if (n > 0) {
        BatchPlan p = plan;
        p.gemm_of_tile[0] = -1;
        add(std::move(p), "GEMM id of tile 0 set to -1");
      }
      break;
    case PlanFault::kGemmIdPastEnd:
      if (n > 0) {
        BatchPlan p = plan;
        const int past = *std::max_element(plan.gemm_of_tile.begin(),
                                           plan.gemm_of_tile.end()) +
                         1;
        p.gemm_of_tile[st(n - 1)] = past;
        add(std::move(p), "GEMM id of the last tile set one past the batch");
      }
      break;
    case PlanFault::kStrategyIdNegative:
      if (n > 0) {
        BatchPlan p = plan;
        p.strategy_of_tile[0] = -1;
        add(std::move(p), "strategy id of tile 0 set to -1");
      }
      break;
    case PlanFault::kStrategyIdPastEnd:
      if (n > 0) {
        BatchPlan p = plan;
        p.strategy_of_tile[0] = static_cast<int>(batched_strategies().size());
        add(std::move(p), "strategy id of tile 0 set past Table 2");
      }
      break;
    case PlanFault::kYCoordNegative:
      if (n > 0) {
        BatchPlan p = plan;
        p.y_coord[0] = -1;
        add(std::move(p), "Y coordinate of tile 0 set to -1");
      }
      break;
    case PlanFault::kYCoordPastEnd:
      if (n > 0) {
        BatchPlan p = plan;
        const int past = *std::max_element(plan.y_coord.begin(),
                                           plan.y_coord.end()) +
                         4096;
        p.y_coord[st(n - 1)] = past;
        add(std::move(p), "Y coordinate of the last tile set past the grid");
      }
      break;
    case PlanFault::kXCoordNegative:
      if (n > 0) {
        BatchPlan p = plan;
        p.x_coord[0] = -1;
        add(std::move(p), "X coordinate of tile 0 set to -1");
      }
      break;
    case PlanFault::kXCoordPastEnd:
      if (n > 0) {
        BatchPlan p = plan;
        const int past = *std::max_element(plan.x_coord.begin(),
                                           plan.x_coord.end()) +
                         4096;
        p.x_coord[st(n - 1)] = past;
        add(std::move(p), "X coordinate of the last tile set past the grid");
      }
      break;
    case PlanFault::kOffsetsNonMonotone:
      if (plan.tile_offsets.size() >= 2 && n > 0) {
        BatchPlan p = plan;
        p.tile_offsets[1] = -5;
        add(std::move(p), "tile offset 1 set to -5 (descending)");
      }
      if (plan.tile_offsets.size() >= 3 &&
          plan.tile_offsets[1] != plan.tile_offsets[2]) {
        BatchPlan p = plan;
        std::swap(p.tile_offsets[1], p.tile_offsets[2]);
        add(std::move(p), "swapped tile offsets 1 and 2");
      }
      break;
    case PlanFault::kOffsetsFirstNonZero:
      if (n > 0) {
        BatchPlan p = plan;
        p.tile_offsets[0] = 1;
        add(std::move(p), "first tile offset set to 1");
      }
      break;
    case PlanFault::kOffsetsBackMismatch:
      if (!plan.tile_offsets.empty()) {
        BatchPlan p = plan;
        p.tile_offsets.back() += 1;
        add(std::move(p), "last tile offset exceeds the tile count by 1");
      }
      break;
    case PlanFault::kThreadVariantMismatch:
      if (n > 0) {
        // Table-2 ids encode shape*2 + variant bit, so id^1 is the same
        // shape under the other thread count — a unified-thread-structure
        // violation the kernel could not launch.
        BatchPlan p = plan;
        p.strategy_of_tile[0] ^= 1;
        add(std::move(p),
            "strategy of tile 0 flipped to the other thread variant");
      }
      break;
    case PlanFault::kBlockThreadsInvalid: {
      BatchPlan p = plan;
      p.block_threads = 96;
      add(std::move(p), "block_threads set to 96");
      BatchPlan q = plan;
      q.block_threads = 0;
      add(std::move(q), "block_threads set to 0");
      break;
    }
    case PlanFault::kOffsetsOverflow:
      if (!plan.tile_offsets.empty() && n > 0) {
        BatchPlan p = plan;
        p.tile_offsets.back() = INT_MAX;
        add(std::move(p), "last tile offset set to INT_MAX");
      }
      break;
    case PlanFault::kCoordOverflow:
      if (n > 0) {
        BatchPlan p = plan;
        p.y_coord[0] = INT_MAX - 1;
        add(std::move(p), "Y coordinate of tile 0 set near INT_MAX");
        BatchPlan q = plan;
        q.x_coord[0] = INT_MAX - 1;
        add(std::move(q), "X coordinate of tile 0 set near INT_MAX");
      }
      break;
    case PlanFault::kSmemOverflow: {
      BatchPlan p = plan;
      p.smem_bytes = INT_MAX;
      add(std::move(p), "smem footprint set to INT_MAX");
      BatchPlan q = plan;
      q.smem_bytes = -4;
      add(std::move(q), "smem footprint set negative");
      break;
    }
    case PlanFault::kRegsOverflow: {
      BatchPlan p = plan;
      p.regs_per_thread = 1 << 20;
      add(std::move(p), "register footprint set to 2^20");
      BatchPlan q = plan;
      q.regs_per_thread = -1;
      add(std::move(q), "register footprint set negative");
      break;
    }
    case PlanFault::kSplitOverlap:
      // Pull a fix-up slice's start back one BK step: it now overlaps the
      // preceding slice of the same coordinate while staying BK-aligned and
      // non-empty, so only the partition check can catch it.
      for (int t = 0; plan.has_split() && t < n; ++t) {
        const int bk = batched_strategy_by_id(plan.strategy_of_tile[st(t)]).bk;
        if (plan.k_begin[st(t)] >= bk) {
          BatchPlan p = plan;
          p.k_begin[st(t)] -= bk;
          add(std::move(p), "slice " + std::to_string(t) +
                                " start pulled back one BK step (overlap)");
          break;
        }
      }
      break;
    case PlanFault::kSplitGap:
      // Push a fix-up slice's start forward one BK step, leaving a hole in
      // the coordinate's K coverage (the range stays non-empty).
      for (int t = 0; plan.has_split() && t < n; ++t) {
        const int bk = batched_strategy_by_id(plan.strategy_of_tile[st(t)]).bk;
        if (plan.k_begin[st(t)] > 0 &&
            plan.k_begin[st(t)] + bk < plan.k_end[st(t)]) {
          BatchPlan p = plan;
          p.k_begin[st(t)] += bk;
          add(std::move(p), "slice " + std::to_string(t) +
                                " start pushed forward one BK step (gap)");
          break;
        }
      }
      break;
    case PlanFault::kSplitEndPastK:
      if (plan.has_split() && n > 0) {
        // The final slice of the last tile coordinate ends at K; one more
        // BK step runs past the GEMM's K extent.
        const int t = n - 1;
        const int bk = batched_strategy_by_id(plan.strategy_of_tile[st(t)]).bk;
        BatchPlan p = plan;
        p.k_end[st(t)] += bk;
        add(std::move(p), "last slice extended one BK step past K");
        BatchPlan q = plan;
        q.k_end[st(t)] = INT_MAX - 1;
        add(std::move(q), "last slice end set near INT_MAX");
      }
      break;
    case PlanFault::kSplitZeroLength:
      // Collapse a fix-up entry (k_begin > 0) to a zero-length range: the
      // tile still appears in the reduction chain but covers nothing.
      for (int t = 0; plan.has_split() && t < n; ++t) {
        if (plan.k_begin[st(t)] > 0) {
          BatchPlan p = plan;
          p.k_end[st(t)] = p.k_begin[st(t)];
          add(std::move(p), "fix-up slice " + std::to_string(t) +
                                " collapsed to a zero-length range");
          break;
        }
      }
      break;
    case PlanFault::kSplitUnaligned:
      for (int t = 0; plan.has_split() && t < n; ++t) {
        if (plan.k_begin[st(t)] > 0) {
          BatchPlan p = plan;
          p.k_begin[st(t)] += 1;
          add(std::move(p), "slice " + std::to_string(t) +
                                " start knocked off the BK grid");
          break;
        }
      }
      break;
    case PlanFault::kSplitTruncated:
      if (plan.has_split() && n > 0) {
        BatchPlan p = plan;
        p.k_begin.pop_back();
        p.k_end.pop_back();
        add(std::move(p), "dropped the last K range");
        BatchPlan q = plan;
        q.k_end.pop_back();
        add(std::move(q), "dropped the last K-range end only");
      }
      break;
    case PlanFault::kEpilogueBadOpId:
      if (plan.has_epilogue()) {
        // Overwrite the first spec with an op id one past the enum, and
        // append the same bad id to the first non-full chain — both leave
        // every other nibble well-formed, so only per-nibble validation
        // can catch them.
        BatchPlan p = plan;
        p.epilogue_of_gemm[0] = kNumEpilogueOps + 1;
        add(std::move(p), "epilogue spec of GEMM 0 set to an unknown op id");
        for (std::size_t g = 0; g < plan.epilogue_of_gemm.size(); ++g) {
          const int spec = plan.epilogue_of_gemm[g];
          const int nops = epilogue_num_ops(spec);
          if (spec != 0 && nops < kMaxEpilogueOps) {
            BatchPlan q = plan;
            q.epilogue_of_gemm[g] = spec | ((kNumEpilogueOps + 1)
                                            << (4 * nops));
            add(std::move(q), "unknown op id appended to the chain of GEMM " +
                                  std::to_string(g));
            break;
          }
        }
      }
      break;
    case PlanFault::kEpilogueNonCanonical:
      if (plan.has_epilogue()) {
        // A nonzero nibble after the zero terminator (0x20 decodes as "no
        // ops" but compares unequal to 0), garbage above the nibble area,
        // and a negative spec.
        BatchPlan p = plan;
        p.epilogue_of_gemm[0] = 0x20;
        add(std::move(p),
            "epilogue spec of GEMM 0 holds an op past the terminator");
        BatchPlan q = plan;
        q.epilogue_of_gemm[0] = 1 << (4 * kMaxEpilogueOps);
        add(std::move(q),
            "epilogue spec of GEMM 0 set above the nibble area");
        BatchPlan r = plan;
        r.epilogue_of_gemm[0] = -1;
        add(std::move(r), "epilogue spec of GEMM 0 set negative");
      }
      break;
    case PlanFault::kEpilogueArrayMismatch: {
      if (!plan.has_epilogue()) break;
      // Truncate only when the remainder still carries a nonzero spec —
      // an emptied or all-zero array is a *valid* plain plan, not a fault.
      BatchPlan p = plan;
      p.epilogue_of_gemm.pop_back();
      bool any = false;
      for (int v : p.epilogue_of_gemm) any = any || v != 0;
      if (any)
        add(std::move(p), "dropped the last epilogue spec");
      BatchPlan q = plan;
      q.epilogue_of_gemm.push_back(0);
      add(std::move(q), "appended a spec past the batch");
      break;
    }
  }
  return out;
}

}  // namespace ctb
