#include "core/epilogue.hpp"

#include "util/assert.hpp"

namespace ctb {

namespace {

inline int nibble(int spec, int i) { return (spec >> (4 * i)) & 0xF; }

}  // namespace

int epilogue_num_ops(int spec) {
  int n = 0;
  while (n < kMaxEpilogueOps && nibble(spec, n) != 0) ++n;
  return n;
}

EpilogueOp epilogue_op_at(int spec, int i) {
  return static_cast<EpilogueOp>(nibble(spec, i));
}

bool epilogue_packed_valid(int spec) {
  if (spec < 0) return false;
  if (spec >> (4 * kMaxEpilogueOps) != 0) return false;
  bool terminated = false;
  for (int i = 0; i < kMaxEpilogueOps; ++i) {
    const int id = nibble(spec, i);
    if (id == 0) {
      terminated = true;
    } else {
      if (terminated) return false;  // nonzero nibble after the terminator
      if (id > kNumEpilogueOps) return false;
    }
  }
  return true;
}

int epilogue_push(int spec, EpilogueOp op) {
  CTB_CHECK(epilogue_packed_valid(spec));
  const int id = static_cast<int>(op);
  CTB_CHECK_MSG(id >= 1 && id <= kNumEpilogueOps, "bad epilogue op " << id);
  const int n = epilogue_num_ops(spec);
  CTB_CHECK_MSG(n < kMaxEpilogueOps, "epilogue chain full");
  return spec | (id << (4 * n));
}

bool epilogue_has_op(int spec, EpilogueOp op) {
  const int n = epilogue_num_ops(spec);
  for (int i = 0; i < n; ++i)
    if (epilogue_op_at(spec, i) == op) return true;
  return false;
}

const char* to_string(EpilogueOp op) {
  switch (op) {
    case EpilogueOp::kNone: return "none";
    case EpilogueOp::kBias: return "bias";
    case EpilogueOp::kRelu: return "relu";
    case EpilogueOp::kResidual: return "residual";
    case EpilogueOp::kRowPerm: return "rowperm";
    case EpilogueOp::kColPerm: return "colperm";
  }
  return "?";
}

std::string epilogue_to_string(int spec) {
  const int n = epilogue_num_ops(spec);
  if (n == 0) return "none";
  std::string out;
  for (int i = 0; i < n; ++i) {
    if (i) out += '+';
    out += to_string(epilogue_op_at(spec, i));
  }
  return out;
}

}  // namespace ctb
