// Batching engine (paper Section 5): assigns tiles to thread blocks,
// balancing TLP against ILP.
//
// Two heuristics:
//   * Threshold batching — TLP first. While the batch still has parallelism
//     to spare (remaining tiles + built blocks, in threads, above half the
//     tiling TLP threshold), each new block is filled with tiles until their
//     summed K exceeds theta; once TLP gets scarce, the rest go one tile per
//     block.
//   * Binary batching — ILP first. Tiles are sorted by K ascending and
//     paired min-with-max so every pair's summed K lands near theta
//     (greedy solution of Eq. 5); at most two tiles per block.
//
// The choice between the two is made offline (try both) or online by the
// random-forest policy in core/api.
#pragma once

#include <span>
#include <vector>

#include "core/batch_plan.hpp"

namespace ctb {

struct BatchingConfig {
  /// Workload threshold theta: total K per block above which further
  /// batching stops paying (256 on V100, paper Section 7).
  int theta = 256;
  /// The tiling engine's TLP threshold; threshold batching keeps batching
  /// only while TLP exceeds half of it.
  long long tlp_threshold = 65536;
};

/// kPacked is an extension beyond the paper: first-fit-decreasing bin
/// packing of tile K values into blocks of capacity theta, combining
/// threshold batching's depth with binary batching's balance. Evaluated in
/// bench_ablation_batching; not used by the default policies.
enum class BatchingHeuristic { kThreshold, kBinary, kNone, kPacked };

const char* to_string(BatchingHeuristic h);

/// One tile per block — the tiling-engine-only configuration (paper
/// Section 7.1 evaluates this alone).
BatchPlan batch_none(std::span<const Tile> tiles, int block_threads);

/// Threshold batching (TLP priority).
BatchPlan batch_threshold(std::span<const Tile> tiles, int block_threads,
                          const BatchingConfig& config = {});

/// Binary batching (ILP priority).
BatchPlan batch_binary(std::span<const Tile> tiles, int block_threads,
                       const BatchingConfig& config = {});

/// Extension: first-fit-decreasing packing of K into theta-capacity blocks,
/// subject to the same TLP guard as threshold batching.
BatchPlan batch_packed(std::span<const Tile> tiles, int block_threads,
                       const BatchingConfig& config = {});

/// Dispatches on the heuristic enum.
BatchPlan batch_tiles(BatchingHeuristic heuristic, std::span<const Tile> tiles,
                      int block_threads, const BatchingConfig& config = {});

}  // namespace ctb
