// Exhaustive batching search — an analysis tool, not a production path.
//
// The paper's batching heuristics prune "a very large space to explore"
// (Section 5). For small tile counts the space is small enough to search
// exactly: every set partition of the tiles into blocks is a candidate
// batching scheme, and the simulator scores each. This quantifies how far
// threshold/binary batching sit from the true optimum.
#pragma once

#include <span>

#include "core/api.hpp"

namespace ctb {

struct ExhaustiveResult {
  BatchPlan best_plan;
  double best_us = 0.0;
  /// Partitions evaluated (the Bell number of the tile count).
  long long partitions = 0;
};

/// Searches all partitions of the batch's tiles into blocks (tile order
/// inside a block and block order follow the enumeration, so plans that
/// differ only by ordering — which perturbs SM assignment by well under a
/// percent — are searched once). Throws CheckError when the tile count
/// exceeds `max_tiles` — Bell numbers explode (B(12) is already 4.2M).
ExhaustiveResult exhaustive_batching(const GpuArch& arch,
                                     std::span<const GemmDims> dims,
                                     long long tlp_threshold,
                                     int max_tiles = 10);

}  // namespace ctb
