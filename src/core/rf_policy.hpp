// Random-forest batching policy (paper Section 5).
//
// The classifier picks between threshold and binary batching from five
// features: the paper's {mean M, mean N, mean K, batch size B} plus the
// split-K era's TLP-scarcity proxy (total 64x64 C-tile count across the
// batch). Training samples are
// random batched-GEMM cases labelled by the oracle — both heuristics run
// through the simulator and the faster one wins (the paper labels with
// hardware timings; the simulator plays that role here, see DESIGN.md).
#pragma once

#include <algorithm>
#include <span>
#include <vector>

#include "core/batching_engine.hpp"
#include "gpusim/arch.hpp"
#include "linalg/gemm_ref.hpp"
#include "rf/random_forest.hpp"
#include "util/rng.hpp"

namespace ctb {

/// The paper's feature vector {mean M, mean N, mean K, batch size}, plus a
/// fifth feature: the batch's total C-tile count under the large 64x64
/// shape (the planner's TLP-scarcity proxy).
std::vector<double> batching_features(std::span<const GemmDims> dims);

/// Size ranges for random batched-GEMM cases (used for RF training and for
/// the Fig. 11 random sweeps).
struct CaseRanges {
  int min_batch = 2;
  int max_batch = 64;
  int min_mn = 16;
  int max_mn = 512;
  int min_k = 16;
  int max_k = 2048;
};

/// One random batched-GEMM case: batch size uniform, dims log-uniform (GEMM
/// sizes in the wild cluster at small magnitudes).
std::vector<GemmDims> random_batch(Rng& rng, const CaseRanges& ranges);

struct RfTrainingConfig {
  GpuModel gpu = GpuModel::kV100;
  int num_cases = 400;  ///< the paper trains on 400+ samples
  std::uint64_t seed = 2019;
  CaseRanges ranges;
  ForestParams forest;
  /// Minimum relative gap between the heuristics for a case to be kept as
  /// a training sample (0 keeps everything). Cases where both heuristics
  /// tie are label noise; filtering them sharpens the learned boundary.
  double label_margin = 0.0;
  /// Bound on generation attempts when margin filtering discards cases.
  int max_attempts_factor = 8;
};

/// Simulated times of both heuristics on one case.
struct OracleTimes {
  double threshold_us = 0.0;
  double binary_us = 0.0;

  int label() const { return threshold_us <= binary_us ? 0 : 1; }
  /// Relative gap between the heuristics; labels below a margin are noise.
  double margin() const {
    const double lo = std::min(threshold_us, binary_us);
    const double hi = std::max(threshold_us, binary_us);
    return lo > 0.0 ? hi / lo - 1.0 : 0.0;
  }
};

OracleTimes oracle_times(const GpuArch& arch, std::span<const GemmDims> dims,
                         long long tlp_threshold, int theta);

/// Oracle label for one case: 0 = threshold batching, 1 = binary batching,
/// whichever simulates faster under the given architecture.
int oracle_label(const GpuArch& arch, std::span<const GemmDims> dims,
                 long long tlp_threshold, int theta);

/// Generates the labelled dataset.
Dataset generate_batching_dataset(const RfTrainingConfig& config);

/// Generates, labels, and fits the forest. When `out_dataset` is non-null it
/// receives the training set (for accuracy reporting / ablations).
RandomForest train_batching_forest(const RfTrainingConfig& config,
                                   Dataset* out_dataset = nullptr);

/// Online selection for a new batch.
BatchingHeuristic rf_choose(const RandomForest& forest,
                            std::span<const GemmDims> dims);

}  // namespace ctb
