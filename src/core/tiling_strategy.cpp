#include "core/tiling_strategy.hpp"

#include "util/assert.hpp"

namespace ctb {

namespace {

TilingStrategy make(TileShape shape, int by, int bx, int threads, int sub_y,
                    int sub_x, int id) {
  TilingStrategy s;
  s.shape = shape;
  s.by = by;
  s.bx = bx;
  s.bk = 8;  // the paper fixes BK = 8 throughout (Section 4.2.2)
  s.threads = threads;
  s.sub_y = sub_y;
  s.sub_x = sub_x;
  s.id = id;
  CTB_CHECK_MSG(by * bx == threads * sub_y * sub_x,
                "inconsistent strategy: " << by << "x" << bx << " threads="
                                          << threads << " sub=" << sub_y
                                          << "x" << sub_x);
  return s;
}

std::vector<TilingStrategy> make_table1() {
  // Paper Table 1: {BY, BX, BK, Threads, Sub-Tile}.
  return {
      make(TileShape::kSmall, 16, 16, 32, 4, 2, -1),
      make(TileShape::kMedium, 32, 32, 64, 4, 4, -1),
      make(TileShape::kLarge, 64, 64, 64, 8, 8, -1),
      make(TileShape::kTall, 128, 64, 128, 8, 8, -1),
      make(TileShape::kWide, 64, 128, 128, 8, 8, -1),
      make(TileShape::kHuge, 128, 128, 256, 8, 8, -1),
  };
}

std::vector<TilingStrategy> make_table2() {
  // Paper Table 2: every shape in a 128-thread and a 256-thread version.
  // Ids: shape * 2 + (variant == 256).
  std::vector<TilingStrategy> t;
  auto add = [&t](TileShape shape, int by, int bx, int s128y, int s128x,
                  int s256y, int s256x) {
    const int base = static_cast<int>(shape) * 2;
    t.push_back(make(shape, by, bx, 128, s128y, s128x, base));
    t.push_back(make(shape, by, bx, 256, s256y, s256x, base + 1));
  };
  add(TileShape::kSmall, 16, 16, /*128T*/ 2, 1, /*256T*/ 1, 1);
  add(TileShape::kMedium, 32, 32, 4, 2, 2, 2);
  add(TileShape::kLarge, 64, 64, 8, 4, 4, 4);
  add(TileShape::kTall, 128, 64, 8, 8, 8, 4);
  add(TileShape::kWide, 64, 128, 8, 8, 8, 4);
  add(TileShape::kHuge, 128, 128, 16, 8, 8, 8);
  return t;
}

}  // namespace

std::string TilingStrategy::name() const {
  std::string n = to_string(shape);
  n += '/';
  n += std::to_string(threads);
  return n;
}

const char* to_string(TileShape shape) {
  switch (shape) {
    case TileShape::kSmall:
      return "small";
    case TileShape::kMedium:
      return "medium";
    case TileShape::kLarge:
      return "large";
    case TileShape::kTall:
      return "tall";
    case TileShape::kWide:
      return "wide";
    case TileShape::kHuge:
      return "huge";
  }
  return "?";
}

const std::array<TileShape, 6>& all_tile_shapes() {
  static const std::array<TileShape, 6> shapes = {
      TileShape::kSmall, TileShape::kMedium, TileShape::kLarge,
      TileShape::kTall,  TileShape::kWide,   TileShape::kHuge};
  return shapes;
}

const std::vector<TilingStrategy>& single_gemm_strategies() {
  static const std::vector<TilingStrategy> table = make_table1();
  return table;
}

const TilingStrategy& single_gemm_strategy(TileShape shape) {
  return single_gemm_strategies()[static_cast<std::size_t>(shape)];
}

const std::vector<TilingStrategy>& batched_strategies() {
  static const std::vector<TilingStrategy> table = make_table2();
  return table;
}

const TilingStrategy& batched_strategy(TileShape shape,
                                       ThreadVariant variant) {
  const int id = static_cast<int>(shape) * 2 +
                 (variant == ThreadVariant::k256 ? 1 : 0);
  return batched_strategy_by_id(id);
}

const TilingStrategy& batched_strategy_by_id(int id) {
  const auto& table = batched_strategies();
  CTB_CHECK_MSG(id >= 0 && id < static_cast<int>(table.size()),
                "strategy id out of range: " << id);
  return table[static_cast<std::size_t>(id)];
}

}  // namespace ctb
