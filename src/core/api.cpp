#include "core/api.hpp"

#include <algorithm>
#include <string>

#include "core/rf_policy.hpp"
#include "kernels/work_builder.hpp"
#include "telemetry/telemetry.hpp"
#include "telemetry/trace.hpp"
#include "util/assert.hpp"
#include "util/log.hpp"

namespace ctb {

const char* to_string(BatchingPolicy policy) {
  switch (policy) {
    case BatchingPolicy::kThresholdOnly:
      return "threshold-only";
    case BatchingPolicy::kBinaryOnly:
      return "binary-only";
    case BatchingPolicy::kAutoOffline:
      return "auto-offline";
    case BatchingPolicy::kRandomForest:
      return "random-forest";
    case BatchingPolicy::kTilingOnly:
      return "tiling-only";
  }
  return "?";
}

const char* to_string(SplitKMode mode) {
  switch (mode) {
    case SplitKMode::kAuto:
      return "auto";
    case SplitKMode::kOff:
      return "off";
    case SplitKMode::kForce:
      return "force";
  }
  return "?";
}

long long default_tlp_threshold(const GpuArch& arch) {
  // 0.4 * thread capacity; equals the paper's 65536 on the V100 preset
  // (0.4 * 80 SMs * 2048 threads).
  return static_cast<long long>(0.4 * arch.sm_count *
                                arch.max_threads_per_sm);
}

int default_theta(const GpuArch& arch) {
  (void)arch;  // 256 worked across every architecture the paper evaluated
  return 256;
}

PlannerConfig degraded_fallback_config(const PlannerConfig& config) {
  PlannerConfig fallback = config;
  fallback.policy = BatchingPolicy::kThresholdOnly;
  fallback.forest = nullptr;
  // Split-K candidates need a simulator sweep per slice count — exactly the
  // kind of work a deadline-bounded fallback cannot afford.
  fallback.splitk = SplitKMode::kOff;
  return fallback;
}

BatchedGemmPlanner::BatchedGemmPlanner(PlannerConfig config)
    : config_(config), arch_(gpu_arch(config.gpu)) {
  if (config_.tlp_threshold <= 0)
    config_.tlp_threshold = default_tlp_threshold(arch_);
  if (config_.theta <= 0) config_.theta = default_theta(arch_);
  if (config_.policy == BatchingPolicy::kRandomForest)
    CTB_CHECK_MSG(config_.forest != nullptr && config_.forest->trained(),
                  "random-forest policy requires a trained forest");
}

PlanSummary BatchedGemmPlanner::plan(std::span<const GemmDims> dims) const {
  CTB_CHECK_MSG(!dims.empty(), "empty batch");
  CTB_TEL_SPAN("plan.total");
  if (telemetry::enabled()) {
    // Dynamic name, so no site cache — planning is never the hot path.
    const std::string name =
        std::string("plan.policy.") + to_string(config_.policy);
    telemetry::counter(name.c_str()).add(1);
  }
  PlanSummary summary;

  TilingConfig tiling_config;
  tiling_config.tlp_threshold = config_.tlp_threshold;
  summary.tiling = select_tiling(dims, tiling_config);

  const std::vector<Tile> tiles =
      enumerate_tiles(dims, summary.tiling.per_gemm);
  const int threads = static_cast<int>(summary.tiling.variant);

  BatchingConfig batching_config;
  batching_config.theta = config_.theta;
  batching_config.tlp_threshold = config_.tlp_threshold;

  switch (config_.policy) {
    case BatchingPolicy::kTilingOnly:
      summary.heuristic = BatchingHeuristic::kNone;
      break;
    case BatchingPolicy::kThresholdOnly:
      summary.heuristic = BatchingHeuristic::kThreshold;
      break;
    case BatchingPolicy::kBinaryOnly:
      summary.heuristic = BatchingHeuristic::kBinary;
      break;
    case BatchingPolicy::kRandomForest:
      summary.heuristic = rf_choose(*config_.forest, dims);
      break;
    case BatchingPolicy::kAutoOffline: {
      // Fixed-shape workloads (e.g. DNN training steps) can afford to try
      // both heuristics once and keep the winner (paper Section 5).
      CTB_TEL_SPAN("plan.auto_offline");
      const BatchPlan thr =
          batch_threshold(tiles, threads, batching_config);
      const BatchPlan bin = batch_binary(tiles, threads, batching_config);
      const double t_thr =
          time_plan(arch_, thr, dims).time_us;
      const double t_bin = time_plan(arch_, bin, dims).time_us;
      summary.heuristic = t_thr <= t_bin ? BatchingHeuristic::kThreshold
                                         : BatchingHeuristic::kBinary;
      if (t_thr <= t_bin)
        CTB_TEL_COUNT("plan.auto.threshold_wins", 1);
      else
        CTB_TEL_COUNT("plan.auto.binary_wins", 1);
      summary.plan = t_thr <= t_bin ? thr : bin;
      CTB_DEBUG("auto-offline: threshold=" << t_thr << "us binary=" << t_bin
                                           << "us -> "
                                           << to_string(summary.heuristic));
      consider_splitk(summary, tiles, threads, batching_config, dims);
      CTB_TEL_FLIGHT(kPlanDecision, to_string(summary.heuristic),
                     summary.plan.num_blocks(), summary.plan.num_tiles());
      return summary;
    }
  }
  summary.plan = batch_tiles(summary.heuristic, tiles, threads,
                             batching_config);
  consider_splitk(summary, tiles, threads, batching_config, dims);
  CTB_TEL_FLIGHT(kPlanDecision, to_string(summary.heuristic),
                 summary.plan.num_blocks(), summary.plan.num_tiles());
  return summary;
}

PlanSummary BatchedGemmPlanner::plan(std::span<const GemmDims> dims,
                                     std::span<const int> epilogues) const {
  // Normalize so "no chain anywhere" plans identically to the plain form.
  bool any_epilogue = false;
  for (int e : epilogues) any_epilogue = any_epilogue || e != 0;
  if (!any_epilogue) epilogues = {};
  CTB_CHECK_MSG(epilogues.empty() || epilogues.size() == dims.size(),
                "epilogue stream holds " << epilogues.size()
                                         << " entries for " << dims.size()
                                         << " GEMMs");
  for (std::size_t i = 0; i < epilogues.size(); ++i)
    CTB_CHECK_MSG(epilogue_packed_valid(epilogues[i]),
                  "GEMM " << i << " has malformed epilogue spec "
                          << epilogues[i]);
  PlanSummary summary = plan(dims);
  if (!epilogues.empty())
    summary.plan.epilogue_of_gemm.assign(epilogues.begin(), epilogues.end());
  return summary;
}

void BatchedGemmPlanner::consider_splitk(
    PlanSummary& summary, std::span<const Tile> tiles, int threads,
    const BatchingConfig& batching_config,
    std::span<const GemmDims> dims) const {
  if (config_.splitk == SplitKMode::kOff || config_.max_splitk < 2) return;
  // TLP-scarcity trigger: a plan already launching at least half the TLP
  // threshold's worth of threads fills the machine, so extra split-K blocks
  // would only add fix-up reduction traffic. Mirrors the batching engine's
  // own "merge only while TLP exceeds half the threshold" guard.
  const long long launched =
      static_cast<long long>(summary.plan.num_blocks()) *
      summary.plan.block_threads;
  if (config_.splitk == SplitKMode::kAuto &&
      launched >= config_.tlp_threshold / 2)
    return;
  CTB_TEL_SPAN("plan.splitk.consider");
  const double unsplit_us =
      time_plan(arch_, summary.plan, dims, config_.precision).time_us;
  BatchPlan best_split;
  double best_split_us = 0.0;
  std::size_t last_size = tiles.size();
  for (int slices = 2; slices <= config_.max_splitk; slices *= 2) {
    const std::vector<Tile> split = split_tiles_k(tiles, slices);
    // Sizes stop growing once every tile is down to one BK step per slice;
    // nothing new to evaluate past that point.
    if (split.size() == last_size) break;
    last_size = split.size();
    BatchPlan candidate =
        batch_tiles(summary.heuristic, split, threads, batching_config);
    CTB_TEL_COUNT("plan.splitk.considered", 1);
    const double t =
        time_plan(arch_, candidate, dims, config_.precision).time_us;
    if (best_split.num_tiles() == 0 || t < best_split_us) {
      best_split = std::move(candidate);
      best_split_us = t;
    }
  }
  if (best_split.num_tiles() == 0) return;  // K loops too short to split
  if (config_.splitk != SplitKMode::kForce && best_split_us >= unsplit_us) {
    CTB_TEL_FLIGHT(kSplitK, "rejected", best_split.num_tiles(),
                   summary.plan.num_tiles());
    return;
  }
  CTB_TEL_COUNT("plan.splitk.chosen", 1);
  CTB_TEL_FLIGHT(kSplitK, "chosen", best_split.num_tiles(),
                 summary.plan.num_tiles());
  CTB_DEBUG("split-K: unsplit=" << unsplit_us << "us split=" << best_split_us
                                << "us (" << best_split.num_tiles()
                                << " tiles) -> split");
  summary.plan = std::move(best_split);
}

TimedResult time_plan(const GpuArch& arch, const BatchPlan& plan,
                      std::span<const GemmDims> dims, Precision precision) {
  TimedResult result;
  const KernelWork work = work_from_plan(plan, dims, precision);
  result.sim = simulate_kernel(arch, work);
  result.time_us = result.sim.makespan_us + arch.kernel_launch_us;
  return result;
}

void execute_plan(const BatchPlan& plan, std::span<const GemmOperands> batch,
                  float alpha, float beta) {
  run_batched_plan(plan, batch, alpha, beta);
}

ExecutionReport try_execute_plan(const BatchPlan& plan,
                                 std::span<const GemmOperands> batch,
                                 float alpha, float beta) {
  // Operand problems throw through: with no trustworthy buffers there is
  // nothing correct to fall back to.
  audit_operands(batch);
  ExecutionReport report;
  try {
    std::vector<GemmDims> dims(batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) dims[i] = batch[i].dims;
    validate_plan(plan, dims);
  } catch (const CheckError& e) {
    report.fell_back = true;
    report.reason = e.what();
    CTB_WARN("plan rejected, degrading to reference GEMM: " << e.what());
    CTB_TEL_COUNT("exec.fallback", 1);
    CTB_TEL_FLIGHT(kGuardReject, "validate_plan",
                   static_cast<std::int64_t>(batch.size()), 0);
    CTB_TEL_FLIGHT(kFallback, "reference_gemm",
                   static_cast<std::int64_t>(batch.size()), 0);
    telemetry::flight_autodump("guard_reject");
    CTB_TEL_SPAN("exec.reference_fallback");
    for (const GemmOperands& g : batch) reference_gemm(g, alpha, beta);
    return report;
  }
  run_batched_plan(plan, batch, alpha, beta);
  return report;
}

BatchedGemmResult batched_gemm(std::span<const Matrixf* const> a,
                               std::span<const Matrixf* const> b,
                               std::span<Matrixf* const> c, float alpha,
                               float beta, const PlannerConfig& config) {
  CTB_CHECK_MSG(a.size() == b.size() && b.size() == c.size(),
                "operand array sizes differ");
  std::vector<GemmEntry> entries(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    entries[i].a = a[i];
    entries[i].b = b[i];
    entries[i].c = c[i];
  }
  return batched_gemm(entries, alpha, beta, config);
}

BatchedGemmResult batched_gemm(std::span<const GemmEntry> entries,
                               float alpha, float beta,
                               const PlannerConfig& config) {
  CTB_CHECK_MSG(!entries.empty(), "empty batch");

  std::vector<GemmDims> dims(entries.size());
  std::vector<GemmOperands> ops(entries.size());
  std::vector<int> epilogues(entries.size(), 0);
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const GemmEntry& e = entries[i];
    CTB_CHECK_MSG(e.a != nullptr && e.b != nullptr && e.c != nullptr,
                  "GEMM " << i << " has a null operand matrix");
    ops[i] = operands(*e.a, *e.b, *e.c, e.op_a, e.op_b);
    ops[i].precision = config.precision;
    ops[i].epilogue = e.epilogue;
    ops[i].epilogue_args = e.epilogue_args;
    epilogues[i] = e.epilogue;
    dims[i] = ops[i].dims;
    CTB_CHECK_MSG(dims[i].valid(), "GEMM " << i << " has degenerate dims "
                                           << dims[i].m << 'x' << dims[i].n
                                           << 'x' << dims[i].k);
  }

  const BatchedGemmPlanner planner(config);
  BatchedGemmResult result;
  result.summary = planner.plan(dims, epilogues);
  if (config.fallback_to_reference) {
    result.execution =
        try_execute_plan(result.summary.plan, ops, alpha, beta);
    if (result.execution.fell_back) return result;
  } else {
    execute_plan(result.summary.plan, ops, alpha, beta);
  }
  result.timing = time_plan(planner.arch(), result.summary.plan, dims,
                            config.precision);
  return result;
}

}  // namespace ctb
