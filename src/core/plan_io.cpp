#include "core/plan_io.hpp"

#include <istream>
#include <limits>
#include <ostream>
#include <string>
#include <utility>

#include "telemetry/telemetry.hpp"
#include "telemetry/trace.hpp"
#include "util/assert.hpp"

namespace ctb {

namespace {
// v1 carries the five aux arrays of Fig. 6; v2 appends the split-K K-range
// pair; v3 appends the per-GEMM epilogue array (and always carries the
// K-range pair, possibly empty, so the array order is fixed). Plans without
// the optional arrays are still written in the oldest format that can
// express them, so their serialized form is byte-identical to every
// earlier release.
constexpr const char* kMagicV1 = "ctb-batchplan-v1";
constexpr const char* kMagicV2 = "ctb-batchplan-v2";
constexpr const char* kMagicV3 = "ctb-batchplan-v3";
constexpr const char* kMagicPrefix = "ctb-batchplan-";
// Cap on declared element counts, applied before any allocation: a plan
// with 2^26 tiles would be hundreds of MiB of text, far beyond any real
// batch, so larger declarations are adversarial by construction.
constexpr long long kMaxPlanElems = 1LL << 26;

long long read_int64(std::istream& is, const std::string& where,
                     long long lo, long long hi) {
  long long v = 0;
  if (!(is >> v)) throw PlanIoError("expected an integer", where);
  if (v < lo || v > hi)
    throw PlanIoError("value " + std::to_string(v) + " outside [" +
                          std::to_string(lo) + ", " + std::to_string(hi) +
                          "]",
                      where);
  return v;
}

void write_array(std::ostream& os, const char* name,
                 const std::vector<int>& v) {
  os << name << ' ' << v.size();
  for (int x : v) os << ' ' << x;
  os << '\n';
}

std::vector<int> read_array(std::istream& is, const char* name) {
  std::string tag;
  if (!(is >> tag) || tag != name)
    throw PlanIoError("expected array '" + std::string(name) + "'",
                      tag.empty() ? std::string("array header")
                                  : "array header '" + tag + "'");
  const long long count =
      read_int64(is, std::string(name) + " count", 0, kMaxPlanElems);
  std::vector<int> v(static_cast<std::size_t>(count));
  for (long long i = 0; i < count; ++i) {
    v[static_cast<std::size_t>(i)] = static_cast<int>(read_int64(
        is, std::string(name) + "[" + std::to_string(i) + "]",
        std::numeric_limits<int>::min(), std::numeric_limits<int>::max()));
  }
  return v;
}
}  // namespace

void save_plan(std::ostream& os, const BatchPlan& plan) {
  const char* magic = plan.has_epilogue() ? kMagicV3
                      : plan.has_split()  ? kMagicV2
                                          : kMagicV1;
  os << magic << '\n';
  os << plan.block_threads << ' ' << plan.smem_bytes << ' '
     << plan.regs_per_thread << '\n';
  write_array(os, "tile", plan.tile_offsets);
  write_array(os, "gemm", plan.gemm_of_tile);
  write_array(os, "strategy", plan.strategy_of_tile);
  write_array(os, "y", plan.y_coord);
  write_array(os, "x", plan.x_coord);
  if (plan.has_split() || plan.has_epilogue()) {
    write_array(os, "kbegin", plan.k_begin);
    write_array(os, "kend", plan.k_end);
  }
  if (plan.has_epilogue()) write_array(os, "epilogue", plan.epilogue_of_gemm);
}

BatchPlan load_plan(std::istream& is) {
  std::string magic;
  if (!(is >> magic)) throw PlanIoError("empty stream", "header");
  if (magic != kMagicV1 && magic != kMagicV2 && magic != kMagicV3) {
    if (magic.rfind(kMagicPrefix, 0) == 0)
      throw PlanIoError("unsupported plan version '" + magic + "'",
                        "header");
    throw PlanIoError("not a ctb plan stream", "header");
  }
  BatchPlan plan;
  plan.block_threads =
      static_cast<int>(read_int64(is, "block_threads", 1, 4096));
  plan.smem_bytes =
      static_cast<int>(read_int64(is, "smem_bytes", 0, 1LL << 26));
  plan.regs_per_thread =
      static_cast<int>(read_int64(is, "regs_per_thread", 0, 4096));
  plan.tile_offsets = read_array(is, "tile");
  plan.gemm_of_tile = read_array(is, "gemm");
  plan.strategy_of_tile = read_array(is, "strategy");
  plan.y_coord = read_array(is, "y");
  plan.x_coord = read_array(is, "x");
  if (magic == kMagicV2 || magic == kMagicV3) {
    plan.k_begin = read_array(is, "kbegin");
    plan.k_end = read_array(is, "kend");
    if (magic == kMagicV2 && plan.k_begin.empty())
      throw PlanIoError("v2 plan without K ranges", "kbegin");
  }
  if (magic == kMagicV3) {
    plan.epilogue_of_gemm = read_array(is, "epilogue");
    if (plan.epilogue_of_gemm.empty())
      throw PlanIoError("v3 plan without epilogues", "epilogue");
  }
  std::string rest;
  if (is >> rest)
    throw PlanIoError("trailing garbage '" + rest + "'", "end of stream");
  try {
    validate_plan_structure(plan);
  } catch (const CheckError& e) {
    throw PlanIoError(e.what(), "structural validation");
  }
  return plan;
}

std::uint64_t batch_signature(std::span<const GemmDims> dims,
                              const PlannerConfig& config) {
  return batch_signature(dims, config, {});
}

std::uint64_t batch_signature(std::span<const GemmDims> dims,
                              const PlannerConfig& config,
                              std::span<const int> epilogues) {
  // FNV-1a over the shape stream plus the planning knobs.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 0x100000001b3ULL;
  };
  mix(static_cast<std::uint64_t>(config.gpu));
  mix(static_cast<std::uint64_t>(config.policy));
  mix(static_cast<std::uint64_t>(config.tlp_threshold));
  mix(static_cast<std::uint64_t>(config.theta));
  mix(static_cast<std::uint64_t>(config.splitk));
  mix(static_cast<std::uint64_t>(config.max_splitk));
  for (const auto& d : dims) {
    mix(static_cast<std::uint64_t>(d.m));
    mix(static_cast<std::uint64_t>(d.n));
    mix(static_cast<std::uint64_t>(d.k));
  }
  // Epilogue chains change what the plan executes, so they are part of the
  // reuse key. An all-zero stream IS the plain batch and must hash like one
  // (every entry point normalizes the same way); for a real chain the count
  // is mixed first so an empty epilogue stream stays distinguishable from
  // shapes that happen to collide with spec values.
  bool any_epilogue = false;
  for (int e : epilogues) any_epilogue = any_epilogue || e != 0;
  if (any_epilogue) {
    mix(static_cast<std::uint64_t>(epilogues.size()));
    for (int e : epilogues) mix(static_cast<std::uint64_t>(e));
  }
  return h;
}

PlanCache::PlanCache(PlannerConfig config) : planner_(config) {}

PlanCache::PlanCache(PlannerConfig config, PlannerFn planner_fn)
    : planner_(config), planner_fn_(std::move(planner_fn)) {}

void PlanCache::clear() {
  CTB_TEL_COUNT("cache.evict", cache_.size());
  cache_.clear();
}

const PlanSummary& PlanCache::plan(std::span<const GemmDims> dims) {
  return plan(dims, {});
}

const PlanSummary& PlanCache::plan(std::span<const GemmDims> dims,
                                   std::span<const int> epilogues) {
  CTB_CHECK_MSG(!dims.empty(), "cannot plan an empty batch");
  for (std::size_t i = 0; i < dims.size(); ++i)
    CTB_CHECK_MSG(dims[i].valid(), "GEMM " << i << " has degenerate dims "
                                           << dims[i].m << 'x' << dims[i].n
                                           << 'x' << dims[i].k);
  // Normalize: an all-zero epilogue stream plans (and caches, and hashes)
  // exactly like no epilogues at all.
  bool any_epilogue = false;
  for (int e : epilogues) any_epilogue = any_epilogue || e != 0;
  if (!any_epilogue) epilogues = {};
  CTB_CHECK_MSG(epilogues.empty() || epilogues.size() == dims.size(),
                "epilogue stream holds " << epilogues.size()
                                         << " entries for " << dims.size()
                                         << " GEMMs");
  for (std::size_t i = 0; i < epilogues.size(); ++i)
    CTB_CHECK_MSG(epilogue_packed_valid(epilogues[i]),
                  "GEMM " << i << " has malformed epilogue spec "
                          << epilogues[i]);
  const std::uint64_t key =
      batch_signature(dims, planner_.config(), epilogues);
  auto it = cache_.find(key);
  if (it != cache_.end()) {
    ++hits_;
    CTB_TEL_COUNT("cache.hit", 1);
    CTB_TEL_FLIGHT(kCacheHit, "plan", static_cast<std::int64_t>(key),
                   static_cast<std::int64_t>(dims.size()));
    return *it->second;
  }
  // Plan and validate completely before touching the cache or the counters:
  // a planner that throws (or emits a plan that fails validation) must not
  // leave a poisoned entry behind, so the same batch can be retried.
  CTB_TEL_SPAN("cache.plan_miss");
  PlanSummary summary =
      planner_fn_ ? planner_fn_(dims) : planner_.plan(dims);
  // Epilogues ride along as a per-GEMM aux array: batching and split-K
  // decisions are epilogue-independent, so an injected test planner's
  // result gains them the same way the real planner's does.
  if (!epilogues.empty())
    summary.plan.epilogue_of_gemm.assign(epilogues.begin(), epilogues.end());
  validate_plan(summary.plan, dims);
  ++misses_;
  CTB_TEL_COUNT("cache.miss", 1);
  CTB_TEL_FLIGHT(kCacheMiss, "plan", static_cast<std::int64_t>(key),
                 static_cast<std::int64_t>(dims.size()));
  return *cache_
              .emplace(key,
                       std::make_shared<const PlanSummary>(std::move(summary)))
              .first->second;
}

std::shared_ptr<const PlanSummary> PlanCache::lookup(std::uint64_t signature) {
  auto it = cache_.find(signature);
  if (it == cache_.end()) {
    ++misses_;
    CTB_TEL_COUNT("cache.miss", 1);
    CTB_TEL_FLIGHT(kCacheMiss, "lookup",
                   static_cast<std::int64_t>(signature), 0);
    return nullptr;
  }
  ++hits_;
  CTB_TEL_COUNT("cache.hit", 1);
  CTB_TEL_FLIGHT(kCacheHit, "lookup", static_cast<std::int64_t>(signature),
                 0);
  return it->second;
}

std::shared_ptr<const PlanSummary> PlanCache::peek(
    std::uint64_t signature) const {
  auto it = cache_.find(signature);
  return it == cache_.end() ? nullptr : it->second;
}

std::shared_ptr<const PlanSummary> PlanCache::upsert(std::uint64_t signature,
                                                     PlanSummary summary) {
  auto stored = std::make_shared<const PlanSummary>(std::move(summary));
  cache_.insert_or_assign(signature, stored);
  return stored;
}

}  // namespace ctb
