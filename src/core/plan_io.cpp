#include "core/plan_io.hpp"

#include <istream>
#include <ostream>
#include <string>

#include "util/assert.hpp"

namespace ctb {

namespace {
constexpr const char* kMagic = "ctb-batchplan-v1";

void write_array(std::ostream& os, const char* name,
                 const std::vector<int>& v) {
  os << name << ' ' << v.size();
  for (int x : v) os << ' ' << x;
  os << '\n';
}

std::vector<int> read_array(std::istream& is, const char* name) {
  std::string tag;
  std::size_t count = 0;
  is >> tag >> count;
  CTB_CHECK_MSG(is.good() && tag == name,
                "malformed plan stream: expected array '" << name << "'");
  std::vector<int> v(count);
  for (int& x : v) is >> x;
  CTB_CHECK_MSG(!is.fail(), "malformed plan stream in array '" << name
                                                               << "'");
  return v;
}
}  // namespace

void save_plan(std::ostream& os, const BatchPlan& plan) {
  os << kMagic << '\n';
  os << plan.block_threads << ' ' << plan.smem_bytes << ' '
     << plan.regs_per_thread << '\n';
  write_array(os, "tile", plan.tile_offsets);
  write_array(os, "gemm", plan.gemm_of_tile);
  write_array(os, "strategy", plan.strategy_of_tile);
  write_array(os, "y", plan.y_coord);
  write_array(os, "x", plan.x_coord);
}

BatchPlan load_plan(std::istream& is) {
  std::string magic;
  is >> magic;
  CTB_CHECK_MSG(magic == kMagic, "not a ctb plan stream");
  BatchPlan plan;
  is >> plan.block_threads >> plan.smem_bytes >> plan.regs_per_thread;
  CTB_CHECK_MSG(is.good(), "malformed plan header");
  CTB_CHECK_MSG(plan.block_threads == 128 || plan.block_threads == 256,
                "plan block size must be 128 or 256");
  plan.tile_offsets = read_array(is, "tile");
  plan.gemm_of_tile = read_array(is, "gemm");
  plan.strategy_of_tile = read_array(is, "strategy");
  plan.y_coord = read_array(is, "y");
  plan.x_coord = read_array(is, "x");
  CTB_CHECK_MSG(!plan.tile_offsets.empty() && plan.tile_offsets.front() == 0,
                "malformed tile offsets");
  return plan;
}

std::uint64_t batch_signature(std::span<const GemmDims> dims,
                              const PlannerConfig& config) {
  // FNV-1a over the shape stream plus the planning knobs.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 0x100000001b3ULL;
  };
  mix(static_cast<std::uint64_t>(config.gpu));
  mix(static_cast<std::uint64_t>(config.policy));
  mix(static_cast<std::uint64_t>(config.tlp_threshold));
  mix(static_cast<std::uint64_t>(config.theta));
  for (const auto& d : dims) {
    mix(static_cast<std::uint64_t>(d.m));
    mix(static_cast<std::uint64_t>(d.n));
    mix(static_cast<std::uint64_t>(d.k));
  }
  return h;
}

PlanCache::PlanCache(PlannerConfig config) : planner_(config) {}

const PlanSummary& PlanCache::plan(std::span<const GemmDims> dims) {
  const std::uint64_t key = batch_signature(dims, planner_.config());
  auto it = cache_.find(key);
  if (it != cache_.end()) {
    ++hits_;
    return it->second;
  }
  ++misses_;
  return cache_.emplace(key, planner_.plan(dims)).first->second;
}

}  // namespace ctb
