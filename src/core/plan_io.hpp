// Plan persistence and reuse.
//
// The paper motivates the framework with workloads whose batch shapes are
// fixed across iterations (DNN training steps, repeated inference): planning
// once and reusing the plan removes the planner from the hot path entirely.
// This module provides (a) a portable text serialization of BatchPlan —
// the five aux arrays are plain data — and (b) an in-memory PlanCache keyed
// by the batch signature.
#pragma once

#include <iosfwd>
#include <optional>
#include <unordered_map>

#include "core/api.hpp"

namespace ctb {

/// Writes a plan as line-oriented text (versioned header + the aux arrays).
void save_plan(std::ostream& os, const BatchPlan& plan);

/// Reads a plan written by save_plan. Throws CheckError on malformed input.
/// The caller should validate_plan() against its batch before executing.
BatchPlan load_plan(std::istream& is);

/// Stable 64-bit signature of a batch + planning configuration; plans are
/// reusable exactly when the signature matches.
std::uint64_t batch_signature(std::span<const GemmDims> dims,
                              const PlannerConfig& config);

/// Memoizes planner decisions for repeated batch shapes. Not thread-safe;
/// use one cache per planning thread.
class PlanCache {
 public:
  explicit PlanCache(PlannerConfig config = {});

  /// Returns the cached plan for this batch or plans and caches it.
  const PlanSummary& plan(std::span<const GemmDims> dims);

  /// Cache statistics.
  std::size_t size() const { return cache_.size(); }
  std::int64_t hits() const { return hits_; }
  std::int64_t misses() const { return misses_; }

  void clear() { cache_.clear(); }

 private:
  BatchedGemmPlanner planner_;
  std::unordered_map<std::uint64_t, PlanSummary> cache_;
  std::int64_t hits_ = 0;
  std::int64_t misses_ = 0;
};

}  // namespace ctb
