// Plan persistence and reuse.
//
// The paper motivates the framework with workloads whose batch shapes are
// fixed across iterations (DNN training steps, repeated inference): planning
// once and reusing the plan removes the planner from the hot path entirely.
// This module provides (a) a portable text serialization of BatchPlan —
// the five aux arrays are plain data — and (b) an in-memory PlanCache keyed
// by the batch signature.
#pragma once

#include <functional>
#include <iosfwd>
#include <memory>
#include <optional>
#include <unordered_map>

#include "core/api.hpp"
#include "util/assert.hpp"

namespace ctb {

/// Error thrown by load_plan on malformed or adversarial input. Extends
/// CheckError with a `where()` locator (header field, array name, element
/// index) so callers can report exactly which part of the stream is bad.
class PlanIoError : public CheckError {
 public:
  PlanIoError(const std::string& what, const std::string& where)
      : CheckError("plan load failed at " + where + ": " + what),
        where_(where) {}

  const std::string& where() const { return where_; }

 private:
  std::string where_;
};

/// Writes a plan as line-oriented text (versioned header + the aux arrays).
void save_plan(std::ostream& os, const BatchPlan& plan);

/// Reads a plan written by save_plan. Hardened against adversarial input:
/// enforces the versioned header (unknown versions are rejected, not
/// guessed at), caps declared element counts before allocating, rejects
/// integers that overflow or fall outside each field's legal range, rejects
/// trailing garbage after the last array, and finishes with
/// validate_plan_structure. Throws PlanIoError (a CheckError) carrying
/// what/where context. The caller should still validate_plan() against its
/// batch before executing — dims-dependent checks need the dims.
BatchPlan load_plan(std::istream& is);

/// Stable 64-bit signature of a batch + planning configuration; plans are
/// reusable exactly when the signature matches.
std::uint64_t batch_signature(std::span<const GemmDims> dims,
                              const PlannerConfig& config);

/// Signature of a batch with per-GEMM fused-epilogue specs (parallel to
/// `dims`; an empty span means none and hashes identically to the two-arg
/// form). Epilogues are execution semantics, so they are part of the key.
std::uint64_t batch_signature(std::span<const GemmDims> dims,
                              const PlannerConfig& config,
                              std::span<const int> epilogues);

/// Memoizes planner decisions for repeated batch shapes. Not thread-safe;
/// use one cache per planning thread (ctb::service::PlanService wraps one
/// cache per shard behind a mutex for concurrent serving). Entries are held
/// through shared_ptr so a plan handed out stays alive even after upsert()
/// replaces or clear() drops its cache slot.
class PlanCache {
 public:
  explicit PlanCache(PlannerConfig config = {});

  /// Tests inject a planner to exercise failure paths (e.g. a planner that
  /// throws once, or returns a corrupt plan) without a real planning bug.
  using PlannerFn = std::function<PlanSummary(std::span<const GemmDims>)>;
  PlanCache(PlannerConfig config, PlannerFn planner_fn);

  /// Returns the cached plan for this batch or plans and caches it. Strong
  /// exception guarantee: if planning throws (or produces a plan that fails
  /// validation) nothing is cached and no statistics change, so retrying the
  /// same batch after a transient failure behaves as a fresh miss.
  const PlanSummary& plan(std::span<const GemmDims> dims);

  /// Like plan(dims) but the returned plan carries per-GEMM fused-epilogue
  /// specs (parallel to `dims`; all-zero or empty means none). Epilogues
  /// are part of the cache key, so the same shapes with different chains
  /// are distinct entries.
  const PlanSummary& plan(std::span<const GemmDims> dims,
                          std::span<const int> epilogues);

  /// Lookup by precomputed signature, counting a hit or a miss (stats and
  /// cache.hit/cache.miss telemetry); nullptr on miss. The service layer
  /// uses this to probe without planning.
  std::shared_ptr<const PlanSummary> lookup(std::uint64_t signature);

  /// Like lookup but free of side effects — no statistics, no telemetry.
  /// For internal presence checks that must not distort serving metrics.
  std::shared_ptr<const PlanSummary> peek(std::uint64_t signature) const;

  /// Inserts or replaces the entry for `signature` and returns the stored
  /// pointer. Does NOT validate (callers hold already-validated summaries)
  /// and counts neither hits nor misses; a replaced entry stays alive for
  /// anyone still executing it. This is the service's upgrade primitive.
  std::shared_ptr<const PlanSummary> upsert(std::uint64_t signature,
                                            PlanSummary summary);

  /// Cache statistics.
  std::size_t size() const { return cache_.size(); }
  std::int64_t hits() const { return hits_; }
  std::int64_t misses() const { return misses_; }

  /// Drops every cached plan (counted as evictions in telemetry).
  void clear();

 private:
  BatchedGemmPlanner planner_;
  PlannerFn planner_fn_;
  std::unordered_map<std::uint64_t, std::shared_ptr<const PlanSummary>>
      cache_;
  std::int64_t hits_ = 0;
  std::int64_t misses_ = 0;
};

}  // namespace ctb
