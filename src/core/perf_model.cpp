#include "core/perf_model.hpp"

#include "util/assert.hpp"

namespace ctb {

namespace {
// A 16-byte vector load moves 4 floats (paper: Load_width = 16/sizeof(float)).
constexpr double kLoadWidth = 4.0;
}  // namespace

long long gemm_tlp(const GemmDims& dims, const TilingStrategy& strategy) {
  CTB_CHECK(dims.valid());
  return strategy.tiles_for(dims.m, dims.n) * strategy.threads;
}

long long batch_tlp(std::span<const GemmDims> dims,
                    std::span<const TilingStrategy* const> strategies) {
  CTB_CHECK_MSG(dims.size() == strategies.size(),
                "one strategy per GEMM required");
  long long total = 0;
  for (std::size_t i = 0; i < dims.size(); ++i) {
    CTB_CHECK(strategies[i] != nullptr);
    total += gemm_tlp(dims[i], *strategies[i]);
  }
  return total;
}

double num_load_per_thread(const TilingStrategy& s) {
  return static_cast<double>(s.by * s.bk + s.bk * s.bx) /
         (kLoadWidth * s.threads);
}

double num_fma_per_thread(const TilingStrategy& s) {
  return static_cast<double>(s.by) * s.bx * s.bk / s.threads;
}

double arithmetic_intensity(const TilingStrategy& s) {
  // num_fma / num_load simplifies to 4*BY*BX/(BY+BX) — independent of BK
  // and of the thread count (both cancel), exactly Equation 4.
  return num_fma_per_thread(s) / num_load_per_thread(s);
}

}  // namespace ctb
