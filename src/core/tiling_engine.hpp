// Tiling engine (paper Section 4.2.3).
//
// Selects one Table-2 strategy per GEMM of a batch. The algorithm gives
// priority to TLP, then trades it for ILP:
//
//   1. Build, per GEMM, a priority queue of feasible strategies (BY <= M and
//      BX <= N; `small` is always feasible so every GEMM has a candidate),
//      smallest first. Start with the 256-thread variants.
//   2. Pop one strategy per queue (a queue down to its last element is
//      "topped", not popped) and evaluate the batch TLP (Eq. 1).
//   3. TLP above the architecture threshold means parallelism to spare:
//      repeat step 2 with larger tiles. Otherwise accept the current
//      selection.
//   Exception: when every queue is exhausted while TLP is still above the
//   threshold, restart with the 128-thread variants (fewer threads per tile,
//   deeper per-thread sub-tiles, i.e. more ILP headroom).
#pragma once

#include <span>
#include <vector>

#include "core/perf_model.hpp"
#include "core/tiling_strategy.hpp"
#include "linalg/gemm_ref.hpp"

namespace ctb {

struct TilingConfig {
  /// Architecture-dependent TLP threshold; 65536 on V100 (paper Section 7).
  long long tlp_threshold = 65536;
};

struct TilingResult {
  /// One Table-2 strategy per GEMM, parallel to the input batch.
  std::vector<const TilingStrategy*> per_gemm;
  /// Thread variant shared by every selected strategy (unified structure).
  ThreadVariant variant = ThreadVariant::k256;
  /// Batch TLP of the accepted selection (Eq. 1).
  long long tlp = 0;
  /// Number of step-2 evaluations performed (diagnostic).
  int iterations = 0;
};

/// Runs the selection algorithm. Requires a non-empty batch of valid dims.
TilingResult select_tiling(std::span<const GemmDims> dims,
                           const TilingConfig& config = {});

/// Feasible Table-2 strategies for a single GEMM under `variant`, smallest
/// first. `small` is always included even when M or N is below 16 so every
/// GEMM has at least one candidate.
std::vector<const TilingStrategy*> feasible_strategies(const GemmDims& dims,
                                                       ThreadVariant variant);

/// The tiling strategy MAGMA-style vbatch uses: a single uniform Table-1
/// strategy for the whole batch, chosen with the single-GEMM mindset of
/// maximizing data reuse for the largest GEMM — ignoring how many GEMMs are
/// batched (the coordination gap the paper's Fig. 8 measures).
const TilingStrategy& magma_uniform_strategy(std::span<const GemmDims> dims);

}  // namespace ctb
