// Tiling strategies (paper Tables 1 and 2).
//
// A tiling strategy fixes the C-tile a thread block computes (BY x BX), the
// K-step of the main loop (BK), the number of threads, and the per-thread
// sub-tile. Table 1 is the classic single-GEMM suite where every strategy
// carries its own natural thread count; Table 2 is the paper's batched suite
// with the *unified thread structure*: every strategy exists in a 128-thread
// and a 256-thread version so heterogeneous tiles can share one CUDA block
// size without idling threads.
#pragma once

#include <array>
#include <string>
#include <vector>

namespace ctb {

/// The six tile shapes, ordered from smallest to largest (priority order of
/// the tiling algorithm's queues).
enum class TileShape : int {
  kSmall = 0,   // 16 x 16
  kMedium = 1,  // 32 x 32
  kLarge = 2,   // 64 x 64
  kTall = 3,    // 128 x 64
  kWide = 4,    // 64 x 128
  kHuge = 5,    // 128 x 128
};

/// Thread-count variant of the batched suite (Table 2 columns).
enum class ThreadVariant : int { k128 = 128, k256 = 256 };

struct TilingStrategy {
  TileShape shape = TileShape::kSmall;
  int by = 16;       ///< C-tile rows.
  int bx = 16;       ///< C-tile cols.
  int bk = 8;        ///< K-step per main-loop iteration.
  int threads = 32;  ///< block size.
  int sub_y = 4;     ///< per-thread sub-tile rows.
  int sub_x = 2;     ///< per-thread sub-tile cols.
  int id = -1;       ///< 0..11 encoding used in the aux arrays (Table 2 only).

  /// Shared memory for double-buffered A and B tiles, in bytes.
  int smem_bytes() const { return 2 * (by * bk + bk * bx) * 4; }

  /// Register estimate per thread: C accumulators + double-buffered A/B
  /// fragments + addressing/bookkeeping registers.
  int regs_per_thread() const {
    const int r = sub_y * sub_x + 2 * (sub_y + sub_x) + 24;
    return r > 255 ? 255 : r;
  }

  /// Tiles needed to cover an m x n C matrix.
  long long tiles_for(int m, int n) const {
    const long long ty = (m + by - 1) / by;
    const long long tx = (n + bx - 1) / bx;
    return ty * tx;
  }

  /// FMAs per thread per main-loop iteration.
  int fmas_per_thread_iter() const { return sub_y * sub_x * bk; }

  std::string name() const;
};

/// Human-readable shape name ("small", ..., "huge").
const char* to_string(TileShape shape);

/// All six shapes in priority order (small first).
const std::array<TileShape, 6>& all_tile_shapes();

/// Table 1: single-GEMM suite (ids are -1; these never appear in plans).
const std::vector<TilingStrategy>& single_gemm_strategies();

/// Table 1 lookup by shape.
const TilingStrategy& single_gemm_strategy(TileShape shape);

/// Table 2: batched suite. Strategy ids are shape*2 + (variant==256 ? 1 : 0),
/// giving the paper's 0..11 range.
const TilingStrategy& batched_strategy(TileShape shape, ThreadVariant variant);

/// Table 2 lookup by aux-array id (0..11). Throws on out-of-range ids.
const TilingStrategy& batched_strategy_by_id(int id);

/// All 12 batched strategies, id order.
const std::vector<TilingStrategy>& batched_strategies();

}  // namespace ctb
