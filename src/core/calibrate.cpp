#include "core/calibrate.hpp"

#include <algorithm>

#include "core/api.hpp"
#include "core/batching_engine.hpp"
#include "kernels/work_builder.hpp"
#include "util/assert.hpp"

namespace ctb {

TlpCalibration calibrate_tlp_threshold(const GpuArch& arch,
                                       const CalibrationConfig& config) {
  CTB_CHECK(config.batch >= 1 && config.knee_fraction > 0.0 &&
            config.knee_fraction < 1.0);
  TlpCalibration result;

  // The paper's procedure: fix the kernel (one strategy, so arithmetic
  // intensity stays constant) and decrease the TLP iteratively by shrinking
  // the workload. Throughput plateaus while the GPU is full and collapses
  // once it is not; the knee is the threshold.
  const TilingStrategy& s =
      batched_strategy(TileShape::kLarge, ThreadVariant::k256);
  for (int batch = 1; batch <= config.batch * 8; batch *= 2) {
    const std::vector<GemmDims> dims(
        static_cast<std::size_t>(batch),
        GemmDims{config.gemm_mn, config.gemm_mn, config.gemm_k});
    std::vector<const TilingStrategy*> per_gemm(dims.size(), &s);
    const auto tiles = enumerate_tiles(dims, per_gemm);
    const BatchPlan plan = batch_none(tiles, s.threads);
    const KernelWork work = work_from_plan(plan, dims);
    const SimStats stats = simulate_kernel(arch, work);
    result.curve.push_back(CalibrationPoint{batch_tlp(dims, per_gemm),
                                            stats.achieved_gflops});
  }
  std::sort(result.curve.begin(), result.curve.end(),
            [](const CalibrationPoint& a, const CalibrationPoint& b) {
              return a.tlp < b.tlp;
            });
  CTB_CHECK_MSG(result.curve.size() >= 4, "calibration needs more probes");

  // Plateau throughput: mean of the top quartile.
  std::vector<double> sorted;
  for (const auto& p : result.curve) sorted.push_back(p.gflops);
  std::sort(sorted.begin(), sorted.end());
  const std::size_t q = std::max<std::size_t>(1, sorted.size() / 4);
  double plateau = 0.0;
  for (std::size_t i = sorted.size() - q; i < sorted.size(); ++i)
    plateau += sorted[i];
  plateau /= static_cast<double>(q);

  // The threshold is the largest probed TLP that already degraded past the
  // knee: selections must stay above it.
  const double knee = (1.0 - config.knee_fraction) * plateau;
  result.threshold = result.curve.front().tlp;  // degenerate fallback
  for (const auto& p : result.curve) {
    if (p.gflops < knee) result.threshold = std::max(result.threshold, p.tlp);
  }
  return result;
}

ThetaCalibration calibrate_theta(const GpuArch& arch,
                                 long long tlp_threshold) {
  ThetaCalibration result;
  // Small-K workload with abundant TLP: the regime where batching depth
  // matters (paper Section 5).
  const std::vector<GemmDims> dims(256, GemmDims{128, 128, 32});
  TilingConfig tiling_config;
  tiling_config.tlp_threshold = tlp_threshold;
  const TilingResult tiling = select_tiling(dims, tiling_config);
  const auto tiles = enumerate_tiles(dims, tiling.per_gemm);
  const int threads = static_cast<int>(tiling.variant);

  double best = 0.0;
  for (int theta = 32; theta <= 2048; theta *= 2) {
    BatchingConfig bc;
    bc.theta = theta;
    bc.tlp_threshold = tlp_threshold;
    const BatchPlan plan = batch_threshold(tiles, threads, bc);
    const double us = time_plan(arch, plan, dims).time_us;
    result.curve.emplace_back(theta, us);
    if (best == 0.0 || us < best) best = us;
  }
  // Smallest theta within 2% of the best time: deeper batching past this
  // point buys nothing.
  for (const auto& [theta, us] : result.curve) {
    if (us <= best * 1.02) {
      result.theta = theta;
      break;
    }
  }
  return result;
}

}  // namespace ctb
