// Per-GEMM fused epilogue descriptors (DESIGN.md §12).
//
// The paper's aux-array interface describes *where* each tile's output goes;
// this module describes *what happens to it* on the way out. A plan may carry
// one epilogue spec per GEMM — a short, ordered chain of elementwise ops
// (bias add, ReLU, residual add) and destination permutations (row/col) that
// the executors apply inside the tile store, after the split-K fix-up join.
// Fusing the epilogue into the store removes the separate read+write pass
// over C that the dnn layers otherwise pay per elementwise op.
//
// Encoding: a spec is a single non-negative int holding up to kMaxEpilogueOps
// op ids, one per nibble, applied lowest nibble first. The encoding is
// canonical — a zero nibble terminates the chain and no nonzero nibble may
// follow it — so equal chains always compare equal as ints and the spec can
// ride through batch_signature, plan serialization, and cache keys as plain
// data. 0 means "no epilogue" and is byte-identical to today's store path.
//
// Value semantics (the single source of truth; reference_gemm and every
// executor implement exactly this):
//   v = alpha * acc  +  (beta != 0 ? beta * C[logical] : 0)   // fp16: rounded
//   for each op in chain order:
//     kBias:     v += args.bias[gi]          (one value per C row)
//     kRelu:     v = v > 0.0f ? v : 0.0f
//     kResidual: v += args.residual[gi*n+gj]
//     (fp16: v rounds to binary16 after the base value and after every
//      value op — the fused chain emulates a sequence of half-precision
//      stores, so it stays bit-identical to the unfused multi-pass form)
//   kRowPerm / kColPerm change only the *destination*: the value computed at
//   logical (gi, gj) is stored at (row_perm[gi], col_perm[gj]). Permutations
//   must be bijective so parallel tiles still write disjoint C regions, and
//   the executors reject beta != 0 for permuted stores (the read side of a
//   general scatter is not expressible as a tile-local chain).
#pragma once

#include <cstdint>
#include <string>

namespace ctb {

/// Epilogue op ids, one per nibble of a packed spec. Values are part of the
/// ctb-batchplan-v3 serialization format — append only, never renumber.
enum class EpilogueOp : int {
  kNone = 0,      ///< chain terminator / empty spec
  kBias = 1,      ///< v += bias[row]
  kRelu = 2,      ///< v = max(v, 0)
  kResidual = 3,  ///< v += residual[row*n+col]
  kRowPerm = 4,   ///< destination row = row_perm[row]
  kColPerm = 5,   ///< destination col = col_perm[col]
};

/// Number of distinct op ids (valid ids are 1..kNumEpilogueOps).
inline constexpr int kNumEpilogueOps = 5;

/// Ops per spec: one nibble each in a packed int, lowest nibble first.
inline constexpr int kMaxEpilogueOps = 4;

/// Number of ops in a packed spec (0 for the empty spec). Assumes the spec
/// is canonical; garbage input still terminates.
int epilogue_num_ops(int spec);

/// The i-th op of a packed spec (0-based, chain order).
EpilogueOp epilogue_op_at(int spec, int i);

/// True iff `spec` is a canonical packed chain: non-negative, no bits above
/// the nibble area, every nibble a valid op id or zero, and no nonzero
/// nibble after a zero one (zero-terminated).
bool epilogue_packed_valid(int spec);

/// Appends `op` to the chain; CTB_CHECKs the spec is canonical with a free
/// slot and `op` is a real op id.
int epilogue_push(int spec, EpilogueOp op);

/// True iff the chain contains `op`.
bool epilogue_has_op(int spec, EpilogueOp op);

const char* to_string(EpilogueOp op);

/// Renders a spec as "bias+relu" (empty spec -> "none").
std::string epilogue_to_string(int spec);

/// Per-GEMM epilogue operands. Plain pointers like GemmOperands: the caller
/// owns the storage and keeps it alive across execution. audit checks every
/// operand named by the GEMM's spec is present with the right extent before
/// any memory is touched; lengths are explicit so the audit cannot be
/// fooled by a short buffer.
struct EpilogueArgs {
  const float* bias = nullptr;  ///< kBias: one value per C row
  int bias_len = 0;             ///< must equal dims.m
  const float* residual = nullptr;  ///< kResidual: row-major m x n
  int residual_rows = 0;            ///< must equal dims.m
  int residual_cols = 0;            ///< must equal dims.n
  const int* row_perm = nullptr;  ///< kRowPerm: bijection on [0, m)
  int row_perm_len = 0;           ///< must equal dims.m
  const int* col_perm = nullptr;  ///< kColPerm: bijection on [0, n)
  int col_perm_len = 0;           ///< must equal dims.n
};

}  // namespace ctb
