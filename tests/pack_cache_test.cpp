// Cross-call packed-panel cache (kernels/pack_cache.hpp): hit/miss
// accounting, the explicit-invalidate contract and its best-effort staleness
// probe, FIFO eviction under the pack-arena budget, the per-GEMM admission
// cap, and — above all — bit-exactness: a cache hit must produce the exact
// bytes a fresh repack would.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <string>
#include <vector>

#include "core/api.hpp"
#include "kernels/functional.hpp"
#include "kernels/microkernel.hpp"
#include "kernels/pack_cache.hpp"
#include "kernels/packing.hpp"
#include "service/plan_service.hpp"
#include "telemetry/telemetry.hpp"

namespace ctb {
namespace {

Matrixf rand_mat(int r, int c, Rng& rng) {
  Matrixf m(static_cast<std::size_t>(r), static_cast<std::size_t>(c));
  fill_random(m, rng);
  return m;
}

struct GemmCase {
  Matrixf a, b, c;
  GemmOperands ops;

  explicit GemmCase(const GemmDims& d, std::uint64_t seed) {
    Rng rng(seed);
    a = rand_mat(d.m, d.k, rng);
    b = rand_mat(d.k, d.n, rng);
    c = rand_mat(d.m, d.n, rng);
    ops = operands(a, b, c);
  }
};

void expect_bitwise_equal(const Matrixf& lhs, const Matrixf& rhs,
                          const std::string& what) {
  ASSERT_EQ(lhs.rows(), rhs.rows());
  ASSERT_EQ(lhs.cols(), rhs.cols());
  const auto l = lhs.flat();
  const auto r = rhs.flat();
  for (std::size_t i = 0; i < l.size(); ++i)
    ASSERT_EQ(l[i], r[i]) << what << " diverges at flat index " << i;
}

TEST(PackCache, DisabledByDefaultAndLookupIsInert) {
  // No scope active: the cache must be off (unless the environment forces
  // it on, which the test suite does not).
  const TilingStrategy& s = batched_strategy_by_id(5);
  GemmCase gc({64, 64, 32}, 1);
  if (!pack_cache_enabled())
    EXPECT_EQ(pack_cache_lookup(s, gc.ops), nullptr);
  ScopedPackCache off(false);
  EXPECT_FALSE(pack_cache_enabled());
  EXPECT_EQ(pack_cache_lookup(s, gc.ops), nullptr);
  pack_cache_insert(s, gc.ops,
                    std::make_shared<PackedGemm>(pack_gemm(s, gc.ops)));
  EXPECT_EQ(pack_cache_entries(), 0u);
}

TEST(PackCache, HitReturnsInsertedPanelsAndMissesOnDifferentKey) {
  ScopedPackCache scope;
  const TilingStrategy& s = batched_strategy_by_id(5);  // large/256
  GemmCase gc({100, 80, 50}, 2);
  EXPECT_EQ(pack_cache_lookup(s, gc.ops), nullptr);  // cold: miss
  auto pk = std::make_shared<PackedGemm>(pack_gemm(s, gc.ops));
  pack_cache_insert(s, gc.ops, pk);
  EXPECT_EQ(pack_cache_entries(), 1u);
  EXPECT_EQ(pack_cache_bytes(), pk->bytes());
  EXPECT_EQ(pack_cache_lookup(s, gc.ops), pk);  // hit: same panels

  // Different strategy, dims, or operand pointers -> different key.
  EXPECT_EQ(pack_cache_lookup(batched_strategy_by_id(0), gc.ops), nullptr);
  GemmCase other({100, 80, 50}, 3);
  EXPECT_EQ(pack_cache_lookup(s, other.ops), nullptr);
  GemmOperands transposed = gc.ops;
  transposed.op_a = Op::kT;
  EXPECT_EQ(pack_cache_lookup(s, transposed), nullptr);
}

TEST(PackCache, GatherOperandsAreNeverCached) {
  ScopedPackCache scope;
  const TilingStrategy& s = batched_strategy_by_id(5);
  GemmCase gc({64, 64, 32}, 4);
  const float* data = gc.b.data();
  gc.ops.b = nullptr;
  gc.ops.b_gather = [data](int k, int j) {
    return data[static_cast<std::size_t>(k) * 64 + j];
  };
  pack_cache_insert(s, gc.ops,
                    std::make_shared<PackedGemm>(pack_gemm(s, gc.ops)));
  EXPECT_EQ(pack_cache_entries(), 0u);
  EXPECT_EQ(pack_cache_lookup(s, gc.ops), nullptr);
}

TEST(PackCache, InvalidateDropsEntriesAndBumpsGeneration) {
  ScopedPackCache scope;
  const TilingStrategy& s = batched_strategy_by_id(5);
  GemmCase gc({64, 64, 32}, 5);
  pack_cache_insert(s, gc.ops,
                    std::make_shared<PackedGemm>(pack_gemm(s, gc.ops)));
  ASSERT_EQ(pack_cache_entries(), 1u);
  const std::uint64_t gen = pack_cache_generation();
  invalidate_pack_cache();
  EXPECT_EQ(pack_cache_entries(), 0u);
  EXPECT_EQ(pack_cache_bytes(), 0u);
  EXPECT_GT(pack_cache_generation(), gen);
  EXPECT_EQ(pack_cache_lookup(s, gc.ops), nullptr);
}

// The invalidation contract's safety net: mutating an operand value that the
// probe samples (corners/center of the panels) demotes the entry to a stale
// miss instead of serving wrong panels.
TEST(PackCache, StalenessProbeDetectsProbedMutation) {
  ScopedPackCache scope;
  const TilingStrategy& s = batched_strategy_by_id(5);
  GemmCase gc({64, 64, 32}, 6);
  pack_cache_insert(s, gc.ops,
                    std::make_shared<PackedGemm>(pack_gemm(s, gc.ops)));
  ASSERT_NE(pack_cache_lookup(s, gc.ops), nullptr);
  // Mutate A(0, 0) — a probed sample — WITHOUT calling invalidate.
  gc.a(0, 0) += 1.0f;
  EXPECT_EQ(pack_cache_lookup(s, gc.ops), nullptr);  // stale -> miss
  EXPECT_EQ(pack_cache_entries(), 0u);  // the stale entry was dropped
}

// The probe is best-effort by design: a mutation it does not sample can go
// undetected, and the documented contract (invalidate_pack_cache after
// in-place mutation) is what restores correctness.
TEST(PackCache, UnprobedMutationRequiresExplicitInvalidate) {
  ScopedPackCache scope;
  const TilingStrategy& s = batched_strategy_by_id(5);  // 128x64 tiles
  GemmCase gc({128, 64, 32}, 7);
  pack_cache_insert(s, gc.ops,
                    std::make_shared<PackedGemm>(pack_gemm(s, gc.ops)));
  // An interior element away from the probed corners/centers.
  gc.a(3, 5) += 1.0f;
  auto hit = pack_cache_lookup(s, gc.ops);
  if (hit != nullptr) {
    // Undetected (expected): the panels are stale. The contract call fixes
    // the next lookup.
    invalidate_pack_cache();
    EXPECT_EQ(pack_cache_lookup(s, gc.ops), nullptr);
  }
  // Either way the caller repacks and the fresh panels reflect the mutation.
  const PackedGemm fresh = pack_gemm(s, gc.ops);
  EXPECT_EQ(fresh.a_panel(0)[3 * s.bk + 5], gc.a(3, 5));
}

TEST(PackCache, FifoEvictionKeepsResidentBytesWithinArenaBudget) {
  ScopedPackCache scope;
  const TilingStrategy& s = batched_strategy_by_id(5);
  const GemmDims d{64, 64, 32};
  std::vector<GemmCase> cases;
  for (int i = 0; i < 3; ++i) cases.emplace_back(d, 10 + i);
  const std::size_t one = pack_footprint_bytes(s, d);

  // Budget fits exactly two entries: inserting the third evicts the OLDEST.
  ScopedPackArenaBudget budget(2 * one);
  for (auto& gc : cases)
    pack_cache_insert(s, gc.ops,
                      std::make_shared<PackedGemm>(pack_gemm(s, gc.ops)));
  EXPECT_EQ(pack_cache_entries(), 2u);
  EXPECT_LE(pack_cache_bytes(), 2 * one);
  EXPECT_EQ(pack_cache_lookup(s, cases[0].ops), nullptr);  // evicted
  EXPECT_NE(pack_cache_lookup(s, cases[1].ops), nullptr);
  EXPECT_NE(pack_cache_lookup(s, cases[2].ops), nullptr);

  // An entry alone above the budget is rejected outright.
  invalidate_pack_cache();
  ScopedPackArenaBudget tiny(one - 1);
  pack_cache_insert(s, cases[0].ops,
                    std::make_shared<PackedGemm>(pack_gemm(s, cases[0].ops)));
  EXPECT_EQ(pack_cache_entries(), 0u);
}

// End-to-end through the executor: a cached second run must produce exactly
// the bytes of an uncached run.
TEST(PackCache, ExecutorResultsBitExactWithCacheEnabled) {
  const TilingStrategy& s = batched_strategy_by_id(5);
  const GemmDims d{150, 130, 70};
  GemmCase cached_case(d, 20);
  {
    ScopedPackCache scope;
    run_single_gemm(s, cached_case.ops, 1.25f, 0.5f);  // miss + insert
    Rng rng(99);
    fill_random(cached_case.c, rng);
    Matrixf c_copy = cached_case.c;
    run_single_gemm(s, cached_case.ops, 1.25f, 0.5f);  // hit
    GemmCase uncached_case(d, 20);
    {
      Rng rng2(99);
      fill_random(uncached_case.c, rng2);
    }
    ScopedPackCache off(false);
    run_single_gemm(s, uncached_case.ops, 1.25f, 0.5f);
    expect_bitwise_equal(cached_case.c, uncached_case.c, "cached-vs-fresh");
  }
}

// Mutating operands between executor calls with an explicit invalidate in
// between yields the same results as never caching.
TEST(PackCache, MutateInvalidateRerunMatchesUncached) {
  const TilingStrategy& s = batched_strategy_by_id(5);
  const GemmDims d{96, 96, 48};
  GemmCase gc(d, 21);
  GemmCase reference(d, 21);
  {
    ScopedPackCache scope;
    run_single_gemm(s, gc.ops, 1.0f, 0.0f);
    Rng rng(7);
    fill_random(gc.a, rng);
    invalidate_pack_cache();
    run_single_gemm(s, gc.ops, 1.0f, 0.0f);
  }
  {
    Rng rng(7);
    fill_random(reference.a, rng);
  }
  run_single_gemm(s, reference.ops, 1.0f, 0.0f);
  expect_bitwise_equal(gc.c, reference.c, "mutate-invalidate-rerun");
}

// ------------------------------------------- per-GEMM admission cap ------
// A batch where one GEMM exceeds the per-GEMM cap: that GEMM runs generic,
// the others still pack — and the mix is bit-exact vs all-generic.
TEST(PackGemmBudget, MixedAdmissionSplitsPathsBitExact) {
  const TilingStrategy& s = single_gemm_strategy(TileShape::kLarge);
  const std::vector<GemmDims> dims = {{64, 64, 32}, {256, 256, 128},
                                      {48, 80, 24}};
  // Cap between the small and the large footprints.
  const std::size_t small_fp = pack_footprint_bytes(s, dims[0]);
  const std::size_t large_fp = pack_footprint_bytes(s, dims[1]);
  ASSERT_LT(small_fp, large_fp);
  const std::size_t cap = (small_fp + large_fp) / 2;

  auto make_batch = [&](std::uint64_t seed) {
    std::vector<GemmCase> gemms;
    for (std::size_t i = 0; i < dims.size(); ++i)
      gemms.emplace_back(dims[i], seed + i);
    return gemms;
  };

  auto mixed = make_batch(30);
  {
    ScopedPackGemmBudget cap_guard(cap);
    std::vector<GemmOperands> ops;
    for (auto& g : mixed) ops.push_back(g.ops);
    run_vbatch(s, ops, 1.0f, 0.5f);
  }
  auto generic = make_batch(30);
  {
    ScopedPackArenaBudget budget(0);
    std::vector<GemmOperands> ops;
    for (auto& g : generic) ops.push_back(g.ops);
    run_vbatch(s, ops, 1.0f, 0.5f);
  }
  for (std::size_t i = 0; i < mixed.size(); ++i)
    expect_bitwise_equal(mixed[i].c, generic[i].c,
                         "mixed-admission/gemm" + std::to_string(i));
}

// A plan-service upgrade (degraded entry replaced by the full plan) must
// invalidate the process-wide pack cache: panels packed while executing the
// degraded plan would otherwise survive into a world where the service hands
// out a differently-tiled plan for the same batch.
TEST(PackCache, PlanServiceUpgradeInvalidatesPackCache) {
  service::VirtualClock clock;
  service::PlanServiceConfig cfg;
  cfg.deadline_us = 500;
  cfg.clock = &clock;
  const BatchedGemmPlanner slow_planner(cfg.planner);
  // The worker blocks on `release` so the upgrade cannot land before the
  // test has populated the pack cache under the degraded plan.
  auto release = std::make_shared<std::atomic<bool>>(false);
  cfg.planner_fn = [&slow_planner, &clock,
                    release](std::span<const GemmDims> dims) {
    clock.advance(10'000);  // full planning always blows the deadline
    while (!release->load())
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    return slow_planner.plan(dims);
  };
  service::PlanService svc(cfg);
  const std::vector<GemmDims> dims = {{64, 64, 32}};

  ScopedPackCache scope;
  const service::ServedPlan degraded = svc.get(dims);
  ASSERT_EQ(degraded.state, service::ServeState::kDegraded);
  // Populate the pack cache while the degraded plan is what's being served.
  const TilingStrategy& s = batched_strategy_by_id(5);
  GemmCase gc(dims[0], 60);
  run_single_gemm(s, gc.ops, 1.0f, 0.0f);  // miss + insert
  ASSERT_EQ(pack_cache_entries(), 1u);
  const std::uint64_t pack_gen = pack_cache_generation();

  // The background upgrade replaces the degraded entry — and must drop the
  // panels packed under it.
  release->store(true);
  svc.drain();
  ASSERT_EQ(svc.stats().upgraded, 1);
  EXPECT_GT(pack_cache_generation(), pack_gen);
  EXPECT_EQ(pack_cache_entries(), 0u);
  EXPECT_EQ(pack_cache_bytes(), 0u);
}

TEST(PackGemmBudget, ZeroCapDisablesPackingEntirely) {
  const TilingStrategy& s = batched_strategy_by_id(5);
  GemmCase packed_case({64, 64, 32}, 31);
  GemmCase capped_case({64, 64, 32}, 31);
  run_single_gemm(s, packed_case.ops, 1.0f, 0.0f);
  {
    ScopedPackGemmBudget cap(0);
    run_single_gemm(s, capped_case.ops, 1.0f, 0.0f);
  }
  expect_bitwise_equal(packed_case.c, capped_case.c, "zero-cap");
}

#ifdef CTB_TELEMETRY_ENABLED

std::int64_t counter_value(const telemetry::MetricsSnapshot& snap,
                           const std::string& name) {
  for (const auto& c : snap.counters)
    if (c.name == name) return c.value;
  ADD_FAILURE() << "counter " << name << " missing from snapshot";
  return -1;
}

// Counter semantics over a repeated-plan workload: first run all misses,
// every later run all hits, pack bytes charged once.
TEST(PackCache, CountersAmortizeRepeatedRuns) {
  const TilingStrategy& s = batched_strategy_by_id(5);
  const GemmDims d{128, 128, 64};
  GemmCase gc(d, 40);
  telemetry::reset();
  telemetry::set_enabled(true);
  {
    ScopedPackCache scope;
    for (int iter = 0; iter < 3; ++iter)
      run_single_gemm(s, gc.ops, 1.0f, 0.0f);
  }
  const auto snap = telemetry::snapshot();
  EXPECT_EQ(counter_value(snap, "exec.pack.cache.miss"), 1);
  EXPECT_EQ(counter_value(snap, "exec.pack.cache.hit"), 2);
  EXPECT_EQ(counter_value(snap, "exec.pack.cache.stale"), 0);
  // ScopedPackCache invalidates on entry and exit.
  EXPECT_EQ(counter_value(snap, "exec.pack.cache.invalidate"), 2);
  // Packing bytes amortized: charged for the single miss only.
  EXPECT_EQ(counter_value(snap, "exec.pack.bytes"),
            static_cast<std::int64_t>(pack_footprint_bytes(s, d)));
  telemetry::set_enabled(false);
  telemetry::reset();
}

// Split-K slices of one GEMM share its packed panels: a split plan packs
// (and charges exec.pack.bytes for) each GEMM exactly once, not once per
// K-slice, and a repeated run hits the cross-call cache once per GEMM. The
// split execution itself must stay bit-exact against the unsplit plan.
TEST(PackCache, SplitKSlicesSharePackedPanels) {
  const TilingStrategy& s = batched_strategy_by_id(5);  // large/256
  const std::vector<GemmDims> dims = {{64, 64, 256}, {64, 128, 192}};
  const std::vector<const TilingStrategy*> strategies(dims.size(), &s);
  const std::vector<Tile> tiles = enumerate_tiles(dims, strategies);
  const std::vector<Tile> split = split_tiles_k(tiles, 4);
  ASSERT_GT(split.size(), tiles.size());
  auto one_tile_blocks = [](const std::vector<Tile>& ts) {
    std::vector<std::vector<Tile>> blocks;
    for (const Tile& t : ts) blocks.push_back({t});
    return blocks;
  };
  const BatchPlan split_plan = build_plan(one_tile_blocks(split), s.threads);
  const BatchPlan unsplit_plan = build_plan(one_tile_blocks(tiles), s.threads);
  ASSERT_TRUE(split_plan.has_split());

  auto make_batch = [&](std::uint64_t seed) {
    std::vector<GemmCase> gemms;
    for (std::size_t i = 0; i < dims.size(); ++i)
      gemms.emplace_back(dims[i], seed + i);
    return gemms;
  };
  auto split_case = make_batch(80);
  std::vector<GemmOperands> split_ops;
  for (auto& g : split_case) split_ops.push_back(g.ops);

  telemetry::reset();
  telemetry::set_enabled(true);
  {
    ScopedPackCache scope;
    run_batched_plan(split_plan, split_ops, 1.0f, 0.5f);  // one miss per GEMM
    run_batched_plan(split_plan, split_ops, 1.0f, 0.5f);  // one hit per GEMM
  }
  const auto snap = telemetry::snapshot();
  EXPECT_EQ(counter_value(snap, "exec.pack.cache.miss"), 2);
  EXPECT_EQ(counter_value(snap, "exec.pack.cache.hit"), 2);
  // Pack bytes charged once per GEMM — never once per K-slice.
  EXPECT_EQ(counter_value(snap, "exec.pack.bytes"),
            static_cast<std::int64_t>(pack_footprint_bytes(s, dims[0]) +
                                      pack_footprint_bytes(s, dims[1])));
  telemetry::set_enabled(false);
  telemetry::reset();

  // Same seeds through the unsplit plan (cache off): two runs with the same
  // beta chain must produce bitwise-identical C either way.
  auto unsplit_case = make_batch(80);
  std::vector<GemmOperands> unsplit_ops;
  for (auto& g : unsplit_case) unsplit_ops.push_back(g.ops);
  run_batched_plan(unsplit_plan, unsplit_ops, 1.0f, 0.5f);
  run_batched_plan(unsplit_plan, unsplit_ops, 1.0f, 0.5f);
  for (std::size_t i = 0; i < dims.size(); ++i)
    expect_bitwise_equal(split_case[i].c, unsplit_case[i].c,
                         "splitk-vs-unsplit/gemm" + std::to_string(i));
}

#endif  // CTB_TELEMETRY_ENABLED

}  // namespace
}  // namespace ctb
