// Determinism of the split-K fix-up reduction (DESIGN.md §11).
//
// Split-K partitions a tile's K loop into BK-aligned slices executed as
// separate blocks; the fix-up pass then continues each tile's single
// ascending (k0, p) accumulation chain through the slices in K order (a
// carried chain — the left-spine of the reduction tree), so the result is
// BITWISE identical to the unsplit execution. This test pins that contract
// where it can break: under parallel_for at 1/2/4/8 threads, across all
// three executors, fp32 and fp16, N/T transpose variants, the gather
// (implicit-GEMM) path, and every SIMD ISA reachable on the host.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/api.hpp"
#include "dnn/implicit_gemm.hpp"
#include "kernels/functional.hpp"
#include "kernels/simd.hpp"
#include "util/parallel.hpp"

namespace ctb {
namespace {

constexpr int kThreadCounts[] = {1, 2, 4, 8};
constexpr int kSliceCounts[] = {2, 3, 8};

Matrixf rand_mat(int r, int c, Rng& rng) {
  Matrixf m(static_cast<std::size_t>(r), static_cast<std::size_t>(c));
  fill_random(m, rng);
  return m;
}

void expect_bitwise_equal(const Matrixf& unsplit, const Matrixf& split,
                          const std::string& what) {
  ASSERT_EQ(unsplit.rows(), split.rows());
  ASSERT_EQ(unsplit.cols(), split.cols());
  const auto u = unsplit.flat();
  const auto s = split.flat();
  for (std::size_t i = 0; i < u.size(); ++i)
    ASSERT_EQ(u[i], s[i]) << what << " diverges at flat index " << i;
}

struct BatchCase {
  std::vector<Matrixf> a, b, c;
  std::vector<GemmOperands> ops;
};

BatchCase make_batch(std::span<const GemmDims> dims, std::uint64_t seed,
                     Precision precision = Precision::kFp32) {
  BatchCase bc;
  Rng rng(seed);
  for (const auto& d : dims) {
    bc.a.push_back(rand_mat(d.m, d.k, rng));
    bc.b.push_back(rand_mat(d.k, d.n, rng));
    bc.c.push_back(rand_mat(d.m, d.n, rng));
  }
  for (std::size_t i = 0; i < dims.size(); ++i) {
    bc.ops.push_back(operands(bc.a[i], bc.b[i], bc.c[i]));
    bc.ops.back().precision = precision;
  }
  return bc;
}

/// Hand-built plans over one uniform strategy: every tile in its own block,
/// optionally split into `slices` K ranges. Deterministic and independent of
/// the planner, so the executor contract is tested in isolation.
BatchPlan uniform_plan(std::span<const GemmDims> dims,
                       const TilingStrategy& s, int slices) {
  const std::vector<const TilingStrategy*> strategies(dims.size(), &s);
  std::vector<Tile> tiles = enumerate_tiles(dims, strategies);
  if (slices > 1) tiles = split_tiles_k(tiles, slices);
  std::vector<std::vector<Tile>> blocks;
  for (const Tile& t : tiles) blocks.push_back({t});
  return build_plan(blocks, s.threads);
}

// ---------------------------------------------------------- single GEMM --

TEST(SplitKSingleGemm, ThreadAndSliceSweepBitExact) {
  const auto& s = batched_strategy(TileShape::kMedium, ThreadVariant::k256);
  // Ragged in every dimension; K % BK != 0 puts the zero-padded tail step
  // inside the last slice.
  const std::vector<GemmDims> dims = {{70, 45, 77}};
  auto reference = make_batch(dims, 42);
  {
    ScopedParallelThreads guard(1);
    run_single_gemm(s, reference.ops[0], 1.5f, -0.5f);
  }
  for (int slices : kSliceCounts) {
    for (int threads : kThreadCounts) {
      auto split = make_batch(dims, 42);
      ScopedParallelThreads guard(threads);
      run_single_gemm(s, split.ops[0], 1.5f, -0.5f, slices);
      expect_bitwise_equal(reference.c[0], split.c[0],
                           "single splitk=" + std::to_string(slices) +
                               " threads=" + std::to_string(threads));
    }
  }
}

class SplitKAllStrategies : public ::testing::TestWithParam<int> {};

TEST_P(SplitKAllStrategies, SingleGemmBitExact) {
  const TilingStrategy& s = batched_strategy_by_id(GetParam());
  const std::vector<GemmDims> dims = {
      {2 * s.by + 3, s.bx + 5, 6 * s.bk + 3}};
  auto reference = make_batch(dims, 51);
  {
    ScopedParallelThreads guard(1);
    run_single_gemm(s, reference.ops[0], 1.0f, 0.25f);
  }
  auto split = make_batch(dims, 51);
  {
    ScopedParallelThreads guard(4);
    run_single_gemm(s, split.ops[0], 1.0f, 0.25f, 4);
  }
  expect_bitwise_equal(reference.c[0], split.c[0],
                       "all-strategies " + s.name());
}

INSTANTIATE_TEST_SUITE_P(Ids, SplitKAllStrategies, ::testing::Range(0, 12));

TEST(SplitKSingleGemm, Fp16BitExact) {
  const auto& s = batched_strategy(TileShape::kLarge, ThreadVariant::k128);
  const std::vector<GemmDims> dims = {{90, 130, 100}};
  auto reference = make_batch(dims, 99, Precision::kFp16);
  {
    ScopedParallelThreads guard(1);
    run_single_gemm(s, reference.ops[0], 1.0f, 0.5f);
  }
  for (int threads : kThreadCounts) {
    auto split = make_batch(dims, 99, Precision::kFp16);
    ScopedParallelThreads guard(threads);
    run_single_gemm(s, split.ops[0], 1.0f, 0.5f, 4);
    expect_bitwise_equal(reference.c[0], split.c[0],
                         "fp16 threads=" + std::to_string(threads));
  }
}

TEST(SplitKSingleGemm, TransposeVariantsBitExact) {
  const auto& s = batched_strategy(TileShape::kMedium, ThreadVariant::k256);
  const int m = 70, n = 45, k = 100;
  for (const Op op_a : {Op::kN, Op::kT}) {
    for (const Op op_b : {Op::kN, Op::kT}) {
      const int ar = op_a == Op::kN ? m : k;
      const int ac = op_a == Op::kN ? k : m;
      const int br = op_b == Op::kN ? k : n;
      const int bc = op_b == Op::kN ? n : k;
      struct TCase {
        Matrixf a, b, c;
      };
      auto make = [&] {
        Rng rng(77);
        return TCase{rand_mat(ar, ac, rng), rand_mat(br, bc, rng),
                     rand_mat(m, n, rng)};
      };
      TCase reference = make();
      {
        ScopedParallelThreads guard(1);
        run_single_gemm(
            s, operands(reference.a, reference.b, reference.c, op_a, op_b),
            1.0f, 0.25f);
      }
      for (int threads : kThreadCounts) {
        TCase split = make();
        ScopedParallelThreads guard(threads);
        run_single_gemm(s,
                        operands(split.a, split.b, split.c, op_a, op_b),
                        1.0f, 0.25f, 4);
        expect_bitwise_equal(reference.c, split.c,
                             std::string("transpose op_a=") +
                                 (op_a == Op::kT ? "T" : "N") + " op_b=" +
                                 (op_b == Op::kT ? "T" : "N") + " threads=" +
                                 std::to_string(threads));
      }
    }
  }
}

// The gather (implicit-GEMM) path: B is a callable, so slicing must offset
// the gather coordinates, not a pointer.
TEST(SplitKSingleGemm, GatherPathBitExact) {
  ConvShape shape;
  shape.name = "splitk_conv";
  shape.in_c = 7;
  shape.out_c = 33;
  shape.kernel = 3;
  shape.stride = 1;
  shape.pad = 1;
  shape.in_h = 9;
  shape.in_w = 10;
  Rng rng(31);
  const Tensor4 input = [&] {
    Tensor4 t(2, shape.in_c, shape.in_h, shape.in_w);
    fill_random(t, rng);
    return t;
  }();
  const Matrixf filters = random_filters(shape, rng);
  const GemmDims d = shape.gemm_dims(input.n());
  const auto& s = batched_strategy(TileShape::kSmall, ThreadVariant::k128);

  Matrixf reference_out(static_cast<std::size_t>(d.m),
                        static_cast<std::size_t>(d.n));
  {
    ScopedParallelThreads guard(1);
    run_single_gemm(
        s, implicit_conv_operands(shape, input, filters, reference_out),
        1.0f, 0.0f);
  }
  for (int threads : kThreadCounts) {
    Matrixf split_out(static_cast<std::size_t>(d.m),
                      static_cast<std::size_t>(d.n));
    ScopedParallelThreads guard(threads);
    run_single_gemm(s,
                    implicit_conv_operands(shape, input, filters, split_out),
                    1.0f, 0.0f, 3);
    expect_bitwise_equal(reference_out, split_out,
                         "gather threads=" + std::to_string(threads));
  }
}

// --------------------------------------------------------------- vbatch --

TEST(SplitKVbatch, MixedSizesBitExact) {
  const auto& s = single_gemm_strategy(TileShape::kMedium);
  // Includes K=3 (a single BK step: must degrade to unsplit) and ragged Ks.
  const std::vector<GemmDims> dims = {
      {33, 65, 19}, {128, 128, 64}, {100, 40, 77}, {16, 16, 3}};
  auto reference = make_batch(dims, 123);
  {
    ScopedParallelThreads guard(1);
    run_vbatch(s, reference.ops, 1.25f, 0.5f);
  }
  for (int threads : kThreadCounts) {
    auto split = make_batch(dims, 123);
    ScopedParallelThreads guard(threads);
    run_vbatch(s, split.ops, 1.25f, 0.5f, 4);
    for (std::size_t i = 0; i < dims.size(); ++i)
      expect_bitwise_equal(reference.c[i], split.c[i],
                           "vbatch gemm " + std::to_string(i) + " threads=" +
                               std::to_string(threads));
  }
}

// --------------------------------------------------------- batched plan --

TEST(SplitKBatchedPlan, HandBuiltPlanBitExact) {
  const auto& s = batched_strategy(TileShape::kMedium, ThreadVariant::k256);
  const std::vector<GemmDims> dims = {{70, 45, 77}, {64, 64, 160}, {33, 33, 24}};
  const BatchPlan unsplit = uniform_plan(dims, s, 1);
  const BatchPlan split = uniform_plan(dims, s, 4);
  ASSERT_TRUE(split.has_split());
  ASSERT_GT(split.num_blocks(), unsplit.num_blocks());
  validate_plan(split, dims);

  for (const Precision precision : {Precision::kFp32, Precision::kFp16}) {
    auto reference = make_batch(dims, 7, precision);
    {
      ScopedParallelThreads guard(1);
      run_batched_plan(unsplit, reference.ops, 2.0f, -1.0f);
    }
    for (int threads : kThreadCounts) {
      auto split_case = make_batch(dims, 7, precision);
      ScopedParallelThreads guard(threads);
      run_batched_plan(split, split_case.ops, 2.0f, -1.0f);
      for (std::size_t i = 0; i < dims.size(); ++i)
        expect_bitwise_equal(
            reference.c[i], split_case.c[i],
            std::string("plan ") +
                (precision == Precision::kFp16 ? "fp16" : "fp32") + " gemm " +
                std::to_string(i) + " threads=" + std::to_string(threads));
    }
  }
}

// The planner's split-K axis end to end: kForce produces a split plan for a
// TLP-scarce tall-skinny batch with strictly more blocks, and executing it
// matches the kOff plan bitwise at every thread count.
TEST(SplitKBatchedPlan, PlannerForcedSplitBitExact) {
  const std::vector<GemmDims> dims = {{512, 64, 1024}, {384, 64, 768}};
  PlannerConfig off;
  off.splitk = SplitKMode::kOff;
  const PlanSummary unsplit = BatchedGemmPlanner(off).plan(dims);
  ASSERT_FALSE(unsplit.plan.has_split());

  PlannerConfig force;
  force.splitk = SplitKMode::kForce;
  const PlanSummary split = BatchedGemmPlanner(force).plan(dims);
  ASSERT_TRUE(split.plan.has_split());
  validate_plan(split.plan, dims);
  EXPECT_GT(split.plan.num_blocks(), unsplit.plan.num_blocks());

  auto reference = make_batch(dims, 91);
  {
    ScopedParallelThreads guard(1);
    run_batched_plan(unsplit.plan, reference.ops, 1.0f, 0.5f);
  }
  for (int threads : kThreadCounts) {
    auto split_case = make_batch(dims, 91);
    ScopedParallelThreads guard(threads);
    run_batched_plan(split.plan, split_case.ops, 1.0f, 0.5f);
    for (std::size_t i = 0; i < dims.size(); ++i)
      expect_bitwise_equal(reference.c[i], split_case.c[i],
                           "planner-force gemm " + std::to_string(i) +
                               " threads=" + std::to_string(threads));
  }
}

// The auto trigger: a TLP-scarce tall-skinny batch may split (and did, on
// the quick-suite workload this mirrors), a machine-filling batch must not.
TEST(SplitKBatchedPlan, AutoTriggerRespectsTlpScarcity) {
  PlannerConfig config;  // kAuto
  const std::vector<GemmDims> plenty(64, GemmDims{256, 256, 64});
  const PlanSummary filled = BatchedGemmPlanner(config).plan(plenty);
  EXPECT_FALSE(filled.plan.has_split());
  // A scarce batch stays correct whether or not the simulator picks split.
  const std::vector<GemmDims> scarce = {{512, 64, 1024}};
  const PlanSummary summary = BatchedGemmPlanner(config).plan(scarce);
  validate_plan(summary.plan, scarce);
  auto reference = make_batch(scarce, 17);
  {
    ScopedParallelThreads guard(1);
    reference_gemm(reference.ops[0], 1.0f, 0.0f);
  }
  auto planned = make_batch(scarce, 17);
  {
    ScopedParallelThreads guard(4);
    run_batched_plan(summary.plan, planned.ops, 1.0f, 0.0f);
  }
  expect_bitwise_equal(reference.c[0], planned.c[0], "auto-trigger");
}

// ------------------------------------------------------------ SIMD ISAs --

TEST(SplitKSimd, IsaSweepBitExact) {
  const auto& s = batched_strategy(TileShape::kMedium, ThreadVariant::k256);
  const std::vector<GemmDims> dims = {{70, 45, 96}, {64, 64, 160}};
  const BatchPlan unsplit = uniform_plan(dims, s, 1);
  const BatchPlan split = uniform_plan(dims, s, 4);

  // Sweep every ISA up to the host's capability: requesting more clamps, so
  // each scope below genuinely dispatches a different kernel table.
  std::vector<SimdIsa> isas = {SimdIsa::kScalar};
  for (SimdIsa isa : {SimdIsa::kNeon, SimdIsa::kAvx2, SimdIsa::kAvx512})
    if (static_cast<int>(isa) <= static_cast<int>(detected_simd_isa()))
      isas.push_back(isa);

  for (SimdIsa isa : isas) {
    ScopedSimdIsa isa_guard(isa);
    auto reference = make_batch(dims, 29);
    {
      ScopedParallelThreads guard(1);
      run_batched_plan(unsplit, reference.ops, 1.5f, 0.25f);
    }
    for (int threads : kThreadCounts) {
      auto split_case = make_batch(dims, 29);
      ScopedParallelThreads guard(threads);
      run_batched_plan(split, split_case.ops, 1.5f, 0.25f);
      for (std::size_t i = 0; i < dims.size(); ++i)
        expect_bitwise_equal(
            reference.c[i], split_case.c[i],
            std::string("isa=") + simd_isa_name(isa) + " gemm " +
                std::to_string(i) + " threads=" + std::to_string(threads));
    }
  }
}

// Cross-ISA: the split result under the host's best ISA equals the scalar
// unsplit result — the strongest form of the contract, composing the SIMD
// determinism guarantee (DESIGN.md §6) with the fix-up reduction's.
TEST(SplitKSimd, BestIsaSplitMatchesScalarUnsplit) {
  const auto& s = batched_strategy(TileShape::kLarge, ThreadVariant::k256);
  const std::vector<GemmDims> dims = {{130, 70, 200}};
  auto reference = make_batch(dims, 67);
  {
    ScopedSimdIsa isa_guard(SimdIsa::kScalar);
    ScopedParallelThreads guard(1);
    run_single_gemm(s, reference.ops[0], 1.0f, 0.0f);
  }
  auto split = make_batch(dims, 67);
  {
    ScopedSimdIsa isa_guard(detected_simd_isa());
    ScopedParallelThreads guard(8);
    run_single_gemm(s, split.ops[0], 1.0f, 0.0f, 8);
  }
  expect_bitwise_equal(reference.c[0], split.c[0], "best-isa-vs-scalar");
}

}  // namespace
}  // namespace ctb
