// Pins the Fig. 8/9 sweep grid and the shared table/CSV headers, and unit
// tests the helpers the figure harnesses share: print_sweep_tables (the
// single section/table loop both binaries use), CsvSink, and
// TelemetryScope. The grid contents are part of the benchmark contract —
// fig8/fig9 output is diffed against golden logs elsewhere, and a silent
// change to the axes would invalidate every recorded comparison.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_common.hpp"

namespace ctb::bench {
namespace {

TEST(SweepGrid, AxesMatchThePaper) {
  EXPECT_EQ(sweep_mn(), (std::vector<int>{128, 256, 512}));
  EXPECT_EQ(sweep_batch(), (std::vector<int>{4, 16, 64, 256}));
  EXPECT_EQ(sweep_k(),
            (std::vector<int>{16, 32, 64, 128, 256, 512, 1024, 2048}));
}

TEST(SweepGrid, CellsEnumerateInPrintOrder) {
  const std::vector<SweepCell> cells = sweep_cells();
  ASSERT_EQ(cells.size(),
            sweep_mn().size() * sweep_batch().size() * sweep_k().size());
  std::size_t i = 0;
  for (int mn : sweep_mn()) {
    for (int batch : sweep_batch()) {
      for (int k : sweep_k()) {
        EXPECT_EQ(cells[i].mn, mn) << "cell " << i;
        EXPECT_EQ(cells[i].batch, batch) << "cell " << i;
        EXPECT_EQ(cells[i].k, k) << "cell " << i;
        ++i;
      }
    }
  }
}

TEST(SweepGrid, HeadersArePinned) {
  EXPECT_EQ(fig8_table_header(),
            (std::vector<std::string>{"K", "magma(us)", "tiling(us)",
                                      "speedup", "magma tile", "our tile",
                                      "histogram (1.0 = 10 chars)"}));
  EXPECT_EQ(fig9_table_header(),
            (std::vector<std::string>{"K", "magma(us)", "tiling(us)",
                                      "full(us)", "heuristic", "full/magma",
                                      "full/tiling",
                                      "histogram (1.0 = 10 chars)"}));
  EXPECT_STREQ(fig8_csv_header(), "mn,batch,k,magma_us,tiling_us,speedup");
  EXPECT_STREQ(fig9_csv_header(),
               "mn,batch,k,magma_us,tiling_us,full_us,heuristic,"
               "full_vs_magma,full_vs_tiling");
}

TEST(PrintSweepTables, VisitsEveryCellOnceInOrderWithSectionHeaders) {
  const std::vector<SweepCell> cells = sweep_cells();
  std::vector<int> rows(cells.size());
  for (std::size_t i = 0; i < rows.size(); ++i)
    rows[i] = static_cast<int>(i);

  std::ostringstream os;
  std::vector<SweepCell> visited;
  print_sweep_tables(os, {"K", "row"}, rows,
                     [&](TextTable& t, const SweepCell& cell, int row) {
                       EXPECT_EQ(row, static_cast<int>(visited.size()));
                       visited.push_back(cell);
                       t.add_row({TextTable::fmt(cell.k),
                                  TextTable::fmt(row)});
                     });

  ASSERT_EQ(visited.size(), cells.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    EXPECT_EQ(visited[i].mn, cells[i].mn) << i;
    EXPECT_EQ(visited[i].batch, cells[i].batch) << i;
    EXPECT_EQ(visited[i].k, cells[i].k) << i;
  }

  // One section header per (mn, batch) pair, in sweep order.
  const std::string out = os.str();
  std::size_t pos = 0;
  for (int mn : sweep_mn()) {
    for (int batch : sweep_batch()) {
      std::ostringstream header;
      header << "--- M=N=" << mn << ", batch=" << batch << " ---";
      const std::size_t at = out.find(header.str(), pos);
      ASSERT_NE(at, std::string::npos) << header.str();
      pos = at + 1;
    }
  }
}

TEST(CsvSink, NoopWithoutEnvAndWritesHeaderPlusRowsWithIt) {
  unsetenv("CTB_BENCH_CSV");
  CsvSink silent(fig8_csv_header());
  silent.row("should,not,appear,anywhere");

  const std::string path = ::testing::TempDir() + "ctb_bench_grid_test.csv";
  setenv("CTB_BENCH_CSV", path.c_str(), 1);
  {
    CsvSink sink(fig8_csv_header());
    sink.row("128,4,16,1.0,2.0,0.5");
  }
  unsetenv("CTB_BENCH_CSV");

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  // Line 1: the "# isa=...,threads=..." provenance comment making A/B
  // artifacts self-describing; then the column header and the rows.
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, csv_provenance_comment());
  EXPECT_EQ(line.rfind("# isa=", 0), 0u) << line;
  EXPECT_NE(line.find(",threads="), std::string::npos) << line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, fig8_csv_header());
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "128,4,16,1.0,2.0,0.5");
  EXPECT_FALSE(std::getline(in, line));
  std::remove(path.c_str());
}

TEST(TelemetryScope, WritesMetricsAndTraceWhenCompiledIn) {
  unsetenv("CTB_BENCH_TELEMETRY");
  { TelemetryScope inert("grid_test_inert"); }

  const std::string dir = ::testing::TempDir();
  setenv("CTB_BENCH_TELEMETRY", dir.c_str(), 1);
  {
    TelemetryScope scope("grid_test");
    CTB_TEL_COUNT("test.grid.scope", 1);
  }
  unsetenv("CTB_BENCH_TELEMETRY");
  telemetry::set_enabled(false);

  const std::string metrics_path = dir + "/grid_test.metrics.json";
  const std::string trace_path = dir + "/grid_test.trace.json";
  std::ifstream metrics(metrics_path), trace(trace_path);
  if (telemetry::snapshot().compiled_in) {
    ASSERT_TRUE(metrics.good());
    ASSERT_TRUE(trace.good());
    std::stringstream ss;
    ss << metrics.rdbuf();
    EXPECT_NE(ss.str().find("\"test.grid.scope\":1"), std::string::npos)
        << ss.str();
    std::remove(metrics_path.c_str());
    std::remove(trace_path.c_str());
  } else {
    EXPECT_FALSE(metrics.good());
    EXPECT_FALSE(trace.good());
  }
}

}  // namespace
}  // namespace ctb::bench
