#include <gtest/gtest.h>

#include "core/api.hpp"
#include "core/rf_policy.hpp"

namespace ctb {
namespace {

TEST(BatchingFeatures, PaperFeatureVectorPlusTileCount) {
  // Features are {mean M, mean N, mean K, B, total 64x64 C tiles}.
  const std::vector<GemmDims> dims = {{16, 32, 128}, {64, 64, 64}};
  const auto f = batching_features(dims);
  ASSERT_EQ(f.size(), 5u);
  EXPECT_DOUBLE_EQ(f[0], 40.0);
  EXPECT_DOUBLE_EQ(f[1], 48.0);
  EXPECT_DOUBLE_EQ(f[2], 96.0);
  EXPECT_DOUBLE_EQ(f[3], 2.0);
  EXPECT_DOUBLE_EQ(f[4], 2.0);  // one 64x64 tile each
}

TEST(BatchingFeatures, TileCountSeparatesOneBigFromManySmall) {
  // Same mean M/N/K and batch size cannot happen here, but the tile count
  // must still separate a tall-skinny giant from a uniform grid of tiles.
  const std::vector<GemmDims> tall = {{2048, 64, 512}};
  const std::vector<GemmDims> square = {{512, 512, 512}};
  EXPECT_DOUBLE_EQ(batching_features(tall)[4], 32.0);
  EXPECT_DOUBLE_EQ(batching_features(square)[4], 64.0);
}

TEST(RandomBatch, RespectsRanges) {
  Rng rng(1);
  CaseRanges r;
  r.min_batch = 3;
  r.max_batch = 5;
  r.min_mn = 32;
  r.max_mn = 64;
  r.min_k = 100;
  r.max_k = 200;
  for (int i = 0; i < 50; ++i) {
    const auto dims = random_batch(rng, r);
    EXPECT_GE(dims.size(), 3u);
    EXPECT_LE(dims.size(), 5u);
    for (const auto& d : dims) {
      EXPECT_GE(d.m, 32);
      EXPECT_LE(d.m, 64);
      EXPECT_GE(d.n, 32);
      EXPECT_LE(d.n, 64);
      EXPECT_GE(d.k, 100);
      EXPECT_LE(d.k, 200);
    }
  }
}

TEST(RandomBatch, DeterministicGivenSeed) {
  Rng r1(7), r2(7);
  CaseRanges r;
  const auto a = random_batch(r1, r);
  const auto b = random_batch(r2, r);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_TRUE(a[i] == b[i]);
}

TEST(OracleLabel, ReturnsBinaryLabel) {
  const GpuArch& arch = gpu_arch(GpuModel::kV100);
  const std::vector<GemmDims> dims(16, GemmDims{64, 64, 64});
  const int label = oracle_label(arch, dims, 65536, 256);
  EXPECT_TRUE(label == 0 || label == 1);
}

TEST(OracleLabel, AgreesWithDirectSimulation) {
  const GpuArch& arch = gpu_arch(GpuModel::kV100);
  const std::vector<GemmDims> dims(32, GemmDims{32, 32, 48});
  const TilingResult tiling = select_tiling(dims, TilingConfig{65536});
  const auto tiles = enumerate_tiles(dims, tiling.per_gemm);
  const int threads = static_cast<int>(tiling.variant);
  const BatchingConfig bc{256, 65536};
  const double t_thr =
      time_plan(arch, batch_threshold(tiles, threads, bc), dims).time_us;
  const double t_bin =
      time_plan(arch, batch_binary(tiles, threads, bc), dims).time_us;
  const int expected = t_thr <= t_bin ? 0 : 1;
  EXPECT_EQ(oracle_label(arch, dims, 65536, 256), expected);
}

// Dataset generation is slow-ish (2 plans simulated per case); keep counts
// modest but meaningful.
TEST(GenerateDataset, ShapeAndDeterminism) {
  RfTrainingConfig config;
  config.num_cases = 24;
  config.seed = 42;
  config.ranges.max_batch = 16;
  config.ranges.max_mn = 256;
  config.ranges.max_k = 512;
  const Dataset d1 = generate_batching_dataset(config);
  const Dataset d2 = generate_batching_dataset(config);
  ASSERT_EQ(d1.samples.size(), 24u);
  EXPECT_EQ(d1.num_features, 5);
  EXPECT_EQ(d1.num_classes, 2);
  for (std::size_t i = 0; i < d1.samples.size(); ++i) {
    EXPECT_EQ(d1.samples[i].label, d2.samples[i].label);
    EXPECT_EQ(d1.samples[i].features, d2.samples[i].features);
  }
}

TEST(TrainForest, PredictsOracleWellOnTrainingSet) {
  RfTrainingConfig config;
  config.num_cases = 60;
  config.seed = 7;
  config.ranges.max_batch = 24;
  config.ranges.max_mn = 256;
  config.ranges.max_k = 1024;
  config.forest.num_trees = 16;
  Dataset data;
  const RandomForest forest = train_batching_forest(config, &data);
  EXPECT_TRUE(forest.trained());
  // The forest should beat always-predicting the majority class unless the
  // dataset is one-sided; at minimum it must fit the training set well.
  EXPECT_GE(forest.accuracy(data), 0.75);
}

TEST(OracleTimes, MarginAndLabelConsistent) {
  OracleTimes t;
  t.threshold_us = 100.0;
  t.binary_us = 120.0;
  EXPECT_EQ(t.label(), 0);
  EXPECT_NEAR(t.margin(), 0.2, 1e-12);
  std::swap(t.threshold_us, t.binary_us);
  EXPECT_EQ(t.label(), 1);
}

TEST(OracleTimes, AgreesWithOracleLabel) {
  const GpuArch& arch = gpu_arch(GpuModel::kV100);
  const std::vector<GemmDims> dims(16, GemmDims{64, 64, 48});
  const OracleTimes t = oracle_times(arch, dims, 65536, 256);
  EXPECT_EQ(t.label(), oracle_label(arch, dims, 65536, 256));
  EXPECT_GT(t.threshold_us, 0.0);
  EXPECT_GT(t.binary_us, 0.0);
}

TEST(GenerateDataset, MarginFilterKeepsOnlyConfidentLabels) {
  RfTrainingConfig config;
  config.num_cases = 16;
  config.seed = 99;
  config.ranges.max_batch = 32;
  config.ranges.max_mn = 256;
  config.ranges.max_k = 512;
  config.label_margin = 0.02;
  const Dataset d = generate_batching_dataset(config);
  const GpuArch& arch = gpu_arch(config.gpu);
  // Every kept sample must replay with margin >= the filter. We cannot
  // recover the dims from features alone, so regenerate and check the
  // pipeline end to end instead: the filtered set is no larger than the
  // unfiltered one and non-empty.
  RfTrainingConfig unfiltered = config;
  unfiltered.label_margin = 0.0;
  const Dataset all = generate_batching_dataset(unfiltered);
  (void)arch;
  EXPECT_GE(all.samples.size(), d.samples.size());
  EXPECT_GE(d.samples.size(), 2u);
}

TEST(GenerateDataset, ExtremeMarginThrows) {
  RfTrainingConfig config;
  config.num_cases = 8;
  config.seed = 5;
  config.ranges.max_batch = 4;
  config.ranges.max_mn = 64;
  config.ranges.max_k = 64;
  config.label_margin = 1e9;  // nothing can pass
  config.max_attempts_factor = 2;
  EXPECT_THROW(generate_batching_dataset(config), CheckError);
}

TEST(RfChoose, MapsLabelsToHeuristics) {
  RfTrainingConfig config;
  config.num_cases = 30;
  config.seed = 11;
  config.ranges.max_batch = 16;
  config.ranges.max_mn = 128;
  config.ranges.max_k = 512;
  config.forest.num_trees = 8;
  const RandomForest forest = train_batching_forest(config);
  const std::vector<GemmDims> dims(8, GemmDims{64, 64, 64});
  const BatchingHeuristic h = rf_choose(forest, dims);
  EXPECT_TRUE(h == BatchingHeuristic::kThreshold ||
              h == BatchingHeuristic::kBinary);
}

}  // namespace
}  // namespace ctb
