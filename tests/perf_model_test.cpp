#include <gtest/gtest.h>

#include "core/perf_model.hpp"
#include "util/assert.hpp"

namespace ctb {
namespace {

const TilingStrategy& strat(TileShape shape,
                            ThreadVariant v = ThreadVariant::k256) {
  return batched_strategy(shape, v);
}

// ------------------------------------------------------------------ Eq 1 --

TEST(Eq1Tlp, SingleGemmExactDivision) {
  // 16x32 GEMM under small tiles: 1x2 tiles * 256 threads = 512.
  EXPECT_EQ(gemm_tlp(GemmDims{16, 32, 128}, strat(TileShape::kSmall)), 512);
}

TEST(Eq1Tlp, CeilingOnNonMultiples) {
  // 17x17 under 16x16 tiles -> 2x2 tiles.
  EXPECT_EQ(gemm_tlp(GemmDims{17, 17, 8}, strat(TileShape::kSmall)),
            4 * 256);
}

TEST(Eq1Tlp, PaperWorkedExampleFirstIteration) {
  // Paper Section 4.2.3: GEMMs 16x32x128, 64x64x64, 256x256x64 all under
  // small/256 give TLP = 70144.
  const std::vector<GemmDims> dims = {
      {16, 32, 128}, {64, 64, 64}, {256, 256, 64}};
  const std::vector<const TilingStrategy*> s = {
      &strat(TileShape::kSmall), &strat(TileShape::kSmall),
      &strat(TileShape::kSmall)};
  EXPECT_EQ(batch_tlp(dims, s), 70144);
}

TEST(Eq1Tlp, PaperWorkedExampleSecondIteration) {
  // (small, medium, medium) gives TLP = 17920.
  const std::vector<GemmDims> dims = {
      {16, 32, 128}, {64, 64, 64}, {256, 256, 64}};
  const std::vector<const TilingStrategy*> s = {
      &strat(TileShape::kSmall), &strat(TileShape::kMedium),
      &strat(TileShape::kMedium)};
  EXPECT_EQ(batch_tlp(dims, s), 17920);
}

TEST(Eq1Tlp, MismatchedSpansThrow) {
  const std::vector<GemmDims> dims = {{16, 16, 16}};
  const std::vector<const TilingStrategy*> s;
  EXPECT_THROW(batch_tlp(dims, s), CheckError);
}

TEST(Eq1Tlp, DecreasesWithTileSize) {
  const GemmDims d{256, 256, 64};
  long long prev = gemm_tlp(d, strat(TileShape::kSmall));
  for (TileShape shape :
       {TileShape::kMedium, TileShape::kLarge, TileShape::kHuge}) {
    const long long cur = gemm_tlp(d, strat(shape));
    EXPECT_LT(cur, prev);
    prev = cur;
  }
}

TEST(Eq1Tlp, VariantScalesThreads) {
  const GemmDims d{256, 256, 64};
  EXPECT_EQ(gemm_tlp(d, strat(TileShape::kLarge, ThreadVariant::k256)),
            2 * gemm_tlp(d, strat(TileShape::kLarge, ThreadVariant::k128)));
}

// --------------------------------------------------------------- Eq 2, 3 --

TEST(Eq2Load, SmallStrategy) {
  // (16*8 + 8*16) / (4 * 256) = 256/1024 = 0.25 loads per thread per iter.
  EXPECT_DOUBLE_EQ(num_load_per_thread(strat(TileShape::kSmall)), 0.25);
}

TEST(Eq3Fma, HugeStrategy) {
  // 128*128*8 / 256 = 512.
  EXPECT_DOUBLE_EQ(num_fma_per_thread(strat(TileShape::kHuge)), 512.0);
}

TEST(Eq3Fma, HalvingThreadsDoublesWork) {
  for (TileShape shape : all_tile_shapes()) {
    EXPECT_DOUBLE_EQ(
        num_fma_per_thread(batched_strategy(shape, ThreadVariant::k128)),
        2.0 * num_fma_per_thread(batched_strategy(shape,
                                                  ThreadVariant::k256)));
  }
}

// ------------------------------------------------------------------ Eq 4 --

TEST(Eq4Intensity, ClosedFormHolds) {
  // AI = 4*BY*BX/(BY+BX) regardless of the thread count.
  for (const auto& s : batched_strategies()) {
    const double expected = 4.0 * s.by * s.bx / (s.by + s.bx);
    EXPECT_DOUBLE_EQ(arithmetic_intensity(s), expected) << s.name();
  }
}

TEST(Eq4Intensity, KnownValues) {
  EXPECT_DOUBLE_EQ(arithmetic_intensity(strat(TileShape::kSmall)), 32.0);
  EXPECT_DOUBLE_EQ(arithmetic_intensity(strat(TileShape::kMedium)), 64.0);
  EXPECT_DOUBLE_EQ(arithmetic_intensity(strat(TileShape::kLarge)), 128.0);
  EXPECT_DOUBLE_EQ(arithmetic_intensity(strat(TileShape::kHuge)), 256.0);
}

TEST(Eq4Intensity, MonotoneInTileArea) {
  // Larger (squarer) tiles always have higher intensity in the suite.
  double prev = 0.0;
  for (TileShape shape :
       {TileShape::kSmall, TileShape::kMedium, TileShape::kLarge,
        TileShape::kHuge}) {
    const double ai = arithmetic_intensity(strat(shape));
    EXPECT_GT(ai, prev);
    prev = ai;
  }
}

TEST(Eq4Intensity, IndependentOfThreadVariant) {
  for (TileShape shape : all_tile_shapes()) {
    EXPECT_DOUBLE_EQ(
        arithmetic_intensity(batched_strategy(shape, ThreadVariant::k128)),
        arithmetic_intensity(batched_strategy(shape, ThreadVariant::k256)));
  }
}

TEST(Eq4Intensity, TallAndWideEqual) {
  // 128x64 and 64x128 are symmetric in Eq. 4.
  EXPECT_DOUBLE_EQ(arithmetic_intensity(strat(TileShape::kTall)),
                   arithmetic_intensity(strat(TileShape::kWide)));
}

TEST(Eq1Tlp, InvalidDimsThrow) {
  EXPECT_THROW(gemm_tlp(GemmDims{0, 16, 16}, strat(TileShape::kSmall)),
               CheckError);
}

}  // namespace
}  // namespace ctb
