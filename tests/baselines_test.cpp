#include <gtest/gtest.h>

#include "baselines/baselines.hpp"
#include "core/api.hpp"
#include "linalg/gemm_ref.hpp"

namespace ctb {
namespace {

const GpuArch& v100() { return gpu_arch(GpuModel::kV100); }

Matrixf rand_mat(int r, int c, Rng& rng) {
  Matrixf m(static_cast<std::size_t>(r), static_cast<std::size_t>(c));
  fill_random(m, rng);
  return m;
}

struct HostBatch {
  std::vector<Matrixf> a, b, c, ref;
  std::vector<GemmOperands> ops;
  std::vector<GemmDims> dims;
};

HostBatch make_batch(const std::vector<GemmDims>& dims, std::uint64_t seed) {
  HostBatch hb;
  hb.dims = dims;
  Rng rng(seed);
  for (const auto& d : dims) {
    hb.a.push_back(rand_mat(d.m, d.k, rng));
    hb.b.push_back(rand_mat(d.k, d.n, rng));
    hb.c.push_back(rand_mat(d.m, d.n, rng));
    hb.ref.push_back(hb.c.back());
  }
  for (std::size_t i = 0; i < dims.size(); ++i)
    hb.ops.push_back(operands(hb.a[i], hb.b[i], hb.c[i]));
  return hb;
}

void check_against_reference(HostBatch& hb, float alpha, float beta) {
  for (std::size_t i = 0; i < hb.dims.size(); ++i) {
    gemm_naive(hb.a[i], hb.b[i], hb.ref[i], alpha, beta);
    EXPECT_TRUE(allclose(hb.c[i], hb.ref[i])) << "gemm " << i;
  }
}

// --------------------------------------------------- single-GEMM heuristic --

TEST(SingleGemmHeuristic, HugeMatrixGetsHugeTile) {
  EXPECT_EQ(single_gemm_heuristic(GemmDims{5120, 5120, 5120}, v100()).shape,
            TileShape::kHuge);
}

TEST(SingleGemmHeuristic, SmallMatrixGetsSmallTile) {
  // Paper Section 4: "the optimal tile strategy is always prone to small
  // tile" for small matrices.
  EXPECT_EQ(single_gemm_heuristic(GemmDims{128, 128, 64}, v100()).shape,
            TileShape::kSmall);
}

TEST(SingleGemmHeuristic, TinyMatrixStillLaunchable) {
  const auto& s = single_gemm_heuristic(GemmDims{4, 4, 4}, v100());
  EXPECT_EQ(s.shape, TileShape::kSmall);
}

TEST(SingleGemmHeuristic, MidMatrixBalances) {
  // 1024x1024: enough tiles for medium-large tiles to win on reuse.
  const auto& s = single_gemm_heuristic(GemmDims{1024, 1024, 512}, v100());
  EXPECT_GE(static_cast<int>(s.shape), static_cast<int>(TileShape::kMedium));
}

// ----------------------------------------------------------------- default --

TEST(DefaultBaseline, FunctionalCorrectness) {
  HostBatch hb = make_batch({{16, 32, 128}, {64, 48, 64}, {64, 64, 128}}, 1);
  run_default_functional(v100(), hb.ops, 2.0f, 0.5f);
  check_against_reference(hb, 2.0f, 0.5f);
}

TEST(DefaultBaseline, TimeIncludesPerKernelLaunch) {
  const std::vector<GemmDims> dims(10, GemmDims{16, 16, 16});
  const BaselineResult r = run_default_timed(v100(), dims);
  EXPECT_GE(r.time_us, 10 * v100().kernel_launch_us);
}

TEST(DefaultBaseline, ScalesWithBatch) {
  const std::vector<GemmDims> d8(8, GemmDims{64, 64, 64});
  const std::vector<GemmDims> d16(16, GemmDims{64, 64, 64});
  EXPECT_NEAR(run_default_timed(v100(), d16).time_us /
                  run_default_timed(v100(), d8).time_us,
              2.0, 0.1);
}

// --------------------------------------------------------------------- cke --

TEST(CkeBaseline, FasterThanDefaultForSmallGemms) {
  // Many small kernels leave the GPU idle under serial execution.
  const std::vector<GemmDims> dims(16, GemmDims{64, 64, 64});
  const double serial = run_default_timed(v100(), dims).time_us;
  const double cke = run_cke_timed(v100(), dims, 16).time_us;
  EXPECT_LT(cke, serial);
}

TEST(CkeBaseline, MoreStreamsNoSlower) {
  const std::vector<GemmDims> dims(32, GemmDims{32, 32, 64});
  const double s4 = run_cke_timed(v100(), dims, 4).time_us;
  const double s16 = run_cke_timed(v100(), dims, 16).time_us;
  EXPECT_LE(s16, s4 * 1.05);
}

TEST(CkeBaseline, InvalidStreamCountThrows) {
  const std::vector<GemmDims> dims(2, GemmDims{16, 16, 16});
  EXPECT_THROW(run_cke_timed(v100(), dims, 0), CheckError);
}

// ----------------------------------------------------------- same-size API --

TEST(SameSizeBatched, RejectsMixedSizes) {
  // The cublasSgemmBatched restriction the paper calls out.
  const std::vector<GemmDims> dims = {{16, 16, 16}, {32, 16, 16}};
  EXPECT_THROW(run_samesize_batched_timed(v100(), dims), CheckError);
}

TEST(SameSizeBatched, FunctionalCorrectness) {
  HostBatch hb = make_batch(std::vector<GemmDims>(6, GemmDims{48, 40, 56}), 2);
  run_samesize_batched_functional(v100(), hb.ops, 1.0f, 0.0f);
  check_against_reference(hb, 1.0f, 0.0f);
}

TEST(SameSizeBatched, BeatsDefaultForManySmallGemms) {
  const std::vector<GemmDims> dims(64, GemmDims{32, 32, 64});
  EXPECT_LT(run_samesize_batched_timed(v100(), dims).time_us,
            run_default_timed(v100(), dims).time_us);
}

// --------------------------------------------------------- strided batched --

TEST(StridedBatched, FunctionalCorrectness) {
  const GemmDims d{24, 20, 16};
  const int batch = 5;
  Rng rng(10);
  const std::int64_t sa = 1LL * d.m * d.k;
  const std::int64_t sb = 1LL * d.k * d.n;
  const std::int64_t sc = 1LL * d.m * d.n;
  std::vector<float> a(static_cast<std::size_t>(sa * batch));
  std::vector<float> b(static_cast<std::size_t>(sb * batch));
  std::vector<float> c(static_cast<std::size_t>(sc * batch), 0.0f);
  for (float& x : a) x = rng.uniform_float(-1, 1);
  for (float& x : b) x = rng.uniform_float(-1, 1);
  run_strided_batched_functional(v100(), a.data(), b.data(), c.data(), d,
                                 sa, sb, sc, batch, 1.0f, 0.0f);
  for (int i = 0; i < batch; ++i) {
    Matrixf ma(static_cast<std::size_t>(d.m), static_cast<std::size_t>(d.k));
    Matrixf mb(static_cast<std::size_t>(d.k), static_cast<std::size_t>(d.n));
    Matrixf ref(static_cast<std::size_t>(d.m),
                static_cast<std::size_t>(d.n));
    std::copy_n(a.data() + i * sa, sa, ma.data());
    std::copy_n(b.data() + i * sb, sb, mb.data());
    gemm_naive(ma, mb, ref, 1.0f, 0.0f);
    for (int e = 0; e < sc; ++e)
      ASSERT_NEAR(c[static_cast<std::size_t>(i * sc + e)],
                  ref.data()[e], 1e-3f)
          << "gemm " << i;
  }
}

TEST(StridedBatched, ZeroStrideBroadcastsOperand) {
  // stride_a == 0 reuses one A for every GEMM (the cuBLAS convention).
  const GemmDims d{8, 8, 8};
  Rng rng(11);
  Matrixf a(8, 8);
  fill_random(a, rng);
  const std::int64_t sb = 64, sc = 64;
  std::vector<float> b(128), c(128, 0.0f);
  for (float& x : b) x = rng.uniform_float(-1, 1);
  run_strided_batched_functional(v100(), a.data(), b.data(), c.data(), d, 0,
                                 sb, sc, 2, 1.0f, 0.0f);
  // Both outputs used the same A.
  Matrixf mb0(8, 8), mb1(8, 8), r0(8, 8), r1(8, 8);
  std::copy_n(b.data(), 64, mb0.data());
  std::copy_n(b.data() + 64, 64, mb1.data());
  gemm_naive(a, mb0, r0, 1.0f, 0.0f);
  gemm_naive(a, mb1, r1, 1.0f, 0.0f);
  for (int e = 0; e < 64; ++e) {
    ASSERT_NEAR(c[static_cast<std::size_t>(e)], r0.data()[e], 1e-3f);
    ASSERT_NEAR(c[static_cast<std::size_t>(64 + e)], r1.data()[e], 1e-3f);
  }
}

TEST(StridedBatched, AliasingCStrideThrows) {
  const GemmDims d{8, 8, 8};
  std::vector<float> a(64), b(64), c(64);
  EXPECT_THROW(run_strided_batched_functional(v100(), a.data(), b.data(),
                                              c.data(), d, 64, 64, 32, 2,
                                              1.0f, 0.0f),
               CheckError);
}

TEST(StridedBatched, TimedMatchesSameSize) {
  const GemmDims d{32, 32, 64};
  EXPECT_DOUBLE_EQ(
      run_strided_batched_timed(v100(), d, 8).time_us,
      run_samesize_batched_timed(v100(), std::vector<GemmDims>(8, d))
          .time_us);
}

// ------------------------------------------------------------------- magma --

TEST(MagmaBaseline, FunctionalCorrectnessMixedSizes) {
  HostBatch hb =
      make_batch({{16, 32, 128}, {64, 48, 64}, {64, 64, 128}, {8, 8, 8}}, 3);
  run_magma_functional(v100(), hb.ops, 1.5f, -0.5f);
  check_against_reference(hb, 1.5f, -0.5f);
}

TEST(MagmaBaseline, SingleKernelLaunchOverheadOnly) {
  const std::vector<GemmDims> dims(32, GemmDims{16, 16, 16});
  const BaselineResult r = run_magma_timed(v100(), dims);
  // One launch, not 32.
  EXPECT_LT(r.time_us, run_default_timed(v100(), dims).time_us);
}

TEST(MagmaBaseline, BubbleBlocksAppearForMixedSizes) {
  const std::vector<GemmDims> dims = {{16, 16, 16}, {128, 128, 16}};
  const BaselineResult r = run_magma_timed(v100(), dims);
  EXPECT_GT(r.sim.bubble_blocks, 0);
}

TEST(MagmaBaseline, NoBubblesForEqualSizes) {
  const std::vector<GemmDims> dims(8, GemmDims{64, 64, 32});
  const BaselineResult r = run_magma_timed(v100(), dims);
  EXPECT_EQ(r.sim.bubble_blocks, 0);
}

// --------------------------------------- framework versus baselines (shape) --

TEST(FrameworkVsBaselines, BeatsMagmaOnSmallBatchSmallGemms) {
  // The paper's headline case: small matrices, small batch.
  const std::vector<GemmDims> dims(4, GemmDims{128, 128, 256});
  const double magma = run_magma_timed(v100(), dims).time_us;
  PlannerConfig config;
  const BatchedGemmPlanner planner(config);
  const PlanSummary s = planner.plan(dims);
  const double ours = time_plan(v100(), s.plan, dims).time_us;
  EXPECT_LT(ours, magma);
}

TEST(FrameworkVsBaselines, BeatsDefaultAcrossTheBoard) {
  for (int batch : {4, 16, 64}) {
    const std::vector<GemmDims> dims(static_cast<std::size_t>(batch),
                                     GemmDims{64, 64, 128});
    const double dflt = run_default_timed(v100(), dims).time_us;
    const BatchedGemmPlanner planner{PlannerConfig{}};
    const double ours =
        time_plan(v100(), planner.plan(dims).plan, dims).time_us;
    EXPECT_LT(ours, dflt) << "batch " << batch;
  }
}

TEST(FrameworkVsBaselines, ComparableToMagmaOnLargeUniformBatch) {
  // When everything is big, the coordination advantage shrinks (paper
  // observation 3); we should never be dramatically worse.
  const std::vector<GemmDims> dims(64, GemmDims{512, 512, 512});
  const double magma = run_magma_timed(v100(), dims).time_us;
  const BatchedGemmPlanner planner{PlannerConfig{}};
  const double ours =
      time_plan(v100(), planner.plan(dims).plan, dims).time_us;
  EXPECT_LT(ours, magma * 1.1);
}

}  // namespace
}  // namespace ctb
