#include <gtest/gtest.h>

#include "core/api.hpp"
#include "kernels/functional.hpp"
#include "linalg/gemm_ref.hpp"

namespace ctb {
namespace {

Matrixf rand_mat(int r, int c, Rng& rng) {
  Matrixf m(static_cast<std::size_t>(r), static_cast<std::size_t>(c));
  fill_random(m, rng);
  return m;
}

/// Explicit transpose for building references.
Matrixf transpose(const Matrixf& m) {
  Matrixf t(m.cols(), m.rows());
  for (std::size_t i = 0; i < m.rows(); ++i)
    for (std::size_t j = 0; j < m.cols(); ++j) t(j, i) = m(i, j);
  return t;
}

TEST(GemmDimsFor, DerivesLogicalShapes) {
  Matrixf a(4, 7), b(7, 5);         // NN
  Matrixf at(7, 4), bt(5, 7);       // stored transposed
  EXPECT_EQ(gemm_dims_for(Op::kN, Op::kN, a, b), (GemmDims{4, 5, 7}));
  EXPECT_EQ(gemm_dims_for(Op::kT, Op::kN, at, b), (GemmDims{4, 5, 7}));
  EXPECT_EQ(gemm_dims_for(Op::kN, Op::kT, a, bt), (GemmDims{4, 5, 7}));
  EXPECT_EQ(gemm_dims_for(Op::kT, Op::kT, at, bt), (GemmDims{4, 5, 7}));
}

TEST(GemmDimsFor, InnerMismatchThrows) {
  Matrixf a(4, 7), b(6, 5);
  EXPECT_THROW(gemm_dims_for(Op::kN, Op::kN, a, b), CheckError);
}

TEST(GemmNaiveOps, MatchesUntransposedReference) {
  Rng rng(1);
  const Matrixf a = rand_mat(9, 13, rng);
  const Matrixf b = rand_mat(13, 11, rng);
  Matrixf c_ref(9, 11), c_nt(9, 11), c_tn(9, 11), c_tt(9, 11);
  gemm_naive(a, b, c_ref, 1.5f, 0.0f);

  const Matrixf at = transpose(a);
  const Matrixf bt = transpose(b);
  gemm_naive_ops(Op::kN, Op::kT, a, bt, c_nt, 1.5f, 0.0f);
  gemm_naive_ops(Op::kT, Op::kN, at, b, c_tn, 1.5f, 0.0f);
  gemm_naive_ops(Op::kT, Op::kT, at, bt, c_tt, 1.5f, 0.0f);
  EXPECT_TRUE(allclose(c_nt, c_ref));
  EXPECT_TRUE(allclose(c_tn, c_ref));
  EXPECT_TRUE(allclose(c_tt, c_ref));
}

struct OpCase {
  Op op_a, op_b;
};

class FunctionalTranspose : public ::testing::TestWithParam<OpCase> {};

TEST_P(FunctionalTranspose, KernelMatchesReferenceAllStrategies) {
  const auto [op_a, op_b] = GetParam();
  Rng rng(static_cast<std::uint64_t>(17 + 2 * static_cast<int>(op_a) +
                                     static_cast<int>(op_b)));
  const GemmDims d{50, 70, 40};
  // Logical operands, then store per op.
  const Matrixf a_logical = rand_mat(d.m, d.k, rng);
  const Matrixf b_logical = rand_mat(d.k, d.n, rng);
  const Matrixf a_store =
      op_a == Op::kN ? a_logical : transpose(a_logical);
  const Matrixf b_store =
      op_b == Op::kN ? b_logical : transpose(b_logical);

  Matrixf ref(static_cast<std::size_t>(d.m), static_cast<std::size_t>(d.n));
  gemm_naive(a_logical, b_logical, ref, 1.0f, 0.0f);

  for (int id = 0; id < 12; ++id) {
    const TilingStrategy& s = batched_strategy_by_id(id);
    Matrixf c(static_cast<std::size_t>(d.m), static_cast<std::size_t>(d.n));
    const GemmOperands g = operands(a_store, b_store, c, op_a, op_b);
    run_single_gemm(s, g, 1.0f, 0.0f);
    EXPECT_TRUE(allclose(c, ref))
        << s.name() << " ops " << to_string(op_a) << to_string(op_b);
  }
}

INSTANTIATE_TEST_SUITE_P(Ops, FunctionalTranspose,
                         ::testing::Values(OpCase{Op::kN, Op::kN},
                                           OpCase{Op::kN, Op::kT},
                                           OpCase{Op::kT, Op::kN},
                                           OpCase{Op::kT, Op::kT}));

TEST(BatchedGemmEntries, MixedOpsPerEntry) {
  // One batch where each GEMM uses a different op pair — the QK^T pattern
  // of attention is op_b == kT with K stored row-major.
  Rng rng(23);
  const GemmDims d1{32, 48, 16}, d2{40, 24, 56};
  const Matrixf a1 = rand_mat(d1.m, d1.k, rng);
  const Matrixf b1t = rand_mat(d1.n, d1.k, rng);  // stores B^T
  const Matrixf a2t = rand_mat(d2.k, d2.m, rng);  // stores A^T
  const Matrixf b2 = rand_mat(d2.k, d2.n, rng);
  Matrixf c1(static_cast<std::size_t>(d1.m), static_cast<std::size_t>(d1.n));
  Matrixf c2(static_cast<std::size_t>(d2.m), static_cast<std::size_t>(d2.n));

  const std::vector<GemmEntry> entries = {
      {&a1, &b1t, &c1, Op::kN, Op::kT},
      {&a2t, &b2, &c2, Op::kT, Op::kN},
  };
  batched_gemm(entries, 2.0f, 0.0f);

  Matrixf ref1(c1.rows(), c1.cols()), ref2(c2.rows(), c2.cols());
  gemm_naive_ops(Op::kN, Op::kT, a1, b1t, ref1, 2.0f, 0.0f);
  gemm_naive_ops(Op::kT, Op::kN, a2t, b2, ref2, 2.0f, 0.0f);
  EXPECT_TRUE(allclose(c1, ref1));
  EXPECT_TRUE(allclose(c2, ref2));
}

TEST(BatchedGemmEntries, ShapeMismatchThrows) {
  Matrixf a(4, 8), b(9, 4), c(4, 4);
  const std::vector<GemmEntry> entries = {{&a, &b, &c, Op::kN, Op::kN}};
  EXPECT_THROW(batched_gemm(entries, 1.0f, 0.0f), CheckError);
}

TEST(Operands, TransposeAwareValidation) {
  Matrixf a(8, 4), b(16, 8), c(4, 16);
  // Logical: op_a = kT makes A 4x8; B 16x8 under kT is 8x16 logical.
  const GemmOperands g = operands(a, b, c, Op::kT, Op::kT);
  EXPECT_EQ(g.dims.m, 4);
  EXPECT_EQ(g.dims.n, 16);
  EXPECT_EQ(g.dims.k, 8);
}

TEST(BatchedGemmEntries, Fp16WithTransposeOps) {
  // FP16 tensor-core semantics compose with transpose modes.
  Rng rng(71);
  const GemmDims d{24, 40, 32};
  const Matrixf a = rand_mat(d.m, d.k, rng);
  const Matrixf bt = rand_mat(d.n, d.k, rng);  // stores B^T
  Matrixf c(static_cast<std::size_t>(d.m), static_cast<std::size_t>(d.n));
  const std::vector<GemmEntry> entries = {{&a, &bt, &c, Op::kN, Op::kT}};
  PlannerConfig config;
  config.precision = Precision::kFp16;
  batched_gemm(entries, 1.0f, 0.0f, config);

  // Reference: transpose explicitly, then fp16 reference.
  Matrixf b(static_cast<std::size_t>(d.k), static_cast<std::size_t>(d.n));
  for (std::size_t i = 0; i < b.rows(); ++i)
    for (std::size_t j = 0; j < b.cols(); ++j) b(i, j) = bt(j, i);
  Matrixf ref(c.rows(), c.cols());
  gemm_naive_fp16(a, b, ref, 1.0f, 0.0f);
  EXPECT_LT(max_abs_diff(c, ref), 0.05f);
}

TEST(OpNames, Stringify) {
  EXPECT_STREQ(to_string(Op::kN), "N");
  EXPECT_STREQ(to_string(Op::kT), "T");
}

}  // namespace
}  // namespace ctb
