#include <gtest/gtest.h>

#include "gpusim/arch.hpp"
#include "gpusim/timing_model.hpp"
#include "util/assert.hpp"

namespace ctb {
namespace {

const GpuArch& v100() { return gpu_arch(GpuModel::kV100); }

TileWork make_tile(int iters, int fmas, std::int64_t bytes) {
  TileWork t;
  t.iters = iters;
  t.fmas_per_thread_iter = fmas;
  t.bytes_per_iter = bytes;
  t.epilogue_bytes = 1024;
  t.epilogue_flops = 512;
  t.flops = 2LL * iters * fmas * 256;
  return t;
}

BlockWork make_block(std::vector<TileWork> tiles, int threads = 256) {
  BlockWork b;
  b.threads = threads;
  b.active_threads = threads;
  b.regs_per_thread = 64;
  b.smem_bytes = 8192;
  b.tiles = std::move(tiles);
  return b;
}

BlockContext ctx(int on_sm = 1, int total = 1, int warps = 8) {
  return BlockContext{on_sm, total, warps};
}

TEST(TimingModel, BubbleBlockCostsOnlySchedOverhead) {
  const BlockWork bubble = make_block({});
  const BlockCost c = block_cost(v100(), bubble, ctx());
  EXPECT_DOUBLE_EQ(c.total_cycles, v100().block_sched_overhead_cycles);
  EXPECT_DOUBLE_EQ(c.mainloop_cycles, 0.0);
}

TEST(TimingModel, CostGrowsWithIterations) {
  const BlockCost c1 =
      block_cost(v100(), make_block({make_tile(8, 128, 4096)}), ctx());
  const BlockCost c2 =
      block_cost(v100(), make_block({make_tile(64, 128, 4096)}), ctx());
  EXPECT_GT(c2.total_cycles, c1.total_cycles);
  // Main loop should scale roughly 8x.
  EXPECT_NEAR(c2.mainloop_cycles / c1.mainloop_cycles, 8.0, 0.01);
}

TEST(TimingModel, SharingAnSmSlowsABlockDown) {
  const BlockWork b = make_block({make_tile(32, 128, 4096)});
  const double alone = block_cost(v100(), b, ctx(1, 1, 8)).total_cycles;
  const double shared = block_cost(v100(), b, ctx(4, 4, 32)).total_cycles;
  EXPECT_GT(shared, alone);
}

TEST(TimingModel, GlobalBandwidthContentionSlowsMemoryBoundBlocks) {
  // Memory-heavy tile: few FMAs, many bytes.
  const BlockWork b = make_block({make_tile(32, 8, 16384)});
  const double few = block_cost(v100(), b, ctx(1, 10, 32)).total_cycles;
  const double many = block_cost(v100(), b, ctx(1, 1000, 32)).total_cycles;
  EXPECT_GT(many, few);
}

TEST(TimingModel, MoreWarpsImproveLatencyHiding) {
  const BlockWork b = make_block({make_tile(32, 32, 4096)});
  const BlockCost low = block_cost(v100(), b, ctx(1, 1, 2));
  const BlockCost high = block_cost(v100(), b, ctx(1, 1, 64));
  EXPECT_LT(low.hide_factor, high.hide_factor);
  EXPECT_GT(low.total_cycles, high.total_cycles);
}

TEST(TimingModel, HideFactorSaturatesAtOne) {
  const BlockWork b = make_block({make_tile(32, 512, 4096)});
  const BlockCost c = block_cost(v100(), b, ctx(1, 1, 64));
  EXPECT_DOUBLE_EQ(c.hide_factor, 1.0);
}

TEST(TimingModel, ChainingTilesAmortizesPipelineFill) {
  // Two tiles in one block pay one fill; two blocks pay two. The chained
  // version must cost less than 2x the single (minus one sched overhead).
  const TileWork t = make_tile(4, 128, 4096);
  const double single =
      block_cost(v100(), make_block({t}), ctx()).total_cycles;
  const double chained =
      block_cost(v100(), make_block({t, t}), ctx()).total_cycles;
  EXPECT_LT(chained, 2.0 * single - v100().block_sched_overhead_cycles);
  // But the chain still does both tiles' work.
  EXPECT_GT(chained, single);
}

TEST(TimingModel, SwitchOverheadCountsPerExtraTile) {
  const TileWork t = make_tile(4, 128, 4096);
  const BlockCost c3 = block_cost(v100(), make_block({t, t, t}), ctx());
  EXPECT_DOUBLE_EQ(c3.switch_cycles,
                   2.0 * v100().tile_switch_overhead_cycles);
}

TEST(TimingModel, ComputeBoundBlockInsensitiveToBandwidthContention) {
  // Heavy FMAs, few bytes: stage = compute; more total residents should not
  // change the stage (only the small exposed term via hide, held constant).
  const BlockWork b = make_block({make_tile(32, 512, 256)});
  const double a = block_cost(v100(), b, ctx(1, 1, 64)).total_cycles;
  const double c = block_cost(v100(), b, ctx(1, 100, 64)).total_cycles;
  EXPECT_NEAR(a, c, a * 0.05);
}

TEST(TimingModel, SubPartitionCapLimitsSmallBlocks) {
  // A 64-thread block (2 warps) can use at most 2 sub-partitions of lanes;
  // the same work in a 256-thread block issues at the full SM rate.
  TileWork t64 = make_tile(32, 512, 256);
  TileWork t256 = make_tile(32, 128, 256);  // same block-wide FMA count
  BlockWork b64 = make_block({t64}, 64);
  b64.active_threads = 64;
  BlockWork b256 = make_block({t256}, 256);
  const double c64 =
      block_cost(v100(), b64, ctx(1, 1, 64)).compute_cycles_per_iter;
  const double c256 =
      block_cost(v100(), b256, ctx(1, 1, 64)).compute_cycles_per_iter;
  EXPECT_NEAR(c64 / c256, 2.0, 0.01);  // 32 lanes vs 64 lanes
}

TEST(TimingModel, IdleThreadsDoNotAddCompute) {
  // Same tile, one block with half the threads active: fewer FMAs issue.
  BlockWork full = make_block({make_tile(32, 128, 4096)});
  BlockWork half = full;
  half.active_threads = 128;
  const BlockCost cf = block_cost(v100(), full, ctx(1, 1, 8));
  const BlockCost ch = block_cost(v100(), half, ctx(1, 1, 8));
  EXPECT_LT(ch.compute_cycles_per_iter, cf.compute_cycles_per_iter);
}

TEST(TimingModel, ZeroIterTileRejected) {
  BlockWork b = make_block({make_tile(0, 128, 4096)});
  EXPECT_THROW(block_cost(v100(), b, ctx()), CheckError);
}

TEST(TimingModel, IlpWeightClampedToRange) {
  TileWork shallow = make_tile(1, 1, 64);
  TileWork deep = make_tile(1, 4096, 64);
  EXPECT_DOUBLE_EQ(tile_ilp_weight(shallow), 0.5);
  EXPECT_DOUBLE_EQ(tile_ilp_weight(deep), 2.0);
  TileWork mid = make_tile(1, 128, 64);
  EXPECT_DOUBLE_EQ(tile_ilp_weight(mid), 1.0);
}

TEST(TimingModel, CodeEfficiencyScalesComputeOnly) {
  // A 0.5-efficiency kernel doubles its compute cycles per iteration but
  // leaves memory-bound behaviour unchanged.
  BlockWork tuned = make_block({make_tile(16, 512, 64)});  // compute bound
  BlockWork generic = tuned;
  generic.code_efficiency = 0.5;
  const BlockCost ct = block_cost(v100(), tuned, ctx(1, 1, 64));
  const BlockCost cg = block_cost(v100(), generic, ctx(1, 1, 64));
  EXPECT_NEAR(cg.compute_cycles_per_iter / ct.compute_cycles_per_iter, 2.0,
              1e-9);
  EXPECT_GT(cg.total_cycles, ct.total_cycles);
}

TEST(TimingModel, PhaseSerializedBlockSlowerWhenAlone) {
  // A non-double-buffered block alone on an SM cannot hide its own loads.
  BlockWork db = make_block({make_tile(32, 128, 4096)});
  BlockWork ndb = db;
  ndb.double_buffered = false;
  const double t_db = block_cost(v100(), db, ctx(1, 1, 8)).total_cycles;
  const double t_ndb = block_cost(v100(), ndb, ctx(1, 1, 8)).total_cycles;
  EXPECT_GT(t_ndb, t_db * 1.2);
}

TEST(TimingModel, PhaseSerializedPenaltyShrinksWithCoResidency) {
  // Other blocks' warps hide a phase-serialized block's exposure.
  BlockWork ndb = make_block({make_tile(32, 128, 4096)});
  ndb.double_buffered = false;
  const double alone =
      block_cost(v100(), ndb, ctx(1, 1, 8)).hide_factor;
  const double packed =
      block_cost(v100(), ndb, ctx(4, 4, 64)).hide_factor;
  EXPECT_GT(packed, alone);
}

TEST(TimingModel, L2ServesDuplicateBytes) {
  // Same total bytes; one tile marks most of them as L2-resident re-reads.
  TileWork all_dram = make_tile(32, 8, 16384);
  all_dram.dram_bytes_per_iter = 16384;
  TileWork mostly_l2 = make_tile(32, 8, 16384);
  mostly_l2.dram_bytes_per_iter = 1024;
  // Heavy global contention makes DRAM the bottleneck for the first tile.
  const BlockContext heavy{1, 500, 64};
  const double t_dram =
      block_cost(v100(), make_block({all_dram}), heavy).total_cycles;
  const double t_l2 =
      block_cost(v100(), make_block({mostly_l2}), heavy).total_cycles;
  EXPECT_GT(t_dram, t_l2);
}

TEST(TimingModel, DramBytesDefaultToTotalBytes) {
  // dram_bytes_per_iter == -1 means "no sharing information": behave as if
  // every byte came from DRAM.
  TileWork unset = make_tile(16, 8, 8192);
  TileWork explicit_full = make_tile(16, 8, 8192);
  explicit_full.dram_bytes_per_iter = 8192;
  const BlockContext c{1, 100, 64};
  EXPECT_DOUBLE_EQ(
      block_cost(v100(), make_block({unset}), c).total_cycles,
      block_cost(v100(), make_block({explicit_full}), c).total_cycles);
}

TEST(TimingModel, CostBreakdownSumsToTotal) {
  const BlockWork b = make_block({make_tile(16, 128, 4096)});
  const BlockCost c = block_cost(v100(), b, ctx(2, 10, 16));
  EXPECT_NEAR(c.total_cycles,
              c.sched_cycles + c.fill_cycles + c.mainloop_cycles +
                  c.epilogue_cycles + c.switch_cycles,
              1e-9);
}

}  // namespace
}  // namespace ctb
