// Chaos and correctness suite for ctb::service::PlanService (DESIGN.md §10):
// inline and deadline-bounded serving, degraded-mode fallback, deterministic
// retry/backoff on the virtual clock, quarantine lifecycle, the membership
// filter, env knobs, concurrent shard hammering, and the failpoint registry
// itself. Execution-level bit-exactness of degraded/upgraded plans is
// covered in plan_property_test and fault_injection_test; this file owns
// the service state machine.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/api.hpp"
#include "core/plan_io.hpp"
#include "kernels/functional.hpp"
#include "service/failpoint.hpp"
#include "service/plan_service.hpp"
#include "telemetry/trace.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace ctb {
namespace {

using service::FailAction;
using service::FailpointSpec;
using service::PlanService;
using service::PlanServiceConfig;
using service::PlanServiceError;
using service::ServedPlan;
using service::ServeState;
using service::VirtualClock;
using telemetry::FlightEventView;
using telemetry::FlightKind;

#ifdef CTB_TELEMETRY_ENABLED
constexpr bool kTelemetryCompiledIn = true;
#else
constexpr bool kTelemetryCompiledIn = false;
#endif

std::vector<GemmDims> small_batch(int seed) {
  // Distinct per seed so tests control hits vs misses precisely.
  return {GemmDims{16 + seed, 24, 32}, GemmDims{8, 16 + seed, 48}};
}

// Every flight event recorded under one trace id, across all threads. The
// flight recorder is always on while compiled in, so chaos tests can assert
// that degraded/quarantined responses left a correlated trail without any
// telemetry setup.
std::vector<FlightEventView> trail_of(std::uint64_t id) {
  std::vector<FlightEventView> trail;
  if (id == 0) return trail;
  for (const FlightEventView& e : telemetry::flight_events())
    if (e.trace == id) trail.push_back(e);
  return trail;
}

bool trail_has(const std::vector<FlightEventView>& trail, FlightKind kind,
               const std::string& detail_substr = "") {
  for (const FlightEventView& e : trail)
    if (e.kind == kind &&
        std::string(e.detail).find(detail_substr) != std::string::npos)
      return true;
  return false;
}

// ---------------------------------------------------------------------------
// Inline serving basics
// ---------------------------------------------------------------------------

TEST(PlanService, ColdMissPlansInlineThenHits) {
  PlanServiceConfig cfg;
  cfg.deadline_us = 0;
  PlanService svc(cfg);
  const auto batch = small_batch(1);

  const ServedPlan first = svc.get(batch);
  ASSERT_TRUE(first.summary != nullptr);
  EXPECT_EQ(first.state, ServeState::kPlanned);
  EXPECT_FALSE(first.degraded());
  validate_plan(first.summary->plan, batch);

  const ServedPlan second = svc.get(batch);
  ASSERT_TRUE(second.summary != nullptr);
  EXPECT_EQ(second.state, ServeState::kHit);
  // Hits hand back the same cached object, not a re-plan.
  EXPECT_EQ(second.summary.get(), first.summary.get());

  const service::ServiceStats stats = svc.stats();
  EXPECT_EQ(stats.admitted, 2);
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.degraded, 0);
  EXPECT_EQ(svc.size(), 1u);
}

TEST(PlanService, FilterShortCircuitsDefiniteMisses) {
  PlanServiceConfig cfg;
  cfg.deadline_us = 0;
  PlanService svc(cfg);
  // A fresh service has an empty filter: every cold lookup is a definite
  // miss decided without touching a shard lock.
  (void)svc.get(small_batch(1));
  (void)svc.get(small_batch(2));
  EXPECT_EQ(svc.stats().filter_rejects, 2);
  // Hits never consult the reject path.
  (void)svc.get(small_batch(1));
  EXPECT_EQ(svc.stats().filter_rejects, 2);
  EXPECT_EQ(svc.stats().hits, 1);
}

TEST(PlanService, ClearDropsEntriesAndFilterBits) {
  PlanServiceConfig cfg;
  cfg.deadline_us = 0;
  PlanService svc(cfg);
  const auto batch = small_batch(3);
  (void)svc.get(batch);
  ASSERT_EQ(svc.size(), 1u);
  svc.clear();
  EXPECT_EQ(svc.size(), 0u);
  const ServedPlan again = svc.get(batch);
  EXPECT_EQ(again.state, ServeState::kPlanned);
  // The filter was reset too, so the second cold pass is again a definite
  // miss, not a false positive from stale bits.
  EXPECT_EQ(svc.stats().filter_rejects, 2);
}

TEST(PlanService, DegenerateInputsThrowCheckError) {
  PlanService svc;
  EXPECT_THROW(svc.get({}), CheckError);
  const std::vector<GemmDims> bad = {GemmDims{0, 4, 4}};
  EXPECT_THROW(svc.get(bad), CheckError);
}

// ---------------------------------------------------------------------------
// Env knobs
// ---------------------------------------------------------------------------

TEST(PlanService, EnvKnobsConfigureShardsAndDeadline) {
  ::setenv("CTB_PLAN_SHARDS", "4", 1);
  ::setenv("CTB_PLAN_DEADLINE_US", "1234", 1);
  {
    PlanService svc;  // defaults: shards/deadline from the environment
    EXPECT_EQ(svc.shard_count(), 4);
    EXPECT_EQ(svc.deadline_us(), 1234);
  }
  {
    PlanServiceConfig cfg;
    cfg.shards = 3;
    cfg.deadline_us = 0;  // explicit config wins over the environment
    PlanService svc(cfg);
    EXPECT_EQ(svc.shard_count(), 3);
    EXPECT_EQ(svc.deadline_us(), 0);
  }
  ::unsetenv("CTB_PLAN_SHARDS");
  ::unsetenv("CTB_PLAN_DEADLINE_US");
  PlanService svc;
  EXPECT_EQ(svc.shard_count(), 8);  // documented defaults
  EXPECT_EQ(svc.deadline_us(), 0);
}

// ---------------------------------------------------------------------------
// Deadline-bounded serving on the virtual clock
// ---------------------------------------------------------------------------

TEST(PlanService, DeadlineMissServesFallbackNowAndUpgradesAsync) {
  VirtualClock clock;
  PlanServiceConfig cfg;
  cfg.deadline_us = 500;
  cfg.clock = &clock;
  const BatchedGemmPlanner slow_planner(cfg.planner);
  cfg.planner_fn = [&](std::span<const GemmDims> dims) {
    clock.advance(10'000);  // every full planning blows the deadline
    return slow_planner.plan(dims);
  };
  PlanService svc(cfg);
  const auto batch = small_batch(5);

  const ServedPlan degraded = svc.get(batch);
  ASSERT_TRUE(degraded.summary != nullptr);
  EXPECT_EQ(degraded.state, ServeState::kDegraded);
  validate_plan(degraded.summary->plan, batch);
  // The fallback is the threshold-only heuristic, served immediately.
  EXPECT_EQ(degraded.summary->heuristic, BatchingHeuristic::kThreshold);
  // The degraded response carries its trace id, and that trace's flight
  // trail records both the serve and the deadline miss that caused it.
  if (kTelemetryCompiledIn) {
    ASSERT_NE(degraded.trace_id, 0u);
    const auto trail = trail_of(degraded.trace_id);
    EXPECT_TRUE(trail_has(trail, FlightKind::kServe, "degraded"));
    EXPECT_TRUE(trail_has(trail, FlightKind::kDeadlineMiss));
  }

  svc.drain();
  const ServedPlan upgraded = svc.get(batch);
  ASSERT_TRUE(upgraded.summary != nullptr);
  EXPECT_EQ(upgraded.state, ServeState::kHit);
  validate_plan(upgraded.summary->plan, batch);

  const service::ServiceStats stats = svc.stats();
  EXPECT_EQ(stats.admitted, 2);
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.degraded, 1);
  EXPECT_EQ(stats.deadline_misses, 1);
  EXPECT_EQ(stats.upgraded, 1);
  EXPECT_EQ(svc.generation(), 1u);
}

TEST(PlanService, FastPlannerMeetsDeadlineNoDegradation) {
  VirtualClock clock;
  PlanServiceConfig cfg;
  cfg.deadline_us = 500;
  cfg.clock = &clock;  // nothing advances it: the planner is "instant"
  PlanService svc(cfg);
  const auto batch = small_batch(6);

  const ServedPlan first = svc.get(batch);
  ASSERT_TRUE(first.summary != nullptr);
  EXPECT_EQ(first.state, ServeState::kPlanned);
  svc.drain();
  const service::ServiceStats stats = svc.stats();
  EXPECT_EQ(stats.degraded, 0);
  EXPECT_EQ(stats.deadline_misses, 0);
  EXPECT_EQ(stats.upgraded, 0);
  EXPECT_EQ(svc.generation(), 0u);
  EXPECT_EQ(svc.get(batch).state, ServeState::kHit);
}

// ---------------------------------------------------------------------------
// Retry with deterministic backoff
// ---------------------------------------------------------------------------

TEST(PlanService, TransientFailuresRetryWithDeterministicBackoff) {
  VirtualClock clock;
  PlanServiceConfig cfg;
  cfg.deadline_us = 0;
  cfg.clock = &clock;
  cfg.max_retries = 2;
  cfg.backoff_base_us = 100;
  auto failures_left = std::make_shared<std::atomic<int>>(2);
  const BatchedGemmPlanner planner(cfg.planner);
  cfg.planner_fn = [&planner,
                    failures_left](std::span<const GemmDims> dims) {
    if (failures_left->fetch_sub(1) > 0)
      throw CheckError("transient planner outage");
    return planner.plan(dims);
  };
  PlanService svc(cfg);
  const auto batch = small_batch(7);

  const ServedPlan served = svc.get(batch);
  ASSERT_TRUE(served.summary != nullptr);
  EXPECT_EQ(served.state, ServeState::kPlanned);
  EXPECT_EQ(svc.stats().retried, 2);
  EXPECT_EQ(svc.stats().degraded, 0);
  // Exponential backoff on the virtual clock: 100 << 0 then 100 << 1.
  EXPECT_EQ(clock.now_us(), 300);
}

// ---------------------------------------------------------------------------
// Quarantine lifecycle
// ---------------------------------------------------------------------------

TEST(PlanService, RepeatedFailuresQuarantineThenReleaseRecovers) {
  PlanServiceConfig cfg;
  cfg.deadline_us = 0;
  cfg.max_retries = 0;
  cfg.quarantine_threshold = 2;
  auto broken = std::make_shared<std::atomic<bool>>(true);
  auto calls = std::make_shared<std::atomic<int>>(0);
  const BatchedGemmPlanner planner(cfg.planner);
  cfg.planner_fn = [&planner, broken,
                    calls](std::span<const GemmDims> dims) {
    calls->fetch_add(1);
    if (broken->load()) throw CheckError("planner down");
    return planner.plan(dims);
  };
  PlanService svc(cfg);
  const auto batch = small_batch(8);

  // Episode 1: cold miss fails -> degraded entry.
  EXPECT_EQ(svc.get(batch).state, ServeState::kDegraded);
  EXPECT_FALSE(svc.is_quarantined(batch));
  // Episode 2: the degraded hit re-attempts the upgrade, fails again ->
  // the signature crosses the threshold and is quarantined. In inline mode
  // the failing upgrade runs on the request thread, so the quarantine
  // transition lands in the requesting trace's flight trail.
  const ServedPlan crossing = svc.get(batch);
  EXPECT_EQ(crossing.state, ServeState::kDegraded);
  EXPECT_TRUE(svc.is_quarantined(batch));
  EXPECT_EQ(svc.stats().quarantined, 1);
  if (kTelemetryCompiledIn) {
    ASSERT_NE(crossing.trace_id, 0u);
    const auto trail = trail_of(crossing.trace_id);
    EXPECT_TRUE(trail_has(trail, FlightKind::kServe, "degraded"));
    EXPECT_TRUE(trail_has(trail, FlightKind::kQuarantine));
  }

  // Quarantined serving never invokes the full planner again.
  const int calls_before = calls->load();
  const ServedPlan held = svc.get(batch);
  EXPECT_EQ(held.state, ServeState::kQuarantined);
  if (kTelemetryCompiledIn) {
    EXPECT_TRUE(
        trail_has(trail_of(held.trace_id), FlightKind::kServe, "quarantined"));
  }
  EXPECT_EQ(svc.get(batch).state, ServeState::kQuarantined);
  EXPECT_EQ(calls->load(), calls_before);

  // Operator fixes the planner and lifts quarantine: the next lookup
  // upgrades the entry and the one after that is an ordinary hit.
  broken->store(false);
  EXPECT_EQ(svc.release_quarantined(), 1u);
  if (kTelemetryCompiledIn) {
    EXPECT_TRUE(trail_has(telemetry::flight_events(),
                          FlightKind::kQuarantineRelease));
  }
  EXPECT_FALSE(svc.is_quarantined(batch));
  const ServedPlan upgraded = svc.get(batch);
  EXPECT_EQ(upgraded.state, ServeState::kUpgraded);
  validate_plan(upgraded.summary->plan, batch);
  EXPECT_EQ(svc.generation(), 1u);
  EXPECT_EQ(svc.get(batch).state, ServeState::kHit);
}

// ---------------------------------------------------------------------------
// Concurrent shard hammering
// ---------------------------------------------------------------------------

TEST(PlanService, ConcurrentInlineHammeringStaysConsistent) {
  constexpr int kRequests = 96;
  constexpr int kDistinct = 12;
  PlanServiceConfig cfg;
  cfg.deadline_us = 0;
  cfg.shards = 4;
  PlanService svc(cfg);
  std::vector<std::vector<GemmDims>> pool;
  for (int i = 0; i < kDistinct; ++i) pool.push_back(small_batch(i));

  std::vector<ServedPlan> results(kRequests);
  ScopedParallelThreads guard(4);
  parallel_for(kRequests, [&](long long i) {
    results[static_cast<std::size_t>(i)] =
        svc.get(pool[static_cast<std::size_t>(i) % pool.size()]);
  });

  for (int i = 0; i < kRequests; ++i) {
    ASSERT_TRUE(results[i].summary != nullptr) << "request " << i;
    EXPECT_FALSE(results[i].degraded()) << "request " << i;
    validate_plan(results[i].summary->plan,
                  pool[static_cast<std::size_t>(i) % pool.size()]);
  }
  const service::ServiceStats stats = svc.stats();
  EXPECT_EQ(stats.admitted, kRequests);
  EXPECT_EQ(stats.hits + stats.misses, kRequests);
  // Concurrent misses on one signature may each plan (they race to upsert),
  // but the cache converges to exactly one entry per distinct batch.
  EXPECT_EQ(svc.size(), static_cast<std::size_t>(kDistinct));
}

TEST(PlanService, ConcurrentDeadlineMissesJoinOneUpgradeJob) {
  constexpr int kCallers = 8;
  VirtualClock clock;
  PlanServiceConfig cfg;
  cfg.deadline_us = 200;
  cfg.clock = &clock;
  const BatchedGemmPlanner planner(cfg.planner);
  cfg.planner_fn = [&](std::span<const GemmDims> dims) {
    clock.advance(5'000);
    return planner.plan(dims);
  };
  PlanService svc(cfg);
  const auto batch = small_batch(2);

  std::vector<ServedPlan> results(kCallers);
  ScopedParallelThreads guard(4);
  parallel_for(kCallers, [&](long long i) {
    results[static_cast<std::size_t>(i)] = svc.get(batch);
  });
  svc.drain();

  for (int i = 0; i < kCallers; ++i) {
    ASSERT_TRUE(results[i].summary != nullptr) << "caller " << i;
    validate_plan(results[i].summary->plan, batch);
  }
  // After the dust settles the entry is fully upgraded and serves as a hit.
  EXPECT_EQ(svc.get(batch).state, ServeState::kHit);
  EXPECT_EQ(svc.size(), 1u);
}

// ---------------------------------------------------------------------------
// PlanCache service primitives
// ---------------------------------------------------------------------------

TEST(PlanCacheService, LookupPeekUpsertContract) {
  PlannerConfig config;
  config.policy = BatchingPolicy::kThresholdOnly;
  PlanCache cache(config);
  const BatchedGemmPlanner planner(config);
  const auto batch = small_batch(4);
  constexpr std::uint64_t kSig = 42;

  EXPECT_EQ(cache.peek(kSig), nullptr);
  EXPECT_EQ(cache.hits(), 0);
  EXPECT_EQ(cache.misses(), 0);

  EXPECT_EQ(cache.lookup(kSig), nullptr);
  EXPECT_EQ(cache.misses(), 1);

  const auto stored = cache.upsert(kSig, planner.plan(batch));
  ASSERT_TRUE(stored != nullptr);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.lookup(kSig).get(), stored.get());
  EXPECT_EQ(cache.hits(), 1);
  // peek is side-effect free.
  EXPECT_EQ(cache.peek(kSig).get(), stored.get());
  EXPECT_EQ(cache.hits(), 1);
  EXPECT_EQ(cache.misses(), 1);

  // Replacement keeps the old entry alive for existing holders.
  const auto replaced = cache.upsert(kSig, planner.plan(batch));
  EXPECT_NE(replaced.get(), stored.get());
  EXPECT_EQ(cache.size(), 1u);
  validate_plan(stored->plan, batch);  // old object still intact
}

// ---------------------------------------------------------------------------
// Failpoint registry
// ---------------------------------------------------------------------------

TEST(Failpoint, CompiledOutProbesAreInert) {
  if (service::failpoints_compiled_in()) GTEST_SKIP();
  service::set_failpoint("x", {FailAction::kThrow, 0, -1});
  EXPECT_EQ(service::consume_failpoint("x").action, FailAction::kOff);
  EXPECT_EQ(service::failpoint_hits("x"), 0);
  EXPECT_EQ(service::load_failpoints_from_string("x=throw"), 0);
}

class FailpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!service::failpoints_compiled_in())
      GTEST_SKIP() << "built with -DCTB_FAILPOINTS=OFF";
    service::clear_failpoints();
  }
  void TearDown() override { service::clear_failpoints(); }
};

TEST_F(FailpointTest, ConsumeRespectsFireBudget) {
  service::set_failpoint("svc.x", {FailAction::kThrow, 0, 2});
  EXPECT_EQ(service::consume_failpoint("svc.x").action, FailAction::kThrow);
  EXPECT_EQ(service::consume_failpoint("svc.x").action, FailAction::kThrow);
  EXPECT_EQ(service::consume_failpoint("svc.x").action, FailAction::kOff);
  EXPECT_EQ(service::failpoint_hits("svc.x"), 2);
}

TEST_F(FailpointTest, UnlimitedBudgetKeepsFiring) {
  service::set_failpoint("svc.y", {FailAction::kDelay, 750, -1});
  for (int i = 0; i < 5; ++i) {
    const FailpointSpec fired = service::consume_failpoint("svc.y");
    EXPECT_EQ(fired.action, FailAction::kDelay);
    EXPECT_EQ(fired.arg, 750);
  }
  EXPECT_EQ(service::failpoint_hits("svc.y"), 5);
  service::clear_failpoint("svc.y");
  EXPECT_EQ(service::consume_failpoint("svc.y").action, FailAction::kOff);
  // clear_failpoint disarms but keeps the hit count for diagnostics.
  EXPECT_EQ(service::failpoint_hits("svc.y"), 5);
}

TEST_F(FailpointTest, SpecStringParsesValidEntriesAndSkipsJunk) {
  const int armed = service::load_failpoints_from_string(
      "a=delay:500:1;b=throw,not-an-entry,=throw,c=bogus,d=badalloc");
  EXPECT_EQ(armed, 3);  // a, b, d; junk and unknown actions are skipped
  FailpointSpec a = service::consume_failpoint("a");
  EXPECT_EQ(a.action, FailAction::kDelay);
  EXPECT_EQ(a.arg, 500);
  EXPECT_EQ(service::consume_failpoint("a").action, FailAction::kOff);
  EXPECT_EQ(service::consume_failpoint("b").action, FailAction::kThrow);
  EXPECT_EQ(service::consume_failpoint("c").action, FailAction::kOff);
  EXPECT_EQ(service::consume_failpoint("d").action, FailAction::kBadAlloc);
}

TEST_F(FailpointTest, ScopedFailpointDisarmsOnExit) {
  {
    service::ScopedFailpoint scoped("svc.scoped",
                                    {FailAction::kCorrupt, 0, -1});
    EXPECT_EQ(service::consume_failpoint("svc.scoped").action,
              FailAction::kCorrupt);
  }
  EXPECT_EQ(service::consume_failpoint("svc.scoped").action, FailAction::kOff);
}

TEST_F(FailpointTest, ServiceSlowFailpointTripsDeadline) {
  VirtualClock clock;
  PlanServiceConfig cfg;
  cfg.deadline_us = 400;
  cfg.clock = &clock;
  PlanService svc(cfg);
  service::ScopedFailpoint slow("service.planner.slow",
                                {FailAction::kDelay, 9'000, -1});
  const auto batch = small_batch(9);
  const ServedPlan served = svc.get(batch);
  ASSERT_TRUE(served.summary != nullptr);
  EXPECT_EQ(served.state, ServeState::kDegraded);
  EXPECT_EQ(svc.stats().deadline_misses, 1);
  // Chaos-injected degradation is indistinguishable from the real thing:
  // the response's trace still resolves to a trail with the deadline miss.
  if (kTelemetryCompiledIn) {
    ASSERT_NE(served.trace_id, 0u);
    const auto trail = trail_of(served.trace_id);
    EXPECT_TRUE(trail_has(trail, FlightKind::kServe, "degraded"));
    EXPECT_TRUE(trail_has(trail, FlightKind::kDeadlineMiss));
  }
  svc.drain();
  EXPECT_EQ(svc.stats().upgraded, 1);
  EXPECT_EQ(svc.get(batch).state, ServeState::kHit);
}

TEST_F(FailpointTest, ChaosQuarantineLeavesAFlightDumpForTheTrace) {
  if (!kTelemetryCompiledIn) GTEST_SKIP() << "built with -DCTB_TELEMETRY=OFF";
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::temp_directory_path() / "ctb_plan_service_flight_dump_test";
  std::error_code ec;
  fs::remove_all(dir, ec);
  ASSERT_TRUE(fs::create_directories(dir));
  ::setenv("CTB_FLIGHT_DUMP_DIR", dir.string().c_str(), 1);

  VirtualClock clock;
  PlanServiceConfig cfg;
  cfg.deadline_us = 400;
  cfg.clock = &clock;
  cfg.max_retries = 0;
  cfg.quarantine_threshold = 2;
  PlanService svc(cfg);
  service::ScopedFailpoint slow("service.planner.slow",
                                {FailAction::kDelay, 9'000, -1});
  service::ScopedFailpoint broken("service.planner.throw",
                                  {FailAction::kThrow, 0, -1});
  const auto batch = small_batch(11);

  // The whole episode runs under one explicitly-propagated trace, the way a
  // caller threads its request context through the service. The worker
  // adopts the requester's trace via the job, so the deadline miss (request
  // thread) and the quarantine transition (worker thread) share one id.
  std::uint64_t id = 0;
  {
    const telemetry::ScopedTraceContext scope(
        "chaos", static_cast<std::int32_t>(batch.size()));
    id = telemetry::current_trace().id;
    ASSERT_NE(id, 0u);

    // Failure 1: the worker blows the deadline and throws; the requester
    // records the miss and serves the fallback.
    const ServedPlan first = svc.get(batch);
    EXPECT_EQ(first.state, ServeState::kDegraded);
    EXPECT_EQ(first.trace_id, id);
    svc.drain();
    EXPECT_FALSE(svc.is_quarantined(batch));

    // Failure 2: the degraded hit re-enqueues the upgrade; the worker's
    // second failure crosses the threshold, quarantines the signature, and
    // autodumps the flight recorder (CTB_FLIGHT_DUMP_DIR is set).
    EXPECT_EQ(svc.get(batch).state, ServeState::kDegraded);
    svc.drain();
    EXPECT_TRUE(svc.is_quarantined(batch));
  }
  ::unsetenv("CTB_FLIGHT_DUMP_DIR");

  // Both halves of the story are in the live trail under the one trace id.
  const auto trail = trail_of(id);
  EXPECT_TRUE(trail_has(trail, FlightKind::kDeadlineMiss));
  EXPECT_TRUE(trail_has(trail, FlightKind::kQuarantine));

  // ... and the quarantine transition persisted a postmortem dump naming
  // the same trace.
  fs::path dump;
  for (const auto& entry : fs::directory_iterator(dir))
    if (entry.path().filename().string().find("_quarantine.json") !=
        std::string::npos)
      dump = entry.path();
  ASSERT_FALSE(dump.empty()) << "no quarantine autodump in " << dir;
  std::ifstream in(dump);
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string dump_text = buf.str();
  EXPECT_NE(dump_text.find("\"kind\":\"deadline.miss\""), std::string::npos);
  EXPECT_NE(dump_text.find("\"kind\":\"quarantine\""), std::string::npos);
  EXPECT_NE(dump_text.find(telemetry::trace_id_hex(id)), std::string::npos);
  fs::remove_all(dir, ec);
}

}  // namespace
}  // namespace ctb
