// Request-scoped tracing and the flight recorder (DESIGN.md §13): trace-id
// codecs, context scoping and adoption, lock-free ring recording (wrap,
// clear, concurrent dump-while-record — the TSan CI leg runs this binary),
// env-gated autodumps, and the end-to-end contract that one request's
// planner, cache, and executor flight events share one trace id. The
// compiled-out configuration pins the stub behavior instead.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/api.hpp"
#include "core/plan_io.hpp"
#include "linalg/matrix.hpp"
#include "service/plan_service.hpp"
#include "telemetry/telemetry.hpp"
#include "telemetry/trace.hpp"

namespace ctb {
namespace {

TEST(TraceIdCodec, HexRoundTripsAndRejectsMalformed) {
  EXPECT_EQ(telemetry::trace_id_hex(0), "0000000000000000");
  EXPECT_EQ(telemetry::trace_id_hex(0x9e3779b97f4a7c15ULL),
            "9e3779b97f4a7c15");
  EXPECT_EQ(telemetry::parse_trace_id("9e3779b97f4a7c15"),
            0x9e3779b97f4a7c15ULL);
  EXPECT_EQ(telemetry::parse_trace_id("9E3779B97F4A7C15"),
            0x9e3779b97f4a7c15ULL);
  // Short input is accepted (leading zeros implied)...
  EXPECT_EQ(telemetry::parse_trace_id("ff"), 0xffULL);
  // ...malformed input maps to the "no trace" id.
  EXPECT_EQ(telemetry::parse_trace_id(""), 0u);
  EXPECT_EQ(telemetry::parse_trace_id("xyz"), 0u);
  EXPECT_EQ(telemetry::parse_trace_id("0123456789abcdef0"), 0u);  // 17 chars
  EXPECT_EQ(telemetry::parse_trace_id("12 4"), 0u);
}

TEST(FlightJson, EmptyEventListIsValidDocument) {
  std::ostringstream os;
  telemetry::write_flight_json(os, {});
  EXPECT_EQ(os.str(), "{\n\"version\":1,\n\"events\":[\n]\n}\n");
}

#ifdef CTB_TELEMETRY_ENABLED

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    telemetry::flight_clear();
    telemetry::reset();
    telemetry::set_enabled(true);
  }
  void TearDown() override {
    telemetry::set_enabled(false);
    telemetry::reset();
    telemetry::flight_clear();
  }

  /// Events recorded on any thread under `id`, in time order.
  static std::vector<telemetry::FlightEventView> trail_of(std::uint64_t id) {
    std::vector<telemetry::FlightEventView> out;
    for (const auto& e : telemetry::flight_events())
      if (e.trace == id) out.push_back(e);
    return out;
  }

  static bool trail_has(const std::vector<telemetry::FlightEventView>& trail,
                        telemetry::FlightKind kind) {
    for (const auto& e : trail)
      if (e.kind == kind) return true;
    return false;
  }
};

TEST_F(TraceTest, MintedIdsAreNonzeroAndUnique) {
  const std::uint64_t a = telemetry::make_trace_id();
  const std::uint64_t b = telemetry::make_trace_id();
  EXPECT_NE(a, 0u);
  EXPECT_NE(b, 0u);
  EXPECT_NE(a, b);
}

TEST_F(TraceTest, ScopedContextInstallsAndRestores) {
  EXPECT_FALSE(telemetry::current_trace().active());
  {
    const telemetry::ScopedTraceContext outer("test", 7);
    const telemetry::TraceContext t = telemetry::current_trace();
    EXPECT_TRUE(t.active());
    EXPECT_EQ(t.gemms, 7);
    EXPECT_STREQ(t.origin, "test");
    {
      // Adopt-or-create keeps the caller's trace...
      const telemetry::ScopedTraceContext inner("nested", 99);
      EXPECT_EQ(telemetry::current_trace().id, t.id);
      EXPECT_EQ(telemetry::current_trace().gemms, 7);
    }
    {
      // ...while the explicit form re-enters a known trace unconditionally.
      const telemetry::TraceContext other{telemetry::make_trace_id(), 3,
                                          "worker"};
      const telemetry::ScopedTraceContext inner(other);
      EXPECT_EQ(telemetry::current_trace().id, other.id);
    }
    EXPECT_EQ(telemetry::current_trace().id, t.id);
  }
  EXPECT_FALSE(telemetry::current_trace().active());
}

TEST_F(TraceTest, FlightRecordCapturesTraceAndArgs) {
  const telemetry::ScopedTraceContext scope("test", 1);
  const std::uint64_t id = telemetry::current_trace().id;
  telemetry::flight_record(telemetry::FlightKind::kExec, "unit", 11, 22);
  const auto trail = trail_of(id);
  ASSERT_EQ(trail.size(), 1u);
  EXPECT_EQ(trail[0].kind, telemetry::FlightKind::kExec);
  EXPECT_STREQ(trail[0].detail, "unit");
  EXPECT_EQ(trail[0].a0, 11);
  EXPECT_EQ(trail[0].a1, 22);
  EXPECT_GT(trail[0].t_us, 0.0);
}

TEST_F(TraceTest, RecorderIsAlwaysOnWhileCompiledIn) {
  // The flight recorder must still capture when metrics are disabled —
  // postmortems are most valuable exactly when nobody opted in.
  telemetry::set_enabled(false);
  const telemetry::ScopedTraceContext scope("test", 1);
  telemetry::flight_record(telemetry::FlightKind::kFallback, "off", 0, 0);
  EXPECT_EQ(trail_of(telemetry::current_trace().id).size(), 1u);
}

TEST_F(TraceTest, RingWrapKeepsTheMostRecentEvents) {
  const telemetry::ScopedTraceContext scope("test", 1);
  const std::uint64_t id = telemetry::current_trace().id;
  constexpr int kOverCap = 300;  // ring holds 256 per thread
  for (int i = 0; i < kOverCap; ++i)
    telemetry::flight_record(telemetry::FlightKind::kExec, "wrap", i, 0);
  const auto trail = trail_of(id);
  ASSERT_EQ(trail.size(), 256u);
  // The survivors are exactly the newest 256, still in order.
  std::int64_t lo = kOverCap, hi = -1;
  for (const auto& e : trail) {
    lo = std::min(lo, e.a0);
    hi = std::max(hi, e.a0);
  }
  EXPECT_EQ(lo, kOverCap - 256);
  EXPECT_EQ(hi, kOverCap - 1);
}

TEST_F(TraceTest, ClearInvalidatesAllRecordedEvents) {
  telemetry::flight_record(telemetry::FlightKind::kExec, "gone", 0, 0);
  EXPECT_FALSE(telemetry::flight_events().empty());
  telemetry::flight_clear();
  EXPECT_TRUE(telemetry::flight_events().empty());
}

TEST_F(TraceTest, ConcurrentRecordAndDumpIsRaceFree) {
  // Writers hammer their per-thread rings while the main thread snapshots
  // continuously; the seqlock protocol must keep every surfaced event
  // internally consistent (the TSan leg verifies the absence of races).
  constexpr int kWriters = 4;
  constexpr int kEvents = 5000;
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w)
    writers.emplace_back([w] {
      const telemetry::ScopedTraceContext scope("stress", w);
      for (int i = 0; i < kEvents; ++i)
        telemetry::flight_record(telemetry::FlightKind::kExec, "stress", i,
                                 w);
    });
  for (int i = 0; i < 200; ++i)
    for (const auto& e : telemetry::flight_events()) {
      ASSERT_EQ(e.kind, telemetry::FlightKind::kExec);
      ASSERT_STREQ(e.detail, "stress");
      ASSERT_GE(e.a0, 0);
      ASSERT_LT(e.a0, kEvents);
    }
  for (auto& t : writers) t.join();
}

TEST_F(TraceTest, AutodumpIsEnvGatedAndWritesJson) {
  const telemetry::ScopedTraceContext scope("test", 1);
  telemetry::flight_record(telemetry::FlightKind::kGuardReject, "probe", 1,
                           2);
  // Without the env var the dump is a no-op.
  ::unsetenv("CTB_FLIGHT_DUMP_DIR");
  EXPECT_EQ(telemetry::flight_autodump("unit"), "");

  const std::string dir =
      (std::filesystem::temp_directory_path() / "ctb_trace_test_dumps")
          .string();
  std::filesystem::create_directories(dir);
  ::setenv("CTB_FLIGHT_DUMP_DIR", dir.c_str(), 1);
  const std::string path = telemetry::flight_autodump("unit");
  ::unsetenv("CTB_FLIGHT_DUMP_DIR");
  ASSERT_NE(path, "");
  EXPECT_NE(path.find("ctb_flight_"), std::string::npos);
  EXPECT_NE(path.find("_unit.json"), std::string::npos);
  std::ifstream is(path);
  ASSERT_TRUE(is.good());
  std::stringstream content;
  content << is.rdbuf();
  EXPECT_NE(content.str().find("\"version\":1"), std::string::npos);
  EXPECT_NE(content.str().find("\"kind\":\"guard.reject\""),
            std::string::npos);
  EXPECT_NE(content.str().find(telemetry::trace_id_hex(
                telemetry::current_trace().id)),
            std::string::npos);
  std::filesystem::remove_all(dir);
}

// The tentpole contract: one request's planner decision, cache traffic, and
// executor events all land under the single trace id installed at the
// request boundary.
TEST_F(TraceTest, PlannerCacheAndExecutorShareOneTraceId) {
  const std::vector<GemmDims> dims{{32, 32, 64}, {48, 16, 64}};
  Matrixf a0(32, 64), b0(64, 32), c0(32, 32);
  Matrixf a1(48, 64), b1(64, 16), c1(48, 16);
  for (auto* m : {&a0, &b0, &a1, &b1})
    for (std::size_t i = 0; i < m->size(); ++i)
      m->data()[i] = static_cast<float>((i % 13)) * 0.25f;
  std::vector<GemmOperands> ops(2);
  ops[0].dims = dims[0];
  ops[0].a = a0.data();
  ops[0].b = b0.data();
  ops[0].c = c0.data();
  ops[1].dims = dims[1];
  ops[1].a = a1.data();
  ops[1].b = b1.data();
  ops[1].c = c1.data();

  std::uint64_t id = 0;
  {
    const telemetry::ScopedTraceContext scope("test", 2);
    id = telemetry::current_trace().id;
    PlanCache cache((PlannerConfig()));
    const PlanSummary& s = cache.plan(dims);
    execute_plan(s.plan, ops, 1.0f, 0.0f);
  }
  const auto trail = trail_of(id);
  EXPECT_TRUE(trail_has(trail, telemetry::FlightKind::kPlanDecision));
  EXPECT_TRUE(trail_has(trail, telemetry::FlightKind::kCacheMiss));
  EXPECT_TRUE(trail_has(trail, telemetry::FlightKind::kExec));
  // Timeline order: the decision precedes execution.
  double decision_t = 0, exec_t = 0;
  for (const auto& e : trail) {
    if (e.kind == telemetry::FlightKind::kPlanDecision) decision_t = e.t_us;
    if (e.kind == telemetry::FlightKind::kExec) exec_t = e.t_us;
  }
  EXPECT_LE(decision_t, exec_t);
}

TEST_F(TraceTest, ServedPlanCarriesItsTraceId) {
  service::PlanServiceConfig cfg;
  cfg.deadline_us = 0;  // inline mode: everything on this thread
  service::PlanService svc(cfg);
  const std::vector<GemmDims> dims{{64, 64, 64}};
  const service::ServedPlan served = svc.get(dims);
  ASSERT_NE(served.trace_id, 0u);
  const auto trail = trail_of(served.trace_id);
  ASSERT_FALSE(trail.empty());
  EXPECT_TRUE(trail_has(trail, telemetry::FlightKind::kServe));
  // A second identical request is a fresh trace that hits the cache.
  const service::ServedPlan again = svc.get(dims);
  EXPECT_NE(again.trace_id, served.trace_id);
  EXPECT_TRUE(
      trail_has(trail_of(again.trace_id), telemetry::FlightKind::kServe));
}

TEST_F(TraceTest, SpansRecordTheActiveTraceId) {
  const telemetry::ScopedTraceContext scope("test", 1);
  { CTB_TEL_SPAN("test.trace.span"); }
  bool found = false;
  for (const auto& s : telemetry::snapshot().spans)
    if (std::string(s.name) == "test.trace.span") {
      found = true;
      EXPECT_EQ(s.trace, telemetry::current_trace().id);
    }
  EXPECT_TRUE(found);
}

#else  // !CTB_TELEMETRY_ENABLED

TEST(TraceCompiledOut, StubsAreInert) {
  EXPECT_EQ(telemetry::make_trace_id(), 0u);
  EXPECT_FALSE(telemetry::current_trace().active());
  {
    const telemetry::ScopedTraceContext scope("test", 1);
    EXPECT_FALSE(telemetry::current_trace().active());
  }
  telemetry::flight_record(telemetry::FlightKind::kExec, "off", 1, 2);
  CTB_TEL_FLIGHT(kExec, "off.macro", 1, 2);
  EXPECT_TRUE(telemetry::flight_events().empty());
  telemetry::flight_clear();
  EXPECT_EQ(telemetry::flight_autodump("off"), "");
  // The shared codecs and writers still work so tools build and run.
  EXPECT_EQ(telemetry::parse_trace_id(telemetry::trace_id_hex(42)), 42u);
}

TEST(TraceCompiledOut, MacroIsDanglingElseSafe) {
  if (telemetry::flight_events().empty())
    CTB_TEL_FLIGHT(kExec, "then", 0, 0);
  else
    CTB_TEL_FLIGHT(kExec, "else", 0, 0);
}

#endif  // CTB_TELEMETRY_ENABLED

}  // namespace
}  // namespace ctb
