#include <gtest/gtest.h>

#include "dnn/im2col.hpp"
#include "dnn/implicit_gemm.hpp"

namespace ctb {
namespace {

ConvShape mk_conv(int in_c, int out_c, int kernel, int stride, int pad,
                  int hw) {
  ConvShape s;
  s.name = "test";
  s.in_c = in_c;
  s.out_c = out_c;
  s.kernel = kernel;
  s.stride = stride;
  s.pad = pad;
  s.in_h = hw;
  s.in_w = hw;
  return s;
}

TEST(ImplicitGemm, GatherMatchesIm2col) {
  // The implicit B(k, j) must read exactly the value im2col materializes.
  const ConvShape s = mk_conv(3, 4, 3, 1, 1, 6);
  Rng rng(3);
  Tensor4 input(2, 3, 6, 6);
  fill_random(input, rng);
  const Matrixf filters = random_filters(s, rng);
  const Matrixf cols = im2col(s, input);
  const GemmDims d = s.gemm_dims(2);
  Matrixf out(static_cast<std::size_t>(d.m), static_cast<std::size_t>(d.n));
  const GemmOperands g = implicit_conv_operands(s, input, filters, out);
  ASSERT_TRUE(static_cast<bool>(g.b_gather));
  for (int k = 0; k < d.k; ++k)
    for (int j = 0; j < d.n; ++j)
      ASSERT_EQ(g.b_gather(k, j),
                cols(static_cast<std::size_t>(k), static_cast<std::size_t>(j)))
          << "k=" << k << " j=" << j;
}

struct ConvCase {
  int in_c, out_c, kernel, stride, pad, hw, batch;
};

class ImplicitVsExplicit : public ::testing::TestWithParam<ConvCase> {};

TEST_P(ImplicitVsExplicit, SameResultAsIm2colPath) {
  const ConvCase p = GetParam();
  const ConvShape s =
      mk_conv(p.in_c, p.out_c, p.kernel, p.stride, p.pad, p.hw);
  Rng rng(static_cast<std::uint64_t>(p.in_c * 31 + p.kernel));
  Tensor4 input(p.batch, p.in_c, p.hw, p.hw);
  fill_random(input, rng);
  const Matrixf filters = random_filters(s, rng);
  const Tensor4 explicit_path = conv_forward_gemm(s, input, filters);
  const Tensor4 implicit_path = conv_forward_implicit(s, input, filters);
  ASSERT_TRUE(explicit_path.same_shape(implicit_path));
  EXPECT_LT(max_abs_diff(explicit_path, implicit_path), 1e-4f);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ImplicitVsExplicit,
    ::testing::Values(ConvCase{1, 1, 1, 1, 0, 4, 1},
                      ConvCase{3, 8, 3, 1, 1, 8, 1},
                      ConvCase{4, 6, 5, 1, 2, 9, 2},
                      ConvCase{2, 4, 3, 2, 1, 12, 1},
                      ConvCase{8, 16, 1, 1, 0, 7, 3}));

TEST(ImplicitGemm, BatchedBranchesMatchDirectConv) {
  // Batch the four stage-1 branches of a mini inception module implicitly.
  const ConvShape c1 = mk_conv(8, 6, 1, 1, 0, 10);
  const ConvShape c2 = mk_conv(8, 4, 3, 1, 1, 10);
  const ConvShape c3 = mk_conv(8, 3, 5, 1, 2, 10);
  const ConvShape c4 = mk_conv(8, 5, 1, 1, 0, 10);
  Rng rng(77);
  Tensor4 input(1, 8, 10, 10);
  fill_random(input, rng);
  const Matrixf f1 = random_filters(c1, rng);
  const Matrixf f2 = random_filters(c2, rng);
  const Matrixf f3 = random_filters(c3, rng);
  const Matrixf f4 = random_filters(c4, rng);

  const std::vector<Tensor4> outs = conv_batch_implicit(
      {&c1, &c2, &c3, &c4}, {&input, &input, &input, &input},
      {&f1, &f2, &f3, &f4}, PlannerConfig{});
  ASSERT_EQ(outs.size(), 4u);

  const Tensor4 r1 = conv_forward_direct(c1, input, f1);
  const Tensor4 r2 = conv_forward_direct(c2, input, f2);
  const Tensor4 r3 = conv_forward_direct(c3, input, f3);
  const Tensor4 r4 = conv_forward_direct(c4, input, f4);
  EXPECT_LT(max_abs_diff(outs[0], r1), 1e-3f);
  EXPECT_LT(max_abs_diff(outs[1], r2), 1e-3f);
  EXPECT_LT(max_abs_diff(outs[2], r3), 1e-3f);
  EXPECT_LT(max_abs_diff(outs[3], r4), 1e-3f);
}

TEST(ImplicitGemm, OperandValidation) {
  const ConvShape s = mk_conv(3, 4, 3, 1, 1, 6);
  Tensor4 wrong(1, 2, 6, 6);  // wrong channel count
  Rng rng(1);
  Tensor4 ok(1, 3, 6, 6);
  const Matrixf filters = random_filters(s, rng);
  const GemmDims d = s.gemm_dims(1);
  Matrixf out(static_cast<std::size_t>(d.m), static_cast<std::size_t>(d.n));
  EXPECT_THROW(implicit_conv_operands(s, wrong, filters, out), CheckError);
  Matrixf bad_out(1, 1);
  EXPECT_THROW(implicit_conv_operands(s, ok, filters, bad_out), CheckError);
}

TEST(ImplicitGemm, MaterializationCostModel) {
  const GpuArch& arch = gpu_arch(GpuModel::kV100);
  const ConvShape small = mk_conv(16, 16, 3, 1, 1, 14);
  const ConvShape big = mk_conv(256, 256, 3, 1, 1, 56);
  EXPECT_GT(im2col_materialization_us(arch, big, 1),
            im2col_materialization_us(arch, small, 1));
  EXPECT_GE(im2col_materialization_us(arch, small, 1),
            arch.kernel_launch_us);
}

}  // namespace
}  // namespace ctb
