#include <gtest/gtest.h>

#include "core/tiling_engine.hpp"
#include "util/assert.hpp"

namespace ctb {
namespace {

std::vector<GemmDims> same(int count, int m, int n, int k) {
  return std::vector<GemmDims>(static_cast<std::size_t>(count),
                               GemmDims{m, n, k});
}

TEST(FeasibleStrategies, FilteredByTileFit) {
  // 16x32 under the paper's stated rule (BY <= M and BX <= N) admits only
  // small: medium's BY = 32 exceeds M = 16. (The paper's worked example
  // says this GEMM has two candidates, contradicting its own rule; we
  // implement the stated rule — the example's final selection is
  // unaffected, as PaperWorkedExample verifies.)
  const auto f =
      feasible_strategies(GemmDims{16, 32, 128}, ThreadVariant::k256);
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0]->shape, TileShape::kSmall);
}

TEST(FeasibleStrategies, MediumGemmGetsThree) {
  const auto f =
      feasible_strategies(GemmDims{64, 64, 64}, ThreadVariant::k256);
  ASSERT_EQ(f.size(), 3u);
  EXPECT_EQ(f[0]->shape, TileShape::kSmall);
  EXPECT_EQ(f[1]->shape, TileShape::kMedium);
  EXPECT_EQ(f[2]->shape, TileShape::kLarge);
}

TEST(FeasibleStrategies, LargeGemmGetsAllSix) {
  const auto f =
      feasible_strategies(GemmDims{256, 256, 64}, ThreadVariant::k256);
  EXPECT_EQ(f.size(), 6u);
}

TEST(FeasibleStrategies, TinyGemmAlwaysHasSmall) {
  const auto f = feasible_strategies(GemmDims{4, 4, 8}, ThreadVariant::k128);
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0]->shape, TileShape::kSmall);
  EXPECT_EQ(f[0]->threads, 128);
}

TEST(FeasibleStrategies, TallWideAsymmetry) {
  // 128x64: tall (128x64) fits, wide (64x128) does not.
  const auto f =
      feasible_strategies(GemmDims{128, 64, 8}, ThreadVariant::k256);
  bool has_tall = false, has_wide = false;
  for (const auto* s : f) {
    has_tall |= s->shape == TileShape::kTall;
    has_wide |= s->shape == TileShape::kWide;
  }
  EXPECT_TRUE(has_tall);
  EXPECT_FALSE(has_wide);
}

TEST(SelectTiling, PaperWorkedExample) {
  // Section 4.2.3's example: (16x32x128, 64x64x64, 256x256x64) with
  // threshold 65536 must end at (small, medium, medium) in the 256-thread
  // variant with TLP 17920.
  const std::vector<GemmDims> dims = {
      {16, 32, 128}, {64, 64, 64}, {256, 256, 64}};
  const TilingResult r = select_tiling(dims, TilingConfig{65536});
  EXPECT_EQ(r.variant, ThreadVariant::k256);
  EXPECT_EQ(r.per_gemm[0]->shape, TileShape::kSmall);
  EXPECT_EQ(r.per_gemm[1]->shape, TileShape::kMedium);
  EXPECT_EQ(r.per_gemm[2]->shape, TileShape::kMedium);
  EXPECT_EQ(r.tlp, 17920);
  EXPECT_EQ(r.iterations, 2);
}

TEST(SelectTiling, AcceptsSmallestWhenTlpAlreadyBelowThreshold) {
  const auto dims = same(2, 32, 32, 64);
  const TilingResult r = select_tiling(dims, TilingConfig{65536});
  // 2 GEMMs * 4 tiles * 256 = 2048 <= 65536: smallest accepted directly.
  EXPECT_EQ(r.per_gemm[0]->shape, TileShape::kSmall);
  EXPECT_EQ(r.iterations, 1);
}

TEST(SelectTiling, LargeBatchPushesToLargerTiles) {
  // 256 GEMMs of 128x128: small gives 64*256*256 = 4.2M TLP, so the
  // algorithm escalates all the way to huge (1 tile per GEMM).
  const auto dims = same(256, 128, 128, 64);
  const TilingResult r = select_tiling(dims, TilingConfig{65536});
  EXPECT_EQ(r.per_gemm[0]->shape, TileShape::kHuge);
}

TEST(SelectTiling, SmallBatchKeepsSmallTiles) {
  // Paper Section 7.1's example: M=N=128, batch 4 -> small tiles preserve
  // 256 blocks of TLP.
  const auto dims = same(4, 128, 128, 64);
  const TilingResult r = select_tiling(dims, TilingConfig{65536});
  EXPECT_EQ(r.per_gemm[0]->shape, TileShape::kSmall);
  EXPECT_EQ(r.variant, ThreadVariant::k256);
}

TEST(SelectTiling, SwitchesTo128ThreadVariantWhenExhausted) {
  // One tiny GEMM: the only 256-thread candidate is small, and its TLP
  // (2*256 = 512... always <= threshold). To force exhaustion we need TLP
  // above threshold with every queue at its last entry: tiny GEMMs with a
  // tiny threshold.
  const auto dims = same(8, 16, 16, 64);
  const TilingResult r = select_tiling(dims, TilingConfig{100});
  // 8 GEMMs * 1 small tile * 128 threads after the fallback.
  EXPECT_EQ(r.variant, ThreadVariant::k128);
  EXPECT_EQ(r.per_gemm[0]->shape, TileShape::kSmall);
  EXPECT_EQ(r.tlp, 8 * 128);
}

TEST(SelectTiling, MixedQueueExhaustionUsesTopNotPop) {
  // First GEMM has one candidate (small), second has six; with a tiny
  // threshold both walk as far as they can: GEMM 1 stays small.
  const std::vector<GemmDims> dims = {{16, 16, 8}, {1024, 1024, 8}};
  const TilingResult r = select_tiling(dims, TilingConfig{1});
  EXPECT_EQ(r.per_gemm[0]->shape, TileShape::kSmall);
  EXPECT_EQ(r.per_gemm[1]->shape, TileShape::kHuge);
  EXPECT_EQ(r.variant, ThreadVariant::k128);
}

TEST(SelectTiling, AllStrategiesShareThreadCount) {
  const std::vector<GemmDims> dims = {
      {16, 32, 128}, {64, 64, 64}, {256, 256, 64}, {500, 300, 32}};
  const TilingResult r = select_tiling(dims, TilingConfig{65536});
  for (const auto* s : r.per_gemm)
    EXPECT_EQ(s->threads, static_cast<int>(r.variant));
}

TEST(SelectTiling, TlpMatchesReportedSelection) {
  const auto dims = same(16, 256, 256, 128);
  const TilingResult r = select_tiling(dims, TilingConfig{65536});
  EXPECT_EQ(r.tlp, batch_tlp(dims, r.per_gemm));
  EXPECT_LE(r.tlp, 65536);
}

TEST(SelectTiling, EmptyBatchThrows) {
  EXPECT_THROW(select_tiling({}, TilingConfig{}), CheckError);
}

TEST(SelectTiling, InvalidDimsThrow) {
  const std::vector<GemmDims> dims = {{16, 0, 8}};
  EXPECT_THROW(select_tiling(dims, TilingConfig{}), CheckError);
}

TEST(SelectTiling, HigherThresholdNeverPicksLargerTiles) {
  // Raising the threshold keeps more TLP, i.e. same or smaller tiles.
  const auto dims = same(64, 256, 256, 128);
  const TilingResult lo = select_tiling(dims, TilingConfig{16384});
  const TilingResult hi = select_tiling(dims, TilingConfig{262144});
  EXPECT_LE(static_cast<int>(hi.per_gemm[0]->shape),
            static_cast<int>(lo.per_gemm[0]->shape));
}

// -------------------------------------------------------- MAGMA uniform --

TEST(MagmaUniform, PicksLargestFittingUpToLarge) {
  const auto dims = same(4, 128, 128, 64);
  EXPECT_EQ(magma_uniform_strategy(dims).shape, TileShape::kLarge);
}

TEST(MagmaUniform, SmallMatricesGetSmallTiles) {
  const auto dims = same(4, 16, 24, 64);
  EXPECT_EQ(magma_uniform_strategy(dims).shape, TileShape::kSmall);
}

TEST(MagmaUniform, MaxGemmDictates) {
  // A batch of tiny GEMMs plus one 64x64: the large tile (64x64) wins even
  // though most GEMMs are 16x16 (the coordination gap the paper attacks).
  std::vector<GemmDims> dims = same(7, 16, 16, 64);
  dims.push_back(GemmDims{64, 64, 64});
  EXPECT_EQ(magma_uniform_strategy(dims).shape, TileShape::kLarge);
}

TEST(MagmaUniform, Uses256ThreadTemplateBlocks) {
  // MAGMA's gemm_template kernels use 2-D (16x16) thread blocks.
  const auto dims = same(4, 128, 128, 64);
  EXPECT_EQ(magma_uniform_strategy(dims).threads, 256);
}

TEST(MagmaUniform, NeverExceedsLargeTiles) {
  const auto dims = same(4, 4096, 4096, 64);
  EXPECT_EQ(magma_uniform_strategy(dims).shape, TileShape::kLarge);
}

}  // namespace
}  // namespace ctb
