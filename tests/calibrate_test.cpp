#include <gtest/gtest.h>

#include <sstream>

#include <algorithm>

#include "core/calibrate.hpp"
#include "core/exhaustive.hpp"
#include "core/tiling_engine.hpp"
#include "gpusim/sm_engine.hpp"
#include "kernels/work_builder.hpp"
#include "core/api.hpp"

namespace ctb {
namespace {

TEST(CalibrateTlp, ProducesMonotonicallyUsableThreshold) {
  const GpuArch& arch = gpu_arch(GpuModel::kV100);
  const TlpCalibration cal = calibrate_tlp_threshold(arch);
  EXPECT_GT(cal.threshold, 0);
  EXPECT_GE(cal.curve.size(), 4u);
  // The curve is sorted by TLP ascending.
  for (std::size_t i = 1; i < cal.curve.size(); ++i)
    EXPECT_LE(cal.curve[i - 1].tlp, cal.curve[i].tlp);
  // Low-TLP probes must underperform the plateau (the knee exists).
  double lo = cal.curve.front().gflops;
  double hi = 0;
  for (const auto& p : cal.curve) hi = std::max(hi, p.gflops);
  EXPECT_LT(lo, hi);
}

TEST(CalibrateTlp, ThresholdNearPaperValueOnV100) {
  // The paper picked 65536 on V100; the automated knee should land within
  // an order of magnitude (the procedure is coarse by construction).
  const TlpCalibration cal = calibrate_tlp_threshold(gpu_arch(GpuModel::kV100));
  EXPECT_GE(cal.threshold, 65536 / 8);
  EXPECT_LE(cal.threshold, 65536 * 8);
}

TEST(CalibrateTlp, SmallerGpuGetsSmallerOrEqualThreshold) {
  const TlpCalibration v100 =
      calibrate_tlp_threshold(gpu_arch(GpuModel::kV100));
  const TlpCalibration m60 = calibrate_tlp_threshold(gpu_arch(GpuModel::kM60));
  EXPECT_LE(m60.threshold, v100.threshold * 2);
}

TEST(CalibrateTheta, CurveAndChoiceSane) {
  const GpuArch& arch = gpu_arch(GpuModel::kV100);
  const ThetaCalibration cal = calibrate_theta(arch, 65536);
  EXPECT_GE(cal.theta, 32);
  EXPECT_LE(cal.theta, 2048);
  EXPECT_EQ(cal.curve.size(), 7u);  // 32..2048 in powers of two
  for (const auto& [theta, us] : cal.curve) EXPECT_GT(us, 0.0);
}

TEST(CalibrateTheta, PaperValueWithinSweep) {
  const ThetaCalibration cal =
      calibrate_theta(gpu_arch(GpuModel::kV100), 65536);
  // 256 was the paper's value; accept a factor-of-4 band.
  EXPECT_GE(cal.theta, 32);
  EXPECT_LE(cal.theta, 1024);
}

// ----------------------------------------------------------- exhaustive --

TEST(Exhaustive, PartitionCountsAreBellNumbers) {
  const GpuArch& arch = gpu_arch(GpuModel::kV100);
  // 1 GEMM of one tile: B(1) = 1 partition.
  const std::vector<GemmDims> one = {{16, 16, 16}};
  EXPECT_EQ(exhaustive_batching(arch, one, 65536).partitions, 1);
  // 3 tiles: B(3) = 5.
  const std::vector<GemmDims> three(3, GemmDims{16, 16, 16});
  EXPECT_EQ(exhaustive_batching(arch, three, 65536).partitions, 5);
  // 4 tiles: B(4) = 15.
  const std::vector<GemmDims> four(4, GemmDims{16, 16, 16});
  EXPECT_EQ(exhaustive_batching(arch, four, 65536).partitions, 15);
}

TEST(Exhaustive, OptimumNeverWorseThanHeuristics) {
  const GpuArch& arch = gpu_arch(GpuModel::kV100);
  const std::vector<GemmDims> dims = {
      {16, 16, 32}, {32, 32, 64}, {16, 32, 512}, {32, 16, 16}};
  const ExhaustiveResult opt = exhaustive_batching(arch, dims, 65536);
  EXPECT_NO_THROW(validate_plan(opt.best_plan, dims));
  for (BatchingPolicy policy :
       {BatchingPolicy::kThresholdOnly, BatchingPolicy::kBinaryOnly,
        BatchingPolicy::kTilingOnly}) {
    PlannerConfig config;
    config.policy = policy;
    // The exhaustive search enumerates whole-tile partitions only; keep
    // the heuristics in the same plan space, or auto split-K beats the
    // "optimum" on this deliberately TLP-starved batch.
    config.splitk = SplitKMode::kOff;
    const BatchedGemmPlanner planner(config);
    const double heuristic =
        time_plan(arch, planner.plan(dims).plan, dims).time_us;
    // Tolerance: the search canonicalizes block order (partitions), while
    // heuristics may emit another order, which shifts the SM assignment by
    // a fraction of a percent.
    EXPECT_GE(heuristic, opt.best_us * 0.99) << to_string(policy);
  }
}

TEST(Exhaustive, RefusesExplosiveTileCounts) {
  const GpuArch& arch = gpu_arch(GpuModel::kV100);
  const std::vector<GemmDims> big(4, GemmDims{256, 256, 64});
  EXPECT_THROW(exhaustive_batching(arch, big, 65536, 10), CheckError);
}

// ---------------------------------------------------------------- trace --

TEST(Trace, RecordsOneSpanPerBlock) {
  const std::vector<GemmDims> dims(8, GemmDims{64, 64, 64});
  const BatchedGemmPlanner planner{PlannerConfig{}};
  const PlanSummary s = planner.plan(dims);
  const KernelWork work = work_from_plan(s.plan, dims);
  ExecutionTrace trace;
  const SimStats stats =
      simulate_kernel(gpu_arch(GpuModel::kV100), work, &trace);
  EXPECT_EQ(trace.spans.size(), work.blocks.size());
  for (const auto& span : trace.spans) {
    EXPECT_GE(span.sm, 0);
    EXPECT_LT(span.sm, 80);
    EXPECT_LT(span.start_us, span.end_us);
    EXPECT_LE(span.end_us, stats.makespan_us + 1e-9);
    EXPECT_FALSE(span.bubble);
  }
}

TEST(Trace, MarksBubbleBlocks) {
  const std::vector<GemmDims> dims = {{16, 16, 16}, {128, 128, 16}};
  const TilingStrategy& s = magma_uniform_strategy(dims);
  const KernelWork work = work_vbatch(dims, s);
  ExecutionTrace trace;
  simulate_kernel(gpu_arch(GpuModel::kV100), work, &trace);
  int bubbles = 0;
  for (const auto& span : trace.spans) bubbles += span.bubble ? 1 : 0;
  EXPECT_GT(bubbles, 0);
}

TEST(Trace, ChromeJsonWellFormedEnough) {
  const std::vector<GemmDims> dims(4, GemmDims{32, 32, 32});
  const BatchedGemmPlanner planner{PlannerConfig{}};
  const KernelWork work = work_from_plan(planner.plan(dims).plan, dims);
  ExecutionTrace trace;
  simulate_kernel(gpu_arch(GpuModel::kV100), work, &trace);
  std::stringstream ss;
  write_chrome_trace(ss, trace, gpu_arch(GpuModel::kV100));
  const std::string json = ss.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  // Balanced braces/brackets (cheap structural check).
  long braces = 0, brackets = 0;
  for (char c : json) {
    braces += c == '{' ? 1 : c == '}' ? -1 : 0;
    brackets += c == '[' ? 1 : c == ']' ? -1 : 0;
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

TEST(Trace, SameStreamKernelsNeverOverlap) {
  // CUDA stream semantics through the trace: with both kernels on stream 0,
  // every span of kernel 1 starts after every span of kernel 0 ends.
  KernelWork k;
  for (int i = 0; i < 4; ++i) {
    BlockWork b;
    b.threads = 256;
    b.active_threads = 256;
    b.regs_per_thread = 32;
    b.smem_bytes = 4096;
    TileWork tw;
    tw.iters = 32;
    tw.fmas_per_thread_iter = 128;
    tw.bytes_per_iter = 4096;
    tw.epilogue_bytes = 1024;
    tw.flops = 1000;
    b.tiles = {tw};
    k.blocks.push_back(b);
  }
  const LaunchedKernel launches[] = {{&k, 0.0, 0}, {&k, 0.0, 0}};
  ExecutionTrace trace;
  simulate(gpu_arch(GpuModel::kV100), launches, &trace);
  double k0_end = 0.0, k1_start = 1e18;
  for (const auto& s : trace.spans) {
    if (s.kernel == 0) k0_end = std::max(k0_end, s.end_us);
    if (s.kernel == 1) k1_start = std::min(k1_start, s.start_us);
  }
  EXPECT_GE(k1_start, k0_end - 1e-9);
}

TEST(Trace, DifferentStreamsOverlap) {
  KernelWork k;
  for (int i = 0; i < 4; ++i) {
    BlockWork b;
    b.threads = 256;
    b.active_threads = 256;
    b.regs_per_thread = 32;
    b.smem_bytes = 4096;
    TileWork tw;
    tw.iters = 32;
    tw.fmas_per_thread_iter = 128;
    tw.bytes_per_iter = 4096;
    tw.epilogue_bytes = 1024;
    tw.flops = 1000;
    b.tiles = {tw};
    k.blocks.push_back(b);
  }
  const LaunchedKernel launches[] = {{&k, 0.0, 0}, {&k, 0.0, 1}};
  ExecutionTrace trace;
  simulate(gpu_arch(GpuModel::kV100), launches, &trace);
  double k0_end = 0.0, k1_start = 1e18;
  for (const auto& s : trace.spans) {
    if (s.kernel == 0) k0_end = std::max(k0_end, s.end_us);
    if (s.kernel == 1) k1_start = std::min(k1_start, s.start_us);
  }
  EXPECT_LT(k1_start, k0_end);
}

TEST(Trace, NullTraceIsNoop) {
  const KernelWork empty;
  EXPECT_NO_THROW(simulate_kernel(gpu_arch(GpuModel::kV100), empty, nullptr));
}

}  // namespace
}  // namespace ctb
