#include <gtest/gtest.h>

#include <numeric>

#include "core/batching_engine.hpp"
#include "core/tiling_engine.hpp"
#include "util/assert.hpp"

namespace ctb {
namespace {

const TilingStrategy& small256() {
  return batched_strategy(TileShape::kSmall, ThreadVariant::k256);
}

std::vector<Tile> tiles_for(const std::vector<GemmDims>& dims) {
  std::vector<const TilingStrategy*> strategies(dims.size(), &small256());
  return enumerate_tiles(dims, strategies);
}

// ------------------------------------------------------ enumerate_tiles --

TEST(EnumerateTiles, CountsAndCoordinates) {
  const std::vector<GemmDims> dims = {{32, 48, 64}};
  const auto tiles = tiles_for(dims);
  // 2 x 3 tiles of 16x16.
  ASSERT_EQ(tiles.size(), 6u);
  EXPECT_EQ(tiles[0].ty, 0);
  EXPECT_EQ(tiles[0].tx, 0);
  EXPECT_EQ(tiles[5].ty, 1);
  EXPECT_EQ(tiles[5].tx, 2);
  for (const auto& t : tiles) {
    EXPECT_EQ(t.gemm, 0);
    EXPECT_EQ(t.k, 64);
  }
}

TEST(EnumerateTiles, CeilCoverageOnNonMultiples) {
  const std::vector<GemmDims> dims = {{17, 31, 8}};
  EXPECT_EQ(tiles_for(dims).size(), 4u);  // 2 x 2
}

TEST(EnumerateTiles, MultiGemmOrdering) {
  const std::vector<GemmDims> dims = {{16, 16, 8}, {16, 32, 8}};
  const auto tiles = tiles_for(dims);
  ASSERT_EQ(tiles.size(), 3u);
  EXPECT_EQ(tiles[0].gemm, 0);
  EXPECT_EQ(tiles[1].gemm, 1);
  EXPECT_EQ(tiles[2].gemm, 1);
}

// ------------------------------------------------------------ batch_none --

TEST(BatchNone, OneTilePerBlock) {
  const std::vector<GemmDims> dims = {{64, 64, 128}};
  const auto tiles = tiles_for(dims);
  const BatchPlan plan = batch_none(tiles, 256);
  EXPECT_EQ(plan.num_blocks(), static_cast<int>(tiles.size()));
  EXPECT_EQ(plan.num_tiles(), static_cast<int>(tiles.size()));
  for (int b = 0; b < plan.num_blocks(); ++b) {
    const auto [begin, end] = plan.block_tiles(b);
    EXPECT_EQ(end - begin, 1);
  }
  validate_plan(plan, dims);
}

// ------------------------------------------------------- batch_threshold --

TEST(BatchThreshold, BatchesWhenTlpAbundant) {
  // 1024 tiles of K=32 with threshold 65536: TLP = 1024*256 = 262144 >
  // 32768, so blocks fill to sum K > 256 -> 9 tiles per block.
  const std::vector<GemmDims> dims(64, GemmDims{64, 64, 32});
  const auto tiles = tiles_for(dims);
  ASSERT_EQ(tiles.size(), 1024u);
  const BatchPlan plan =
      batch_threshold(tiles, 256, BatchingConfig{256, 65536});
  EXPECT_LT(plan.num_blocks(), static_cast<int>(tiles.size()));
  validate_plan(plan, dims);
  // Every multi-tile block's K sum exceeds theta (except possibly the last).
  for (int b = 0; b + 1 < plan.num_blocks(); ++b) {
    const auto [begin, end] = plan.block_tiles(b);
    if (end - begin == 1) continue;
    long long sum_k = 0;
    for (int t = begin; t < end; ++t)
      sum_k += dims[static_cast<std::size_t>(
                        plan.gemm_of_tile[static_cast<std::size_t>(t)])]
                   .k;
    EXPECT_GT(sum_k, 256);
  }
}

TEST(BatchThreshold, OneTilePerBlockWhenTlpScarce) {
  // 4 tiles total: TLP = 4*256 = 1024 <= 32768 -> no batching at all.
  const std::vector<GemmDims> dims = {{32, 32, 32}};
  const auto tiles = tiles_for(dims);
  const BatchPlan plan =
      batch_threshold(tiles, 256, BatchingConfig{256, 65536});
  EXPECT_EQ(plan.num_blocks(), 4);
  validate_plan(plan, dims);
}

TEST(BatchThreshold, StopsBatchingOnceTlpSpent) {
  // Slightly above the boundary: once enough tiles are consumed, the
  // remaining ones must go one per block.
  const std::vector<GemmDims> dims(9, GemmDims{64, 64, 64});
  const auto tiles = tiles_for(dims);  // 144 tiles; TLP = 36864 > 32768
  const BatchPlan plan =
      batch_threshold(tiles, 256, BatchingConfig{256, 65536});
  validate_plan(plan, dims);
  // The tail blocks hold exactly one tile.
  const auto [lb, le] = plan.block_tiles(plan.num_blocks() - 1);
  EXPECT_EQ(le - lb, 1);
  // And batching happened at the front.
  const auto [fb, fe] = plan.block_tiles(0);
  EXPECT_GT(fe - fb, 1);
}

TEST(BatchThreshold, DeepKTilesGetTheirOwnBlock) {
  // K = 1024 >= theta: the first tile already exceeds theta, one per block
  // even with TLP to spare.
  const std::vector<GemmDims> dims(256, GemmDims{16, 16, 1024});
  const auto tiles = tiles_for(dims);
  const BatchPlan plan =
      batch_threshold(tiles, 256, BatchingConfig{256, 65536});
  validate_plan(plan, dims);
  for (int b = 0; b < plan.num_blocks(); ++b) {
    const auto [begin, end] = plan.block_tiles(b);
    EXPECT_EQ(end - begin, 1);
  }
}

// ---------------------------------------------------------- batch_binary --

TEST(BatchBinary, PairsMinWithMax) {
  std::vector<GemmDims> dims = {
      {16, 16, 16}, {16, 16, 512}, {16, 16, 64}, {16, 16, 128}};
  const auto tiles = tiles_for(dims);
  const BatchPlan plan = batch_binary(tiles, 256, BatchingConfig{256, 65536});
  validate_plan(plan, dims);
  // K=512 >= theta gets its own block under the deep-K guard, then min/max
  // pairing gives {16,128} and the leftover {64}: 3 blocks total.
  EXPECT_EQ(plan.num_blocks(), 3);
}

TEST(BatchBinary, DeepTileSingletonGuard) {
  std::vector<GemmDims> dims = {{16, 16, 16}, {16, 16, 512}};
  const auto tiles = tiles_for(dims);
  const BatchPlan plan = batch_binary(tiles, 256, BatchingConfig{256, 65536});
  validate_plan(plan, dims);
  ASSERT_EQ(plan.num_blocks(), 2);  // 512 alone, 16 alone
}

TEST(BatchBinary, AtMostTwoTilesPerBlock) {
  std::vector<GemmDims> dims;
  for (int i = 0; i < 33; ++i) dims.push_back(GemmDims{16, 16, 16 + i});
  const auto tiles = tiles_for(dims);
  const BatchPlan plan = batch_binary(tiles, 256, BatchingConfig{256, 65536});
  validate_plan(plan, dims);
  for (int b = 0; b < plan.num_blocks(); ++b) {
    const auto [begin, end] = plan.block_tiles(b);
    EXPECT_LE(end - begin, 2);
    EXPECT_GE(end - begin, 1);
  }
}

TEST(BatchBinary, OddCountLeavesSingleton) {
  std::vector<GemmDims> dims = {{16, 16, 10}, {16, 16, 20}, {16, 16, 30}};
  const auto tiles = tiles_for(dims);
  const BatchPlan plan = batch_binary(tiles, 256, BatchingConfig{256, 65536});
  validate_plan(plan, dims);
  EXPECT_EQ(plan.num_blocks(), 2);  // {10,30} and {20}
}

TEST(BatchBinary, PairSumsClusterNearTheta) {
  // Ks spread uniformly: pairing min-max keeps sums near constant.
  std::vector<GemmDims> dims;
  for (int k = 16; k <= 240; k += 16) dims.push_back(GemmDims{16, 16, k});
  const auto tiles = tiles_for(dims);
  const BatchPlan plan = batch_binary(tiles, 256, BatchingConfig{256, 65536});
  validate_plan(plan, dims);
  for (int b = 0; b < plan.num_blocks(); ++b) {
    const auto [begin, end] = plan.block_tiles(b);
    if (end - begin != 2) continue;
    const int k0 = dims[static_cast<std::size_t>(
                            plan.gemm_of_tile[static_cast<std::size_t>(
                                begin)])]
                       .k;
    const int k1 = dims[static_cast<std::size_t>(
                            plan.gemm_of_tile[static_cast<std::size_t>(
                                begin + 1)])]
                       .k;
    EXPECT_EQ(k0 + k1, 256);  // 16+240, 32+224, ...
  }
}

// ---------------------------------------------------------- batch_packed --

TEST(BatchPacked, RespectsThetaCapacity) {
  std::vector<GemmDims> dims;
  for (int k : {100, 200, 60, 90, 150, 40}) dims.push_back({16, 16, k});
  const auto tiles = tiles_for(dims);
  const BatchPlan plan = batch_packed(tiles, 256, BatchingConfig{256, 1});
  validate_plan(plan, dims);
  for (int b = 0; b < plan.num_blocks(); ++b) {
    const auto [begin, end] = plan.block_tiles(b);
    long long sum = 0;
    for (int t = begin; t < end; ++t)
      sum += dims[static_cast<std::size_t>(
                      plan.gemm_of_tile[static_cast<std::size_t>(t)])]
                 .k;
    // A block exceeds theta only when a single tile does.
    if (end - begin > 1) EXPECT_LE(sum, 256);
  }
}

TEST(BatchPacked, PacksDenselyWhenTlpAbundant) {
  // 12 tiles of K=64 pack into 3 blocks of 4 (theta 256).
  const std::vector<GemmDims> dims(12, GemmDims{16, 16, 64});
  const auto tiles = tiles_for(dims);
  const BatchPlan plan = batch_packed(tiles, 256, BatchingConfig{256, 1});
  validate_plan(plan, dims);
  EXPECT_EQ(plan.num_blocks(), 3);
}

TEST(BatchPacked, TlpGuardFallsBackToNone) {
  // Few tiles with a huge threshold: packing would starve the GPU.
  const std::vector<GemmDims> dims(8, GemmDims{16, 16, 32});
  const auto tiles = tiles_for(dims);
  const BatchPlan plan =
      batch_packed(tiles, 256, BatchingConfig{256, 1 << 20});
  validate_plan(plan, dims);
  EXPECT_EQ(plan.num_blocks(), static_cast<int>(tiles.size()));
}

TEST(BatchPacked, DeepTilesGetOwnBlocks) {
  std::vector<GemmDims> dims = {{16, 16, 1024}, {16, 16, 16}, {16, 16, 16}};
  const auto tiles = tiles_for(dims);
  const BatchPlan plan = batch_packed(tiles, 256, BatchingConfig{256, 1});
  validate_plan(plan, dims);
  // 1024 alone, the two 16s together.
  EXPECT_EQ(plan.num_blocks(), 2);
}

// --------------------------------------------------------------- dispatch --

TEST(BatchTiles, DispatchesOnHeuristic) {
  const std::vector<GemmDims> dims = {{32, 32, 32}};
  const auto tiles = tiles_for(dims);
  EXPECT_EQ(batch_tiles(BatchingHeuristic::kNone, tiles, 256).num_blocks(),
            4);
  EXPECT_LE(batch_tiles(BatchingHeuristic::kBinary, tiles, 256).num_blocks(),
            4);
}

TEST(BatchTiles, HeuristicNames) {
  EXPECT_STREQ(to_string(BatchingHeuristic::kThreshold), "threshold");
  EXPECT_STREQ(to_string(BatchingHeuristic::kBinary), "binary");
  EXPECT_STREQ(to_string(BatchingHeuristic::kNone), "none");
  EXPECT_STREQ(to_string(BatchingHeuristic::kPacked), "packed");
}

// ------------------------------------------------------------- validation --

TEST(ValidatePlan, DetectsDuplicateTile) {
  const std::vector<GemmDims> dims = {{16, 16, 8}};
  const auto tiles = tiles_for(dims);
  BatchPlan plan = batch_none(tiles, 256);
  // Duplicate the only tile into a second block.
  plan.gemm_of_tile.push_back(plan.gemm_of_tile[0]);
  plan.strategy_of_tile.push_back(plan.strategy_of_tile[0]);
  plan.y_coord.push_back(plan.y_coord[0]);
  plan.x_coord.push_back(plan.x_coord[0]);
  plan.tile_offsets.push_back(2);
  EXPECT_THROW(validate_plan(plan, dims), CheckError);
}

TEST(ValidatePlan, DetectsMissingTile) {
  const std::vector<GemmDims> dims = {{32, 16, 8}};  // 2 tiles
  const auto tiles = tiles_for(dims);
  std::vector<Tile> partial(tiles.begin(), tiles.begin() + 1);
  const BatchPlan plan = batch_none(partial, 256);
  EXPECT_THROW(validate_plan(plan, dims), CheckError);
}

TEST(ValidatePlan, DetectsOutOfRangeCoordinate) {
  const std::vector<GemmDims> dims = {{16, 16, 8}};
  BatchPlan plan = batch_none(tiles_for(dims), 256);
  plan.x_coord[0] = 5;
  EXPECT_THROW(validate_plan(plan, dims), CheckError);
}

TEST(ValidatePlan, DetectsForeignGemmIndex) {
  const std::vector<GemmDims> dims = {{16, 16, 8}};
  BatchPlan plan = batch_none(tiles_for(dims), 256);
  plan.gemm_of_tile[0] = 3;
  EXPECT_THROW(validate_plan(plan, dims), CheckError);
}

TEST(ValidatePlan, DetectsThreadStructureViolation) {
  const std::vector<GemmDims> dims = {{16, 16, 8}};
  BatchPlan plan = batch_none(tiles_for(dims), 256);
  plan.block_threads = 128;  // tiles were tiled with 256-thread strategies
  EXPECT_THROW(validate_plan(plan, dims), CheckError);
}

TEST(BuildPlan, RejectsMixedThreadVariants) {
  Tile t1{0, 0, 0, 8, 0, 0, &batched_strategy(TileShape::kSmall,
                                        ThreadVariant::k256)};
  Tile t2{1, 0, 0, 8, 0, 0, &batched_strategy(TileShape::kSmall,
                                        ThreadVariant::k128)};
  const std::vector<std::vector<Tile>> blocks = {{t1}, {t2}};
  EXPECT_THROW(build_plan(blocks, 256), CheckError);
}

TEST(BuildPlan, FootprintIsMaxOverStrategies) {
  const auto& small = batched_strategy(TileShape::kSmall,
                                       ThreadVariant::k256);
  const auto& huge = batched_strategy(TileShape::kHuge, ThreadVariant::k256);
  Tile t1{0, 0, 0, 8, 0, 0, &small};
  Tile t2{1, 0, 0, 8, 0, 0, &huge};
  const std::vector<std::vector<Tile>> blocks = {{t1}, {t2}};
  const BatchPlan plan = build_plan(blocks, 256);
  EXPECT_EQ(plan.smem_bytes, huge.smem_bytes());
  EXPECT_EQ(plan.regs_per_thread, huge.regs_per_thread());
}

TEST(PlanToString, RendersAuxArrays) {
  const std::vector<GemmDims> dims = {{16, 32, 8}};
  const BatchPlan plan = batch_none(tiles_for(dims), 256);
  const std::string s = to_string(plan);
  EXPECT_NE(s.find("Tile:"), std::string::npos);
  EXPECT_NE(s.find("GEMM:"), std::string::npos);
  EXPECT_NE(s.find("Y_Coord:"), std::string::npos);
}

// Paper Fig. 6's worked layout: two 128x128 tiles for GEMM 0 (huge) and
// eight 128x64 tiles for GEMM 1 (tall), six blocks, block 2 holding two
// tiles of GEMM 1.
TEST(BatchPlan, PaperFigure6Layout) {
  const auto& huge = batched_strategy(TileShape::kHuge, ThreadVariant::k256);
  const auto& tall = batched_strategy(TileShape::kTall, ThreadVariant::k256);
  const std::vector<GemmDims> dims = {{128, 256, 64}, {512, 128, 64}};
  // GEMM 0: 1x2 huge tiles. GEMM 1: 4x2 tall tiles... the figure uses eight
  // 128x64 tiles => 4 rows x 2 cols.
  std::vector<const TilingStrategy*> strategies = {&huge, &tall};
  const auto tiles = enumerate_tiles(dims, strategies);
  ASSERT_EQ(tiles.size(), 10u);
  // Six blocks: each of GEMM 0's tiles alone, GEMM 1's eight tiles in pairs.
  std::vector<std::vector<Tile>> blocks = {
      {tiles[0]},           {tiles[1]},           {tiles[2], tiles[3]},
      {tiles[4], tiles[5]}, {tiles[6], tiles[7]}, {tiles[8], tiles[9]}};
  const BatchPlan plan = build_plan(blocks, 256);
  validate_plan(plan, dims);
  EXPECT_EQ(plan.num_blocks(), 6);
  const auto [b2begin, b2end] = plan.block_tiles(2);
  EXPECT_EQ(b2end - b2begin, 2);
  EXPECT_EQ(plan.gemm_of_tile[static_cast<std::size_t>(b2begin)], 1);
}

}  // namespace
}  // namespace ctb
