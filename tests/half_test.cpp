#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "core/api.hpp"
#include "kernels/work_builder.hpp"
#include "linalg/half.hpp"

namespace ctb {
namespace {

// ---------------------------------------------------------- conversions --

TEST(Half, ExactSmallIntegersRoundTrip) {
  for (int i = -2048; i <= 2048; ++i) {  // |x| <= 2^11 exact in binary16
    const float f = static_cast<float>(i);
    EXPECT_EQ(half_bits_to_float(float_to_half_bits(f)), f) << i;
  }
}

TEST(Half, KnownBitPatterns) {
  EXPECT_EQ(float_to_half_bits(0.0f), 0x0000);
  EXPECT_EQ(float_to_half_bits(-0.0f), 0x8000);
  EXPECT_EQ(float_to_half_bits(1.0f), 0x3C00);
  EXPECT_EQ(float_to_half_bits(-2.0f), 0xC000);
  EXPECT_EQ(float_to_half_bits(65504.0f), 0x7BFF);  // max finite half
  EXPECT_EQ(half_bits_to_float(0x3C00), 1.0f);
  EXPECT_EQ(half_bits_to_float(0x7BFF), 65504.0f);
}

TEST(Half, OverflowBecomesInfinity) {
  EXPECT_EQ(float_to_half_bits(1e6f), 0x7C00);
  EXPECT_EQ(float_to_half_bits(-1e6f), 0xFC00);
  EXPECT_TRUE(std::isinf(half_bits_to_float(0x7C00)));
}

TEST(Half, NanPropagates) {
  const std::uint16_t bits =
      float_to_half_bits(std::numeric_limits<float>::quiet_NaN());
  EXPECT_EQ(bits & 0x7C00, 0x7C00);
  EXPECT_NE(bits & 0x03FF, 0);  // stays NaN, not Inf
  EXPECT_TRUE(std::isnan(half_bits_to_float(bits)));
}

TEST(Half, InfinityRoundTrips) {
  const float inf = std::numeric_limits<float>::infinity();
  EXPECT_EQ(half_bits_to_float(float_to_half_bits(inf)), inf);
  EXPECT_EQ(half_bits_to_float(float_to_half_bits(-inf)), -inf);
}

TEST(Half, SubnormalsRepresented) {
  // Smallest positive subnormal half = 2^-24.
  const float tiny = std::ldexp(1.0f, -24);
  EXPECT_EQ(float_to_half_bits(tiny), 0x0001);
  EXPECT_EQ(half_bits_to_float(0x0001), tiny);
  // Below half the smallest subnormal: flush to zero.
  EXPECT_EQ(float_to_half_bits(std::ldexp(1.0f, -26)), 0x0000);
}

TEST(Half, RoundToNearestEven) {
  // 1 + 2^-11 is exactly halfway between 1.0 and the next half (1 + 2^-10):
  // ties to even keeps 1.0.
  EXPECT_EQ(float_to_half_bits(1.0f + std::ldexp(1.0f, -11)), 0x3C00);
  // Slightly above the halfway point rounds up.
  EXPECT_EQ(float_to_half_bits(1.0f + std::ldexp(1.0f, -11) * 1.01f),
            0x3C01);
  // Halfway between 1+2^-10 and 1+2^-9 (odd mantissa) rounds up to even.
  EXPECT_EQ(float_to_half_bits(1.0f + 3.0f * std::ldexp(1.0f, -11)),
            0x3C02);
}

TEST(Half, RoundTripIsIdempotent) {
  Rng rng(404);
  for (int i = 0; i < 2000; ++i) {
    const float x = rng.uniform_float(-100.0f, 100.0f);
    const float once = round_to_half(x);
    EXPECT_EQ(round_to_half(once), once);
    EXPECT_LE(std::fabs(once - x), std::fabs(x) * (1.0f / 1024.0f) + 1e-7f);
  }
}

TEST(Half, AllBitPatternsRoundTripThroughFloat) {
  // Every finite half converts to float and back to the same bits.
  for (std::uint32_t bits = 0; bits <= 0xFFFF; ++bits) {
    const auto h = static_cast<std::uint16_t>(bits);
    if ((h & 0x7C00) == 0x7C00 && (h & 0x3FF) != 0) continue;  // NaNs
    EXPECT_EQ(float_to_half_bits(half_bits_to_float(h)), h) << bits;
  }
}

TEST(Half, TypeWrapper) {
  const half_t h(1.5f);
  EXPECT_EQ(h.to_float(), 1.5f);
  EXPECT_EQ(half_t::from_bits(h.bits()), h);
  EXPECT_EQ(static_cast<float>(half_t(0.25f)), 0.25f);
}

// -------------------------------------------------------- fp16 GEMM path --

Matrixf rand_mat(int r, int c, Rng& rng) {
  Matrixf m(static_cast<std::size_t>(r), static_cast<std::size_t>(c));
  fill_random(m, rng);
  return m;
}

TEST(Fp16Gemm, KernelMatchesFp16Reference) {
  Rng rng(17);
  const GemmDims d{48, 40, 56};
  const Matrixf a = rand_mat(d.m, d.k, rng);
  const Matrixf b = rand_mat(d.k, d.n, rng);
  Matrixf ref(static_cast<std::size_t>(d.m), static_cast<std::size_t>(d.n));
  gemm_naive_fp16(a, b, ref, 1.0f, 0.0f);

  for (int id : {1, 5, 11}) {  // small/256, medium/... spot strategies
    const TilingStrategy& s = batched_strategy_by_id(id);
    Matrixf c(static_cast<std::size_t>(d.m), static_cast<std::size_t>(d.n));
    GemmOperands g = operands(a, b, c);
    g.precision = Precision::kFp16;
    run_single_gemm(s, g, 1.0f, 0.0f);
    // Accumulation order differs between tilings, so compare within the
    // fp16 accumulation tolerance rather than exactly.
    EXPECT_LT(max_abs_diff(c, ref), 0.05f) << s.name();
    // And every output value must be exactly representable in binary16.
    for (float v : c.flat()) EXPECT_EQ(v, round_to_half(v));
  }
}

TEST(Fp16Gemm, DiffersFromFp32ByRoundingOnly) {
  Rng rng(18);
  const Matrixf a = rand_mat(32, 64, rng);
  const Matrixf b = rand_mat(64, 32, rng);
  Matrixf c16(32, 32), c32(32, 32);
  gemm_naive_fp16(a, b, c16, 1.0f, 0.0f);
  gemm_naive(a, b, c32, 1.0f, 0.0f);
  EXPECT_GT(max_abs_diff(c16, c32), 0.0f);   // rounding is visible
  EXPECT_LT(max_abs_diff(c16, c32), 0.05f);  // but small
}

TEST(Fp16Gemm, BatchedApiRoundsOutputs) {
  Rng rng(19);
  const Matrixf a = rand_mat(32, 32, rng);
  const Matrixf b = rand_mat(32, 32, rng);
  Matrixf c(32, 32);
  const std::vector<const Matrixf*> av{&a}, bv{&b};
  std::vector<Matrixf*> cv{&c};
  PlannerConfig config;
  config.precision = Precision::kFp16;
  batched_gemm(av, bv, cv, 1.0f, 0.0f, config);
  for (float v : c.flat()) EXPECT_EQ(v, round_to_half(v));
}

// ------------------------------------------------------------ fp16 timing --

TEST(Fp16Timing, HalvesByteTraffic) {
  const GemmDims d{64, 64, 64};
  const auto& s = batched_strategy(TileShape::kLarge, ThreadVariant::k256);
  const TileWork w32 = make_tile_work(s, d, 0, 0, Precision::kFp32);
  const TileWork w16 = make_tile_work(s, d, 0, 0, Precision::kFp16);
  EXPECT_EQ(w16.bytes_per_iter * 2, w32.bytes_per_iter);
  EXPECT_EQ(w16.epilogue_bytes * 2, w32.epilogue_bytes);
}

TEST(Fp16Timing, TensorCoresAccelerateComputeBoundBatches) {
  // Large compute-bound batch on V100: fp16 should land well above fp32
  // throughput (tensor cores), though below the full 8x (memory limits).
  const GpuArch& arch = gpu_arch(GpuModel::kV100);
  const std::vector<GemmDims> dims(64, GemmDims{512, 512, 512});
  const BatchedGemmPlanner planner{PlannerConfig{}};
  const PlanSummary s = planner.plan(dims);
  const double t32 = time_plan(arch, s.plan, dims, Precision::kFp32).time_us;
  const double t16 = time_plan(arch, s.plan, dims, Precision::kFp16).time_us;
  EXPECT_LT(t16, t32 / 1.5);
}

TEST(Fp16Timing, NoSpeedupWithoutFastFp16Hardware) {
  // Maxwell-class GPUs gain only the bandwidth halving, never a compute
  // speedup beyond ~2x.
  const GpuArch& arch = gpu_arch(GpuModel::kGTXTitanX);
  const std::vector<GemmDims> dims(16, GemmDims{256, 256, 256});
  const BatchedGemmPlanner planner{PlannerConfig{}};
  const PlanSummary s = planner.plan(dims);
  const double t32 = time_plan(arch, s.plan, dims, Precision::kFp32).time_us;
  const double t16 = time_plan(arch, s.plan, dims, Precision::kFp16).time_us;
  EXPECT_GE(t16, t32 / 2.2);
  EXPECT_LE(t16, t32 * 1.01);
}

}  // namespace
}  // namespace ctb
