// Property-based coverage of the whole plan pipeline: for seeded random
// batches — ragged shapes, transposed operands, fp16, gathered B — and for
// every batching policy, the planner's output must (a) cover every C tile of
// every GEMM exactly once with per-GEMM-consistent strategies and coherent
// aux arrays, and (b) execute to bit-identical C against reference_gemm.
// The checks here are written independently of validate_plan so a bug in the
// shared validator cannot mask a bug in the planner.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "core/api.hpp"
#include "core/plan_io.hpp"
#include "core/rf_policy.hpp"
#include "kernels/functional.hpp"
#include "kernels/simd.hpp"
#include "service/plan_service.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace ctb {
namespace {

// 200 random batches per policy; the sweep must stay well under the 60 s
// single-core budget, so dimensions are log-uniform in [1, 128] — small
// shapes dominate (they are also where coverage bugs live: ragged edges,
// single-tile GEMMs, K < BK) with occasional multi-tile cases.
constexpr int kCasesPerPolicy = 200;

int log_uniform_dim(Rng& rng) {
  const int cap = 1 << rng.uniform_int(0, 7);
  return static_cast<int>(rng.uniform_int(1, cap));
}

/// Everything needed to regenerate one random case deterministically.
struct PropertyCase {
  std::vector<GemmDims> dims;
  std::vector<Op> op_a, op_b;
  std::vector<bool> gather_b;
  std::vector<int> epilogue;  ///< per-GEMM packed chains; empty = plain
  Precision precision = Precision::kFp32;
  float alpha = 1.0f;
  float beta = 0.0f;
  std::uint64_t data_seed = 0;
};

PropertyCase random_case(Rng& rng) {
  PropertyCase pc;
  const int batch = static_cast<int>(rng.uniform_int(1, 6));
  for (int i = 0; i < batch; ++i) {
    pc.dims.push_back(
        {log_uniform_dim(rng), log_uniform_dim(rng), log_uniform_dim(rng)});
    pc.op_a.push_back(rng.bernoulli(0.25) ? Op::kT : Op::kN);
    pc.op_b.push_back(rng.bernoulli(0.25) ? Op::kT : Op::kN);
    // The gather path replaces stored B; it models implicit GEMM, which is
    // always kN, so only non-transposed B operands may gather.
    pc.gather_b.push_back(pc.op_b.back() == Op::kN && rng.bernoulli(0.2));
  }
  pc.precision = rng.bernoulli(0.25) ? Precision::kFp16 : Precision::kFp32;
  constexpr float kAlphas[] = {1.0f, 1.5f, -0.5f, 0.25f};
  constexpr float kBetas[] = {0.0f, 1.0f, -1.0f, 0.5f};
  pc.alpha = kAlphas[rng.uniform_int(0, 3)];
  pc.beta = kBetas[rng.uniform_int(0, 3)];
  pc.data_seed = rng.next();
  return pc;
}

/// Attaches a random epilogue chain (1..3 distinct ops from the full
/// catalog, random order) to ~3/4 of the case's GEMMs. The executors reject
/// beta != 0 under a destination permutation, so beta drops to 0 whenever
/// any chain permutes.
void add_random_epilogues(PropertyCase& pc, Rng& rng) {
  pc.epilogue.assign(pc.dims.size(), 0);
  bool any_perm = false;
  for (std::size_t i = 0; i < pc.dims.size(); ++i) {
    if (!rng.bernoulli(0.75)) continue;
    std::vector<EpilogueOp> pool = {EpilogueOp::kBias, EpilogueOp::kRelu,
                                    EpilogueOp::kResidual,
                                    EpilogueOp::kRowPerm,
                                    EpilogueOp::kColPerm};
    rng.shuffle(pool);
    const int take = 1 + static_cast<int>(rng.uniform_int(0, 2));
    int spec = 0;
    for (int j = 0; j < take; ++j) {
      spec = epilogue_push(spec, pool[static_cast<std::size_t>(j)]);
      any_perm = any_perm || pool[static_cast<std::size_t>(j)] ==
                                 EpilogueOp::kRowPerm ||
                 pool[static_cast<std::size_t>(j)] == EpilogueOp::kColPerm;
    }
    pc.epilogue[i] = spec;
  }
  if (any_perm) pc.beta = 0.0f;
}

/// Owning storage for one materialization of a case. Matrices are allocated
/// first and operand pointers taken afterwards so vector growth cannot move
/// them.
struct CaseStorage {
  std::vector<Matrixf> a, b, c;
  std::vector<std::vector<float>> bias, residual;
  std::vector<std::vector<int>> row_perm, col_perm;
  std::vector<GemmOperands> ops;
};

CaseStorage materialize(const PropertyCase& pc) {
  CaseStorage cs;
  Rng rng(pc.data_seed);
  auto rand_mat = [&rng](int r, int c) {
    Matrixf m(static_cast<std::size_t>(r), static_cast<std::size_t>(c));
    fill_random(m, rng);
    return m;
  };
  for (std::size_t i = 0; i < pc.dims.size(); ++i) {
    const GemmDims& d = pc.dims[i];
    const bool ta = pc.op_a[i] == Op::kT;
    const bool tb = pc.op_b[i] == Op::kT;
    cs.a.push_back(rand_mat(ta ? d.k : d.m, ta ? d.m : d.k));
    cs.b.push_back(rand_mat(tb ? d.n : d.k, tb ? d.k : d.n));
    cs.c.push_back(rand_mat(d.m, d.n));
  }
  for (std::size_t i = 0; i < pc.dims.size(); ++i) {
    GemmOperands g =
        operands(cs.a[i], cs.b[i], cs.c[i], pc.op_a[i], pc.op_b[i]);
    g.precision = pc.precision;
    if (pc.gather_b[i]) {
      const float* data = cs.b[i].flat().data();
      const int n = pc.dims[i].n;
      g.b_gather = [data, n](int k, int j) { return data[k * n + j]; };
      g.b = nullptr;
    }
    cs.ops.push_back(std::move(g));
  }
  // Epilogue operands come from the same deterministic stream, so the plan
  // run and the reference run materialize identical chains.
  cs.bias.resize(pc.dims.size());
  cs.residual.resize(pc.dims.size());
  cs.row_perm.resize(pc.dims.size());
  cs.col_perm.resize(pc.dims.size());
  for (std::size_t i = 0; i < pc.epilogue.size(); ++i) {
    const int spec = pc.epilogue[i];
    if (spec == 0) continue;
    const GemmDims& d = pc.dims[i];
    cs.ops[i].epilogue = spec;
    EpilogueArgs& args = cs.ops[i].epilogue_args;
    if (epilogue_has_op(spec, EpilogueOp::kBias)) {
      cs.bias[i].resize(static_cast<std::size_t>(d.m));
      for (float& v : cs.bias[i])
        v = static_cast<float>(rng.uniform_int(-64, 64)) / 16.0f;
      args.bias = cs.bias[i].data();
      args.bias_len = d.m;
    }
    if (epilogue_has_op(spec, EpilogueOp::kResidual)) {
      cs.residual[i].resize(static_cast<std::size_t>(d.m) *
                            static_cast<std::size_t>(d.n));
      for (float& v : cs.residual[i])
        v = static_cast<float>(rng.uniform_int(-64, 64)) / 16.0f;
      args.residual = cs.residual[i].data();
      args.residual_rows = d.m;
      args.residual_cols = d.n;
    }
    if (epilogue_has_op(spec, EpilogueOp::kRowPerm)) {
      cs.row_perm[i].resize(static_cast<std::size_t>(d.m));
      for (int r = 0; r < d.m; ++r)
        cs.row_perm[i][static_cast<std::size_t>(r)] = r;
      rng.shuffle(cs.row_perm[i]);
      args.row_perm = cs.row_perm[i].data();
      args.row_perm_len = d.m;
    }
    if (epilogue_has_op(spec, EpilogueOp::kColPerm)) {
      cs.col_perm[i].resize(static_cast<std::size_t>(d.n));
      for (int cix = 0; cix < d.n; ++cix)
        cs.col_perm[i][static_cast<std::size_t>(cix)] = cix;
      rng.shuffle(cs.col_perm[i]);
      args.col_perm = cs.col_perm[i].data();
      args.col_perm_len = d.n;
    }
  }
  return cs;
}

/// Independent re-derivation of the plan invariants (deliberately not
/// validate_plan): aux arrays agree on the tile count, CSR offsets are sane,
/// each GEMM uses one strategy whose thread variant matches the unified
/// block size, and the per-GEMM coverage is exact. For unsplit plans every
/// (ty, tx) of the tile grid appears exactly once; for split-K plans the
/// check generalizes — the K ranges recorded for each coordinate must form
/// an exact, gap-free, non-overlapping ascending partition of [0, K) with
/// BK-aligned interior boundaries (a duplicated full-K tile fails this too:
/// its second [0, K) range cannot chain after the first).
void check_plan_properties(const BatchPlan& plan,
                           std::span<const GemmDims> dims,
                           const std::string& what) {
  SCOPED_TRACE(what);
  const std::size_t tiles = plan.gemm_of_tile.size();
  ASSERT_EQ(plan.strategy_of_tile.size(), tiles);
  ASSERT_EQ(plan.y_coord.size(), tiles);
  ASSERT_EQ(plan.x_coord.size(), tiles);
  if (plan.has_split()) {
    ASSERT_EQ(plan.k_begin.size(), tiles);
    ASSERT_EQ(plan.k_end.size(), tiles);
  } else {
    ASSERT_TRUE(plan.k_end.empty());
  }
  ASSERT_TRUE(plan.block_threads == 128 || plan.block_threads == 256);
  ASSERT_FALSE(plan.tile_offsets.empty());
  ASSERT_EQ(plan.tile_offsets.front(), 0);
  for (std::size_t b = 1; b < plan.tile_offsets.size(); ++b)
    ASSERT_LE(plan.tile_offsets[b - 1], plan.tile_offsets[b]) << "block " << b;
  ASSERT_EQ(static_cast<std::size_t>(plan.tile_offsets.back()), tiles);

  std::vector<int> strategy_of_gemm(dims.size(), -1);
  // Per GEMM, per coordinate: every K range claimed for it, in plan order.
  std::vector<std::map<std::pair<int, int>, std::vector<std::pair<int, int>>>>
      covered(dims.size());
  int max_smem = 0;
  for (std::size_t t = 0; t < tiles; ++t) {
    const int g = plan.gemm_of_tile[t];
    ASSERT_GE(g, 0) << "tile " << t;
    ASSERT_LT(static_cast<std::size_t>(g), dims.size()) << "tile " << t;
    const int sid = plan.strategy_of_tile[t];
    if (strategy_of_gemm[g] < 0)
      strategy_of_gemm[g] = sid;
    else
      ASSERT_EQ(strategy_of_gemm[g], sid) << "gemm " << g << " mixes ids";
    const TilingStrategy& s = batched_strategy_by_id(sid);
    ASSERT_EQ(s.threads, plan.block_threads) << "tile " << t;
    max_smem = s.smem_bytes() > max_smem ? s.smem_bytes() : max_smem;
    const int ty_count = (dims[g].m + s.by - 1) / s.by;
    const int tx_count = (dims[g].n + s.bx - 1) / s.bx;
    ASSERT_GE(plan.y_coord[t], 0);
    ASSERT_LT(plan.y_coord[t], ty_count) << "tile " << t << " gemm " << g;
    ASSERT_GE(plan.x_coord[t], 0);
    ASSERT_LT(plan.x_coord[t], tx_count) << "tile " << t << " gemm " << g;
    covered[g][{plan.y_coord[t], plan.x_coord[t]}].push_back(
        plan.tile_k_range(static_cast<int>(t), dims[g].k));
  }
  for (std::size_t g = 0; g < dims.size(); ++g) {
    ASSERT_GE(strategy_of_gemm[g], 0) << "gemm " << g << " has no tiles";
    const TilingStrategy& s = batched_strategy_by_id(strategy_of_gemm[g]);
    ASSERT_EQ(static_cast<long long>(covered[g].size()),
              s.tiles_for(dims[g].m, dims[g].n))
        << "gemm " << g;
    const int K = dims[g].k;
    for (auto& [coord, ranges] : covered[g]) {
      const std::string where = "gemm " + std::to_string(g) + " tile (" +
                                std::to_string(coord.first) + "," +
                                std::to_string(coord.second) + ")";
      std::sort(ranges.begin(), ranges.end());
      int expect_begin = 0;
      for (const auto& [kb, ke] : ranges) {
        ASSERT_EQ(kb, expect_begin)
            << where << " K ranges leave a gap or overlap at " << kb;
        ASSERT_LT(kb, ke) << where << " empty K range";
        ASSERT_LE(ke, K) << where << " K range past K";
        if (ke != K)
          ASSERT_EQ(ke % s.bk, 0) << where << " interior boundary " << ke
                                  << " not BK-aligned";
        expect_begin = ke;
      }
      ASSERT_EQ(expect_begin, K) << where << " K ranges stop short of K";
    }
  }
  ASSERT_GE(plan.smem_bytes, max_smem);
}

void expect_bitwise_equal(const Matrixf& expected, const Matrixf& actual,
                          const std::string& what) {
  const auto e = expected.flat();
  const auto a = actual.flat();
  ASSERT_EQ(e.size(), a.size());
  for (std::size_t i = 0; i < e.size(); ++i)
    ASSERT_EQ(e[i], a[i]) << what << " diverges at flat index " << i;
}

const RandomForest& property_forest() {
  static const RandomForest forest = [] {
    RfTrainingConfig config;
    config.num_cases = 40;
    config.forest.num_trees = 8;
    config.ranges.max_batch = 8;
    config.ranges.max_mn = 256;
    config.ranges.max_k = 512;
    return train_batching_forest(config);
  }();
  return forest;
}

void run_policy_property(BatchingPolicy policy) {
  PlannerConfig config;
  config.policy = policy;
  if (policy == BatchingPolicy::kRandomForest)
    config.forest = &property_forest();
  const BatchedGemmPlanner planner(config);
  // A couple of workers keep the block-parallel executor path (and its
  // thread-safety) under test without swamping the single-core CI box.
  ScopedParallelThreads guard(2);

  Rng rng(0xC0FFEE0ULL + static_cast<std::uint64_t>(policy));
  for (int iter = 0; iter < kCasesPerPolicy; ++iter) {
    const PropertyCase pc = random_case(rng);
    const std::string what = std::string("policy=") + to_string(policy) +
                             " iter=" + std::to_string(iter);
    const PlanSummary summary = planner.plan(pc.dims);
    check_plan_properties(summary.plan, pc.dims, what);
    ASSERT_NO_THROW(validate_plan(summary.plan, pc.dims)) << what;

    CaseStorage plan_run = materialize(pc);
    run_batched_plan(summary.plan, plan_run.ops, pc.alpha, pc.beta);
    CaseStorage ref_run = materialize(pc);
    for (std::size_t i = 0; i < ref_run.ops.size(); ++i)
      reference_gemm(ref_run.ops[i], pc.alpha, pc.beta);
    for (std::size_t i = 0; i < pc.dims.size(); ++i)
      expect_bitwise_equal(ref_run.c[i], plan_run.c[i],
                           what + " gemm " + std::to_string(i));
  }
}

TEST(PlanProperty, ThresholdOnly) {
  run_policy_property(BatchingPolicy::kThresholdOnly);
}

TEST(PlanProperty, BinaryOnly) {
  run_policy_property(BatchingPolicy::kBinaryOnly);
}

TEST(PlanProperty, AutoOffline) {
  run_policy_property(BatchingPolicy::kAutoOffline);
}

TEST(PlanProperty, RandomForest) {
  run_policy_property(BatchingPolicy::kRandomForest);
}

TEST(PlanProperty, TilingOnly) {
  run_policy_property(BatchingPolicy::kTilingOnly);
}

// Split-K generators: seeded random batches planned under SplitKMode::kForce
// so K-splitting actually happens whenever a K loop has at least two BK
// steps. Every plan must pass the generalized coverage checker above (exact,
// gap-free, non-overlapping K partitions) and execute bit-identically to
// reference_gemm.
TEST(PlanProperty, ForcedSplitKPartitionsAndBitExact) {
  PlannerConfig config;
  config.splitk = SplitKMode::kForce;
  const BatchedGemmPlanner planner(config);
  ScopedParallelThreads guard(2);

  Rng rng(0x5B117C0DEULL);
  int split_plans = 0;
  for (int iter = 0; iter < 120; ++iter) {
    const PropertyCase pc = random_case(rng);
    const std::string what = "forced-splitk iter=" + std::to_string(iter);
    const PlanSummary summary = planner.plan(pc.dims);
    check_plan_properties(summary.plan, pc.dims, what);
    ASSERT_NO_THROW(validate_plan(summary.plan, pc.dims)) << what;
    if (summary.plan.has_split()) ++split_plans;

    CaseStorage plan_run = materialize(pc);
    run_batched_plan(summary.plan, plan_run.ops, pc.alpha, pc.beta);
    CaseStorage ref_run = materialize(pc);
    for (std::size_t i = 0; i < ref_run.ops.size(); ++i)
      reference_gemm(ref_run.ops[i], pc.alpha, pc.beta);
    for (std::size_t i = 0; i < pc.dims.size(); ++i)
      expect_bitwise_equal(ref_run.c[i], plan_run.c[i],
                           what + " gemm " + std::to_string(i));
  }
  // The generator's K distribution reaches 2+ BK steps often; if forcing
  // stopped producing split plans the axis is silently dead.
  EXPECT_GT(split_plans, 20);
}

// Adversarial split plans the planner would never emit: slices shuffled out
// of K order and packed into random blocks, so the executor's fix-up
// reduction must reconstruct each tile's ascending chain from the aux
// arrays alone. Coverage checker + validate_plan + bit-exactness throughout.
TEST(PlanProperty, ShuffledHandBuiltSplitPlansBitExact) {
  const TilingStrategy& s =
      batched_strategy(TileShape::kMedium, ThreadVariant::k256);
  ScopedParallelThreads guard(2);

  Rng rng(0xA11CE5EEDULL);
  int split_plans = 0;
  for (int iter = 0; iter < 60; ++iter) {
    const PropertyCase pc = random_case(rng);
    const std::string what = "shuffled-splitk iter=" + std::to_string(iter);
    const int slices = 2 + static_cast<int>(rng.uniform_int(0, 6));
    const std::vector<const TilingStrategy*> strategies(pc.dims.size(), &s);
    const std::vector<Tile> tiles = enumerate_tiles(pc.dims, strategies);
    std::vector<Tile> split = split_tiles_k(tiles, slices);
    // Fisher-Yates shuffle driven by the case's own seed stream.
    for (std::size_t i = split.size(); i > 1; --i)
      std::swap(split[i - 1],
                split[static_cast<std::size_t>(
                    rng.uniform_int(0, static_cast<int>(i) - 1))]);
    std::vector<std::vector<Tile>> blocks;
    for (std::size_t i = 0; i < split.size();) {
      const std::size_t take = std::min(
          split.size() - i,
          static_cast<std::size_t>(1 + rng.uniform_int(0, 3)));
      blocks.emplace_back(split.begin() + static_cast<std::ptrdiff_t>(i),
                          split.begin() + static_cast<std::ptrdiff_t>(i + take));
      i += take;
    }
    const BatchPlan plan = build_plan(blocks, s.threads);
    check_plan_properties(plan, pc.dims, what);
    ASSERT_NO_THROW(validate_plan(plan, pc.dims)) << what;
    if (plan.has_split()) ++split_plans;

    CaseStorage plan_run = materialize(pc);
    run_batched_plan(plan, plan_run.ops, pc.alpha, pc.beta);
    CaseStorage ref_run = materialize(pc);
    for (std::size_t i = 0; i < ref_run.ops.size(); ++i)
      reference_gemm(ref_run.ops[i], pc.alpha, pc.beta);
    for (std::size_t i = 0; i < pc.dims.size(); ++i)
      expect_bitwise_equal(ref_run.c[i], plan_run.c[i],
                           what + " gemm " + std::to_string(i));
  }
  EXPECT_GT(split_plans, 10);
}

// Degraded-then-upgraded serving through the plan service: for random cases,
// the instantly-served fallback plan AND the upgraded full plan must both
// satisfy every structural property and execute bit-identically to
// reference_gemm. This is the acceptance property of DESIGN.md §10 — a
// deadline miss may cost plan quality, never correctness.
TEST(PlanProperty, ServiceDegradedThenUpgradedBitExact) {
  service::VirtualClock clock;
  service::PlanServiceConfig cfg;
  cfg.deadline_us = 250;
  cfg.clock = &clock;
  const BatchedGemmPlanner real_planner(cfg.planner);
  cfg.planner_fn = [&](std::span<const GemmDims> dims) {
    clock.advance(5'000);  // every full planning misses the deadline
    return real_planner.plan(dims);
  };
  service::PlanService svc(cfg);
  ScopedParallelThreads guard(2);

  Rng rng(0xDE6BADEULL);
  std::set<std::uint64_t> seen;
  for (int iter = 0; iter < kCasesPerPolicy; ++iter) {
    const PropertyCase pc = random_case(rng);
    // Distinct signatures only: a repeat would hit the (already upgraded)
    // entry and skip the degraded phase this test is about.
    if (!seen.insert(batch_signature(pc.dims, cfg.planner)).second) continue;
    const std::string what = "service iter=" + std::to_string(iter);

    const service::ServedPlan degraded = svc.get(pc.dims);
    ASSERT_TRUE(degraded.summary != nullptr) << what;
    ASSERT_EQ(degraded.state, service::ServeState::kDegraded) << what;
    check_plan_properties(degraded.summary->plan, pc.dims, what + " degraded");
    {
      CaseStorage plan_run = materialize(pc);
      run_batched_plan(degraded.summary->plan, plan_run.ops, pc.alpha,
                       pc.beta);
      CaseStorage ref_run = materialize(pc);
      for (std::size_t i = 0; i < ref_run.ops.size(); ++i)
        reference_gemm(ref_run.ops[i], pc.alpha, pc.beta);
      for (std::size_t i = 0; i < pc.dims.size(); ++i)
        expect_bitwise_equal(ref_run.c[i], plan_run.c[i],
                             what + " degraded gemm " + std::to_string(i));
    }

    svc.drain();  // let the background upgrade land
    const service::ServedPlan upgraded = svc.get(pc.dims);
    ASSERT_TRUE(upgraded.summary != nullptr) << what;
    ASSERT_EQ(upgraded.state, service::ServeState::kHit) << what;
    check_plan_properties(upgraded.summary->plan, pc.dims, what + " upgraded");
    {
      CaseStorage plan_run = materialize(pc);
      run_batched_plan(upgraded.summary->plan, plan_run.ops, pc.alpha,
                       pc.beta);
      CaseStorage ref_run = materialize(pc);
      for (std::size_t i = 0; i < ref_run.ops.size(); ++i)
        reference_gemm(ref_run.ops[i], pc.alpha, pc.beta);
      for (std::size_t i = 0; i < pc.dims.size(); ++i)
        expect_bitwise_equal(ref_run.c[i], plan_run.c[i],
                             what + " upgraded gemm " + std::to_string(i));
    }
  }
  EXPECT_EQ(svc.stats().upgraded,
            static_cast<std::int64_t>(seen.size()));
}

// Random epilogue chains (bias/ReLU/residual/perms in random order) on
// random batches, executed under split-K off and forced, 1 and 4 worker
// threads, and every SIMD ISA this host can run. Every combination must be
// bit-identical to the epilogue-aware reference_gemm — the fused store is
// strictly after the split-K join and per-element, so neither the schedule
// nor the vector width may leak into the result.
TEST(PlanProperty, RandomEpiloguesBitExactAcrossSplitKThreadsIsa) {
  std::vector<SimdIsa> isas = {SimdIsa::kScalar};
  for (int i = 1; i <= static_cast<int>(detected_simd_isa()); ++i)
    isas.push_back(static_cast<SimdIsa>(i));

  Rng rng(0xEB1C0DE5EEDULL);
  int fused_cases = 0;
  for (const SplitKMode splitk : {SplitKMode::kOff, SplitKMode::kForce}) {
    PlannerConfig config;
    config.policy = BatchingPolicy::kThresholdOnly;
    config.splitk = splitk;
    const BatchedGemmPlanner planner(config);
    for (int iter = 0; iter < 30; ++iter) {
      PropertyCase pc = random_case(rng);
      add_random_epilogues(pc, rng);
      const std::string what =
          std::string("epilogue splitk=") +
          (splitk == SplitKMode::kForce ? "force" : "off") +
          " iter=" + std::to_string(iter);
      const PlanSummary summary = planner.plan(pc.dims, pc.epilogue);
      check_plan_properties(summary.plan, pc.dims, what);
      ASSERT_NO_THROW(validate_plan(summary.plan, pc.dims)) << what;
      for (int i = 0; i < static_cast<int>(pc.dims.size()); ++i)
        ASSERT_EQ(summary.plan.gemm_epilogue(i),
                  summary.plan.has_epilogue() ? pc.epilogue[
                      static_cast<std::size_t>(i)] : 0)
            << what << " gemm " << i;
      if (summary.plan.has_epilogue()) ++fused_cases;

      CaseStorage ref_run = materialize(pc);
      for (std::size_t i = 0; i < ref_run.ops.size(); ++i)
        reference_gemm(ref_run.ops[i], pc.alpha, pc.beta);
      for (const int threads : {1, 4}) {
        ScopedParallelThreads guard(threads);
        for (const SimdIsa isa : isas) {
          ScopedSimdIsa isa_guard(isa);
          CaseStorage plan_run = materialize(pc);
          run_batched_plan(summary.plan, plan_run.ops, pc.alpha, pc.beta);
          for (std::size_t i = 0; i < pc.dims.size(); ++i)
            expect_bitwise_equal(
                ref_run.c[i], plan_run.c[i],
                what + " threads=" + std::to_string(threads) + " isa=" +
                    simd_isa_name(isa) + " gemm " + std::to_string(i));
        }
      }
    }
  }
  // The generator must actually exercise fused plans, not degenerate to
  // plain batches.
  EXPECT_GT(fused_cases, 30);
}

}  // namespace
}  // namespace ctb
