#include <gtest/gtest.h>

#include <set>
#include <string>
#include "util/assert.hpp"

#include "gpusim/arch.hpp"
#include "gpusim/occupancy.hpp"

namespace ctb {
namespace {

const GpuArch& v100() { return gpu_arch(GpuModel::kV100); }

TEST(Occupancy, ThreadLimited) {
  // 1024-thread blocks with negligible other resources: 2048/1024 = 2.
  const auto r = occupancy(v100(), BlockResources{1024, 16, 0});
  EXPECT_EQ(r.blocks_per_sm, 2);
  EXPECT_STREQ(r.limiter, "threads");
}

TEST(Occupancy, RegisterLimited) {
  // 256 threads * 255 regs = 65280 regs -> 1 block per SM.
  const auto r = occupancy(v100(), BlockResources{256, 255, 0});
  EXPECT_EQ(r.blocks_per_sm, 1);
  EXPECT_STREQ(r.limiter, "registers");
}

TEST(Occupancy, SharedMemoryLimited) {
  // 40 KB of smem on a 96 KB SM -> 2 blocks.
  const auto r = occupancy(v100(), BlockResources{64, 16, 40 * 1024});
  EXPECT_EQ(r.blocks_per_sm, 2);
  EXPECT_STREQ(r.limiter, "shared-memory");
}

TEST(Occupancy, BlockSlotLimited) {
  // Tiny blocks: capped by the 32-CTA hardware limit.
  const auto r = occupancy(v100(), BlockResources{32, 8, 0});
  EXPECT_EQ(r.blocks_per_sm, 32);
  EXPECT_STREQ(r.limiter, "block-slots");
}

TEST(Occupancy, UnlaunchableTooManyThreads) {
  const auto r = occupancy(v100(), BlockResources{2048, 16, 0});
  EXPECT_EQ(r.blocks_per_sm, 0);
  EXPECT_STREQ(r.limiter, "unlaunchable");
}

TEST(Occupancy, UnlaunchableTooMuchSmem) {
  const auto r =
      occupancy(v100(), BlockResources{128, 16, 128 * 1024});
  EXPECT_EQ(r.blocks_per_sm, 0);
}

TEST(Occupancy, UnlaunchableTooManyRegs) {
  const auto r = occupancy(v100(), BlockResources{128, 300, 0});
  EXPECT_EQ(r.blocks_per_sm, 0);
}

TEST(Occupancy, ThreadOccupancyFraction) {
  const auto r = occupancy(v100(), BlockResources{256, 32, 0});
  // 256*32 regs = 8192 -> reg limit 8; threads limit 8; -> 8 blocks.
  EXPECT_EQ(r.blocks_per_sm, 8);
  EXPECT_DOUBLE_EQ(r.thread_occupancy(v100(), 256), 1.0);
}

TEST(Occupancy, P100SmallerSmemBudgetBinds) {
  const GpuArch& p100 = gpu_arch(GpuModel::kP100);
  // 20 KB blocks: V100 (96 KB) fits 4, P100 (64 KB) fits 3.
  const BlockResources blk{128, 16, 20 * 1024};
  EXPECT_EQ(occupancy(v100(), blk).blocks_per_sm, 4);
  EXPECT_EQ(occupancy(p100, blk).blocks_per_sm, 3);
}

TEST(Occupancy, ZeroThreadBlockRejected) {
  EXPECT_THROW(occupancy(v100(), BlockResources{0, 16, 0}), CheckError);
}

// -------------------------------------------------------------- presets --

TEST(ArchPresets, AllModelsHaveSaneParameters) {
  for (GpuModel model : all_gpu_models()) {
    const GpuArch& a = gpu_arch(model);
    EXPECT_GT(a.sm_count, 0) << a.name;
    EXPECT_GT(a.fp32_lanes_per_sm, 0) << a.name;
    EXPECT_GT(a.clock_ghz, 0.5) << a.name;
    EXPECT_GT(a.dram_bw_gbps, 50.0) << a.name;
    EXPECT_GT(a.peak_gflops(), 1000.0) << a.name;
    EXPECT_GT(a.mem_latency_cycles, 100) << a.name;
    EXPECT_FALSE(std::string(to_string(model)).empty());
  }
}

TEST(ArchPresets, V100PeakMatchesDatasheet) {
  // 80 SMs * 64 lanes * 2 flops * 1.53 GHz ~ 15.7 TFLOP/s.
  EXPECT_NEAR(v100().peak_gflops(), 15667.2, 1.0);
}

TEST(ArchPresets, V100IsTheFastest) {
  for (GpuModel model : all_gpu_models()) {
    EXPECT_GE(v100().peak_gflops(), gpu_arch(model).peak_gflops() - 1e9);
    EXPECT_GE(v100().dram_bw_gbps, gpu_arch(model).dram_bw_gbps);
  }
}

TEST(ArchPresets, BytesPerCycleConsistent) {
  const GpuArch& a = v100();
  EXPECT_NEAR(a.bytes_per_cycle(), 900.0 / 1.53, 1e-9);
  EXPECT_NEAR(a.cycles_to_us(1530.0), 1.0, 1e-9);
}

TEST(ArchPresets, DistinctNames) {
  std::set<std::string> names;
  for (GpuModel model : all_gpu_models()) names.insert(gpu_arch(model).name);
  EXPECT_EQ(names.size(), all_gpu_models().size());
}

}  // namespace
}  // namespace ctb
