#include <gtest/gtest.h>

#include <numeric>
#include "util/assert.hpp"

#include <sstream>

#include "rf/random_forest.hpp"

namespace ctb {
namespace {

/// Linearly separable toy problem: class = x0 > 0.5.
Dataset linear_dataset(int n, Rng& rng) {
  Dataset d;
  for (int i = 0; i < n; ++i) {
    const double x0 = rng.uniform();
    const double x1 = rng.uniform();  // noise feature
    d.add({x0, x1}, x0 > 0.5 ? 1 : 0);
  }
  return d;
}

/// XOR-ish problem a single split cannot solve.
Dataset xor_dataset(int n, Rng& rng) {
  Dataset d;
  for (int i = 0; i < n; ++i) {
    const double x0 = rng.uniform();
    const double x1 = rng.uniform();
    d.add({x0, x1}, (x0 > 0.5) != (x1 > 0.5) ? 1 : 0);
  }
  return d;
}

TEST(Dataset, AddValidatesFeatureCount) {
  Dataset d;
  d.add({1.0, 2.0}, 0);
  EXPECT_EQ(d.num_features, 2);
  EXPECT_THROW(d.add({1.0}, 0), CheckError);
  EXPECT_THROW(d.add({1.0, 2.0}, -1), CheckError);
}

TEST(Dataset, NumClassesTracksMaxLabel) {
  Dataset d;
  d.add({0.0}, 0);
  d.add({1.0}, 3);
  EXPECT_EQ(d.num_classes, 4);
}

TEST(DecisionTree, LearnsLinearSplit) {
  Rng rng(1);
  const Dataset d = linear_dataset(200, rng);
  DecisionTree tree;
  std::vector<std::size_t> all(d.samples.size());
  std::iota(all.begin(), all.end(), 0u);
  tree.train(d, all, TreeParams{6, 2, 2}, rng);
  int correct = 0;
  for (const auto& s : d.samples)
    correct += tree.predict(s.features) == s.label ? 1 : 0;
  EXPECT_GT(correct, 190);
}

TEST(DecisionTree, PureNodeBecomesLeaf) {
  Dataset d;
  for (int i = 0; i < 10; ++i) d.add({static_cast<double>(i)}, 0);
  d.add({100.0}, 1);  // make it 2-class
  Rng rng(2);
  DecisionTree tree;
  std::vector<std::size_t> all(d.samples.size());
  std::iota(all.begin(), all.end(), 0u);
  tree.train(d, all, TreeParams{8, 1, 1}, rng);
  const std::vector<double> lo{0.0}, hi{100.0};
  EXPECT_EQ(tree.predict(lo), 0);
  EXPECT_EQ(tree.predict(hi), 1);
}

TEST(DecisionTree, RespectsMaxDepth) {
  Rng rng(3);
  const Dataset d = xor_dataset(400, rng);
  DecisionTree tree;
  std::vector<std::size_t> all(d.samples.size());
  std::iota(all.begin(), all.end(), 0u);
  tree.train(d, all, TreeParams{1, 1, 2}, rng);
  EXPECT_LE(tree.depth(), 2);  // root + leaves
}

TEST(DecisionTree, ProbabilitiesSumToOne) {
  Rng rng(4);
  const Dataset d = linear_dataset(100, rng);
  DecisionTree tree;
  std::vector<std::size_t> all(d.samples.size());
  std::iota(all.begin(), all.end(), 0u);
  tree.train(d, all, TreeParams{}, rng);
  const std::vector<double> x{0.3, 0.7};
  const auto p = tree.predict_proba(x);
  double sum = 0;
  for (double v : p) sum += v;
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(DecisionTree, UntrainedPredictThrows) {
  DecisionTree tree;
  const std::vector<double> x{0.0};
  EXPECT_THROW(tree.predict(x), CheckError);
}

TEST(DecisionTree, SaveLoadRoundTrip) {
  Rng rng(5);
  const Dataset d = xor_dataset(300, rng);
  DecisionTree tree;
  std::vector<std::size_t> all(d.samples.size());
  std::iota(all.begin(), all.end(), 0u);
  tree.train(d, all, TreeParams{8, 2, 2}, rng);
  std::stringstream ss;
  tree.save(ss);
  DecisionTree loaded;
  loaded.load(ss, 2);
  for (const auto& s : d.samples)
    EXPECT_EQ(tree.predict(s.features), loaded.predict(s.features));
}

TEST(RandomForest, BeatsSingleTreeOnXor) {
  Rng rng(6);
  const Dataset train = xor_dataset(600, rng);
  RandomForest forest;
  ForestParams params;
  params.num_trees = 40;
  params.tree.max_depth = 10;
  Rng train_rng(7);
  forest.train(train, params, train_rng);
  EXPECT_GT(forest.accuracy(train), 0.9);
  Rng test_rng(8);
  const Dataset test = xor_dataset(300, test_rng);
  EXPECT_GT(forest.accuracy(test), 0.8);
}

TEST(RandomForest, ProbabilitiesAreMeanOverTrees) {
  Rng rng(9);
  const Dataset d = linear_dataset(200, rng);
  RandomForest forest;
  ForestParams params;
  params.num_trees = 8;
  Rng train_rng(10);
  forest.train(d, params, train_rng);
  const std::vector<double> x{0.9, 0.5};
  const auto p = forest.predict_proba(x);
  ASSERT_EQ(p.size(), 2u);
  double sum = 0;
  for (double v : p) sum += v;
  EXPECT_NEAR(sum, 1.0, 1e-12);
  EXPECT_GT(p[1], p[0]);  // x0 = 0.9 is clearly class 1
}

TEST(RandomForest, DeterministicGivenSeed) {
  Rng rng(11);
  const Dataset d = xor_dataset(200, rng);
  RandomForest f1, f2;
  ForestParams params;
  params.num_trees = 10;
  Rng r1(12), r2(12);
  f1.train(d, params, r1);
  f2.train(d, params, r2);
  Rng probe(13);
  for (int i = 0; i < 50; ++i) {
    const std::vector<double> x{probe.uniform(), probe.uniform()};
    EXPECT_EQ(f1.predict(x), f2.predict(x));
  }
}

TEST(RandomForest, SaveLoadRoundTrip) {
  Rng rng(14);
  const Dataset d = xor_dataset(300, rng);
  RandomForest forest;
  ForestParams params;
  params.num_trees = 12;
  Rng train_rng(15);
  forest.train(d, params, train_rng);
  std::stringstream ss;
  forest.save(ss);
  RandomForest loaded;
  loaded.load(ss);
  EXPECT_EQ(loaded.tree_count(), 12);
  Rng probe(16);
  for (int i = 0; i < 50; ++i) {
    const std::vector<double> x{probe.uniform(), probe.uniform()};
    EXPECT_EQ(forest.predict(x), loaded.predict(x));
  }
}

TEST(RandomForest, OobAccuracyEstimatesGeneralization) {
  Rng rng(42);
  const Dataset train = xor_dataset(500, rng);
  RandomForest forest;
  ForestParams params;
  params.num_trees = 30;
  params.tree.max_depth = 10;
  Rng train_rng(43);
  forest.train(train, params, train_rng);
  const double oob = forest.oob_accuracy();
  EXPECT_GT(oob, 0.6);  // far above chance on learnable data
  EXPECT_LE(oob, 1.0);
  // OOB should track held-out accuracy within a reasonable band.
  Rng test_rng(44);
  const Dataset test = xor_dataset(300, test_rng);
  EXPECT_NEAR(oob, forest.accuracy(test), 0.15);
}

TEST(RandomForest, OobUnsetBeforeTraining) {
  RandomForest forest;
  EXPECT_EQ(forest.oob_accuracy(), -1.0);
}

TEST(RandomForest, FeatureImportanceFindsTheSignal) {
  // Class depends only on x0; x1 is noise: importance must concentrate
  // on feature 0.
  Rng rng(45);
  const Dataset d = linear_dataset(400, rng);
  RandomForest forest;
  ForestParams params;
  params.num_trees = 20;
  params.tree.features_per_split = 2;  // both features always candidates
  Rng train_rng(46);
  forest.train(d, params, train_rng);
  const auto imp = forest.feature_importance();
  ASSERT_EQ(imp.size(), 2u);
  EXPECT_GT(imp[0], 0.8);
  EXPECT_NEAR(imp[0] + imp[1], 1.0, 1e-9);
}

TEST(RandomForest, ImportanceRequiresTraining) {
  RandomForest forest;
  EXPECT_THROW(forest.feature_importance(), CheckError);
}

TEST(RandomForest, LoadRejectsCorruptStream) {
  std::stringstream ss("garbage");
  RandomForest forest;
  EXPECT_THROW(forest.load(ss), CheckError);
}

// ------------------------------------------------- hardened model loads --
// Tree stream format: "<count>\n" then per node
// "<feature> <threshold> <left> <right> <nprobs> <probs...>".

TEST(DecisionTree, LoadRejectsBadNodeCount) {
  DecisionTree t;
  std::stringstream zero("0\n");
  EXPECT_THROW(t.load(zero, 2), CheckError);
  std::stringstream negative("-3\n");
  EXPECT_THROW(t.load(negative, 2), CheckError);
  // A huge count must be rejected before any allocation happens.
  std::stringstream huge("99999999999\n");
  EXPECT_THROW(t.load(huge, 2), CheckError);
}

TEST(DecisionTree, LoadRejectsDanglingChildLink) {
  // Node 0 points at child 5 of a 1-node tree.
  DecisionTree t;
  std::stringstream ss("1\n0 0.5 5 5 0\n");
  EXPECT_THROW(t.load(ss, 2), CheckError);
}

TEST(DecisionTree, LoadRejectsCyclicChildLink) {
  // Node 1 points back at node 0: a cycle predict() would spin on. The
  // builder appends parents before children, so backward links are always
  // corrupt.
  DecisionTree t;
  std::stringstream ss(
      "3\n0 0.5 1 2 0\n0 0.5 0 2 0\n-1 0 -1 -1 2 1 0\n");
  EXPECT_THROW(t.load(ss, 2), CheckError);
}

TEST(DecisionTree, LoadRejectsBadFeatureIndex) {
  DecisionTree t;
  std::stringstream ss("1\n-7 0.5 -1 -1 2 1 0\n");
  EXPECT_THROW(t.load(ss, 2), CheckError);
}

TEST(DecisionTree, LoadRejectsLeafProbsMismatch) {
  // A 2-class leaf carrying one probability.
  DecisionTree t;
  std::stringstream ss("1\n-1 0 -1 -1 1 1\n");
  EXPECT_THROW(t.load(ss, 2), CheckError);
  // More probabilities than classes is equally corrupt.
  DecisionTree t2;
  std::stringstream ss2("1\n-1 0 -1 -1 3 0.5 0.25 0.25\n");
  EXPECT_THROW(t2.load(ss2, 2), CheckError);
}

TEST(DecisionTree, LoadRejectsLeafWithChildren) {
  DecisionTree t;
  std::stringstream ss("2\n-1 0 1 1 2 1 0\n-1 0 -1 -1 2 0 1\n");
  EXPECT_THROW(t.load(ss, 2), CheckError);
}

TEST(DecisionTree, PredictRejectsShortFeatureVector) {
  // A valid tree splitting on feature 1 must refuse a 1-feature input
  // instead of reading out of bounds.
  DecisionTree t;
  std::stringstream ss(
      "3\n1 0.5 1 2 0\n-1 0 -1 -1 2 1 0\n-1 0 -1 -1 2 0 1\n");
  t.load(ss, 2);
  const std::vector<double> too_short{0.2};
  EXPECT_THROW(t.predict(too_short), CheckError);
  const std::vector<double> ok{0.2, 0.9};
  EXPECT_EQ(t.predict(ok), 1);
}

TEST(RandomForest, LoadRejectsBadHeader) {
  // Huge tree count: rejected before allocating.
  RandomForest huge;
  std::stringstream ss("99999999999 2\n");
  EXPECT_THROW(huge.load(ss), CheckError);
  // One class is not a classifier.
  RandomForest one_class;
  std::stringstream ss2("4 1\n");
  EXPECT_THROW(one_class.load(ss2), CheckError);
}

TEST(RandomForest, EmptyTrainingSetThrows) {
  RandomForest forest;
  Dataset d;
  Rng rng(17);
  EXPECT_THROW(forest.train(d, ForestParams{}, rng), CheckError);
}

TEST(RandomForest, UntrainedPredictThrows) {
  RandomForest forest;
  const std::vector<double> x{1.0};
  EXPECT_THROW(forest.predict(x), CheckError);
}

}  // namespace
}  // namespace ctb
