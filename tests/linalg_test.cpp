#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "linalg/gemm_ref.hpp"
#include "linalg/matrix.hpp"

namespace ctb {
namespace {

// ---------------------------------------------------------------- matrix --

TEST(Matrix, ShapeAndIndexing) {
  Matrixf m(3, 4);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 4u);
  m(2, 3) = 7.0f;
  EXPECT_EQ(m(2, 3), 7.0f);
  EXPECT_EQ(m.data()[2 * 4 + 3], 7.0f);
}

TEST(Matrix, ViewSharesStorage) {
  Matrixf m(2, 2, 1.0f);
  auto v = m.view();
  v(0, 1) = 5.0f;
  EXPECT_EQ(m(0, 1), 5.0f);
}

TEST(Matrix, BlockViewAddressesSubmatrix) {
  Matrixf m(4, 6);
  fill_pattern(m);
  auto blk = m.view().block(1, 2, 2, 3);
  EXPECT_EQ(blk.rows(), 2u);
  EXPECT_EQ(blk.cols(), 3u);
  EXPECT_EQ(blk(0, 0), m(1, 2));
  EXPECT_EQ(blk(1, 2), m(2, 4));
}

TEST(Matrix, FillPatternIsInjectivePerCell) {
  Matrixf m(8, 8);
  fill_pattern(m);
  EXPECT_NE(m(0, 1), m(1, 0));
  EXPECT_NE(m(3, 4), m(4, 3));
}

TEST(Matrix, MaxAbsDiffAndAllclose) {
  Matrixf a(2, 2, 1.0f), b(2, 2, 1.0f);
  EXPECT_EQ(max_abs_diff(a, b), 0.0f);
  EXPECT_TRUE(allclose(a, b));
  b(1, 1) = 1.5f;
  EXPECT_FLOAT_EQ(max_abs_diff(a, b), 0.5f);
  EXPECT_FALSE(allclose(a, b));
}

TEST(Matrix, AllcloseShapeMismatchIsFalse) {
  Matrixf a(2, 2), b(2, 3);
  EXPECT_FALSE(allclose(a, b));
}

TEST(Matrix, FillRandomIsDeterministic) {
  Matrixf a(4, 4), b(4, 4);
  Rng r1(5), r2(5);
  fill_random(a, r1);
  fill_random(b, r2);
  EXPECT_TRUE(a == b);
}

// ------------------------------------------------------------------ gemm --

TEST(GemmRef, TinyKnownResult) {
  // [1 2; 3 4] * [5 6; 7 8] = [19 22; 43 50]
  Matrixf a(2, 2), b(2, 2), c(2, 2, 0.0f);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(1, 0) = 3;
  a(1, 1) = 4;
  b(0, 0) = 5;
  b(0, 1) = 6;
  b(1, 0) = 7;
  b(1, 1) = 8;
  gemm_naive(a, b, c, 1.0f, 0.0f);
  EXPECT_FLOAT_EQ(c(0, 0), 19);
  EXPECT_FLOAT_EQ(c(0, 1), 22);
  EXPECT_FLOAT_EQ(c(1, 0), 43);
  EXPECT_FLOAT_EQ(c(1, 1), 50);
}

TEST(GemmRef, AlphaBetaSemantics) {
  Matrixf a(1, 1), b(1, 1), c(1, 1);
  a(0, 0) = 3;
  b(0, 0) = 4;
  c(0, 0) = 10;
  gemm_naive(a, b, c, 2.0f, 0.5f);  // 2*12 + 0.5*10 = 29
  EXPECT_FLOAT_EQ(c(0, 0), 29.0f);
}

TEST(GemmRef, BetaZeroIgnoresGarbageC) {
  Matrixf a(2, 3), b(3, 2), c(2, 2);
  Rng rng(1);
  fill_random(a, rng);
  fill_random(b, rng);
  // NaN in C must not propagate when beta == 0.
  c.fill(std::numeric_limits<float>::quiet_NaN());
  gemm_naive(a, b, c, 1.0f, 0.0f);
  for (float v : c.flat()) EXPECT_FALSE(std::isnan(v));
}

TEST(GemmRef, ShapeMismatchThrows) {
  Matrixf a(2, 3), b(4, 2), c(2, 2);
  EXPECT_THROW(gemm_naive(a, b, c, 1.0f, 0.0f), CheckError);
}

TEST(GemmRef, OutputShapeMismatchThrows) {
  Matrixf a(2, 3), b(3, 2), c(3, 2);
  EXPECT_THROW(gemm_naive(a, b, c, 1.0f, 0.0f), CheckError);
}

struct GemmShape {
  int m, n, k;
};

class GemmVariants : public ::testing::TestWithParam<GemmShape> {};

TEST_P(GemmVariants, BlockedMatchesNaive) {
  const auto [m, n, k] = GetParam();
  Rng rng(static_cast<std::uint64_t>(m * 1000003 + n * 1009 + k));
  Matrixf a(static_cast<std::size_t>(m), static_cast<std::size_t>(k));
  Matrixf b(static_cast<std::size_t>(k), static_cast<std::size_t>(n));
  Matrixf c0(static_cast<std::size_t>(m), static_cast<std::size_t>(n));
  fill_random(a, rng);
  fill_random(b, rng);
  fill_random(c0, rng);
  Matrixf c1 = c0, c2 = c0;
  gemm_naive(a, b, c1, 1.5f, -0.5f);
  gemm_blocked(a, b, c2, 1.5f, -0.5f);
  EXPECT_TRUE(allclose(c1, c2)) << "m=" << m << " n=" << n << " k=" << k;
}

TEST_P(GemmVariants, ParallelMatchesNaive) {
  const auto [m, n, k] = GetParam();
  Rng rng(static_cast<std::uint64_t>(m * 7 + n * 11 + k * 13));
  Matrixf a(static_cast<std::size_t>(m), static_cast<std::size_t>(k));
  Matrixf b(static_cast<std::size_t>(k), static_cast<std::size_t>(n));
  Matrixf c0(static_cast<std::size_t>(m), static_cast<std::size_t>(n));
  fill_random(a, rng);
  fill_random(b, rng);
  fill_random(c0, rng);
  Matrixf c1 = c0, c2 = c0;
  gemm_naive(a, b, c1, 1.0f, 1.0f);
  gemm_parallel(a, b, c2, 1.0f, 1.0f);
  EXPECT_TRUE(allclose(c1, c2));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmVariants,
    ::testing::Values(GemmShape{1, 1, 1}, GemmShape{3, 5, 7},
                      GemmShape{16, 16, 16}, GemmShape{64, 64, 64},
                      GemmShape{65, 63, 66}, GemmShape{1, 128, 32},
                      GemmShape{128, 1, 32}, GemmShape{31, 33, 129},
                      GemmShape{100, 100, 100}));

TEST(GemmDimsStruct, FlopsAndValidity) {
  GemmDims d{4, 5, 6};
  EXPECT_EQ(d.flops(), 2LL * 4 * 5 * 6);
  EXPECT_TRUE(d.valid());
  EXPECT_FALSE((GemmDims{0, 5, 6}).valid());
  EXPECT_FALSE((GemmDims{4, -1, 6}).valid());
}

}  // namespace
}  // namespace ctb
