# Golden-output comparison driver: runs a command and requires its stdout to
# match a checked-in golden file byte for byte.
#
#   cmake -DCMD=<binary> -DARGS="<arg string>" -DGOLDEN=<file> -P golden_compare.cmake
#
# On mismatch the actual output is left next to the golden file's name in the
# current binary directory (<name>.actual) for inspection; regenerate the
# golden by copying it over after a *deliberate* output change.
if(NOT DEFINED CMD OR NOT DEFINED GOLDEN)
  message(FATAL_ERROR "golden_compare.cmake needs -DCMD=... and -DGOLDEN=...")
endif()

separate_arguments(ARG_LIST UNIX_COMMAND "${ARGS}")
execute_process(
  COMMAND ${CMD} ${ARG_LIST}
  OUTPUT_VARIABLE actual
  RESULT_VARIABLE exit_code)
if(NOT exit_code EQUAL 0)
  message(FATAL_ERROR "${CMD} ${ARGS} exited with ${exit_code}")
endif()

file(READ "${GOLDEN}" expected)
if(NOT actual STREQUAL expected)
  get_filename_component(name "${GOLDEN}" NAME_WE)
  file(WRITE "${name}.actual" "${actual}")
  message(FATAL_ERROR
          "stdout of ${CMD} ${ARGS} diverged from ${GOLDEN}; actual output "
          "written to ${name}.actual — diff them, and update the golden only "
          "if the change is intentional")
endif()

# Optional side-artifact check: when REQUIRE_FILE is set, that file must
# exist after the run and contain every |-separated needle in
# REQUIRE_CONTAINS (e.g. the --metrics JSON carrying the percentile fields).
# '|' as separator keeps needle lists free of CMake's ';' escaping rules.
if(DEFINED REQUIRE_FILE)
  if(NOT EXISTS "${REQUIRE_FILE}")
    message(FATAL_ERROR "${CMD} ${ARGS} did not produce ${REQUIRE_FILE}")
  endif()
  file(READ "${REQUIRE_FILE}" artifact)
  string(REPLACE "|" ";" REQUIRE_CONTAINS "${REQUIRE_CONTAINS}")
  foreach(needle IN LISTS REQUIRE_CONTAINS)
    string(FIND "${artifact}" "${needle}" found)
    if(found EQUAL -1)
      message(FATAL_ERROR
              "${REQUIRE_FILE} is missing expected content '${needle}'")
    endif()
  endforeach()
endif()
