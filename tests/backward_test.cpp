#include <gtest/gtest.h>

#include "dnn/backward.hpp"
#include "dnn/im2col.hpp"

namespace ctb {
namespace {

ConvShape mk_conv(int in_c, int out_c, int kernel, int stride, int pad,
                  int hw) {
  ConvShape s;
  s.name = "bwd-test";
  s.in_c = in_c;
  s.out_c = out_c;
  s.kernel = kernel;
  s.stride = stride;
  s.pad = pad;
  s.in_h = hw;
  s.in_w = hw;
  return s;
}

TEST(BackwardDims, WgradAndDgradShapes) {
  const ConvShape s = mk_conv(16, 32, 3, 1, 1, 14);
  const GemmDims w = wgrad_gemm_dims(s, 4);
  EXPECT_EQ(w.m, 32);
  EXPECT_EQ(w.n, 16 * 9);
  EXPECT_EQ(w.k, 14 * 14 * 4);
  const GemmDims d = dgrad_gemm_dims(s, 4);
  EXPECT_EQ(d.m, 16 * 9);
  EXPECT_EQ(d.n, 14 * 14 * 4);
  EXPECT_EQ(d.k, 32);
}

TEST(FlattenOutputGrad, InverseOfCol2ImOutput) {
  const ConvShape s = mk_conv(2, 3, 1, 1, 0, 4);
  Matrixf gemm_out(3, 4 * 4 * 2);
  fill_pattern(gemm_out);
  const Tensor4 y = col2im_output(s, 2, gemm_out);
  const Matrixf back = flatten_output_grad(s, y);
  EXPECT_EQ(max_abs_diff(gemm_out, back), 0.0f);
}

TEST(Col2ImScatter, AdjointOfIm2col) {
  // <im2col(x), g> == <x, col2im_scatter(g)> for random x, g — the
  // defining property of the adjoint.
  const ConvShape s = mk_conv(3, 2, 3, 2, 1, 7);
  Rng rng(31);
  Tensor4 x(2, 3, 7, 7);
  fill_random(x, rng);
  const Matrixf cols = im2col(s, x);
  Matrixf g(cols.rows(), cols.cols());
  fill_random(g, rng);

  double lhs = 0.0;
  for (std::size_t i = 0; i < cols.rows(); ++i)
    for (std::size_t j = 0; j < cols.cols(); ++j)
      lhs += static_cast<double>(cols(i, j)) * g(i, j);

  const Tensor4 scattered = col2im_scatter(s, 2, g);
  double rhs = 0.0;
  const auto fx = x.flat();
  const auto fs = scattered.flat();
  for (std::size_t i = 0; i < fx.size(); ++i)
    rhs += static_cast<double>(fx[i]) * fs[i];

  EXPECT_NEAR(lhs, rhs, std::abs(lhs) * 1e-4 + 1e-4);
}

struct BwdCase {
  int in_c, out_c, kernel, stride, pad, hw, batch;
};

class BackwardGemmEquivalence : public ::testing::TestWithParam<BwdCase> {};

TEST_P(BackwardGemmEquivalence, WgradMatchesDirect) {
  const BwdCase p = GetParam();
  const ConvShape s =
      mk_conv(p.in_c, p.out_c, p.kernel, p.stride, p.pad, p.hw);
  Rng rng(static_cast<std::uint64_t>(p.in_c * 41 + p.kernel));
  Tensor4 input(p.batch, p.in_c, p.hw, p.hw);
  Tensor4 dy(p.batch, p.out_c, s.out_h(), s.out_w());
  fill_random(input, rng);
  fill_random(dy, rng);
  const Matrixf gemm_path = conv_backward_weights(s, input, dy);
  const Matrixf direct = conv_backward_weights_direct(s, input, dy);
  EXPECT_LT(max_abs_diff(gemm_path, direct), 1e-2f);
}

TEST_P(BackwardGemmEquivalence, DgradMatchesDirect) {
  const BwdCase p = GetParam();
  const ConvShape s =
      mk_conv(p.in_c, p.out_c, p.kernel, p.stride, p.pad, p.hw);
  Rng rng(static_cast<std::uint64_t>(p.out_c * 17 + p.hw));
  Tensor4 dy(p.batch, p.out_c, s.out_h(), s.out_w());
  fill_random(dy, rng);
  Matrixf filters(static_cast<std::size_t>(p.out_c),
                  static_cast<std::size_t>(p.in_c * p.kernel * p.kernel));
  fill_random(filters, rng);
  const Tensor4 gemm_path = conv_backward_data(s, filters, dy);
  const Tensor4 direct = conv_backward_data_direct(s, filters, dy);
  ASSERT_TRUE(gemm_path.same_shape(direct));
  EXPECT_LT(max_abs_diff(gemm_path, direct), 1e-3f);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, BackwardGemmEquivalence,
    ::testing::Values(BwdCase{1, 1, 1, 1, 0, 4, 1},
                      BwdCase{3, 8, 3, 1, 1, 8, 2},
                      BwdCase{4, 6, 5, 1, 2, 9, 1},
                      BwdCase{2, 4, 3, 2, 1, 12, 2},
                      BwdCase{8, 3, 1, 1, 0, 6, 3}));

TEST(Backward, MismatchedDyThrows) {
  const ConvShape s = mk_conv(3, 4, 3, 1, 1, 8);
  Tensor4 wrong(1, 5, 8, 8);  // wrong channel count
  EXPECT_THROW(flatten_output_grad(s, wrong), CheckError);
}

}  // namespace
}  // namespace ctb
