// ctb::telemetry unit tests: counter and histogram correctness, span
// recording and nesting, the JSON / chrome-trace export schemas, and
// race-cleanliness of concurrent instrumentation under parallel_for (the
// TSan CI leg runs this binary). The export and snapshot entry points are
// also exercised in the compiled-out configuration, where they must degrade
// to empty-but-well-formed output.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "telemetry/telemetry.hpp"
#include "telemetry/trace.hpp"
#include "util/parallel.hpp"

namespace ctb {
namespace {

// Minimal structural JSON check: braces/brackets balance and close in the
// right order outside of string literals. Not a parser — enough to catch a
// broken emitter (trailing comma handling aside, which the schema checks
// below pin by substring).
bool json_balanced(const std::string& text) {
  std::vector<char> stack;
  bool in_string = false;
  bool escaped = false;
  for (const char c : text) {
    if (in_string) {
      if (escaped)
        escaped = false;
      else if (c == '\\')
        escaped = true;
      else if (c == '"')
        in_string = false;
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '{': stack.push_back('}'); break;
      case '[': stack.push_back(']'); break;
      case '}':
      case ']':
        if (stack.empty() || stack.back() != c) return false;
        stack.pop_back();
        break;
      default: break;
    }
  }
  return stack.empty() && !in_string;
}

std::int64_t counter_value(const telemetry::MetricsSnapshot& snap,
                           const std::string& name) {
  for (const auto& c : snap.counters)
    if (c.name == name) return c.value;
  ADD_FAILURE() << "counter " << name << " missing from snapshot";
  return -1;
}

// The macros must behave as single statements in every build configuration.
TEST(TelemetryMacros, AreDanglingElseSafe) {
  if (telemetry::snapshot().compiled_in)
    CTB_TEL_COUNT("test.macro.then", 1);
  else
    CTB_TEL_COUNT("test.macro.else", 1);
  for (int i = 0; i < 2; ++i) CTB_TEL_HIST("test.macro.hist", i);
  CTB_TEL_SPAN("test.macro.span");
}

TEST(TelemetryExport, EmptySnapshotIsWellFormedJson) {
  const telemetry::MetricsSnapshot snap;  // compiled_in == false
  std::ostringstream metrics, trace;
  telemetry::write_metrics_json(metrics, snap);
  telemetry::write_chrome_trace(trace, snap);
  EXPECT_TRUE(json_balanced(metrics.str())) << metrics.str();
  EXPECT_TRUE(json_balanced(trace.str())) << trace.str();
  EXPECT_NE(metrics.str().find("\"version\":3"), std::string::npos);
  EXPECT_NE(trace.str().find("\"traceEvents\""), std::string::npos);
}

TEST(TelemetryExport, EmptySnapshotOpenMetricsIsTerminated) {
  const telemetry::MetricsSnapshot snap;  // compiled_in == false
  std::ostringstream om;
  telemetry::write_openmetrics(om, snap);
  const std::string text = om.str();
  // An empty document is still a valid OpenMetrics exposition: no families,
  // one EOF marker at the very end.
  EXPECT_EQ(text, "# EOF\n");
  std::istringstream is(text);
  EXPECT_TRUE(telemetry::read_openmetrics_counters(is).empty());
}

#ifdef CTB_TELEMETRY_ENABLED

class TelemetryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    telemetry::reset();
    telemetry::set_enabled(true);
  }
  void TearDown() override {
    telemetry::set_enabled(false);
    telemetry::reset();
  }
};

TEST_F(TelemetryTest, CountersAccumulateAndSnapshot) {
  telemetry::counter("test.counter").add(3);
  telemetry::counter("test.counter").add(4);
  const auto snap = telemetry::snapshot();
  EXPECT_TRUE(snap.compiled_in);
  EXPECT_TRUE(snap.enabled);
  EXPECT_EQ(counter_value(snap, "test.counter"), 7);
  // The canonical taxonomy is pre-registered: acceptance-relevant counters
  // appear in every snapshot even before their code path runs.
  EXPECT_EQ(counter_value(snap, "cache.hit"), 0);
  EXPECT_EQ(counter_value(snap, "cache.miss"), 0);
  EXPECT_EQ(counter_value(snap, "exec.fallback"), 0);
  EXPECT_EQ(counter_value(snap, "exec.dispatch.specialized"), 0);
  EXPECT_EQ(counter_value(snap, "exec.dispatch.generic"), 0);
  EXPECT_EQ(counter_value(snap, "exec.pack.panels"), 0);
  EXPECT_EQ(counter_value(snap, "exec.pack.bytes"), 0);
  EXPECT_EQ(counter_value(snap, "exec.pack.reuse"), 0);
  EXPECT_EQ(counter_value(snap, "exec.pack.cache.hit"), 0);
  EXPECT_EQ(counter_value(snap, "exec.pack.cache.miss"), 0);
  EXPECT_EQ(counter_value(snap, "exec.pack.cache.evict"), 0);
  EXPECT_EQ(counter_value(snap, "exec.pack.cache.stale"), 0);
  EXPECT_EQ(counter_value(snap, "exec.pack.cache.invalidate"), 0);
  EXPECT_EQ(counter_value(snap, "exec.simd.scalar"), 0);
  EXPECT_EQ(counter_value(snap, "exec.simd.neon"), 0);
  EXPECT_EQ(counter_value(snap, "exec.simd.avx2"), 0);
  EXPECT_EQ(counter_value(snap, "exec.simd.avx512"), 0);
  // Plan-service state machine taxonomy (DESIGN.md §10).
  EXPECT_EQ(counter_value(snap, "service.admitted"), 0);
  EXPECT_EQ(counter_value(snap, "service.hit"), 0);
  EXPECT_EQ(counter_value(snap, "service.miss"), 0);
  EXPECT_EQ(counter_value(snap, "service.filter.reject"), 0);
  EXPECT_EQ(counter_value(snap, "service.degraded"), 0);
  EXPECT_EQ(counter_value(snap, "service.upgraded"), 0);
  EXPECT_EQ(counter_value(snap, "service.retried"), 0);
  EXPECT_EQ(counter_value(snap, "service.quarantined"), 0);
  EXPECT_EQ(counter_value(snap, "service.deadline_miss"), 0);
  // Telemetry self-observation: span-buffer overflow is part of the
  // canonical taxonomy so reports can gate on it staying zero.
  EXPECT_EQ(counter_value(snap, "tel.spans.dropped"), 0);
}

TEST_F(TelemetryTest, DisabledSitesRegisterButDoNotCount) {
  telemetry::set_enabled(false);
  CTB_TEL_COUNT("test.disabled.counter", 5);
  CTB_TEL_HIST("test.disabled.hist", 5);
  const auto snap = telemetry::snapshot();
  EXPECT_FALSE(snap.enabled);
  EXPECT_EQ(counter_value(snap, "test.disabled.counter"), 0);
  for (const auto& h : snap.histograms)
    if (h.name == "test.disabled.hist") EXPECT_EQ(h.count, 0);
}

TEST_F(TelemetryTest, HistogramBucketsMinMaxSum) {
  telemetry::Histogram& h = telemetry::histogram("test.hist");
  for (const std::int64_t v : {1, 2, 3, 1024}) h.record(v);
  const auto snap = telemetry::snapshot();
  const telemetry::HistogramSample* sample = nullptr;
  for (const auto& s : snap.histograms)
    if (s.name == "test.hist") sample = &s;
  ASSERT_NE(sample, nullptr);
  EXPECT_EQ(sample->count, 4);
  EXPECT_EQ(sample->sum, 1030);
  EXPECT_EQ(sample->min, 1);
  EXPECT_EQ(sample->max, 1024);
  // Bucket i counts 2^(i-1) < v <= 2^i: 1 -> bucket 0, 2 -> bucket 1,
  // 3 -> bucket 2, 1024 = 2^10 -> bucket 10; trailing zeros are trimmed.
  ASSERT_EQ(sample->buckets.size(), 11u);
  EXPECT_EQ(sample->buckets[0], 1);
  EXPECT_EQ(sample->buckets[1], 1);
  EXPECT_EQ(sample->buckets[2], 1);
  EXPECT_EQ(sample->buckets[10], 1);
}

TEST_F(TelemetryTest, HistogramPercentilesAreDeterministicBucketBounds) {
  telemetry::Histogram& h = telemetry::histogram("test.pct");
  // 100 values: 50x 1, 45x 8, 5x 1000.
  for (int i = 0; i < 50; ++i) h.record(1);
  for (int i = 0; i < 45; ++i) h.record(8);
  for (int i = 0; i < 5; ++i) h.record(1000);
  const auto snap = telemetry::snapshot();
  const telemetry::HistogramSample* sample = nullptr;
  for (const auto& s : snap.histograms)
    if (s.name == "test.pct") sample = &s;
  ASSERT_NE(sample, nullptr);
  // Nearest-rank over the power-of-two buckets: the 50th value is a 1, the
  // 95th an 8 (its bucket bound exactly), the 99th falls in the 1000s'
  // bucket whose 1024 bound clamps to max.
  EXPECT_DOUBLE_EQ(sample->percentile(50.0), 1.0);
  EXPECT_DOUBLE_EQ(sample->p50(), 1.0);
  EXPECT_DOUBLE_EQ(sample->p95(), 8.0);
  EXPECT_DOUBLE_EQ(sample->p99(), 1000.0);
  // Degenerate inputs: empty sample -> 0; p <= 0 clamps to the first value.
  EXPECT_DOUBLE_EQ(telemetry::HistogramSample{}.percentile(50.0), 0.0);
  EXPECT_DOUBLE_EQ(sample->percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(sample->percentile(100.0), 1000.0);
}

// Pins the percentile edge cases a dashboard divides by: a registered
// histogram that never recorded, a single observation, and a delta window
// with no samples must all yield finite, exact values — never NaN and never
// stale lifetime watermarks.
TEST_F(TelemetryTest, PercentilesOfEmptyAndSingleSampleHistograms) {
  telemetry::histogram("test.edge.empty");  // registered, never recorded
  telemetry::histogram("test.edge.one").record(37);
  const auto snap = telemetry::snapshot();
  const telemetry::HistogramSample* empty = nullptr;
  const telemetry::HistogramSample* one = nullptr;
  for (const auto& s : snap.histograms) {
    if (s.name == "test.edge.empty") empty = &s;
    if (s.name == "test.edge.one") one = &s;
  }
  ASSERT_NE(empty, nullptr);
  EXPECT_EQ(empty->count, 0);
  EXPECT_EQ(empty->min, 0);
  EXPECT_EQ(empty->max, 0);
  EXPECT_TRUE(empty->buckets.empty());
  for (const double p : {0.0, 50.0, 95.0, 99.0, 100.0})
    EXPECT_DOUBLE_EQ(empty->percentile(p), 0.0) << p;
  EXPECT_DOUBLE_EQ(empty->p50(), 0.0);
  EXPECT_DOUBLE_EQ(empty->p95(), 0.0);
  EXPECT_DOUBLE_EQ(empty->p99(), 0.0);
  ASSERT_NE(one, nullptr);
  EXPECT_EQ(one->count, 1);
  // Every percentile of a single observation is that observation (the
  // bucket bound 64 clamps into [min, max] = [37, 37]).
  for (const double p : {0.0, 50.0, 95.0, 99.0, 100.0})
    EXPECT_DOUBLE_EQ(one->percentile(p), 37.0) << p;
}

TEST_F(TelemetryTest, PercentilesOfZeroSampleDeltaWindowAreZero) {
  telemetry::histogram("test.edge.window").record(512);
  const auto before = telemetry::snapshot();
  const auto after = telemetry::snapshot();  // nothing recorded in between
  const auto d = telemetry::delta(before, after);
  const telemetry::HistogramSample* w = nullptr;
  for (const auto& s : d.histograms)
    if (s.name == "test.edge.window") w = &s;
  ASSERT_NE(w, nullptr);
  EXPECT_EQ(w->count, 0);
  EXPECT_EQ(w->sum, 0);
  EXPECT_TRUE(w->buckets.empty());
  // The pre-window 512 must not leak into the empty window's statistics.
  EXPECT_EQ(w->min, 0);
  EXPECT_EQ(w->max, 0);
  EXPECT_DOUBLE_EQ(w->p50(), 0.0);
  EXPECT_DOUBLE_EQ(w->p95(), 0.0);
  EXPECT_DOUBLE_EQ(w->p99(), 0.0);
  EXPECT_TRUE(w->exemplars.empty());
}

TEST_F(TelemetryTest, SnapshotDeltaSubtractsCountersAndHistograms) {
  telemetry::counter("test.delta.c").add(10);
  telemetry::histogram("test.delta.h").record(4);
  { CTB_TEL_SPAN("test.delta.before"); }
  const auto before = telemetry::snapshot();
  telemetry::counter("test.delta.c").add(7);
  telemetry::counter("test.delta.fresh").add(3);
  telemetry::histogram("test.delta.h").record(4);
  telemetry::histogram("test.delta.h").record(32);
  { CTB_TEL_SPAN("test.delta.after"); }
  const auto after = telemetry::snapshot();

  const auto d = telemetry::delta(before, after);
  EXPECT_EQ(counter_value(d, "test.delta.c"), 7);
  // Metrics absent from `before` keep their `after` value.
  EXPECT_EQ(counter_value(d, "test.delta.fresh"), 3);
  const telemetry::HistogramSample* h = nullptr;
  for (const auto& s : d.histograms)
    if (s.name == "test.delta.h") h = &s;
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 2);
  EXPECT_EQ(h->sum, 36);
  // Bucket deltas: one more 4 (bucket 2) and one 32 (bucket 5).
  ASSERT_GE(h->buckets.size(), 6u);
  EXPECT_EQ(h->buckets[2], 1);
  EXPECT_EQ(h->buckets[5], 1);
  // Min/max of a delta are the bucket envelope of the window, NOT the
  // lifetime watermarks — percentiles on a delta must be reproducible from
  // the window alone (bucket 2 spans (2,4], bucket 5 spans (16,32]).
  EXPECT_EQ(h->min, 3);
  EXPECT_EQ(h->max, 32);
  EXPECT_DOUBLE_EQ(h->percentile(50.0), 4.0);
  EXPECT_DOUBLE_EQ(h->percentile(99.0), 32.0);
  // Spans: only those started after `before` was taken survive.
  bool saw_before = false, saw_after = false;
  for (const auto& s : d.spans) {
    if (std::string(s.name) == "test.delta.before") saw_before = true;
    if (std::string(s.name) == "test.delta.after") saw_after = true;
  }
  EXPECT_FALSE(saw_before);
  EXPECT_TRUE(saw_after);
}

TEST_F(TelemetryTest, SpansNestAndCarryDurations) {
  {
    CTB_TEL_SPAN("test.outer");
    CTB_TEL_SPAN("test.inner");
  }
  const auto snap = telemetry::snapshot();
  const telemetry::SpanEvent* outer = nullptr;
  const telemetry::SpanEvent* inner = nullptr;
  for (const auto& s : snap.spans) {
    if (std::string(s.name) == "test.outer") outer = &s;
    if (std::string(s.name) == "test.inner") inner = &s;
  }
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_LE(outer->start_us, inner->start_us);
  EXPECT_GE(outer->dur_us, inner->dur_us);
  EXPECT_GE(outer->start_us + outer->dur_us, inner->start_us + inner->dur_us);
}

TEST_F(TelemetryTest, SpanArmedAtConstructionRecordsAfterDisable) {
  {
    telemetry::ScopedSpan span("test.armed");
    telemetry::set_enabled(false);
  }
  bool found = false;
  for (const auto& s : telemetry::snapshot().spans)
    if (std::string(s.name) == "test.armed") found = true;
  EXPECT_TRUE(found);
}

TEST_F(TelemetryTest, SpanSkippedWhenDisabledAtConstruction) {
  telemetry::set_enabled(false);
  { telemetry::ScopedSpan span("test.skipped"); }
  telemetry::set_enabled(true);
  for (const auto& s : telemetry::snapshot().spans)
    EXPECT_STRNE(s.name, "test.skipped");
}

TEST_F(TelemetryTest, ResetZeroesButKeepsRegistrations) {
  telemetry::counter("test.reset").add(9);
  telemetry::histogram("test.reset.h").record(5);
  { CTB_TEL_SPAN("test.reset.span"); }
  telemetry::reset();
  const auto snap = telemetry::snapshot();
  EXPECT_EQ(counter_value(snap, "test.reset"), 0);
  for (const auto& h : snap.histograms)
    if (h.name == "test.reset.h") EXPECT_EQ(h.count, 0);
  EXPECT_TRUE(snap.spans.empty());
}

TEST_F(TelemetryTest, MetricsJsonSchema) {
  telemetry::counter("test.json").add(2);
  telemetry::histogram("test.json.h").record(3);
  { CTB_TEL_SPAN("test.json.span"); }
  std::ostringstream os;
  telemetry::write_metrics_json(os, telemetry::snapshot());
  const std::string json = os.str();
  EXPECT_TRUE(json_balanced(json)) << json;
  for (const char* needle :
       {"\"version\":3", "\"compiled_in\":true", "\"enabled\":true",
        "\"counters\":{", "\"histograms\":{", "\"spans\":{",
        "\"test.json\":2", "\"test.json.h\":{", "\"buckets\":[",
        "\"exemplars\":[",
        "\"p50\":3", "\"p95\":3", "\"p99\":3",
        "\"test.json.span\":{", "\"count\":", "\"total_us\":", "\"max_us\":",
        "\"cache.hit\":0", "\"cache.miss\":0", "\"exec.fallback\":0",
        "\"exec.dispatch.specialized\":0", "\"exec.dispatch.generic\":0",
        "\"exec.pack.panels\":0", "\"exec.pack.bytes\":0",
        "\"exec.pack.reuse\":0", "\"exec.pack.cache.hit\":0",
        "\"exec.pack.cache.miss\":0", "\"exec.pack.cache.evict\":0",
        "\"exec.pack.cache.stale\":0", "\"exec.pack.cache.invalidate\":0",
        "\"exec.simd.scalar\":0", "\"exec.simd.neon\":0",
        "\"exec.simd.avx2\":0", "\"exec.simd.avx512\":0"})
    EXPECT_NE(json.find(needle), std::string::npos) << needle << "\n" << json;
}

TEST_F(TelemetryTest, ChromeTraceSchema) {
  { CTB_TEL_SPAN("test.trace.span"); }
  const auto snap = telemetry::snapshot();
  std::ostringstream os;
  telemetry::write_chrome_trace(os, snap);
  const std::string trace = os.str();
  EXPECT_TRUE(json_balanced(trace)) << trace;
  EXPECT_EQ(trace.front(), '{');
  for (const char* needle :
       {"\"traceEvents\":[", "\"ph\":\"X\"", "\"test.trace.span\"",
        "\"ts\":", "\"dur\":", "\"pid\":"})
    EXPECT_NE(trace.find(needle), std::string::npos) << needle << "\n"
                                                     << trace;

  // Embedding form: events must splice into a foreign traceEvents array.
  std::ostringstream combined;
  combined << "{\"traceEvents\":[\n{\"name\":\"probe\",\"ph\":\"M\","
              "\"pid\":0,\"args\":{}}";
  telemetry::append_chrome_trace_events(combined, snap, 7);
  combined << "\n]}\n";
  EXPECT_TRUE(json_balanced(combined.str())) << combined.str();
  EXPECT_NE(combined.str().find("\"pid\":7"), std::string::npos);
}

TEST_F(TelemetryTest, ConcurrentInstrumentationIsRaceFreeAndLossless) {
  constexpr long long kIters = 2000;
  ScopedParallelThreads guard(4);
  parallel_for(kIters, [](long long i) {
    CTB_TEL_SPAN("test.par.span");
    CTB_TEL_COUNT("test.par.count", 1);
    CTB_TEL_HIST("test.par.hist", i % 7);
  });
  const auto snap = telemetry::snapshot();
  EXPECT_EQ(counter_value(snap, "test.par.count"), kIters);
  const telemetry::HistogramSample* sample = nullptr;
  for (const auto& h : snap.histograms)
    if (h.name == "test.par.hist") sample = &h;
  ASSERT_NE(sample, nullptr);
  EXPECT_EQ(sample->count, kIters);
  long long spans = 0;
  for (const auto& s : snap.spans)
    if (std::string(s.name) == "test.par.span") ++spans;
  EXPECT_EQ(spans, kIters);
  EXPECT_EQ(counter_value(snap, "tel.spans.dropped"), 0);
}

TEST_F(TelemetryTest, SpanBufferCapCountsDroppedSpans) {
  constexpr int kOverCap = (1 << 16) + 100;
  for (int i = 0; i < kOverCap; ++i)
    telemetry::record_span("test.cap", 0.0, 0.0);
  const auto snap = telemetry::snapshot();
  EXPECT_GE(counter_value(snap, "tel.spans.dropped"), 100);
  EXPECT_LE(static_cast<int>(snap.spans.size()), 1 << 16);
}

TEST_F(TelemetryTest, HistogramExemplarsCarryTheActiveTraceId) {
  // No trace installed -> no exemplar, even though the bucket counts.
  telemetry::histogram("test.ex").record(5);
  {
    const telemetry::ScopedTraceContext scope("test", 1);
    const std::uint64_t id = telemetry::current_trace().id;
    ASSERT_NE(id, 0u);
    telemetry::histogram("test.ex").record(900);  // bucket 10
    const auto snap = telemetry::snapshot();
    const telemetry::HistogramSample* s = nullptr;
    for (const auto& h : snap.histograms)
      if (h.name == "test.ex") s = &h;
    ASSERT_NE(s, nullptr);
    ASSERT_EQ(s->exemplars.size(), 1u);
    EXPECT_EQ(s->exemplars[0].bucket, 10);
    EXPECT_EQ(s->exemplars[0].value, 900);
    EXPECT_EQ(s->exemplars[0].trace, id);
    // Last writer wins within a bucket; other buckets keep their slots.
    const telemetry::ScopedTraceContext inner(
        telemetry::TraceContext{telemetry::make_trace_id(), 2, "test"});
    telemetry::histogram("test.ex").record(600);  // same bucket 10
    const auto snap2 = telemetry::snapshot();
    for (const auto& h : snap2.histograms)
      if (h.name == "test.ex") s = &h;
    ASSERT_EQ(s->exemplars.size(), 1u);
    EXPECT_EQ(s->exemplars[0].value, 600);
    EXPECT_EQ(s->exemplars[0].trace, telemetry::current_trace().id);
    EXPECT_NE(s->exemplars[0].trace, id);
  }
}

TEST_F(TelemetryTest, DeltaKeepsOnlyExemplarsFromActiveWindowBuckets) {
  const telemetry::ScopedTraceContext scope("test", 1);
  telemetry::histogram("test.ex.delta").record(3);    // bucket 2
  const auto before = telemetry::snapshot();
  telemetry::histogram("test.ex.delta").record(1000);  // bucket 10
  const auto after = telemetry::snapshot();
  const auto d = telemetry::delta(before, after);
  const telemetry::HistogramSample* s = nullptr;
  for (const auto& h : d.histograms)
    if (h.name == "test.ex.delta") s = &h;
  ASSERT_NE(s, nullptr);
  // The bucket-2 exemplar predates the window; only bucket 10 was active.
  ASSERT_EQ(s->exemplars.size(), 1u);
  EXPECT_EQ(s->exemplars[0].bucket, 10);
  EXPECT_EQ(s->exemplars[0].value, 1000);
}

TEST_F(TelemetryTest, OpenMetricsRoundTripsTheCounterTaxonomy) {
  telemetry::counter("test.om").add(42);
  {
    const telemetry::ScopedTraceContext scope("test", 1);
    telemetry::histogram("test.om.h").record(97);
  }
  const auto snap = telemetry::snapshot();
  std::ostringstream os;
  telemetry::write_openmetrics(os, snap);
  const std::string text = os.str();
  // Family names are underscore-mangled; the dotted original rides in the
  // name label, and the document is EOF-terminated.
  EXPECT_NE(text.find("# TYPE ctb_test_om counter"), std::string::npos)
      << text;
  EXPECT_NE(text.find("ctb_test_om_total{name=\"test.om\"} 42"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("# TYPE ctb_test_om_h histogram"), std::string::npos);
  EXPECT_NE(text.find("_bucket{name=\"test.om.h\",le=\"128\"}"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("le=\"+Inf\""), std::string::npos);
  EXPECT_NE(text.find("ctb_test_om_h_sum{name=\"test.om.h\"} 97"),
            std::string::npos);
  EXPECT_NE(text.find("ctb_test_om_h_count{name=\"test.om.h\"} 1"),
            std::string::npos);
  // The tail bucket carries the exemplar with the recording trace id.
  EXPECT_NE(text.find("# {trace_id=\""), std::string::npos) << text;
  EXPECT_EQ(text.substr(text.size() - 6), "# EOF\n");

  // Round trip: every counter in the snapshot comes back by its dotted
  // name with its exact value.
  std::istringstream is(text);
  const auto parsed = telemetry::read_openmetrics_counters(is);
  ASSERT_EQ(parsed.size(), snap.counters.size());
  for (std::size_t i = 0; i < parsed.size(); ++i) {
    EXPECT_EQ(parsed[i].name, snap.counters[i].name);
    EXPECT_EQ(parsed[i].value, snap.counters[i].value);
  }
  // The canonical taxonomy is present by dotted name, including the
  // self-observation counter.
  bool saw_dropped = false;
  for (const auto& c : parsed)
    if (c.name == "tel.spans.dropped") saw_dropped = true;
  EXPECT_TRUE(saw_dropped);
}

#else  // !CTB_TELEMETRY_ENABLED

TEST(TelemetryCompiledOut, StubsAreInertAndSnapshotsEmpty) {
  telemetry::set_enabled(true);  // must be a no-op
  EXPECT_FALSE(telemetry::enabled());
  telemetry::counter("test.off").add(5);
  telemetry::histogram("test.off.h").record(5);
  telemetry::record_span("test.off.span", 0.0, 1.0);
  CTB_TEL_COUNT("test.off.macro", 1);
  const auto snap = telemetry::snapshot();
  EXPECT_FALSE(snap.compiled_in);
  EXPECT_FALSE(snap.enabled);
  EXPECT_TRUE(snap.counters.empty());
  EXPECT_TRUE(snap.histograms.empty());
  EXPECT_TRUE(snap.spans.empty());
}

#endif  // CTB_TELEMETRY_ENABLED

}  // namespace
}  // namespace ctb
