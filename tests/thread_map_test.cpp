#include <gtest/gtest.h>

#include <set>

#include "kernels/thread_map.hpp"

namespace ctb {
namespace {

class ThreadMapAllStrategies : public ::testing::TestWithParam<int> {};

TEST_P(ThreadMapAllStrategies, ExactTilePartition) {
  // The sub-tiles of all threads must tile BY x BX exactly: every cell
  // covered once, none twice.
  const TilingStrategy& s = batched_strategy_by_id(GetParam());
  std::set<std::pair<int, int>> covered;
  for (int t = 0; t < s.threads; ++t) {
    const SubTileOrigin o = thread_sub_tile(s, t);
    EXPECT_GE(o.row, 0);
    EXPECT_GE(o.col, 0);
    EXPECT_LE(o.row + s.sub_y, s.by);
    EXPECT_LE(o.col + s.sub_x, s.bx);
    for (int i = 0; i < s.sub_y; ++i)
      for (int j = 0; j < s.sub_x; ++j)
        EXPECT_TRUE(covered.insert({o.row + i, o.col + j}).second)
            << "cell covered twice by thread " << t;
  }
  EXPECT_EQ(covered.size(), static_cast<std::size_t>(s.by * s.bx));
}

TEST_P(ThreadMapAllStrategies, ActiveThreadsFullTile) {
  const TilingStrategy& s = batched_strategy_by_id(GetParam());
  EXPECT_EQ(active_threads_for_tile(s, s.by, s.bx), s.threads);
}

TEST_P(ThreadMapAllStrategies, ActiveThreadsSingleCell) {
  const TilingStrategy& s = batched_strategy_by_id(GetParam());
  EXPECT_EQ(active_threads_for_tile(s, 1, 1), 1);
}

INSTANTIATE_TEST_SUITE_P(Ids, ThreadMapAllStrategies,
                         ::testing::Range(0, 12));

TEST(ThreadMap, Table1StrategiesAlsoPartition) {
  for (const auto& s : single_gemm_strategies()) {
    std::set<std::pair<int, int>> covered;
    for (int t = 0; t < s.threads; ++t) {
      const SubTileOrigin o = thread_sub_tile(s, t);
      for (int i = 0; i < s.sub_y; ++i)
        for (int j = 0; j < s.sub_x; ++j)
          EXPECT_TRUE(covered.insert({o.row + i, o.col + j}).second);
    }
    EXPECT_EQ(covered.size(), static_cast<std::size_t>(s.by * s.bx))
        << s.name();
  }
}

TEST(ThreadMap, ActiveThreadsHalfTile) {
  // large/256 (sub 4x4): a 32x64 clamp covers ceil(32/4)*ceil(64/4)
  // = 8*16 = 128 threads of 256.
  const auto& s = batched_strategy(TileShape::kLarge, ThreadVariant::k256);
  EXPECT_EQ(active_threads_for_tile(s, 32, 64), 128);
}

TEST(ThreadMap, ActiveThreadsRoundsUpPartialSubTiles) {
  // small/256 (sub 1x1): a 3x5 clamp needs exactly 15 threads.
  const auto& s = batched_strategy(TileShape::kSmall, ThreadVariant::k256);
  EXPECT_EQ(active_threads_for_tile(s, 3, 5), 15);
  // small/128 (sub 2x1): 3 rows span ceil(3/2)=2 sub-rows -> 2*5 = 10.
  const auto& s128 = batched_strategy(TileShape::kSmall, ThreadVariant::k128);
  EXPECT_EQ(active_threads_for_tile(s128, 3, 5), 10);
}

TEST(ThreadMap, RowMajorLayout) {
  // small/256: thread t covers cell (t/16, t%16).
  const auto& s = batched_strategy(TileShape::kSmall, ThreadVariant::k256);
  EXPECT_EQ(thread_sub_tile(s, 0).row, 0);
  EXPECT_EQ(thread_sub_tile(s, 0).col, 0);
  EXPECT_EQ(thread_sub_tile(s, 16).row, 1);
  EXPECT_EQ(thread_sub_tile(s, 16).col, 0);
  EXPECT_EQ(thread_sub_tile(s, 17).col, 1);
}

}  // namespace
}  // namespace ctb
