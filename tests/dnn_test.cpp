#include <gtest/gtest.h>

#include <array>
#include <cmath>

#include "dnn/conv.hpp"
#include "dnn/im2col.hpp"
#include "dnn/tensor.hpp"

namespace ctb {
namespace {

// ----------------------------------------------------------------- tensor --

TEST(Tensor, ShapeAndIndexing) {
  Tensor4 t(2, 3, 4, 5);
  EXPECT_EQ(t.size(), 2u * 3 * 4 * 5);
  t.at(1, 2, 3, 4) = 9.0f;
  EXPECT_EQ(t.at(1, 2, 3, 4), 9.0f);
  EXPECT_EQ(t.flat()[t.size() - 1], 9.0f);  // last element NCHW
}

TEST(Tensor, SameShape) {
  Tensor4 a(1, 2, 3, 4), b(1, 2, 3, 4), c(1, 2, 4, 3);
  EXPECT_TRUE(a.same_shape(b));
  EXPECT_FALSE(a.same_shape(c));
}

TEST(Tensor, MaxAbsDiff) {
  Tensor4 a(1, 1, 2, 2), b(1, 1, 2, 2);
  b.at(0, 0, 1, 1) = 3.0f;
  EXPECT_FLOAT_EQ(max_abs_diff(a, b), 3.0f);
}

TEST(Tensor, InvalidShapeThrows) {
  EXPECT_THROW(Tensor4(0, 1, 1, 1), CheckError);
}

// -------------------------------------------------------------- ConvShape --

TEST(ConvShape, OutputDims) {
  ConvShape s;
  s.in_c = 3;
  s.out_c = 8;
  s.kernel = 3;
  s.stride = 1;
  s.pad = 1;
  s.in_h = 28;
  s.in_w = 28;
  EXPECT_EQ(s.out_h(), 28);  // same padding
  EXPECT_EQ(s.out_w(), 28);
}

TEST(ConvShape, StridedOutputDims) {
  ConvShape s;
  s.kernel = 7;
  s.stride = 2;
  s.pad = 3;
  s.in_h = 224;
  s.in_w = 224;
  EXPECT_EQ(s.out_h(), 112);
}

TEST(ConvShape, GemmLoweringDims) {
  // Paper Section 1: M = filters, K = filter size * channels, N = feature
  // map * batch. The inception3a/5x5reduce example: 16x784x192.
  ConvShape s;
  s.in_c = 192;
  s.out_c = 16;
  s.kernel = 1;
  s.stride = 1;
  s.pad = 0;
  s.in_h = 28;
  s.in_w = 28;
  const GemmDims d = s.gemm_dims(1);
  EXPECT_EQ(d.m, 16);
  EXPECT_EQ(d.n, 784);
  EXPECT_EQ(d.k, 192);
}

TEST(ConvShape, BatchScalesN) {
  ConvShape s;
  s.in_c = 4;
  s.out_c = 8;
  s.kernel = 3;
  s.pad = 1;
  s.in_h = 8;
  s.in_w = 8;
  EXPECT_EQ(s.gemm_dims(4).n, 4 * 64);
  EXPECT_EQ(s.gemm_dims(4).k, 4 * 9);
}

// ----------------------------------------------------------------- im2col --

TEST(Im2col, Identity1x1Conv) {
  // A 1x1 conv's im2col is just the channel-major flattening.
  ConvShape s;
  s.in_c = 2;
  s.out_c = 1;
  s.kernel = 1;
  s.in_h = 2;
  s.in_w = 2;
  Tensor4 input(1, 2, 2, 2);
  for (std::size_t i = 0; i < input.size(); ++i)
    input.flat()[i] = static_cast<float>(i);
  const Matrixf cols = im2col(s, input);
  EXPECT_EQ(cols.rows(), 2u);
  EXPECT_EQ(cols.cols(), 4u);
  EXPECT_EQ(cols(0, 0), 0.0f);
  EXPECT_EQ(cols(1, 0), 4.0f);  // channel 1, position 0
}

TEST(Im2col, ZeroPaddingOutsideImage) {
  ConvShape s;
  s.in_c = 1;
  s.out_c = 1;
  s.kernel = 3;
  s.pad = 1;
  s.in_h = 2;
  s.in_w = 2;
  Tensor4 input(1, 1, 2, 2);
  input.flat()[0] = 1;
  input.flat()[1] = 2;
  input.flat()[2] = 3;
  input.flat()[3] = 4;
  const Matrixf cols = im2col(s, input);
  // Output position (0,0), tap (kh=0, kw=0) reads (-1,-1): zero.
  EXPECT_EQ(cols(0, 0), 0.0f);
  // Tap (1,1) at output (0,0) reads input (0,0) = 1.
  EXPECT_EQ(cols(4, 0), 1.0f);
}

TEST(Im2col, ShapeMismatchThrows) {
  ConvShape s;
  s.in_c = 3;
  s.kernel = 1;
  s.in_h = 4;
  s.in_w = 4;
  Tensor4 wrong(1, 2, 4, 4);
  EXPECT_THROW(im2col(s, wrong), CheckError);
}

TEST(Col2Im, RoundTripsGemmOutput) {
  ConvShape s;
  s.in_c = 1;
  s.out_c = 2;
  s.kernel = 1;
  s.in_h = 2;
  s.in_w = 3;
  Matrixf out(2, 2 * 2 * 3);  // batch 2
  fill_pattern(out);
  const Tensor4 t = col2im_output(s, 2, out);
  EXPECT_EQ(t.n(), 2);
  EXPECT_EQ(t.c(), 2);
  EXPECT_EQ(t.at(1, 1, 0, 1), out(1, static_cast<std::size_t>(1 * 6 + 1)));
}

// ------------------------------------------------------------- conv paths --

struct ConvCase {
  int in_c, out_c, kernel, stride, pad, hw, batch;
};

class ConvGemmEquivalence : public ::testing::TestWithParam<ConvCase> {};

TEST_P(ConvGemmEquivalence, GemmPathMatchesDirect) {
  const ConvCase p = GetParam();
  ConvShape s;
  s.in_c = p.in_c;
  s.out_c = p.out_c;
  s.kernel = p.kernel;
  s.stride = p.stride;
  s.pad = p.pad;
  s.in_h = p.hw;
  s.in_w = p.hw;
  Rng rng(static_cast<std::uint64_t>(p.in_c * 131 + p.kernel));
  Tensor4 input(p.batch, p.in_c, p.hw, p.hw);
  fill_random(input, rng);
  const Matrixf filters = random_filters(s, rng);
  const Tensor4 direct = conv_forward_direct(s, input, filters);
  const Tensor4 gemm = conv_forward_gemm(s, input, filters);
  ASSERT_TRUE(direct.same_shape(gemm));
  EXPECT_LT(max_abs_diff(direct, gemm), 1e-3f);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ConvGemmEquivalence,
    ::testing::Values(ConvCase{1, 1, 1, 1, 0, 4, 1},
                      ConvCase{3, 8, 3, 1, 1, 8, 1},
                      ConvCase{4, 6, 5, 1, 2, 9, 2},
                      ConvCase{2, 4, 3, 2, 1, 12, 1},
                      ConvCase{8, 16, 1, 1, 0, 7, 3},
                      ConvCase{3, 2, 7, 2, 3, 16, 1}));

// -------------------------------------------------------------- pool/relu --

TEST(Relu, ClampsNegatives) {
  Tensor4 t(1, 1, 1, 3);
  t.flat()[0] = -1.0f;
  t.flat()[1] = 0.0f;
  t.flat()[2] = 2.0f;
  relu_inplace(t);
  EXPECT_EQ(t.flat()[0], 0.0f);
  EXPECT_EQ(t.flat()[1], 0.0f);
  EXPECT_EQ(t.flat()[2], 2.0f);
}

TEST(MaxPool, WindowMaximum) {
  Tensor4 t(1, 1, 2, 2);
  t.flat()[0] = 1;
  t.flat()[1] = 5;
  t.flat()[2] = 3;
  t.flat()[3] = 2;
  const Tensor4 out = max_pool(t, 2, 2, 0);
  EXPECT_EQ(out.h(), 1);
  EXPECT_EQ(out.w(), 1);
  EXPECT_EQ(out.at(0, 0, 0, 0), 5.0f);
}

TEST(MaxPool, SamePaddingKeepsSize) {
  Tensor4 t(1, 2, 7, 7);
  Rng rng(3);
  fill_random(t, rng);
  const Tensor4 out = max_pool(t, 3, 1, 1);
  EXPECT_EQ(out.h(), 7);
  EXPECT_EQ(out.w(), 7);
  // Pooling can only keep or increase each value vs. the centre tap.
  for (int y = 0; y < 7; ++y)
    for (int x = 0; x < 7; ++x)
      EXPECT_GE(out.at(0, 1, y, x), t.at(0, 1, y, x));
}

TEST(AvgPool, WindowMean) {
  Tensor4 t(1, 1, 2, 2);
  t.flat()[0] = 1;
  t.flat()[1] = 5;
  t.flat()[2] = 3;
  t.flat()[3] = 3;
  const Tensor4 out = avg_pool(t, 2, 2, 0);
  EXPECT_EQ(out.h(), 1);
  EXPECT_FLOAT_EQ(out.at(0, 0, 0, 0), 3.0f);
}

TEST(AvgPool, ExclusivePaddingCounting) {
  // With padding, the corner window covers only one in-image tap: the mean
  // divides by 1, not the window area.
  Tensor4 t(1, 1, 2, 2);
  t.flat()[0] = 8;
  const Tensor4 out = avg_pool(t, 3, 2, 1);
  EXPECT_FLOAT_EQ(out.at(0, 0, 0, 0), (8.0f + 0 + 0 + 0) / 4.0f);
}

TEST(AvgPool, GlobalPoolReducesToOnePixel) {
  Tensor4 t(1, 2, 7, 7);
  Rng rng(9);
  fill_random(t, rng);
  const Tensor4 out = avg_pool(t, 7, 1, 0);
  EXPECT_EQ(out.h(), 1);
  EXPECT_EQ(out.w(), 1);
  float sum = 0;
  for (int y = 0; y < 7; ++y)
    for (int x = 0; x < 7; ++x) sum += t.at(0, 1, y, x);
  EXPECT_NEAR(out.at(0, 1, 0, 0), sum / 49.0f, 1e-5f);
}

TEST(AddBias, PerChannel) {
  Tensor4 t(1, 2, 2, 2);
  const std::vector<float> bias = {1.0f, -2.0f};
  add_bias_inplace(t, bias);
  EXPECT_FLOAT_EQ(t.at(0, 0, 1, 1), 1.0f);
  EXPECT_FLOAT_EQ(t.at(0, 1, 0, 0), -2.0f);
}

TEST(AddBias, SizeMismatchThrows) {
  Tensor4 t(1, 3, 1, 1);
  const std::vector<float> bias = {1.0f};
  EXPECT_THROW(add_bias_inplace(t, bias), CheckError);
}

TEST(Lrn, IdentityWhenInputZero) {
  Tensor4 t(1, 4, 2, 2);
  const Tensor4 out = lrn_across_channels(t);
  for (float v : out.flat()) EXPECT_EQ(v, 0.0f);
}

TEST(Lrn, NormalizesLargeActivations) {
  Tensor4 t(1, 5, 1, 1);
  for (int c = 0; c < 5; ++c) t.at(0, c, 0, 0) = 100.0f;
  const Tensor4 out = lrn_across_channels(t, 5, 1e-4f, 0.75f, 1.0f);
  // scale = (1 + 1e-4/5 * 5*1e4)^0.75 = 2^0.75 ~ 1.68: output < input.
  EXPECT_LT(out.at(0, 2, 0, 0), 100.0f);
  EXPECT_GT(out.at(0, 2, 0, 0), 0.0f);
  // Edge channels see fewer neighbours, so they are damped less.
  EXPECT_GT(out.at(0, 0, 0, 0), out.at(0, 2, 0, 0));
}

TEST(Softmax, SumsToOneAndOrdersPreserved) {
  const std::vector<float> logits = {1.0f, 3.0f, 2.0f};
  const auto p = softmax(logits);
  float sum = 0;
  for (float v : p) sum += v;
  EXPECT_NEAR(sum, 1.0f, 1e-6f);
  EXPECT_GT(p[1], p[2]);
  EXPECT_GT(p[2], p[0]);
}

TEST(Softmax, StableForHugeLogits) {
  const std::vector<float> logits = {1000.0f, 1000.0f};
  const auto p = softmax(logits);
  EXPECT_NEAR(p[0], 0.5f, 1e-6f);
  EXPECT_FALSE(std::isnan(p[0]));
}

TEST(ConcatChannels, StacksInOrder) {
  Tensor4 a(1, 1, 2, 2), b(1, 2, 2, 2);
  a.flat()[0] = 1.0f;
  b.flat()[0] = 2.0f;
  const std::array<const Tensor4*, 2> parts = {&a, &b};
  const Tensor4 out = concat_channels(parts);
  EXPECT_EQ(out.c(), 3);
  EXPECT_EQ(out.at(0, 0, 0, 0), 1.0f);
  EXPECT_EQ(out.at(0, 1, 0, 0), 2.0f);
}

TEST(ConcatChannels, MismatchedSpatialThrows) {
  Tensor4 a(1, 1, 2, 2), b(1, 1, 3, 3);
  const std::array<const Tensor4*, 2> parts = {&a, &b};
  EXPECT_THROW(concat_channels(parts), CheckError);
}

}  // namespace
}  // namespace ctb
