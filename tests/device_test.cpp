#include <gtest/gtest.h>

#include <numeric>

#include "gpusim/device.hpp"

namespace ctb {
namespace {

TEST(Device, AllocTracksBytes) {
  Device dev(GpuModel::kV100);
  EXPECT_EQ(dev.bytes_allocated(), 0);
  {
    auto buf = dev.alloc<float>(1024);
    EXPECT_EQ(dev.bytes_allocated(), 4096);
    EXPECT_EQ(dev.alloc_count(), 1);
    EXPECT_EQ(buf.size(), 1024u);
  }
  EXPECT_EQ(dev.bytes_allocated(), 0);  // freed on scope exit
  EXPECT_EQ(dev.peak_bytes(), 4096);
}

TEST(Device, PeakTracksHighWaterMark) {
  Device dev(GpuModel::kV100);
  auto a = dev.alloc<double>(100);  // 800 B
  {
    auto b = dev.alloc<double>(300);  // +2400 B
    EXPECT_EQ(dev.bytes_allocated(), 3200);
  }
  auto c = dev.alloc<double>(50);
  EXPECT_EQ(dev.peak_bytes(), 3200);
}

TEST(Device, MoveTransfersOwnership) {
  Device dev(GpuModel::kV100);
  auto a = dev.alloc<int>(10);
  auto b = std::move(a);
  EXPECT_EQ(b.size(), 10u);
  EXPECT_EQ(dev.bytes_allocated(), 40);
  b = DeviceBuffer<int>{};
  EXPECT_EQ(dev.bytes_allocated(), 0);
}

TEST(Device, CopyRoundTrip) {
  Device dev(GpuModel::kV100);
  auto buf = dev.alloc<float>(16);
  std::vector<float> host(16);
  std::iota(host.begin(), host.end(), 1.0f);
  copy_to_device<float>(host, buf);
  std::vector<float> back(16, 0.0f);
  copy_to_host<float>(buf, back);
  EXPECT_EQ(host, back);
}

TEST(Device, CopySizeMismatchThrows) {
  Device dev(GpuModel::kV100);
  auto buf = dev.alloc<float>(8);
  std::vector<float> host(9);
  EXPECT_THROW(copy_to_device<float>(host, buf), CheckError);
}

TEST(Device, TransferTimeModelIsMonotone) {
  Device dev(GpuModel::kV100);
  EXPECT_LT(dev.transfer_time_us(1024), dev.transfer_time_us(1024 * 1024));
  EXPECT_GT(dev.transfer_time_us(0), 0.0);  // per-call latency
}

TEST(Device, ArchAccessible) {
  Device dev(GpuModel::kP100);
  EXPECT_EQ(dev.arch().name, "Tesla P100");
}

}  // namespace
}  // namespace ctb
