#include <gtest/gtest.h>

#include <set>
#include <algorithm>

#include "core/api.hpp"
#include "core/rf_policy.hpp"
#include "linalg/gemm_ref.hpp"

namespace ctb {
namespace {

Matrixf rand_mat(int r, int c, Rng& rng) {
  Matrixf m(static_cast<std::size_t>(r), static_cast<std::size_t>(c));
  fill_random(m, rng);
  return m;
}

TEST(Defaults, TlpThresholdMatchesPaperOnV100) {
  EXPECT_EQ(default_tlp_threshold(gpu_arch(GpuModel::kV100)), 65536);
}

TEST(Defaults, ThetaIs256) {
  EXPECT_EQ(default_theta(gpu_arch(GpuModel::kV100)), 256);
}

TEST(Defaults, ThresholdScalesWithGpuSize) {
  // Smaller GPUs need fewer threads to fill.
  EXPECT_LT(default_tlp_threshold(gpu_arch(GpuModel::kM60)),
            default_tlp_threshold(gpu_arch(GpuModel::kV100)));
}

TEST(Planner, DerivesThresholdsFromArch) {
  PlannerConfig config;
  config.gpu = GpuModel::kV100;
  const BatchedGemmPlanner planner(config);
  EXPECT_EQ(planner.config().tlp_threshold, 65536);
  EXPECT_EQ(planner.config().theta, 256);
}

TEST(Planner, ExplicitThresholdsRespected) {
  PlannerConfig config;
  config.tlp_threshold = 1234;
  config.theta = 99;
  const BatchedGemmPlanner planner(config);
  EXPECT_EQ(planner.config().tlp_threshold, 1234);
  EXPECT_EQ(planner.config().theta, 99);
}

TEST(Planner, RandomForestPolicyRequiresForest) {
  PlannerConfig config;
  config.policy = BatchingPolicy::kRandomForest;
  EXPECT_THROW(BatchedGemmPlanner{config}, CheckError);
}

TEST(Planner, EmptyBatchThrows) {
  const BatchedGemmPlanner planner{PlannerConfig{}};
  EXPECT_THROW(planner.plan({}), CheckError);
}

class PlannerPolicies : public ::testing::TestWithParam<BatchingPolicy> {};

TEST_P(PlannerPolicies, PlansValidateAndCoverBatch) {
  PlannerConfig config;
  config.policy = GetParam();
  RandomForest forest;
  if (GetParam() == BatchingPolicy::kRandomForest) {
    RfTrainingConfig rf;
    rf.num_cases = 20;
    rf.forest.num_trees = 4;
    rf.ranges.max_batch = 8;
    rf.ranges.max_mn = 128;
    rf.ranges.max_k = 256;
    forest = train_batching_forest(rf);
    config.forest = &forest;
  }
  const BatchedGemmPlanner planner(config);
  const std::vector<GemmDims> dims = {
      {16, 32, 128}, {64, 64, 64}, {256, 256, 64}, {100, 50, 300}};
  const PlanSummary s = planner.plan(dims);
  EXPECT_NO_THROW(validate_plan(s.plan, dims));
  EXPECT_GT(s.plan.num_blocks(), 0);
}

INSTANTIATE_TEST_SUITE_P(
    Policies, PlannerPolicies,
    ::testing::Values(BatchingPolicy::kThresholdOnly,
                      BatchingPolicy::kBinaryOnly,
                      BatchingPolicy::kAutoOffline,
                      BatchingPolicy::kRandomForest,
                      BatchingPolicy::kTilingOnly));

TEST(Planner, TilingOnlyMeansOneTilePerBlock) {
  PlannerConfig config;
  config.policy = BatchingPolicy::kTilingOnly;
  const BatchedGemmPlanner planner(config);
  const std::vector<GemmDims> dims(8, GemmDims{64, 64, 32});
  const PlanSummary s = planner.plan(dims);
  EXPECT_EQ(s.heuristic, BatchingHeuristic::kNone);
  EXPECT_EQ(s.plan.num_blocks(), s.plan.num_tiles());
}

TEST(Planner, AutoOfflinePicksNoWorseThanEitherHeuristic) {
  PlannerConfig base;
  const std::vector<GemmDims> dims(64, GemmDims{32, 32, 48});
  const GpuArch& arch = gpu_arch(GpuModel::kV100);

  base.policy = BatchingPolicy::kThresholdOnly;
  const double t_thr =
      time_plan(arch, BatchedGemmPlanner(base).plan(dims).plan, dims)
          .time_us;
  base.policy = BatchingPolicy::kBinaryOnly;
  const double t_bin =
      time_plan(arch, BatchedGemmPlanner(base).plan(dims).plan, dims)
          .time_us;
  base.policy = BatchingPolicy::kAutoOffline;
  const double t_auto =
      time_plan(arch, BatchedGemmPlanner(base).plan(dims).plan, dims)
          .time_us;
  EXPECT_LE(t_auto, std::min(t_thr, t_bin) + 1e-9);
}

TEST(TimePlan, IncludesLaunchOverhead) {
  const std::vector<GemmDims> dims = {{16, 16, 16}};
  const BatchedGemmPlanner planner{PlannerConfig{}};
  const PlanSummary s = planner.plan(dims);
  const GpuArch& arch = gpu_arch(GpuModel::kV100);
  const TimedResult t = time_plan(arch, s.plan, dims);
  EXPECT_GE(t.time_us, arch.kernel_launch_us);
  EXPECT_GT(t.sim.total_flops, 0);
}

TEST(BatchedGemmCall, ComputesCorrectResults) {
  Rng rng(2024);
  const std::vector<GemmDims> dims = {
      {16, 32, 128}, {64, 64, 64}, {100, 40, 56}};
  std::vector<Matrixf> as, bs, cs, refs;
  for (const auto& d : dims) {
    as.push_back(rand_mat(d.m, d.k, rng));
    bs.push_back(rand_mat(d.k, d.n, rng));
    cs.push_back(rand_mat(d.m, d.n, rng));
    refs.push_back(cs.back());
  }
  std::vector<const Matrixf*> a, b;
  std::vector<Matrixf*> c;
  for (std::size_t i = 0; i < dims.size(); ++i) {
    a.push_back(&as[i]);
    b.push_back(&bs[i]);
    c.push_back(&cs[i]);
  }
  const BatchedGemmResult result =
      batched_gemm(a, b, c, 1.5f, 0.25f, PlannerConfig{});
  for (std::size_t i = 0; i < dims.size(); ++i) {
    gemm_naive(as[i], bs[i], refs[i], 1.5f, 0.25f);
    EXPECT_TRUE(allclose(cs[i], refs[i])) << "gemm " << i;
  }
  EXPECT_GT(result.timing.time_us, 0.0);
  EXPECT_GT(result.summary.plan.num_blocks(), 0);
}

TEST(BatchedGemmCall, MismatchedArraysThrow) {
  Matrixf a(4, 4), b(4, 4), c(4, 4);
  const std::vector<const Matrixf*> av{&a};
  const std::vector<const Matrixf*> bv{&b, &b};
  std::vector<Matrixf*> cv{&c};
  EXPECT_THROW(batched_gemm(av, bv, cv, 1.0f, 0.0f), CheckError);
}

TEST(BatchedGemmCall, NullPointerThrows) {
  Matrixf a(4, 4), b(4, 4), c(4, 4);
  const std::vector<const Matrixf*> av{&a};
  const std::vector<const Matrixf*> bv{nullptr};
  std::vector<Matrixf*> cv{&c};
  EXPECT_THROW(batched_gemm(av, bv, cv, 1.0f, 0.0f), CheckError);
}

// ------------------------------------------- degenerate-input contract --
// batched_gemm must reject these with CheckError before writing to any C
// matrix (contract documented in core/api.hpp).

TEST(BatchedGemmCall, EmptyBatchThrows) {
  const std::vector<const Matrixf*> none;
  std::vector<Matrixf*> out;
  EXPECT_THROW(batched_gemm(none, none, out, 1.0f, 0.0f), CheckError);
  const std::vector<GemmEntry> entries;
  EXPECT_THROW(batched_gemm(entries, 1.0f, 0.0f), CheckError);
}

TEST(BatchedGemmCall, ZeroDimThrows) {
  {
    Matrixf a(0, 4), b(4, 4), c(0, 4);  // m == 0
    const std::vector<const Matrixf*> av{&a}, bv{&b};
    std::vector<Matrixf*> cv{&c};
    EXPECT_THROW(batched_gemm(av, bv, cv, 1.0f, 0.0f), CheckError);
  }
  {
    Matrixf a(4, 0), b(0, 4), c(4, 4);  // k == 0
    const std::vector<const Matrixf*> av{&a}, bv{&b};
    std::vector<Matrixf*> cv{&c};
    EXPECT_THROW(batched_gemm(av, bv, cv, 1.0f, 0.0f), CheckError);
  }
}

TEST(BatchedGemmCall, InnerDimMismatchThrows) {
  Matrixf a(4, 8), b(6, 4), c(4, 4);  // a.cols != b.rows
  const std::vector<const Matrixf*> av{&a}, bv{&b};
  std::vector<Matrixf*> cv{&c};
  EXPECT_THROW(batched_gemm(av, bv, cv, 1.0f, 0.0f), CheckError);
}

TEST(BatchedGemmCall, OutputShapeMismatchThrows) {
  Matrixf a(4, 8), b(8, 4), c(4, 5);  // c must be 4x4
  const std::vector<const Matrixf*> av{&a}, bv{&b};
  std::vector<Matrixf*> cv{&c};
  const float before = c(0, 0);
  EXPECT_THROW(batched_gemm(av, bv, cv, 1.0f, 0.0f), CheckError);
  EXPECT_EQ(c(0, 0), before);
}

TEST(BatchedGemmCall, FallbackKnobHappyPathBitIdentical) {
  // With fallback_to_reference enabled and a healthy batch, results are
  // bit-identical to the default path and no degradation is reported.
  Rng rng(77);
  const std::vector<GemmDims> dims = {{32, 48, 64}, {40, 24, 16}};
  std::vector<Matrixf> as, bs, c_plain, c_fallback;
  for (const auto& d : dims) {
    as.push_back(rand_mat(d.m, d.k, rng));
    bs.push_back(rand_mat(d.k, d.n, rng));
    c_plain.push_back(rand_mat(d.m, d.n, rng));
    c_fallback.push_back(c_plain.back());
  }
  std::vector<const Matrixf*> a, b;
  std::vector<Matrixf*> c1, c2;
  for (std::size_t i = 0; i < dims.size(); ++i) {
    a.push_back(&as[i]);
    b.push_back(&bs[i]);
    c1.push_back(&c_plain[i]);
    c2.push_back(&c_fallback[i]);
  }
  const BatchedGemmResult plain =
      batched_gemm(a, b, c1, 1.5f, 0.25f, PlannerConfig{});
  PlannerConfig guarded;
  guarded.fallback_to_reference = true;
  const BatchedGemmResult with_knob =
      batched_gemm(a, b, c2, 1.5f, 0.25f, guarded);
  EXPECT_FALSE(plain.execution.fell_back);
  EXPECT_FALSE(with_knob.execution.fell_back);
  EXPECT_TRUE(with_knob.execution.reason.empty());
  EXPECT_GT(with_knob.timing.time_us, 0.0);
  for (std::size_t i = 0; i < dims.size(); ++i)
    EXPECT_EQ(max_abs_diff(c_plain[i], c_fallback[i]), 0.0f) << "gemm " << i;
}

TEST(PolicyNames, AllDistinct) {
  std::set<std::string> names;
  for (BatchingPolicy p :
       {BatchingPolicy::kThresholdOnly, BatchingPolicy::kBinaryOnly,
        BatchingPolicy::kAutoOffline, BatchingPolicy::kRandomForest,
        BatchingPolicy::kTilingOnly}) {
    names.insert(to_string(p));
  }
  EXPECT_EQ(names.size(), 5u);
}

}  // namespace
}  // namespace ctb
