// Bit-exactness of the host parallel execution engine: every executor must
// produce byte-identical C matrices whether blocks run serially
// (set_parallel_threads(1)) or concurrently. This holds because blocks own
// disjoint C tiles and each tile keeps its serial per-element FMA chain —
// the property DESIGN.md §6 documents and this test enforces.
#include <gtest/gtest.h>

#include <vector>

#include "core/api.hpp"
#include "core/rf_policy.hpp"
#include "dnn/implicit_gemm.hpp"
#include "kernels/functional.hpp"
#include "util/parallel.hpp"

namespace ctb {
namespace {

// Worker count for the parallel leg. More workers than the single hardware
// core is fine — oversubscription still exercises concurrent block order.
constexpr int kParallelThreads = 4;

Matrixf rand_mat(int r, int c, Rng& rng) {
  Matrixf m(static_cast<std::size_t>(r), static_cast<std::size_t>(c));
  fill_random(m, rng);
  return m;
}

void expect_bitwise_equal(const Matrixf& serial, const Matrixf& parallel,
                          const std::string& what) {
  ASSERT_EQ(serial.rows(), parallel.rows());
  ASSERT_EQ(serial.cols(), parallel.cols());
  const auto s = serial.flat();
  const auto p = parallel.flat();
  for (std::size_t i = 0; i < s.size(); ++i) {
    ASSERT_EQ(s[i], p[i]) << what << " diverges at flat index " << i;
  }
}

// Dims with edge-guarded tiles: M, N, K not multiples of any BY/BX/BK.
const std::vector<GemmDims>& ragged_batch() {
  static const std::vector<GemmDims> dims = {
      {33, 65, 19}, {128, 128, 64},  {100, 40, 77},
      {16, 16, 3},  {129, 257, 100}, {5, 7, 11},
  };
  return dims;
}

struct BatchCase {
  std::vector<Matrixf> a, b, c;
  std::vector<GemmOperands> ops;
};

BatchCase make_batch(std::span<const GemmDims> dims, std::uint64_t seed,
                     Precision precision = Precision::kFp32) {
  BatchCase bc;
  Rng rng(seed);
  for (const auto& d : dims) {
    bc.a.push_back(rand_mat(d.m, d.k, rng));
    bc.b.push_back(rand_mat(d.k, d.n, rng));
    bc.c.push_back(rand_mat(d.m, d.n, rng));
  }
  for (std::size_t i = 0; i < dims.size(); ++i) {
    bc.ops.push_back(operands(bc.a[i], bc.b[i], bc.c[i]));
    bc.ops.back().precision = precision;
  }
  return bc;
}

// Runs `body` once serially and once with kParallelThreads workers on fresh
// copies of the same inputs, asserting bit-identical C outputs.
template <typename MakeCase, typename Body>
void expect_parallel_matches_serial(MakeCase&& make, Body&& body,
                                    const std::string& what) {
  auto serial_case = make();
  {
    ScopedParallelThreads guard(1);
    body(serial_case);
  }
  auto parallel_case = make();
  {
    ScopedParallelThreads guard(kParallelThreads);
    body(parallel_case);
  }
  for (std::size_t i = 0; i < serial_case.c.size(); ++i)
    expect_bitwise_equal(serial_case.c[i], parallel_case.c[i],
                         what + " gemm " + std::to_string(i));
}

// ---------------------------------------------------------- single GEMM --

class ParallelSingleGemm : public ::testing::TestWithParam<int> {};

TEST_P(ParallelSingleGemm, AllStrategiesBitExact) {
  const TilingStrategy& s = batched_strategy_by_id(GetParam());
  // Several tiles per dimension plus ragged edges and K % BK != 0.
  const std::vector<GemmDims> dims = {
      {2 * s.by + 3, 3 * s.bx + 5, 37}};
  expect_parallel_matches_serial(
      [&] { return make_batch(dims, 42); },
      [&](BatchCase& bc) { run_single_gemm(s, bc.ops[0], 1.5f, -0.5f); },
      "single_gemm " + s.name());
}

INSTANTIATE_TEST_SUITE_P(Ids, ParallelSingleGemm, ::testing::Range(0, 12));

TEST(ParallelSingleGemm, TransposeVariantsBitExact) {
  const auto& s = batched_strategy(TileShape::kMedium, ThreadVariant::k256);
  const int m = 70, n = 45, k = 29;
  for (const Op op_a : {Op::kN, Op::kT}) {
    for (const Op op_b : {Op::kN, Op::kT}) {
      const int ar = op_a == Op::kN ? m : k;
      const int ac = op_a == Op::kN ? k : m;
      const int br = op_b == Op::kN ? k : n;
      const int bc_ = op_b == Op::kN ? n : k;
      struct TCase {
        Matrixf a, b, c;
      };
      auto make = [&] {
        Rng rng(77);
        return TCase{rand_mat(ar, ac, rng), rand_mat(br, bc_, rng),
                     rand_mat(m, n, rng)};
      };
      TCase serial = make();
      {
        ScopedParallelThreads guard(1);
        run_single_gemm(s, operands(serial.a, serial.b, serial.c, op_a, op_b),
                        1.0f, 0.25f);
      }
      TCase parallel = make();
      {
        ScopedParallelThreads guard(kParallelThreads);
        run_single_gemm(
            s, operands(parallel.a, parallel.b, parallel.c, op_a, op_b),
            1.0f, 0.25f);
      }
      expect_bitwise_equal(serial.c, parallel.c,
                           std::string("transpose op_a=") +
                               (op_a == Op::kT ? "T" : "N") + " op_b=" +
                               (op_b == Op::kT ? "T" : "N"));
    }
  }
}

TEST(ParallelSingleGemm, Fp16BitExact) {
  const auto& s = batched_strategy(TileShape::kLarge, ThreadVariant::k128);
  const std::vector<GemmDims> dims = {{90, 130, 48}};
  expect_parallel_matches_serial(
      [&] { return make_batch(dims, 99, Precision::kFp16); },
      [&](BatchCase& bc) { run_single_gemm(s, bc.ops[0], 1.0f, 0.5f); },
      "single_gemm fp16");
}

// --------------------------------------------------------------- vbatch --

TEST(ParallelVbatch, MixedSizesBitExact) {
  const auto& s = single_gemm_strategy(TileShape::kMedium);
  expect_parallel_matches_serial(
      [&] { return make_batch(ragged_batch(), 123); },
      [&](BatchCase& bc) { run_vbatch(s, bc.ops, 1.25f, 0.5f); },
      "vbatch");
}

// --------------------------------------------------------- batched plan --

void expect_policy_bit_exact(BatchingPolicy policy,
                             const RandomForest* forest = nullptr) {
  PlannerConfig config;
  config.policy = policy;
  config.forest = forest;
  const BatchedGemmPlanner planner(config);
  const PlanSummary summary = planner.plan(ragged_batch());
  validate_plan(summary.plan, ragged_batch());
  expect_parallel_matches_serial(
      [&] { return make_batch(ragged_batch(), 7); },
      [&](BatchCase& bc) {
        run_batched_plan(summary.plan, bc.ops, 2.0f, -1.0f);
      },
      std::string("plan policy=") + to_string(policy));
}

TEST(ParallelBatchedPlan, ThresholdPolicyBitExact) {
  expect_policy_bit_exact(BatchingPolicy::kThresholdOnly);
}

TEST(ParallelBatchedPlan, BinaryPolicyBitExact) {
  expect_policy_bit_exact(BatchingPolicy::kBinaryOnly);
}

TEST(ParallelBatchedPlan, AutoOfflinePolicyBitExact) {
  expect_policy_bit_exact(BatchingPolicy::kAutoOffline);
}

TEST(ParallelBatchedPlan, TilingOnlyPolicyBitExact) {
  expect_policy_bit_exact(BatchingPolicy::kTilingOnly);
}

TEST(ParallelBatchedPlan, RandomForestPolicyBitExact) {
  RfTrainingConfig config;
  config.num_cases = 40;
  config.forest.num_trees = 8;
  config.ranges.max_batch = 8;
  config.ranges.max_mn = 256;
  config.ranges.max_k = 512;
  const RandomForest forest = train_batching_forest(config);
  expect_policy_bit_exact(BatchingPolicy::kRandomForest, &forest);
}

TEST(ParallelBatchedPlan, Fp16BitExact) {
  PlannerConfig config;
  const BatchedGemmPlanner planner(config);
  const PlanSummary summary = planner.plan(ragged_batch());
  expect_parallel_matches_serial(
      [&] { return make_batch(ragged_batch(), 13, Precision::kFp16); },
      [&](BatchCase& bc) {
        run_batched_plan(summary.plan, bc.ops, 1.0f, 0.0f);
      },
      "plan fp16");
}

// Errors raised inside worker threads must surface on the caller, exactly
// like the serial path.
TEST(ParallelBatchedPlan, ForeignGemmIndexThrowsUnderParallelism) {
  const auto& s = batched_strategy(TileShape::kSmall, ThreadVariant::k256);
  BatchPlan plan;
  plan.tile_offsets = {0, 1};
  plan.gemm_of_tile = {2};  // batch has one GEMM only
  plan.strategy_of_tile = {s.id};
  plan.y_coord = {0};
  plan.x_coord = {0};
  Rng rng(17);
  Matrixf a = rand_mat(16, 8, rng), b = rand_mat(8, 16, rng), c(16, 16);
  std::vector<GemmOperands> ops = {operands(a, b, c)};
  ScopedParallelThreads guard(kParallelThreads);
  EXPECT_THROW(run_batched_plan(plan, ops, 1.0f, 0.0f), CheckError);
}

// ------------------------------------------------------- implicit gather --

TEST(ParallelImplicitGemm, GatherPathBitExact) {
  ConvShape shape;
  shape.name = "par_conv";
  shape.in_c = 5;
  shape.out_c = 9;
  shape.kernel = 3;
  shape.stride = 2;
  shape.pad = 1;
  shape.in_h = 13;
  shape.in_w = 11;
  Rng rng(31);
  Tensor4 input(2, shape.in_c, shape.in_h, shape.in_w);
  fill_random(input, rng);
  const Matrixf filters = random_filters(shape, rng);

  Tensor4 serial(1, 1, 1, 1), parallel(1, 1, 1, 1);
  {
    ScopedParallelThreads guard(1);
    serial = conv_forward_implicit(shape, input, filters);
  }
  {
    ScopedParallelThreads guard(kParallelThreads);
    parallel = conv_forward_implicit(shape, input, filters);
  }
  const auto s = serial.flat();
  const auto p = parallel.flat();
  ASSERT_EQ(s.size(), p.size());
  for (std::size_t i = 0; i < s.size(); ++i)
    ASSERT_EQ(s[i], p[i]) << "implicit conv diverges at " << i;
}

// ------------------------------------------------------- wrapper basics --

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  std::vector<int> hits(1000, 0);
  parallel_for(static_cast<long long>(hits.size()),
               [&](long long i) { hits[static_cast<std::size_t>(i)]++; });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ParallelFor, OverrideRoundTrips) {
  EXPECT_EQ(parallel_threads_override(), 0);
  {
    ScopedParallelThreads guard(3);
    EXPECT_EQ(parallel_threads_override(), 3);
    EXPECT_EQ(parallel_max_threads(), 3);
    {
      ScopedParallelThreads inner(1);
      EXPECT_EQ(parallel_max_threads(), 1);
    }
    EXPECT_EQ(parallel_threads_override(), 3);
  }
  EXPECT_EQ(parallel_threads_override(), 0);
  EXPECT_GE(parallel_max_threads(), 1);
}

TEST(ParallelFor, PropagatesExceptions) {
  ScopedParallelThreads guard(kParallelThreads);
  EXPECT_THROW(
      parallel_for(64,
                   [](long long i) {
                     if (i == 37) throw CheckError("boom");
                   }),
      CheckError);
}

TEST(ParallelFor, ZeroAndNegativeCountsAreNoops) {
  parallel_for(0, [](long long) { FAIL() << "must not be called"; });
  parallel_for(-5, [](long long) { FAIL() << "must not be called"; });
}

}  // namespace
}  // namespace ctb
