// Fault-injection harness for the plan pipeline (the tentpole of the
// robustness layer). Valid plans from real planner runs are corrupted with
// every class in the plan_fuzz catalog — truncation, duplication, swapped
// entries, out-of-range ids/coords, non-monotone offsets, thread-structure
// mismatches, overflow-adjacent extents — and every corrupted plan must be
// rejected by validation *before* the executor touches any matrix memory.
// C matrices are sentinel-filled to prove no write happened; CI repeats the
// whole suite under ASan+UBSan so a validation miss shows up as a sanitizer
// report rather than silence. The graceful-degradation contract is checked
// too: try_execute_plan falls back to bit-exact reference GEMM on faulted
// plans and stays bit-identical to execute_plan on healthy ones.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "core/api.hpp"
#include "core/plan_fuzz.hpp"
#include "core/plan_io.hpp"
#include "kernels/functional.hpp"
#include "service/failpoint.hpp"
#include "service/plan_service.hpp"

namespace ctb {
namespace {

// A value no GEMM over random [-1, 1) inputs can produce: any change means
// the executor wrote to C before validation rejected the plan.
constexpr float kSentinel = -77.25f;

std::size_t st(int v) { return static_cast<std::size_t>(v); }

Matrixf rand_mat(int r, int c, Rng& rng) {
  Matrixf m(st(r), st(c));
  fill_random(m, rng);
  return m;
}

struct PlanCase {
  std::string name;
  std::vector<GemmDims> dims;
  std::vector<int> epilogues;  ///< per-GEMM specs; empty = plain batch
  BatchPlan plan;
};

const std::vector<PlanCase>& plan_cases() {
  static const std::vector<PlanCase> cases = [] {
    std::vector<PlanCase> out;
    auto add = [&](std::string name, std::vector<GemmDims> dims,
                   BatchingPolicy policy, std::vector<int> epilogues = {}) {
      PlannerConfig config;
      config.policy = policy;
      const BatchedGemmPlanner planner(config);
      PlanCase pc;
      pc.name = std::move(name);
      pc.dims = std::move(dims);
      pc.epilogues = std::move(epilogues);
      pc.plan = pc.epilogues.empty()
                    ? planner.plan(pc.dims).plan
                    : planner.plan(pc.dims, pc.epilogues).plan;
      validate_plan(pc.plan, pc.dims);  // fixtures start healthy
      out.push_back(std::move(pc));
    };
    // Split-K fixtures are hand-built (enumerate -> split -> pack into
    // blocks) so the split fault classes have K-range arrays to corrupt.
    auto add_split = [&](std::string name, std::vector<GemmDims> dims,
                         int slices, std::size_t tiles_per_block) {
      const TilingStrategy& s =
          batched_strategy(TileShape::kMedium, ThreadVariant::k256);
      const std::vector<const TilingStrategy*> strategies(dims.size(), &s);
      const std::vector<Tile> tiles = enumerate_tiles(dims, strategies);
      const std::vector<Tile> split = split_tiles_k(tiles, slices);
      std::vector<std::vector<Tile>> blocks;
      for (std::size_t i = 0; i < split.size(); i += tiles_per_block) {
        const std::size_t hi = std::min(i + tiles_per_block, split.size());
        blocks.emplace_back(split.begin() + static_cast<std::ptrdiff_t>(i),
                            split.begin() + static_cast<std::ptrdiff_t>(hi));
      }
      PlanCase pc;
      pc.name = std::move(name);
      pc.dims = std::move(dims);
      pc.plan = build_plan(blocks, s.threads);
      validate_plan(pc.plan, pc.dims);  // fixtures start healthy
      out.push_back(std::move(pc));
    };
    const std::vector<GemmDims> ragged = {
        {16, 32, 48}, {64, 64, 64}, {40, 24, 96}, {100, 50, 60}};
    add("ragged-threshold", ragged, BatchingPolicy::kThresholdOnly);
    add("ragged-binary", ragged, BatchingPolicy::kBinaryOnly);
    add("uniform-tiling-only",
        std::vector<GemmDims>(6, GemmDims{64, 64, 32}),
        BatchingPolicy::kTilingOnly);
    add("single-auto", {{96, 80, 64}}, BatchingPolicy::kAutoOffline);
    add("many-threshold", std::vector<GemmDims>(24, GemmDims{64, 64, 32}),
        BatchingPolicy::kThresholdOnly);
    add_split("splitk-ragged", {{64, 64, 96}, {40, 24, 100}}, 3, 2);
    add_split("splitk-uniform",
              std::vector<GemmDims>(4, GemmDims{32, 32, 64}), 2, 3);
    // Fused-epilogue fixture (value ops only, so nonzero beta stays legal
    // in the happy-path tests): the epilogue fault classes need the
    // per-GEMM spec array to corrupt.
    const int bias_relu =
        epilogue_push(epilogue_push(0, EpilogueOp::kBias), EpilogueOp::kRelu);
    add("epilogue-ragged", ragged, BatchingPolicy::kThresholdOnly,
        {bias_relu, epilogue_push(0, EpilogueOp::kRelu), 0,
         epilogue_push(0, EpilogueOp::kResidual)});
    return out;
  }();
  return cases;
}

/// Random A/B plus sentinel-filled C for every GEMM of a batch. The
/// matrices live in vectors sized up front, so the operand pointers stay
/// stable. When per-GEMM epilogue specs are given, matching operands
/// (random bias/residual buffers) are allocated and attached so the
/// workspace agrees with an epilogue-carrying plan.
struct Workspace {
  std::vector<Matrixf> a, b, c;
  std::vector<std::vector<float>> bias, residual;
  std::vector<GemmOperands> ops;

  Workspace(std::span<const GemmDims> dims, std::uint64_t seed,
            float c_init = kSentinel, std::span<const int> epilogues = {}) {
    Rng rng(seed);
    a.reserve(dims.size());
    b.reserve(dims.size());
    c.reserve(dims.size());
    bias.resize(dims.size());
    residual.resize(dims.size());
    for (const auto& d : dims) {
      a.push_back(rand_mat(d.m, d.k, rng));
      b.push_back(rand_mat(d.k, d.n, rng));
      c.emplace_back(st(d.m), st(d.n), c_init);
    }
    for (std::size_t i = 0; i < dims.size(); ++i)
      ops.push_back(operands(a[i], b[i], c[i]));
    for (std::size_t i = 0; i < epilogues.size() && i < dims.size(); ++i) {
      const GemmDims& d = dims[i];
      ops[i].epilogue = epilogues[i];
      if (epilogue_has_op(epilogues[i], EpilogueOp::kBias)) {
        bias[i].resize(st(d.m));
        for (float& v : bias[i])
          v = static_cast<float>(rng.uniform_int(-64, 64)) / 16.0f;
        ops[i].epilogue_args.bias = bias[i].data();
        ops[i].epilogue_args.bias_len = d.m;
      }
      if (epilogue_has_op(epilogues[i], EpilogueOp::kResidual)) {
        residual[i].resize(st(d.m) * st(d.n));
        for (float& v : residual[i])
          v = static_cast<float>(rng.uniform_int(-64, 64)) / 16.0f;
        ops[i].epilogue_args.residual = residual[i].data();
        ops[i].epilogue_args.residual_rows = d.m;
        ops[i].epilogue_args.residual_cols = d.n;
      }
    }
  }

  bool c_untouched() const {
    for (const auto& m : c)
      for (float v : m.flat())
        if (v != kSentinel) return false;
    return true;
  }
};

TEST(FaultInjection, EveryCorruptionClassRejectedBeforeMemoryAccess) {
  std::vector<int> applied(all_plan_faults().size(), 0);
  for (const auto& pc : plan_cases()) {
    for (PlanFault fault : all_plan_faults()) {
      for (const auto& fp : inject_plan_fault(pc.plan, fault)) {
        ++applied[st(static_cast<int>(fault))];
        SCOPED_TRACE(pc.name + " / " + to_string(fault) + ": " + fp.note);
        EXPECT_THROW(validate_plan(fp.plan, pc.dims), CheckError);
        Workspace ws(pc.dims, 11, kSentinel, pc.epilogues);
        EXPECT_THROW(run_batched_plan(fp.plan, ws.ops, 1.0f, 0.0f),
                     CheckError);
        EXPECT_TRUE(ws.c_untouched())
            << "executor wrote to C despite the corrupt plan";
      }
    }
  }
  // Every corruption class must have fired at least once across fixtures.
  for (std::size_t f = 0; f < applied.size(); ++f)
    EXPECT_GT(applied[f], 0)
        << "fault class never applied: " << to_string(all_plan_faults()[f]);
}

TEST(FaultInjection, SaveLoadPipelineRejectsCorruptPlans) {
  // A corrupted plan that round-trips through the text format must be
  // stopped by the hardened loader or by validation — never executed.
  for (const auto& pc : plan_cases()) {
    for (PlanFault fault : all_plan_faults()) {
      for (const auto& fp : inject_plan_fault(pc.plan, fault)) {
        SCOPED_TRACE(pc.name + " / " + to_string(fault) + ": " + fp.note);
        std::stringstream ss;
        save_plan(ss, fp.plan);
        bool rejected = false;
        try {
          const BatchPlan loaded = load_plan(ss);
          validate_plan(loaded, pc.dims);
        } catch (const CheckError&) {
          rejected = true;
        }
        EXPECT_TRUE(rejected);
      }
    }
  }
}

TEST(FaultInjection, TryExecuteFallsBackBitExactly) {
  const PlanCase& pc = plan_cases().front();
  for (PlanFault fault : all_plan_faults()) {
    const auto variants = inject_plan_fault(pc.plan, fault);
    if (variants.empty()) continue;
    const FaultedPlan& fp = variants.front();
    SCOPED_TRACE(std::string(to_string(fault)) + ": " + fp.note);

    Workspace ws(pc.dims, 23);
    const ExecutionReport report =
        try_execute_plan(fp.plan, ws.ops, 1.25f, 0.5f);
    EXPECT_TRUE(report.fell_back);
    EXPECT_FALSE(report.reason.empty());

    // The fallback must match the host reference oracle bit for bit.
    Workspace ref(pc.dims, 23);
    for (std::size_t i = 0; i < pc.dims.size(); ++i) {
      gemm_naive(ref.a[i], ref.b[i], ref.c[i], 1.25f, 0.5f);
      EXPECT_EQ(max_abs_diff(ws.c[i], ref.c[i]), 0.0f) << "gemm " << i;
    }
  }
}

TEST(FaultInjection, TryExecuteHappyPathBitIdenticalToExecutePlan) {
  for (const auto& pc : plan_cases()) {
    SCOPED_TRACE(pc.name);
    Workspace via_try(pc.dims, 31, kSentinel, pc.epilogues);
    Workspace via_plain(pc.dims, 31, kSentinel, pc.epilogues);
    const ExecutionReport report =
        try_execute_plan(pc.plan, via_try.ops, 2.0f, -1.0f);
    EXPECT_FALSE(report.fell_back);
    EXPECT_TRUE(report.reason.empty());
    execute_plan(pc.plan, via_plain.ops, 2.0f, -1.0f);
    for (std::size_t i = 0; i < pc.dims.size(); ++i)
      EXPECT_TRUE(via_try.c[i] == via_plain.c[i]) << "gemm " << i;
  }
}

TEST(FaultInjection, FallbackHonorsTranspose) {
  const std::vector<GemmDims> dims = {{48, 40, 32}};
  PlannerConfig config;
  const BatchedGemmPlanner planner(config);
  const BatchPlan plan = planner.plan(dims).plan;
  const auto variants =
      inject_plan_fault(plan, PlanFault::kOffsetsBackMismatch);
  ASSERT_FALSE(variants.empty());

  Rng rng(41);
  const Matrixf a = rand_mat(32, 48, rng);  // stores A^T (K x M)
  const Matrixf b = rand_mat(40, 32, rng);  // stores B^T (N x K)
  Matrixf c(48, 40, kSentinel);
  Matrixf c_ref = c;
  std::vector<GemmOperands> ops = {operands(a, b, c, Op::kT, Op::kT)};

  const ExecutionReport report =
      try_execute_plan(variants.front().plan, ops, 1.5f, 0.25f);
  EXPECT_TRUE(report.fell_back);
  gemm_naive_ops(Op::kT, Op::kT, a, b, c_ref, 1.5f, 0.25f);
  EXPECT_EQ(max_abs_diff(c, c_ref), 0.0f);
}

TEST(FaultInjection, FallbackHonorsFp16) {
  const std::vector<GemmDims> dims = {{48, 40, 32}};
  PlannerConfig config;
  const BatchedGemmPlanner planner(config);
  const BatchPlan plan = planner.plan(dims).plan;
  const auto variants = inject_plan_fault(plan, PlanFault::kGemmIdPastEnd);
  ASSERT_FALSE(variants.empty());

  Rng rng(43);
  const Matrixf a = rand_mat(48, 32, rng);
  const Matrixf b = rand_mat(32, 40, rng);
  Matrixf c(48, 40, kSentinel);
  Matrixf c_ref = c;
  std::vector<GemmOperands> ops = {operands(a, b, c)};
  ops[0].precision = Precision::kFp16;

  const ExecutionReport report =
      try_execute_plan(variants.front().plan, ops, 1.0f, 0.5f);
  EXPECT_TRUE(report.fell_back);
  gemm_naive_fp16(a, b, c_ref, 1.0f, 0.5f);
  EXPECT_EQ(max_abs_diff(c, c_ref), 0.0f);
}

TEST(FaultInjection, BrokenOperandsThrowThroughTryExecute) {
  // No trustworthy buffers -> no fallback: operand faults must throw.
  const PlanCase& pc = plan_cases().front();
  Workspace ws(pc.dims, 47);
  ws.ops[1].c = nullptr;
  EXPECT_THROW(try_execute_plan(pc.plan, ws.ops, 1.0f, 0.0f), CheckError);
  ws.ops[1].c = ws.c[1].data();
  ws.ops[2].dims.k = 0;
  EXPECT_THROW(try_execute_plan(pc.plan, ws.ops, 1.0f, 0.0f), CheckError);
}

TEST(FaultInjection, StaleDimsRejectedAgainstOperands) {
  // A healthy plan built for one batch must not execute against a batch
  // whose operands carry different dims (the stale-plan scenario).
  const PlanCase& pc = plan_cases().front();
  std::vector<GemmDims> reshaped = pc.dims;
  // Larger than the largest tile in both directions, so every strategy
  // needs more tiles than the stale plan supplies.
  reshaped[0] = {200, 150, 60};
  Workspace ws(reshaped, 53);
  EXPECT_THROW(run_batched_plan(pc.plan, ws.ops, 1.0f, 0.0f), CheckError);
  EXPECT_TRUE(ws.c_untouched());
}

TEST(FaultInjection, EpilogueOperandFaultsRejectedBeforeMemoryAccess) {
  // Healthy epilogue-carrying plan, corrupted *operands*: every fault in
  // the chain's argument block (missing buffer, wrong extent, out-of-range
  // or non-bijective permutation, spec disagreement, illegal beta) must
  // throw before any element of C is written.
  const std::vector<GemmDims> dims = {{24, 40, 32}, {48, 16, 64}};
  const int bias_relu =
      epilogue_push(epilogue_push(0, EpilogueOp::kBias), EpilogueOp::kRelu);
  const int row_perm = epilogue_push(0, EpilogueOp::kRowPerm);
  const std::vector<int> specs = {bias_relu, row_perm};
  PlannerConfig config;
  config.policy = BatchingPolicy::kThresholdOnly;
  const BatchedGemmPlanner planner(config);
  const BatchPlan plan = planner.plan(dims, specs).plan;
  validate_plan(plan, dims);

  // Reversal permutation for GEMM 1's rows, plus a mutable copy the faults
  // below can scribble on.
  std::vector<int> perm(st(dims[1].m));
  for (std::size_t i = 0; i < perm.size(); ++i)
    perm[i] = static_cast<int>(perm.size() - 1 - i);

  auto fresh = [&](std::vector<int>& p) {
    Workspace ws(dims, 59, kSentinel, specs);
    ws.ops[1].epilogue_args.row_perm = p.data();
    ws.ops[1].epilogue_args.row_perm_len = static_cast<int>(p.size());
    return ws;
  };
  {  // Baseline sanity: the healthy workspace executes.
    Workspace ws = fresh(perm);
    run_batched_plan(plan, ws.ops, 1.0f, 0.0f);
    EXPECT_FALSE(ws.c_untouched());
  }
  {  // Bias buffer missing.
    Workspace ws = fresh(perm);
    ws.ops[0].epilogue_args.bias = nullptr;
    EXPECT_THROW(run_batched_plan(plan, ws.ops, 1.0f, 0.0f), CheckError);
    EXPECT_TRUE(ws.c_untouched());
  }
  {  // Bias length disagrees with M.
    Workspace ws = fresh(perm);
    ws.ops[0].epilogue_args.bias_len = dims[0].m - 1;
    EXPECT_THROW(run_batched_plan(plan, ws.ops, 1.0f, 0.0f), CheckError);
    EXPECT_TRUE(ws.c_untouched());
  }
  {  // Permutation entry out of range.
    std::vector<int> bad = perm;
    bad[0] = dims[1].m;  // one past the row extent
    Workspace ws = fresh(bad);
    EXPECT_THROW(run_batched_plan(plan, ws.ops, 1.0f, 0.0f), CheckError);
    EXPECT_TRUE(ws.c_untouched());
    bad[0] = -1;
    Workspace ws2 = fresh(bad);
    EXPECT_THROW(run_batched_plan(plan, ws2.ops, 1.0f, 0.0f), CheckError);
    EXPECT_TRUE(ws2.c_untouched());
  }
  {  // Permutation not bijective (duplicate destination).
    std::vector<int> bad = perm;
    bad[0] = bad[1];
    Workspace ws = fresh(bad);
    EXPECT_THROW(run_batched_plan(plan, ws.ops, 1.0f, 0.0f), CheckError);
    EXPECT_TRUE(ws.c_untouched());
  }
  {  // Permutation length disagrees with M.
    Workspace ws = fresh(perm);
    ws.ops[1].epilogue_args.row_perm_len = dims[1].m - 1;
    EXPECT_THROW(run_batched_plan(plan, ws.ops, 1.0f, 0.0f), CheckError);
    EXPECT_TRUE(ws.c_untouched());
  }
  {  // Operand spec disagrees with the plan's aux array.
    Workspace ws = fresh(perm);
    ws.ops[0].epilogue = epilogue_push(0, EpilogueOp::kRelu);
    EXPECT_THROW(run_batched_plan(plan, ws.ops, 1.0f, 0.0f), CheckError);
    EXPECT_TRUE(ws.c_untouched());
  }
  {  // beta != 0 under a destination permutation.
    Workspace ws = fresh(perm);
    EXPECT_THROW(run_batched_plan(plan, ws.ops, 1.0f, 0.5f), CheckError);
    EXPECT_TRUE(ws.c_untouched());
  }
}

// ---------------------------------------------------------------------------
// Service-level chaos (DESIGN.md §10): the four injected failure classes the
// plan service must survive. Every class either serves a plan that executes
// bit-exactly against the naive host oracle, or throws the typed
// PlanServiceError — never a crash, a wedged service, or corrupt output.
// CI repeats this suite under ASan+UBSan.
// ---------------------------------------------------------------------------

using service::FailAction;
using service::PlanService;
using service::PlanServiceConfig;
using service::PlanServiceError;
using service::ScopedFailpoint;
using service::ServedPlan;
using service::ServeState;
using service::VirtualClock;

/// Executes a served plan and checks C bit-exact against gemm_naive over an
/// identically seeded workspace. Both sides start from the same sentinel C,
/// so nonzero beta is exercised too.
void expect_served_plan_bit_exact(const ServedPlan& served,
                                  const std::vector<GemmDims>& dims,
                                  std::uint64_t seed) {
  ASSERT_TRUE(served.summary != nullptr);
  validate_plan(served.summary->plan, dims);
  Workspace ws(dims, seed);
  run_batched_plan(served.summary->plan, ws.ops, 1.25f, 0.5f);
  Workspace ref(dims, seed);
  for (std::size_t i = 0; i < dims.size(); ++i) {
    gemm_naive(ref.a[i], ref.b[i], ref.c[i], 1.25f, 0.5f);
    EXPECT_EQ(max_abs_diff(ws.c[i], ref.c[i]), 0.0f) << "gemm " << i;
  }
}

// Chaos class 1: the planner stalls past the deadline. The service must
// serve the fallback immediately, and the (late) full plan must upgrade the
// entry — both plans executing bit-exactly.
TEST(ServiceChaos, SlowPlannerPastDeadline) {
  if (!service::failpoints_compiled_in())
    GTEST_SKIP() << "built with -DCTB_FAILPOINTS=OFF";
  VirtualClock clock;
  PlanServiceConfig cfg;
  cfg.deadline_us = 300;
  cfg.clock = &clock;
  PlanService svc(cfg);
  ScopedFailpoint slow("service.planner.slow",
                       {FailAction::kDelay, 50'000, -1});
  const std::vector<GemmDims> dims = {{40, 24, 96}, {64, 64, 64}};

  const ServedPlan degraded = svc.get(dims);
  EXPECT_EQ(degraded.state, ServeState::kDegraded);
  expect_served_plan_bit_exact(degraded, dims, 61);

  svc.drain();
  EXPECT_EQ(svc.stats().upgraded, 1);
  const ServedPlan upgraded = svc.get(dims);
  EXPECT_EQ(upgraded.state, ServeState::kHit);
  expect_served_plan_bit_exact(upgraded, dims, 61);
}

// Chaos class 2: the planner throws mid-flight. Transient -> retried to a
// full plan; persistent -> degraded serving, still bit-exact.
TEST(ServiceChaos, PlannerThrowingMidFlight) {
  if (!service::failpoints_compiled_in())
    GTEST_SKIP() << "built with -DCTB_FAILPOINTS=OFF";
  const std::vector<GemmDims> dims = {{16, 32, 48}, {100, 50, 60}};
  {
    PlanServiceConfig cfg;
    cfg.deadline_us = 0;
    PlanService svc(cfg);
    ScopedFailpoint transient("service.planner.throw",
                              {FailAction::kThrow, 0, 1});
    const ServedPlan served = svc.get(dims);
    EXPECT_EQ(served.state, ServeState::kPlanned);
    EXPECT_EQ(svc.stats().retried, 1);
    expect_served_plan_bit_exact(served, dims, 67);
  }
  {
    PlanServiceConfig cfg;
    cfg.deadline_us = 0;
    PlanService svc(cfg);
    ScopedFailpoint persistent("service.planner.throw",
                               {FailAction::kThrow, 0, -1});
    const ServedPlan served = svc.get(dims);
    EXPECT_EQ(served.state, ServeState::kDegraded);
    expect_served_plan_bit_exact(served, dims, 71);
  }
}

// Chaos class 3: allocation failure while computing the fallback, with the
// full planner down too. The only correct outcome is the typed error — and
// the service must serve normally once the faults lift (no wedged state).
TEST(ServiceChaos, AllocationFailureDuringFallback) {
  if (!service::failpoints_compiled_in())
    GTEST_SKIP() << "built with -DCTB_FAILPOINTS=OFF";
  PlanServiceConfig cfg;
  cfg.deadline_us = 0;
  cfg.max_retries = 0;
  PlanService svc(cfg);
  const std::vector<GemmDims> dims = {{64, 64, 32}, {40, 24, 96}};
  {
    ScopedFailpoint down("service.planner.throw",
                         {FailAction::kThrow, 0, -1});
    ScopedFailpoint oom("service.fallback.alloc",
                        {FailAction::kBadAlloc, 0, -1});
    try {
      (void)svc.get(dims);
      FAIL() << "expected PlanServiceError";
    } catch (const PlanServiceError& e) {
      EXPECT_EQ(e.kind(), PlanServiceError::Kind::kFallbackFailed);
    }
    EXPECT_EQ(svc.size(), 0u);  // nothing half-cached
  }
  // Faults lifted: the same batch now plans normally on the first try.
  const ServedPlan served = svc.get(dims);
  EXPECT_EQ(served.state, ServeState::kPlanned);
  expect_served_plan_bit_exact(served, dims, 73);
}

// Chaos class 4: an injected PlannerFn emits structurally corrupt plans.
// Validation inside the service must reject every one (the corrupt plan is
// never served), degrade, quarantine after repeats, and recover after
// release. Runs even when failpoints are compiled out — the injection is a
// config-level PlannerFn, not a failpoint.
TEST(ServiceChaos, CorruptPlanFromInjectedPlannerFn) {
  PlanServiceConfig cfg;
  cfg.deadline_us = 0;
  cfg.max_retries = 0;
  cfg.quarantine_threshold = 2;
  auto corrupt_calls = std::make_shared<std::atomic<int>>(2);
  const BatchedGemmPlanner planner(cfg.planner);
  cfg.planner_fn = [&planner,
                    corrupt_calls](std::span<const GemmDims> d) {
    PlanSummary summary = planner.plan(d);
    if (corrupt_calls->fetch_sub(1) > 0 &&
        !summary.plan.gemm_of_tile.empty())
      summary.plan.gemm_of_tile.pop_back();
    return summary;
  };
  PlanService svc(cfg);
  const std::vector<GemmDims> dims = {{16, 32, 48}, {64, 64, 64},
                                      {40, 24, 96}};

  // Corrupt plan rejected -> degraded fallback, which executes bit-exactly.
  const ServedPlan degraded = svc.get(dims);
  EXPECT_EQ(degraded.state, ServeState::kDegraded);
  expect_served_plan_bit_exact(degraded, dims, 79);

  // Second corrupt episode crosses the quarantine threshold.
  EXPECT_EQ(svc.get(dims).state, ServeState::kDegraded);
  EXPECT_TRUE(svc.is_quarantined(dims));
  EXPECT_EQ(svc.get(dims).state, ServeState::kQuarantined);

  // Planner healed + quarantine lifted -> the entry upgrades and the full
  // plan is bit-exact too.
  EXPECT_EQ(svc.release_quarantined(), 1u);
  const ServedPlan upgraded = svc.get(dims);
  EXPECT_EQ(upgraded.state, ServeState::kUpgraded);
  expect_served_plan_bit_exact(upgraded, dims, 83);
}

}  // namespace
}  // namespace ctb
