#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "util/assert.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace ctb {
namespace {

// ---------------------------------------------------------------- assert --

TEST(Assert, CheckPassesOnTrue) { EXPECT_NO_THROW(CTB_CHECK(1 + 1 == 2)); }

TEST(Assert, CheckThrowsOnFalse) {
  EXPECT_THROW(CTB_CHECK(1 + 1 == 3), CheckError);
}

TEST(Assert, CheckMsgIncludesMessage) {
  try {
    CTB_CHECK_MSG(false, "the answer is " << 42);
    FAIL() << "should have thrown";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("the answer is 42"),
              std::string::npos);
  }
}

// ------------------------------------------------------------------- rng --

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next() == b.next() ? 1 : 0;
  EXPECT_LT(same, 4);
}

TEST(Rng, UniformIntInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(-5, 17);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 17);
  }
}

TEST(Rng, UniformIntHitsAllValuesOfSmallRange) {
  Rng rng(3);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 200; ++i) seen.insert(rng.uniform_int(0, 4));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, UniformIntDegenerateRange) {
  Rng rng(9);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(13, 13), 13);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, LogUniformRespectsBounds) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.log_uniform_int(16, 2048);
    EXPECT_GE(v, 16);
    EXPECT_LE(v, 2048);
  }
}

TEST(Rng, LogUniformFavorsSmallMagnitudes) {
  Rng rng(17);
  int below = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i)
    below += rng.log_uniform_int(1, 1024) <= 32 ? 1 : 0;
  // log-uniform: P(v <= 32) = log(33)/log(1025) ~ 0.5; uniform would be 3%.
  EXPECT_GT(below, kN / 3);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(21);
  Rng b = a.split();
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next() == b.next() ? 1 : 0;
  EXPECT_LT(same, 4);
}

TEST(Rng, ShuffleIsAPermutation) {
  Rng rng(23);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(29);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

// ----------------------------------------------------------------- stats --

TEST(Stats, MeanAndGeomean) {
  const std::vector<double> xs{1.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 7.0 / 3.0);
  EXPECT_NEAR(geomean(xs), 2.0, 1e-12);
}

TEST(Stats, GeomeanRejectsNonPositive) {
  const std::vector<double> xs{1.0, 0.0};
  EXPECT_THROW(geomean(xs), CheckError);
}

TEST(Stats, StddevOfConstantIsZero) {
  const std::vector<double> xs{3.0, 3.0, 3.0};
  EXPECT_DOUBLE_EQ(stddev(xs), 0.0);
}

TEST(Stats, StddevKnownValue) {
  const std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_NEAR(stddev(xs), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(Stats, PercentileEndpointsAndMedian) {
  const std::vector<double> xs{5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 3.0);
}

TEST(Stats, PercentileInterpolates) {
  const std::vector<double> xs{0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 25.0), 2.5);
}

TEST(Stats, SummarizeCountsAndBounds) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  const Summary s = summarize(xs);
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_FALSE(to_string(s).empty());
}

TEST(Stats, EmptySummaryIsZero) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

// ----------------------------------------------------------------- table --

TEST(TextTable, AlignsColumns) {
  TextTable t;
  t.set_header({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer-name", "2.5"});
  const std::string out = t.to_string();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("longer-name"), std::string::npos);
  // Header separator present.
  EXPECT_NE(out.find("---"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(TextTable, FmtFormatsNumbers) {
  EXPECT_EQ(TextTable::fmt(1.23456, 2), "1.23");
  EXPECT_EQ(TextTable::fmt(7), "7");
}

TEST(TextTable, HandlesRaggedRows) {
  TextTable t;
  t.set_header({"a", "b", "c"});
  t.add_row({"1"});
  EXPECT_NO_THROW(t.to_string());
}

TEST(TextTable, ClearResets) {
  TextTable t;
  t.add_row({"1"});
  t.clear();
  EXPECT_EQ(t.row_count(), 0u);
}

TEST(AsciiBar, ScalesAndCaps) {
  EXPECT_EQ(ascii_bar(1.0), "##########");
  EXPECT_EQ(ascii_bar(0.5), "#####");
  EXPECT_EQ(ascii_bar(0.0), "");
  EXPECT_EQ(ascii_bar(-1.0), "");
  const std::string capped = ascii_bar(100.0, 10, 20);
  EXPECT_EQ(capped.size(), 21u);  // 20 '#' plus the '+' overflow marker
  EXPECT_EQ(capped.back(), '+');
}

// ------------------------------------------------------------------- cli --

TEST(Cli, ParsesSpaceAndEqualsForms) {
  CliFlags flags;
  flags.define("batch", "4", "batch size");
  flags.define("arch", "v100", "gpu");
  const char* argv[] = {"prog", "--batch", "16", "--arch=p100"};
  flags.parse(4, argv);
  EXPECT_EQ(flags.get_int("batch"), 16);
  EXPECT_EQ(flags.get("arch"), "p100");
}

TEST(Cli, DefaultsApplyWhenUnset) {
  CliFlags flags;
  flags.define("k", "128", "");
  const char* argv[] = {"prog"};
  flags.parse(1, argv);
  EXPECT_EQ(flags.get_int("k"), 128);
}

TEST(Cli, UnknownFlagThrows) {
  CliFlags flags;
  const char* argv[] = {"prog", "--nope", "1"};
  EXPECT_THROW(flags.parse(3, argv), CheckError);
}

TEST(Cli, BareBooleanFlag) {
  CliFlags flags;
  flags.define("verbose", "false", "");
  const char* argv[] = {"prog", "--verbose"};
  flags.parse(2, argv);
  EXPECT_TRUE(flags.get_bool("verbose"));
}

TEST(Cli, BadIntValueThrows) {
  CliFlags flags;
  flags.define("n", "1", "");
  const char* argv[] = {"prog", "--n", "abc"};
  flags.parse(3, argv);
  EXPECT_THROW(flags.get_int("n"), std::exception);
}

TEST(Cli, PositionalArgumentsReturned) {
  CliFlags flags;
  flags.define("x", "0", "");
  const char* argv[] = {"prog", "pos1", "--x", "3", "pos2"};
  const auto pos = flags.parse(5, argv);
  ASSERT_EQ(pos.size(), 2u);
  EXPECT_EQ(pos[0], "pos1");
  EXPECT_EQ(pos[1], "pos2");
}

TEST(Cli, UsageListsFlags) {
  CliFlags flags;
  flags.define("alpha", "1.0", "scale factor");
  const std::string u = flags.usage("prog");
  EXPECT_NE(u.find("--alpha"), std::string::npos);
  EXPECT_NE(u.find("scale factor"), std::string::npos);
}

}  // namespace
}  // namespace ctb
