#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "kernels/functional.hpp"
#include "linalg/gemm_ref.hpp"

namespace ctb {
namespace {

struct Case {
  int m, n, k;
  float alpha, beta;
};

Matrixf rand_mat(int r, int c, Rng& rng) {
  Matrixf m(static_cast<std::size_t>(r), static_cast<std::size_t>(c));
  fill_random(m, rng);
  return m;
}

void expect_matches_reference(const TilingStrategy& s, const Case& tc,
                              std::uint64_t seed) {
  Rng rng(seed);
  const Matrixf a = rand_mat(tc.m, tc.k, rng);
  const Matrixf b = rand_mat(tc.k, tc.n, rng);
  Matrixf c_init = rand_mat(tc.m, tc.n, rng);

  Matrixf c_ref = c_init;
  gemm_naive(a, b, c_ref, tc.alpha, tc.beta);

  Matrixf c_dev = c_init;
  const GemmOperands g = operands(a, b, c_dev);
  run_single_gemm(s, g, tc.alpha, tc.beta);
  EXPECT_TRUE(allclose(c_dev, c_ref))
      << s.name() << " m=" << tc.m << " n=" << tc.n << " k=" << tc.k
      << " max_diff=" << max_abs_diff(c_dev, c_ref);
}

// Every Table-2 strategy computes correct GEMMs, including edge tiles and
// K values that are not multiples of BK.
class FunctionalAllStrategies : public ::testing::TestWithParam<int> {};

TEST_P(FunctionalAllStrategies, ExactTileSizes) {
  const TilingStrategy& s = batched_strategy_by_id(GetParam());
  expect_matches_reference(s, Case{s.by, s.bx, 16, 1.0f, 0.0f}, 100);
}

TEST_P(FunctionalAllStrategies, MultipleTiles) {
  const TilingStrategy& s = batched_strategy_by_id(GetParam());
  expect_matches_reference(s, Case{2 * s.by, 3 * s.bx, 24, 1.0f, 0.0f}, 200);
}

TEST_P(FunctionalAllStrategies, RaggedEdges) {
  const TilingStrategy& s = batched_strategy_by_id(GetParam());
  expect_matches_reference(s, Case{s.by + 3, s.bx + 5, 19, 1.0f, 0.0f}, 300);
}

TEST_P(FunctionalAllStrategies, SmallerThanOneTile) {
  const TilingStrategy& s = batched_strategy_by_id(GetParam());
  expect_matches_reference(s, Case{5, 7, 11, 1.0f, 0.0f}, 400);
}

TEST_P(FunctionalAllStrategies, AlphaBeta) {
  const TilingStrategy& s = batched_strategy_by_id(GetParam());
  expect_matches_reference(s, Case{s.by, s.bx, 32, 2.5f, -0.75f}, 500);
}

INSTANTIATE_TEST_SUITE_P(Ids, FunctionalAllStrategies,
                         ::testing::Range(0, 12));

// Table-1 strategies drive the baselines; they must also be correct.
TEST(FunctionalTable1, AllStrategiesCorrect) {
  for (const auto& s : single_gemm_strategies()) {
    expect_matches_reference(s, Case{s.by + 7, s.bx + 9, 21, 1.0f, 1.0f},
                             600);
  }
}

TEST(Functional, KSmallerThanBk) {
  const auto& s = batched_strategy(TileShape::kSmall, ThreadVariant::k256);
  expect_matches_reference(s, Case{16, 16, 3, 1.0f, 0.0f}, 700);
}

TEST(Functional, KOne) {
  const auto& s = batched_strategy(TileShape::kMedium, ThreadVariant::k128);
  expect_matches_reference(s, Case{32, 32, 1, 1.0f, 0.0f}, 800);
}

TEST(Functional, BetaZeroOverwritesNaN) {
  const auto& s = batched_strategy(TileShape::kSmall, ThreadVariant::k256);
  Rng rng(900);
  const Matrixf a = rand_mat(16, 8, rng);
  const Matrixf b = rand_mat(8, 16, rng);
  Matrixf c(16, 16);
  c.fill(std::numeric_limits<float>::quiet_NaN());
  const GemmOperands g = operands(a, b, c);
  run_single_gemm(s, g, 1.0f, 0.0f);
  for (float v : c.flat()) EXPECT_FALSE(std::isnan(v));
}

TEST(Functional, ExecuteTileOutsideGemmThrows) {
  const auto& s = batched_strategy(TileShape::kSmall, ThreadVariant::k256);
  Rng rng(1000);
  const Matrixf a = rand_mat(16, 8, rng);
  const Matrixf b = rand_mat(8, 16, rng);
  Matrixf c(16, 16);
  const GemmOperands g = operands(a, b, c);
  EXPECT_THROW(execute_tile(s, g, 1, 0, 1.0f, 0.0f), CheckError);
}

TEST(Functional, OperandsValidateShapes) {
  Matrixf a(4, 8), b(7, 4), c(4, 4);
  EXPECT_THROW(operands(a, b, c), CheckError);
}

// ----------------------------------------------------------------- vbatch --

TEST(Vbatch, MixedSizesMatchReference) {
  const auto& s = single_gemm_strategy(TileShape::kSmall);
  Rng rng(1100);
  const std::vector<GemmDims> dims = {
      {16, 32, 128}, {64, 48, 64}, {64, 64, 128}};
  std::vector<Matrixf> as, bs, cs, refs;
  for (const auto& d : dims) {
    as.push_back(rand_mat(d.m, d.k, rng));
    bs.push_back(rand_mat(d.k, d.n, rng));
    cs.push_back(rand_mat(d.m, d.n, rng));
    refs.push_back(cs.back());
  }
  std::vector<GemmOperands> ops;
  for (std::size_t i = 0; i < dims.size(); ++i)
    ops.push_back(operands(as[i], bs[i], cs[i]));
  run_vbatch(s, ops, 1.25f, 0.5f);
  for (std::size_t i = 0; i < dims.size(); ++i) {
    gemm_naive(as[i], bs[i], refs[i], 1.25f, 0.5f);
    EXPECT_TRUE(allclose(cs[i], refs[i])) << "gemm " << i;
  }
}

TEST(Vbatch, UniformLargeTileOnSmallGemms) {
  // The Fig. 3b pathology: large tiles on small GEMMs still compute
  // correctly (idle threads just do nothing).
  const auto& s = single_gemm_strategy(TileShape::kLarge);
  Rng rng(1200);
  const std::vector<GemmDims> dims = {{16, 16, 32}, {128, 100, 16}};
  std::vector<Matrixf> as, bs, cs, refs;
  for (const auto& d : dims) {
    as.push_back(rand_mat(d.m, d.k, rng));
    bs.push_back(rand_mat(d.k, d.n, rng));
    cs.push_back(rand_mat(d.m, d.n, rng));
    refs.push_back(cs.back());
  }
  std::vector<GemmOperands> ops;
  for (std::size_t i = 0; i < dims.size(); ++i)
    ops.push_back(operands(as[i], bs[i], cs[i]));
  run_vbatch(s, ops, 1.0f, 0.0f);
  for (std::size_t i = 0; i < dims.size(); ++i) {
    gemm_naive(as[i], bs[i], refs[i], 1.0f, 0.0f);
    EXPECT_TRUE(allclose(cs[i], refs[i])) << "gemm " << i;
  }
}

// ------------------------------------------------------------------ plan --

TEST(RunBatchedPlan, ForeignGemmIndexThrows) {
  const auto& s = batched_strategy(TileShape::kSmall, ThreadVariant::k256);
  BatchPlan plan;
  plan.tile_offsets = {0, 1};
  plan.gemm_of_tile = {2};  // batch has one GEMM only
  plan.strategy_of_tile = {s.id};
  plan.y_coord = {0};
  plan.x_coord = {0};
  Rng rng(1300);
  Matrixf a = rand_mat(16, 8, rng), b = rand_mat(8, 16, rng), c(16, 16);
  std::vector<GemmOperands> ops = {operands(a, b, c)};
  EXPECT_THROW(run_batched_plan(plan, ops, 1.0f, 0.0f), CheckError);
}

}  // namespace
}  // namespace ctb
