#include <gtest/gtest.h>

#include "dnn/googlenet.hpp"
#include "dnn/inference.hpp"

namespace ctb {
namespace {

TEST(GoogleNet, Has57Convolutions) {
  EXPECT_EQ(googlenet_all_convs().size(), 57u);
  EXPECT_EQ(googlenet_stem_convs().size(), 3u);
  EXPECT_EQ(googlenet_inception_modules().size(), 9u);
}

TEST(GoogleNet, PaperGemmExample) {
  // inception3a/5x5_reduce must lower to the paper's 16x784x192 GEMM.
  const auto& m3a = googlenet_inception_modules().front();
  EXPECT_EQ(m3a.name, "inception3a");
  const GemmDims d = m3a.reduce5.gemm_dims(1);
  EXPECT_EQ(d.m, 16);
  EXPECT_EQ(d.n, 784);
  EXPECT_EQ(d.k, 192);
}

TEST(GoogleNet, ChannelsChainAcrossModules) {
  const auto& mods = googlenet_inception_modules();
  // 3a out = 64+128+32+32 = 256 = 3b in.
  EXPECT_EQ(mods[0].out_c(), 256);
  EXPECT_EQ(mods[1].in_c, 256);
  // 3b out = 128+192+96+64 = 480 = 4a in.
  EXPECT_EQ(mods[1].out_c(), 480);
  EXPECT_EQ(mods[2].in_c, 480);
  // 4e out = 256+320+128+128 = 832 = 5a in.
  EXPECT_EQ(mods[6].out_c(), 832);
  EXPECT_EQ(mods[7].in_c, 832);
  // 5b out = 384+384+128+128 = 1024 (final feature count).
  EXPECT_EQ(mods[8].out_c(), 1024);
}

TEST(GoogleNet, ReduceFeedsConvChannels) {
  for (const auto& m : googlenet_inception_modules()) {
    EXPECT_EQ(m.conv3x3.in_c, m.reduce3.out_c) << m.name;
    EXPECT_EQ(m.conv5x5.in_c, m.reduce5.out_c) << m.name;
    EXPECT_EQ(m.conv1x1.in_c, m.in_c) << m.name;
    EXPECT_EQ(m.pool_proj.in_c, m.in_c) << m.name;
  }
}

TEST(GoogleNet, SpatialSizesFollowNetwork) {
  const auto& mods = googlenet_inception_modules();
  EXPECT_EQ(mods[0].hw, 28);  // 3a/3b
  EXPECT_EQ(mods[2].hw, 14);  // 4a..4e
  EXPECT_EQ(mods[7].hw, 7);   // 5a/5b
}

TEST(GoogleNet, AllGemmDimsSmall) {
  // The paper's premise: all GoogleNet GEMMs have M, K < 1000, half the
  // M values under 100.
  int m_under_100 = 0;
  int k_under_1000 = 0;
  const auto convs = googlenet_all_convs();
  for (const auto& c : convs) {
    const GemmDims d = c.gemm_dims(1);
    EXPECT_LT(d.m, 1000) << c.name;
    m_under_100 += d.m < 100 ? 1 : 0;
    k_under_1000 += d.k < 1000 ? 1 : 0;
  }
  // "In general, all of these matrices' M, N and K are less than 1000, and
  // even half of these matrices' M are less than 100" -- the deep 3x3
  // convolutions exceed 1000 in K, so assert the bulk, not all.
  EXPECT_GE(k_under_1000, static_cast<int>(convs.size()) * 3 / 4);
  EXPECT_GE(m_under_100, static_cast<int>(convs.size()) / 3);
}

TEST(GoogleNet, StageGemmCounts) {
  const auto& m = googlenet_inception_modules().front();
  EXPECT_EQ(m.stage_gemms(1).size(), 4u);  // the paper's "four GEMMs"
  EXPECT_EQ(m.stage_gemms(2).size(), 2u);
  EXPECT_THROW(m.stage_gemms(3), CheckError);
}

// ----------------------------------------------------- inference (timing) --

TEST(GoogleNetTiming, OursFasterThanMagmaOnMostLayers) {
  const GpuArch& arch = gpu_arch(GpuModel::kV100);
  const auto times = time_googlenet_inceptions(arch, 1, PlannerConfig{});
  ASSERT_EQ(times.size(), 9u);
  int wins = 0;
  for (const auto& t : times) wins += t.ours_us < t.magma_us ? 1 : 0;
  EXPECT_GE(wins, 8);
}

TEST(GoogleNetTiming, OrderingMatchesPaper) {
  // default > stream > ours, as in the paper's 3.18 / 2.41 / 2.01 ms.
  const GpuArch& arch = gpu_arch(GpuModel::kV100);
  const GoogleNetTotals t = googlenet_forward_times(arch, 1, PlannerConfig{});
  EXPECT_GT(t.default_ms, t.stream_ms);
  EXPECT_GT(t.stream_ms, t.ours_ms);
}

TEST(GoogleNetTiming, SpeedupVsStreamInPaperBallpark) {
  // Paper: 2.41 / 2.01 = 1.20x over the stream baseline. Accept a broad
  // band (the substrate is a simulator).
  const GpuArch& arch = gpu_arch(GpuModel::kV100);
  const GoogleNetTotals t = googlenet_forward_times(arch, 1, PlannerConfig{});
  const double speedup = t.stream_ms / t.ours_ms;
  EXPECT_GT(speedup, 1.05);
  EXPECT_LT(speedup, 2.0);
}

TEST(GoogleNetTiming, LargerImageBatchCostsMore) {
  // N scales with the image batch, so every variant's time must grow.
  const GpuArch& arch = gpu_arch(GpuModel::kV100);
  const auto t1 = time_googlenet_inceptions(arch, 1, PlannerConfig{});
  const auto t4 = time_googlenet_inceptions(arch, 4, PlannerConfig{});
  for (std::size_t i = 0; i < t1.size(); ++i) {
    EXPECT_GT(t4[i].ours_us, t1[i].ours_us) << t1[i].name;
    EXPECT_GT(t4[i].magma_us, t1[i].magma_us) << t1[i].name;
  }
}

TEST(GoogleNetTiming, BatchingNarrowsTheGapAtLargerImageBatch) {
  // With more images (bigger N), every execution gets more TLP, so the
  // framework's relative advantage shrinks or holds (paper observation 3).
  const GpuArch& arch = gpu_arch(GpuModel::kV100);
  const auto t1 = time_googlenet_inceptions(arch, 1, PlannerConfig{});
  const auto t8 = time_googlenet_inceptions(arch, 8, PlannerConfig{});
  double mean1 = 0, mean8 = 0;
  for (std::size_t i = 0; i < t1.size(); ++i) {
    mean1 += t1[i].speedup_vs_magma();
    mean8 += t8[i].speedup_vs_magma();
  }
  EXPECT_LT(mean8, mean1 * 1.1);
}

// ------------------------------------------------ inference (functional) --

TEST(InceptionForward, BatchedMatchesReference) {
  // A scaled-down inception-like module keeps the test fast while covering
  // both stages, the pool branch, and the concat.
  InceptionModule m;
  m.name = "mini";
  m.in_c = 8;
  m.hw = 10;
  auto mk = [&](const char* name, int in_c, int out_c, int k) {
    ConvShape s;
    s.name = name;
    s.in_c = in_c;
    s.out_c = out_c;
    s.kernel = k;
    s.stride = 1;
    s.pad = k / 2;
    s.in_h = m.hw;
    s.in_w = m.hw;
    return s;
  };
  m.conv1x1 = mk("1x1", 8, 6, 1);
  m.reduce3 = mk("r3", 8, 4, 1);
  m.conv3x3 = mk("3x3", 4, 8, 3);
  m.reduce5 = mk("r5", 8, 3, 1);
  m.conv5x5 = mk("5x5", 3, 4, 5);
  m.pool_proj = mk("pp", 8, 5, 1);

  Rng rng(99);
  Tensor4 input(2, 8, 10, 10);
  fill_random(input, rng);
  const InceptionWeights w = random_inception_weights(m, rng);

  const Tensor4 ref = inception_forward_reference(m, input, w);
  const Tensor4 batched = inception_forward_batched(m, input, w,
                                                    PlannerConfig{});
  ASSERT_TRUE(ref.same_shape(batched));
  EXPECT_EQ(ref.c(), 6 + 8 + 4 + 5);
  EXPECT_LT(max_abs_diff(ref, batched), 1e-3f);
}

TEST(InceptionForward, RealInception3aShapes) {
  // Full-size 3a forward via the framework (batch 1) produces the right
  // output shape; values checked against the GEMM-path conv.
  const auto& m = googlenet_inception_modules().front();
  Rng rng(123);
  Tensor4 input(1, m.in_c, m.hw, m.hw);
  fill_random(input, rng);
  const InceptionWeights w = random_inception_weights(m, rng);
  const Tensor4 out = inception_forward_batched(m, input, w,
                                                PlannerConfig{});
  EXPECT_EQ(out.c(), m.out_c());
  EXPECT_EQ(out.h(), 28);
  EXPECT_EQ(out.w(), 28);
}

}  // namespace
}  // namespace ctb
