#include <gtest/gtest.h>

#include "core/batching_engine.hpp"
#include "core/tiling_engine.hpp"
#include "core/api.hpp"
#include "kernels/work_builder.hpp"

namespace ctb {
namespace {

const TilingStrategy& small256() {
  return batched_strategy(TileShape::kSmall, ThreadVariant::k256);
}
const TilingStrategy& large256() {
  return batched_strategy(TileShape::kLarge, ThreadVariant::k256);
}

TEST(MakeTileWork, FullTileAccounting) {
  const GemmDims d{64, 64, 80};
  const TileWork w = make_tile_work(large256(), d, 0, 0);
  EXPECT_EQ(w.iters, 10);  // ceil(80/8)
  EXPECT_EQ(w.fmas_per_thread_iter, 4 * 4 * 8);
  EXPECT_EQ(w.bytes_per_iter, (64 * 8 + 8 * 64) * 4);
  EXPECT_EQ(w.epilogue_bytes, 64 * 64 * 4);
  EXPECT_EQ(w.flops, 2LL * 64 * 64 * 80);
}

TEST(MakeTileWork, EdgeTileClampsTraffic) {
  const GemmDims d{80, 70, 64};  // large tiles: edge tile is 16 x 6
  const TileWork w = make_tile_work(large256(), d, 1, 1);
  EXPECT_EQ(w.bytes_per_iter, (16 * 8 + 8 * 6) * 4);
  EXPECT_EQ(w.epilogue_bytes, 16 * 6 * 4);
  EXPECT_EQ(w.flops, 2LL * 16 * 6 * 64);
}

TEST(MakeTileWork, KNotMultipleOfBkRoundsUp) {
  const GemmDims d{16, 16, 9};
  EXPECT_EQ(make_tile_work(small256(), d, 0, 0).iters, 2);
}

TEST(MakeTileWork, OutsideTileThrows) {
  const GemmDims d{16, 16, 8};
  EXPECT_THROW(make_tile_work(small256(), d, 1, 0), CheckError);
}

TEST(WorkSingleGemm, OneBlockPerTile) {
  const GemmDims d{128, 96, 64};
  const KernelWork k = work_single_gemm(d, large256());
  EXPECT_EQ(k.blocks.size(), 4u);  // 2 x 2
  for (const auto& b : k.blocks) {
    EXPECT_EQ(b.threads, 256);
    EXPECT_EQ(b.tiles.size(), 1u);
    EXPECT_EQ(b.smem_bytes, large256().smem_bytes());
  }
  // Epilogue adds 2 flops per C element on top of the useful 2*m*n*k.
  EXPECT_EQ(k.total_flops(), d.flops() + 2LL * 128 * 96);
}

TEST(WorkSingleGemm, TotalFlopsMatchProblem) {
  const GemmDims d{64, 64, 32};
  const KernelWork k = work_single_gemm(d, small256());
  // Useful flops (excluding epilogue) must equal 2*m*n*k exactly.
  std::int64_t useful = 0;
  for (const auto& b : k.blocks)
    for (const auto& t : b.tiles) useful += t.flops;
  EXPECT_EQ(useful, d.flops());
}

TEST(WorkVbatch, GridPaddedWithBubbles) {
  // GEMMs of 1x2 and 4x4 tiles under small: grid = 4x4x2 = 32 blocks,
  // 16 + (16-2) = 14 bubbles... GEMM0 16x32 -> 1x2 tiles -> 14 bubbles.
  const std::vector<GemmDims> dims = {{16, 32, 64}, {64, 64, 64}};
  const KernelWork k = work_vbatch(dims, single_gemm_strategy(
                                             TileShape::kSmall));
  EXPECT_EQ(k.blocks.size(), 32u);
  int bubbles = 0;
  for (const auto& b : k.blocks) bubbles += b.tiles.empty() ? 1 : 0;
  EXPECT_EQ(bubbles, 14);
}

TEST(WorkVbatch, UniformBlockFootprint) {
  const std::vector<GemmDims> dims = {{16, 16, 32}, {64, 64, 32}};
  const auto& s = single_gemm_strategy(TileShape::kLarge);
  const KernelWork k = work_vbatch(dims, s);
  for (const auto& b : k.blocks) {
    EXPECT_EQ(b.threads, s.threads);
    EXPECT_EQ(b.smem_bytes, s.smem_bytes());
  }
}

TEST(WorkVbatch, IdleThreadsOnSmallGemmUnderLargeTile) {
  // 16x16 GEMM under a large (64x64) tile: active threads is the small
  // fraction covering 16x16 with 8x8 sub-tiles = 2x2 = 4 of 64.
  const std::vector<GemmDims> dims = {{16, 16, 32}};
  const auto& s = single_gemm_strategy(TileShape::kLarge);
  const KernelWork k = work_vbatch(dims, s);
  ASSERT_EQ(k.blocks.size(), 1u);
  EXPECT_EQ(k.blocks[0].active_threads, 4);
  EXPECT_EQ(k.blocks[0].threads, 64);
}

TEST(WorkVbatch, NoBubblesForEqualSizes) {
  const std::vector<GemmDims> dims(8, GemmDims{64, 64, 32});
  const KernelWork k =
      work_vbatch(dims, single_gemm_strategy(TileShape::kMedium));
  for (const auto& b : k.blocks) EXPECT_FALSE(b.tiles.empty());
  EXPECT_EQ(k.blocks.size(), 8u * 4);  // 2x2 tiles each
}

TEST(WorkFromPlan, MatchesPlanStructure) {
  const std::vector<GemmDims> dims = {{32, 32, 64}, {64, 64, 128}};
  const TilingResult tiling = select_tiling(dims, TilingConfig{65536});
  const auto tiles = enumerate_tiles(dims, tiling.per_gemm);
  const BatchPlan plan = batch_binary(
      tiles, static_cast<int>(tiling.variant), BatchingConfig{256, 65536});
  const KernelWork k = work_from_plan(plan, dims);
  ASSERT_EQ(static_cast<int>(k.blocks.size()), plan.num_blocks());
  for (int b = 0; b < plan.num_blocks(); ++b) {
    const auto [begin, end] = plan.block_tiles(b);
    EXPECT_EQ(static_cast<int>(
                  k.blocks[static_cast<std::size_t>(b)].tiles.size()),
              end - begin);
    EXPECT_EQ(k.blocks[static_cast<std::size_t>(b)].threads,
              plan.block_threads);
    EXPECT_EQ(k.blocks[static_cast<std::size_t>(b)].smem_bytes,
              plan.smem_bytes);
  }
}

TEST(WorkFromPlan, UsefulFlopsConserved) {
  // Whatever the batching, the useful flops of the kernel equal the sum of
  // the batch's 2*m*n*k.
  const std::vector<GemmDims> dims = {
      {48, 48, 96}, {16, 128, 32}, {128, 64, 256}};
  const TilingResult tiling = select_tiling(dims, TilingConfig{65536});
  const auto tiles = enumerate_tiles(dims, tiling.per_gemm);
  std::int64_t expected = 0;
  for (const auto& d : dims) expected += d.flops();
  for (BatchingHeuristic h :
       {BatchingHeuristic::kNone, BatchingHeuristic::kThreshold,
        BatchingHeuristic::kBinary}) {
    const BatchPlan plan = batch_tiles(h, tiles,
                                       static_cast<int>(tiling.variant));
    const KernelWork k = work_from_plan(plan, dims);
    std::int64_t useful = 0;
    for (const auto& b : k.blocks)
      for (const auto& t : b.tiles) useful += t.flops;
    EXPECT_EQ(useful, expected) << to_string(h);
  }
}

TEST(WorkVbatch, KernelQualityFlagsPropagate) {
  const std::vector<GemmDims> dims = {{16, 16, 32}, {64, 64, 32}};
  const auto& s = batched_strategy(TileShape::kLarge, ThreadVariant::k256);
  const KernelWork magma_like =
      work_vbatch(dims, s, /*double_buffered=*/false, 0.8);
  for (const auto& b : magma_like.blocks) {
    EXPECT_FALSE(b.double_buffered);
    EXPECT_DOUBLE_EQ(b.code_efficiency, 0.8);
  }
  const KernelWork cublas_like =
      work_vbatch(dims, s, /*double_buffered=*/true);
  for (const auto& b : cublas_like.blocks) {
    EXPECT_TRUE(b.double_buffered);
    EXPECT_DOUBLE_EQ(b.code_efficiency, 1.0);
  }
}

TEST(WorkFromPlan, Fp16HalvesTotalBytes) {
  const std::vector<GemmDims> dims = {{64, 64, 64}, {32, 96, 128}};
  const BatchedGemmPlanner planner{PlannerConfig{}};
  const PlanSummary s = planner.plan(dims);
  const KernelWork w32 = work_from_plan(s.plan, dims, Precision::kFp32);
  const KernelWork w16 = work_from_plan(s.plan, dims, Precision::kFp16);
  EXPECT_EQ(w16.total_bytes() * 2, w32.total_bytes());
  EXPECT_EQ(w16.total_flops(), w32.total_flops());
  for (const auto& b : w16.blocks) EXPECT_TRUE(b.fp16);
  for (const auto& b : w32.blocks) EXPECT_FALSE(b.fp16);
}

TEST(WorkFromPlan, NoBubbleBlocks) {
  // Our plans never produce empty blocks, unlike vbatch.
  const std::vector<GemmDims> dims = {{16, 32, 64}, {64, 64, 64}};
  const TilingResult tiling = select_tiling(dims, TilingConfig{65536});
  const auto tiles = enumerate_tiles(dims, tiling.per_gemm);
  const BatchPlan plan =
      batch_none(tiles, static_cast<int>(tiling.variant));
  const KernelWork k = work_from_plan(plan, dims);
  for (const auto& b : k.blocks) EXPECT_FALSE(b.tiles.empty());
}

}  // namespace
}  // namespace ctb
