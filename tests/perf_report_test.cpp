// ctb::perfreport tests: timing statistics, canonical JSON round-trips,
// malformed-input rejection, stable workload ordering, the
// noise/timing/counter delta classification (a synthetic dispatch-mix
// regression must hard-fail), and the end-to-end acceptance property — two
// runs of the same workloads produce bit-identical deterministic counters,
// so a self-comparison never gates.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_common.hpp"
#include "telemetry/perf_report.hpp"
#include "telemetry/telemetry.hpp"

namespace ctb {
namespace {

using perfreport::CompareOptions;
using perfreport::CompareResult;
using perfreport::DeltaClass;
using perfreport::LatencyStats;
using perfreport::PerfReport;
using perfreport::TimingStats;
using perfreport::WorkloadResult;

WorkloadResult make_workload(const std::string& name, double median_us,
                             std::int64_t specialized, std::int64_t generic) {
  WorkloadResult w;
  w.name = name;
  w.flops = 1000000;
  w.repeats = 3;
  w.timing.median_us = median_us;
  w.timing.iqr_us = 1.5;
  w.timing.min_us = median_us * 0.9;
  w.timing.max_us = median_us * 1.4;
  w.counters.push_back({"exec.dispatch.generic", generic});
  w.counters.push_back({"exec.dispatch.specialized", specialized});
  w.counters.push_back({"exec.tiles", specialized + generic});
  w.histograms.push_back({"batching.tiles_per_block", 4, 16, 4, 8, 8});
  return w;
}

PerfReport make_report(std::vector<WorkloadResult> workloads) {
  PerfReport r;
  r.tag = "test";
  r.suite = "synthetic";
  r.repeats = 3;
  r.workloads = std::move(workloads);
  perfreport::sort_workloads(r);
  return r;
}

TEST(TimingStatsTest, MedianIqrNearestRank) {
  const TimingStats s =
      TimingStats::from_samples({5.0, 1.0, 9.0, 3.0, 7.0});
  EXPECT_DOUBLE_EQ(s.median_us, 5.0);
  // Nearest-rank quartiles of {1,3,5,7,9}: q25 = 2nd value, q75 = 4th.
  EXPECT_DOUBLE_EQ(s.iqr_us, 7.0 - 3.0);
  EXPECT_DOUBLE_EQ(s.min_us, 1.0);
  EXPECT_DOUBLE_EQ(s.max_us, 9.0);

  const TimingStats single = TimingStats::from_samples({4.0});
  EXPECT_DOUBLE_EQ(single.median_us, 4.0);
  EXPECT_DOUBLE_EQ(single.iqr_us, 0.0);

  const TimingStats empty = TimingStats::from_samples({});
  EXPECT_DOUBLE_EQ(empty.median_us, 0.0);
  EXPECT_DOUBLE_EQ(empty.min_us, 0.0);
}

TEST(PerfReportJson, RoundTripsByteIdentically) {
  const PerfReport report = make_report(
      {make_workload("beta", 120.25, 10, 2),
       make_workload("alpha \"quoted\"\n", 3.125, 0, 7)});
  std::ostringstream first;
  perfreport::write_perf_report_json(first, report);

  std::istringstream is(first.str());
  const PerfReport loaded = perfreport::load_perf_report(is);
  std::ostringstream second;
  perfreport::write_perf_report_json(second, loaded);
  EXPECT_EQ(first.str(), second.str());

  EXPECT_EQ(loaded.schema_version, perfreport::kSchemaVersion);
  EXPECT_EQ(loaded.tag, "test");
  EXPECT_EQ(loaded.suite, "synthetic");
  ASSERT_EQ(loaded.workloads.size(), 2u);
  EXPECT_EQ(loaded.workloads[0].name, "alpha \"quoted\"\n");
  EXPECT_EQ(loaded.workloads[1].counters[1].value, 10);
  EXPECT_EQ(loaded.workloads[1].histograms[0].p95, 8);
}

TEST(PerfReportJson, EmptyReportRoundTrips) {
  PerfReport report;
  report.tag = "empty";
  report.suite = "none";
  std::ostringstream os;
  perfreport::write_perf_report_json(os, report);
  std::istringstream is(os.str());
  const PerfReport loaded = perfreport::load_perf_report(is);
  EXPECT_TRUE(loaded.workloads.empty());
  EXPECT_EQ(loaded.tag, "empty");
}

TEST(PerfReportJson, RejectsMalformedInput) {
  const char* bad[] = {
      "",                               // empty
      "{",                              // truncated
      "[1,2,3]\n",                      // wrong top-level type
      "{\"schema_version\": 1}\n",      // missing fields
      "{\"schema_version\": 99, \"tag\": \"t\", \"suite\": \"s\","
      " \"repeats\": 1, \"telemetry_compiled_in\": true,"
      " \"workloads\": []}\n",          // unsupported version
      "{\"schema_version\": 1, \"tag\": 3, \"suite\": \"s\","
      " \"repeats\": 1, \"telemetry_compiled_in\": true,"
      " \"workloads\": []}\n",          // wrong field type
      "{\"schema_version\": 1, \"tag\": \"t\", \"suite\": \"s\","
      " \"repeats\": 1, \"telemetry_compiled_in\": true,"
      " \"workloads\": []} trailing\n",  // trailing garbage
  };
  for (const char* text : bad) {
    std::istringstream is(text);
    EXPECT_THROW(perfreport::load_perf_report(is), perfreport::PerfReportError)
        << text;
  }
}

TEST(PerfReportJson, WorkloadOrderIsCanonical) {
  // Same workloads, inserted in opposite orders, must serialize identically.
  const PerfReport forward = make_report(
      {make_workload("a", 1.0, 1, 0), make_workload("b", 2.0, 2, 0),
       make_workload("c", 3.0, 3, 0)});
  const PerfReport backward = make_report(
      {make_workload("c", 3.0, 3, 0), make_workload("b", 2.0, 2, 0),
       make_workload("a", 1.0, 1, 0)});
  std::ostringstream f, b;
  perfreport::write_perf_report_json(f, forward);
  perfreport::write_perf_report_json(b, backward);
  EXPECT_EQ(f.str(), b.str());
  ASSERT_EQ(forward.workloads.size(), 3u);
  EXPECT_EQ(forward.workloads[0].name, "a");
  EXPECT_EQ(forward.workloads[2].name, "c");
}

TEST(PerfReportJson, RejectsSchemaV1Artifacts) {
  // A complete, well-formed v1 report (no simd_isa field): stale baselines
  // must be regenerated knowingly, not silently compared.
  std::istringstream is(
      "{\"schema_version\": 1, \"tag\": \"old\", \"suite\": \"quick\","
      " \"repeats\": 5, \"telemetry_compiled_in\": true,"
      " \"workloads\": []}\n");
  EXPECT_THROW(perfreport::load_perf_report(is), perfreport::PerfReportError);
}

TEST(PerfReportJson, SimdIsaFieldRoundTrips) {
  PerfReport report = make_report({make_workload("w", 10.0, 1, 0)});
  report.simd_isa = "avx512";
  std::ostringstream os;
  perfreport::write_perf_report_json(os, report);
  EXPECT_NE(os.str().find("\"simd_isa\": \"avx512\""), std::string::npos)
      << os.str();
  std::istringstream is(os.str());
  EXPECT_EQ(perfreport::load_perf_report(is).simd_isa, "avx512");
}

TEST(PerfReportTaxonomy, AllowlistCarriesSimdAndPackCacheCounters) {
  const auto& names = perfreport::deterministic_counter_names();
  for (const char* required :
       {"exec.pack.cache.evict", "exec.pack.cache.hit",
        "exec.pack.cache.invalidate", "exec.pack.cache.miss",
        "exec.pack.cache.stale", "exec.simd.avx2", "exec.simd.avx512",
        "exec.simd.neon", "exec.simd.scalar"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), required), names.end())
        << required;
  }
  // The allowlist stays sorted (reports and comparisons walk it in order).
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

TEST(PerfReportTaxonomy, AllowlistCarriesServiceCounters) {
  const auto& names = perfreport::deterministic_counter_names();
  for (const char* required :
       {"service.admitted", "service.deadline_miss", "service.degraded",
        "service.filter.reject", "service.hit", "service.miss",
        "service.quarantined", "service.retried", "service.upgraded"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), required), names.end())
        << required;
  }
}

TEST(LatencyStatsTest, NearestRankPercentiles) {
  std::vector<double> samples;
  for (int i = 100; i >= 1; --i) samples.push_back(static_cast<double>(i));
  const LatencyStats s = LatencyStats::from_samples(std::move(samples));
  EXPECT_EQ(s.count, 100);
  EXPECT_DOUBLE_EQ(s.p50_us, 50.0);
  EXPECT_DOUBLE_EQ(s.p95_us, 95.0);
  EXPECT_DOUBLE_EQ(s.p99_us, 99.0);

  const LatencyStats empty = LatencyStats::from_samples({});
  EXPECT_EQ(empty.count, 0);
  EXPECT_DOUBLE_EQ(empty.p50_us, 0.0);
}

TEST(PerfReportJson, LookupLatencyRoundTripsAndIsOmittedWhenEmpty) {
  PerfReport report = make_report(
      {make_workload("replay/x", 10.0, 1, 0), make_workload("plain", 5.0, 1, 0)});
  report.workloads[1].lookup =
      LatencyStats{2048, 1.5, 12.25, 80.0};  // "replay/x" after sorting
  std::ostringstream os;
  perfreport::write_perf_report_json(os, report);
  EXPECT_NE(os.str().find("\"lookup\""), std::string::npos) << os.str();

  std::istringstream is(os.str());
  const PerfReport loaded = perfreport::load_perf_report(is);
  ASSERT_EQ(loaded.workloads.size(), 2u);
  EXPECT_EQ(loaded.workloads[0].name, "plain");
  EXPECT_EQ(loaded.workloads[0].lookup.count, 0);  // omitted -> default
  EXPECT_EQ(loaded.workloads[1].lookup.count, 2048);
  EXPECT_DOUBLE_EQ(loaded.workloads[1].lookup.p50_us, 1.5);
  EXPECT_DOUBLE_EQ(loaded.workloads[1].lookup.p95_us, 12.25);
  EXPECT_DOUBLE_EQ(loaded.workloads[1].lookup.p99_us, 80.0);

  // Round trip is byte-identical (canonical serialization).
  std::ostringstream second;
  perfreport::write_perf_report_json(second, loaded);
  EXPECT_EQ(os.str(), second.str());
}

TEST(PerfReportCompare, IdenticalReportsMatch) {
  const PerfReport r = make_report(
      {make_workload("a", 100.0, 10, 2), make_workload("b", 50.0, 4, 4)});
  const CompareResult cmp = perfreport::compare_reports(r, r);
  EXPECT_FALSE(cmp.hard_fail());
  EXPECT_EQ(cmp.counter_regressions, 0);
  EXPECT_EQ(cmp.timing_regressions, 0);
  EXPECT_DOUBLE_EQ(cmp.geomean_time_ratio, 1.0);
  for (const auto& d : cmp.workloads)
    EXPECT_EQ(d.cls, DeltaClass::kMatch) << d.name;
}

TEST(PerfReportCompare, TimingDeltasClassifyAgainstNoiseBand) {
  const PerfReport baseline = make_report(
      {make_workload("noisy", 100.0, 1, 0), make_workload("slow", 100.0, 1, 0),
       make_workload("fast", 100.0, 1, 0)});
  const PerfReport current = make_report(
      {make_workload("noisy", 130.0, 1, 0),  // 1.3x: inside the 0.5 band
       make_workload("slow", 200.0, 1, 0),   // 2.0x: advisory regression
       make_workload("fast", 40.0, 1, 0)});  // 0.4x: advisory improvement
  const CompareResult cmp = perfreport::compare_reports(baseline, current);
  EXPECT_FALSE(cmp.hard_fail());  // timing never gates
  EXPECT_EQ(cmp.timing_regressions, 1);
  EXPECT_EQ(cmp.timing_improvements, 1);
  for (const auto& d : cmp.workloads) {
    if (d.name == "noisy") EXPECT_EQ(d.cls, DeltaClass::kNoise);
    if (d.name == "slow") EXPECT_EQ(d.cls, DeltaClass::kTimingRegression);
    if (d.name == "fast") EXPECT_EQ(d.cls, DeltaClass::kTimingImprovement);
  }
  // Geomean of {1.3, 2.0, 0.4}.
  EXPECT_NEAR(cmp.geomean_time_ratio, std::cbrt(1.3 * 2.0 * 0.4), 1e-9);
}

TEST(PerfReportCompare, DispatchMixRegressionHardFails) {
  // Synthetic regression: the same tiles now run generic instead of
  // specialized (e.g. a broken microkernel lookup). Timing is identical —
  // only the deterministic counters catch it, and they must gate.
  const PerfReport baseline =
      make_report({make_workload("w", 100.0, 12, 0)});
  const PerfReport current = make_report({make_workload("w", 100.0, 0, 12)});
  const CompareResult cmp = perfreport::compare_reports(baseline, current);
  EXPECT_TRUE(cmp.hard_fail());
  EXPECT_EQ(cmp.counter_regressions, 1);
  ASSERT_EQ(cmp.workloads.size(), 1u);
  EXPECT_EQ(cmp.workloads[0].cls, DeltaClass::kCounterRegression);
  // The mismatch list names both flipped counters.
  EXPECT_EQ(cmp.workloads[0].counter_mismatches.size(), 2u);
}

TEST(PerfReportCompare, FlopsOrRepeatsMismatchHardFails) {
  const PerfReport baseline = make_report({make_workload("w", 100.0, 1, 0)});
  PerfReport current = make_report({make_workload("w", 100.0, 1, 0)});
  current.workloads[0].flops += 5;
  EXPECT_TRUE(perfreport::compare_reports(baseline, current).hard_fail());
  current = make_report({make_workload("w", 100.0, 1, 0)});
  current.workloads[0].repeats = 7;
  EXPECT_TRUE(perfreport::compare_reports(baseline, current).hard_fail());
}

TEST(PerfReportCompare, HistogramShapeChangeHardFails) {
  const PerfReport baseline = make_report({make_workload("w", 100.0, 1, 0)});
  PerfReport current = make_report({make_workload("w", 100.0, 1, 0)});
  current.workloads[0].histograms[0].p95 = 16;
  const CompareResult cmp = perfreport::compare_reports(baseline, current);
  EXPECT_TRUE(cmp.hard_fail());
  EXPECT_EQ(cmp.workloads[0].cls, DeltaClass::kCounterRegression);
}

TEST(PerfReportCompare, MissingWorkloadHardFails) {
  const PerfReport baseline = make_report(
      {make_workload("kept", 10.0, 1, 0), make_workload("gone", 10.0, 1, 0)});
  const PerfReport current = make_report(
      {make_workload("kept", 10.0, 1, 0), make_workload("new", 10.0, 1, 0)});
  const CompareResult cmp = perfreport::compare_reports(baseline, current);
  EXPECT_TRUE(cmp.hard_fail());
  EXPECT_EQ(cmp.missing, 2);
  ASSERT_EQ(cmp.workloads.size(), 3u);  // union, sorted by name
  EXPECT_EQ(cmp.workloads[0].name, "gone");
  EXPECT_EQ(cmp.workloads[0].cls, DeltaClass::kMissing);
  EXPECT_EQ(cmp.workloads[2].name, "new");
  EXPECT_EQ(cmp.workloads[2].cls, DeltaClass::kMissing);
}

// exec.simd.* counters are deterministic per ISA but host-dependent, so
// they gate only when both reports ran the same ISA; every other counter
// gates regardless.
TEST(PerfReportCompare, SimdCountersGateOnlyWhenIsasMatch) {
  auto with_simd = [](std::int64_t avx512_tiles, std::int64_t scalar_tiles) {
    WorkloadResult w = make_workload("w", 100.0, 12, 0);
    w.counters.push_back({"exec.simd.avx512", avx512_tiles});
    w.counters.push_back({"exec.simd.scalar", scalar_tiles});
    return w;
  };

  // Different hosts: an avx512 baseline vs a scalar current. The flipped
  // exec.simd.* split must NOT gate...
  PerfReport baseline = make_report({with_simd(12, 0)});
  baseline.simd_isa = "avx512";
  PerfReport current = make_report({with_simd(0, 12)});
  current.simd_isa = "scalar";
  CompareResult cmp = perfreport::compare_reports(baseline, current);
  EXPECT_FALSE(cmp.hard_fail());
  EXPECT_FALSE(cmp.simd_isa_matches());
  EXPECT_EQ(cmp.baseline_simd_isa, "avx512");
  EXPECT_EQ(cmp.current_simd_isa, "scalar");
  // ...and the printed summary says why.
  std::ostringstream os;
  perfreport::print_comparison(os, cmp);
  EXPECT_NE(os.str().find("exec.simd."), std::string::npos) << os.str();

  // ...but an ISA-independent counter regression still gates across hosts.
  PerfReport broken = make_report({with_simd(0, 12)});
  broken.simd_isa = "scalar";
  broken.workloads[0].counters[0].value = 99;  // exec.dispatch.generic
  EXPECT_TRUE(perfreport::compare_reports(baseline, broken).hard_fail());

  // Same ISA on both sides: a changed exec.simd.* split is a real dispatch
  // regression and hard-fails.
  PerfReport same_isa = make_report({with_simd(0, 12)});
  same_isa.simd_isa = "avx512";
  cmp = perfreport::compare_reports(baseline, same_isa);
  EXPECT_TRUE(cmp.hard_fail());
  EXPECT_TRUE(cmp.simd_isa_matches());
}

TEST(PerfReportCompare, CounterGatingSkippedWithoutTelemetry) {
  const PerfReport baseline = make_report({make_workload("w", 100.0, 12, 0)});
  PerfReport current = make_report({make_workload("w", 100.0, 0, 12)});
  current.telemetry_compiled_in = false;  // e.g. a -DCTB_TELEMETRY=OFF build
  const CompareResult cmp = perfreport::compare_reports(baseline, current);
  EXPECT_FALSE(cmp.hard_fail());
  EXPECT_EQ(cmp.workloads[0].cls, DeltaClass::kMatch);
}

TEST(PerfReportCompare, PrintedSummaryCarriesVerdict) {
  const PerfReport r = make_report({make_workload("w", 100.0, 1, 0)});
  const CompareResult ok = perfreport::compare_reports(r, r);
  std::ostringstream os;
  perfreport::print_comparison(os, ok);
  EXPECT_NE(os.str().find("RESULT: OK"), std::string::npos);
  EXPECT_NE(os.str().find("counter regressions: 0"), std::string::npos);

  const PerfReport bad = make_report({make_workload("w", 100.0, 0, 1)});
  std::ostringstream fail_os;
  perfreport::print_comparison(fail_os, perfreport::compare_reports(r, bad));
  EXPECT_NE(fail_os.str().find("RESULT: FAIL"), std::string::npos);
}

// -------------------------------------------------------------------------
// Live-suite acceptance: rerunning the same workloads reproduces the
// deterministic counters exactly, so a self-comparison never hard-fails
// (ISSUE acceptance criterion; ctb_bench_self_compare covers the CLI).
// -------------------------------------------------------------------------

std::vector<bench::BenchWorkload> small_suite() {
  std::vector<bench::BenchWorkload> all = bench::perf_quick_suite();
  // A planner-policy workload, a DNN batch, and a pinned-strategy workload —
  // one of each runner path, kept small for test runtime.
  std::vector<bench::BenchWorkload> picked;
  for (const auto& w : all)
    if (w.name == "sweep/mn128/b4/k64" || w.name == "squeezenet/fire9/expand" ||
        w.name.rfind("tile/small", 0) == 0)
      picked.push_back(w);
  return picked;
}

TEST(PerfSuite, RerunHasBitIdenticalCountersAndNeverGates) {
  const std::vector<bench::BenchWorkload> suite = small_suite();
  ASSERT_EQ(suite.size(), 4u);
  const PerfReport first = bench::run_perf_suite(suite, "small", "a", 2);
  const PerfReport second = bench::run_perf_suite(suite, "small", "b", 2);

  ASSERT_EQ(first.workloads.size(), suite.size());
  for (std::size_t i = 0; i < first.workloads.size(); ++i) {
    const WorkloadResult& fw = first.workloads[i];
    const WorkloadResult& sw = second.workloads[i];
    EXPECT_EQ(fw.name, sw.name);
    EXPECT_EQ(fw.flops, sw.flops);
    EXPECT_GT(fw.timing.median_us, 0.0);
    ASSERT_EQ(fw.counters.size(), sw.counters.size());
    for (std::size_t c = 0; c < fw.counters.size(); ++c) {
      EXPECT_EQ(fw.counters[c].name, sw.counters[c].name);
      EXPECT_EQ(fw.counters[c].value, sw.counters[c].value)
          << fw.name << " / " << fw.counters[c].name;
    }
    ASSERT_EQ(fw.histograms.size(), sw.histograms.size());
    for (std::size_t h = 0; h < fw.histograms.size(); ++h) {
      EXPECT_EQ(fw.histograms[h].count, sw.histograms[h].count);
      EXPECT_EQ(fw.histograms[h].sum, sw.histograms[h].sum);
      EXPECT_EQ(fw.histograms[h].p50, sw.histograms[h].p50);
    }
  }

  const CompareResult cmp = perfreport::compare_reports(first, second);
  EXPECT_FALSE(cmp.hard_fail());
  EXPECT_EQ(cmp.counter_regressions, 0);
  EXPECT_EQ(cmp.missing, 0);
  for (const auto& d : cmp.workloads) {
    // Timing may land anywhere (this host's clock is noisy) but the class
    // must never be a gating one.
    EXPECT_NE(d.cls, DeltaClass::kCounterRegression) << d.name;
    EXPECT_NE(d.cls, DeltaClass::kMissing) << d.name;
  }

  // And the artifact itself round-trips byte-identically through disk form.
  std::ostringstream os;
  perfreport::write_perf_report_json(os, first);
  std::istringstream is(os.str());
  const PerfReport loaded = perfreport::load_perf_report(is);
  std::ostringstream os2;
  perfreport::write_perf_report_json(os2, loaded);
  EXPECT_EQ(os.str(), os2.str());
}

#ifdef CTB_TELEMETRY_ENABLED

// The harvest allowlist: every deterministic counter appears (zero-filled if
// the path never ran), timing-derived metrics stay out, and a live suite
// run populates the execution counters.
TEST(PerfSuite, HarvestCarriesFullDeterministicTaxonomy) {
  const std::vector<bench::BenchWorkload> suite = small_suite();
  const PerfReport report = bench::run_perf_suite(suite, "small", "t", 1);
  ASSERT_TRUE(report.telemetry_compiled_in);
  for (const WorkloadResult& w : report.workloads) {
    ASSERT_EQ(w.counters.size(),
              perfreport::deterministic_counter_names().size());
    for (std::size_t i = 0; i < w.counters.size(); ++i)
      EXPECT_EQ(w.counters[i].name,
                perfreport::deterministic_counter_names()[i]);
    for (const auto& c : w.counters)
      EXPECT_EQ(c.name.find("sim."), std::string::npos) << c.name;
    auto counter = [&](const std::string& name) {
      for (const auto& c : w.counters)
        if (c.name == name) return c.value;
      return std::int64_t{-1};
    };
    // Span-buffer overflow is gated since schema v6: any healthy suite run
    // drops nothing, so the harvested value must be exactly zero.
    EXPECT_EQ(counter("tel.spans.dropped"), 0) << w.name;
    EXPECT_EQ(counter("exec.flops"), w.flops * w.repeats) << w.name;
    EXPECT_GT(counter("exec.tiles"), 0) << w.name;
    EXPECT_EQ(counter("exec.fallback"), 0) << w.name;
    if (w.name.rfind("tile/", 0) != 0) {
      // Planner-policy workloads plan through a fresh PlanCache: exactly
      // one miss, repeats-1 hits.
      EXPECT_EQ(counter("cache.miss"), 1) << w.name;
      EXPECT_EQ(counter("cache.hit"), w.repeats - 1) << w.name;
    }
  }
}

#endif  // CTB_TELEMETRY_ENABLED

}  // namespace
}  // namespace ctb
