#include <gtest/gtest.h>

#include "gpusim/arch.hpp"
#include "gpusim/sm_engine.hpp"
#include "util/assert.hpp"

namespace ctb {
namespace {

const GpuArch& v100() { return gpu_arch(GpuModel::kV100); }

BlockWork simple_block(int iters = 16, int threads = 256,
                       std::int64_t bytes_per_iter = 4096) {
  BlockWork b;
  b.threads = threads;
  b.active_threads = threads;
  b.regs_per_thread = 64;
  b.smem_bytes = 8192;
  TileWork t;
  t.iters = iters;
  t.fmas_per_thread_iter = 128;
  t.bytes_per_iter = bytes_per_iter;
  t.epilogue_bytes = 2048;
  t.epilogue_flops = 512;
  t.flops = 100000;
  b.tiles = {t};
  return b;
}

KernelWork kernel_of(int blocks, int iters = 16) {
  KernelWork k;
  for (int i = 0; i < blocks; ++i) k.blocks.push_back(simple_block(iters));
  return k;
}

TEST(SmEngine, EmptyKernelCompletesInstantly) {
  const SimStats s = simulate_kernel(v100(), KernelWork{});
  EXPECT_EQ(s.block_count, 0);
  EXPECT_DOUBLE_EQ(s.makespan_us, 0.0);
}

TEST(SmEngine, SingleBlockMakespanEqualsBlockCost) {
  const SimStats s = simulate_kernel(v100(), kernel_of(1));
  EXPECT_GT(s.makespan_us, 0.0);
  EXPECT_EQ(s.block_count, 1);
  EXPECT_EQ(s.bubble_blocks, 0);
}

TEST(SmEngine, OneWaveRunsFullyParallel) {
  // 80 identical compute-bound blocks on 80 SMs run in one wave: makespan
  // equals the single-block makespan (memory-bound blocks would slow each
  // other through DRAM sharing, so keep bytes tiny here).
  KernelWork k1, k80;
  k1.blocks.push_back(simple_block(16, 256, 256));
  for (int i = 0; i < 80; ++i) k80.blocks.push_back(simple_block(16, 256, 256));
  const double t1 = simulate_kernel(v100(), k1).makespan_us;
  const double t80 = simulate_kernel(v100(), k80).makespan_us;
  // Tolerance: the C write-back epilogue and the L2 path still share
  // device-wide bandwidth across the wave.
  EXPECT_NEAR(t80, t1, t1 * 0.2);
}

TEST(SmEngine, MemoryBoundWaveSlowerThanSingleBlock) {
  // The converse: memory-heavy blocks contend for DRAM, so a full wave is
  // slower than one block alone.
  KernelWork k1, k80;
  k1.blocks.push_back(simple_block(16, 256, 65536));
  for (int i = 0; i < 80; ++i)
    k80.blocks.push_back(simple_block(16, 256, 65536));
  EXPECT_GT(simulate_kernel(v100(), k80).makespan_us,
            simulate_kernel(v100(), k1).makespan_us * 1.5);
}

TEST(SmEngine, MakespanMonotoneInBlockCount) {
  double prev = 0.0;
  for (int blocks : {1, 80, 160, 640, 1280}) {
    const double t = simulate_kernel(v100(), kernel_of(blocks)).makespan_us;
    EXPECT_GE(t, prev);
    prev = t;
  }
}

TEST(SmEngine, ManyWavesScaleRoughlyLinearly) {
  // Far beyond capacity, doubling work should roughly double time.
  const double t1 = simulate_kernel(v100(), kernel_of(4000)).makespan_us;
  const double t2 = simulate_kernel(v100(), kernel_of(8000)).makespan_us;
  EXPECT_NEAR(t2 / t1, 2.0, 0.2);
}

TEST(SmEngine, StatsAccumulateFlopsAndBytes) {
  const KernelWork k = kernel_of(10);
  const SimStats s = simulate_kernel(v100(), k);
  EXPECT_EQ(s.total_flops, k.total_flops());
  EXPECT_EQ(s.total_bytes, k.total_bytes());
  EXPECT_GT(s.achieved_gflops, 0.0);
}

TEST(SmEngine, BubbleBlocksCounted) {
  KernelWork k = kernel_of(4);
  BlockWork bubble;
  bubble.threads = 256;
  bubble.active_threads = 0;
  bubble.smem_bytes = 1024;
  bubble.regs_per_thread = 32;
  k.blocks.push_back(bubble);
  const SimStats s = simulate_kernel(v100(), k);
  EXPECT_EQ(s.bubble_blocks, 1);
  EXPECT_EQ(s.block_count, 5);
}

TEST(SmEngine, UnlaunchableBlockThrows) {
  KernelWork k;
  BlockWork bad = simple_block();
  bad.smem_bytes = 200 * 1024;  // more than one SM has
  k.blocks.push_back(bad);
  EXPECT_THROW(simulate_kernel(v100(), k), CheckError);
}

TEST(SmEngine, DeterministicAcrossRuns) {
  const KernelWork k = kernel_of(500);
  const double a = simulate_kernel(v100(), k).makespan_us;
  const double b = simulate_kernel(v100(), k).makespan_us;
  EXPECT_DOUBLE_EQ(a, b);
}

TEST(SmEngine, SerialSumsKernelsPlusLaunchOverhead) {
  std::vector<KernelWork> kernels{kernel_of(10), kernel_of(10)};
  const double single = simulate_kernel(v100(), kernels[0]).makespan_us;
  const SimStats serial = simulate_serial(v100(), kernels);
  EXPECT_NEAR(serial.makespan_us,
              2.0 * (single + v100().kernel_launch_us), single * 0.01);
}

TEST(SmEngine, ConcurrentBeatsSerialForManySmallKernels) {
  // 16 kernels of 8 blocks each: serial leaves the GPU mostly idle.
  std::vector<KernelWork> kernels;
  for (int i = 0; i < 16; ++i) kernels.push_back(kernel_of(8, 64));
  const double serial = simulate_serial(v100(), kernels).makespan_us;
  const double conc =
      simulate_concurrent(v100(), kernels, 16).makespan_us;
  EXPECT_LT(conc, serial * 0.7);
}

TEST(SmEngine, SingleStreamConcurrentSerializes) {
  // Small kernels that underfill the GPU: one stream serializes them, two
  // streams overlap them. (Device-filling kernels would gain nothing from
  // overlap, so use 8-block kernels.)
  std::vector<KernelWork> kernels{kernel_of(8, 64), kernel_of(8, 64)};
  const double one_stream =
      simulate_concurrent(v100(), kernels, 1).makespan_us;
  const double two_streams =
      simulate_concurrent(v100(), kernels, 2).makespan_us;
  EXPECT_LT(two_streams, one_stream * 0.75);
}

TEST(SmEngine, ArrivalTimeDelaysExecution) {
  const KernelWork k = kernel_of(1);
  const LaunchedKernel launches[] = {{&k, 100.0, -1}};
  const SimStats s = simulate(v100(), launches);
  EXPECT_GE(s.makespan_us, 100.0);
}

TEST(SmEngine, SmBusyFractionLowForTinyGrids) {
  // 4 blocks on 80 SMs: at most 5% of SMs busy.
  const SimStats s = simulate_kernel(v100(), kernel_of(4, 64));
  EXPECT_LE(s.sm_busy_fraction, 0.06);
}

TEST(SmEngine, SmBusyFractionHighForHugeGrids) {
  const SimStats s = simulate_kernel(v100(), kernel_of(4000, 64));
  EXPECT_GE(s.sm_busy_fraction, 0.8);
}

TEST(SmEngine, AvgResidentGrowsWithGridSize) {
  const SimStats small = simulate_kernel(v100(), kernel_of(8, 64));
  const SimStats large = simulate_kernel(v100(), kernel_of(2000, 64));
  EXPECT_GT(large.avg_resident_blocks, small.avg_resident_blocks);
}

TEST(SmEngine, LaunchThrottleBoundsTinyBlockStorms) {
  // Thousands of near-empty blocks cannot start faster than the GigaThread
  // dispatch rate.
  KernelWork k;
  for (int i = 0; i < 4000; ++i) {
    BlockWork b = simple_block(1, 256, 64);
    k.blocks.push_back(b);
  }
  const SimStats s = simulate_kernel(v100(), k);
  EXPECT_GE(s.makespan_us, 4000.0 / v100().cta_launch_per_us * 0.9);
}

TEST(SmEngine, LaunchThrottleIrrelevantForLongBlocks) {
  // Few, long blocks: dispatch rate does not bind.
  GpuArch fast = v100();
  GpuArch slow = v100();
  slow.cta_launch_per_us = 16.0;
  const KernelWork k = kernel_of(80, 512);
  const double tf = simulate_kernel(fast, k).makespan_us;
  const double ts = simulate_kernel(slow, k).makespan_us;
  EXPECT_NEAR(ts, tf, tf * 0.2);
}

TEST(SmEngine, FewerDeeperBlocksBeatManyShallowOnes) {
  // The batching engine's premise in miniature: the same total work in
  // one-quarter the blocks (4 tiles chained) is faster when per-block
  // overheads dominate.
  // Overhead-dominated tiles (tiny K, tiny compute, tiny traffic) are where
  // chaining pays: the shallow grid is CTA-dispatch bound while the deep one
  // amortizes launch, scheduling, and pipeline fill 4x.
  TileWork tiny;
  tiny.iters = 2;
  tiny.fmas_per_thread_iter = 8;
  tiny.bytes_per_iter = 64;
  tiny.epilogue_bytes = 64;
  tiny.epilogue_flops = 16;
  tiny.flops = 1000;
  auto block_of = [&](int tiles) {
    BlockWork b;
    b.threads = 256;
    b.active_threads = 256;
    b.regs_per_thread = 32;
    b.smem_bytes = 2048;
    b.tiles.assign(static_cast<std::size_t>(tiles), tiny);
    return b;
  };
  KernelWork shallow, deep;
  for (int i = 0; i < 2048; ++i) shallow.blocks.push_back(block_of(1));
  for (int i = 0; i < 512; ++i) deep.blocks.push_back(block_of(4));
  EXPECT_LT(simulate_kernel(v100(), deep).makespan_us,
            simulate_kernel(v100(), shallow).makespan_us);
}

TEST(SmEngine, SlowerArchTakesLonger) {
  // The M60 has ~1/5 the bandwidth and far fewer SMs than V100.
  const KernelWork k = kernel_of(640);
  const double tv = simulate_kernel(v100(), k).makespan_us;
  const double tm =
      simulate_kernel(gpu_arch(GpuModel::kM60), k).makespan_us;
  EXPECT_GT(tm, tv * 1.5);
}

}  // namespace
}  // namespace ctb
