// Cross-module integration: random batched-GEMM cases flow through the full
// planner and every execution path, checking plan invariants, functional
// correctness against the host reference, and cross-executor agreement.
#include <gtest/gtest.h>

#include "baselines/baselines.hpp"
#include "core/api.hpp"
#include "core/rf_policy.hpp"
#include "kernels/work_builder.hpp"
#include "linalg/gemm_ref.hpp"

namespace ctb {
namespace {

Matrixf rand_mat(int r, int c, Rng& rng) {
  Matrixf m(static_cast<std::size_t>(r), static_cast<std::size_t>(c));
  fill_random(m, rng);
  return m;
}

class RandomCases : public ::testing::TestWithParam<int> {};

TEST_P(RandomCases, FullPipelineCorrectAndValid) {
  const int seed = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed) * 7919 + 13);
  CaseRanges ranges;
  ranges.min_batch = 1;
  ranges.max_batch = 6;
  ranges.min_mn = 1;   // include degenerate single-row/col GEMMs
  ranges.max_mn = 150;
  ranges.min_k = 1;
  ranges.max_k = 200;
  const std::vector<GemmDims> dims = random_batch(rng, ranges);

  std::vector<Matrixf> as, bs, cs, refs;
  for (const auto& d : dims) {
    as.push_back(rand_mat(d.m, d.k, rng));
    bs.push_back(rand_mat(d.k, d.n, rng));
    cs.push_back(rand_mat(d.m, d.n, rng));
    refs.push_back(cs.back());
  }
  const float alpha = rng.uniform_float(0.5f, 2.0f);
  const float beta = rng.bernoulli(0.5) ? 0.0f : rng.uniform_float(-1, 1);
  for (std::size_t i = 0; i < dims.size(); ++i)
    gemm_naive(as[i], bs[i], refs[i], alpha, beta);

  // Try every batching policy on the same problem.
  for (BatchingPolicy policy :
       {BatchingPolicy::kTilingOnly, BatchingPolicy::kThresholdOnly,
        BatchingPolicy::kBinaryOnly}) {
    PlannerConfig config;
    config.policy = policy;
    const BatchedGemmPlanner planner(config);
    const PlanSummary s = planner.plan(dims);
    ASSERT_NO_THROW(validate_plan(s.plan, dims)) << to_string(policy);

    std::vector<Matrixf> outs;
    std::vector<GemmOperands> ops;
    for (std::size_t i = 0; i < dims.size(); ++i) {
      outs.push_back(cs[i]);
    }
    for (std::size_t i = 0; i < dims.size(); ++i)
      ops.push_back(operands(as[i], bs[i], outs[i]));
    execute_plan(s.plan, ops, alpha, beta);
    for (std::size_t i = 0; i < dims.size(); ++i) {
      EXPECT_TRUE(allclose(outs[i], refs[i]))
          << to_string(policy) << " seed=" << seed << " gemm=" << i
          << " dims=" << dims[i].m << "x" << dims[i].n << "x" << dims[i].k;
    }

    // The plan must also be simulatable on every architecture preset.
    const TimedResult t =
        time_plan(gpu_arch(GpuModel::kV100), s.plan, dims);
    EXPECT_GT(t.time_us, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomCases, ::testing::Range(0, 25));

class RandomOpsCases : public ::testing::TestWithParam<int> {};

TEST_P(RandomOpsCases, TransposedBatchesMatchReference) {
  // Random batches with random per-GEMM transpose ops flow through the
  // GemmEntry API and match gemm_naive_ops.
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729 + 7);
  const int batch = static_cast<int>(rng.uniform_int(1, 5));
  std::vector<GemmDims> dims;
  std::vector<Op> ops_a, ops_b;
  std::vector<Matrixf> as, bs, cs, refs;
  for (int i = 0; i < batch; ++i) {
    GemmDims d;
    d.m = static_cast<int>(rng.log_uniform_int(1, 100));
    d.n = static_cast<int>(rng.log_uniform_int(1, 100));
    d.k = static_cast<int>(rng.log_uniform_int(1, 100));
    dims.push_back(d);
    const Op oa = rng.bernoulli(0.5) ? Op::kT : Op::kN;
    const Op ob = rng.bernoulli(0.5) ? Op::kT : Op::kN;
    ops_a.push_back(oa);
    ops_b.push_back(ob);
    as.push_back(oa == Op::kN ? rand_mat(d.m, d.k, rng)
                              : rand_mat(d.k, d.m, rng));
    bs.push_back(ob == Op::kN ? rand_mat(d.k, d.n, rng)
                              : rand_mat(d.n, d.k, rng));
    cs.push_back(rand_mat(d.m, d.n, rng));
    refs.push_back(cs.back());
  }
  std::vector<GemmEntry> entries(static_cast<std::size_t>(batch));
  for (int i = 0; i < batch; ++i) {
    entries[static_cast<std::size_t>(i)] = GemmEntry{
        &as[static_cast<std::size_t>(i)], &bs[static_cast<std::size_t>(i)],
        &cs[static_cast<std::size_t>(i)], ops_a[static_cast<std::size_t>(i)],
        ops_b[static_cast<std::size_t>(i)]};
  }
  const float alpha = rng.uniform_float(0.5f, 1.5f);
  const float beta = rng.bernoulli(0.5) ? 0.0f : 0.5f;
  batched_gemm(entries, alpha, beta);
  for (int i = 0; i < batch; ++i) {
    gemm_naive_ops(ops_a[static_cast<std::size_t>(i)],
                   ops_b[static_cast<std::size_t>(i)],
                   as[static_cast<std::size_t>(i)],
                   bs[static_cast<std::size_t>(i)],
                   refs[static_cast<std::size_t>(i)], alpha, beta);
    EXPECT_TRUE(allclose(cs[static_cast<std::size_t>(i)],
                         refs[static_cast<std::size_t>(i)]))
        << "seed=" << GetParam() << " gemm=" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomOpsCases, ::testing::Range(0, 15));

class RandomFp16Cases : public ::testing::TestWithParam<int> {};

TEST_P(RandomFp16Cases, Fp16BatchesMatchFp16Reference) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 6151 + 3);
  const int batch = static_cast<int>(rng.uniform_int(1, 4));
  std::vector<GemmDims> dims;
  std::vector<Matrixf> as, bs, cs, refs;
  std::vector<GemmEntry> entries;
  for (int i = 0; i < batch; ++i) {
    GemmDims d;
    d.m = static_cast<int>(rng.log_uniform_int(1, 64));
    d.n = static_cast<int>(rng.log_uniform_int(1, 64));
    d.k = static_cast<int>(rng.log_uniform_int(1, 64));
    dims.push_back(d);
    as.push_back(rand_mat(d.m, d.k, rng));
    bs.push_back(rand_mat(d.k, d.n, rng));
    cs.emplace_back(static_cast<std::size_t>(d.m),
                    static_cast<std::size_t>(d.n));
    refs.emplace_back(static_cast<std::size_t>(d.m),
                      static_cast<std::size_t>(d.n));
  }
  for (int i = 0; i < batch; ++i)
    entries.push_back(GemmEntry{&as[static_cast<std::size_t>(i)],
                                &bs[static_cast<std::size_t>(i)],
                                &cs[static_cast<std::size_t>(i)]});
  PlannerConfig config;
  config.precision = Precision::kFp16;
  batched_gemm(entries, 1.0f, 0.0f, config);
  for (int i = 0; i < batch; ++i) {
    gemm_naive_fp16(as[static_cast<std::size_t>(i)],
                    bs[static_cast<std::size_t>(i)],
                    refs[static_cast<std::size_t>(i)], 1.0f, 0.0f);
    // Tiling changes accumulation order; compare within fp16 tolerance.
    EXPECT_LT(max_abs_diff(cs[static_cast<std::size_t>(i)],
                           refs[static_cast<std::size_t>(i)]),
              0.1f)
        << "seed=" << GetParam() << " gemm=" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomFp16Cases, ::testing::Range(0, 10));

TEST(Integration, AllExecutorsAgreeBitExactly) {
  // The same strategy produces bit-identical results through the
  // single-GEMM kernel, the vbatch kernel, and the plan kernel, because all
  // three share execute_tile and the accumulation order.
  Rng rng(555);
  const std::vector<GemmDims> dims = {{48, 80, 72}};
  const Matrixf a = rand_mat(48, 72, rng);
  const Matrixf b = rand_mat(72, 80, rng);
  const Matrixf c0 = rand_mat(48, 80, rng);

  const auto& s = batched_strategy(TileShape::kSmall, ThreadVariant::k256);

  Matrixf c1 = c0;
  {
    const GemmOperands g = operands(a, b, c1);
    run_single_gemm(s, g, 1.0f, 0.5f);
  }
  Matrixf c2 = c0;
  {
    std::vector<GemmOperands> ops = {operands(a, b, c2)};
    run_vbatch(s, ops, 1.0f, 0.5f);
  }
  Matrixf c3 = c0;
  {
    std::vector<const TilingStrategy*> strategies = {&s};
    const auto tiles = enumerate_tiles(dims, strategies);
    const BatchPlan plan = batch_binary(tiles, 256, BatchingConfig{});
    std::vector<GemmOperands> ops = {operands(a, b, c3)};
    run_batched_plan(plan, ops, 1.0f, 0.5f);
  }
  EXPECT_EQ(max_abs_diff(c1, c2), 0.0f);
  EXPECT_EQ(max_abs_diff(c1, c3), 0.0f);
}

TEST(Integration, TimingAndFunctionalUseSamePlan) {
  const std::vector<GemmDims> dims = {{64, 64, 64}, {32, 96, 128}};
  const BatchedGemmPlanner planner{PlannerConfig{}};
  const PlanSummary s = planner.plan(dims);
  const KernelWork work = work_from_plan(s.plan, dims);
  ASSERT_EQ(static_cast<int>(work.blocks.size()), s.plan.num_blocks());
  // Simulated useful flops equal the problem's flops.
  std::int64_t useful = 0;
  for (const auto& b : work.blocks)
    for (const auto& t : b.tiles) useful += t.flops;
  EXPECT_EQ(useful, dims[0].flops() + dims[1].flops());
}

TEST(Integration, SpeedupTrendAcrossBatchSizes) {
  // Paper observation: the framework's advantage over MAGMA shrinks as the
  // batch grows (more TLP for everyone).
  const GpuArch& arch = gpu_arch(GpuModel::kV100);
  std::vector<double> speedups;
  for (int batch : {4, 64}) {
    const std::vector<GemmDims> dims(static_cast<std::size_t>(batch),
                                     GemmDims{128, 128, 256});
    const double magma = run_magma_timed(arch, dims).time_us;
    const BatchedGemmPlanner planner{PlannerConfig{}};
    const double ours =
        time_plan(arch, planner.plan(dims).plan, dims).time_us;
    speedups.push_back(magma / ours);
  }
  EXPECT_GT(speedups[0], speedups[1]);
  EXPECT_GE(speedups[1], 0.95);  // never materially worse
}

TEST(Integration, SmallKFavorsBatchingEngine) {
  // Paper observation: the batching engine's contribution is highest at
  // small K (pipeline fill amortization).
  const GpuArch& arch = gpu_arch(GpuModel::kV100);
  auto gain = [&](int k) {
    const std::vector<GemmDims> dims(256, GemmDims{128, 128, k});
    PlannerConfig tiling_only;
    tiling_only.policy = BatchingPolicy::kTilingOnly;
    const double none =
        time_plan(arch, BatchedGemmPlanner(tiling_only).plan(dims).plan,
                  dims)
            .time_us;
    PlannerConfig full;
    full.policy = BatchingPolicy::kAutoOffline;
    const double batched =
        time_plan(arch, BatchedGemmPlanner(full).plan(dims).plan, dims)
            .time_us;
    return none / batched;
  };
  EXPECT_GT(gain(16), gain(1024));
}

TEST(Integration, PortabilityAcrossAllArchitectures) {
  // Fig. 11's premise: the framework wins on every supported GPU.
  Rng rng(777);
  CaseRanges ranges;
  ranges.min_batch = 4;
  ranges.max_batch = 16;
  ranges.min_mn = 16;
  ranges.max_mn = 256;
  ranges.min_k = 16;
  ranges.max_k = 512;
  std::vector<std::vector<GemmDims>> cases;
  for (int i = 0; i < 5; ++i) cases.push_back(random_batch(rng, ranges));

  for (GpuModel model : all_gpu_models()) {
    const GpuArch& arch = gpu_arch(model);
    PlannerConfig config;
    config.gpu = model;
    const BatchedGemmPlanner planner(config);
    double magma_total = 0, ours_total = 0;
    for (const auto& dims : cases) {
      magma_total += run_magma_timed(arch, dims).time_us;
      ours_total += time_plan(arch, planner.plan(dims).plan, dims).time_us;
    }
    EXPECT_LT(ours_total, magma_total * 1.05) << arch.name;
  }
}

}  // namespace
}  // namespace ctb
