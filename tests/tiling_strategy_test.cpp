#include <gtest/gtest.h>

#include <set>
#include <string>

#include "core/tiling_strategy.hpp"
#include "util/assert.hpp"

namespace ctb {
namespace {

// Table 1 must match the paper exactly.
TEST(Table1, MatchesPaper) {
  const auto& t = single_gemm_strategies();
  ASSERT_EQ(t.size(), 6u);
  // {BY, BX, BK, Threads, sub_y, sub_x}
  const int expected[6][6] = {
      {16, 16, 8, 32, 4, 2},   {32, 32, 8, 64, 4, 4},
      {64, 64, 8, 64, 8, 8},   {128, 64, 8, 128, 8, 8},
      {64, 128, 8, 128, 8, 8}, {128, 128, 8, 256, 8, 8},
  };
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(t[i].by, expected[i][0]) << i;
    EXPECT_EQ(t[i].bx, expected[i][1]) << i;
    EXPECT_EQ(t[i].bk, expected[i][2]) << i;
    EXPECT_EQ(t[i].threads, expected[i][3]) << i;
    EXPECT_EQ(t[i].sub_y, expected[i][4]) << i;
    EXPECT_EQ(t[i].sub_x, expected[i][5]) << i;
  }
}

// Table 2 must match the paper exactly.
TEST(Table2, MatchesPaper) {
  struct Row {
    TileShape shape;
    int by, bx;
    int s128y, s128x, s256y, s256x;
  };
  const Row rows[] = {
      {TileShape::kSmall, 16, 16, 2, 1, 1, 1},
      {TileShape::kMedium, 32, 32, 4, 2, 2, 2},
      {TileShape::kLarge, 64, 64, 8, 4, 4, 4},
      {TileShape::kTall, 128, 64, 8, 8, 8, 4},
      {TileShape::kWide, 64, 128, 8, 8, 8, 4},
      {TileShape::kHuge, 128, 128, 16, 8, 8, 8},
  };
  for (const Row& r : rows) {
    const auto& s128 = batched_strategy(r.shape, ThreadVariant::k128);
    const auto& s256 = batched_strategy(r.shape, ThreadVariant::k256);
    EXPECT_EQ(s128.by, r.by);
    EXPECT_EQ(s128.bx, r.bx);
    EXPECT_EQ(s128.threads, 128);
    EXPECT_EQ(s128.sub_y, r.s128y);
    EXPECT_EQ(s128.sub_x, r.s128x);
    EXPECT_EQ(s256.threads, 256);
    EXPECT_EQ(s256.sub_y, r.s256y);
    EXPECT_EQ(s256.sub_x, r.s256x);
    EXPECT_EQ(s128.bk, 8);
    EXPECT_EQ(s256.bk, 8);
  }
}

class AllBatchedStrategies : public ::testing::TestWithParam<int> {};

TEST_P(AllBatchedStrategies, UnifiedThreadStructureInvariant) {
  // Tile area == threads * sub-tile area: every thread covers exactly one
  // sub-tile, no gaps, no overlap.
  const TilingStrategy& s = batched_strategy_by_id(GetParam());
  EXPECT_EQ(s.by * s.bx, s.threads * s.sub_y * s.sub_x);
  EXPECT_TRUE(s.threads == 128 || s.threads == 256);
}

TEST_P(AllBatchedStrategies, IdRoundTrips) {
  const TilingStrategy& s = batched_strategy_by_id(GetParam());
  EXPECT_EQ(s.id, GetParam());
  EXPECT_EQ(&batched_strategy(s.shape, s.threads == 128
                                           ? ThreadVariant::k128
                                           : ThreadVariant::k256),
            &s);
}

TEST_P(AllBatchedStrategies, ResourceFootprintLaunchable) {
  // Every Table-2 strategy must fit a V100 block: <= 96 KB smem, <= 255
  // regs/thread.
  const TilingStrategy& s = batched_strategy_by_id(GetParam());
  EXPECT_LE(s.smem_bytes(), 96 * 1024);
  EXPECT_GE(s.smem_bytes(), 2 * (16 * 8 + 8 * 16) * 4);
  EXPECT_LE(s.regs_per_thread(), 255);
  EXPECT_GT(s.regs_per_thread(), 0);
}

TEST_P(AllBatchedStrategies, SubTileDividesTile) {
  const TilingStrategy& s = batched_strategy_by_id(GetParam());
  EXPECT_EQ(s.by % s.sub_y, 0);
  EXPECT_EQ(s.bx % s.sub_x, 0);
}

INSTANTIATE_TEST_SUITE_P(Ids, AllBatchedStrategies, ::testing::Range(0, 12));

TEST(TilingStrategy, TilesForCeilDivision) {
  const auto& s = batched_strategy(TileShape::kLarge, ThreadVariant::k256);
  EXPECT_EQ(s.tiles_for(64, 64), 1);
  EXPECT_EQ(s.tiles_for(65, 64), 2);
  EXPECT_EQ(s.tiles_for(128, 128), 4);
  EXPECT_EQ(s.tiles_for(1, 1), 1);
}

TEST(TilingStrategy, SmemIsDoubleBuffered) {
  const auto& s = batched_strategy(TileShape::kHuge, ThreadVariant::k256);
  // 2 buffers * (128*8 + 8*128) floats * 4 B = 16 KB.
  EXPECT_EQ(s.smem_bytes(), 16384);
}

TEST(TilingStrategy, FmasPerThreadIter) {
  const auto& s = batched_strategy(TileShape::kHuge, ThreadVariant::k256);
  EXPECT_EQ(s.fmas_per_thread_iter(), 8 * 8 * 8);
  const auto& sm = batched_strategy(TileShape::kSmall, ThreadVariant::k256);
  EXPECT_EQ(sm.fmas_per_thread_iter(), 8);
}

TEST(TilingStrategy, NamesAreDistinct) {
  std::set<std::string> names;
  for (const auto& s : batched_strategies()) names.insert(s.name());
  EXPECT_EQ(names.size(), 12u);
}

TEST(TilingStrategy, ShapeNames) {
  EXPECT_STREQ(to_string(TileShape::kSmall), "small");
  EXPECT_STREQ(to_string(TileShape::kHuge), "huge");
}

TEST(TilingStrategy, OutOfRangeIdThrows) {
  EXPECT_THROW(batched_strategy_by_id(-1), CheckError);
  EXPECT_THROW(batched_strategy_by_id(12), CheckError);
}

TEST(TilingStrategy, ShapesOrderedSmallToHuge) {
  const auto& shapes = all_tile_shapes();
  for (std::size_t i = 1; i < shapes.size(); ++i) {
    const auto& prev = batched_strategy(shapes[i - 1], ThreadVariant::k256);
    const auto& cur = batched_strategy(shapes[i], ThreadVariant::k256);
    EXPECT_LE(prev.by * prev.bx, cur.by * cur.bx);
  }
}

}  // namespace
}  // namespace ctb
