#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "core/plan_io.hpp"

namespace ctb {
namespace {

std::vector<GemmDims> sample_batch() {
  return {{16, 32, 128}, {64, 64, 64}, {256, 256, 64}};
}

PlanSummary plan_sample() {
  const BatchedGemmPlanner planner{PlannerConfig{}};
  const auto dims = sample_batch();
  return planner.plan(dims);
}

TEST(PlanIo, SaveLoadRoundTrip) {
  const PlanSummary s = plan_sample();
  std::stringstream ss;
  save_plan(ss, s.plan);
  const BatchPlan loaded = load_plan(ss);
  EXPECT_EQ(loaded.tile_offsets, s.plan.tile_offsets);
  EXPECT_EQ(loaded.gemm_of_tile, s.plan.gemm_of_tile);
  EXPECT_EQ(loaded.strategy_of_tile, s.plan.strategy_of_tile);
  EXPECT_EQ(loaded.y_coord, s.plan.y_coord);
  EXPECT_EQ(loaded.x_coord, s.plan.x_coord);
  EXPECT_EQ(loaded.block_threads, s.plan.block_threads);
  EXPECT_EQ(loaded.smem_bytes, s.plan.smem_bytes);
  EXPECT_EQ(loaded.regs_per_thread, s.plan.regs_per_thread);
  // The reloaded plan still validates against the batch.
  const auto dims = sample_batch();
  EXPECT_NO_THROW(validate_plan(loaded, dims));
}

TEST(PlanIo, LoadedPlanExecutesIdentically) {
  const PlanSummary s = plan_sample();
  std::stringstream ss;
  save_plan(ss, s.plan);
  const BatchPlan loaded = load_plan(ss);

  const auto dims = sample_batch();
  Rng rng(5);
  std::vector<Matrixf> as, bs, c1, c2;
  for (const auto& d : dims) {
    as.emplace_back(static_cast<std::size_t>(d.m),
                    static_cast<std::size_t>(d.k));
    bs.emplace_back(static_cast<std::size_t>(d.k),
                    static_cast<std::size_t>(d.n));
    fill_random(as.back(), rng);
    fill_random(bs.back(), rng);
    c1.emplace_back(static_cast<std::size_t>(d.m),
                    static_cast<std::size_t>(d.n));
    c2.emplace_back(static_cast<std::size_t>(d.m),
                    static_cast<std::size_t>(d.n));
  }
  std::vector<GemmOperands> ops1, ops2;
  for (std::size_t i = 0; i < dims.size(); ++i) {
    ops1.push_back(operands(as[i], bs[i], c1[i]));
    ops2.push_back(operands(as[i], bs[i], c2[i]));
  }
  execute_plan(s.plan, ops1, 1.0f, 0.0f);
  execute_plan(loaded, ops2, 1.0f, 0.0f);
  for (std::size_t i = 0; i < dims.size(); ++i)
    EXPECT_EQ(max_abs_diff(c1[i], c2[i]), 0.0f);
}

TEST(PlanIo, RejectsGarbage) {
  std::stringstream ss("definitely not a plan");
  EXPECT_THROW(load_plan(ss), CheckError);
}

TEST(PlanIo, RejectsTruncatedStream) {
  const PlanSummary s = plan_sample();
  std::stringstream ss;
  save_plan(ss, s.plan);
  std::string text = ss.str();
  text.resize(text.size() / 2);
  std::stringstream half(text);
  EXPECT_THROW(load_plan(half), CheckError);
}

TEST(PlanIo, RejectsBadBlockSize) {
  std::stringstream ss("ctb-batchplan-v1\n99 0 0\ntile 1 0\n");
  EXPECT_THROW(load_plan(ss), CheckError);
}

TEST(BatchSignature, SensitiveToShapesAndConfig) {
  const auto dims = sample_batch();
  auto mutated = dims;
  mutated[1].k += 1;
  PlannerConfig config;
  const BatchedGemmPlanner p(config);  // resolves thresholds
  EXPECT_NE(batch_signature(dims, p.config()),
            batch_signature(mutated, p.config()));

  PlannerConfig other = p.config();
  other.theta += 1;
  EXPECT_NE(batch_signature(dims, p.config()),
            batch_signature(dims, other));
}

TEST(BatchSignature, OrderMatters) {
  const std::vector<GemmDims> a = {{16, 16, 16}, {32, 32, 32}};
  const std::vector<GemmDims> b = {{32, 32, 32}, {16, 16, 16}};
  EXPECT_NE(batch_signature(a, PlannerConfig{}),
            batch_signature(b, PlannerConfig{}));
}

TEST(PlanCache, HitsOnRepeatedShape) {
  PlanCache cache;
  const auto dims = sample_batch();
  const PlanSummary& first = cache.plan(dims);
  const PlanSummary& second = cache.plan(dims);
  EXPECT_EQ(&first, &second);  // same cached object
  EXPECT_EQ(cache.misses(), 1);
  EXPECT_EQ(cache.hits(), 1);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(PlanCache, DistinctShapesGetDistinctPlans) {
  PlanCache cache;
  const std::vector<GemmDims> a = {{16, 16, 16}};
  const std::vector<GemmDims> b = {{32, 32, 32}};
  cache.plan(a);
  cache.plan(b);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.misses(), 2);
}

TEST(PlanCache, CachedPlanIsValid) {
  PlanCache cache;
  const auto dims = sample_batch();
  EXPECT_NO_THROW(validate_plan(cache.plan(dims).plan, dims));
}

TEST(BatchSignature, GpuModelMatters) {
  const auto dims = sample_batch();
  PlannerConfig v100;
  v100.gpu = GpuModel::kV100;
  PlannerConfig m60;
  m60.gpu = GpuModel::kM60;
  EXPECT_NE(batch_signature(dims, BatchedGemmPlanner(v100).config()),
            batch_signature(dims, BatchedGemmPlanner(m60).config()));
}

TEST(PlanIo, EmptyishPlanRoundTrips) {
  // Single-tile plan: the smallest valid plan survives serialization.
  const std::vector<GemmDims> dims = {{8, 8, 8}};
  const BatchedGemmPlanner planner{PlannerConfig{}};
  const PlanSummary s = planner.plan(dims);
  std::stringstream ss;
  save_plan(ss, s.plan);
  const BatchPlan loaded = load_plan(ss);
  EXPECT_EQ(loaded.num_blocks(), 1);
  EXPECT_NO_THROW(validate_plan(loaded, dims));
}

TEST(PlanCache, ClearResets) {
  PlanCache cache;
  const auto dims = sample_batch();
  cache.plan(dims);
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  cache.plan(dims);
  EXPECT_EQ(cache.misses(), 2);
}

// ------------------------------------------------- hardened load_plan --

TEST(PlanIo, RejectsUnsupportedVersion) {
  std::stringstream ss("ctb-batchplan-v4\n256 16384 84\ntile 1 0\n");
  try {
    load_plan(ss);
    FAIL() << "expected PlanIoError";
  } catch (const PlanIoError& e) {
    EXPECT_NE(std::string(e.what()).find("unsupported plan version"),
              std::string::npos);
  }
}

TEST(PlanIo, V2HeaderIsAcceptedButNeedsKRanges) {
  // v2 is a known version: the failure must come from the missing K-range
  // arrays, not from the header.
  std::stringstream ss(
      "ctb-batchplan-v2\n256 16384 84\n"
      "tile 2 0 1\ngemm 1 0\nstrategy 1 1\ny 1 0\nx 1 0\n");
  try {
    load_plan(ss);
    FAIL() << "expected PlanIoError";
  } catch (const PlanIoError& e) {
    EXPECT_EQ(std::string(e.what()).find("unsupported plan version"),
              std::string::npos);
  }
}

TEST(PlanIo, RejectsHugeDeclaredCountBeforeAllocating) {
  // A declared count past the cap must be rejected at the header, never
  // allocated (under ASan an attempted 99-trillion-element vector would be
  // loud).
  std::stringstream ss(
      "ctb-batchplan-v1\n256 16384 84\ntile 99999999999999 0\n");
  EXPECT_THROW(load_plan(ss), PlanIoError);
}

TEST(PlanIo, RejectsIntegerOverflowElement) {
  std::stringstream ss(
      "ctb-batchplan-v1\n256 16384 84\ntile 2 0 99999999999999\n");
  EXPECT_THROW(load_plan(ss), PlanIoError);
  // And a value no long long can hold (failbit path).
  std::stringstream ss2(
      "ctb-batchplan-v1\n256 16384 84\n"
      "tile 2 0 99999999999999999999999999999999\n");
  EXPECT_THROW(load_plan(ss2), PlanIoError);
}

TEST(PlanIo, RejectsTrailingGarbage) {
  const PlanSummary s = plan_sample();
  std::stringstream ss;
  save_plan(ss, s.plan);
  ss << " unexpected-trailer";
  EXPECT_THROW(load_plan(ss), PlanIoError);
}

TEST(PlanIo, RejectsStructurallyBrokenPlanAtLoad) {
  // Offsets [0, 2, 1] are non-monotone: the loader's final structural
  // validation must refuse, the caller never sees the plan.
  std::stringstream ss(
      "ctb-batchplan-v1\n256 16384 84\n"
      "tile 3 0 2 1\ngemm 1 0\nstrategy 1 1\ny 1 0\nx 1 0\n");
  EXPECT_THROW(load_plan(ss), PlanIoError);
}

TEST(PlanIo, ErrorCarriesWhatWhereContext) {
  std::stringstream ss("ctb-batchplan-v1\n256 16384 84\ntile 2 0 zz\n");
  try {
    load_plan(ss);
    FAIL() << "expected PlanIoError";
  } catch (const PlanIoError& e) {
    EXPECT_EQ(e.where(), "tile[1]");
    EXPECT_NE(std::string(e.what()).find("plan load failed at tile[1]"),
              std::string::npos);
  }
}

// ------------------------------------------- PlanCache strong guarantee --

TEST(PlanCache, FailedPlanDoesNotPoisonEntry) {
  PlannerConfig config;
  const BatchedGemmPlanner real(config);
  int calls = 0;
  PlanCache cache(config, [&](std::span<const GemmDims> dims) {
    if (++calls == 1) throw CheckError("transient planner failure");
    return real.plan(dims);
  });
  const auto dims = sample_batch();
  EXPECT_THROW(cache.plan(dims), CheckError);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.misses(), 0);
  // The identical signature retries cleanly after the failure...
  const PlanSummary& s = cache.plan(dims);
  EXPECT_NO_THROW(validate_plan(s.plan, dims));
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.misses(), 1);
  // ...and the retried entry serves hits.
  cache.plan(dims);
  EXPECT_EQ(cache.hits(), 1);
}

TEST(PlanCache, RejectsPlannerOutputThatFailsValidation) {
  PlannerConfig config;
  const BatchedGemmPlanner real(config);
  PlanCache cache(config, [&](std::span<const GemmDims> dims) {
    PlanSummary s = real.plan(dims);
    s.plan.gemm_of_tile[0] = -1;  // corrupt the planner's output
    return s;
  });
  const auto dims = sample_batch();
  EXPECT_THROW(cache.plan(dims), CheckError);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(PlanCache, RejectsDegenerateDims) {
  PlanCache cache;
  const std::vector<GemmDims> empty;
  EXPECT_THROW(cache.plan(empty), CheckError);
  const std::vector<GemmDims> zero_dim = {{0, 16, 16}};
  EXPECT_THROW(cache.plan(zero_dim), CheckError);
  EXPECT_EQ(cache.size(), 0u);
}

// ------------------------------------------------------ v3 epilogues --

std::vector<int> sample_epilogues() {
  // bias+relu, none, residual — one fused chain per sample_batch() GEMM.
  return {epilogue_push(epilogue_push(0, EpilogueOp::kBias),
                        EpilogueOp::kRelu),
          0, epilogue_push(0, EpilogueOp::kResidual)};
}

TEST(PlanIo, V3RoundTripWithEpilogues) {
  const BatchedGemmPlanner planner{PlannerConfig{}};
  const auto dims = sample_batch();
  const auto epilogues = sample_epilogues();
  const PlanSummary s = planner.plan(dims, epilogues);
  ASSERT_TRUE(s.plan.has_epilogue());

  std::stringstream ss;
  save_plan(ss, s.plan);
  EXPECT_EQ(ss.str().rfind("ctb-batchplan-v3", 0), 0u);
  const BatchPlan loaded = load_plan(ss);
  EXPECT_EQ(loaded.epilogue_of_gemm, s.plan.epilogue_of_gemm);
  EXPECT_NO_THROW(validate_plan(loaded, dims));

  // Byte-stable: re-serializing the loaded plan reproduces the stream.
  std::stringstream again;
  save_plan(again, loaded);
  EXPECT_EQ(again.str(), ss.str());
}

TEST(PlanIo, EpilogueFreePlanKeepsPreV3Bytes) {
  // A plan without epilogues must serialize exactly as before the format
  // grew the epilogue array — old readers keep working on new writers.
  const PlanSummary s = plan_sample();
  std::stringstream ss;
  save_plan(ss, s.plan);
  EXPECT_EQ(ss.str().find("ctb-batchplan-v3"), std::string::npos);
  EXPECT_EQ(ss.str().find("epilogue"), std::string::npos);
}

TEST(PlanIo, V3HeaderRequiresEpilogueArray) {
  // v3 is a known version: a v3 stream that carries no epilogue array is
  // malformed (it should have been written as v1/v2).
  const PlanSummary s = plan_sample();
  std::stringstream plain;
  save_plan(plain, s.plan);
  std::string text = plain.str();
  text.replace(0, std::string("ctb-batchplan-v1").size(),
               "ctb-batchplan-v3");
  std::stringstream ss(text);
  EXPECT_THROW(load_plan(ss), PlanIoError);
}

TEST(BatchSignature, EpiloguesChangeTheKey) {
  const PlannerConfig config;
  const auto dims = sample_batch();
  const auto epilogues = sample_epilogues();
  const std::uint64_t plain = batch_signature(dims, config);
  const std::uint64_t fused = batch_signature(dims, config, epilogues);
  EXPECT_NE(plain, fused);

  // An all-zero stream is the plain batch, whatever its length.
  const std::vector<int> zeros(dims.size(), 0);
  EXPECT_EQ(batch_signature(dims, config, zeros), plain);
  EXPECT_EQ(batch_signature(dims, config, {}), plain);

  // Chain placement matters: the same specs on different GEMMs differ.
  std::vector<int> rotated = epilogues;
  std::rotate(rotated.begin(), rotated.begin() + 1, rotated.end());
  EXPECT_NE(batch_signature(dims, config, rotated), fused);
}

TEST(PlanCache, EpiloguesArePartOfTheKey) {
  PlanCache cache;
  const auto dims = sample_batch();
  const auto epilogues = sample_epilogues();
  const PlanSummary& plain = cache.plan(dims);
  EXPECT_FALSE(plain.plan.has_epilogue());
  const PlanSummary& fused = cache.plan(dims, epilogues);
  ASSERT_TRUE(fused.plan.has_epilogue());
  EXPECT_EQ(fused.plan.epilogue_of_gemm, epilogues);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.misses(), 2);

  // Repeats hit their own entries; the all-zero stream hits the plain one.
  cache.plan(dims, epilogues);
  const std::vector<int> zeros(dims.size(), 0);
  cache.plan(dims, zeros);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.hits(), 2);
}

}  // namespace
}  // namespace ctb
