#include <gtest/gtest.h>

#include "dnn/squeezenet.hpp"

namespace ctb {
namespace {

TEST(SqueezeNet, HasEightFireModules) {
  EXPECT_EQ(squeezenet_fire_modules().size(), 8u);
}

TEST(SqueezeNet, ChannelsChainAcrossModules) {
  const auto& fires = squeezenet_fire_modules();
  // fire2 out = 64+64 = 128 = fire3 in; fire4 out = 256 = fire5 in, etc.
  EXPECT_EQ(fires[0].out_c(), 128);
  EXPECT_EQ(fires[1].in_c, 128);
  EXPECT_EQ(fires[2].out_c(), 256);
  EXPECT_EQ(fires[3].in_c, 256);
  EXPECT_EQ(fires[6].out_c(), 512);
  EXPECT_EQ(fires[7].in_c, 512);
}

TEST(SqueezeNet, ExpandBranchesConsumeSqueezeOutput) {
  for (const auto& m : squeezenet_fire_modules()) {
    EXPECT_EQ(m.expand1x1.in_c, m.squeeze.out_c) << m.name;
    EXPECT_EQ(m.expand3x3.in_c, m.squeeze.out_c) << m.name;
    EXPECT_EQ(m.squeeze.in_c, m.in_c) << m.name;
  }
}

TEST(SqueezeNet, SpatialSizesFollowPools) {
  const auto& fires = squeezenet_fire_modules();
  EXPECT_EQ(fires[0].hw, 55);  // fire2..4
  EXPECT_EQ(fires[3].hw, 27);  // fire5..8
  EXPECT_EQ(fires[7].hw, 13);  // fire9
}

TEST(SqueezeNet, ExpandGemmsDifferOnlyInK) {
  // The two expand branches share M-sized filter counts in v1.0 and the
  // same N; the 3x3 branch has 9x the K. This is exactly the variable-K
  // batch the binary heuristic targets.
  for (const auto& m : squeezenet_fire_modules()) {
    const auto gemms = m.expand_gemms(1);
    ASSERT_EQ(gemms.size(), 2u);
    EXPECT_EQ(gemms[0].n, gemms[1].n) << m.name;
    EXPECT_EQ(gemms[1].k, 9 * gemms[0].k) << m.name;
  }
}

TEST(SqueezeNet, FireForwardBatchedMatchesReference) {
  // Scaled-down fire module for a fast functional check.
  FireModule m;
  m.name = "mini-fire";
  m.in_c = 12;
  m.hw = 9;
  auto mk = [&](const char* name, int in_c, int out_c, int k) {
    ConvShape s;
    s.name = name;
    s.in_c = in_c;
    s.out_c = out_c;
    s.kernel = k;
    s.stride = 1;
    s.pad = k / 2;
    s.in_h = m.hw;
    s.in_w = m.hw;
    return s;
  };
  m.squeeze = mk("s", 12, 4, 1);
  m.expand1x1 = mk("e1", 4, 6, 1);
  m.expand3x3 = mk("e3", 4, 5, 3);

  Rng rng(808);
  Tensor4 input(2, 12, 9, 9);
  fill_random(input, rng);
  const FireWeights w = random_fire_weights(m, rng);
  const Tensor4 ref = fire_forward_reference(m, input, w);
  const Tensor4 batched = fire_forward_batched(m, input, w, PlannerConfig{});
  ASSERT_TRUE(ref.same_shape(batched));
  EXPECT_EQ(ref.c(), 11);
  EXPECT_LT(max_abs_diff(ref, batched), 1e-3f);
}

TEST(SqueezeNet, RealFire2ShapeThroughFramework) {
  const FireModule& fire2 = squeezenet_fire_modules().front();
  Rng rng(2020);
  Tensor4 input(1, fire2.in_c, fire2.hw, fire2.hw);
  fill_random(input, rng);
  const FireWeights w = random_fire_weights(fire2, rng);
  const Tensor4 out = fire_forward_batched(fire2, input, w, PlannerConfig{});
  EXPECT_EQ(out.c(), 128);
  EXPECT_EQ(out.h(), 55);
}

TEST(SqueezeNetTiming, OursCompetitiveWithBaselines) {
  const GpuArch& arch = gpu_arch(GpuModel::kV100);
  const auto times = time_squeezenet_fires(arch, 1, PlannerConfig{});
  ASSERT_EQ(times.size(), 8u);
  int wins_vs_default = 0;
  for (const auto& t : times) {
    EXPECT_GT(t.default_us, 0.0);
    wins_vs_default += t.ours_us < t.default_us ? 1 : 0;
  }
  EXPECT_EQ(wins_vs_default, 8);
}

}  // namespace
}  // namespace ctb
